package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/airspace"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/tasks"
)

var update = flag.Bool("update", false, "rewrite the scenario golden file")

const goldenFile = "testdata/golden_scenarios.txt"

// TestGoldenScenarios pins every family's generated world and its
// conflict behaviour at the reproduction's reference point (seed 2018,
// N=1000): a content hash of the full world, the reference detector's
// counts, and each of the eight platforms' conflict and resolution
// counts after one Tasks 2-3 pass. Regenerate with
//
//	go test ./internal/scenario -run TestGoldenScenarios -update
//
// after an intentional generator or kernel change; an unintentional
// diff here means a scenario stopped reproducing bit-exactly.
func TestGoldenScenarios(t *testing.T) {
	const (
		seed = 2018
		n    = 1000
	)
	var buf bytes.Buffer
	for _, f := range Families() {
		spec := DefaultSpec(f)
		// The exact world core.NewSystem builds: the setup stream is the
		// first split off the root.
		root := rng.New(seed)
		w := spec.Generate(n, root.Split())
		fmt.Fprintf(&buf, "family %-8s world %s\n", f, worldHash(w))

		det := tasks.Detect(w.Clone())
		fmt.Fprintf(&buf, "family %-8s reference conflicts=%d pairchecks=%d\n", f, det.Conflicts, det.PairChecks)

		for _, name := range append(platform.Names(), platform.ExtensionNames()...) {
			p := platform.MustNew(name, seed)
			run := w.Clone()
			p.DetectResolve(run)
			conflicts, resolved := 0, 0
			for i := range run.Aircraft {
				if run.Aircraft[i].Col {
					conflicts++
				}
				if run.Aircraft[i].DX != w.Aircraft[i].DX || run.Aircraft[i].DY != w.Aircraft[i].DY {
					resolved++
				}
			}
			fmt.Fprintf(&buf, "family %-8s platform %-10s conflicts=%d resolved=%d\n", f, name, conflicts, resolved)
		}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenFile, buf.Len())
		return
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("scenario golden mismatch; run `go test ./internal/scenario -run TestGoldenScenarios -update` if intentional\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// worldHash digests every field of every aircraft, floats by IEEE
// bits, so any generator drift — however small — changes the hash.
func worldHash(w *airspace.World) string {
	h := sha256.New()
	var rec [14 * 8]byte
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		col := uint64(0)
		if a.Col {
			col = 1
		}
		vals := [...]uint64{
			uint64(uint32(a.ID)),
			math.Float64bits(a.X), math.Float64bits(a.Y),
			math.Float64bits(a.DX), math.Float64bits(a.DY),
			math.Float64bits(a.Alt),
			math.Float64bits(a.BatX), math.Float64bits(a.BatY),
			col,
			math.Float64bits(a.TimeTill),
			uint64(uint32(a.ColWith)),
			uint64(uint8(a.RMatch)),
			math.Float64bits(a.ExpX), math.Float64bits(a.ExpY),
		}
		for j, v := range vals {
			binary.LittleEndian.PutUint64(rec[8*j:], v)
		}
		h.Write(rec[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
