// Package mimd simulates the shared-memory multicore baseline of the
// paper: a 16-core Intel Xeon running the ATM tasks with the aircraft
// database in shared memory. The tasks really execute on a pool of
// goroutines (one per modeled core) with lock-arbitrated radar
// claiming, and a cost model converts the measured per-core work into
// modeled time.
//
// The model encodes the paper's central criticism of MIMD for
// real-time work: asynchronous cores make the time for a fixed
// computation non-constant. Three ingredients produce that behaviour:
//
//   - critical path: the slowest core's operation count bounds the
//     task (static partitioning plus skew leaves cores imbalanced);
//   - contention: a superlinear factor models coherence traffic, lock
//     arbitration and memory-bus pressure that grow with database size
//     ("the multi-core curve increases rapidly" [12, 13]);
//   - jitter: an exponential OS-scheduling noise term redrawn on every
//     task invocation, so the same task on the same data takes a
//     different time each period — the non-determinism that makes
//     deadline guarantees impossible.
//
// The contention and jitter coefficients are documented model knobs
// (see DESIGN.md): they are chosen to reproduce the qualitative shape
// reported by [12, 13] — linear-looking at small N, steeply superlinear
// past ~10k aircraft, with regular deadline misses — not measured Xeon
// values.
package mimd

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/parexec"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// Profile describes one shared-memory multicore machine.
type Profile struct {
	// Name of the machine.
	Name string
	// Cores is the worker count.
	Cores int
	// ClockHz and IPC give per-core abstract-op throughput.
	ClockHz float64
	IPC     float64

	// Contention: modeled slowdown factor
	// 1 + ContentionCoef * (N/ContentionScale)^ContentionExp.
	ContentionCoef  float64
	ContentionExp   float64
	ContentionScale float64

	// JitterMeanPerK is the mean of the exponential scheduling-jitter
	// term per 1000 aircraft, redrawn each task invocation.
	JitterMeanPerK time.Duration

	// BarrierCost is charged once per parallel phase (thread join plus
	// cache-line ping-pong at the barrier).
	BarrierCost time.Duration

	// LockCycles is charged per lock acquisition.
	LockCycles int
}

// Xeon16 is the paper's multicore baseline: a 16-core Intel Xeon.
var Xeon16 = Profile{
	Name:            "Intel Xeon (16 cores)",
	Cores:           16,
	ClockHz:         2.4e9,
	IPC:             1.2,
	ContentionCoef:  0.08,
	ContentionExp:   1.2,
	ContentionScale: 2000,
	JitterMeanPerK:  3 * time.Millisecond,
	BarrierCost:     50 * time.Microsecond,
	LockCycles:      120,
}

// Machine executes the ATM tasks on a modeled multicore. Each Machine
// owns a private jitter stream that advances across calls, so repeated
// executions of the same task take different modeled times — by design.
// A Machine is not safe for concurrent use: it owns reusable scratch
// arrays so steady-state task invocations allocate nothing.
type Machine struct {
	prof   Profile
	jitter *rng.Rand
	src    broadphase.PairSource
	pool   *parexec.Pool
	scr    scratch

	// Telemetry phase marks: per-core cumulative op snapshots taken
	// after each parallel phase when a recorder is attached, converted
	// to critical-path spans by the platform adapter. Machine-owned
	// scratch, reused across tasks.
	marks   []phaseMark
	markOps []uint64 // len(marks)*Cores cumulative per-core ops
	marksOn bool
}

// phaseMark names one parallel phase; its work snapshot lives at the
// matching offset of markOps.
type phaseMark struct {
	name string
	arg  int32
}

// beginMarks clears the mark log and enables collection for the next
// task.
func (m *Machine) beginMarks() {
	m.marks = m.marks[:0]
	m.markOps = m.markOps[:0]
	m.marksOn = true
}

// markPhase snapshots the cumulative per-core tally at the end of a
// parallel phase; a no-op unless beginMarks was called. name must be
// a static string so steady-state marking stays allocation-free.
//
//atm:noalloc
func (m *Machine) markPhase(t *workTally, name string, arg int32) {
	if !m.marksOn {
		return
	}
	m.marks = append(m.marks, phaseMark{name: name, arg: arg})
	m.markOps = append(m.markOps, t.ops...)
}

// scratch holds the machine-owned arrays reused across invocations.
type scratch struct {
	tally     workTally
	locks     []sync.Mutex //atm:allow sync -- machine-owned stripe locks; arbitration order is the modeled FCFS behaviour
	state     []int32
	matchedBy []int32

	// snap is the committed-course snapshot in column (SoA) form.
	snap         airspace.Columns
	newDX, newDY []float64
	resolved     []bool

	bufs []candBuf
}

// candBuf is one modeled core's candidate buffer for the pruned scan,
// padded against false sharing of the slice headers.
type candBuf struct {
	cand []int32
	_    [40]byte
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// New returns a machine with the given profile; seed fixes the jitter
// stream so whole-program runs stay reproducible.
func New(p Profile, seed uint64) *Machine {
	if p.Cores <= 0 {
		panic("mimd: profile needs at least one core")
	}
	return &Machine{prof: p, jitter: rng.New(seed)}
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.prof.Name }

// SetPairSource installs a broadphase pair source for the Tasks 2-3
// scan (nil restores the all-pairs scan). A shared-memory multicore is
// the natural home for pruning: the index lives in the same shared
// memory the workers already scan.
func (m *Machine) SetPairSource(src broadphase.PairSource) { m.src = src }

// SetWorkers pins the host worker count that executes the modeled
// cores (n <= 0 restores the process-default pool). Host workers only
// change wall-clock speed: modeled time derives from per-core op
// tallies over the static core partition, which is identical at any
// worker count.
func (m *Machine) SetWorkers(n int) {
	if n <= 0 {
		m.pool = nil
	} else {
		m.pool = parexec.NewPool(n)
	}
}

// Deterministic reports false: MIMD timing varies run to run, which is
// the paper's core argument against it for hard real-time systems.
func (m *Machine) Deterministic() bool { return false }

// Aircraft match states for the lock-arbitrated correlation, kept in
// int32 so they can be read atomically by scanning workers.
const (
	acFree int32 = iota
	acMatched
	acWithdrawn
)

// workTally accumulates per-core op counts and lock statistics.
type workTally struct {
	ops   []uint64 // per worker
	locks uint64   // total lock acquisitions (atomic)
}

// tally resets and returns the machine's reusable work tally.
func (m *Machine) tally() *workTally {
	t := &m.scr.tally
	if cap(t.ops) < m.prof.Cores {
		t.ops = make([]uint64, m.prof.Cores)
	}
	t.ops = t.ops[:m.prof.Cores]
	for i := range t.ops {
		t.ops[i] = 0
	}
	t.locks = 0
	return t
}

// maxOps folds the per-core op tallies to the critical-path maximum.
//
//atm:ordered-merge
func (t *workTally) maxOps() uint64 {
	var m uint64
	for _, v := range t.ops {
		if v > m {
			m = v
		}
	}
	return m
}

// parallel runs body(core, lo, hi) over the static contiguous
// partition of [0, n) across the modeled cores. The logical cores are
// multiplexed onto the host worker pool: partitions — and therefore
// per-core op tallies and the modeled critical path — are fixed by the
// core count alone, while the host worker count only decides how many
// cores make real progress at once.
func (m *Machine) parallel(n int, body func(core, lo, hi int)) {
	cores := m.prof.Cores
	parexec.Resolve(m.pool).Run(cores, 1, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * n / cores
			hi := (c + 1) * n / cores
			if lo < hi {
				body(c, lo, hi)
			}
		}
	})
}

// contention returns the modeled slowdown factor at database size n.
func (m *Machine) contention(n int) float64 {
	p := &m.prof
	if n == 0 {
		return 1
	}
	return 1 + p.ContentionCoef*math.Pow(float64(n)/p.ContentionScale, p.ContentionExp)
}

// taskTime converts a tally into modeled time for one task invocation.
func (m *Machine) taskTime(n, phases int, t *workTally) time.Duration {
	p := &m.prof
	ops := t.maxOps() + t.locks*uint64(p.LockCycles)/uint64(p.Cores)
	base := float64(ops) / (p.IPC * p.ClockHz) * m.contention(n)
	jitter := m.jitter.Exp(float64(p.JitterMeanPerK) * float64(n) / 1000)
	return time.Duration(base*float64(time.Second)) +
		time.Duration(phases)*p.BarrierCost +
		time.Duration(jitter)
}

// Abstract op charges, aligned with the CUDA kernel charges so the
// platforms are compared on the same work units.
const (
	opsExpected  = 6
	opsBoxCheck  = 10
	opsClaim     = 12 // claim bookkeeping under a lock
	opsCommit    = 8
	opsWrap      = 6
	opsPairCheck = 40
	opsRotate    = 14
	// opsIndexBuild is charged per aircraft when a broadphase pair
	// source builds its index (envelope computation plus insertion).
	opsIndexBuild = 12
)

// lockStripes spreads per-aircraft locks to keep the real contention
// in the simulator itself bounded.
const lockStripes = 256

// Track runs Task 1 with radars partitioned across cores and
// first-come-first-served, lock-arbitrated claiming: the natural
// shared-memory port of Algorithm 1. Ambiguous geometry is therefore
// resolved in arrival order — nondeterministically under real
// concurrency, exactly as on real hardware.
//
//atm:allow sync,atomic -- FCFS lock-striped claim arbitration IS the modeled behaviour: this platform reports Deterministic()==false and its results are asserted only against the task invariants, never bit-for-bit
func (m *Machine) Track(w *airspace.World, f *radar.Frame) (tasks.CorrelateStats, time.Duration) {
	var st tasks.CorrelateStats
	n := w.N()
	r := f.N()
	ac := w.Aircraft
	reps := f.Reports
	tally := m.tally()
	phases := 0

	if cap(m.scr.state) < n {
		m.scr.state = make([]int32, n)
		m.scr.matchedBy = make([]int32, n)
	}
	if m.scr.locks == nil {
		m.scr.locks = make([]sync.Mutex, lockStripes)
	}
	state := m.scr.state[:n]         // acFree/acMatched/acWithdrawn
	matchedBy := m.scr.matchedBy[:n] // radar currently paired with aircraft
	locks := m.scr.locks

	phases++
	m.parallel(n, func(core, lo, hi int) {
		var ops uint64
		for i := lo; i < hi; i++ {
			a := &ac[i]
			a.ExpX = a.X + a.DX
			a.ExpY = a.Y + a.DY
			a.RMatch = airspace.MatchNone
			state[i] = acFree
			matchedBy[i] = -1
			ops += opsExpected
		}
		tally.ops[core] += ops
	})
	m.markPhase(tally, "expected", 0)
	f.Reset()

	boxHalf := tasks.InitialBoxHalf
	for pass := 0; pass < tasks.BoxPasses; pass++ {
		pending := 0
		for j := range reps {
			if reps[j].MatchWith == radar.Unmatched {
				pending++
			}
		}
		if pass < tasks.BoxPasses {
			st.PassRadars[pass] = pending
		}
		if pending == 0 {
			break
		}
		phases++
		var comparisons, discarded, withdrawn uint64
		m.parallel(r, func(core, lo, hi int) {
			var ops, comps uint64
			for j := lo; j < hi; j++ {
				rep := &reps[j]
				// A concurrent withdrawal may release this radar while
				// we read it, so the load must be atomic.
				if atomic.LoadInt32(&rep.MatchWith) != radar.Unmatched {
					continue
				}
				hits := 0
				cand := int32(-1)
				for p := 0; p < n; p++ {
					if atomic.LoadInt32(&state[p]) == acWithdrawn {
						continue
					}
					ops += opsBoxCheck
					comps++
					a := &ac[p]
					if rep.RX > a.ExpX-boxHalf && rep.RX < a.ExpX+boxHalf &&
						rep.RY > a.ExpY-boxHalf && rep.RY < a.ExpY+boxHalf {
						hits++
						cand = a.ID
						if hits > 1 {
							break
						}
					}
				}
				switch {
				case hits >= 2:
					atomic.StoreInt32(&rep.MatchWith, radar.Discarded)
					atomic.AddUint64(&discarded, 1)
				case hits == 1:
					ops += opsClaim
					atomic.AddUint64(&tally.locks, 1)
					mu := &locks[int(cand)%lockStripes]
					mu.Lock()
					switch atomic.LoadInt32(&state[cand]) {
					case acFree:
						atomic.StoreInt32(&state[cand], acMatched)
						matchedBy[cand] = int32(j)
						atomic.StoreInt32(&rep.MatchWith, cand)
					case acMatched:
						// Second radar reached an already-paired
						// aircraft: withdraw it and release its radar
						// (Algorithm 1 line 8). This radar retries with
						// the next, doubled box.
						atomic.StoreInt32(&state[cand], acWithdrawn)
						atomic.AddUint64(&withdrawn, 1)
						if prev := matchedBy[cand]; prev >= 0 {
							atomic.StoreInt32(&reps[prev].MatchWith, radar.Unmatched)
							matchedBy[cand] = -1
						}
					}
					mu.Unlock()
				}
			}
			tally.ops[core] += ops
			atomic.AddUint64(&comparisons, comps)
		})
		m.markPhase(tally, "boxpass", int32(pass))
		st.Comparisons += int(comparisons)
		st.DiscardedRadars += int(discarded)
		st.WithdrawnAircraft += int(withdrawn)
		boxHalf *= 2
	}

	// Commit phase.
	phases++
	m.parallel(n, func(core, lo, hi int) {
		var ops uint64
		for i := lo; i < hi; i++ {
			a := &ac[i]
			a.X, a.Y = a.ExpX, a.ExpY
			if state[i] == acMatched {
				a.RMatch = airspace.MatchOne
			} else if state[i] == acWithdrawn {
				a.RMatch = airspace.MatchDiscarded
			}
			ops += opsCommit
		}
		tally.ops[core] += ops
	})
	m.markPhase(tally, "commit", 0)
	phases++
	var matched uint64
	m.parallel(r, func(core, lo, hi int) {
		var ops uint64
		for j := lo; j < hi; j++ {
			rep := &reps[j]
			ops += opsCommit
			if rep.MatchWith >= 0 && state[rep.MatchWith] == acMatched {
				a := &ac[rep.MatchWith]
				a.X, a.Y = rep.RX, rep.RY
				atomic.AddUint64(&matched, 1)
			}
		}
		tally.ops[core] += ops
	})
	m.markPhase(tally, "commitRadar", 0)
	st.Matched = int(matched)
	for j := range reps {
		if reps[j].MatchWith == radar.Unmatched {
			st.UnmatchedRadars++
		}
	}
	phases++
	m.parallel(n, func(core, lo, hi int) {
		var ops uint64
		for i := lo; i < hi; i++ {
			airspace.Wrap(&ac[i])
			ops += opsWrap
		}
		tally.ops[core] += ops
	})
	m.markPhase(tally, "wrap", 0)

	return st, m.taskTime(n, phases, tally)
}

// DetectResolve runs Tasks 2-3 with aircraft partitioned across cores.
// Workers scan a shared snapshot of committed courses and write only
// their own aircraft, then a commit phase applies resolved courses —
// the same snapshot discipline as the CUDA kernel, since a lock-free
// shared-memory implementation needs it just as much.
//
//atm:allow atomic -- per-core conflict and rotation tallies are order-independent sums read only after the join
func (m *Machine) DetectResolve(w *airspace.World) (tasks.DetectStats, time.Duration) {
	n := w.N()
	ac := w.Aircraft
	tally := m.tally()
	phases := 0

	scr := &m.scr
	scr.snap.Resize(n)
	scr.newDX = growF(scr.newDX, n)
	scr.newDY = growF(scr.newDY, n)
	if cap(scr.resolved) < n {
		scr.resolved = make([]bool, n)
	}
	if len(scr.bufs) < m.prof.Cores {
		scr.bufs = make([]candBuf, m.prof.Cores)
	}
	snapX, snapY := scr.snap.X, scr.snap.Y
	snapDX, snapDY := scr.snap.DX, scr.snap.DY
	snapAlt := scr.snap.Alt
	newDX, newDY := scr.newDX, scr.newDY
	resolved := scr.resolved[:n]

	phases++
	m.parallel(n, func(core, lo, hi int) {
		var ops uint64
		for i := lo; i < hi; i++ {
			a := &ac[i]
			snapX[i], snapY[i] = a.X, a.Y
			snapDX[i], snapDY[i] = a.DX, a.DY
			snapAlt[i] = a.Alt
			newDX[i], newDY[i] = a.DX, a.DY
			resolved[i] = false
			ops += opsExpected
		}
		tally.ops[core] += ops
	})
	m.markPhase(tally, "snapshot", 0)

	// Broadphase index build: single-threaded host-side preparation,
	// charged as one extra phase of per-aircraft work. The snapshot is
	// already committed, and courses only rotate (same speed) during
	// resolution, so the index stays valid for the whole task.
	if m.src != nil {
		// An incremental source builds straight from the snapshot
		// columns; only the phase mark's name changes between update and
		// rebuild — the charge is identical, as bit-identity requires.
		name := "index"
		if im := broadphase.MaintainerOf(m.src); im != nil && im.Incremental() {
			if cp, ok := im.(broadphase.ColumnsPreparer); ok {
				cp.PrepareColumns(&scr.snap)
			} else {
				m.src.Prepare(w)
			}
			if im.LastPrepareIncremental() {
				name = "index.update"
			} else {
				name = "index.rebuild"
			}
		} else {
			m.src.Prepare(w)
		}
		phases++
		m.parallel(n, func(core, lo, hi int) {
			tally.ops[core] += uint64(hi-lo) * opsIndexBuild
		})
		m.markPhase(tally, name, 0)
	}

	// A sharded source additionally materializes the candidate table on
	// the host pool; scans then serve from it bit-identically (candidate
	// sets depend only on positions and speeds, which resolution's
	// rotations preserve), with the same modeled charge.
	var tab *broadphase.PairTable
	if ts := broadphase.TableOf(m.src); ts != nil {
		ts.SetPool(parexec.Resolve(m.pool))
		tab = ts.PrepareTable()
	}

	var conflicts, rotations, resolvedCount, unresolvedCount, pairChecks uint64
	scanOne := func(i, p int, vx, vy float64, checks *uint64, ops *uint64,
		earliest *float64, with *int32) {
		if p == i || math.Abs(snapAlt[p]-snapAlt[i]) >= airspace.AltBandFeet {
			*ops++
			return
		}
		*checks++
		tmin, tmax, ok := tasks.PairConflictAt(snapX[i], snapY[i], vx, vy,
			snapX[p], snapY[p], snapDX[p], snapDY[p])
		if ok && tmin < tmax && tmin < *earliest {
			*earliest = tmin
			*with = int32(p)
		}
	}
	scan := func(core, i int, vx, vy float64, ops *uint64) (earliest float64, with int32, critical bool) {
		earliest = airspace.SafeTime
		with = airspace.NoConflict
		checks := uint64(0)
		if m.src == nil {
			for p := 0; p < n; p++ {
				scanOne(i, p, vx, vy, &checks, ops, &earliest, &with)
			}
		} else if tab != nil {
			for _, p := range tab.Candidates(i) {
				scanOne(i, int(p), vx, vy, &checks, ops, &earliest, &with)
			}
		} else {
			buf := &scr.bufs[core]
			buf.cand = m.src.AppendCandidates(buf.cand[:0], w, &ac[i])
			for _, p := range buf.cand {
				scanOne(i, int(p), vx, vy, &checks, ops, &earliest, &with)
			}
		}
		*ops += checks * opsPairCheck
		atomic.AddUint64(&pairChecks, checks)
		return earliest, with, earliest < airspace.CriticalTime
	}

	phases++
	m.parallel(n, func(core, lo, hi int) {
		var ops uint64
		for i := lo; i < hi; i++ {
			a := &ac[i]
			a.ResetConflict()
			tmin, with, critical := scan(core, i, snapDX[i], snapDY[i], &ops)
			if !critical {
				continue
			}
			atomic.AddUint64(&conflicts, 1)
			a.Col = true
			a.ColWith = with
			a.TimeTill = tmin
			base := geom.Vec2{X: snapDX[i], Y: snapDY[i]}
			done := false
			for _, deg := range tasks.RotationSchedule() {
				atomic.AddUint64(&rotations, 1)
				ops += opsRotate
				v := base.Rotate(deg)
				a.BatX, a.BatY = v.X, v.Y
				tmin, with, critical = scan(core, i, v.X, v.Y, &ops)
				if !critical {
					newDX[i], newDY[i] = v.X, v.Y
					resolved[i] = true
					atomic.AddUint64(&resolvedCount, 1)
					done = true
					break
				}
				a.ColWith = with
				if tmin < a.TimeTill {
					a.TimeTill = tmin
				}
			}
			if !done {
				atomic.AddUint64(&unresolvedCount, 1)
			}
		}
		tally.ops[core] += ops
	})
	m.markPhase(tally, "scanresolve", 0)

	phases++
	m.parallel(n, func(core, lo, hi int) {
		var ops uint64
		for i := lo; i < hi; i++ {
			ops += opsCommit
			if resolved[i] {
				a := &ac[i]
				a.DX, a.DY = newDX[i], newDY[i]
				a.ResetConflict()
			}
		}
		tally.ops[core] += ops
	})
	m.markPhase(tally, "commit", 0)

	st := tasks.DetectStats{
		Conflicts:  int(conflicts),
		Rotations:  int(rotations),
		Resolved:   int(resolvedCount),
		Unresolved: int(unresolvedCount),
		PairChecks: int(pairChecks),
	}
	return st, m.taskTime(n, phases, tally)
}
