package scenario

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// TestWraparoundInvariant drives every family's world forward through
// the torus and checks the paper's re-entry rule at each step: an
// aircraft that exits the field at (x, y) re-enters at (-x, -y) with
// its velocity unchanged, and is inside the field afterwards.
func TestWraparoundInvariant(t *testing.T) {
	for _, f := range Families() {
		spec := DefaultSpec(f)
		for _, seed := range []uint64{1, 2018} {
			w := spec.Generate(400, rng.New(seed))
			wrapped := 0
			for step := 0; step < 3000; step++ {
				// One velocity step never overshoots the boundary by more
				// than the fastest aircraft moves in a period, so a wrapped
				// position is at worst that far outside the far edge (and
				// back inside within a step or two).
				const maxStep = airspace.SpeedMax / airspace.PeriodsPerHour
				for i := range w.Aircraft {
					a := &w.Aircraft[i]
					a.X += a.DX
					a.Y += a.DY
					x, y, dx, dy := a.X, a.Y, a.DX, a.DY
					exited := !airspace.InField(x, y)
					airspace.Wrap(a)
					if exited {
						wrapped++
						if a.X != -x || a.Y != -y {
							t.Fatalf("%s seed=%d step=%d aircraft %d: exited at (%g, %g), re-entered at (%g, %g), want (%g, %g)",
								f, seed, step, i, x, y, a.X, a.Y, -x, -y)
						}
					} else if a.X != x || a.Y != y {
						t.Fatalf("%s seed=%d step=%d aircraft %d: Wrap moved an in-field aircraft", f, seed, step, i)
					}
					if a.DX != dx || a.DY != dy {
						t.Fatalf("%s seed=%d step=%d aircraft %d: Wrap changed the velocity", f, seed, step, i)
					}
					if math.Abs(a.X) > airspace.FieldHalf+maxStep || math.Abs(a.Y) > airspace.FieldHalf+maxStep {
						t.Fatalf("%s seed=%d step=%d aircraft %d: further than one step outside the field after Wrap at (%g, %g)",
							f, seed, step, i, a.X, a.Y)
					}
				}
			}
			if f != Circle && wrapped == 0 {
				t.Errorf("%s seed=%d: no aircraft ever left the field in 3000 periods; the wraparound path went unexercised", f, seed)
			}
		}
	}
}

// TestCircleGuaranteedConflict is the circle family's defining
// property: everyone converges on the center, so every aircraft has at
// least one detected conflict partner (horizontal window open inside
// the detection horizon, altitudes inside the vertical band).
func TestCircleGuaranteedConflict(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"circle", 40},
		{"circle", 401},
		{"circle:radius=12,speed=500", 64},
		{"circle:radius=60,speed=300,phase=17", 129},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		w := spec.Generate(c.n, rng.New(2018))
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			partner := false
			for j := range w.Aircraft {
				if i == j {
					continue
				}
				b := &w.Aircraft[j]
				if !tasks.AltOverlap(a, b) {
					continue
				}
				if _, _, conflict := tasks.PairConflict(a.X, a.Y, a.DX, a.DY, b); conflict {
					partner = true
					break
				}
			}
			if !partner {
				t.Fatalf("%s n=%d: aircraft %d has no conflict partner within the horizon", c.spec, c.n, i)
			}
		}
	}
}

// TestStreamsInTrailSeparation: at t=0 every pair within one stream is
// separated by at least the configured minimum of in-trail spacing and
// lane gap — never below the separation standard — and shares one
// velocity vector, so that separation is preserved for all time.
func TestStreamsInTrailSeparation(t *testing.T) {
	for _, c := range []struct {
		text string
		n    int
	}{
		{"streams", 600},
		{"streams:streams=6,angle=30,spacing=4,lanegap=5", 600},
		{"streams:streams=1", 300}, // a single stream holds fewer aircraft
	} {
		text, n := c.text, c.n
		spec, err := ParseSpec(text)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(n); err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		w := spec.Generate(n, rng.New(2018))
		minSep := math.Min(spec.Spacing, spec.LaneGap)
		if minSep < airspace.SepTotal {
			t.Fatalf("%s: configured minimum %g below the separation standard", text, minSep)
		}
		for i := range w.Aircraft {
			for j := i + 1; j < n; j++ {
				if i%spec.Streams != j%spec.Streams {
					continue // different streams cross by design
				}
				a, b := &w.Aircraft[i], &w.Aircraft[j]
				if a.DX != b.DX || a.DY != b.DY {
					t.Fatalf("%s: stream mates %d and %d have different velocities", text, i, j)
				}
				if d := math.Hypot(a.X-b.X, a.Y-b.Y); d < minSep-1e-9 {
					t.Fatalf("%s: stream mates %d and %d only %g nm apart at t=0, want >= %g",
						text, i, j, d, minSep)
				}
			}
		}
	}
}

// TestBurstWavesSeparated: within one burst wall all velocities are
// equal and neighbours sit a full spacing apart; opposite walls of the
// same wave share an altitude band while consecutive waves are
// vertically separated beyond the conflict filter — the structure the
// periodic-stress claim rests on.
func TestBurstWavesSeparated(t *testing.T) {
	spec, err := ParseSpec("burst:interval=30")
	if err != nil {
		t.Fatal(err)
	}
	const n = 480
	w := spec.Generate(n, rng.New(2018))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := &w.Aircraft[i], &w.Aircraft[j]
			if i%spec.Waves != j%spec.Waves {
				if math.Abs(a.Alt-b.Alt) < airspace.AltBandFeet {
					t.Fatalf("waves %d and %d overlap vertically (%g vs %g ft)", i%spec.Waves, j%spec.Waves, a.Alt, b.Alt)
				}
				continue
			}
			if a.DX == b.DX { // same wall of the same wave
				if d := math.Hypot(a.X-b.X, a.Y-b.Y); d < spec.Spacing-1e-9 {
					t.Fatalf("wall mates %d and %d only %g nm apart, want >= %g", i, j, d, spec.Spacing)
				}
			}
		}
	}
}
