package vector

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/tasks"
)

func gridWorld(n int) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%side)*6 - airspace.SetupHalf
		a.Y = float64(i/side)*6 - airspace.SetupHalf
		a.DX = 0.02
		a.DY = 0.01
		a.Alt = 10000 + float64(i%4)*3000
		a.ResetConflict()
	}
	return w
}

func TestNewPanicsOnBadProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad profile did not panic")
		}
	}()
	New(Profile{})
}

func TestMaskHelpers(t *testing.T) {
	var k mask
	if !k.none() || k.count() != 0 {
		t.Fatal("zero mask misreported")
	}
	k[3] = true
	k[7] = true
	if k.none() || k.count() != 2 {
		t.Fatalf("mask count = %d", k.count())
	}
}

func TestLoadFieldTailLanes(t *testing.T) {
	src := []float64{1, 2, 3}
	var b block
	var valid mask
	loadField(&b, &valid, src, 0, len(src))
	if !valid[0] || !valid[2] || valid[3] {
		t.Fatalf("tail lanes wrong: %+v", valid)
	}
	if b[1] != 2 || b[3] != 0 {
		t.Fatalf("block = %+v", b)
	}
}

func TestTrackMatchesReferenceOnCleanTraffic(t *testing.T) {
	w := gridWorld(400)
	f := radar.Generate(w, 0.2, rng.New(1))
	refW, refF := w.Clone(), f.Clone()
	refStats := tasks.Correlate(refW, refF)

	m := New(XeonPhi7210)
	st, d := m.Track(w, f)
	if st.Matched != refStats.Matched {
		t.Fatalf("matched %d, reference %d", st.Matched, refStats.Matched)
	}
	if d <= 0 {
		t.Fatal("no modeled time")
	}
	for i := range w.Aircraft {
		if w.Aircraft[i].X != refW.Aircraft[i].X || w.Aircraft[i].Y != refW.Aircraft[i].Y {
			t.Fatalf("aircraft %d position differs from reference", i)
		}
	}
}

func TestTrackHighMatchRateOnRandomTraffic(t *testing.T) {
	w := airspace.NewWorld(2000, rng.New(7))
	f := radar.Generate(w, radar.DefaultNoise, rng.New(8))
	st, _ := New(XeonPhi7210).Track(w, f)
	if st.Matched < w.N()*95/100 {
		t.Fatalf("only %d of %d matched", st.Matched, w.N())
	}
}

func TestTrackTimeDeterministic(t *testing.T) {
	base := airspace.NewWorld(1000, rng.New(9))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(10))
	m := New(XeonPhi7210)
	_, first := m.Track(base.Clone(), frame.Clone())
	for i := 0; i < 3; i++ {
		_, again := m.Track(base.Clone(), frame.Clone())
		if again != first {
			t.Fatalf("run %d time %v != %v", i, again, first)
		}
	}
	if !m.Deterministic() {
		t.Fatal("vector model must report deterministic timing")
	}
}

func TestDetectResolveInvariants(t *testing.T) {
	w := airspace.NewWorld(600, rng.New(21))
	speeds := make([]float64, w.N())
	for i, a := range w.Aircraft {
		speeds[i] = a.SpeedKnots()
	}
	st, d := New(XeonPhi7210).DetectResolve(w)
	if d <= 0 {
		t.Fatal("no modeled time")
	}
	if st.Resolved+st.Unresolved > st.Conflicts {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	for i, a := range w.Aircraft {
		if math.Abs(a.SpeedKnots()-speeds[i]) > 1e-6 {
			t.Fatalf("aircraft %d speed changed", i)
		}
	}
}

func TestDetectResolveHeadOn(t *testing.T) {
	w := gridWorld(2)
	a, b := &w.Aircraft[0], &w.Aircraft[1]
	a.X, a.Y, a.DX, a.DY, a.Alt = 0, 0, 0.05, 0, 10000
	b.X, b.Y, b.DX, b.DY, b.Alt = 30, 0, -0.05, 0, 10000
	a.ResetConflict()
	b.ResetConflict()
	m := New(XeonPhi7210)
	for cycle := 0; cycle < 3; cycle++ {
		m.DetectResolve(w)
		if check := tasks.Detect(w.Clone()); check.Conflicts == 0 {
			return
		}
	}
	t.Fatal("head-on conflict not quiesced within 3 cycles")
}

func TestPhiFasterThanAVX2AtScale(t *testing.T) {
	// 64 cores x 8 lanes must beat 8 cores at the same workload.
	base := airspace.NewWorld(4000, rng.New(13))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(14))
	_, phi := New(XeonPhi7210).Track(base.Clone(), frame.Clone())
	_, avx := New(AVX2Workstation).Track(base.Clone(), frame.Clone())
	if phi >= avx {
		t.Fatalf("Xeon Phi (%v) not faster than the AVX2 workstation (%v)", phi, avx)
	}
}

func TestNearLinearScaling(t *testing.T) {
	// The Section 7.2 hypothesis: wide SIMD gives GPU-like near-linear
	// growth over the measured domain.
	m := New(XeonPhi7210)
	timeFor := func(n int) float64 {
		w := airspace.NewWorld(n, rng.New(11))
		f := radar.Generate(w, radar.DefaultNoise, rng.New(12))
		_, d := m.Track(w, f)
		return d.Seconds()
	}
	t4, t8 := timeFor(4000), timeFor(8000)
	if t8/t4 > 3.5 {
		t.Fatalf("scaling ratio %.2f for 2x aircraft — not SIMD-like", t8/t4)
	}
}

func TestEmptyWorld(t *testing.T) {
	m := New(XeonPhi7210)
	st, _ := m.Track(&airspace.World{}, &radar.Frame{})
	if st.Matched != 0 {
		t.Fatal("empty world matched")
	}
	dst, _ := m.DetectResolve(&airspace.World{})
	if dst.Conflicts != 0 {
		t.Fatal("empty world conflicted")
	}
}
