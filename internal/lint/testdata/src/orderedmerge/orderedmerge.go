// Fixture for the orderedmerge analyzer: annotated functions must fold
// per-chunk partials with index-ascending loops and no maps.
package fixture

type part struct {
	count int
	best  float64
	arg   int32
}

// Ascending fold over a chunk-indexed slice: the canonical shape.
//
//atm:noalloc
//atm:ordered-merge
func mergeAscending(parts []part) part {
	out := part{best: 1e18, arg: -1}
	for k := 0; k < len(parts); k++ { // clean: ascending index loop
		out.count += parts[k].count
		if parts[k].best < out.best {
			out.best = parts[k].best
			out.arg = parts[k].arg
		}
	}
	return out
}

// Range over a slice also ascends by specification.
//
//atm:ordered-merge
func mergeRange(parts []part) int {
	total := 0
	for _, p := range parts { // clean: slice range ascends
		total += p.count
	}
	return total
}

//atm:ordered-merge
func mergeDescending(parts []part) int { // want "no index-ascending merge loop"
	total := 0
	for k := len(parts) - 1; k >= 0; k-- { // want "descending for loop"
		total += parts[k].count
	}
	return total
}

//atm:ordered-merge
func mergeViaMap(parts []part) int {
	byChunk := map[int]int{} // want "map intermediary"
	for k := 0; k < len(parts); k++ {
		byChunk[k] = parts[k].count // want "map access"
	}
	total := 0
	for _, v := range byChunk { // want "range over a map merges partials in nondeterministic order"
		total += v
	}
	return total
}

//atm:ordered-merge
func noMergeLoop(parts []part) int { // want "no index-ascending merge loop"
	if len(parts) == 0 {
		return 0
	}
	return parts[0].count
}

// Unannotated functions may merge however they like.
func unchecked(parts map[int]part) int {
	total := 0
	for _, p := range parts {
		total += p.count
	}
	return total
}
