package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/airspace"
	"repro/internal/rng"
)

func TestRenderBasics(t *testing.T) {
	w := airspace.NewWorld(500, rng.New(1))
	var buf bytes.Buffer
	if err := Render(&buf, w, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Default 32 rows + 2 border rows + 1 caption.
	if len(lines) != 35 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.Contains(out, "500 aircraft") {
		t.Fatalf("caption missing:\n%s", lines[len(lines)-1])
	}
	// Some density glyph must appear.
	if !strings.ContainsAny(out, ".:+*#@") {
		t.Fatal("no aircraft rendered")
	}
}

func TestRenderConflictGlyph(t *testing.T) {
	w := &airspace.World{Aircraft: []airspace.Aircraft{
		{ID: 0, X: 0, Y: 0, Col: true},
		{ID: 1, X: 50, Y: 50},
	}}
	var buf bytes.Buffer
	if err := Render(&buf, w, Options{Width: 32, Height: 16}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "!") {
		t.Fatal("conflicting aircraft not marked")
	}
	if !strings.Contains(buf.String(), "1 in conflict") {
		t.Fatal("conflict count missing")
	}
}

func TestRenderOrientation(t *testing.T) {
	// An aircraft at the +Y edge must appear on the first interior row.
	w := &airspace.World{Aircraft: []airspace.Aircraft{{ID: 0, X: 0, Y: airspace.FieldHalf - 1}}}
	var buf bytes.Buffer
	if err := Render(&buf, w, Options{Width: 16, Height: 8}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if !strings.Contains(lines[1], ".") {
		t.Fatalf("top-edge aircraft not on first row:\n%s", buf.String())
	}
}

func TestRenderEmptyWorld(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, &airspace.World{}, Options{Width: 8, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 aircraft") {
		t.Fatal("empty caption wrong")
	}
}

func TestRenderDensityShades(t *testing.T) {
	// Pile many aircraft into one cell: the densest glyph appears.
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, 20)}
	for i := range w.Aircraft {
		w.Aircraft[i] = airspace.Aircraft{ID: int32(i), X: 1, Y: 1}
	}
	var buf bytes.Buffer
	if err := Render(&buf, w, Options{Width: 8, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "@") {
		t.Fatalf("dense cell not shaded:\n%s", buf.String())
	}
}

func TestRenderGridOption(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, &airspace.World{}, Options{Width: 32, Height: 16, ShowGrid: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "'") {
		t.Fatal("grid not drawn")
	}
}
