package mimd

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
	"repro/internal/telemetry"
)

// Platform adapts a Machine to the scheduler's platform interface.
type Platform struct {
	m   *Machine
	rec *telemetry.Recorder
}

// NewPlatform returns a scheduler-facing multicore platform. seed fixes
// the jitter stream for whole-program reproducibility.
func NewPlatform(p Profile, seed uint64) *Platform {
	return &Platform{m: New(p, seed)}
}

// Machine exposes the underlying multicore machine.
func (p *Platform) Machine() *Machine { return p.m }

// SetPairSource installs a broadphase pair source on the machine (nil
// restores the all-pairs scan).
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.m.SetPairSource(src) }

// SetWorkers pins the host worker count used to execute the modeled
// cores (n <= 0 restores the process-default pool).
func (p *Platform) SetWorkers(n int) { p.m.SetWorkers(n) }

// SetTelemetry attaches a recorder (nil detaches): each task then
// records one span per parallel phase plus an explicit overhead span.
// Phase durations are the critical core's op deltas at the base
// per-core rate plus the phase barrier; the remainder of the task —
// contention, lock arbitration, scheduling jitter, the modeled
// overheads that make MIMD timing non-constant — is emitted as a
// trailing "mimd.overhead" span, so the trace shows exactly how much
// of the task the paper's MIMD criticism accounts for. Spans tile the
// task's modeled time exactly (modulo nanosecond rounding).
func (p *Platform) SetTelemetry(rec *telemetry.Recorder) { p.rec = rec }

// emitMarks converts the machine's phase snapshots to back-to-back
// spans starting at the recorder's modeled now; total closes the
// trailing overhead span.
func (p *Platform) emitMarks(total time.Duration) {
	m := p.m
	t := &m.scr.tally
	cores := m.prof.Cores
	cstar := 0
	for c := 1; c < cores; c++ {
		if t.ops[c] > t.ops[cstar] {
			cstar = c
		}
	}
	rate := m.prof.IPC * m.prof.ClockHz
	base := p.rec.Now()
	off := base
	var prev uint64
	for k := range m.marks {
		mk := &m.marks[k]
		cur := m.markOps[k*cores+cstar]
		dur := time.Duration(float64(cur-prev)/rate*float64(time.Second)) + m.prof.BarrierCost
		p.rec.SpanArg(p.rec.Intern(mk.name), off, dur, mk.arg)
		off += dur
		prev = cur
	}
	if tail := total - (off - base); tail > 0 {
		p.rec.Span(p.rec.Intern("mimd.overhead"), off, tail)
	}
	m.marksOn = false
}

// Name returns the machine name.
func (p *Platform) Name() string { return p.m.Name() }

// Deterministic reports false — the MIMD property under test.
func (p *Platform) Deterministic() bool { return false }

// Track runs Task 1 and returns the modeled time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	if p.rec != nil {
		p.m.beginMarks()
	}
	st, d := p.m.Track(w, f)
	if p.rec != nil {
		p.emitMarks(d)
		p.rec.Counter(p.rec.Intern(telemetry.NameTrackMatched), int64(st.Matched))
	}
	return d
}

// DetectResolve runs Tasks 2-3 and returns the modeled time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	if p.rec != nil {
		p.m.beginMarks()
	}
	st, d := p.m.DetectResolve(w)
	if p.rec != nil {
		p.emitMarks(d)
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectConflicts), int64(st.Conflicts))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectRotations), int64(st.Rotations))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectResolved), int64(st.Resolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectUnresolved), int64(st.Unresolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectPairChecks), int64(st.PairChecks))
	}
	return d
}
