// Package repro is a from-scratch Go reproduction of "Performance
// Comparison of NVIDIA accelerators with SIMD, Associative, and
// Multi-core Processors for Air Traffic Management" (Shaker, Sharma,
// Baker, Yuan; ICPP 2018 Companion).
//
// The library implements the paper's three compute-intensive ATM tasks
// (radar tracking & correlation, Batcher collision detection, rotation
// collision resolution), the simulated airfield that drives them, and
// deterministic simulators of the four architectures the paper
// compares: three NVIDIA CUDA devices, the STARAN associative
// processor, the ClearSpeed CSX600 AP emulation, and a 16-core Xeon
// multicore.
//
// Entry points:
//
//   - repro/internal/core — bind a platform to a simulated airfield and
//     run the 8-second major cycle with deadline accounting;
//   - repro/internal/experiments — regenerate every figure and table of
//     the paper's evaluation;
//   - cmd/atmsim, cmd/atmbench, cmd/atmfit — command-line front ends;
//   - examples/ — runnable scenarios (quickstart, deadlines, drone
//     swarm, conflict storm).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
