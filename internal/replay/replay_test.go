package replay

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/airspace"
	"repro/internal/rng"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	w := airspace.NewWorld(200, rng.New(1))
	w.Aircraft[3].Col = true
	w.Aircraft[3].ColWith = 7
	w.Aircraft[3].TimeTill = 42

	got := Restore(Snapshot(w))
	if got.N() != w.N() {
		t.Fatalf("N = %d", got.N())
	}
	for i := range w.Aircraft {
		a, b := &w.Aircraft[i], &got.Aircraft[i]
		if a.ID != b.ID || a.X != b.X || a.Y != b.Y || a.DX != b.DX || a.DY != b.DY || a.Alt != b.Alt {
			t.Fatalf("aircraft %d kinematics differ", i)
		}
		if a.Col != b.Col {
			t.Fatalf("aircraft %d conflict flag differs", i)
		}
	}
	if got.Aircraft[3].ColWith != 7 || got.Aircraft[3].TimeTill != 42 {
		t.Fatal("conflict detail lost")
	}
	// Non-conflicting aircraft get clean defaults.
	if got.Aircraft[0].ColWith != airspace.NoConflict || got.Aircraft[0].TimeTill != airspace.SafeTime {
		t.Fatal("clean aircraft defaults wrong")
	}
}

func TestRecorderStreamRoundTrip(t *testing.T) {
	w := airspace.NewWorld(50, rng.New(2))
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.SnapshotStride = 4
	for p := 0; p < 10; p++ {
		if err := rec.WritePeriod(w, time.Duration(p)*time.Millisecond, 0, p == 7); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	snapshots, periods := 0, 0
	for {
		record, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if record.Period != periods {
			t.Fatalf("period %d out of order (%d)", record.Period, periods)
		}
		if record.Task1 != time.Duration(periods)*time.Millisecond {
			t.Fatalf("period %d task1 = %v", periods, record.Task1)
		}
		if len(record.Aircraft) > 0 {
			snapshots++
			if len(record.Aircraft) != 50 {
				t.Fatalf("snapshot has %d aircraft", len(record.Aircraft))
			}
		}
		periods++
	}
	if periods != 10 {
		t.Fatalf("read %d periods", periods)
	}
	if snapshots != 3 { // periods 0, 4, 8
		t.Fatalf("snapshots = %d, want 3", snapshots)
	}
}

func TestSummarize(t *testing.T) {
	w := airspace.NewWorld(10, rng.New(3))
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for p := 0; p < 16; p++ {
		t23 := time.Duration(0)
		if p == 15 {
			t23 = 5 * time.Millisecond
		}
		if err := rec.WritePeriod(w, time.Millisecond, t23, p == 15); err != nil {
			t.Fatal(err)
		}
	}
	rec.Flush()
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Periods != 16 || s.Misses != 1 || s.Snapshots != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Task1 != 16*time.Millisecond || s.Task23 != 5*time.Millisecond {
		t.Fatalf("summary durations = %+v", s)
	}
}

func TestReaderBadInput(t *testing.T) {
	r := NewReader(strings.NewReader("not json\n"))
	if _, err := r.Next(); err == nil {
		t.Fatal("bad record accepted")
	}
}

func TestReaderEmpty(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestDefaultStride(t *testing.T) {
	w := airspace.NewWorld(5, rng.New(4))
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.SnapshotStride = 0 // force default
	for p := 0; p < 17; p++ {
		if err := rec.WritePeriod(w, 0, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	rec.Flush()
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Snapshots != 2 { // periods 0 and 16
		t.Fatalf("snapshots = %d, want 2", s.Snapshots)
	}
}
