package broadphase

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/airspace"
)

// Grid cell-size bounds for the automatic derivation: below MinCellNM
// the per-query cell walk dominates, above MaxCellNM a cell holds most
// of the field and pruning degenerates toward brute force.
const (
	MinCellNM     = 8.0
	MaxCellNM     = 64.0
	DefaultCellNM = 32.0
)

// Grid is a uniform hash grid over the 256×256 nm field treated as a
// torus: cell coordinates are folded modulo the grid dimensions, so an
// envelope spilling past one field edge lands in the cells on the
// opposite side. Because the conflict equations are purely linear (the
// (x, y) → (−x, −y) re-entry rule is applied by Task 1, never inside
// detection), the folding is a hashing choice, not a geometric claim:
// it can only merge far-apart cells into one bucket, which adds
// candidates and never loses one.
//
// Each aircraft is inserted into every cell its reach envelope touches;
// a query walks the cells touched by the track's own envelope. Two
// overlapping envelopes share at least one cell, so the candidate set
// covers every pair the exactness argument requires.
type Grid struct {
	// cellNM, when positive, fixes the cell size; otherwise Prepare
	// derives it from the mean envelope width of the current world.
	cellNM float64

	cell  float64
	nx    int
	cells [][]int32
	n     int

	// scratch pools *gridScratch for concurrent queries. Held by
	// pointer so copying a Grid value cannot duplicate pool state (see
	// the atmlint syncfield rule); the constructors initialize it.
	scratch *sync.Pool
}

// gridScratch accumulates one query's candidate set as a bitmap: a set
// bit per candidate index gives deduplication for free and a
// trailing-zeros walk emits the indices already in ascending order, so
// no per-query comparison sort is needed (one sort per track dominated
// detection wall time at 10k+ aircraft).
type gridScratch struct {
	words []uint64
}

// NewGrid returns a grid source that derives its cell size from the
// traffic on every Prepare.
func NewGrid() *Grid { return &Grid{scratch: &sync.Pool{}} }

// NewGridCell returns a grid source with a fixed cell size in nautical
// miles. It panics if cellNM is not positive.
func NewGridCell(cellNM float64) *Grid {
	if cellNM <= 0 {
		panic("broadphase: grid cell size must be positive")
	}
	return &Grid{cellNM: cellNM, scratch: &sync.Pool{}}
}

// Name returns "grid".
func (g *Grid) Name() string { return GridName }

// CellNM returns the cell size chosen by the last Prepare.
func (g *Grid) CellNM() float64 { return g.cell }

// Prepare bins every aircraft's reach envelope into the grid.
func (g *Grid) Prepare(w *airspace.World) {
	n := w.N()
	g.n = n

	cell := g.cellNM
	if cell <= 0 {
		// Derive from the mean envelope width: a cell that roughly
		// matches the typical envelope keeps both the cells-per-insert
		// and the cells-per-query walk small.
		if n == 0 {
			cell = DefaultCellNM
		} else {
			sum := 0.0
			for i := range w.Aircraft {
				sum += 2 * Reach(&w.Aircraft[i])
			}
			cell = math.Min(MaxCellNM, math.Max(MinCellNM, sum/float64(n)))
		}
	}
	g.cell = cell
	g.nx = int(math.Ceil(2 * airspace.FieldHalf / cell))
	if g.nx < 1 {
		g.nx = 1
	}

	want := g.nx * g.nx
	if len(g.cells) != want {
		g.cells = make([][]int32, want)
	} else {
		for i := range g.cells {
			g.cells[i] = g.cells[i][:0]
		}
	}
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		r := Reach(a)
		cx0, cxn := g.cellSpan(a.X-r, a.X+r)
		cy0, cyn := g.cellSpan(a.Y-r, a.Y+r)
		for yi := 0; yi < cyn; yi++ {
			row := g.fold(cy0+yi) * g.nx
			for xi := 0; xi < cxn; xi++ {
				c := row + g.fold(cx0+xi)
				g.cells[c] = append(g.cells[c], int32(i))
			}
		}
	}
}

// cellSpan returns the first (unfolded) cell coordinate covering lo and
// the number of cells to walk, clamped to the grid width so a fully
// wrapped span visits each cell exactly once.
func (g *Grid) cellSpan(lo, hi float64) (c0, count int) {
	c0 = int(math.Floor((lo + airspace.FieldHalf) / g.cell))
	c1 := int(math.Floor((hi + airspace.FieldHalf) / g.cell))
	count = c1 - c0 + 1
	if count > g.nx {
		count = g.nx
	}
	return c0, count
}

// fold maps an unfolded cell coordinate onto the torus.
func (g *Grid) fold(c int) int {
	c %= g.nx
	if c < 0 {
		c += g.nx
	}
	return c
}

// Candidates walks the cells the track's envelope touches and returns
// the deduplicated, ascending union of their occupants. Safe for
// concurrent use after Prepare.
func (g *Grid) Candidates(w *airspace.World, track *airspace.Aircraft) []int32 {
	return g.AppendCandidates(nil, w, track)
}

// getScratch returns a pooled bitmap sized for nw words; growth is the
// cold path kept outside AppendCandidates' noalloc contract.
func (g *Grid) getScratch(nw int) *gridScratch {
	sc, _ := g.scratch.Get().(*gridScratch)
	if sc == nil {
		sc = &gridScratch{}
	}
	if len(sc.words) < nw {
		sc.words = make([]uint64, nw)
	}
	return sc
}

// AppendCandidates is Candidates emitting into the caller's buffer: the
// bitmap walk appends straight to dst, so a reused buffer makes the
// query allocation-free. Safe for concurrent use after Prepare.
//
//atm:noalloc
func (g *Grid) AppendCandidates(dst []int32, w *airspace.World, track *airspace.Aircraft) []int32 {
	if g.n == 0 {
		return dst
	}
	r := Reach(track)
	cx0, cxn := g.cellSpan(track.X-r, track.X+r)
	cy0, cyn := g.cellSpan(track.Y-r, track.Y+r)

	nw := (g.n + 63) / 64
	sc := g.getScratch(nw) //atm:allow noallocflow -- scratch acquisition allocates only on pool miss or fleet growth; steady state reuses pooled words
	words := sc.words
	for yi := 0; yi < cyn; yi++ {
		row := g.fold(cy0+yi) * g.nx
		for xi := 0; xi < cxn; xi++ {
			for _, id := range g.cells[row+g.fold(cx0+xi)] {
				words[id>>6] |= 1 << (uint(id) & 63)
			}
		}
	}
	for wi := 0; wi < nw; wi++ {
		word := words[wi]
		if word == 0 {
			continue
		}
		words[wi] = 0
		base := int32(wi) << 6
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	g.scratch.Put(sc)
	return dst
}
