package ap

import (
	"testing"

	"repro/internal/rng"
)

func TestBitPlanesSetGet(t *testing.T) {
	bp := NewBitPlanes(130) // spans three 64-bit mask words
	r := rng.New(1)
	want := make([]uint32, 130)
	for i := range want {
		want[i] = uint32(r.IntN(1 << WordBits))
		bp.Set(i, want[i])
	}
	for i, w := range want {
		if got := bp.Get(i); got != w {
			t.Fatalf("record %d = %d, want %d", i, got, w)
		}
	}
}

func TestBitPlanesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	NewBitPlanes(-1)
}

func TestBitPlanesTruncatesToWordBits(t *testing.T) {
	bp := NewBitPlanes(1)
	bp.Set(0, 1<<WordBits|5)
	if got := bp.Get(0); got != 5 {
		t.Fatalf("Get = %d, want 5 (truncated)", got)
	}
}

func TestAddBroadcastMasked(t *testing.T) {
	const n = 100
	m := NewMachine(STARAN, n)
	bp := NewBitPlanes(n)
	r := rng.New(2)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(r.IntN(1 << 12))
		bp.Set(i, vals[i])
	}
	// Mask the even records only.
	m.Search(1, func(i int) bool { return i%2 == 0 })
	before := m.Cycles()
	m.AddBroadcast(bp, 777)
	charged := m.Cycles() - before
	if charged < 2*WordBits {
		t.Fatalf("bit-serial add charged only %d cycles, want >= %d", charged, 2*WordBits)
	}
	for i := range vals {
		want := vals[i]
		if i%2 == 0 {
			want = (vals[i] + 777) & (1<<WordBits - 1)
		}
		if got := bp.Get(i); got != want {
			t.Fatalf("record %d = %d, want %d", i, got, want)
		}
	}
}

func TestAddBroadcastOverflowWraps(t *testing.T) {
	m := NewMachine(STARAN, 1)
	bp := NewBitPlanes(1)
	bp.Set(0, 1<<WordBits-1)
	m.Search(1, func(i int) bool { return true })
	m.AddBroadcast(bp, 1)
	if got := bp.Get(0); got != 0 {
		t.Fatalf("wrap = %d, want 0", got)
	}
}

func TestLessBroadcastMatchesScalarCompare(t *testing.T) {
	const n = 300
	r := rng.New(3)
	vals := make([]uint32, n)
	bp := NewBitPlanes(n)
	for i := range vals {
		vals[i] = uint32(r.IntN(1 << WordBits))
		bp.Set(i, vals[i])
	}
	for _, threshold := range []uint32{0, 1, 500, 32768, 1<<WordBits - 1} {
		m := NewMachine(STARAN, n)
		m.Search(1, func(i int) bool { return true })
		m.LessBroadcast(bp, threshold)
		for i, on := range m.Mask() {
			want := vals[i] < threshold
			if on != want {
				t.Fatalf("threshold %d record %d (=%d): mask %v, want %v",
					threshold, i, vals[i], on, want)
			}
		}
	}
}

func TestLessBroadcastRespectsMask(t *testing.T) {
	const n = 64
	bp := NewBitPlanes(n)
	for i := 0; i < n; i++ {
		bp.Set(i, 0) // everything is < 5
	}
	m := NewMachine(STARAN, n)
	m.Search(1, func(i int) bool { return i < 10 })
	m.LessBroadcast(bp, 5)
	if got := m.CountResponders(); got != 10 {
		t.Fatalf("responders = %d, want only the 10 pre-masked", got)
	}
}

func TestBitSerialCostScalesWithWordWidth(t *testing.T) {
	// The point of the layer: one word operation costs O(WordBits)
	// cycles per tile — which is where the STARAN profile's ArithCycles
	// summary comes from.
	m := NewMachine(STARAN, 50)
	bp := NewBitPlanes(50)
	m.Search(1, func(i int) bool { return true })
	before := m.Cycles()
	m.LessBroadcast(bp, 1234)
	compareCost := m.Cycles() - before
	if compareCost < WordBits || compareCost > 4*WordBits+2*uint64(STARAN.BroadcastCycles)+uint64(STARAN.ArithCycles) {
		t.Fatalf("bit-serial compare cost %d cycles, want O(WordBits=%d)", compareCost, WordBits)
	}
}

func TestRegisterSizeMismatchPanics(t *testing.T) {
	m := NewMachine(STARAN, 4)
	bp := NewBitPlanes(8)
	for name, f := range map[string]func(){
		"AddBroadcast":  func() { m.AddBroadcast(bp, 1) },
		"LessBroadcast": func() { m.LessBroadcast(bp, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched register did not panic", name)
				}
			}()
			f()
		}()
	}
}
