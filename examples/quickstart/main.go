// Quickstart: simulate one 8-second major cycle of air traffic
// management for 4000 aircraft on the Titan X (Pascal) device model and
// print the task timings and deadline record.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	// Pick a platform from the registry: the three NVIDIA device
	// models, the STARAN associative processor, the ClearSpeed
	// emulation, or the 16-core Xeon.
	p, err := platform.New(platform.TitanXPascal, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Build the simulated airfield: 4000 aircraft with random
	// positions, velocities and altitudes per the paper's SetupFlight.
	sys := core.NewSystem(p, core.Config{N: 4000, Seed: 42})

	// One major cycle = 16 half-second periods. Task 1 (tracking &
	// correlation) runs every period; Tasks 2-3 (collision detection &
	// resolution) run in the 16th.
	sys.RunMajorCycles(1)

	st := sys.Stats()
	t1 := st.Task(core.Task1)
	t23 := st.Task(core.Task23)
	fmt.Printf("platform     : %s\n", p.Name())
	fmt.Printf("aircraft     : %d\n", sys.World.N())
	fmt.Printf("Task 1 mean  : %v over %d periods (max %v)\n", t1.Mean(), t1.Runs, t1.Max)
	fmt.Printf("Tasks 2+3    : %v (once per major cycle)\n", t23.Mean())
	fmt.Printf("deadlines    : %d missed of %d periods (budget %v)\n",
		st.PeriodMisses, st.Periods, sched.PeriodDur)

	// The world is live: inspect any aircraft record.
	a := sys.World.Aircraft[0]
	fmt.Printf("\naircraft 0   : pos=(%.2f, %.2f) nm, %.0f knots, alt %.0f ft\n",
		a.X, a.Y, a.SpeedKnots(), a.Alt)
}
