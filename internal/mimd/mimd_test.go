package mimd

import (
	"math"
	"testing"
	"time"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/tasks"
)

func gridWorld(n int) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%side)*6 - airspace.SetupHalf
		a.Y = float64(i/side)*6 - airspace.SetupHalf
		a.DX = 0.02
		a.DY = 0.01
		a.Alt = 10000 + float64(i%4)*3000
		a.ResetConflict()
	}
	return w
}

func TestNewPanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-core profile did not panic")
		}
	}()
	New(Profile{}, 1)
}

func TestTrackMatchesReferenceOnCleanTraffic(t *testing.T) {
	w := gridWorld(400)
	f := radar.Generate(w, 0.2, rng.New(1))
	refW, refF := w.Clone(), f.Clone()
	refStats := tasks.Correlate(refW, refF)

	m := New(Xeon16, 1)
	st, _ := m.Track(w, f)
	if st.Matched != refStats.Matched {
		t.Fatalf("matched %d, reference %d", st.Matched, refStats.Matched)
	}
	for i := range w.Aircraft {
		if w.Aircraft[i].X != refW.Aircraft[i].X || w.Aircraft[i].Y != refW.Aircraft[i].Y {
			t.Fatalf("aircraft %d position differs from reference", i)
		}
	}
}

func TestTrackHighMatchRateOnRandomTraffic(t *testing.T) {
	w := airspace.NewWorld(3000, rng.New(7))
	f := radar.Generate(w, radar.DefaultNoise, rng.New(8))
	st, _ := New(Xeon16, 2).Track(w, f)
	if st.Matched < w.N()*95/100 {
		t.Fatalf("only %d of %d matched", st.Matched, w.N())
	}
}

func TestTimingIsNonDeterministic(t *testing.T) {
	// The heart of the paper's MIMD critique: the same task on the same
	// data takes a different time each invocation.
	base := airspace.NewWorld(1000, rng.New(9))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(10))
	m := New(Xeon16, 3)
	seen := map[time.Duration]bool{}
	for i := 0; i < 5; i++ {
		_, d := m.Track(base.Clone(), frame.Clone())
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("5 identical runs produced identical times: %v", seen)
	}
	if m.Deterministic() {
		t.Fatal("MIMD machine must not claim determinism")
	}
}

func TestSameSeedSameTimeSequence(t *testing.T) {
	// Whole-program reproducibility: two machines with the same seed
	// draw the same jitter sequence.
	base := airspace.NewWorld(500, rng.New(11))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(12))
	m1 := New(Xeon16, 42)
	m2 := New(Xeon16, 42)
	for i := 0; i < 3; i++ {
		_, d1 := m1.Track(base.Clone(), frame.Clone())
		_, d2 := m2.Track(base.Clone(), frame.Clone())
		if d1 != d2 {
			t.Fatalf("run %d: same seed, different times %v vs %v", i, d1, d2)
		}
	}
}

func TestContentionGrowsSuperlinearly(t *testing.T) {
	m := New(Xeon16, 1)
	c1 := m.contention(2000)
	c2 := m.contention(16000)
	c3 := m.contention(32000)
	if !(c1 < c2 && c2 < c3) {
		t.Fatalf("contention not increasing: %v %v %v", c1, c2, c3)
	}
	// Superlinear: the factor itself must grow faster than N.
	if (c3-1)/(c2-1) < 2 {
		t.Fatalf("contention growth too shallow: %v -> %v", c2, c3)
	}
	if m.contention(0) != 1 {
		t.Fatal("empty database must have unit contention")
	}
}

func TestDetectResolveInvariants(t *testing.T) {
	w := airspace.NewWorld(800, rng.New(21))
	speeds := make([]float64, w.N())
	for i, a := range w.Aircraft {
		speeds[i] = a.SpeedKnots()
	}
	st, d := New(Xeon16, 5).DetectResolve(w)
	if d <= 0 {
		t.Fatal("no modeled time")
	}
	if st.Resolved+st.Unresolved > st.Conflicts {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	for i, a := range w.Aircraft {
		if math.Abs(a.SpeedKnots()-speeds[i]) > 1e-6 {
			t.Fatalf("aircraft %d speed changed", i)
		}
	}
}

func TestDetectResolveHeadOnQuiesces(t *testing.T) {
	w := gridWorld(2)
	a, b := &w.Aircraft[0], &w.Aircraft[1]
	a.X, a.Y, a.DX, a.DY, a.Alt = 0, 0, 0.05, 0, 10000
	b.X, b.Y, b.DX, b.DY, b.Alt = 30, 0, -0.05, 0, 10000
	a.ResetConflict()
	b.ResetConflict()
	m := New(Xeon16, 6)
	for cycle := 0; cycle < 3; cycle++ {
		m.DetectResolve(w)
		if check := tasks.Detect(w.Clone()); check.Conflicts == 0 {
			return
		}
	}
	t.Fatal("head-on conflict not quiesced within 3 cycles")
}

func TestXeonSlowerThanLinearAtScale(t *testing.T) {
	// The multicore curve must grow clearly faster than linear: 2x the
	// aircraft must cost more than 3x the time at scale (quadratic work
	// on fixed cores plus growing contention).
	m := New(Xeon16, 7)
	timeFor := func(n int) float64 {
		w := airspace.NewWorld(n, rng.New(13))
		f := radar.Generate(w, radar.DefaultNoise, rng.New(14))
		// Average over a few periods to tame jitter.
		total := 0.0
		for k := 0; k < 5; k++ {
			_, d := m.Track(w.Clone(), f.Clone())
			total += d.Seconds()
		}
		return total / 5
	}
	t8 := timeFor(8000)
	t16 := timeFor(16000)
	if t16/t8 < 3 {
		t.Fatalf("Xeon scaling ratio %.2f for 2x aircraft — should be superlinear", t16/t8)
	}
}

func TestTrackTimeIncludesJitterTail(t *testing.T) {
	// Across many draws the jitter must occasionally spike well above
	// its mean — that tail is what produces the sporadic misses.
	m := New(Xeon16, 8)
	base := airspace.NewWorld(200, rng.New(15))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(16))
	var min, max time.Duration
	for i := 0; i < 50; i++ {
		_, d := m.Track(base.Clone(), frame.Clone())
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max < 2*min {
		t.Fatalf("jitter spread too tight: min=%v max=%v", min, max)
	}
}

func TestEmptyWorld(t *testing.T) {
	w := &airspace.World{}
	f := &radar.Frame{}
	m := New(Xeon16, 9)
	st, _ := m.Track(w, f)
	if st.Matched != 0 {
		t.Fatalf("empty world matched %d", st.Matched)
	}
	dst, _ := m.DetectResolve(w)
	if dst.Conflicts != 0 {
		t.Fatalf("empty world had conflicts")
	}
}
