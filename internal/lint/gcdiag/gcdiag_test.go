package gcdiag_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/lint/gcdiag"
)

func collectFixture(t *testing.T) []gcdiag.Directive {
	t.Helper()
	dirs, err := gcdiag.Collect([]string{"testdata/fix"})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ kind, fn string }{
		{"inline", "add"},
		{"noescape", "fill"},
		{"nobce", "sum3"},
	}
	if len(dirs) != len(want) {
		t.Fatalf("collected %d directives, want %d: %v", len(dirs), len(want), dirs)
	}
	for i, w := range want {
		d := dirs[i]
		if d.Kind != w.kind || d.Func != w.fn {
			t.Fatalf("directive %d = %s %s, want %s %s", i, d.Kind, d.Func, w.kind, w.fn)
		}
		if d.File != "testdata/fix/fix.go" || d.DeclLine == 0 || d.EndLine < d.StartLine {
			t.Fatalf("directive %d has bad position: %+v", i, d)
		}
	}
	return dirs
}

func TestCollect(t *testing.T) {
	collectFixture(t)
}

func TestParseDiagnostics(t *testing.T) {
	input := strings.Join([]string{
		"# repro/internal/tasks",
		"tasks.go:10:6: can inline scanPairInto with cost 42 as: ...",
		"tasks.go:20:6: cannot inline scanPar: function too complex: cost 90 exceeds budget 80",
		"tasks.go:31:12: s escapes to heap:",
		"  flow: explanation lines are indented and skipped",
		"tasks.go:32:9: moved to heap: buf",
		"tasks.go:33:2: dst does not escape",
		"tasks.go:40:14: Found IsInBounds",
		"tasks.go:41:14: Found IsSliceInBounds",
		"not a position line",
	}, "\n")
	diags, err := gcdiag.ParseDiagnostics(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []gcdiag.DiagKind{
		gcdiag.CanInline, gcdiag.CannotInline, gcdiag.Escape,
		gcdiag.Escape, gcdiag.BoundsCheck, gcdiag.BoundsCheck,
	}
	if len(diags) != len(wantKinds) {
		t.Fatalf("parsed %d diagnostics, want %d: %v", len(diags), len(wantKinds), diags)
	}
	for i, k := range wantKinds {
		if diags[i].Kind != k {
			t.Errorf("diag %d kind = %v, want %v (%s)", i, diags[i].Kind, k, diags[i].Text)
		}
		if diags[i].File != "tasks.go" {
			t.Errorf("diag %d file = %q", i, diags[i].File)
		}
	}
}

// TestCheckClean feeds compiler output that upholds all three
// directives: an inline verdict at add's declaration and no escape or
// bounds-check diagnostics anywhere.
func TestCheckClean(t *testing.T) {
	dirs := collectFixture(t)
	output := fmt.Sprintf("testdata/fix/fix.go:%d:6: can inline add with cost 4 as: func(int, int) int { return a + b }\n", dirs[0].DeclLine)
	diags, err := gcdiag.ParseDiagnostics(strings.NewReader(output))
	if err != nil {
		t.Fatal(err)
	}
	if vs := gcdiag.Check(dirs, diags); len(vs) != 0 {
		t.Fatalf("clean output produced violations: %v", vs)
	}
}

// TestCheckBroken is the deliberately-broken fixture: the compiler
// contradicts every directive, and the gate must fail each one with a
// position-anchored violation.
func TestCheckBroken(t *testing.T) {
	dirs := collectFixture(t)
	add, fill, sum3 := dirs[0], dirs[1], dirs[2]
	output := strings.Join([]string{
		fmt.Sprintf("testdata/fix/fix.go:%d:6: cannot inline add: function too complex: cost 90 exceeds budget 80", add.DeclLine),
		fmt.Sprintf("testdata/fix/fix.go:%d:11: moved to heap: v", fill.StartLine),
		fmt.Sprintf("testdata/fix/fix.go:%d:12: Found IsInBounds", sum3.EndLine),
	}, "\n")
	diags, err := gcdiag.ParseDiagnostics(strings.NewReader(output))
	if err != nil {
		t.Fatal(err)
	}
	vs := gcdiag.Check(dirs, diags)
	if len(vs) != 3 {
		t.Fatalf("broken output produced %d violations, want 3: %v", len(vs), vs)
	}
	wantSubstrings := []string{
		`compiler says "cannot inline add`,
		"value escapes to the heap",
		"bounds check not eliminated",
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(vs[i].String(), want) {
			t.Errorf("violation %d = %q, want substring %q", i, vs[i], want)
		}
	}
}

// TestCheckMissingVerdict: an //atm:inline directive with no inlining
// verdict at all must fail — that is how the gate catches a build run
// without -gcflags=-m.
func TestCheckMissingVerdict(t *testing.T) {
	dirs := collectFixture(t)
	vs := gcdiag.Check(dirs[:1], nil)
	if len(vs) != 1 || !strings.Contains(vs[0].String(), "no inlining verdict") {
		t.Fatalf("got %v, want one missing-verdict violation", vs)
	}
}

// TestCheckSuffixMatch: the compiler prints paths relative to its own
// working directory; directives collected from a different root must
// still match by path suffix.
func TestCheckSuffixMatch(t *testing.T) {
	dirs := collectFixture(t)
	output := fmt.Sprintf("fix/fix.go:%d:6: can inline add with cost 4 as: func(int, int) int { return a + b }\n", dirs[0].DeclLine)
	diags, err := gcdiag.ParseDiagnostics(strings.NewReader(output))
	if err != nil {
		t.Fatal(err)
	}
	if vs := gcdiag.Check(dirs[:1], diags); len(vs) != 0 {
		t.Fatalf("suffix-matched path produced violations: %v", vs)
	}
}
