package lint

import (
	"go/ast"
)

// NoallocFlow extends the per-function noalloc contract across call
// boundaries: every function transitively reachable from an
// //atm:noalloc root — through direct calls, concrete and
// interface-dispatched method calls, and closure / method-value
// creation — must itself be one of
//
//   - annotated //atm:noalloc (so the per-package noalloc analyzer
//     checks its body and this analyzer keeps traversing),
//   - waived at the call site or caller with
//     //atm:allow noallocflow -- <why>, or
//   - a proven alloc-free leaf: its body passes the noalloc scan, it
//     performs no dynamic calls, and everything it calls is itself a
//     proven leaf, an annotated function, or a known alloc-free
//     stdlib function.
//
// Without this pass an annotated hot loop could call an unannotated
// allocating helper — in the same package or another one — and the
// body-local analyzer would never see it.
var NoallocFlow = &FlowAnalyzer{
	Name: "noallocflow",
	Doc:  "require every function reachable from an //atm:noalloc root to be annotated, waived, or a proven alloc-free leaf",
	Run:  runNoallocFlow,
}

// safeExternalPkgs are stdlib packages whose exported functions and
// methods never heap-allocate: pure math and lock-free atomics.
var safeExternalPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// safeExternalFuncs are individually vetted alloc-free stdlib
// functions, keyed by qualified name. sync.Pool is the repository's
// steady-state scratch idiom: Get allocates only on pool miss (cold
// path by construction) and Put stores a pre-boxed pointer.
var safeExternalFuncs = map[string]bool{
	"(*sync.Pool).Get":      true,
	"(*sync.Pool).Put":      true,
	"(*sync.Mutex).Lock":    true,
	"(*sync.Mutex).Unlock":  true,
	"(*sync.Mutex).TryLock": true,
	"sort.Search":           true,
	"sort.SearchInts":       true,
	"sort.SearchFloat64s":   true,
}

func safeExternal(n *Node) bool {
	if n.Obj == nil {
		return false
	}
	if n.Obj.Pkg() != nil && safeExternalPkgs[n.Obj.Pkg().Path()] {
		return true
	}
	return safeExternalFuncs[n.Name()]
}

type leafVerdict int8

const (
	leafUnknown leafVerdict = iota
	leafVisiting
	leafYes
	leafNo
)

type noallocFlowState struct {
	pass  *FlowPass
	leafs map[*Node]leafVerdict
}

func runNoallocFlow(pass *FlowPass) error {
	g := pass.Graph
	st := &noallocFlowState{pass: pass, leafs: make(map[*Node]leafVerdict)}

	// Roots: every annotated function or literal, in node order.
	rootOf := make(map[*Node]*Node)
	var queue []*Node
	for _, n := range g.Nodes {
		if n.Pkg == nil || g.InTestFile(n) {
			continue
		}
		if hasDirective(n, KindNoalloc) {
			rootOf[n] = n
			queue = append(queue, n)
		}
	}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		root := rootOf[n]
		for _, e := range n.Out {
			c := e.To
			if c == n {
				continue // direct recursion
			}
			if c.Pkg == nil { // external
				if !safeExternal(c) && !allowedAt(n, RuleNoallocFlow, e.Pos) {
					pass.Reportf(e.Pos, "atm:noallocflow: %s calls %s, which is outside the module and not on the known alloc-free list; hot paths reachable from //atm:noalloc root %s must not allocate (waive with //atm:allow noallocflow -- why)", n.Name(), c.Name(), root.Name())
				}
				continue
			}
			if g.InTestFile(c) {
				continue
			}
			if hasDirective(c, KindNoalloc) {
				if _, seen := rootOf[c]; !seen {
					rootOf[c] = root
					queue = append(queue, c)
				}
				continue
			}
			if e.Kind == EdgeClosure {
				// An unannotated literal inside a noalloc body is already
				// flagged by the per-package noalloc analyzer at the same
				// position; a second report here would be noise.
				continue
			}
			if allowedAt(n, RuleNoallocFlow, e.Pos) {
				continue
			}
			if st.leafClean(c) {
				continue
			}
			kind := "call to"
			if e.Kind == EdgeFuncValue {
				kind = "reference to"
			} else if e.Kind == EdgeInterface {
				kind = "interface-dispatched call to"
			}
			pass.Reportf(e.Pos, "atm:noallocflow: %s %s (reachable from //atm:noalloc root %s), which is neither //atm:noalloc, waived (//atm:allow noallocflow -- why), nor a provable alloc-free leaf", kind, c.Name(), root.Name())
		}
	}
	return nil
}

// leafClean proves, memoized, that a function is alloc-free without an
// annotation: its body passes the noalloc scan, it makes no dynamic
// calls, and every callee is safe, annotated, or itself a clean leaf.
// Cycles are rejected — a recursive group must be annotated to vouch
// for itself.
func (st *noallocFlowState) leafClean(n *Node) bool {
	switch st.leafs[n] {
	case leafYes:
		return true
	case leafNo, leafVisiting:
		return false
	}
	st.leafs[n] = leafVisiting
	ok := st.proveLeaf(n)
	if ok {
		st.leafs[n] = leafYes
	} else {
		st.leafs[n] = leafNo
	}
	return ok
}

func (st *noallocFlowState) proveLeaf(n *Node) bool {
	if n.Pkg == nil || n.Decl == nil || n.Dynamic {
		return false
	}
	body := funcBody(n.Decl)
	if body == nil {
		return false // declaration without body (assembly or external linkage)
	}
	// Body must pass the same scan //atm:noalloc bodies get.
	scratch := &Pass{
		Fset:      st.pass.Graph.Fset,
		TypesInfo: n.Pkg.Info,
		Dirs:      n.Pkg.Dirs,
	}
	checkNoalloc(scratch, n.Decl)
	if len(scratch.diagnostics) > 0 {
		return false
	}
	for _, e := range n.Out {
		c := e.To
		if c == n {
			continue
		}
		if c.Pkg == nil {
			if !safeExternal(c) {
				return false
			}
			continue
		}
		if hasDirective(c, KindNoalloc) {
			continue
		}
		if !st.leafClean(c) {
			return false
		}
	}
	return true
}

func funcBody(decl ast.Node) *ast.BlockStmt {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Body
	case *ast.FuncLit:
		return d.Body
	}
	return nil
}
