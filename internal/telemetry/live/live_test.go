package live

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestPublisherSnapshotAndServe(t *testing.T) {
	r := telemetry.NewRecorder(16)
	r.SetPeriod(4)
	r.Span(r.Intern("task1"), 0, 2*time.Millisecond)
	r.Span(r.Intern("task1"), 0, 3*time.Millisecond)
	r.Counter(r.Intern("matched"), 7)
	r.Intern("unused") // zero-count names stay out of the snapshot

	var p Publisher
	p.Update(r)

	stats := p.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("snapshot has %d stats, want 2: %+v", len(stats), stats)
	}
	// Sorted by name: matched before task1.
	if stats[0].Name != "matched" || stats[0].Sum != 7 || stats[0].Count != 1 {
		t.Errorf("matched stat = %+v", stats[0])
	}
	if stats[1].Name != "task1" || stats[1].Sum != int64(5*time.Millisecond) || stats[1].Count != 2 {
		t.Errorf("task1 stat = %+v", stats[1])
	}

	srv := httptest.NewServer(Handler(&p))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc struct {
		Telemetry struct {
			Total   uint64 `json:"total"`
			Dropped uint64 `json:"dropped"`
			Period  int32  `json:"period"`
			Stats   map[string]struct {
				Count int64 `json:"count"`
				Sum   int64 `json:"sum"`
			} `json:"stats"`
		} `json:"telemetry"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatalf("endpoint did not serve valid JSON: %v", err)
	}
	if doc.Telemetry.Total != 3 || doc.Telemetry.Period != 4 {
		t.Errorf("total=%d period=%d, want 3 and 4", doc.Telemetry.Total, doc.Telemetry.Period)
	}
	if st := doc.Telemetry.Stats["task1"]; st.Sum != int64(5*time.Millisecond) {
		t.Errorf("served task1 sum = %d", st.Sum)
	}

	vars, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars.Body.Close()
	if vars.StatusCode != 200 {
		t.Errorf("/debug/vars status %d", vars.StatusCode)
	}
}
