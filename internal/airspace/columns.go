package airspace

// Columns is a structure-of-arrays view of a world: the five fields the
// collision-detection inner loops read, held as parallel dense float64
// slices indexed by aircraft index. A candidate scan that strides
// through []Aircraft touches one 100+-byte record per visit and evicts
// most of it unused (the altitude filter rejects the vast majority of
// candidates before position or velocity is ever read); the same scan
// over Columns reads an 8-byte element from a slice small enough to
// stay cache-resident across every query of a detection pass.
//
// Columns relies on the repository-wide invariant that Aircraft.ID
// equals the record's index (SetupFlight establishes it, no task breaks
// it) — the invariant the sweep broad phase already builds on — so
// column index i and aircraft ID i name the same flight.
//
// A Columns is a snapshot: callers refresh it with FillFrom once per
// task invocation and must mirror any mid-task velocity commit into DX
// and DY themselves (the coherent executors do exactly that at their
// heading-commit sites).
type Columns struct {
	X, Y   []float64
	DX, DY []float64
	Alt    []float64
}

// N returns the number of aircraft captured by the snapshot.
func (c *Columns) N() int { return len(c.X) }

// Resize sizes the columns for n aircraft, reusing capacity, without
// refreshing their contents. Callers that write every element
// themselves (the modeled-device snapshot kernels) use it in place of
// FillFrom; like FillFrom, it allocates only while growing.
func (c *Columns) Resize(n int) {
	if cap(c.X) < n {
		c.grow(n)
		return
	}
	c.X, c.Y = c.X[:n], c.Y[:n]
	c.DX, c.DY = c.DX[:n], c.DY[:n]
	c.Alt = c.Alt[:n]
}

// grow resizes the columns for n aircraft, reusing capacity. Growth is
// the cold path kept out of FillFrom's noalloc contract.
func (c *Columns) grow(n int) {
	if cap(c.X) < n {
		c.X = make([]float64, n)
		c.Y = make([]float64, n)
		c.DX = make([]float64, n)
		c.DY = make([]float64, n)
		c.Alt = make([]float64, n)
	}
	c.X, c.Y = c.X[:n], c.Y[:n]
	c.DX, c.DY = c.DX[:n], c.DY[:n]
	c.Alt = c.Alt[:n]
}

// FillFrom refreshes the snapshot from the world's current state. In
// steady state (capacity already grown to the world size) it performs
// no allocations.
//
//atm:noalloc
func (c *Columns) FillFrom(w *World) {
	n := len(w.Aircraft)
	if cap(c.X) < n {
		c.grow(n) //atm:allow noallocflow -- cold path: grow runs only until capacity reaches the world size, then never again
	} else {
		c.X, c.Y = c.X[:n], c.Y[:n]
		c.DX, c.DY = c.DX[:n], c.DY[:n]
		c.Alt = c.Alt[:n]
	}
	fillColumns(c.X, c.Y, c.DX, c.DY, c.Alt, w.Aircraft)
}

// fillColumns scatters the AoS world into the SoA columns. The length
// guard teaches the prove pass that every column covers src, so the
// scatter loop runs with zero bounds checks and nothing spills to the
// heap — both held by the compiler-diagnostics gate.
//
//atm:noalloc
//atm:noescape
//atm:nobce
func fillColumns(x, y, dx, dy, alt []float64, src []Aircraft) {
	n := len(src)
	if len(x) < n || len(y) < n || len(dx) < n || len(dy) < n || len(alt) < n {
		return
	}
	for i := 0; i < n; i++ {
		a := &src[i]
		x[i], y[i] = a.X, a.Y
		dx[i], dy[i] = a.DX, a.DY
		alt[i] = a.Alt
	}
}

// SetVel mirrors a committed velocity change into the snapshot, keeping
// it consistent with the world after a mid-task heading commit.
//
//atm:inline
//atm:noalloc
func (c *Columns) SetVel(i int, dx, dy float64) {
	c.DX[i], c.DY[i] = dx, dy
}
