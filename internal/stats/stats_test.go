package stats

import (
	"math"
	"testing"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stdev of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Std != 0 || s.P95 != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1 2 3])")
	}
}

func TestMaxDeviation(t *testing.T) {
	if MaxDeviation(nil) != 0 {
		t.Fatal("MaxDeviation(nil)")
	}
	if MaxDeviation([]float64{5, 5, 5}) != 0 {
		t.Fatal("identical samples should deviate 0")
	}
	if got := MaxDeviation([]float64{5, 7, 4}); got != 2 {
		t.Fatalf("MaxDeviation = %v, want 2", got)
	}
}
