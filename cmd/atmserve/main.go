// Command atmserve serves the deterministic ATM simulation over
// HTTP/JSON: requests name a canonical config (platform, N, seed,
// periods, pair source, detail level) and the server answers with the
// measurement rows, deduping concurrent identical requests onto one
// execution, caching results (sound because runs are bit-deterministic)
// and shedding load with 429 once its bounded run queue fills.
//
// Usage:
//
//	atmserve -addr localhost:8080
//	curl 'localhost:8080/v1/simulate?platform=titanx&n=8000&periods=32'
//	curl -X POST localhost:8080/v1/simulate -d '{"platform":"staran","n":16000}'
//
// Endpoints: /v1/simulate, /healthz, /readyz, /metrics, /telemetry/.
// On SIGINT/SIGTERM the server stops admitting, finishes in-flight
// runs, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/parexec"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		workers = flag.Int("workers", 0,
			"host worker goroutines per simulation (0 = GOMAXPROCS); responses are identical at any count")
		runners      = flag.Int("runners", 2, "concurrent simulation executors")
		queue        = flag.Int("queue", 64, "run queue depth; beyond it requests are shed with 429")
		cache        = flag.Int("cache", 256, "result cache entries (LRU)")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request deadline (queue wait + run)")
		interactiveN = flag.Int("interactive-n", 4000,
			"largest aircraft count served from the priority lane")
		maxN  = flag.Int("max-n", 200000, "largest admissible aircraft count")
		drain = flag.Duration("drain-timeout", 30*time.Second, "grace period to finish in-flight work on shutdown")
	)
	flag.Parse()
	// The per-request knobs are validated per request; -workers is the
	// only shared run knob this binary owns, checked through the same
	// helper as atmsim and atmbench (exit 2 on usage errors).
	params := core.RunParams{Platform: "", N: 1, Periods: 1, Workers: *workers}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "atmserve:", err)
		os.Exit(2)
	}
	parexec.SetDefaultWorkers(*workers)

	srv := serve.New(serve.Options{
		Runners:      *runners,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		Timeout:      *timeout,
		InteractiveN: *interactiveN,
		MaxN:         *maxN,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Println("atmserve: draining (stop admitting, finishing in-flight runs)")
		// Stop admission first so handlers already waiting on runs can
		// finish while http.Server.Shutdown waits for them, then wait
		// for the executors to drain the queue.
		srv.BeginDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "atmserve: http shutdown:", err)
		}
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "atmserve:", err)
		}
	}()

	fmt.Printf("atmserve: serving on http://%s/ (runners=%d queue=%d cache=%d)\n",
		*addr, *runners, *queue, *cache)
	err := httpSrv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "atmserve:", err)
		os.Exit(1)
	}
	<-shutdownDone
	fmt.Println("atmserve: drained, bye")
}
