package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// A FlowPackage names one package of a multi-package flow fixture: a
// subdirectory of the fixture root plus the import path it is
// type-checked as. Order matters — list a package before the packages
// that import it.
type FlowPackage struct {
	Dir  string
	Path string
}

// LoadFlow parses and type-checks a multi-package fixture and builds
// its call graph. Fixture packages may import the standard library
// (resolved from GOROOT source) and each other (by declared Path).
func LoadFlow(t *testing.T, root string, pkgs []FlowPackage) (*token.FileSet, *lint.Graph) {
	t.Helper()

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	source := importer.ForCompiler(fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return source.Import(path)
	})

	var gps []*lint.GraphPackage
	for _, p := range pkgs {
		dir := filepath.Join(root, p.Dir)
		files := parseFixtureDir(t, fset, dir)
		info := lint.NewInfo()
		cfg := types.Config{
			Importer: imp,
			Error:    func(err error) { t.Errorf("fixture type error: %v", err) },
		}
		pkg, err := cfg.Check(p.Path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking fixture package %s: %v", p.Path, err)
		}
		checked[p.Path] = pkg
		gps = append(gps, &lint.GraphPackage{
			Path:  p.Path,
			Files: files,
			Pkg:   pkg,
			Info:  info,
			Dirs:  lint.BuildDirectives(fset, files),
		})
	}
	return fset, lint.BuildGraph(fset, gps)
}

// RunFlow loads a multi-package fixture, runs the complete suite
// exactly as `atmlint flow` does — per-package analyzers first (their
// waiver consumption feeds stalewaiver), then the flow analyzers —
// and checks every diagnostic from every analyzer against the
// fixture's // want comments.
func RunFlow(t *testing.T, root string, pkgs []FlowPackage) {
	t.Helper()

	fset, g := LoadFlow(t, root, pkgs)
	var files []*ast.File
	for _, p := range g.Packages {
		files = append(files, p.Files...)
	}
	wants := collectWants(t, fset, files)

	for _, res := range lint.RunFlowSuite(g) {
		if res.Err != nil {
			t.Errorf("analyzer %s: %v", res.Analyzer, res.Err)
		}
		for _, d := range res.Diagnostics {
			posn := fset.Position(d.Pos)
			if !claim(wants, posn.Filename, posn.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic [%s]: %s", posn, res.Analyzer, d.Message)
			}
		}
	}
	reportUnmatched(t, wants)
}

// parseFixtureDir parses every .go file in one directory.
func parseFixtureDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in fixture dir %s", dir)
	}
	return files
}

// collectWants gathers the // want expectations of a file set.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, m[1], err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// reportUnmatched fails the test for every want no diagnostic claimed.
func reportUnmatched(t *testing.T, wants []*expectation) {
	t.Helper()
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
