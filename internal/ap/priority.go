package ap

import (
	"repro/internal/airspace"
)

// PriorityProgram produces the controller's conflict-priority display
// list — conflicting aircraft ordered by time-to-conflict, most urgent
// first — the associative way: repeatedly min-reduce TimeTill over the
// responding (conflicting) records and step the winner out of the
// responder set. Each emitted entry costs a constant number of wide
// operations, so the whole list costs O(k) for k conflicts — the idiom
// the STARAN's flip network was built for, in contrast to the GPU's
// O(log^2 n) bitonic stages (cuda.ConflictPriority).
//
// Ties on TimeTill break toward the lower aircraft ID, matching both
// the sequential reference and the CUDA sort.
func PriorityProgram(m *Machine, w *airspace.World) []int32 {
	ac := w.Aircraft
	m.LoadDatabase(2) // col flag and TimeTill planes

	m.Search(1, func(i int) bool { return ac[i].Col })
	var out []int32
	for {
		_, arg := m.MinReduce(airspace.SafeTime+1, func(i int) float64 { return ac[i].TimeTill })
		if arg < 0 {
			break
		}
		out = append(out, ac[arg].ID)
		m.ClearResponder(arg)
	}
	return out
}
