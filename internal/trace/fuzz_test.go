package trace

import (
	"bytes"
	"strings"
	"testing"
)

// points counts every point in the dataset across series.
func points(d *Dataset) int {
	n := 0
	for i := range d.Series {
		n += len(d.Series[i].Points)
	}
	return n
}

// FuzzReadCSV drives ReadCSV with arbitrary bytes. Two properties:
// parsing must never panic (errors are fine), and any input that does
// parse must survive a write/re-read round trip with its header and
// point count intact — the regeneration loop the results/ directory
// depends on.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("# fig4 | Task 1 | aircraft | seconds\nseries,x,y\nTitan X,4000,0.0125\nTitan X,8000,0.025\n"))
	f.Add([]byte("series,x,y\na,1,2\n"))
	f.Add([]byte("a,1,2\nb,3,4\nb,5,6\n"))
	f.Add([]byte(""))
	f.Add([]byte("#"))
	f.Add([]byte("# lone comment, no newline"))
	f.Add([]byte("\"quoted,label\",1e-9,NaN\n"))
	f.Add([]byte("\"multi\nline\",+Inf,-0\n"))
	f.Add([]byte("series,x,y\r\na,0x1p-2,2\r\n"))
	f.Add([]byte("# " + strings.Repeat("wide", 2048) + " | t | x | y\nseries,x,y\na,1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of parsed dataset: %v", err)
		}
		d2, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written dataset: %v\ncsv:\n%s", err, buf.Bytes())
		}
		if got, want := points(d2), points(d); got != want {
			t.Fatalf("round trip changed point count: %d -> %d\ncsv:\n%s", want, got, buf.Bytes())
		}
		if d2.ID != d.ID {
			t.Fatalf("round trip changed ID: %q -> %q", d.ID, d2.ID)
		}
	})
}
