package ap

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
)

// Platform adapts an associative machine profile to the scheduler's
// platform interface.
type Platform struct {
	prof Profile
	src  broadphase.PairSource
}

// NewPlatform returns a scheduler-facing platform for the profile.
func NewPlatform(p Profile) *Platform { return &Platform{prof: p} }

// SetPairSource installs a broadphase pair source for the detection
// program (nil keeps the full associative scan). On a true AP this only
// trims the PairChecks account, not the wide-operation time — see
// apScan.
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.src = src }

// Name returns the machine name.
func (p *Platform) Name() string { return p.prof.Name }

// Deterministic reports that AP timing is a pure function of the
// instruction trace — the synchronous-SIMD property the paper builds
// on.
func (p *Platform) Deterministic() bool { return true }

// Track runs Task 1 as an AP program and returns the modeled time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	m := NewMachine(p.prof, w.N())
	TrackProgram(m, w, f)
	return m.Time()
}

// DetectResolve runs Tasks 2-3 as an AP program and returns the
// modeled time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	m := NewMachine(p.prof, w.N())
	DetectResolveProgramWith(m, w, p.src)
	return m.Time()
}
