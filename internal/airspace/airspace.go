// Package airspace models the simulated airfield of the paper: a
// 256 x 256 nautical-mile bounding area with thousands of constantly
// moving aircraft at varying altitudes. It owns the aircraft flight
// record (the "drone" struct the CUDA program keeps in global memory),
// random flight setup per Section 4.1 of the paper, and the (-x, -y)
// re-entry rule for aircraft that leave the field.
package airspace

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Physical and scheduling constants from the paper.
const (
	// FieldHalf is half the airfield edge: the field spans
	// [-FieldHalf, +FieldHalf] in both coordinates (256 nm x 256 nm).
	FieldHalf = 128.0

	// SetupHalf bounds the initial positions: Section 4.1 creates
	// aircraft satisfying -125 <= x, y <= 125.
	SetupHalf = 125.0

	// PeriodSeconds is the length of one scheduling period. Task 1 runs
	// every period; Tasks 2-3 run once per 16-period major cycle.
	PeriodSeconds = 0.5

	// PeriodsPerMajorCycle is the number of half-second periods in the
	// 8-second major cycle.
	PeriodsPerMajorCycle = 16

	// PeriodsPerHour converts a velocity in nautical miles per hour to
	// nautical miles per period (the paper divides dx and dy by 7200).
	PeriodsPerHour = 7200.0

	// SpeedMin and SpeedMax bound the random aircraft speed S in knots.
	SpeedMin = 30.0
	SpeedMax = 600.0

	// AltMin and AltMax bound the random cruise altitude in feet.
	AltMin = 1000.0
	AltMax = 40000.0

	// HorizonPeriods is the collision-detection look-ahead: 20 minutes
	// expressed in half-second periods.
	HorizonPeriods = 20 * 60 / PeriodSeconds // 2400

	// CriticalTime is the paper's conflict urgency threshold: a detected
	// conflict with time_min below this value (in periods) triggers
	// collision resolution. 300 periods = 2.5 minutes.
	CriticalTime = 300.0

	// SafeTime is the value time_till is reset to when no critical
	// conflict is pending ("300 is considered a safe number").
	SafeTime = 300.0

	// SepTotal is the total bounding separation used by Equations 1-4:
	// a 1.5 nm error band added to each of the two aircraft.
	SepTotal = 3.0

	// AltBandFeet is the vertical filter of Algorithm 2: only pairs
	// "within 1000 feet of each other" are checked for conflicts.
	AltBandFeet = 1000.0
)

// Match states for Aircraft.RMatch during Task 1.
const (
	// MatchNone means no radar has correlated with the aircraft yet.
	MatchNone int8 = 0
	// MatchOne means exactly one radar has correlated with the aircraft.
	MatchOne int8 = 1
	// MatchDiscarded means multiple radars correlated with the aircraft,
	// which withdraws it from correlation: it keeps its expected position.
	MatchDiscarded int8 = -1
)

// NoConflict is the ColWith value of an aircraft with no pending
// collision partner.
const NoConflict int32 = -1

// Aircraft is one flight record — the fields of the paper's "drone"
// global-memory struct (Section 5).
type Aircraft struct {
	// ID is the aircraft's index; thread i handles aircraft i.
	ID int32

	// X, Y is the current position in nautical miles.
	X, Y float64
	// DX, DY is the velocity in nautical miles per period.
	DX, DY float64
	// Alt is the altitude in feet.
	Alt float64

	// BatX, BatY hold the trial-path velocity proposed by collision
	// resolution (named after Batcher's algorithm, as in the paper).
	BatX, BatY float64

	// Col records whether a collision is anticipated.
	Col bool
	// TimeTill is the time (in periods) until the earliest detected
	// critical conflict; SafeTime when none is pending.
	TimeTill float64
	// ColWith is the ID of the conflicting aircraft, or NoConflict.
	ColWith int32

	// RMatch is the Task 1 correlation state (MatchNone / MatchOne /
	// MatchDiscarded).
	RMatch int8

	// ExpX, ExpY is the expected position computed at the start of the
	// current period: (X + DX, Y + DY).
	ExpX, ExpY float64
}

// Pos returns the aircraft's current position.
func (a *Aircraft) Pos() geom.Vec2 { return geom.Vec2{X: a.X, Y: a.Y} }

// Vel returns the aircraft's current velocity in nm/period.
func (a *Aircraft) Vel() geom.Vec2 { return geom.Vec2{X: a.DX, Y: a.DY} }

// SpeedKnots returns the aircraft's ground speed in nautical miles per
// hour.
func (a *Aircraft) SpeedKnots() float64 {
	return math.Hypot(a.DX, a.DY) * PeriodsPerHour
}

// ResetConflict clears the collision-detection state to the "no pending
// conflict" defaults used at the start of each Task 2 run.
func (a *Aircraft) ResetConflict() {
	a.Col = false
	a.TimeTill = SafeTime
	a.ColWith = NoConflict
	a.BatX = a.DX
	a.BatY = a.DY
}

// World is the simulated airfield: the dynamic database of aircraft
// records that Task 1 updates every half-second.
type World struct {
	Aircraft []Aircraft
}

// NewWorld creates a world of n aircraft initialized by SetupFlight
// draws from r. It panics if n < 0.
func NewWorld(n int, r *rng.Rand) *World {
	if n < 0 {
		panic(fmt.Sprintf("airspace: NewWorld with negative n %d", n))
	}
	w := &World{Aircraft: make([]Aircraft, n)}
	for i := range w.Aircraft {
		SetupFlight(&w.Aircraft[i], int32(i), r)
	}
	return w
}

// N returns the number of aircraft being tracked.
func (w *World) N() int { return len(w.Aircraft) }

// Clone returns a deep copy of the world, used to run the same traffic
// snapshot through multiple platforms.
func (w *World) Clone() *World {
	c := &World{Aircraft: make([]Aircraft, len(w.Aircraft))}
	copy(c.Aircraft, w.Aircraft)
	return c
}

// CloneInto copies w into dst, reusing dst's aircraft array when it is
// large enough — the allocation-free restore used by harnesses that
// replay the same initial world many times.
func (w *World) CloneInto(dst *World) {
	if cap(dst.Aircraft) < len(w.Aircraft) {
		dst.Aircraft = make([]Aircraft, len(w.Aircraft))
	}
	dst.Aircraft = dst.Aircraft[:len(w.Aircraft)]
	copy(dst.Aircraft, w.Aircraft)
}

// SetupFlight initializes one aircraft following Section 4.1:
// position components drawn in [0, SetupHalf] with random signs, speed
// S in [SpeedMin, SpeedMax] knots, |dx| drawn in [SpeedMin, S] with
// dy = sqrt(S^2 - dx^2), random signs for both velocity components, and
// a random altitude. Velocities are converted from nm/hour to nm/period.
//
// The paper fixes the component signs by testing the parity of a random
// integer in [0, 50]; that is an even/odd coin flip, which Sign models
// directly.
func SetupFlight(a *Aircraft, id int32, r *rng.Rand) {
	a.ID = id
	a.X = r.Range(0, SetupHalf) * r.Sign()
	a.Y = r.Range(0, SetupHalf) * r.Sign()
	a.Alt = r.Range(AltMin, AltMax)

	s := r.Range(SpeedMin, SpeedMax)
	dx := r.Range(SpeedMin, s) // nm per hour along x; SpeedMin <= s
	dy := math.Sqrt(s*s - dx*dx)
	a.DX = dx * r.Sign() / PeriodsPerHour
	a.DY = dy * r.Sign() / PeriodsPerHour

	a.ExpX, a.ExpY = a.X, a.Y
	a.RMatch = MatchNone
	a.ResetConflict()
}

// InField reports whether position (x, y) lies inside the monitored
// airfield.
func InField(x, y float64) bool {
	return x >= -FieldHalf && x <= FieldHalf && y >= -FieldHalf && y <= FieldHalf
}

// Wrap applies the paper's re-entry rule to one aircraft: when an
// aircraft exits the grid at (x, y), an aircraft with the same speed and
// direction re-enters at (-x, -y).
func Wrap(a *Aircraft) {
	if !InField(a.X, a.Y) {
		a.X, a.Y = -a.X, -a.Y
	}
}

// WrapAll applies Wrap to every aircraft. Task 1 calls this after
// committing radar positions.
func (w *World) WrapAll() {
	for i := range w.Aircraft {
		Wrap(&w.Aircraft[i])
	}
}

// ComputeExpected fills ExpX/ExpY with (X+DX, Y+DY) for every aircraft —
// the per-period dead-reckoning step of Task 1.
func (w *World) ComputeExpected() {
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ExpX = a.X + a.DX
		a.ExpY = a.Y + a.DY
	}
}
