package serve

import (
	"errors"
	"fmt"
	"testing"
)

func mkJob(n int, interactive bool) *job {
	cfg := RunConfig{Platform: "titanx", N: n, Seed: 2018, Periods: 16, Detail: "task"}
	return newJob(cfg, cfg.Key(), interactive)
}

func TestQueuePriorityLanes(t *testing.T) {
	q := newRunQueue(8)
	batch1 := mkJob(32000, false)
	batch2 := mkJob(16000, false)
	inter := mkJob(1000, true)
	for _, j := range []*job{batch1, batch2, inter} {
		if err := q.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	// The interactive job pops first despite arriving last; batch jobs
	// keep FIFO order among themselves.
	want := []*job{inter, batch1, batch2}
	for i, wj := range want {
		j, ok := q.pop()
		if !ok || j != wj {
			t.Fatalf("pop %d: got %v ok=%v, want job n=%d", i, j, ok, wj.cfg.N)
		}
	}
}

func TestQueueBoundsAndClose(t *testing.T) {
	q := newRunQueue(2)
	if err := q.push(mkJob(100, true)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkJob(101, false)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkJob(102, true)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("push beyond depth: err = %v, want ErrQueueFull", err)
	}
	if d := q.depth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	q.close()
	if err := q.push(mkJob(103, true)); !errors.Is(err, ErrDraining) {
		t.Errorf("push after close: err = %v, want ErrDraining", err)
	}
	// A closed queue still drains what was admitted...
	if _, ok := q.pop(); !ok {
		t.Error("pop on closed non-empty queue should succeed")
	}
	if _, ok := q.pop(); !ok {
		t.Error("second pop should drain the remaining job")
	}
	// ...and then reports exhaustion.
	if j, ok := q.pop(); ok {
		t.Errorf("pop on closed empty queue returned %v", j)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	resFor := func(i int) *Result { return &Result{Body: []byte(fmt.Sprintf("r%d", i))} }
	c.put("a", resFor(1))
	c.put("b", resFor(2))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes the victim
		t.Fatal("a should be cached")
	}
	c.put("c", resFor(3))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s should still be cached", k)
		}
	}
	if n := c.entries(); n != 2 {
		t.Errorf("entries = %d, want 2", n)
	}
	// Re-putting an existing key replaces in place, no eviction.
	c.put("a", resFor(4))
	if r, ok := c.get("a"); !ok || string(r.Body) != "r4" {
		t.Errorf("re-put did not replace: %v %v", r, ok)
	}
	if n := c.entries(); n != 2 {
		t.Errorf("entries after re-put = %d, want 2", n)
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.put("a", &Result{Body: []byte("x")})
	if _, ok := c.get("a"); ok {
		t.Error("a zero-entry cache must not retain results")
	}
}

func TestFlightsJoin(t *testing.T) {
	f := newFlights()
	j1 := mkJob(100, true)
	j, created, err := f.join(j1.key, func() (*job, bool, error) { return j1, true, nil })
	if err != nil || !created || j != j1 {
		t.Fatalf("first join: %v %v %v", j, created, err)
	}
	j, created, err = f.join(j1.key, func() (*job, bool, error) {
		t.Fatal("create must not run for an in-flight key")
		return nil, false, nil
	})
	if err != nil || created || j != j1 {
		t.Fatalf("second join: %v %v %v", j, created, err)
	}
	if n := f.inflight(); n != 1 {
		t.Errorf("inflight = %d, want 1", n)
	}
	f.remove(j1.key)
	wantErr := errors.New("no capacity")
	if _, _, err := f.join(j1.key, func() (*job, bool, error) { return nil, false, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("failed create: err = %v, want %v", err, wantErr)
	}
	if n := f.inflight(); n != 0 {
		t.Errorf("inflight after failed create = %d, want 0", n)
	}
	// track=false jobs (pre-completed from cache) are not registered.
	done := completedJob(&Result{Body: []byte("x")})
	if _, created, _ := f.join("k2", func() (*job, bool, error) { return done, false, nil }); !created {
		t.Error("completed job join should still report created")
	}
	if n := f.inflight(); n != 0 {
		t.Errorf("completed job must not be tracked, inflight = %d", n)
	}
}
