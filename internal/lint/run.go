package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DirectiveCheck surfaces malformed or dangling //atm: directives. A
// typoed directive would otherwise silently stop enforcing its
// contract, so it is a diagnostic in its own right.
var DirectiveCheck = &Analyzer{
	Name: "atmdirective",
	Doc:  "report malformed //atm: directives and directives that attach to no function",
	Run: func(p *Pass) error {
		p.diagnostics = append(p.diagnostics, p.Dirs.Errors...)
		return nil
	},
}

// A Result pairs an analyzer with its findings for one package.
type Result struct {
	Analyzer    *Analyzer
	Diagnostics []Diagnostic
	Err         error
}

// Run executes the analyzers over one type-checked package, building
// the directive index once and sharing it across passes.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, analyzers []*Analyzer) []Result {
	dirs := BuildDirectives(fset, files)
	results := make([]Result, 0, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			PkgPath:   pkgPath,
			Dirs:      dirs,
		}
		err := a.Run(pass)
		results = append(results, Result{Analyzer: a, Diagnostics: pass.Diagnostics(), Err: err})
	}
	return results
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
