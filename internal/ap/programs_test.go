package ap

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/tasks"
)

func gridWorld(n int) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%side)*6 - airspace.SetupHalf
		a.Y = float64(i/side)*6 - airspace.SetupHalf
		a.DX = 0.02
		a.DY = 0.01
		a.Alt = 10000 + float64(i%4)*3000
		a.ResetConflict()
	}
	return w
}

func TestTrackProgramMatchesReferenceOnCleanTraffic(t *testing.T) {
	w := gridWorld(400)
	f := radar.Generate(w, 0.2, rng.New(1))
	refW, refF := w.Clone(), f.Clone()
	refStats := tasks.Correlate(refW, refF)

	m := NewMachine(STARAN, w.N())
	st := TrackProgram(m, w, f)

	if st.Matched != refStats.Matched {
		t.Fatalf("matched %d, reference %d", st.Matched, refStats.Matched)
	}
	for i := range w.Aircraft {
		if w.Aircraft[i].X != refW.Aircraft[i].X || w.Aircraft[i].Y != refW.Aircraft[i].Y {
			t.Fatalf("aircraft %d differs from reference", i)
		}
	}
	if m.Cycles() == 0 {
		t.Fatal("program charged no cycles")
	}
}

func TestTrackProgramHighMatchRateOnRandomTraffic(t *testing.T) {
	w := airspace.NewWorld(2000, rng.New(7))
	f := radar.Generate(w, radar.DefaultNoise, rng.New(8))
	m := NewMachine(ClearSpeedCSX600, w.N())
	st := TrackProgram(m, w, f)
	if st.Matched < w.N()*95/100 {
		t.Fatalf("only %d of %d matched", st.Matched, w.N())
	}
}

func TestTrackProgramDiscardsAmbiguousRadar(t *testing.T) {
	// Two aircraft 0.2 nm apart share one radar: the AP sees two
	// responders at once and discards the radar.
	w := gridWorld(2)
	w.Aircraft[1].X = w.Aircraft[0].X + 0.2
	w.Aircraft[1].Y = w.Aircraft[0].Y
	w.Aircraft[1].DX, w.Aircraft[1].DY = w.Aircraft[0].DX, w.Aircraft[0].DY
	f := &radar.Frame{Reports: []radar.Report{
		{RX: w.Aircraft[0].X + w.Aircraft[0].DX + 0.1, RY: w.Aircraft[0].Y + w.Aircraft[0].DY, MatchWith: radar.Unmatched},
	}}
	st := TrackProgram(NewMachine(STARAN, w.N()), w, f)
	if st.DiscardedRadars != 1 || f.Reports[0].MatchWith != radar.Discarded {
		t.Fatalf("ambiguous radar not discarded: %+v", st)
	}
}

func TestTrackProgramWithdrawsAmbiguousAircraft(t *testing.T) {
	// One aircraft, two radars in its box: the aircraft pairs with the
	// first radar, then the second radar's search finds it already
	// matched and withdraws it.
	w := gridWorld(1)
	a := &w.Aircraft[0]
	ex, ey := a.X+a.DX, a.Y+a.DY
	f := &radar.Frame{Reports: []radar.Report{
		{RX: ex + 0.1, RY: ey, MatchWith: radar.Unmatched},
		{RX: ex - 0.1, RY: ey, MatchWith: radar.Unmatched},
	}}
	st := TrackProgram(NewMachine(STARAN, w.N()), w, f)
	if st.WithdrawnAircraft != 1 {
		t.Fatalf("aircraft not withdrawn: %+v", st)
	}
	if w.Aircraft[0].X != ex || w.Aircraft[0].Y != ey {
		t.Fatal("withdrawn aircraft must keep its expected position")
	}
}

func TestDetectResolveProgramMatchesReferenceExactly(t *testing.T) {
	// Control flow is sequential like the reference, so agreement must
	// be bit-for-bit on arbitrary random traffic.
	base := airspace.NewWorld(600, rng.New(42))
	refW := base.Clone()
	refStats := tasks.DetectResolve(refW)

	apW := base.Clone()
	m := NewMachine(STARAN, apW.N())
	apStats := DetectResolveProgram(m, apW)

	if apStats != refStats {
		t.Fatalf("stats differ:\nAP  %+v\nref %+v", apStats, refStats)
	}
	for i := range refW.Aircraft {
		if refW.Aircraft[i] != apW.Aircraft[i] {
			t.Fatalf("aircraft %d differs:\nAP  %+v\nref %+v", i, apW.Aircraft[i], refW.Aircraft[i])
		}
	}
}

func TestDetectResolveProgramOnClearSpeedSameResults(t *testing.T) {
	// The ClearSpeed emulation runs the same program; only the cycle
	// count differs.
	base := airspace.NewWorld(400, rng.New(55))
	w1, w2 := base.Clone(), base.Clone()
	m1 := NewMachine(STARAN, w1.N())
	m2 := NewMachine(ClearSpeedCSX600, w2.N())
	st1 := DetectResolveProgram(m1, w1)
	st2 := DetectResolveProgram(m2, w2)
	if st1 != st2 {
		t.Fatalf("results differ across profiles: %+v vs %+v", st1, st2)
	}
	for i := range w1.Aircraft {
		if w1.Aircraft[i] != w2.Aircraft[i] {
			t.Fatalf("aircraft %d differs across profiles", i)
		}
	}
	if m1.Cycles() == m2.Cycles() {
		t.Fatal("different machines should charge different cycle counts")
	}
}

func TestPlatformDeterministicTiming(t *testing.T) {
	base := airspace.NewWorld(500, rng.New(9))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(10))
	p := NewPlatform(STARAN)
	t1 := p.Track(base.Clone(), frame.Clone())
	for i := 0; i < 3; i++ {
		if got := p.Track(base.Clone(), frame.Clone()); got != t1 {
			t.Fatalf("run %d: %v != %v", i, got, t1)
		}
	}
	if !p.Deterministic() {
		t.Fatal("AP platform must report deterministic timing")
	}
}

func TestIdealAPTrackIsLinear(t *testing.T) {
	// The headline property from [12, 13]: AP Task 1 time is linear in
	// N. Doubling N must scale modeled time by ~2 (within the tolerance
	// the O(1) program prologue introduces).
	timeFor := func(n int) float64 {
		w := airspace.NewWorld(n, rng.New(11))
		f := radar.Generate(w, radar.DefaultNoise, rng.New(12))
		p := NewPlatform(STARAN)
		return p.Track(w, f).Seconds()
	}
	t4, t8 := timeFor(4000), timeFor(8000)
	ratio := t8 / t4
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("ideal AP Task 1 scaling ratio %v, want ~2 (linear)", ratio)
	}
}

func TestClearSpeedSlowerThanIdealAPAtScale(t *testing.T) {
	w := airspace.NewWorld(8000, rng.New(13))
	f := radar.Generate(w, radar.DefaultNoise, rng.New(14))
	ideal := NewPlatform(STARAN).Track(w.Clone(), f.Clone())
	emu := NewPlatform(ClearSpeedCSX600).Track(w.Clone(), f.Clone())
	if emu <= ideal {
		t.Fatalf("ClearSpeed emulation (%v) should be slower than the ideal AP (%v) at 8000 aircraft", emu, ideal)
	}
}

func TestHeadOnResolvedLikeReference(t *testing.T) {
	w := gridWorld(2)
	a, b := &w.Aircraft[0], &w.Aircraft[1]
	a.X, a.Y, a.DX, a.DY, a.Alt = 0, 0, 0.05, 0, 10000
	b.X, b.Y, b.DX, b.DY, b.Alt = 30, 0, -0.05, 0, 10000
	a.ResetConflict()
	b.ResetConflict()

	st := DetectResolveProgram(NewMachine(STARAN, 2), w)
	if st.Conflicts == 0 || st.Resolved == 0 {
		t.Fatalf("head-on pair not resolved: %+v", st)
	}
	if check := tasks.Detect(w); check.Conflicts != 0 {
		t.Fatalf("conflicts remain after AP resolution: %+v", check)
	}
}

func TestPriorityProgramMatchesReference(t *testing.T) {
	w := airspace.NewWorld(1200, rng.New(31))
	tasks.Detect(w)
	want := tasks.PriorityList(w)

	m := NewMachine(STARAN, w.N())
	got := PriorityProgram(m, w)
	if len(got) != len(want) {
		t.Fatalf("list length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: id %d, want %d", i, got[i], want[i])
		}
	}
	if len(want) > 0 && m.Cycles() == 0 {
		t.Fatal("program charged no cycles")
	}
}

func TestPriorityProgramLinearInConflicts(t *testing.T) {
	// The AP's display list costs O(k) wide operations for k conflicts:
	// a world with no conflicts must charge far fewer cycles than a
	// conflict-heavy one of the same size.
	calm := airspace.NewWorld(500, rng.New(33))
	for i := range calm.Aircraft {
		calm.Aircraft[i].ResetConflict()
	}
	mCalm := NewMachine(STARAN, calm.N())
	PriorityProgram(mCalm, calm)

	busy := airspace.NewWorld(500, rng.New(33))
	tasks.Detect(busy)
	mBusy := NewMachine(STARAN, busy.N())
	list := PriorityProgram(mBusy, busy)
	if len(list) == 0 {
		t.Skip("seed produced no conflicts")
	}
	if mBusy.Cycles() <= mCalm.Cycles() {
		t.Fatalf("busy list (%d entries) cost %d cycles, calm cost %d",
			len(list), mBusy.Cycles(), mCalm.Cycles())
	}
}
