package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// A FlowAnalyzer is an interprocedural analyzer: it runs once over the
// whole-module call graph instead of once per package.
type FlowAnalyzer struct {
	Name string
	Doc  string
	Run  func(*FlowPass) error
}

// A FlowPass is one flow analyzer's view of the graph.
type FlowPass struct {
	Analyzer *FlowAnalyzer
	Graph    *Graph

	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *FlowPass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings sorted by position.
func (p *FlowPass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// FlowAnalyzers returns the interprocedural suite in run order.
// StaleWaiver must run last: it reports //atm:allow directives that no
// earlier analyzer consumed, so every waiver-consuming analyzer has to
// have run over the same directive indexes first.
func FlowAnalyzers() []*FlowAnalyzer {
	return []*FlowAnalyzer{NoallocFlow, ModeledTimeFlow, StaleWaiver}
}

// A FlowResult pairs one analyzer name with its findings.
type FlowResult struct {
	Analyzer    string
	Diagnostics []Diagnostic
	Err         error
}

// RunFlowSuite runs the complete atmlint suite over a loaded module
// graph: first the per-package analyzers on every package (sharing
// each package's directive index, so waiver consumption is recorded),
// then the flow analyzers over the whole graph. Per-package analyzer
// results are merged across packages under one entry per analyzer.
func RunFlowSuite(g *Graph) []FlowResult {
	var out []FlowResult
	for _, a := range Analyzers() {
		merged := FlowResult{Analyzer: a.Name}
		for _, pkg := range g.Packages {
			pass := &Pass{
				Analyzer:  a,
				Fset:      g.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.Path,
				Dirs:      pkg.Dirs,
			}
			if err := a.Run(pass); err != nil && merged.Err == nil {
				merged.Err = err
			}
			merged.Diagnostics = append(merged.Diagnostics, pass.Diagnostics()...)
		}
		out = append(out, merged)
	}
	for _, fa := range FlowAnalyzers() {
		pass := &FlowPass{Analyzer: fa, Graph: g}
		err := fa.Run(pass)
		out = append(out, FlowResult{Analyzer: fa.Name, Diagnostics: pass.Diagnostics(), Err: err})
	}
	return out
}

// An OutputDiagnostic is one finding resolved to a printable position,
// tagged with its analyzer.
type OutputDiagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// OrderDiagnostics flattens per-analyzer results into a single list
// sorted by (file, offset, analyzer) — the one true output order, so
// CI diffs are stable no matter how packages and analyzers interleave.
func OrderDiagnostics(fset *token.FileSet, results []FlowResult) []OutputDiagnostic {
	var out []OutputDiagnostic
	for _, res := range results {
		for _, d := range res.Diagnostics {
			out = append(out, OutputDiagnostic{
				Position: fset.Position(d.Pos),
				Analyzer: res.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Offset != b.Position.Offset {
			return a.Position.Offset < b.Position.Offset
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowedAt reports whether a rule is waived at a position inside node
// n: by a line-scoped //atm:allow in n's package, or by a
// function-scoped allow on n or any enclosing function.
func allowedAt(n *Node, rule string, pos token.Pos) bool {
	if n.Pkg == nil || n.Pkg.Dirs == nil {
		return false
	}
	return n.Pkg.Dirs.Allowed(rule, pos, n.FuncStack())
}

// hasDirective reports whether node n carries the given directive kind.
func hasDirective(n *Node, kind string) bool {
	return n.Pkg != nil && n.Pkg.Dirs != nil && n.Decl != nil && n.Pkg.Dirs.HasDirective(n.Decl, kind)
}

// pkgOf names the package a node belongs to, for via-chains.
func pkgOf(n *Node) string {
	if n.Pkg != nil {
		return n.Pkg.Path
	}
	if n.Obj != nil && n.Obj.Pkg() != nil {
		return n.Obj.Pkg().Path()
	}
	return ""
}
