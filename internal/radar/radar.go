// Package radar simulates the radar reports that, in a real ATM system,
// arrive from radar towers every half-second period. Following Section
// 4.1 of the paper it assumes at most one report per aircraft per
// period, synthesizes each report as the aircraft's expected position
// plus small random noise, and then deliberately disorders the report
// list (split into fourths, each fourth reversed) so that Tracking and
// Correlation has real work to do.
package radar

import (
	"repro/internal/airspace"
	"repro/internal/rng"
)

// Match states for Report.MatchWith (Algorithm 1).
const (
	// Unmatched means no aircraft has correlated with this radar yet.
	Unmatched int32 = -1
	// Discarded means more than one aircraft correlated with this radar,
	// so the radar has been dropped.
	Discarded int32 = -2
)

// DefaultNoise is the default radar measurement error amplitude in
// nautical miles. It is kept below half of the initial 1x1 nm
// correlation box so that an isolated aircraft always correlates on the
// first pass.
const DefaultNoise = 0.25

// Report is one simulated radar sighting.
type Report struct {
	// RX, RY is the measured position in nautical miles.
	RX, RY float64
	// MatchWith holds the correlation state: Unmatched, Discarded, or
	// the ID of the aircraft this radar matched.
	MatchWith int32
}

// Frame is the set of reports for one period.
type Frame struct {
	Reports []Report
}

// Generate produces one report per aircraft at its expected position
// (X+DX, Y+DY) plus independent noise in [-noise, +noise] on each
// coordinate, then shuffles the list with ShuffleFourths. The aircraft
// records are not modified.
func Generate(w *airspace.World, noise float64, r *rng.Rand) *Frame {
	f := &Frame{Reports: make([]Report, w.N())}
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		f.Reports[i] = Report{
			RX:        a.X + a.DX + r.Noise(noise),
			RY:        a.Y + a.DY + r.Noise(noise),
			MatchWith: Unmatched,
		}
	}
	ShuffleFourths(f.Reports)
	return f
}

// ShuffleFourths disorders reports exactly as the paper's host code
// does: "the radar data array is split into fourths and each fourth is
// reversed". This guarantees radar[i] does not generally correspond to
// aircraft[i] while remaining deterministic.
func ShuffleFourths(reports []Report) {
	n := len(reports)
	for q := 0; q < 4; q++ {
		lo := q * n / 4
		hi := (q + 1) * n / 4
		for i, j := lo, hi-1; i < j; i, j = i+1, j-1 {
			reports[i], reports[j] = reports[j], reports[i]
		}
	}
}

// Reset returns every report to the Unmatched state so a frame can be
// reused across correlation passes or platforms.
func (f *Frame) Reset() {
	for i := range f.Reports {
		f.Reports[i].MatchWith = Unmatched
	}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := &Frame{Reports: make([]Report, len(f.Reports))}
	copy(c.Reports, f.Reports)
	return c
}

// CloneInto copies f into dst, reusing dst's report array when it is
// large enough (see airspace.World.CloneInto).
func (f *Frame) CloneInto(dst *Frame) {
	if cap(dst.Reports) < len(f.Reports) {
		dst.Reports = make([]Report, len(f.Reports))
	}
	dst.Reports = dst.Reports[:len(f.Reports)]
	copy(dst.Reports, f.Reports)
}

// N returns the number of reports in the frame.
func (f *Frame) N() int { return len(f.Reports) }
