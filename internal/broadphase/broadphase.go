// Package broadphase prunes the O(n²) pair enumeration at the heart of
// the collision-detection tasks (Algorithm 2, Equations 1-6). Every
// platform's Tasks 2-3 scan compares each track aircraft against every
// other aircraft; a PairSource replaces that full scan with a candidate
// set that is provably a superset of the pairs that can influence the
// result, so detection output is bit-for-bit identical while the number
// of pair evaluations drops from O(n²) toward O(n).
//
// # Exactness argument
//
// The per-track scan (tasks.scan and its platform ports) initializes
// its running minimum to airspace.SafeTime and only records conflicts
// whose window start tmin is strictly below it; since SafeTime equals
// the criticality threshold airspace.CriticalTime, a pair whose
// earliest conflict lies at or beyond CriticalTime periods can never
// change the scan's earliest time, its conflict partner, or the
// critical verdict. A conflict with tmin < CriticalTime requires both
// axis separations to be within airspace.SepTotal at some instant
// t ∈ [0, CriticalTime); at that instant each aircraft sits inside its
// own reach envelope — the axis-aligned box of every position the
// aircraft can occupy within CriticalTime periods at its current
// *speed*, under any heading, expanded by half the separation bound
// (Reach). Two aircraft can therefore only matter to each other if
// their reach envelopes overlap on both axes.
//
// The envelope deliberately uses the speed ball rather than the
// committed course: collision resolution probes headings rotated up to
// ±30° and the sequential reference commits a successful rotation in
// place, mid-run. Rotation preserves speed, so a speed-ball envelope
// built once per Detect/DetectResolve invocation stays valid for every
// probed and every committed heading — no index maintenance, no
// ordering sensitivity. (The paper's full 20-minute look-ahead horizon
// would be useless as a pruning bound: at 600 knots an aircraft crosses
// 200 nm in 20 minutes, most of the 256 nm field; the critical window
// is the bound that actually prunes, and it is the exact one.)
//
// Candidate sets are returned in ascending aircraft-index order so that
// the scan's first-wins tie-break on equal conflict times matches the
// full scan exactly. Sets may include the track aircraft itself;
// callers already skip it.
package broadphase

import (
	"fmt"
	"math"

	"repro/internal/airspace"
)

// PruneHorizon is the look-ahead, in periods, that bounds which pairs
// can influence collision detection: conflicts first entering the
// separation band at or beyond this time never alter the scan result
// (see the package comment).
const PruneHorizon = airspace.CriticalTime

// slack widens every envelope by a hair so that exact floating-point
// boundary cases (a window starting exactly where an envelope ends)
// land inside rather than outside. Pruning only ever errs toward more
// candidates.
const slack = 1e-9

// PairSource yields, for one track aircraft, the indices of the
// aircraft it could possibly be in critical conflict with.
//
// Contract:
//   - Prepare must be called once per Detect/DetectResolve invocation,
//     before the first Candidates call, with the world in its
//     post-Task-1 (committed, wrapped) state. Prepare is not safe for
//     concurrent use.
//   - Candidates must return a superset of every aircraft whose
//     conflict with track can start before PruneHorizon under any
//     heading of the track's current speed, in ascending index order.
//     The track itself may be included; callers skip it. After Prepare
//     returns, Candidates is safe for concurrent use from multiple
//     goroutines (the platform executors scan in parallel).
//   - Returned slices must be treated as read-only and are only valid
//     until the next Prepare.
//   - AppendCandidates appends the same candidate set to dst and
//     returns the extended slice. It never retains dst and writes only
//     through it, so a caller that keeps one buffer per worker
//     goroutine performs zero allocations per query in steady state.
//     Like Candidates, it is safe for concurrent use after Prepare.
type PairSource interface {
	// Name returns the registry name of the source.
	Name() string
	// Prepare builds the index for the world's current snapshot.
	Prepare(w *airspace.World)
	// Candidates returns the candidate trial indices for track.
	Candidates(w *airspace.World, track *airspace.Aircraft) []int32
	// AppendCandidates appends the candidate trial indices for track to
	// dst and returns the extended slice.
	AppendCandidates(dst []int32, w *airspace.World, track *airspace.Aircraft) []int32
}

// Reach returns the per-axis half-width of the aircraft's critical-
// window envelope: the farthest it can travel along one axis within
// PruneHorizon at its current speed under any heading, plus half the
// pairwise separation bound (each member of a pair contributes half of
// airspace.SepTotal).
//
//atm:inline
func Reach(a *airspace.Aircraft) float64 {
	return ReachAt(a.DX, a.DY)
}

// ReachAt is Reach on a scalar velocity, for callers holding the world
// in column (SoA) form. Same expression, bit-identical result.
//
//atm:inline
func ReachAt(dx, dy float64) float64 {
	return math.Hypot(dx, dy)*PruneHorizon + airspace.SepTotal/2 + slack
}

// Registry names of the three sources.
const (
	BruteName = "brute"
	GridName  = "grid"
	SweepName = "sweep"
)

// Names returns the registry names in presentation order (the oracle
// first).
func Names() []string { return []string{BruteName, GridName, SweepName} }

// New constructs the named pair source with default parameters.
func New(name string) (PairSource, error) {
	switch name {
	case BruteName:
		return NewBrute(), nil
	case GridName:
		return NewGrid(), nil
	case SweepName:
		return NewSweep(), nil
	}
	return nil, fmt.Errorf("broadphase: unknown pair source %q (known: %v)", name, Names())
}

// MustNew is New that panics on error, for tables of known-good names.
func MustNew(name string) PairSource {
	s, err := New(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Brute is the all-pairs oracle: every aircraft is a candidate for
// every track. It reproduces the unpruned scan exactly and costs
// nothing to prepare; the other sources are tested against it.
type Brute struct {
	all []int32
}

// NewBrute returns the all-pairs source.
func NewBrute() *Brute { return &Brute{} }

// Name returns "brute".
func (b *Brute) Name() string { return BruteName }

// Prepare sizes the shared candidate list to the world.
func (b *Brute) Prepare(w *airspace.World) {
	n := w.N()
	if len(b.all) == n {
		return
	}
	b.all = make([]int32, n)
	for i := range b.all {
		b.all[i] = int32(i)
	}
}

// Candidates returns every aircraft index (including the track; the
// scan skips it). The returned slice is shared across calls.
func (b *Brute) Candidates(w *airspace.World, track *airspace.Aircraft) []int32 {
	return b.all
}

// AppendCandidates appends every aircraft index to dst.
//
//atm:noalloc
func (b *Brute) AppendCandidates(dst []int32, w *airspace.World, track *airspace.Aircraft) []int32 {
	return append(dst, b.all...)
}
