package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/airspace"
	"repro/internal/platform"
	"repro/internal/replay"
)

func TestSystemRunsMajorCycle(t *testing.T) {
	p := platform.MustNew(platform.TitanXPascal, 1)
	sys := NewSystem(p, Config{N: 500, Seed: 1})
	sys.RunMajorCycles(2)
	st := sys.Stats()
	if st.Periods != 32 {
		t.Fatalf("Periods = %d, want 32", st.Periods)
	}
	t1 := st.Task(Task1)
	t23 := st.Task(Task23)
	if t1.Runs != 32 {
		t.Fatalf("Task1 runs = %d, want 32 (every period)", t1.Runs)
	}
	if t23.Runs != 2 {
		t.Fatalf("Task23 runs = %d, want 2 (once per major cycle)", t23.Runs)
	}
}

func TestTask23OnlyInSixteenthPeriod(t *testing.T) {
	p := platform.MustNew(platform.STARAN, 1)
	sys := NewSystem(p, Config{N: 100, Seed: 2})
	for i := 0; i < airspace.PeriodsPerMajorCycle-1; i++ {
		sys.RunPeriod()
	}
	if sys.Stats().Task(Task23).Runs != 0 {
		t.Fatal("Task23 ran before the 16th period")
	}
	sys.RunPeriod()
	if sys.Stats().Task(Task23).Runs != 1 {
		t.Fatal("Task23 did not run in the 16th period")
	}
}

func TestNegativeNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative N did not panic")
		}
	}()
	NewSystem(platform.MustNew(platform.TitanXPascal, 1), Config{N: -1})
}

func TestDeterministicPlatformsNeverMiss(t *testing.T) {
	// The paper's deadline claim at a mid-sweep size: CUDA and AP
	// platforms complete every period's tasks within the half-second.
	for _, name := range []string{platform.TitanXPascal, platform.GeForce9800GT, platform.STARAN, platform.ClearSpeed} {
		m, err := Measure(name, 4000, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if m.PeriodMisses != 0 || m.Skips != 0 {
			t.Errorf("%s: %d misses / %d skips at 4000 aircraft", name, m.PeriodMisses, m.Skips)
		}
	}
}

func TestXeonMissesAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N multicore run")
	}
	// One 16th-period worth of work at 20000 aircraft: Task 1 plus
	// Tasks 2-3 must exceed the half-second budget on the multicore —
	// the deadline-miss regime of [12, 13]. A single invocation keeps
	// the test affordable; the full-schedule plumbing is covered by
	// TestShortPeriodForcesMisses.
	p := platform.MustNew(platform.Xeon16, 4)
	sys := NewSystem(p, Config{N: 20000, Seed: 4, PeriodDur: 0})
	// Advance the period counter to the 16th period so RunPeriod
	// schedules both tasks.
	sys.period = airspace.PeriodsPerMajorCycle - 1
	sys.RunPeriod()
	if sys.Stats().PeriodMisses == 0 {
		t.Fatalf("Xeon 16th period at 20000 aircraft met its deadline: %+v", sys.Stats())
	}
}

func TestMeasurementAverages(t *testing.T) {
	m, err := Measure(platform.GTX880M, 1000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Task1Mean <= 0 || m.Task23Mean <= 0 {
		t.Fatalf("non-positive means: %+v", m)
	}
	if m.Task1Max < m.Task1Mean || m.Task23Max < m.Task23Mean {
		t.Fatalf("max below mean: %+v", m)
	}
	if m.PlatformName != "GTX 880M" {
		t.Fatalf("PlatformName = %q", m.PlatformName)
	}
}

func TestMeasureUnknownPlatform(t *testing.T) {
	if _, err := Measure("pdp-11", 10, 1, 1); err == nil {
		t.Fatal("unknown platform did not error")
	}
}

func TestRunIsReproducible(t *testing.T) {
	// Same seed, same platform: identical deadline stats and identical
	// final world.
	mk := func() *System {
		p := platform.MustNew(platform.TitanXPascal, 7)
		return NewSystem(p, Config{N: 800, Seed: 7})
	}
	a, b := mk(), mk()
	a.RunMajorCycles(1)
	b.RunMajorCycles(1)
	if a.Stats().Task(Task1).Total != b.Stats().Task(Task1).Total {
		t.Fatal("Task1 totals differ between identical runs")
	}
	for i := range a.World.Aircraft {
		if a.World.Aircraft[i] != b.World.Aircraft[i] {
			t.Fatalf("aircraft %d differs between identical runs", i)
		}
	}
}

func TestConfigNoiseDefault(t *testing.T) {
	if (Config{}).noise() != 0.25 {
		t.Fatalf("default noise = %v", (Config{}).noise())
	}
	if (Config{Noise: 0.1}).noise() != 0.1 {
		t.Fatal("explicit noise ignored")
	}
}

func TestShortPeriodForcesMisses(t *testing.T) {
	// Sanity check of the deadline plumbing: with an absurdly short
	// period even the fastest platform must miss.
	p := platform.MustNew(platform.TitanXPascal, 1)
	sys := NewSystem(p, Config{N: 2000, Seed: 1, PeriodDur: time.Nanosecond})
	sys.RunMajorCycles(1)
	if sys.Stats().PeriodMisses == 0 {
		t.Fatal("nanosecond periods produced no misses")
	}
}

func TestRecordingARun(t *testing.T) {
	var buf bytes.Buffer
	p := platform.MustNew(platform.TitanXPascal, 1)
	sys := NewSystem(p, Config{N: 200, Seed: 1})
	rec := replay.NewRecorder(&buf)
	sys.SetRecorder(rec)
	sys.RunMajorCycles(2)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := replay.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Periods != 32 {
		t.Fatalf("recorded %d periods", s.Periods)
	}
	if s.Snapshots != 2 {
		t.Fatalf("recorded %d snapshots, want 2 (default stride 16)", s.Snapshots)
	}
	if s.Task1 <= 0 || s.Task23 <= 0 {
		t.Fatalf("recorded durations empty: %+v", s)
	}
}
