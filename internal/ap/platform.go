package ap

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
	"repro/internal/telemetry"
)

// Platform adapts an associative machine profile to the scheduler's
// platform interface. It keeps one machine per database size so
// steady-state periods reuse the machine's scratch instead of
// reallocating it.
type Platform struct {
	prof    Profile
	src     broadphase.PairSource
	workers int
	m       *Machine
	rec     *telemetry.Recorder
}

// NewPlatform returns a scheduler-facing platform for the profile.
func NewPlatform(p Profile) *Platform { return &Platform{prof: p} }

// machine returns the reusable machine sized for n records with a
// zeroed cycle counter.
func (p *Platform) machine(n int) *Machine {
	if p.m == nil || p.m.N() != n {
		p.m = NewMachine(p.prof, n)
		p.m.SetWorkers(p.workers)
	}
	p.m.ResetCycles()
	return p.m
}

// SetWorkers pins the host worker count used to execute the wide
// element loops (n <= 0 restores the process-default pool).
func (p *Platform) SetWorkers(n int) {
	p.workers = n
	if p.m != nil {
		p.m.SetWorkers(n)
	}
}

// SetPairSource installs a broadphase pair source for the detection
// program (nil keeps the full associative scan). On a true AP this only
// trims the PairChecks account, not the wide-operation time — see
// apScan.
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.src = src }

// SetTelemetry attaches a recorder (nil detaches): each task then
// records one span per program phase, reconstructed from the
// machine's cycle-counter checkpoints. Phases tile the task exactly
// (modulo per-span nanosecond rounding) because AP time is
// cycles/clock and the control unit is strictly sequential.
func (p *Platform) SetTelemetry(rec *telemetry.Recorder) { p.rec = rec }

// emitMarks converts the machine's phase checkpoints to back-to-back
// spans starting at the recorder's modeled now. total is the task's
// modeled duration, which closes the final phase.
func (p *Platform) emitMarks(m *Machine, total time.Duration) {
	base := p.rec.Now()
	for k := range m.marks {
		mk := &m.marks[k]
		start := m.timeAt(mk.cycles)
		end := total
		if k+1 < len(m.marks) {
			end = m.timeAt(m.marks[k+1].cycles)
		}
		p.rec.SpanArg(p.rec.Intern(mk.name), base+start, end-start, mk.arg)
	}
	m.marksOn = false
}

// Name returns the machine name.
func (p *Platform) Name() string { return p.prof.Name }

// Deterministic reports that AP timing is a pure function of the
// instruction trace — the synchronous-SIMD property the paper builds
// on.
func (p *Platform) Deterministic() bool { return true }

// Track runs Task 1 as an AP program and returns the modeled time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	m := p.machine(w.N())
	if p.rec != nil {
		m.beginMarks()
	}
	st := TrackProgram(m, w, f)
	d := m.Time()
	if p.rec != nil {
		p.emitMarks(m, d)
		p.rec.Counter(p.rec.Intern(telemetry.NameTrackMatched), int64(st.Matched))
	}
	return d
}

// DetectResolve runs Tasks 2-3 as an AP program and returns the
// modeled time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	m := p.machine(w.N())
	if p.rec != nil {
		m.beginMarks()
	}
	st := DetectResolveProgramWith(m, w, p.src)
	d := m.Time()
	if p.rec != nil {
		p.emitMarks(m, d)
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectConflicts), int64(st.Conflicts))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectRotations), int64(st.Rotations))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectResolved), int64(st.Resolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectUnresolved), int64(st.Unresolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectPairChecks), int64(st.PairChecks))
	}
	return d
}
