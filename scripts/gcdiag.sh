#!/usr/bin/env bash
# gcdiag.sh — the compiler-diagnostics gate.
#
# Rebuilds the module with the gc compiler's analysis output enabled
# and feeds it to `atmlint gcdiag`, which enforces the //atm:inline,
# //atm:noescape, and //atm:nobce directives (see internal/lint/gcdiag
# and DESIGN.md §12). cmd/go replays cached compiler diagnostics, so
# repeat runs cost no recompilation.
#
# Usage: scripts/gcdiag.sh [packages...]   (default ./...)
#
# The -m output is toolchain-sensitive: inlining budgets, escape
# analysis, and BCE all improve across releases. CI pins the Go
# version for this gate; when bumping the toolchain, re-run this
# script and re-fit any directive the new compiler judges differently.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
PKGS=("$@")
if [ ${#PKGS[@]} -eq 0 ]; then
  PKGS=(./...)
fi

$GO build -o bin/atmlint ./cmd/atmlint

diag=$(mktemp)
trap 'rm -f "$diag"' EXIT

# The diagnostics land on stderr; a failing build must surface as a
# build error, not as an empty gate pass.
if ! $GO build -gcflags='-m -m -d=ssa/check_bce/debug=1' "${PKGS[@]}" 2> "$diag"; then
  cat "$diag" >&2
  echo "gcdiag: build failed" >&2
  exit 1
fi

bin/atmlint gcdiag -diag "$diag" .
