package airspace

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewWorldCount(t *testing.T) {
	w := NewWorld(100, rng.New(1))
	if w.N() != 100 {
		t.Fatalf("N = %d, want 100", w.N())
	}
	for i, a := range w.Aircraft {
		if int(a.ID) != i {
			t.Fatalf("aircraft %d has ID %d", i, a.ID)
		}
	}
}

func TestNewWorldZero(t *testing.T) {
	w := NewWorld(0, rng.New(1))
	if w.N() != 0 {
		t.Fatalf("N = %d, want 0", w.N())
	}
}

func TestNewWorldNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(-1) did not panic")
		}
	}()
	NewWorld(-1, rng.New(1))
}

// Section 4.1 invariants: positions within ±SetupHalf, speed within
// [SpeedMin, SpeedMax] knots, altitude within [AltMin, AltMax].
func TestSetupFlightInvariants(t *testing.T) {
	w := NewWorld(5000, rng.New(2))
	for _, a := range w.Aircraft {
		if math.Abs(a.X) > SetupHalf || math.Abs(a.Y) > SetupHalf {
			t.Fatalf("aircraft %d outside setup bounds: (%v,%v)", a.ID, a.X, a.Y)
		}
		s := a.SpeedKnots()
		if s < SpeedMin-1e-9 || s > SpeedMax+1e-9 {
			t.Fatalf("aircraft %d speed %v knots outside [%v,%v]", a.ID, s, SpeedMin, SpeedMax)
		}
		if a.Alt < AltMin || a.Alt > AltMax {
			t.Fatalf("aircraft %d altitude %v outside [%v,%v]", a.ID, a.Alt, AltMin, AltMax)
		}
		if a.ColWith != NoConflict || a.Col {
			t.Fatalf("aircraft %d starts with conflict state set", a.ID)
		}
		if a.TimeTill != SafeTime {
			t.Fatalf("aircraft %d TimeTill = %v, want %v", a.ID, a.TimeTill, SafeTime)
		}
	}
}

// SetupFlight draws signs independently, so all four quadrants and all
// four velocity sign combinations must occur.
func TestSetupFlightCoversQuadrants(t *testing.T) {
	w := NewWorld(1000, rng.New(3))
	var posQuad, velQuad [4]int
	quad := func(x, y float64) int {
		q := 0
		if x < 0 {
			q |= 1
		}
		if y < 0 {
			q |= 2
		}
		return q
	}
	for _, a := range w.Aircraft {
		posQuad[quad(a.X, a.Y)]++
		velQuad[quad(a.DX, a.DY)]++
	}
	for q := 0; q < 4; q++ {
		if posQuad[q] == 0 {
			t.Errorf("no aircraft in position quadrant %d", q)
		}
		if velQuad[q] == 0 {
			t.Errorf("no aircraft with velocity signs in quadrant %d", q)
		}
	}
}

func TestSetupDeterministic(t *testing.T) {
	a := NewWorld(50, rng.New(7))
	b := NewWorld(50, rng.New(7))
	for i := range a.Aircraft {
		if a.Aircraft[i] != b.Aircraft[i] {
			t.Fatalf("same seed produced different aircraft %d", i)
		}
	}
}

func TestWrapReentersAtNegated(t *testing.T) {
	a := Aircraft{X: FieldHalf + 5, Y: -30, DX: 0.1, DY: 0.2}
	Wrap(&a)
	if a.X != -(FieldHalf+5) || a.Y != 30 {
		t.Fatalf("Wrap moved aircraft to (%v,%v)", a.X, a.Y)
	}
	if a.DX != 0.1 || a.DY != 0.2 {
		t.Fatal("Wrap changed the velocity; re-entry must keep speed and direction")
	}
}

func TestWrapLeavesInFieldAlone(t *testing.T) {
	a := Aircraft{X: 10, Y: -10}
	Wrap(&a)
	if a.X != 10 || a.Y != -10 {
		t.Fatalf("Wrap moved in-field aircraft to (%v,%v)", a.X, a.Y)
	}
}

// Property: re-entry preserves distance from the field center (the
// negated point is symmetric), and an aircraft that exits moving
// outward is moving inward after the wrap — which is what keeps the
// traffic population stable.
func TestWrapSymmetryAndInwardMotion(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 1000; i++ {
		// An aircraft that just stepped slightly past an edge.
		a := Aircraft{X: r.Range(FieldHalf, FieldHalf+0.1), Y: r.Range(-FieldHalf, FieldHalf), DX: 0.05, DY: r.Range(-0.05, 0.05)}
		d0 := math.Hypot(a.X, a.Y)
		Wrap(&a)
		if math.Abs(math.Hypot(a.X, a.Y)-d0) > 1e-12 {
			t.Fatalf("Wrap changed distance from center")
		}
		// It exited moving +x; after negation it sits at x < -FieldHalf
		// still moving +x, i.e. back toward the field.
		if a.X > 0 || a.DX <= 0 {
			t.Fatalf("wrapped aircraft not re-entering: x=%v dx=%v", a.X, a.DX)
		}
	}
}

// Wrap is an involution on out-of-field points: applying it twice
// returns the original position.
func TestWrapInvolution(t *testing.T) {
	r := rng.New(12)
	for i := 0; i < 1000; i++ {
		x := r.Range(-2*FieldHalf, 2*FieldHalf)
		y := r.Range(-2*FieldHalf, 2*FieldHalf)
		if InField(x, y) {
			continue
		}
		a := Aircraft{X: x, Y: y}
		Wrap(&a)
		Wrap(&a)
		if a.X != x || a.Y != y {
			t.Fatalf("double Wrap of (%v,%v) gave (%v,%v)", x, y, a.X, a.Y)
		}
	}
}

// Over many periods of dead-reckoned movement plus wrapping, every
// aircraft stays within the field plus one period's travel.
func TestLongRunStaysNearField(t *testing.T) {
	w := NewWorld(500, rng.New(13))
	maxStep := SpeedMax / PeriodsPerHour
	for period := 0; period < 5000; period++ {
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			a.X += a.DX
			a.Y += a.DY
		}
		w.WrapAll()
	}
	for _, a := range w.Aircraft {
		if math.Abs(a.X) > FieldHalf+maxStep || math.Abs(a.Y) > FieldHalf+maxStep {
			t.Fatalf("aircraft %d drifted to (%v,%v)", a.ID, a.X, a.Y)
		}
	}
}

func TestComputeExpected(t *testing.T) {
	w := NewWorld(10, rng.New(5))
	w.ComputeExpected()
	for _, a := range w.Aircraft {
		if a.ExpX != a.X+a.DX || a.ExpY != a.Y+a.DY {
			t.Fatalf("aircraft %d expected position wrong", a.ID)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := NewWorld(10, rng.New(5))
	c := w.Clone()
	c.Aircraft[0].X = 999
	if w.Aircraft[0].X == 999 {
		t.Fatal("Clone shares backing storage with original")
	}
}

func TestResetConflict(t *testing.T) {
	a := Aircraft{DX: 0.1, DY: 0.2, Col: true, TimeTill: 5, ColWith: 3, BatX: 9, BatY: 9}
	a.ResetConflict()
	if a.Col || a.TimeTill != SafeTime || a.ColWith != NoConflict {
		t.Fatalf("ResetConflict left state: %+v", a)
	}
	if a.BatX != a.DX || a.BatY != a.DY {
		t.Fatal("ResetConflict should reset trial path to committed course")
	}
}

func TestHorizonConstant(t *testing.T) {
	if HorizonPeriods != 2400 {
		t.Fatalf("HorizonPeriods = %v, want 2400 (20 min of half-second periods)", HorizonPeriods)
	}
	if PeriodsPerMajorCycle != 16 {
		t.Fatalf("PeriodsPerMajorCycle = %d, want 16", PeriodsPerMajorCycle)
	}
}
