package cuda

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// gridWorld builds well-separated traffic (no ambiguous correlation, no
// conflicts) for exact comparisons against the sequential reference.
func gridWorld(n int) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%side)*6 - airspace.SetupHalf
		a.Y = float64(i/side)*6 - airspace.SetupHalf
		a.DX = 0.02
		a.DY = 0.01
		a.Alt = 10000 + float64(i%4)*3000
		a.ResetConflict()
	}
	return w
}

func TestTrackDroneMatchesReferenceOnCleanTraffic(t *testing.T) {
	w := gridWorld(400)
	f := radar.Generate(w, 0.2, rng.New(1))

	refW := w.Clone()
	refF := f.Clone()
	refStats := tasks.Correlate(refW, refF)

	eng := NewEngine(TitanXPascal)
	res := eng.TrackDrone(w, f)

	if res.Matched != refStats.Matched {
		t.Fatalf("matched %d, reference %d", res.Matched, refStats.Matched)
	}
	for i := range w.Aircraft {
		if w.Aircraft[i].X != refW.Aircraft[i].X || w.Aircraft[i].Y != refW.Aircraft[i].Y {
			t.Fatalf("aircraft %d position differs from reference: (%v,%v) vs (%v,%v)",
				i, w.Aircraft[i].X, w.Aircraft[i].Y, refW.Aircraft[i].X, refW.Aircraft[i].Y)
		}
	}
}

func TestTrackDroneHighMatchRateOnRandomTraffic(t *testing.T) {
	w := airspace.NewWorld(3000, rng.New(7))
	f := radar.Generate(w, radar.DefaultNoise, rng.New(8))
	eng := NewEngine(GTX880M)
	res := eng.TrackDrone(w, f)
	if res.Matched < w.N()*95/100 {
		t.Fatalf("only %d of %d matched", res.Matched, w.N())
	}
}

func TestTrackDroneDeterministicTiming(t *testing.T) {
	// The paper: "each time we ran the program ... we would get the
	// exact same timings again and again". The modeled time must be a
	// pure function of the workload, whatever the goroutine schedule.
	base := airspace.NewWorld(2000, rng.New(9))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(10))
	eng := NewEngine(GeForce9800GT)

	first := eng.TrackDrone(base.Clone(), frame.Clone())
	for i := 0; i < 4; i++ {
		again := eng.TrackDrone(base.Clone(), frame.Clone())
		if again.Time != first.Time {
			t.Fatalf("run %d time %v != first %v", i, again.Time, first.Time)
		}
		if again.Matched != first.Matched {
			t.Fatalf("run %d matched %d != first %d", i, again.Matched, first.Matched)
		}
	}
}

func TestTrackDroneWrapsExitingAircraft(t *testing.T) {
	w := gridWorld(4)
	a := &w.Aircraft[0]
	a.X = airspace.FieldHalf - 0.001
	a.DX = 0.05
	f := radar.Generate(w, 0, rng.New(3))
	NewEngine(TitanXPascal).TrackDrone(w, f)
	if w.Aircraft[0].X > 0 {
		t.Fatalf("exiting aircraft not wrapped: x=%v", w.Aircraft[0].X)
	}
}

func TestTrackDroneEmptyWorld(t *testing.T) {
	w := &airspace.World{}
	f := &radar.Frame{}
	res := NewEngine(TitanXPascal).TrackDrone(w, f)
	if res.Matched != 0 {
		t.Fatalf("empty world matched %d", res.Matched)
	}
}

// headOnPair builds two aircraft closing head-on with a conflict
// gap/0.1 periods out, plus far-away bystanders.
func headOnPair(gap float64, bystanders int) *airspace.World {
	w := gridWorld(2 + bystanders)
	a, b := &w.Aircraft[0], &w.Aircraft[1]
	a.X, a.Y, a.DX, a.DY, a.Alt = 0, 0, 0.05, 0, 10000
	b.X, b.Y, b.DX, b.DY, b.Alt = gap, 0, -0.05, 0, 10000
	for i := 2; i < w.N(); i++ {
		w.Aircraft[i].Alt = 30000
	}
	for i := range w.Aircraft {
		w.Aircraft[i].ResetConflict()
	}
	return w
}

func TestCheckCollisionPathDetects(t *testing.T) {
	w := headOnPair(10, 0)
	res := NewEngine(TitanXPascal).CheckCollisionPath(w)
	// Both threads see the conflict (symmetric detection).
	if res.Stats.Conflicts != 2 {
		t.Fatalf("conflicts = %d, want 2 (%+v)", res.Stats.Conflicts, res.Stats)
	}
}

func TestCheckCollisionPathResolvesWithinCycles(t *testing.T) {
	// With snapshot semantics both aircraft maneuver against each
	// other's old course, so full resolution may take a second major
	// cycle — the behaviour the paper describes for its concurrent
	// kernel. Require quiescence within 3 applications.
	w := headOnPair(30, 0)
	eng := NewEngine(TitanXPascal)
	for cycle := 0; cycle < 3; cycle++ {
		eng.CheckCollisionPath(w)
		check := tasks.Detect(w.Clone())
		if check.Conflicts == 0 {
			return
		}
	}
	t.Fatal("head-on conflict not resolved within 3 major cycles")
}

func TestCheckCollisionPathPreservesSpeedAndPosition(t *testing.T) {
	w := airspace.NewWorld(500, rng.New(21))
	speeds := make([]float64, w.N())
	type pos struct{ x, y float64 }
	positions := make([]pos, w.N())
	for i, a := range w.Aircraft {
		speeds[i] = a.SpeedKnots()
		positions[i] = pos{a.X, a.Y}
	}
	NewEngine(GTX880M).CheckCollisionPath(w)
	for i, a := range w.Aircraft {
		if math.Abs(a.SpeedKnots()-speeds[i]) > 1e-6 {
			t.Fatalf("aircraft %d speed changed %v -> %v", i, speeds[i], a.SpeedKnots())
		}
		if positions[i] != (pos{a.X, a.Y}) {
			t.Fatalf("aircraft %d moved during detect/resolve", i)
		}
	}
}

func TestCheckCollisionPathDeterministic(t *testing.T) {
	base := airspace.NewWorld(800, rng.New(33))
	eng := NewEngine(TitanXPascal)
	first := eng.CheckCollisionPath(base.Clone())
	firstW := base.Clone()
	eng2 := NewEngine(TitanXPascal)
	_ = eng2.CheckCollisionPath(firstW)
	for i := 0; i < 3; i++ {
		w := base.Clone()
		res := eng.CheckCollisionPath(w)
		if res.Time != first.Time {
			t.Fatalf("run %d time %v != %v", i, res.Time, first.Time)
		}
		if res.Stats != first.Stats {
			t.Fatalf("run %d stats %+v != %+v", i, res.Stats, first.Stats)
		}
		for j := range w.Aircraft {
			if w.Aircraft[j] != firstW.Aircraft[j] {
				t.Fatalf("run %d aircraft %d differs", i, j)
			}
		}
	}
}

func TestCheckCollisionPathStatsConsistent(t *testing.T) {
	w := airspace.NewWorld(1000, rng.New(55))
	res := NewEngine(GeForce9800GT).CheckCollisionPath(w)
	st := res.Stats
	if st.Resolved+st.Unresolved > st.Conflicts {
		t.Fatalf("resolved(%d)+unresolved(%d) > conflicts(%d)", st.Resolved, st.Unresolved, st.Conflicts)
	}
	if st.PairChecks == 0 {
		t.Fatal("no pair checks on 1000 aircraft")
	}
}

func TestSplitKernelsCostMoreThanFused(t *testing.T) {
	// The paper fuses Tasks 2 and 3 into one kernel to avoid the extra
	// host round-trip; the model must reflect that design pressure.
	base := airspace.NewWorld(2000, rng.New(77))
	eng := NewEngine(GeForce9800GT)

	fused := eng.CheckCollisionPath(base.Clone())

	w := base.Clone()
	det := eng.DetectOnly(w)
	resv := eng.ResolveOnly(w)
	split := det.Time + resv.Time

	if split <= fused.Time {
		t.Fatalf("split pipeline (%v) not more expensive than fused kernel (%v)", split, fused.Time)
	}
	if det.TransferTime+resv.TransferTime <= fused.TransferTime {
		t.Fatalf("split transfers (%v) must exceed fused transfers (%v)",
			det.TransferTime+resv.TransferTime, fused.TransferTime)
	}
}

func TestNearLinearScalingShape(t *testing.T) {
	// The headline claim: CUDA Task 1 time grows near-linearly — the
	// quadratic term is tiny because the N^2 work is spread over
	// thousands of cores. Doubling N from 4000 to 8000 must grow time
	// by clearly less than 4x (pure quadratic).
	eng := NewEngine(TitanXPascal)
	timeFor := func(n int) float64 {
		w := airspace.NewWorld(n, rng.New(11))
		f := radar.Generate(w, radar.DefaultNoise, rng.New(12))
		return eng.TrackDrone(w, f).Time.Seconds()
	}
	t4 := timeFor(4000)
	t8 := timeFor(8000)
	ratio := t8 / t4
	if ratio > 3.0 {
		t.Fatalf("Task 1 scaling ratio %v for 2x aircraft — not SIMD-like", ratio)
	}
}
