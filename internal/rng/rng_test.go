package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeated values: %d unique of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(lo, span float64) bool {
		lo = math.Mod(lo, 1e6)
		span = math.Abs(math.Mod(span, 1e6))
		v := r.Range(lo, lo+span)
		return v >= lo && (span == 0 && v == lo || v < lo+span)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(1, 0) did not panic")
		}
	}()
	New(1).Range(1, 0)
}

func TestIntNBoundsAndCoverage(t *testing.T) {
	r := New(11)
	const n = 7
	counts := make([]int, n)
	for i := 0; i < 7000; i++ {
		v := r.IntN(n)
		if v < 0 || v >= n {
			t.Fatalf("IntN(%d) out of range: %d", n, v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("IntN(%d) never produced %d in 7000 draws", n, v)
		}
		// Rough uniformity: expect ~1000 each.
		if c < 700 || c > 1300 {
			t.Errorf("IntN(%d): value %d drawn %d times, far from uniform", n, v, c)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestSignIsBalanced(t *testing.T) {
	r := New(13)
	pos := 0
	for i := 0; i < 10000; i++ {
		s := r.Sign()
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %v", s)
		}
		if s == 1 {
			pos++
		}
	}
	if pos < 4500 || pos > 5500 {
		t.Fatalf("Sign badly unbalanced: %d positives of 10000", pos)
	}
}

func TestNoiseAmplitude(t *testing.T) {
	r := New(17)
	const amp = 0.25
	for i := 0; i < 10000; i++ {
		v := r.Noise(amp)
		if v < -amp || v > amp {
			t.Fatalf("Noise(%v) out of range: %v", amp, v)
		}
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := New(19)
	const mean = 3.0
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.1*mean {
		t.Fatalf("Exp mean %v, want ~%v", got, mean)
	}
}

func TestSplitStreamsAreIndependent(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child produced %d identical draws", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := make([]int, 100)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermShuffles(t *testing.T) {
	r := New(31)
	p := make([]int, 100)
	r.Perm(p)
	inPlace := 0
	for i, v := range p {
		if i == v {
			inPlace++
		}
	}
	if inPlace > 20 {
		t.Fatalf("Perm left %d of 100 elements in place", inPlace)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
