// Package linttest runs lint analyzers over fixture packages and
// checks their diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest but built on the
// standard library alone.
//
// A fixture is a directory of .go files (conventionally under
// testdata/src/<name>). Lines that should be flagged carry a trailing
// comment of the form
//
//	x := rand.Intn(3) // want "math/rand is globally seeded"
//
// where each quoted string is an uninterpreted substring-regexp that
// must match the message of one diagnostic reported on that line. A
// line may carry several quoted patterns for several diagnostics.
// Diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
//
// Fixtures are type-checked with the "source" importer against GOROOT,
// so they may import standard-library packages only. The package path
// the analyzers see is chosen by the caller, which is how fixtures
// exercise designated-package gating (e.g. a fixture analyzed as
// "repro/internal/tasks" versus one analyzed as "repro/internal/viz").
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the quoted patterns of a // want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes the fixture directory as though it were the package
// with import path pkgPath and checks diagnostics against the
// fixture's // want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in fixture dir %s", dir)
	}

	// Collect // want expectations.
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, m[1], err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, pattern: re})
				}
			}
		}
	}

	info := lint.NewInfo()
	cfg := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("fixture type error: %v", err) },
	}
	pkg, err := cfg.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	results := lint.Run(fset, files, pkg, info, pkgPath, analyzers)
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("analyzer %s: %v", res.Analyzer.Name, res.Err)
		}
		for _, d := range res.Diagnostics {
			posn := fset.Position(d.Pos)
			if !claim(wants, posn.Filename, posn.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic [%s]: %s", posn, res.Analyzer.Name, d.Message)
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation satisfied by a
// diagnostic at (file, line) with the given message.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
