package vector

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
	"repro/internal/telemetry"
)

// Platform adapts a Machine to the scheduler's platform interface.
type Platform struct {
	m   *Machine
	rec *telemetry.Recorder
}

// NewPlatform returns a scheduler-facing wide-vector platform.
func NewPlatform(p Profile) *Platform { return &Platform{m: New(p)} }

// Machine exposes the underlying machine.
func (p *Platform) Machine() *Machine { return p.m }

// SetPairSource installs a broadphase pair source on the machine (nil
// restores the all-pairs lane sweep).
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.m.SetPairSource(src) }

// SetWorkers pins the host worker count used to execute the modeled
// cores (n <= 0 restores the process-default pool).
func (p *Platform) SetWorkers(n int) { p.m.SetWorkers(n) }

// SetTelemetry attaches a recorder (nil detaches): each task then
// records one span per parallel phase, sized by the critical core's
// vector-instruction delta at the sustained issue rate plus the phase
// barrier. Because the vector model charges exactly
// max(vecInstr)/rate + phases*barrier per task, the phase spans tile
// the task's modeled time exactly (modulo per-span nanosecond
// rounding).
func (p *Platform) SetTelemetry(rec *telemetry.Recorder) { p.rec = rec }

// emitMarks converts the machine's per-phase instruction snapshots to
// back-to-back spans starting at the recorder's modeled now.
func (p *Platform) emitMarks() {
	m := p.m
	t := &m.tally
	cores := m.prof.Cores
	cstar := 0
	for c := 1; c < cores; c++ {
		if t.vecInstr[c] > t.vecInstr[cstar] {
			cstar = c
		}
	}
	rate := m.prof.IssueRate * m.prof.ClockHz
	off := p.rec.Now()
	var prev uint64
	for k := range m.marks {
		mk := &m.marks[k]
		cur := m.markOps[k*cores+cstar]
		dur := time.Duration(float64(cur-prev)/rate*float64(time.Second)) + m.prof.BarrierCost
		p.rec.SpanArg(p.rec.Intern(mk.name), off, dur, mk.arg)
		off += dur
		prev = cur
	}
	m.marksOn = false
}

// Name returns the machine name.
func (p *Platform) Name() string { return p.m.Name() }

// Deterministic reports true for the idealized vector model.
func (p *Platform) Deterministic() bool { return p.m.Deterministic() }

// Track runs Task 1 and returns the modeled time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	if p.rec != nil {
		p.m.beginMarks()
	}
	st, d := p.m.Track(w, f)
	if p.rec != nil {
		p.emitMarks()
		p.rec.Counter(p.rec.Intern(telemetry.NameTrackMatched), int64(st.Matched))
	}
	return d
}

// DetectResolve runs Tasks 2-3 and returns the modeled time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	if p.rec != nil {
		p.m.beginMarks()
	}
	st, d := p.m.DetectResolve(w)
	if p.rec != nil {
		p.emitMarks()
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectConflicts), int64(st.Conflicts))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectRotations), int64(st.Rotations))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectResolved), int64(st.Resolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectUnresolved), int64(st.Unresolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectPairChecks), int64(st.PairChecks))
	}
	return d
}
