package ap

import "fmt"

// This file implements the STARAN's bit-serial arithmetic substrate.
// STARAN PEs were one-bit processors: a W-bit word operation is
// executed as W passes over bit planes, one cycle per bit (plus carry
// bookkeeping), across all PEs simultaneously. The Machine's word-level
// cost parameters (ArithCycles = 16 for the STARAN profile) summarize
// this layer; BitPlanes makes the summary verifiable — the tests check
// that a masked bit-serial add/compare really costs O(W) cycles per
// word and produces the same results as ordinary integer arithmetic.
//
// The planes are stored transposed (one machine word of PE-bits per
// bit position), which is also how the STARAN's multidimensional-access
// memory held them.

// WordBits is the modeled word width of the bit-serial ALU.
const WordBits = 16

// BitPlanes is a register of n WordBits-wide unsigned words stored as
// bit planes across the PE array.
type BitPlanes struct {
	n      int
	planes [WordBits][]uint64 // planes[b] holds bit b of every record
}

// NewBitPlanes returns a zeroed register for n records.
func NewBitPlanes(n int) *BitPlanes {
	if n < 0 {
		panic(fmt.Sprintf("ap: NewBitPlanes with negative n %d", n))
	}
	words := (n + 63) / 64
	bp := &BitPlanes{n: n}
	for b := range bp.planes {
		bp.planes[b] = make([]uint64, words)
	}
	return bp
}

// N returns the record count.
func (bp *BitPlanes) N() int { return bp.n }

// Set stores value (truncated to WordBits) into record i.
func (bp *BitPlanes) Set(i int, value uint32) {
	word, bit := i/64, uint(i%64)
	for b := 0; b < WordBits; b++ {
		if value&(1<<b) != 0 {
			bp.planes[b][word] |= 1 << bit
		} else {
			bp.planes[b][word] &^= 1 << bit
		}
	}
}

// Get reads record i.
func (bp *BitPlanes) Get(i int) uint32 {
	word, bit := i/64, uint(i%64)
	var v uint32
	for b := 0; b < WordBits; b++ {
		if bp.planes[b][word]&(1<<bit) != 0 {
			v |= 1 << b
		}
	}
	return v
}

// maskWords converts the machine's responder mask into plane form.
func maskWords(m *Machine) []uint64 {
	words := make([]uint64, (m.n+63)/64)
	for i, on := range m.mask {
		if on {
			words[i/64] |= 1 << uint(i%64)
		}
	}
	return words
}

// AddBroadcast adds the broadcast constant to every masked record,
// bit-serially: one cycle per bit plane plus one for the carry ripple
// per plane. Unmasked records are untouched (the PE's mask bit gates
// the write-back, as in the hardware). Overflow wraps at WordBits.
func (m *Machine) AddBroadcast(dst *BitPlanes, constant uint32) {
	if dst.N() != m.n {
		panic("ap: AddBroadcast register size mismatch")
	}
	m.Broadcast(1)
	m.cycles += uint64(2*WordBits) * uint64(m.Tiles())

	mw := maskWords(m)
	words := len(mw)
	carry := make([]uint64, words)
	for b := 0; b < WordBits; b++ {
		cbit := uint64(0)
		if constant&(1<<b) != 0 {
			cbit = ^uint64(0)
		}
		for wIdx := 0; wIdx < words; wIdx++ {
			a := dst.planes[b][wIdx]
			sum := a ^ cbit ^ carry[wIdx]
			carryOut := (a & cbit) | (a & carry[wIdx]) | (cbit & carry[wIdx])
			// Masked write-back: unmasked lanes keep their old bit.
			dst.planes[b][wIdx] = (sum & mw[wIdx]) | (a &^ mw[wIdx])
			carry[wIdx] = carryOut & mw[wIdx]
		}
	}
}

// LessBroadcast narrows the responder mask to records whose value is
// strictly below the broadcast constant — the associative search
// primitive, executed most-significant bit first exactly as the STARAN
// did it: one cycle per bit plane.
func (m *Machine) LessBroadcast(src *BitPlanes, constant uint32) {
	if src.N() != m.n {
		panic("ap: LessBroadcast register size mismatch")
	}
	m.Broadcast(1)
	m.cycles += uint64(WordBits) * uint64(m.Tiles())

	words := (m.n + 63) / 64
	// undecided: records whose prefix equals the constant's so far;
	// less: records already known to be smaller.
	undecided := make([]uint64, words)
	less := make([]uint64, words)
	for i := range undecided {
		undecided[i] = ^uint64(0)
	}
	for b := WordBits - 1; b >= 0; b-- {
		cbit := constant&(1<<b) != 0
		for wIdx := 0; wIdx < words; wIdx++ {
			plane := src.planes[b][wIdx]
			if cbit {
				// Constant bit 1: undecided records with bit 0 become less.
				less[wIdx] |= undecided[wIdx] &^ plane
				undecided[wIdx] &= plane
			} else {
				// Constant bit 0: undecided records with bit 1 become greater.
				undecided[wIdx] &^= plane
			}
		}
	}
	for i := 0; i < m.n; i++ {
		if m.mask[i] {
			m.mask[i] = less[i/64]&(1<<uint(i%64)) != 0
		}
	}
	m.chargeWide(1) // mask AND write-back
}
