// Fixture analyzed as repro/internal/parexec: the one package allowed
// to own goroutines and synchronization. Map iteration stays banned.
package fixture

import "sync"

type pool struct {
	mu   sync.Mutex // clean: sync is the parexec package's job
	wake chan struct{}
}

func (p *pool) start(n int) {
	for w := 0; w < n; w++ {
		go func() { // clean: parexec owns the goroutines
			for range p.wake {
			}
		}()
	}
}

func stillNoMaps(m map[int]int) int {
	sum := 0
	for _, v := range m { // want "range over a map iterates in nondeterministic order"
		sum += v
	}
	return sum
}
