package telemetry_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// allNames is every registered platform, paper set plus extensions.
func allNames() []string {
	return append(platform.Names(), platform.ExtensionNames()...)
}

// newSystem builds a single-worker system with a fresh recorder.
func newSystem(t *testing.T, name string, n int, pairSource string) (*core.System, *telemetry.Recorder) {
	t.Helper()
	p := platform.MustNew(name, 2018)
	p.(platform.Workered).SetWorkers(1)
	sys := core.NewSystem(p, core.Config{N: n, Seed: 2018, PairSource: pairSource})
	rec := telemetry.NewRecorder(telemetry.DefaultCapacity)
	sys.SetTelemetry(rec)
	return sys, rec
}

// TestSpanSumsMatchSchedStats is the acceptance invariant of the
// telemetry subsystem: for every platform, the per-task modeled-time
// spans recorded by the scheduler observer sum exactly to the
// scheduler's own Stats totals, and span counts equal run counts.
func TestSpanSumsMatchSchedStats(t *testing.T) {
	for _, name := range allNames() {
		sys, rec := newSystem(t, name, 300, "")
		sys.RunMajorCycles(1)
		st := sys.Stats()
		for _, task := range []string{core.Task1, core.Task23} {
			ts := st.Task(task)
			if got, want := time.Duration(rec.SumOf(task)), ts.Total; got != want {
				t.Errorf("%s: telemetry span sum for %s = %v, sched total = %v", name, task, got, want)
			}
			if got, want := rec.CountOf(task), int64(ts.Runs); got != want {
				t.Errorf("%s: telemetry span count for %s = %d, sched runs = %d", name, task, got, want)
			}
		}
		if rec.Dropped() != 0 {
			t.Errorf("%s: ring dropped %d events at default capacity", name, rec.Dropped())
		}
	}
}

// TestPlatformSpansTileTaskSpans: the platform-phase spans inside each
// period sum to the task spans (exactly for the synchronous machines,
// within per-span nanosecond rounding for the others) — the property
// that makes the Chrome trace a faithful decomposition.
func TestPlatformSpansTileTaskSpans(t *testing.T) {
	for _, name := range allNames() {
		sys, rec := newSystem(t, name, 300, "")
		sys.RunMajorCycles(1)
		taskTotal := time.Duration(rec.SumOf(core.Task1) + rec.SumOf(core.Task23))
		var phaseTotal time.Duration
		rec.Visit(func(e telemetry.Event) {
			if e.Kind != telemetry.KindSpan {
				return
			}
			switch rec.Name(e.Name) {
			case core.Task1, core.Task23:
			default:
				phaseTotal += time.Duration(e.Value)
			}
		})
		if phaseTotal == 0 {
			t.Errorf("%s: no platform phase spans recorded", name)
			continue
		}
		// One nanosecond of rounding per span is the worst case.
		spans := rec.Len()
		diff := taskTotal - phaseTotal
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Duration(spans) {
			t.Errorf("%s: phase spans sum to %v, task spans to %v (diff %v over %d events)",
				name, phaseTotal, taskTotal, diff, spans)
		}
	}
}

// TestTelemetryDoesNotPerturb: attaching a recorder changes neither
// the simulated world nor any scheduling statistic.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	for _, name := range allNames() {
		run := func(attach bool) (*airspace.World, sched.Stats) {
			p := platform.MustNew(name, 2018)
			p.(platform.Workered).SetWorkers(1)
			sys := core.NewSystem(p, core.Config{N: 300, Seed: 2018})
			if attach {
				sys.SetTelemetry(telemetry.NewRecorder(1 << 10))
			}
			sys.RunMajorCycles(1)
			return sys.World, *sys.Stats()
		}
		plainW, plainSt := run(false)
		telW, telSt := run(true)
		for i := range plainW.Aircraft {
			if plainW.Aircraft[i] != telW.Aircraft[i] {
				t.Fatalf("%s: aircraft %d diverged with telemetry attached:\noff: %+v\non:  %+v",
					name, i, plainW.Aircraft[i], telW.Aircraft[i])
			}
		}
		if plainSt.VirtualElapsed != telSt.VirtualElapsed ||
			plainSt.PeriodMisses != telSt.PeriodMisses ||
			plainSt.MaxLoad != telSt.MaxLoad {
			t.Fatalf("%s: scheduler stats diverged with telemetry attached:\noff: %+v\non:  %+v",
				name, plainSt, telSt)
		}
		for _, task := range []string{core.Task1, core.Task23} {
			if *plainSt.Task(task) != *telSt.Task(task) {
				t.Fatalf("%s: task %s stats diverged with telemetry attached", name, task)
			}
		}
	}
}

// jsonl runs one Track + one DetectResolve directly against the
// platform at the given worker count and returns the recorded stream.
func jsonl(t *testing.T, name, srcName string, workers int, trackW *airspace.World, trackF *radar.Frame, detW *airspace.World) []byte {
	t.Helper()
	p := platform.MustNew(name, 77)
	p.(platform.Workered).SetWorkers(workers)
	if srcName != "" {
		p.(platform.PairSourced).SetPairSource(broadphase.MustNew(srcName))
	}
	rec := telemetry.NewRecorder(telemetry.DefaultCapacity)
	rec.SetDetail(telemetry.DetailBlock)
	p.(platform.Instrumented).SetTelemetry(rec)
	w, f := trackW.Clone(), trackF.Clone()
	p.Track(w, f)
	rec.SetNow(rec.Now()) // spans appended at the same modeled base
	p.DetectResolve(detW.Clone())
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJSONLWorkerInvariance extends the platform worker-invariance
// contract to the telemetry stream: at block detail, for every machine
// and pair source, the exported JSONL is byte-identical at 1, 3 and 8
// host workers. The MIMD Track runs on clean geometry for the same
// reason as TestWorkersInvariance (its arbitration is
// interleaving-dependent by design on contended traffic).
func TestJSONLWorkerInvariance(t *testing.T) {
	randomW := airspace.NewWorld(900, rng.New(201))
	randomF := radar.Generate(randomW, radar.DefaultNoise, rng.New(202))

	clean := &airspace.World{Aircraft: make([]airspace.Aircraft, 256)}
	for i := range clean.Aircraft {
		a := &clean.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%16)*8 - 60
		a.Y = float64(i/16)*8 - 60
		a.DX, a.DY = 0.02, -0.01
		a.Alt = 10000
		a.ResetConflict()
	}
	cleanF := radar.Generate(clean, 0.2, rng.New(203))

	for _, name := range allNames() {
		trackW, trackF := randomW, randomF
		if name == platform.Xeon16 {
			trackW, trackF = clean, cleanF
		}
		for _, srcName := range []string{"", broadphase.GridName} {
			ref := jsonl(t, name, srcName, 1, trackW, trackF, randomW)
			for _, workers := range []int{3, 8} {
				got := jsonl(t, name, srcName, workers, trackW, trackF, randomW)
				if !bytes.Equal(ref, got) {
					t.Fatalf("%s src=%q: JSONL diverged between workers=1 and workers=%d:\n-- workers=1:\n%s\n-- workers=%d:\n%s",
						name, srcName, workers, firstDiff(ref, got), workers, firstDiff(got, ref))
				}
			}
		}
	}
}

// firstDiff returns the line around the first differing byte, for
// readable failures.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := bytes.LastIndexByte(a[:i], '\n') + 1
	hi := lo + 200
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestSystemJSONLWorkerInvariance runs the whole system — scheduler
// observer, platform phases, broadphase counters — for a full major
// cycle on the deterministic platforms and requires a byte-identical
// stream at every worker count.
func TestSystemJSONLWorkerInvariance(t *testing.T) {
	run := func(name string, workers int) []byte {
		p := platform.MustNew(name, 2018)
		p.(platform.Workered).SetWorkers(workers)
		sys := core.NewSystem(p, core.Config{N: 400, Seed: 2018, PairSource: broadphase.GridName})
		rec := telemetry.NewRecorder(telemetry.DefaultCapacity)
		rec.SetDetail(telemetry.DetailBlock)
		sys.SetTelemetry(rec)
		sys.RunMajorCycles(1)
		var buf bytes.Buffer
		if err := telemetry.WriteJSONL(&buf, rec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, name := range allNames() {
		if !platform.MustNew(name, 2018).Deterministic() {
			continue
		}
		ref := run(name, 1)
		for _, workers := range []int{3, 8} {
			if got := run(name, workers); !bytes.Equal(ref, got) {
				t.Fatalf("%s: system JSONL diverged at workers=%d near:\n%s", name, workers, firstDiff(ref, got))
			}
		}
	}
}

// TestSteadyStateZeroAllocs: after warmup, a telemetry-attached period
// allocates no more than a bare one — the //atm:noalloc contract of
// the recording hot paths, observed end to end.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, name := range []string{platform.TitanXPascal, platform.STARAN, platform.Xeon16} {
		measure := func(rec *telemetry.Recorder) float64 {
			p := platform.MustNew(name, 2018)
			p.(platform.Workered).SetWorkers(1)
			sys := core.NewSystem(p, core.Config{N: 300, Seed: 2018})
			if rec != nil {
				rec.SetDetail(telemetry.DetailBlock)
				sys.SetTelemetry(rec)
			}
			sys.RunMajorCycles(2) // warm scratch, interning, ring
			return testing.AllocsPerRun(32, sys.RunPeriod)
		}
		bare := measure(nil)
		// The ring is sized so the measured periods never grow it.
		attached := measure(telemetry.NewRecorder(1 << 20))
		if attached > bare+0.1 {
			t.Errorf("%s: telemetry added allocations: %.2f per period bare, %.2f attached", name, bare, attached)
		}
	}
}
