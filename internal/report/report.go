// Package report renders experiment results for the terminal: aligned
// ASCII tables and a simple scatter chart, so cmd/atmbench can show the
// regenerated figures without any plotting dependency.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/trace"
)

// Table writes an aligned ASCII table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	total := len(headers)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// DatasetTable renders a dataset as a table with the sweep variable in
// the first column and one column per series.
func DatasetTable(w io.Writer, d *trace.Dataset) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", d.ID, d.Title); err != nil {
		return err
	}
	// Collect the union of X values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range d.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	headers := []string{d.XLabel}
	for _, s := range d.Series {
		headers = append(headers, s.Label)
	}
	// Time-valued datasets get duration formatting; anything else (miss
	// counts, fractions, nautical miles) is printed as a plain number.
	format := func(v float64) string { return fmt.Sprintf("%.4g", v) }
	if strings.Contains(d.YLabel, "second") {
		format = formatSeconds
	}
	var rows [][]string
	for _, x := range xs {
		row := []string{fmt.Sprintf("%.0f", x)}
		for _, s := range d.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = format(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// formatSeconds pretty-prints a duration in seconds with an adaptive
// unit.
func formatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case math.Abs(s) < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case math.Abs(s) < 1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// Chart renders the dataset as an ASCII scatter plot of the given size.
// Each series is drawn with its own glyph; the legend maps glyphs to
// labels.
func Chart(w io.Writer, d *trace.Dataset, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	glyphs := "*o+x#@%&"
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range d.Series {
		for _, p := range s.Points {
			if first {
				xmin, xmax, ymin, ymax = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if first {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range d.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			cx := int(math.Round((p.X - xmin) / (xmax - xmin) * float64(width-1)))
			cy := int(math.Round((p.Y - ymin) / (ymax - ymin) * float64(height-1)))
			row := height - 1 - cy
			grid[row][cx] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s (%s vs %s)\n", d.Title, d.YLabel, d.XLabel); err != nil {
		return err
	}
	for i, row := range grid {
		label := "          "
		if i == 0 {
			label = fmt.Sprintf("%9.3g ", ymax)
		} else if i == height-1 {
			label = fmt.Sprintf("%9.3g ", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%-10.3g%*.3g\n", strings.Repeat(" ", 11), xmin, width-10, xmax); err != nil {
		return err
	}
	for si, s := range d.Series {
		if _, err := fmt.Fprintf(w, "  %c = %s\n", glyphs[si%len(glyphs)], s.Label); err != nil {
			return err
		}
	}
	return nil
}
