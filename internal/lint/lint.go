// Package lint is a suite of static analyzers that turn the
// repository's cross-cutting correctness contracts — determinism,
// modeled-time/wall-clock separation, zero-allocation steady state,
// and ordered partial-result merging — into compile-time checks.
//
// The paper's cross-architecture comparison is only meaningful because
// every platform computes bit-identical task results under a strict
// modeled-time accounting discipline. Those guarantees were previously
// defended only by runtime property tests, which cannot see a bad
// `range` over a map or a stray time.Now until it flakes. The
// analyzers in this package encode the invariants structurally:
//
//   - determinism: inside the designated deterministic packages, flags
//     map iteration, global math/rand, wall-clock reads, raw go
//     statements and sync primitives outside internal/parexec, and
//     multi-case selects.
//   - modeledtime: flags wall-clock calls reachable from functions
//     that charge modeled device time.
//   - noalloc: rejects heap-allocating constructs inside functions
//     marked //atm:noalloc.
//   - orderedmerge: functions marked //atm:ordered-merge must consume
//     per-chunk partials with index-ascending loops and no map
//     intermediaries.
//   - syncfield: struct fields in deterministic packages must not hold
//     sync primitives by value (copies fork their state silently).
//
// The analyzers run under `go vet -vettool` via cmd/atmlint (see that
// package for the driver protocol) and in-process via linttest. The
// framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape so a future migration is mechanical, but it is built on
// the standard library alone.
//
// # Directive grammar
//
// Directives are line comments of the form
//
//	//atm:<kind> [args] [-- justification]
//
// with seven kinds:
//
//	//atm:noalloc                  — the function must not contain
//	                                 heap-allocating constructs, and
//	                                 (checked by noallocflow) every
//	                                 function it transitively calls
//	                                 must be annotated, waived, or a
//	                                 proven alloc-free leaf
//	//atm:ordered-merge            — the function must merge partials
//	                                 in ascending index order
//	//atm:modeled-time             — the function is a modeled-time
//	                                 root for the modeledtimeflow
//	                                 analyzer
//	//atm:inline                   — the compiler must report the
//	                                 function inlinable ("can inline");
//	                                 enforced by the gcdiag gate
//	//atm:noescape                 — the compiler's escape analysis
//	                                 must report no value escaping to
//	                                 the heap inside the function body;
//	                                 enforced by the gcdiag gate
//	//atm:nobce                    — the compiler must eliminate every
//	                                 bounds check in the function body
//	                                 (no "Found IsInBounds"); enforced
//	                                 by the gcdiag gate
//	//atm:allow <rule>[,<rule>...] -- <justification>
//	                               — waives the named determinism,
//	                                 modeledtimeflow, or noallocflow
//	                                 rules; the justification is
//	                                 mandatory. Waivers that suppress
//	                                 zero diagnostics are themselves
//	                                 flagged by the stalewaiver
//	                                 analyzer.
//
// noalloc, ordered-merge, and modeled-time attach to the function
// declaration whose doc comment contains them, or — for inline
// closures — to the func literal that starts on the directive's line
// or the line after it. A directive that attaches to nothing is itself
// a diagnostic. //atm:allow applies to the whole function when it
// appears in a function's doc comment, and to its own and the
// following source line otherwise.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the canonical import path ("package path") of the
	// package under analysis; designated-package gating keys off it.
	PkgPath string
	// Dirs is the package's directive index, built once per package by
	// the driver with BuildDirectives.
	Dirs *Directives

	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// InTestFile reports whether the file containing pos is a _test.go
// file. The determinism and modeledtime analyzers skip test files:
// tests legitimately use goroutines, locks, and the wall clock.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Directive kinds.
const (
	KindNoalloc      = "noalloc"
	KindOrderedMerge = "ordered-merge"
	KindModeledTime  = "modeled-time"
	KindInline       = "inline"
	KindNoescape     = "noescape"
	KindNobce        = "nobce"
	KindAllow        = "allow"
)

// Rule names accepted by //atm:allow.
const (
	RuleMapRange    = "maprange"
	RuleGlobalRand  = "globalrand"
	RuleWallClock   = "wallclock"
	RuleGoStmt      = "gostmt"
	RuleSync        = "sync"
	RuleAtomic      = "atomic"
	RuleMultiSelect = "multiselect"
	RuleSyncField   = "syncfield"
	RuleNoallocFlow = "noallocflow"
)

var knownRules = map[string]bool{
	RuleMapRange:    true,
	RuleGlobalRand:  true,
	RuleWallClock:   true,
	RuleGoStmt:      true,
	RuleSync:        true,
	RuleAtomic:      true,
	RuleMultiSelect: true,
	RuleSyncField:   true,
	RuleNoallocFlow: true,
}

// A Directive is one parsed //atm: comment.
type Directive struct {
	Kind          string
	Rules         []string // for allow: the waived rule names
	Justification string   // text after " -- "
	Pos           token.Pos
}

// Directives indexes a package's //atm: comments: directives attached
// to function declarations and literals, and line-scoped allows.
type Directives struct {
	fset  *token.FileSet
	funcs map[ast.Node][]Directive       // *ast.FuncDecl | *ast.FuncLit
	lines map[string]map[int][]Directive // filename -> line -> allows
	// used records, keyed by directive position, every //atm:allow that
	// actually suppressed a diagnostic. The stalewaiver analyzer reports
	// allows that stay unused after the whole suite has run.
	used map[token.Pos]bool
	// Errors lists malformed or unattached directives; the driver
	// reports them as diagnostics so a typoed contract cannot silently
	// stop being checked.
	Errors []Diagnostic
}

// parseDirective parses one comment's text, returning ok=false when the
// comment is not an //atm: directive at all.
func parseDirective(c *ast.Comment) (Directive, error, bool) {
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	if !strings.HasPrefix(text, "atm:") {
		return Directive{}, nil, false
	}
	body := strings.TrimPrefix(text, "atm:")
	d := Directive{Pos: c.Pos()}
	if head, just, found := strings.Cut(body, "--"); found {
		body = head
		d.Justification = strings.TrimSpace(just)
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return d, fmt.Errorf("atm: directive with no kind"), true
	}
	d.Kind = fields[0]
	args := fields[1:]
	switch d.Kind {
	case KindNoalloc, KindOrderedMerge, KindModeledTime, KindInline, KindNoescape, KindNobce:
		if len(args) > 0 {
			return d, fmt.Errorf("atm:%s takes no arguments (got %q); justification goes after --", d.Kind, args), true
		}
	case KindAllow:
		if len(args) == 0 {
			return d, fmt.Errorf("atm:allow needs at least one rule name"), true
		}
		for _, a := range args {
			for _, r := range strings.Split(a, ",") {
				if r == "" {
					continue
				}
				if !knownRules[r] {
					return d, fmt.Errorf("atm:allow: unknown rule %q (known: maprange, globalrand, wallclock, gostmt, sync, atomic, multiselect, syncfield, noallocflow)", r), true
				}
				d.Rules = append(d.Rules, r)
			}
		}
		if d.Justification == "" {
			return d, fmt.Errorf("atm:allow requires a justification after \" -- \""), true
		}
	default:
		return d, fmt.Errorf("unknown atm: directive kind %q (known: noalloc, ordered-merge, modeled-time, inline, noescape, nobce, allow)", d.Kind), true
	}
	return d, nil, true
}

// BuildDirectives parses and attaches every //atm: directive in files.
func BuildDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:  fset,
		funcs: make(map[ast.Node][]Directive),
		lines: make(map[string]map[int][]Directive),
		used:  make(map[token.Pos]bool),
	}
	for _, f := range files {
		d.buildFile(f)
	}
	return d
}

func (d *Directives) buildFile(f *ast.File) {
	type pending struct {
		dir     Directive
		comment *ast.Comment
	}
	consumed := make(map[*ast.Comment]bool)

	attachDoc := func(n ast.Node, doc *ast.CommentGroup) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			dir, err, ok := parseDirective(c)
			if !ok {
				continue
			}
			consumed[c] = true
			if err != nil {
				d.Errors = append(d.Errors, Diagnostic{Pos: c.Pos(), Message: err.Error()})
				continue
			}
			d.funcs[n] = append(d.funcs[n], dir)
			if dir.Kind == KindAllow {
				d.addLineAllow(dir) // also usable at its own line
			}
		}
	}

	// 1. Directives in function doc comments bind to the declaration.
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			attachDoc(fd, fd.Doc)
		}
	}

	// 2. Remaining directives, indexed by the line their comment ends
	// on, bind to a func literal starting on that line or the next.
	var free []pending
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if consumed[c] {
				continue
			}
			dir, err, ok := parseDirective(c)
			if !ok {
				continue
			}
			if err != nil {
				consumed[c] = true
				d.Errors = append(d.Errors, Diagnostic{Pos: c.Pos(), Message: err.Error()})
				continue
			}
			free = append(free, pending{dir, c})
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		litLine := d.fset.Position(lit.Pos()).Line
		best := -1
		for i, p := range free {
			if consumed[p.comment] || p.dir.Kind == KindAllow {
				continue
			}
			endLine := d.fset.Position(p.comment.End()).Line
			onSameLine := endLine == litLine && p.comment.End() < lit.Pos()
			if onSameLine || endLine == litLine-1 {
				best = i
			}
		}
		if best >= 0 {
			consumed[free[best].comment] = true
			d.funcs[lit] = append(d.funcs[lit], free[best].dir)
		}
		return true
	})

	// 3. Leftovers: allows become line-scoped; anything else is an
	// error — a directive that binds to nothing checks nothing.
	for _, p := range free {
		if consumed[p.comment] {
			continue
		}
		if p.dir.Kind == KindAllow {
			d.addLineAllow(p.dir)
			continue
		}
		d.Errors = append(d.Errors, Diagnostic{
			Pos:     p.comment.Pos(),
			Message: fmt.Sprintf("atm:%s does not attach to any function declaration or literal (it must be in a func's doc comment or on the line before a func literal)", p.dir.Kind),
		})
	}
}

func (d *Directives) addLineAllow(dir Directive) {
	posn := d.fset.Position(dir.Pos)
	m := d.lines[posn.Filename]
	if m == nil {
		m = make(map[int][]Directive)
		d.lines[posn.Filename] = m
	}
	// An allow on its own line covers the next line; one trailing a
	// statement covers that statement's line.
	m[posn.Line] = append(m[posn.Line], dir)
	m[posn.Line+1] = append(m[posn.Line+1], dir)
}

// ForFunc returns the directives attached to a FuncDecl or FuncLit.
func (d *Directives) ForFunc(n ast.Node) []Directive { return d.funcs[n] }

// HasDirective reports whether fn carries a directive of the given kind.
func (d *Directives) HasDirective(fn ast.Node, kind string) bool {
	for _, dir := range d.funcs[fn] {
		if dir.Kind == kind {
			return true
		}
	}
	return false
}

// AnnotatedFuncs returns every FuncDecl/FuncLit carrying the given
// directive kind, in source order.
func (d *Directives) AnnotatedFuncs(kind string) []ast.Node {
	var out []ast.Node
	for n := range d.funcs {
		if d.HasDirective(n, kind) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Allowed reports whether the named rule is waived at pos: by a
// line-scoped //atm:allow on pos's line, or by a function-scoped allow
// on any enclosing function in stack.
func (d *Directives) Allowed(rule string, pos token.Pos, stack []ast.Node) bool {
	posn := d.fset.Position(pos)
	// Prefer a waiver written on the diagnostic's own line over one
	// spilling from the line above: with two consecutive trailing
	// waivers, each must claim (and be credited for) its own line, or
	// the second reads as stale.
	matched := token.NoPos
	for _, dir := range d.lines[posn.Filename][posn.Line] {
		for _, r := range dir.Rules {
			if r != rule {
				continue
			}
			if d.fset.Position(dir.Pos).Line == posn.Line {
				d.used[dir.Pos] = true
				return true
			}
			if matched == token.NoPos {
				matched = dir.Pos
			}
		}
	}
	if matched != token.NoPos {
		d.used[matched] = true
		return true
	}
	for _, fn := range stack {
		for _, dir := range d.funcs[fn] {
			if dir.Kind != KindAllow {
				continue
			}
			for _, r := range dir.Rules {
				if r == rule {
					d.used[dir.Pos] = true
					return true
				}
			}
		}
	}
	return false
}

// UnusedAllows returns, in position order, every //atm:allow directive
// that has not suppressed a single diagnostic since BuildDirectives.
// Meaningful only after every analyzer that consumes waivers has run
// over this index — which is why stalewaiver runs last in the flow
// suite, never per package under go vet.
func (d *Directives) UnusedAllows() []Directive {
	byPos := make(map[token.Pos]Directive)
	for _, dirs := range d.funcs {
		for _, dir := range dirs {
			if dir.Kind == KindAllow && !d.used[dir.Pos] {
				byPos[dir.Pos] = dir
			}
		}
	}
	for _, byLine := range d.lines {
		for _, dirs := range byLine {
			for _, dir := range dirs {
				if dir.Kind == KindAllow && !d.used[dir.Pos] {
					byPos[dir.Pos] = dir
				}
			}
		}
	}
	out := make([]Directive, 0, len(byPos))
	for _, dir := range byPos {
		out = append(out, dir)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// isFuncNode reports whether n introduces a function scope.
func isFuncNode(n ast.Node) bool {
	switch n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		return true
	}
	return false
}

// WalkFuncStack traverses root calling visit with the stack of
// enclosing function nodes (outermost first, not including n itself).
// Returning false from visit prunes the subtree.
func WalkFuncStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var nodes []ast.Node
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			last := nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
			if isFuncNode(last) {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		if !visit(n, stack) {
			return false
		}
		nodes = append(nodes, n)
		if isFuncNode(n) {
			stack = append(stack, n)
		}
		return true
	})
}

// pkgNameOf resolves a selector's qualifier to an imported package
// path, or "" when x is not a package qualifier.
func pkgNameOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
