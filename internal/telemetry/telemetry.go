// Package telemetry is the reproduction's observability layer: a
// fixed-capacity ring buffer of typed events — completed spans,
// counters, gauges and run metadata — stamped in *modeled* time, so a
// run can be traced kernel by kernel without ever reading the host
// clock. The paper's evaluation (Section 6) is entirely about where
// the modeled time goes; this package makes that attribution a
// first-class artifact instead of an end-of-run aggregate.
//
// Three properties are contractual:
//
//   - Deterministic: events are emitted from sequential orchestration
//     code (the scheduler, the platform adapters, post-barrier merge
//     points) with modeled timestamps, so the event stream — byte for
//     byte after export — is identical at any host worker count.
//     Hot parallel loops that must emit from inside a parexec body do
//     so through per-worker Shards, which MergeShards folds back in
//     ascending chunk order (see shard.go).
//   - Zero-allocation: recording an event writes one slot of a
//     preallocated ring. Names are interned once (cold path) to small
//     integer IDs; the hot emitters take IDs and are annotated
//     //atm:noalloc under the repository's static contract.
//   - Non-perturbing: a nil *Recorder is a valid no-op sink, so every
//     instrumentation point guards with a nil check (or calls the
//     nil-safe methods directly) and telemetry-off runs execute the
//     exact same modeled-time code path as telemetry-on runs.
//
// The Recorder is not safe for concurrent use: it belongs to the
// simulation goroutine, like the machines it observes. Live export
// for long runs goes through telemetry/live, which snapshots
// aggregates between periods under its own lock.
package telemetry

import (
	"fmt"
	"time"
)

// Kind classifies one event.
type Kind uint8

const (
	// KindSpan is a completed span: Time is the modeled start, Value
	// the modeled duration in nanoseconds. Spans are recorded on
	// completion (not as begin/end pairs), so a ring overwrite can
	// never orphan half a span.
	KindSpan Kind = iota
	// KindCounter is a monotonic contribution: Value is the delta.
	KindCounter
	// KindGauge is an instantaneous level: Value is the reading.
	KindGauge
	// KindMeta is run metadata: Value is the NameID of the interned
	// string value (see Recorder.Meta).
	KindMeta
)

// String returns the export name of the kind.
func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindMeta:
		return "meta"
	}
	return "unknown"
}

// NameID is an interned event name. IDs are dense indices into the
// recorder's name table, assigned in interning order.
type NameID int32

// Detail selects how fine-grained the instrumentation points record.
type Detail uint8

const (
	// DetailTask records task- and kernel-phase-level events (default).
	DetailTask Detail = iota
	// DetailBlock additionally records per-block work gauges from
	// inside the CUDA launch loop via per-worker shards.
	DetailBlock
)

// Event is one telemetry record. The struct is fixed-size and flat so
// a ring of them is a single allocation.
type Event struct {
	// Time is the modeled timestamp in nanoseconds since run start
	// (span: start time).
	Time time.Duration
	// Value is the kind-specific payload: span duration (ns), counter
	// delta, gauge reading, or the value NameID of a meta event.
	Value int64
	// Name identifies the event stream.
	Name NameID
	// Arg is a small per-event argument: box-pass or kernel ordinal,
	// block/chunk index. Zero when unused.
	Arg int32
	// Period is the schedule period index the event was recorded in.
	Period int32
	// Kind classifies the event.
	Kind Kind
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity: 1<<16 events (2 MiB), roughly two thousand
// periods of default-detail recording.
const DefaultCapacity = 1 << 16

// Recorder buffers events in a fixed-capacity ring, overwriting the
// oldest events when full (Dropped reports how many were lost). It
// also maintains running per-name aggregates that survive overwrites,
// so totals used by tests and the live exporter are exact for the
// whole run.
type Recorder struct {
	detail Detail
	names  []string
	ids    map[string]NameID
	counts []int64 // per NameID: events recorded
	sums   []int64 // per NameID: sum of Value (gauge: last reading)

	buf   []Event
	start int    // index of the oldest buffered event
	n     int    // buffered event count
	total uint64 // events ever recorded

	now    time.Duration
	period int32
}

// NewRecorder returns a recorder with the given ring capacity
// (capacity <= 0 means DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ids: make(map[string]NameID),
		buf: make([]Event, capacity),
	}
}

// SetDetail sets the instrumentation detail level.
func (r *Recorder) SetDetail(d Detail) { r.detail = d }

// Detail returns the detail level; a nil recorder records nothing and
// reports DetailTask.
func (r *Recorder) Detail() Detail {
	if r == nil {
		return DetailTask
	}
	return r.detail
}

// Intern returns the ID for name, assigning one on first use. The
// first call for a name allocates (cold path); steady-state calls are
// a map hit. Hot emitters should pre-intern and pass IDs.
func (r *Recorder) Intern(name string) NameID {
	if id, ok := r.ids[name]; ok {
		return id
	}
	id := NameID(len(r.names))
	r.names = append(r.names, name)
	r.counts = append(r.counts, 0)
	r.sums = append(r.sums, 0)
	r.ids[name] = id
	return id
}

// Name returns the interned name for id, or "" if out of range.
func (r *Recorder) Name(id NameID) string {
	if r == nil || id < 0 || int(id) >= len(r.names) {
		return ""
	}
	return r.names[id]
}

// Names returns the number of interned names.
func (r *Recorder) Names() int { return len(r.names) }

// SetNow sets the modeled clock (nanoseconds since run start).
func (r *Recorder) SetNow(t time.Duration) {
	if r == nil {
		return
	}
	r.now = t
}

// Now returns the modeled clock; zero on a nil recorder.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.now
}

// SetPeriod sets the period index stamped on subsequent events.
func (r *Recorder) SetPeriod(p int32) {
	if r == nil {
		return
	}
	r.period = p
}

// Period returns the current period index.
func (r *Recorder) Period() int32 {
	if r == nil {
		return 0
	}
	return r.period
}

// record writes one event slot, overwriting the oldest when full.
//
//atm:noalloc
//atm:noescape
func (r *Recorder) record(k Kind, id NameID, t time.Duration, v int64, arg int32) {
	r.total++
	r.counts[id]++
	if k == KindGauge {
		r.sums[id] = v
	} else {
		r.sums[id] += v
	}
	i := r.start + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = Event{Time: t, Value: v, Name: id, Arg: arg, Period: r.period, Kind: k}
	if r.n == len(r.buf) {
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
	} else {
		r.n++
	}
}

// Span records a completed span [start, start+dur) in modeled time.
//
//atm:inline
//atm:noalloc
//atm:noescape
func (r *Recorder) Span(id NameID, start, dur time.Duration) {
	if r == nil {
		return
	}
	r.record(KindSpan, id, start, int64(dur), 0)
}

// SpanArg is Span with a per-event argument (kernel ordinal, box
// pass).
//
//atm:inline
//atm:noalloc
//atm:noescape
func (r *Recorder) SpanArg(id NameID, start, dur time.Duration, arg int32) {
	if r == nil {
		return
	}
	r.record(KindSpan, id, start, int64(dur), arg)
}

// Counter records a delta contribution at the current modeled time.
//
//atm:inline
//atm:noalloc
//atm:noescape
func (r *Recorder) Counter(id NameID, v int64) {
	if r == nil {
		return
	}
	r.record(KindCounter, id, r.now, v, 0)
}

// Gauge records an instantaneous reading at the current modeled time.
//
//atm:inline
//atm:noalloc
//atm:noescape
func (r *Recorder) Gauge(id NameID, v int64) {
	if r == nil {
		return
	}
	r.record(KindGauge, id, r.now, v, 0)
}

// Meta records a key/value string pair (run configuration: platform,
// pair source, seed). Cold path: both strings are interned.
func (r *Recorder) Meta(key, value string) {
	if r == nil {
		return
	}
	r.record(KindMeta, r.Intern(key), r.now, int64(r.Intern(value)), 0)
}

// MetaValue returns the string value of a meta event.
func (r *Recorder) MetaValue(ev Event) string {
	if ev.Kind != KindMeta {
		return ""
	}
	return r.Name(NameID(ev.Value))
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Capacity returns the ring capacity.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns the number of events lost to ring overwrites.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(r.n)
}

// Count returns how many events were recorded under id (including
// overwritten ones).
func (r *Recorder) Count(id NameID) int64 {
	if r == nil || id < 0 || int(id) >= len(r.counts) {
		return 0
	}
	return r.counts[id]
}

// Sum returns the running Value aggregate for id: total span duration
// in nanoseconds, counter total, or the last gauge reading. It covers
// every event ever recorded, including overwritten ones.
func (r *Recorder) Sum(id NameID) int64 {
	if r == nil || id < 0 || int(id) >= len(r.sums) {
		return 0
	}
	return r.sums[id]
}

// SumOf is Sum keyed by name; unknown names return 0 without
// interning.
func (r *Recorder) SumOf(name string) int64 {
	if r == nil {
		return 0
	}
	id, ok := r.ids[name]
	if !ok {
		return 0
	}
	return r.sums[id]
}

// CountOf is Count keyed by name; unknown names return 0 without
// interning.
func (r *Recorder) CountOf(name string) int64 {
	if r == nil {
		return 0
	}
	id, ok := r.ids[name]
	if !ok {
		return 0
	}
	return r.counts[id]
}

// Visit calls f for every buffered event, oldest first.
func (r *Recorder) Visit(f func(ev Event)) {
	if r == nil {
		return
	}
	for k := 0; k < r.n; k++ {
		i := r.start + k
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		f(r.buf[i])
	}
}

// Reset clears the ring, the aggregates and the clock but keeps the
// interning table, so pre-interned IDs held by instrumented machines
// stay valid.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.start, r.n, r.total = 0, 0, 0
	r.now, r.period = 0, 0
	for i := range r.counts {
		r.counts[i] = 0
		r.sums[i] = 0
	}
}

// String summarizes the recorder state for logs.
func (r *Recorder) String() string {
	if r == nil {
		return "telemetry: off"
	}
	return fmt.Sprintf("telemetry: %d events buffered (%d recorded, %d dropped), %d names",
		r.n, r.total, r.Dropped(), len(r.names))
}
