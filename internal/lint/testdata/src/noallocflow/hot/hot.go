// Fixture root package for the noallocflow analyzer: //atm:noalloc
// roots here reach callees in repro/fixture/util across the package
// boundary.
package hot

import (
	"strconv"

	"repro/fixture/util"
)

type Machine struct {
	xs  []float64
	src util.Source
}

// Step is a noalloc root: every callee must be annotated, waived, or a
// provable alloc-free leaf.
//
//atm:noalloc
func (m *Machine) Step() float64 {
	if len(m.xs) == 0 {
		m.xs = util.Grow(64) // want "call to repro/fixture/util.Grow"
	}
	util.Scale(m.xs, 1.01)               // clean: provable alloc-free leaf
	return util.Sum(m.xs) + m.src.Next() // want "interface-dispatched call to"
}

// Reset regrows deliberately; the waiver is consumed, so stalewaiver
// stays quiet about it.
//
//atm:noalloc
func (m *Machine) Reset(n int) {
	m.xs = util.Grow(n) //atm:allow noallocflow -- fixture: cold-path regrow outside the hot loop
}

// Label calls an external function that is not on the known alloc-free
// list.
//
//atm:noalloc
func (m *Machine) Label() string {
	return strconv.Itoa(len(m.xs)) // want "outside the module and not on the known alloc-free list"
}
