package core

import (
	"errors"
	"strings"
	"testing"
)

func validParams() RunParams {
	return RunParams{Platform: "titanx", N: 1000, Periods: 16, Workers: 0, PairSource: "grid"}
}

func TestValidateAccepts(t *testing.T) {
	cases := []func(*RunParams){
		func(p *RunParams) {},                      // fully specified
		func(p *RunParams) { p.Platform = "" },     // front end without a platform knob
		func(p *RunParams) { p.PairSource = "" },   // all-pairs
		func(p *RunParams) { p.Workers = 8 },       // pinned pool
		func(p *RunParams) { p.Platform = "avx2" }, // extension machine
		func(p *RunParams) { p.Platform = "xeon16" },
		func(p *RunParams) { p.Scenario = "circle" },
		func(p *RunParams) { p.Scenario = "burst:waves=2,interval=30" },
		func(p *RunParams) { p.Scenario = "uniform" },
	}
	for i, mutate := range cases {
		p := validParams()
		mutate(&p)
		if err := p.Validate(); err != nil {
			t.Errorf("case %d: Validate(%+v) = %v, want nil", i, p, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RunParams)
		want   string
	}{
		{"zero n", func(p *RunParams) { p.N = 0 }, "positive aircraft count"},
		{"negative n", func(p *RunParams) { p.N = -5 }, "positive aircraft count"},
		{"zero periods", func(p *RunParams) { p.Periods = 0 }, "scheduling periods"},
		{"negative periods", func(p *RunParams) { p.Periods = -16 }, "scheduling periods"},
		{"negative workers", func(p *RunParams) { p.Workers = -1 }, "worker count"},
		{"unknown platform", func(p *RunParams) { p.Platform = "cray1" }, `unknown platform "cray1"`},
		{"unknown pair source", func(p *RunParams) { p.PairSource = "octree" }, `unknown pair source "octree"`},
		{"unknown scenario family", func(p *RunParams) { p.Scenario = "warp" }, "bad scenario (-scenario)"},
		{"bad scenario key", func(p *RunParams) { p.Scenario = "circle:waves=3" }, "unknown key"},
		{"bad scenario value", func(p *RunParams) { p.Scenario = "circle:radius=-4" }, "radius must be"},
		{"malformed scenario", func(p *RunParams) { p.Scenario = "circle:radius" }, "want key=value"},
		{"scenario over capacity", func(p *RunParams) { p.Scenario = "streams"; p.N = 30000 }, "lanes"},
	}
	for _, tc := range cases {
		p := validParams()
		tc.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate(%+v) = nil, want error", tc.name, p)
			continue
		}
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: error %v is not a *ValidationError", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateListsKnownNames(t *testing.T) {
	p := validParams()
	p.Platform = "nope"
	err := p.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range []string{"titanx", "staran", "xeon16", "avx2"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("platform error %q should list %q", err, name)
		}
	}
}

func TestKnownPlatform(t *testing.T) {
	for _, name := range []string{"9800gt", "gtx880m", "titanx", "staran", "clearspeed", "xeon16", "xeonphi", "avx2"} {
		if !KnownPlatform(name) {
			t.Errorf("KnownPlatform(%q) = false, want true", name)
		}
	}
	if KnownPlatform("") || KnownPlatform("cray1") {
		t.Error("KnownPlatform accepted an unknown name")
	}
}
