#!/usr/bin/env bash
# benchdiff.sh — guard the hot-path benchmarks against regressions.
#
# Compare mode (default):
#   scripts/benchdiff.sh [baseline-ref]
# runs the hot benchmarks on HEAD's worktree and on baseline-ref
# (default: the merge base with origin/main, falling back to HEAD~1),
# then compares. The build FAILS when any benchmark's time regresses by
# more than 5% or its allocs/op regresses at all. When benchstat is on
# PATH its comparison table is printed as well; the pass/fail decision
# always comes from the embedded comparator so the script works in
# containers where benchstat cannot be installed.
#
# Snapshot mode:
#   scripts/benchdiff.sh snapshot [out.json]
# runs the hot benchmarks on the current tree only and writes a
# machine-readable JSON snapshot (ns/op and allocs/op per benchmark,
# plus the coherent-vs-rebuild and parshard-vs-coherent improvements).
# BENCH_7.json and BENCH_10.json in the repo root are such snapshots.
#
# Tunables: BENCH_PATTERN (regexp of benchmarks to run), BENCH_TIME
# (per-benchmark time, default 1s), BENCH_COUNT (repetitions averaged
# by the comparator, default 3), BENCH_CPU (go test -cpu list, e.g.
# "1,8" to gate both the serial and the fanned-out worker pool; empty
# runs at the machine's GOMAXPROCS only). With several -cpu values the
# comparator averages across them — base and head are measured the
# same way, so the regression gate still compares like with like.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN=${BENCH_PATTERN:-'^(BenchmarkCoherent_|BenchmarkParShard_|BenchmarkReference_Task23$|BenchmarkBroadphase_Sweep_10000$|BenchmarkScenario_Generate_)'}
TIME=${BENCH_TIME:-1s}
COUNT=${BENCH_COUNT:-3}
CPU=${BENCH_CPU:-}
MAX_TIME_REGRESS=${MAX_TIME_REGRESS:-5} # percent

run_bench() { # run_bench <outfile>
    go test -run '^$' -bench "$PATTERN" -benchtime "$TIME" -count "$COUNT" ${CPU:+-cpu "$CPU"} . | tee "$1"
}

# summarize <benchfile> <out.json> — average repetitions per benchmark
# and emit {"benchmarks":[{"name":...,"ns_per_op":...,"allocs_per_op":...}]}.
summarize() {
    awk -v OFS='' '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op")     { ns[name] += $(i-1); seen[name]++ }
                if ($i == "allocs/op") { al[name] += $(i-1) }
            }
        }
        END {
            n = 0
            for (b in seen) names[n++] = b
            # stable order: simple insertion sort by name
            for (i = 1; i < n; i++) {
                key = names[i]
                for (j = i - 1; j >= 0 && names[j] > key; j--) names[j+1] = names[j]
                names[j+1] = key
            }
            printf "{\n  \"benchmarks\": [\n"
            for (i = 0; i < n; i++) {
                b = names[i]
                printf "    {\"name\": \"%s\", \"ns_per_op\": %.1f, \"allocs_per_op\": %.2f}%s\n", \
                    b, ns[b]/seen[b], al[b]/seen[b], (i < n-1 ? "," : "")
            }
            printf "  ]"
            reb = "BenchmarkCoherent_Task23_4000_Rebuild"
            inc = "BenchmarkCoherent_Task23_4000_Incremental"
            if ((reb in seen) && (inc in seen)) {
                r = ns[reb]/seen[reb]; c = ns[inc]/seen[inc]
                printf ",\n  \"coherent_improvement_pct\": %.1f", (r - c) / r * 100
            }
            ps = "BenchmarkParShard_Task23_4000_W8"
            if ((inc in seen) && (ps in seen)) {
                c = ns[inc]/seen[inc]; p = ns[ps]/seen[ps]
                printf ",\n  \"parshard_improvement_pct\": %.1f", (c - p) / c * 100
            }
            printf "\n}\n"
        }' "$1" > "$2"
}

# compare <base.bench> <head.bench> — embedded benchstat fallback: per
# benchmark, average the repetitions and apply the regression gates.
compare() {
    awk -v max_regress="$MAX_TIME_REGRESS" '
        FNR == 1 { file++ }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op") {
                    if (file == 1) { base_ns[name] += $(i-1); base_n[name]++ }
                    else           { head_ns[name] += $(i-1); head_n[name]++ }
                }
                if ($i == "allocs/op") {
                    if (file == 1) base_al[name] += $(i-1)
                    else           head_al[name] += $(i-1)
                }
            }
        }
        END {
            fail = 0
            printf "%-50s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "delta"
            for (b in head_n) {
                if (!(b in base_n)) { printf "%-50s %14s %14.1f %8s\n", b, "(new)", head_ns[b]/head_n[b], "-"; continue }
                bns = base_ns[b] / base_n[b]; hns = head_ns[b] / head_n[b]
                bal = base_al[b] / base_n[b]; hal = head_al[b] / head_n[b]
                delta = (hns - bns) / bns * 100
                flag = ""
                if (delta > max_regress) { flag = "  TIME REGRESSION"; fail = 1 }
                if (hal > bal)           { flag = flag "  ALLOC REGRESSION (" bal " -> " hal " allocs/op)"; fail = 1 }
                printf "%-50s %14.1f %14.1f %+7.1f%%%s\n", b, bns, hns, delta, flag
            }
            if (fail) { print "\nbenchdiff: FAIL (time >" max_regress "% or allocs/op regressed)"; exit 1 }
            print "\nbenchdiff: ok"
        }' "$1" "$2"
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [[ "${1:-}" == "snapshot" ]]; then
    out=${2:-BENCH_10.json}
    run_bench "$tmp/head.bench"
    summarize "$tmp/head.bench" "$out"
    echo "benchdiff: wrote $out"
    exit 0
fi

base_ref=${1:-}
if [[ -z "$base_ref" ]]; then
    base_ref=$(git merge-base HEAD origin/main 2>/dev/null || true)
    [[ -n "$base_ref" && "$base_ref" != "$(git rev-parse HEAD)" ]] || base_ref=HEAD~1
fi
echo "benchdiff: baseline $base_ref, pattern $PATTERN"

run_bench "$tmp/head.bench"

git worktree add --detach "$tmp/base" "$base_ref" >/dev/null
trap 'git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true; rm -rf "$tmp"' EXIT
(cd "$tmp/base" && go test -run '^$' -bench "$PATTERN" -benchtime "$TIME" -count "$COUNT" ${CPU:+-cpu "$CPU"} . > "$tmp/base.bench") \
    || { echo "benchdiff: baseline has no matching benchmarks; nothing to compare"; exit 0; }

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$tmp/base.bench" "$tmp/head.bench" || true
    echo
fi
compare "$tmp/base.bench" "$tmp/head.bench"
