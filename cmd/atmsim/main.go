// Command atmsim runs the ATM simulation on one modeled platform and
// reports per-task timings and the deadline record — the interactive
// face of the reproduction.
//
// Usage:
//
//	atmsim -platform titanx -n 8000 -cycles 4
//	atmsim -platform xeon16 -n 16000 -cycles 2 -v
//	atmsim -platform titanx -telemetry -events run.jsonl -chrome run.trace.json
//	atmsim -platform staran -telemetry -http localhost:6060
//
// Platforms: 9800gt, gtx880m, titanx, staran, clearspeed, xeon16.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/broadphase"
	"repro/internal/core"
	"repro/internal/parexec"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/telemetry/live"
	"repro/internal/viz"
)

func main() {
	var (
		platformName = flag.String("platform", platform.TitanXPascal,
			"platform to simulate ("+strings.Join(append(platform.Names(), platform.ExtensionNames()...), ", ")+")")
		n            = flag.Int("n", 4000, "number of aircraft")
		cycles       = flag.Int("cycles", 2, "number of 8-second major cycles")
		seed         = flag.Uint64("seed", 2018, "random seed (flights, radar noise, MIMD jitter)")
		noise        = flag.Float64("noise", 0, "radar noise amplitude in nm (0 = default 0.25)")
		scenarioSpec = flag.String("scenario", "",
			"scenario family spec, e.g. circle:radius=50,speed=250 (families: "+scenario.FamilyNames()+"; empty = the paper's uniform setup)")
		pairSource = flag.String("pairsource", "",
			"broad-phase pair source for collision detection ("+strings.Join(broadphase.Names(), ", ")+"; empty = all-pairs)")
		coherent = flag.Bool("coherent", false,
			"temporal-coherence mode: keep the broad-phase index across periods and repair it incrementally (needs -pairsource; results are bit-identical, only host time changes)")
		parshard = flag.Bool("parshard", false,
			"sharded broad phase: build the candidate table with a worker-parallel index walk and feed the batched pair kernel from it (needs -pairsource; results are bit-identical, only host time changes)")
		verbose = flag.Bool("v", false, "print per-period detail")
		watch   = flag.Bool("watch", false, "render an ASCII plan view of the airfield after each major cycle")
		record  = flag.String("record", "", "record the run as JSON lines to this file")
		workers = flag.Int("workers", 0,
			"host worker goroutines for task execution (0 = GOMAXPROCS); results are identical at any count")
		useTelemetry = flag.Bool("telemetry", false, "record modeled-time telemetry (implied by -events/-chrome/-metrics/-http)")
		events       = flag.String("events", "", "write telemetry events as JSON lines to this file")
		chrome       = flag.String("chrome", "", "write telemetry as a Chrome trace_event file (load in chrome://tracing or Perfetto)")
		metrics      = flag.String("metrics", "", "write per-period telemetry metrics as CSV to this file")
		httpAddr     = flag.String("http", "", "serve live telemetry and expvar on this address while the run lasts")
		detail       = flag.String("detail", "task", "telemetry detail level: task, block")
		capacity     = flag.Int("telemetry-cap", telemetry.DefaultCapacity, "telemetry ring-buffer capacity in events")
	)
	flag.Parse()
	// Pre-flight validation shared with atmbench and atmserve; bad
	// configurations are usage errors (exit 2), not runtime failures.
	params := core.RunParams{
		Platform:   *platformName,
		N:          *n,
		Periods:    *cycles * sched.PeriodsPerMajorCycle,
		Workers:    *workers,
		PairSource: *pairSource,
		Coherent:   *coherent,
		ParShard:   *parshard,
		Scenario:   *scenarioSpec,
	}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		os.Exit(2)
	}
	parexec.SetDefaultWorkers(*workers)
	tc := telemetryConfig{
		enabled:  *useTelemetry || *events != "" || *chrome != "" || *metrics != "" || *httpAddr != "",
		events:   *events,
		chrome:   *chrome,
		metrics:  *metrics,
		httpAddr: *httpAddr,
		detail:   *detail,
		capacity: *capacity,
	}
	if err := run(*platformName, *n, *cycles, *seed, *noise, *scenarioSpec, *pairSource, *coherent, *parshard, *verbose, *watch, *record, tc); err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		os.Exit(1)
	}
}

// telemetryConfig carries the observability flags.
type telemetryConfig struct {
	enabled                           bool
	events, chrome, metrics, httpAddr string
	detail                            string
	capacity                          int
}

// attach builds the recorder, live publisher and telemetry HTTP server
// when telemetry is on. The caller owns shutting down the returned
// server (see shutdownTelemetryHTTP).
func (tc telemetryConfig) attach(sys *core.System) (*telemetry.Recorder, *live.Publisher, *http.Server, error) {
	if !tc.enabled {
		return nil, nil, nil, nil
	}
	rec := telemetry.NewRecorder(tc.capacity)
	switch tc.detail {
	case "", "task":
		rec.SetDetail(telemetry.DetailTask)
	case "block":
		rec.SetDetail(telemetry.DetailBlock)
	default:
		return nil, nil, nil, fmt.Errorf("unknown telemetry detail %q (have task, block)", tc.detail)
	}
	sys.SetTelemetry(rec)
	var pub *live.Publisher
	var srv *http.Server
	if tc.httpAddr != "" {
		pub = &live.Publisher{}
		srv = &http.Server{Addr: tc.httpAddr, Handler: live.Handler(pub)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "atmsim: telemetry http:", err)
			}
		}()
		fmt.Printf("telemetry: serving live metrics on http://%s/ (expvar at /debug/vars)\n", tc.httpAddr)
	}
	return rec, pub, srv, nil
}

// shutdownTelemetryHTTP closes the -http endpoint gracefully: in-flight
// scrapes finish, then the listener closes, instead of the server being
// torn down mid-response at process exit.
func shutdownTelemetryHTTP(srv *http.Server) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "atmsim: telemetry http shutdown:", err)
	}
}

// flush writes the configured telemetry outputs at the end of the run.
func (tc telemetryConfig) flush(rec *telemetry.Recorder) error {
	if rec == nil {
		return nil
	}
	if dropped := rec.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "atmsim: telemetry ring overflowed, oldest %d of %d events dropped (raise -telemetry-cap); aggregates are complete\n",
			dropped, rec.Total())
	}
	write := func(path string, emit func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("telemetry: wrote %s\n", path)
		return nil
	}
	if err := write(tc.events, func(f *os.File) error { return telemetry.WriteJSONL(f, rec) }); err != nil {
		return err
	}
	if err := write(tc.chrome, func(f *os.File) error { return telemetry.WriteChromeTrace(f, rec) }); err != nil {
		return err
	}
	return write(tc.metrics, func(f *os.File) error { return telemetry.PeriodDataset(rec, "atmsim").WriteCSV(f) })
}

func run(platformName string, n, cycles int, seed uint64, noise float64, scenarioSpec, pairSource string, coherent, parshard, verbose, watch bool, record string, tc telemetryConfig) error {
	// Flag validation already happened in main via core.RunParams.
	p, err := platform.New(platformName, seed)
	if err != nil {
		return err
	}
	sys := core.NewSystem(p, core.Config{N: n, Seed: seed, Noise: noise, Scenario: scenarioSpec, PairSource: pairSource, Incremental: coherent, ParShard: parshard})
	rec, pub, telemetrySrv, err := tc.attach(sys)
	if err != nil {
		return err
	}
	defer shutdownTelemetryHTTP(telemetrySrv)
	// SIGINT/SIGTERM stop the simulation at the next period boundary so
	// telemetry flushes and the -http endpoint shuts down gracefully
	// instead of the process dying mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		rec := replay.NewRecorder(f)
		sys.SetRecorder(rec)
		defer rec.Flush()
	}

	fmt.Printf("platform : %s (deterministic: %v)\n", p.Name(), p.Deterministic())
	if scenarioSpec != "" {
		spec, _ := scenario.ParseSpec(scenarioSpec)
		fmt.Printf("scenario : %s\n", spec.String())
	}
	if pairSource != "" {
		mode := "rebuild per task"
		if coherent {
			mode = "coherent (incremental repair)"
		}
		if parshard {
			mode += ", sharded (parallel table + batched kernel)"
		}
		fmt.Printf("pruning  : broad-phase pair source %q, %s\n", pairSource, mode)
	}
	fmt.Printf("aircraft : %d   major cycles: %d   period: %v\n\n", n, cycles, sched.PeriodDur)

	start := time.Now()
	// pprof labels tag host CPU samples with the modeled platform, so a
	// host profile of the simulator can be cut per platform under study.
	var runErr error
	interrupted := false
	pprof.Do(ctx, pprof.Labels("atm.platform", p.Name(), "atm.n", fmt.Sprint(n)), func(ctx context.Context) {
		for c := 0; c < cycles && !interrupted; c++ {
			for period := 0; period < sched.PeriodsPerMajorCycle; period++ {
				if ctx.Err() != nil {
					interrupted = true
					break
				}
				sys.RunPeriod()
				if pub != nil {
					pub.Update(rec)
				}
				if verbose {
					st := sys.Stats()
					fmt.Printf("  cycle %d period %2d: load so far max=%v misses=%d\n",
						c, period, st.MaxLoad, st.PeriodMisses)
				}
			}
			if watch && !interrupted {
				fmt.Printf("\nafter major cycle %d:\n", c+1)
				if err := viz.Render(os.Stdout, sys.World, viz.Options{}); err != nil {
					runErr = err
					return
				}
			}
		}
	})
	if runErr != nil {
		return runErr
	}
	host := time.Since(start)
	if interrupted {
		fmt.Println("\ninterrupted — reporting the periods completed so far")
	}

	st := sys.Stats()
	t1 := st.Task(core.Task1)
	t23 := st.Task(core.Task23)

	fmt.Printf("Task 1  (every period):  runs=%-4d mean=%-12v max=%-12v misses=%d\n",
		t1.Runs, t1.Mean(), t1.Max, t1.Misses)
	fmt.Printf("Task 2+3 (per cycle):    runs=%-4d mean=%-12v max=%-12v misses=%d skips=%d\n",
		t23.Runs, t23.Mean(), t23.Max, t23.Misses, t23.Skips)
	fmt.Printf("\nperiods=%d  missed periods=%d (%.1f%%)  max period load=%v / %v budget\n",
		st.Periods, st.PeriodMisses, 100*st.MissRate(), st.MaxLoad, sched.PeriodDur)
	fmt.Printf("virtual schedule time=%v  host wall time=%v\n", st.VirtualElapsed, host.Round(time.Millisecond))
	if err := tc.flush(rec); err != nil {
		return err
	}
	if st.PeriodMisses == 0 {
		fmt.Println("\nresult: every deadline met — SIMD-like real-time behaviour")
	} else {
		fmt.Println("\nresult: DEADLINES MISSED — not suitable for hard real-time at this scale")
	}
	return nil
}
