// Command atmreplay inspects a run recorded by atmsim -record: it
// prints the schedule summary and can re-render any stored snapshot as
// the ASCII plan view, so archived runs can be reviewed or diffed
// without re-simulating.
//
// Usage:
//
//	atmreplay -in run.jsonl
//	atmreplay -in run.jsonl -snapshot 16
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/viz"
)

func main() {
	var (
		in       = flag.String("in", "", "recorded run (JSON lines); required")
		snapshot = flag.Int("snapshot", -1, "render the snapshot at this period (-1 = none)")
	)
	flag.Parse()
	if err := run(*in, *snapshot); err != nil {
		fmt.Fprintln(os.Stderr, "atmreplay:", err)
		os.Exit(1)
	}
}

func run(in string, snapshot int) error {
	if in == "" {
		return fmt.Errorf("need -in <recorded run>")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()

	r := replay.NewReader(f)
	var (
		periods, misses, snaps int
		t1Total, t23Total      time.Duration
		t1Max                  time.Duration
		rendered               bool
	)
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		periods++
		if rec.Missed {
			misses++
		}
		t1Total += rec.Task1
		t23Total += rec.Task23
		if rec.Task1 > t1Max {
			t1Max = rec.Task1
		}
		if len(rec.Aircraft) > 0 {
			snaps++
			if rec.Period == snapshot {
				w := replay.Restore(rec.Aircraft)
				fmt.Printf("snapshot at period %d:\n", rec.Period)
				if err := viz.Render(os.Stdout, w, viz.Options{}); err != nil {
					return err
				}
				rendered = true
			}
		}
	}
	if periods == 0 {
		return fmt.Errorf("%s holds no records", in)
	}
	if snapshot >= 0 && !rendered {
		return fmt.Errorf("no snapshot stored at period %d (snapshots: every 16th period by default)", snapshot)
	}

	fmt.Printf("periods      : %d (%.1f major cycles, %v of schedule time)\n",
		periods, float64(periods)/sched.PeriodsPerMajorCycle,
		time.Duration(periods)*sched.PeriodDur)
	fmt.Printf("snapshots    : %d\n", snaps)
	fmt.Printf("Task 1       : mean %v, max %v\n", t1Total/time.Duration(periods), t1Max)
	if t23Total > 0 {
		fmt.Printf("Tasks 2+3    : total %v\n", t23Total)
	}
	fmt.Printf("missed       : %d periods (%.1f%%)\n", misses, 100*float64(misses)/float64(periods))
	return nil
}
