package core

import (
	"bytes"
	"testing"

	"repro/internal/broadphase"
	"repro/internal/platform"
	"repro/internal/replay"
)

// TestCoherentBitIdentical pins the tentpole contract of the
// temporal-coherence mode on every registered platform: a run with the
// incremental sweep broad phase produces byte-identical replay output —
// same worlds, same per-period modeled task times, same deadline record
// — as the same run with the per-task rebuild sweep. Three major cycles
// give the incremental path two Prepare calls that repair a previous
// order (periods 31 and 47) on top of the initial rebuild (period 15).
func TestCoherentBitIdentical(t *testing.T) {
	record := func(name string, incremental bool) []byte {
		p := platform.MustNew(name, 2018)
		p.(platform.Workered).SetWorkers(1)
		sys := NewSystem(p, Config{N: 500, Seed: 2018, PairSource: "sweep", Incremental: incremental})
		var buf bytes.Buffer
		rec := replay.NewRecorder(&buf)
		sys.SetRecorder(rec)
		sys.RunMajorCycles(3)
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, name := range append(platform.Names(), platform.ExtensionNames()...) {
		name := name
		t.Run(name, func(t *testing.T) {
			rebuild := record(name, false)
			coherent := record(name, true)
			if !bytes.Equal(rebuild, coherent) {
				t.Fatalf("%s: coherent run diverged from rebuild run (replay bytes differ, %d vs %d bytes)",
					name, len(rebuild), len(coherent))
			}
		})
	}
}

// TestCoherentMaintainerWired verifies NewSystem actually installs an
// incremental source when asked: the maintainer is discoverable, and a
// run that crosses two Tasks 2-3 invocations records at least one
// in-place update.
func TestCoherentMaintainerWired(t *testing.T) {
	p := platform.MustNew(platform.Xeon16, 7)
	p.(platform.Workered).SetWorkers(1)
	sys := NewSystem(p, Config{N: 300, Seed: 7, PairSource: "sweep", Incremental: true})
	if sys.maintainer == nil {
		t.Fatal("Incremental config produced no broadphase.Maintainer")
	}
	sys.RunMajorCycles(2)
	u := sys.maintainer.TakeUpdateStats()
	if u.Rebuilds < 1 {
		t.Fatalf("first Prepare should rebuild, stats %+v", u)
	}
	if u.Updates < 1 {
		t.Fatalf("second Tasks 2-3 invocation should repair in place, stats %+v", u)
	}
	if got := sys.maintainer.TakeUpdateStats(); got != (broadphase.UpdateStats{}) {
		t.Fatalf("TakeUpdateStats did not drain: %+v", got)
	}
}

// TestCoherentWithoutSourcePanicsAtValidation is covered by
// RunParams.Validate; Config itself tolerates Incremental without a
// source (it simply has nothing to make incremental).
func TestCoherentConfigWithoutSource(t *testing.T) {
	p := platform.MustNew(platform.TitanXPascal, 1)
	sys := NewSystem(p, Config{N: 50, Seed: 1, Incremental: true})
	if sys.maintainer != nil {
		t.Fatal("maintainer present without a pair source")
	}
	sys.RunMajorCycles(1)
}
