package ap

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/radar"
)

// Platform adapts an associative machine profile to the scheduler's
// platform interface.
type Platform struct {
	prof Profile
}

// NewPlatform returns a scheduler-facing platform for the profile.
func NewPlatform(p Profile) *Platform { return &Platform{prof: p} }

// Name returns the machine name.
func (p *Platform) Name() string { return p.prof.Name }

// Deterministic reports that AP timing is a pure function of the
// instruction trace — the synchronous-SIMD property the paper builds
// on.
func (p *Platform) Deterministic() bool { return true }

// Track runs Task 1 as an AP program and returns the modeled time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	m := NewMachine(p.prof, w.N())
	TrackProgram(m, w, f)
	return m.Time()
}

// DetectResolve runs Tasks 2-3 as an AP program and returns the
// modeled time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	m := NewMachine(p.prof, w.N())
	DetectResolveProgram(m, w)
	return m.Time()
}
