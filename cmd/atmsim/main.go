// Command atmsim runs the ATM simulation on one modeled platform and
// reports per-task timings and the deadline record — the interactive
// face of the reproduction.
//
// Usage:
//
//	atmsim -platform titanx -n 8000 -cycles 4
//	atmsim -platform xeon16 -n 16000 -cycles 2 -v
//
// Platforms: 9800gt, gtx880m, titanx, staran, clearspeed, xeon16.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/broadphase"
	"repro/internal/core"
	"repro/internal/parexec"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/viz"
)

func main() {
	var (
		platformName = flag.String("platform", platform.TitanXPascal,
			"platform to simulate ("+strings.Join(append(platform.Names(), platform.ExtensionNames()...), ", ")+")")
		n          = flag.Int("n", 4000, "number of aircraft")
		cycles     = flag.Int("cycles", 2, "number of 8-second major cycles")
		seed       = flag.Uint64("seed", 2018, "random seed (flights, radar noise, MIMD jitter)")
		noise      = flag.Float64("noise", 0, "radar noise amplitude in nm (0 = default 0.25)")
		pairSource = flag.String("pairsource", "",
			"broad-phase pair source for collision detection ("+strings.Join(broadphase.Names(), ", ")+"; empty = all-pairs)")
		verbose = flag.Bool("v", false, "print per-period detail")
		watch   = flag.Bool("watch", false, "render an ASCII plan view of the airfield after each major cycle")
		record  = flag.String("record", "", "record the run as JSON lines to this file")
		workers = flag.Int("workers", 0,
			"host worker goroutines for task execution (0 = GOMAXPROCS); results are identical at any count")
	)
	flag.Parse()
	parexec.SetDefaultWorkers(*workers)
	if err := run(*platformName, *n, *cycles, *seed, *noise, *pairSource, *verbose, *watch, *record); err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		os.Exit(1)
	}
}

func run(platformName string, n, cycles int, seed uint64, noise float64, pairSource string, verbose, watch bool, record string) error {
	if n <= 0 {
		return fmt.Errorf("need a positive aircraft count, got %d", n)
	}
	if cycles <= 0 {
		return fmt.Errorf("need a positive cycle count, got %d", cycles)
	}
	p, err := platform.New(platformName, seed)
	if err != nil {
		return err
	}
	if pairSource != "" {
		if _, err := broadphase.New(pairSource); err != nil {
			return err
		}
	}
	sys := core.NewSystem(p, core.Config{N: n, Seed: seed, Noise: noise, PairSource: pairSource})
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		rec := replay.NewRecorder(f)
		sys.SetRecorder(rec)
		defer rec.Flush()
	}

	fmt.Printf("platform : %s (deterministic: %v)\n", p.Name(), p.Deterministic())
	if pairSource != "" {
		fmt.Printf("pruning  : broad-phase pair source %q\n", pairSource)
	}
	fmt.Printf("aircraft : %d   major cycles: %d   period: %v\n\n", n, cycles, sched.PeriodDur)

	start := time.Now()
	for c := 0; c < cycles; c++ {
		for period := 0; period < sched.PeriodsPerMajorCycle; period++ {
			sys.RunPeriod()
			if verbose {
				st := sys.Stats()
				fmt.Printf("  cycle %d period %2d: load so far max=%v misses=%d\n",
					c, period, st.MaxLoad, st.PeriodMisses)
			}
		}
		if watch {
			fmt.Printf("\nafter major cycle %d:\n", c+1)
			if err := viz.Render(os.Stdout, sys.World, viz.Options{}); err != nil {
				return err
			}
		}
	}
	host := time.Since(start)

	st := sys.Stats()
	t1 := st.Task(core.Task1)
	t23 := st.Task(core.Task23)

	fmt.Printf("Task 1  (every period):  runs=%-4d mean=%-12v max=%-12v misses=%d\n",
		t1.Runs, t1.Mean(), t1.Max, t1.Misses)
	fmt.Printf("Task 2+3 (per cycle):    runs=%-4d mean=%-12v max=%-12v misses=%d skips=%d\n",
		t23.Runs, t23.Mean(), t23.Max, t23.Misses, t23.Skips)
	fmt.Printf("\nperiods=%d  missed periods=%d (%.1f%%)  max period load=%v / %v budget\n",
		st.Periods, st.PeriodMisses, 100*st.MissRate(), st.MaxLoad, sched.PeriodDur)
	fmt.Printf("virtual schedule time=%v  host wall time=%v\n", st.VirtualElapsed, host.Round(time.Millisecond))
	if st.PeriodMisses == 0 {
		fmt.Println("\nresult: every deadline met — SIMD-like real-time behaviour")
	} else {
		fmt.Println("\nresult: DEADLINES MISSED — not suitable for hard real-time at this scale")
	}
	return nil
}
