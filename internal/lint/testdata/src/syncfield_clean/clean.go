// Fixture for the syncfield analyzer analyzed as a non-designated
// package: by-value sync fields are idiomatic Go for structs used only
// by pointer (HTTP handlers, caches), so outside the deterministic
// packages the analyzer reports nothing.
package fixture

import "sync"

type server struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

var _ server
