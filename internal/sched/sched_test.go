package sched

import (
	"testing"
	"time"
)

func TestDefaults(t *testing.T) {
	tr := NewTracker(0)
	if tr.Period != PeriodDur {
		t.Fatalf("default period %v, want %v", tr.Period, PeriodDur)
	}
	if PeriodDur != 500*time.Millisecond || PeriodsPerMajorCycle != 16 {
		t.Fatal("paper constants wrong")
	}
}

func TestNegativePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative period did not panic")
		}
	}()
	NewTracker(-1)
}

func TestTaskWithinBudget(t *testing.T) {
	tr := NewTracker(0)
	tr.BeginPeriod()
	ran := tr.Run("t1", func() time.Duration { return 100 * time.Millisecond })
	tr.EndPeriod()
	if !ran {
		t.Fatal("task within budget did not run")
	}
	st := tr.Stats()
	if st.Periods != 1 || st.PeriodMisses != 0 || st.TotalMisses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	ts := st.Task("t1")
	if ts.Runs != 1 || ts.Misses != 0 || ts.Total != 100*time.Millisecond {
		t.Fatalf("task stats = %+v", ts)
	}
}

func TestDeadlineMiss(t *testing.T) {
	tr := NewTracker(0)
	tr.BeginPeriod()
	tr.Run("t1", func() time.Duration { return 600 * time.Millisecond })
	tr.EndPeriod()
	st := tr.Stats()
	if st.PeriodMisses != 1 || st.TotalMisses != 1 {
		t.Fatalf("miss not recorded: %+v", st)
	}
	if st.Task("t1").Misses != 1 {
		t.Fatal("task miss not recorded")
	}
}

func TestOverrunSkipsRemainingTasks(t *testing.T) {
	// Section 3: a task cannot start if earlier tasks consumed the
	// period; it must be skipped so the next period starts on time.
	tr := NewTracker(0)
	tr.BeginPeriod()
	tr.Run("t1", func() time.Duration { return 700 * time.Millisecond })
	ran := tr.Run("t23", func() time.Duration {
		t.Error("skipped task body executed")
		return 0
	})
	tr.EndPeriod()
	if ran {
		t.Fatal("task ran in an exhausted period")
	}
	st := tr.Stats()
	if st.TotalSkips != 1 || st.Task("t23").Skips != 1 {
		t.Fatalf("skip not recorded: %+v", st)
	}
}

func TestTwoTasksSumToMiss(t *testing.T) {
	// Each task fits alone but together they overrun: the second task
	// takes the miss.
	tr := NewTracker(0)
	tr.BeginPeriod()
	tr.Run("t1", func() time.Duration { return 300 * time.Millisecond })
	tr.Run("t23", func() time.Duration { return 300 * time.Millisecond })
	tr.EndPeriod()
	st := tr.Stats()
	if st.Task("t1").Misses != 0 || st.Task("t23").Misses != 1 {
		t.Fatalf("wrong task charged with the miss: %+v", st.Tasks)
	}
	if st.MaxLoad != 600*time.Millisecond {
		t.Fatalf("MaxLoad = %v", st.MaxLoad)
	}
}

func TestExactDeadlineIsNotMiss(t *testing.T) {
	tr := NewTracker(0)
	tr.BeginPeriod()
	tr.Run("t1", func() time.Duration { return 500 * time.Millisecond })
	tr.EndPeriod()
	if tr.Stats().TotalMisses != 0 {
		t.Fatal("finishing exactly at the deadline must not be a miss")
	}
	// But the budget is now exhausted: a following task is skipped.
	tr.BeginPeriod()
	tr.Run("a", func() time.Duration { return 500 * time.Millisecond })
	if tr.Run("b", func() time.Duration { return 0 }) {
		t.Fatal("task ran with zero remaining budget")
	}
	tr.EndPeriod()
}

func TestVirtualElapsedIncludesWaits(t *testing.T) {
	// Periods never start early: a fast period still advances the clock
	// by a full period.
	tr := NewTracker(0)
	for i := 0; i < 4; i++ {
		tr.BeginPeriod()
		tr.Run("t1", func() time.Duration { return time.Millisecond })
		tr.EndPeriod()
	}
	if got := tr.Stats().VirtualElapsed; got != 2*time.Second {
		t.Fatalf("VirtualElapsed = %v, want 2s", got)
	}
}

func TestVirtualElapsedExtendsOnOverrun(t *testing.T) {
	tr := NewTracker(0)
	tr.BeginPeriod()
	tr.Run("t1", func() time.Duration { return 800 * time.Millisecond })
	tr.EndPeriod()
	if got := tr.Stats().VirtualElapsed; got != 800*time.Millisecond {
		t.Fatalf("VirtualElapsed = %v, want 800ms", got)
	}
}

func TestMeanAndMissRate(t *testing.T) {
	tr := NewTracker(0)
	durations := []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, 600 * time.Millisecond}
	for _, d := range durations {
		tr.BeginPeriod()
		d := d
		tr.Run("t1", func() time.Duration { return d })
		tr.EndPeriod()
	}
	st := tr.Stats()
	ts := st.Task("t1")
	if ts.Mean() != 1000*time.Millisecond/3 {
		t.Fatalf("Mean = %v", ts.Mean())
	}
	if ts.Max != 600*time.Millisecond {
		t.Fatalf("Max = %v", ts.Max)
	}
	if got := st.MissRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("MissRate = %v, want 1/3", got)
	}
}

func TestEmptyStats(t *testing.T) {
	var ts TaskStats
	if ts.Mean() != 0 {
		t.Fatal("Mean of empty task stats")
	}
	var st Stats
	if st.MissRate() != 0 {
		t.Fatal("MissRate of empty stats")
	}
}

func TestProtocolPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("Run outside period", func() {
		NewTracker(0).Run("x", func() time.Duration { return 0 })
	})
	assertPanics("EndPeriod without Begin", func() {
		NewTracker(0).EndPeriod()
	})
	assertPanics("double BeginPeriod", func() {
		tr := NewTracker(0)
		tr.BeginPeriod()
		tr.BeginPeriod()
	})
	assertPanics("negative duration", func() {
		tr := NewTracker(0)
		tr.BeginPeriod()
		tr.Run("x", func() time.Duration { return -1 })
	})
}
