package broadphase_test

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/parexec"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// advancePeriod applies one period's worth of randomized disruption to
// the world: per-period motion with torus wraparound, resolution-style
// velocity rotations on a few aircraft, and (periodically) degenerate
// exactly-stacked positions that force equal sort keys.
func advancePeriod(r *rng.Rand, w *airspace.World, period int) {
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.X += a.DX
		a.Y += a.DY
		if !airspace.InField(a.X, a.Y) {
			airspace.Wrap(a)
		}
	}
	n := w.N()
	if n == 0 {
		return
	}
	for k := 0; k < 1+n/40; k++ {
		a := &w.Aircraft[r.IntN(n)]
		deg := (5 + 5*float64(r.IntN(6))) * r.Sign()
		sin, cos := math.Sincos(deg * math.Pi / 180)
		a.DX, a.DY = a.DX*cos-a.DY*sin, a.DX*sin+a.DY*cos
	}
	if period%7 == 3 && n >= 2 {
		i, j := r.IntN(n), r.IntN(n)
		w.Aircraft[i].X, w.Aircraft[i].Y = w.Aircraft[j].X, w.Aircraft[j].Y
		w.Aircraft[i].Alt = w.Aircraft[j].Alt
	}
}

// TestIncrementalSweepCandidatesIdentical is the bit-identity property
// at the candidate level: through long randomized mutation sequences
// (motion, rotations, wraparounds, stacked positions) the incremental
// sweep must emit exactly the candidate slice the rebuild sweep emits —
// same elements, same order — for every track, every period.
func TestIncrementalSweepCandidatesIdentical(t *testing.T) {
	r := rng.New(0x1c0e)
	for _, n := range []int{0, 1, 2, 17, 120, 300} {
		w := randomWorld(r.Split(), n, 0.3)
		plain := broadphase.NewSweep()
		inc := broadphase.NewIncrementalSweep()
		var bufP, bufI []int32
		for period := 0; period < 48; period++ {
			advancePeriod(r, w, period)
			plain.Prepare(w)
			inc.Prepare(w)
			for i := range w.Aircraft {
				track := &w.Aircraft[i]
				bufP = plain.AppendCandidates(bufP[:0], w, track)
				bufI = inc.AppendCandidates(bufI[:0], w, track)
				if len(bufP) != len(bufI) {
					t.Fatalf("n=%d period=%d track=%d: candidate counts diverge: plain %d, incremental %d",
						n, period, i, len(bufP), len(bufI))
				}
				for k := range bufP {
					if bufP[k] != bufI[k] {
						t.Fatalf("n=%d period=%d track=%d: emission diverges at %d: plain %v, incremental %v",
							n, period, i, k, bufP, bufI)
					}
				}
			}
		}
		if n > 1 {
			st := inc.TakeUpdateStats()
			if st.Updates == 0 {
				t.Errorf("n=%d: incremental sweep never repaired in place (stats %+v)", n, st)
			}
		}
	}
}

// TestIncrementalSweepDetectionAgrees drives full detection/resolution
// through a mutation sequence under brute, grid, rebuild sweep, and
// incremental sweep at workers {1, 3, 8}: every period, every source,
// every worker count must produce the bit-identical world the all-pairs
// serial reference produces.
func TestIncrementalSweepDetectionAgrees(t *testing.T) {
	pools := map[int]*parexec.Pool{1: parexec.NewPool(1), 3: parexec.NewPool(3), 8: parexec.NewPool(8)}
	type lane struct {
		label   string
		src     broadphase.PairSource
		workers int
		w       *airspace.World
	}
	r := rng.New(0xdead)
	base := randomWorld(r.Split(), 180, 0.25)

	ref := base.Clone()
	var lanes []*lane
	for _, workers := range []int{1, 3, 8} {
		lanes = append(lanes,
			&lane{"brute", broadphase.NewBrute(), workers, base.Clone()},
			&lane{"grid", broadphase.NewGrid(), workers, base.Clone()},
			&lane{"sweep", broadphase.NewSweep(), workers, base.Clone()},
			&lane{"incremental-sweep", broadphase.NewIncrementalSweep(), workers, base.Clone()},
		)
	}

	for period := 0; period < 24; period++ {
		// Apply the identical mutation to every lane's world: replaying
		// the generator from the same seed keeps the lanes in lockstep
		// without sharing mutable state.
		advancePeriod(rngReplay(0xfeed, period), ref, period)
		refSt := tasks.DetectResolveExec(ref, nil, pools[1])
		for _, l := range lanes {
			advancePeriod(rngReplay(0xfeed, period), l.w, period)
			st := tasks.DetectResolveExec(l.w, l.src, pools[l.workers])
			label := l.label
			checkStatsEqual(t, label, refSt, st)
			checkWorldsEqual(t, label, ref, l.w)
		}
	}
}

// rngReplay returns the generator advancePeriod would have received on
// the given period when splitting one master stream per period from
// seed: deterministic replay without sharing a mutable Rand across
// lanes.
func rngReplay(seed uint64, period int) *rng.Rand {
	m := rng.New(seed)
	var r *rng.Rand
	for p := 0; p <= period; p++ {
		r = m.Split()
	}
	return r
}

// TestIncrementalSweepFallbackRebuild forces the repair budget to blow:
// scrambling every position each period makes the previous order
// worthless, the insertion pass aborts, and Prepare must fall back to
// the full sort — still producing candidates identical to the rebuild
// sweep, and counting the fallback.
func TestIncrementalSweepFallbackRebuild(t *testing.T) {
	r := rng.New(0xfa11)
	w := randomWorld(r.Split(), 250, 0.3)
	plain := broadphase.NewSweep()
	inc := broadphase.NewIncrementalSweep()
	var bufP, bufI []int32
	for period := 0; period < 6; period++ {
		// Teleport everyone: fresh random positions, no coherence.
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			a.X = r.Range(-airspace.SetupHalf, airspace.SetupHalf) * 0.3
			a.Y = r.Range(-airspace.SetupHalf, airspace.SetupHalf) * 0.3
		}
		plain.Prepare(w)
		inc.Prepare(w)
		if period > 0 && inc.LastPrepareIncremental() {
			t.Errorf("period %d: scrambled world repaired within budget; expected fallback", period)
		}
		for i := range w.Aircraft {
			track := &w.Aircraft[i]
			bufP = plain.AppendCandidates(bufP[:0], w, track)
			bufI = inc.AppendCandidates(bufI[:0], w, track)
			if len(bufP) != len(bufI) {
				t.Fatalf("period %d track %d: counts diverge after fallback", period, i)
			}
			for k := range bufP {
				if bufP[k] != bufI[k] {
					t.Fatalf("period %d track %d: emission diverges after fallback", period, i)
				}
			}
		}
	}
	st := inc.TakeUpdateStats()
	if st.Rebuilds < 5 {
		t.Errorf("expected >=5 fallback rebuilds on scrambled worlds, got stats %+v", st)
	}
	if got := inc.TakeUpdateStats(); got != (broadphase.UpdateStats{}) {
		t.Errorf("TakeUpdateStats did not drain: %+v", got)
	}
}

// TestIncrementalSweepStats pins the steady-state telemetry shape: under
// gentle per-period motion the incremental sweep repairs in place every
// period after the first, and the shift work stays far below the
// fallback budget.
func TestIncrementalSweepStats(t *testing.T) {
	r := rng.New(0x57a7)
	w := randomWorld(r.Split(), 400, 0.5)
	inc := broadphase.NewIncrementalSweep()
	inc.Prepare(w)
	first := inc.TakeUpdateStats()
	if first.Rebuilds != 1 || first.Updates != 0 {
		t.Fatalf("initial Prepare: want exactly one rebuild, got %+v", first)
	}
	const periods = 32
	for period := 0; period < periods; period++ {
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			a.X += a.DX
			a.Y += a.DY
			if !airspace.InField(a.X, a.Y) {
				airspace.Wrap(a)
			}
		}
		inc.Prepare(w)
		if !inc.LastPrepareIncremental() {
			t.Fatalf("period %d: gentle motion fell back to full sort", period)
		}
	}
	st := inc.TakeUpdateStats()
	if st.Updates != periods || st.Rebuilds != 0 {
		t.Fatalf("steady state: want %d updates and no rebuilds, got %+v", periods, st)
	}
	if st.Resorted > st.Moved {
		t.Errorf("stats inconsistent: resorted %d > moved %d", st.Resorted, st.Moved)
	}
}

// TestMaintainerOf pins the unwrap walk: the Maintainer must be found
// through the Counted decorator core installs under telemetry, and must
// be absent for sources without an incremental mode.
func TestMaintainerOf(t *testing.T) {
	inc := broadphase.NewIncrementalSweep()
	if m := broadphase.MaintainerOf(inc); m == nil || !m.Incremental() {
		t.Fatal("MaintainerOf missed the incremental sweep itself")
	}
	wrapped := broadphase.NewCounted(inc)
	if m := broadphase.MaintainerOf(wrapped); m == nil || !m.Incremental() {
		t.Fatal("MaintainerOf failed to unwrap Counted")
	}
	if m := broadphase.MaintainerOf(broadphase.NewSweep()); m == nil || m.Incremental() {
		t.Fatal("rebuild sweep must report Incremental()==false")
	}
	if m := broadphase.MaintainerOf(broadphase.NewCounted(broadphase.NewGrid())); m != nil {
		t.Fatal("grid has no incremental mode; MaintainerOf must return nil")
	}
	if m := broadphase.MaintainerOf(nil); m != nil {
		t.Fatal("MaintainerOf(nil) must be nil")
	}
}

// TestNewWithIncremental pins the options constructor: the sweep gains
// incremental maintenance, other sources accept and ignore the flag.
func TestNewWithIncremental(t *testing.T) {
	for _, name := range broadphase.Names() {
		src, err := broadphase.NewWith(name, broadphase.Options{Incremental: true})
		if err != nil {
			t.Fatalf("NewWith(%q): %v", name, err)
		}
		m := broadphase.MaintainerOf(src)
		if name == broadphase.SweepName {
			if m == nil || !m.Incremental() {
				t.Fatalf("NewWith(%q, Incremental) did not enable incremental mode", name)
			}
		} else if m != nil && m.Incremental() {
			t.Fatalf("NewWith(%q, Incremental) unexpectedly claims incremental maintenance", name)
		}
		plain, err := broadphase.NewWith(name, broadphase.Options{})
		if err != nil || plain == nil {
			t.Fatalf("NewWith(%q, {}): %v", name, err)
		}
		if m := broadphase.MaintainerOf(plain); m != nil && m.Incremental() {
			t.Fatalf("NewWith(%q, {}) enabled incremental mode", name)
		}
	}
	if _, err := broadphase.NewWith("nope", broadphase.Options{Incremental: true}); err == nil {
		t.Fatal("NewWith with unknown name must error")
	}
}
