// Terrain: the terrain-avoidance extension task (the airspace
// deconfliction problem of the paper's related work [11], and part of
// the "all basic ATM tasks" future work of Section 7.2). A synthetic
// mountain range is generated over the airfield; low-flying traffic is
// screened against it on the Titan X model, and violating aircraft are
// climbed to minimum safe altitude.
//
// Run with:
//
//	go run ./examples/terrain
package main

import (
	"fmt"

	"repro/internal/airspace"
	"repro/internal/cuda"
	"repro/internal/rng"
	"repro/internal/terrain"
)

func main() {
	root := rng.New(2018)
	grid := terrain.Generate(4, 40, 14000, root.Split())
	fmt.Printf("terrain    : %dx%d cells, highest peak %.0f ft\n",
		grid.Cols, grid.Rows, grid.MaxElevation())

	// Mixed traffic: half the fleet down low where the mountains are.
	world := airspace.NewWorld(4000, root.Split())
	for i := range world.Aircraft {
		if i%2 == 0 {
			world.Aircraft[i].Alt = 1000 + float64(i%8)*500
		}
	}

	eng := cuda.NewEngine(cuda.TitanXPascal)
	st, ks := terrain.AvoidCUDA(eng, world, grid,
		terrain.DefaultHorizonPeriods, terrain.DefaultClearanceFt)

	fmt.Printf("aircraft   : %d screened, %d track samples\n", world.N(), st.Samples)
	fmt.Printf("violations : %d aircraft below minimum safe altitude\n", st.Violations)
	fmt.Printf("climbs     : %d commanded\n", st.Climbs)
	fmt.Printf("kernel     : %v modeled on %s (%d ops)\n", ks.Time, eng.Name(), ks.TotalOps)

	// Verify: a second screening pass finds nothing.
	again, _ := terrain.AvoidCUDA(eng, world, grid,
		terrain.DefaultHorizonPeriods, terrain.DefaultClearanceFt)
	fmt.Printf("re-screen  : %d violations remain\n", again.Violations)
}
