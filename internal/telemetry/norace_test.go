//go:build !race

package telemetry_test

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
