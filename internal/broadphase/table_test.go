package broadphase_test

import (
	"testing"

	"repro/internal/broadphase"
	"repro/internal/parexec"
	"repro/internal/rng"
)

// TestPairTableMatchesQueries is the table-mode exactness property:
// through long randomized mutation sequences, the sharded sweep's
// table must hold, for every track, exactly the slice AppendCandidates
// emits — same elements, same order — at every worker count, with and
// without the incremental repair, and the tables built by different
// pools must be byte-identical to each other.
func TestPairTableMatchesQueries(t *testing.T) {
	pools := []*parexec.Pool{nil, parexec.NewPool(1), parexec.NewPool(3), parexec.NewPool(8)}
	r := rng.New(0x7ab1e)
	for _, incremental := range []bool{false, true} {
		for _, n := range []int{0, 1, 2, 17, 120, 300, 700} {
			w := randomWorld(r.Split(), n, 0.3)
			ref := broadphase.NewSweep()
			sharded := make([]*broadphase.Sweep, len(pools))
			for i, p := range pools {
				sharded[i] = broadphase.NewShardedSweep(incremental)
				sharded[i].SetPool(p)
			}
			var buf []int32
			for period := 0; period < 24; period++ {
				advancePeriod(r, w, period)
				ref.Prepare(w)
				tables := make([]*broadphase.PairTable, len(pools))
				for i := range sharded {
					sharded[i].Prepare(w)
					tables[i] = sharded[i].PrepareTable()
				}
				for i := range w.Aircraft {
					buf = ref.AppendCandidates(buf[:0], w, &w.Aircraft[i])
					for pi, tab := range tables {
						got := tab.Candidates(i)
						if len(got) != len(buf) {
							t.Fatalf("inc=%v n=%d period=%d pool=%d track %d: table has %d candidates, query %d",
								incremental, n, period, pi, i, len(got), len(buf))
						}
						for k := range got {
							if got[k] != buf[k] {
								t.Fatalf("inc=%v n=%d period=%d pool=%d track %d: table[%d]=%d, query %d",
									incremental, n, period, pi, i, k, got[k], buf[k])
							}
						}
					}
				}
			}
		}
	}
}

// TestPairTableRepeatable: rebuilding the table from the same prepared
// index yields the identical layout (Start and Cand byte-for-byte) —
// the property that makes rotation probes and dirty-replay rescans safe
// to serve from one build.
func TestPairTableRepeatable(t *testing.T) {
	r := rng.New(0x7ab1e2)
	w := randomWorld(r.Split(), 400, 0.3)
	s := broadphase.NewShardedSweep(true)
	s.SetPool(parexec.NewPool(4))
	s.Prepare(w)
	first := s.PrepareTable()
	start := append([]int32(nil), first.Start...)
	cand := append([]int32(nil), first.Cand...)
	for trial := 0; trial < 3; trial++ {
		tab := s.PrepareTable()
		if len(tab.Start) != len(start) || len(tab.Cand) != len(cand) {
			t.Fatalf("trial %d: table shape changed: %d/%d vs %d/%d",
				trial, len(tab.Start), len(tab.Cand), len(start), len(cand))
		}
		for i := range start {
			if tab.Start[i] != start[i] {
				t.Fatalf("trial %d: Start[%d] = %d, want %d", trial, i, tab.Start[i], start[i])
			}
		}
		for i := range cand {
			if tab.Cand[i] != cand[i] {
				t.Fatalf("trial %d: Cand[%d] = %d, want %d", trial, i, tab.Cand[i], cand[i])
			}
		}
	}
}

// TestShardedRepairOrderInvariant: the sharded (run-partitioned)
// incremental repair must produce candidate sets identical to the
// serial incremental sweep's — and identical update statistics at
// every worker count.
func TestShardedRepairOrderInvariant(t *testing.T) {
	r := rng.New(0x5eed5)
	w := randomWorld(r.Split(), 500, 0.3)
	serial := broadphase.NewIncrementalSweep()
	pools := []*parexec.Pool{parexec.NewPool(1), parexec.NewPool(3), parexec.NewPool(8)}
	sharded := make([]*broadphase.Sweep, len(pools))
	for i, p := range pools {
		sharded[i] = broadphase.NewShardedSweep(true)
		sharded[i].SetPool(p)
	}
	var bufS, bufP []int32
	var stats []broadphase.UpdateStats
	for period := 0; period < 40; period++ {
		advancePeriod(r, w, period)
		serial.Prepare(w)
		for i := range sharded {
			sharded[i].Prepare(w)
		}
		for i := range w.Aircraft {
			bufS = serial.AppendCandidates(bufS[:0], w, &w.Aircraft[i])
			for si := range sharded {
				bufP = sharded[si].AppendCandidates(bufP[:0], w, &w.Aircraft[i])
				if len(bufS) != len(bufP) {
					t.Fatalf("period %d pool %d track %d: %d candidates vs serial %d",
						period, si, i, len(bufP), len(bufS))
				}
				for k := range bufS {
					if bufS[k] != bufP[k] {
						t.Fatalf("period %d pool %d track %d: candidate[%d] = %d, serial %d",
							period, si, i, k, bufP[k], bufS[k])
					}
				}
			}
		}
	}
	for i := range sharded {
		stats = append(stats, sharded[i].TakeUpdateStats())
	}
	for i := 1; i < len(stats); i++ {
		if stats[i] != stats[0] {
			t.Fatalf("update stats vary with workers: pool %d %+v vs pool 0 %+v", i, stats[i], stats[0])
		}
	}
}
