// Column-form (SoA) execution of Detect/DetectResolve, used when the
// pair source maintains its index incrementally (the coherent mode).
//
// The control flow in this file mirrors parallel.go statement for
// statement; only the data layout changes. Every value the scan reads —
// positions, velocities, altitudes — comes from an airspace.Columns
// snapshot that FillFrom copied out of the aircraft records at
// invocation start and that is updated in lockstep with every heading
// commit, so each comparison evaluates on exactly the float64 the
// record-walking path would have read and the results are bit-identical
// at every worker count. What the layout buys: the altitude filter
// rejects ~95% of candidates, and in column form that rejection touches
// one dense 8-byte element instead of dragging a whole Aircraft record
// through the cache.
//
// The self-skip compares indices (p == track index) where the record
// path compares IDs; these are equivalent by the ID==index invariant
// (SetupFlight assigns ID = index and no task reassigns it), which the
// sweep source already relies on for its envelope arrays.
package tasks

import (
	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/parexec"
)

// colsMaintainer returns the Maintainer behind src when the coherent
// column scan path applies — an incremental source — and nil otherwise
// (the record path is the benchmark control and stays byte-identical).
func colsMaintainer(src broadphase.PairSource) broadphase.Maintainer {
	if m := broadphase.MaintainerOf(src); m != nil && m.Incremental() {
		return m
	}
	return nil
}

// prepareCols refreshes the scratch columns and builds the pair-source
// index, from the columns when the source supports it.
func prepareCols(w *airspace.World, src broadphase.PairSource, m broadphase.Maintainer, sc *detectScratch) {
	sc.cols.FillFrom(w)
	if cp, ok := m.(broadphase.ColumnsPreparer); ok {
		cp.PrepareColumns(&sc.cols)
	} else {
		src.Prepare(w)
	}
}

// scanColsInto is scanPairInto on columns: fold candidate p into the
// running scan minimum for the track at index ti flying (vx, vy) from
// (tx, ty) at altitude talt.
//
//atm:noalloc
//atm:noescape
func scanColsInto(c *airspace.Columns, ti, p int, tx, ty, vx, vy, talt float64, r *scanResult) {
	if p == ti || !AltOverlapAt(talt, c.Alt[p]) {
		return
	}
	r.checks++
	tmin, tmax, ok := PairConflictAt(tx, ty, vx, vy, c.X[p], c.Y[p], c.DX[p], c.DY[p])
	if !ok || tmin >= tmax {
		return
	}
	if tmin < r.tmin {
		r.tmin = tmin
		r.with = int32(p)
	}
}

// scanColsWith is scanWith on columns. The coherent path always has a
// pair source (incremental mode requires one), so there is no full-scan
// fallback here.
//
//atm:noalloc
//atm:noescape
func scanColsWith(w *airspace.World, c *airspace.Columns, track *airspace.Aircraft, vx, vy float64, src broadphase.PairSource, buf *[]int32) scanResult {
	r := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
	ti := int(track.ID)
	tx, ty, talt := c.X[ti], c.Y[ti], c.Alt[ti]
	cand := src.AppendCandidates((*buf)[:0], w, track)
	*buf = cand
	for _, p := range cand {
		scanColsInto(c, ti, int(p), tx, ty, vx, vy, talt, &r)
	}
	return r
}

// scanColsPar is scanPar on columns: the candidate walk fanned out in
// fixed chunks whose partial minima merge in ascending chunk order,
// preserving the strict-< first-wins tie-break exactly.
//
//atm:ordered-merge
func scanColsPar(w *airspace.World, c *airspace.Columns, track *airspace.Aircraft, vx, vy float64, src broadphase.PairSource, p *parexec.Pool, sc *detectScratch) scanResult {
	cand := src.AppendCandidates(sc.bufs[0].cand[:0], w, track)
	sc.bufs[0].cand = cand
	m := len(cand)
	ti := int(track.ID)
	tx, ty, talt := c.X[ti], c.Y[ti], c.Alt[ti]
	if p.Workers() == 1 || m < 2*innerGrain {
		r := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
		for _, q := range cand {
			scanColsInto(c, ti, int(q), tx, ty, vx, vy, talt, &r)
		}
		return r
	}
	chunks := (m + innerGrain - 1) / innerGrain
	if cap(sc.parts) < chunks {
		sc.parts = make([]scanResult, chunks)
	}
	parts := sc.parts[:chunks]
	//atm:noalloc
	p.Run(m, innerGrain, func(_, lo, hi int) {
		pr := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
		for _, q := range cand[lo:hi] {
			scanColsInto(c, ti, int(q), tx, ty, vx, vy, talt, &pr)
		}
		parts[lo/innerGrain] = pr
	})
	out := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
	for _, pr := range parts {
		out.checks += pr.checks
		if pr.tmin < out.tmin {
			out.tmin = pr.tmin
			out.with = pr.with
		}
	}
	return out
}

// detectCols is DetectExec's coherent path.
//
//atm:ordered-merge
func detectCols(w *airspace.World, src broadphase.PairSource, m broadphase.Maintainer, p *parexec.Pool) DetectStats {
	var st DetectStats
	n := w.N()
	sc := getDetectScratch(n, p.Workers())
	defer putDetectScratch(sc)
	prepareCols(w, src, m, sc)
	c := &sc.cols

	if p.Workers() == 1 {
		buf := &sc.bufs[0].cand
		for i := range w.Aircraft {
			track := &w.Aircraft[i]
			track.ResetConflict()
			r := scanColsWith(w, c, track, track.DX, track.DY, src, buf)
			st.PairChecks += int(r.checks)
			if r.tmin < airspace.CriticalTime {
				st.Conflicts++
				MarkConflict(w, track, r.with, r.tmin)
			}
		}
		return st
	}

	//atm:noalloc
	p.Run(n, scanGrain, func(worker, lo, hi int) {
		buf := &sc.bufs[worker].cand
		for i := lo; i < hi; i++ {
			track := &w.Aircraft[i]
			sc.res[i] = scanColsWith(w, c, track, track.DX, track.DY, src, buf)
		}
	})
	for i := range w.Aircraft {
		track := &w.Aircraft[i]
		track.ResetConflict()
		r := sc.res[i]
		st.PairChecks += int(r.checks)
		if r.tmin < airspace.CriticalTime {
			st.Conflicts++
			MarkConflict(w, track, r.with, r.tmin)
		}
	}
	return st
}

// detectResolveCols is DetectResolveExec's coherent path. Heading
// commits write through to the columns (SetVel) immediately after the
// record, so later tracks' scans — and the dirty-replay rescans — read
// exactly the velocities the record path would.
//
//atm:ordered-merge
func detectResolveCols(w *airspace.World, src broadphase.PairSource, m broadphase.Maintainer, p *parexec.Pool) DetectStats {
	var st DetectStats
	n := w.N()
	sc := getDetectScratch(n, p.Workers())
	defer putDetectScratch(sc)
	prepareCols(w, src, m, sc)
	c := &sc.cols

	if p.Workers() == 1 {
		buf := &sc.bufs[0].cand
		for i := range w.Aircraft {
			resolveOneSerialCols(w, c, &w.Aircraft[i], &st, src, buf)
		}
		return st
	}

	//atm:noalloc
	p.Run(n, scanGrain, func(worker, lo, hi int) {
		buf := &sc.bufs[worker].cand
		for i := lo; i < hi; i++ {
			track := &w.Aircraft[i]
			sc.reach[i] = broadphase.ReachAt(c.DX[i], c.DY[i])
			sc.res[i] = scanColsWith(w, c, track, track.DX, track.DY, src, buf)
		}
	})

	dirty := sc.dirty[:0]
	for i := range w.Aircraft {
		track := &w.Aircraft[i]
		r := sc.res[i]
		if dirtyInteracts(w, sc, track, dirty) {
			r = scanColsPar(w, c, track, track.DX, track.DY, src, p, sc)
		}
		track.ResetConflict()
		st.PairChecks += int(r.checks)
		if !(r.tmin < airspace.CriticalTime) {
			continue
		}
		st.Conflicts++
		MarkConflict(w, track, r.with, r.tmin)

		base := geom.Vec2{X: track.DX, Y: track.DY}
		resolved := false
		for _, deg := range rotationSchedule {
			st.Rotations++
			v := base.Rotate(deg)
			track.BatX, track.BatY = v.X, v.Y
			pr := scanColsPar(w, c, track, v.X, v.Y, src, p, sc)
			st.PairChecks += int(pr.checks)
			if !(pr.tmin < airspace.CriticalTime) {
				track.DX, track.DY = v.X, v.Y
				c.SetVel(i, v.X, v.Y)
				track.ResetConflict()
				st.Resolved++
				resolved = true
				dirty = append(dirty, int32(i))
				break
			}
			MarkConflict(w, track, pr.with, pr.tmin)
		}
		if !resolved {
			st.Unresolved++
		}
	}
	sc.dirty = dirty[:0]
	return st
}

// resolveOneSerialCols is resolveOneSerial on columns.
//
//atm:noalloc
func resolveOneSerialCols(w *airspace.World, c *airspace.Columns, track *airspace.Aircraft, st *DetectStats, src broadphase.PairSource, buf *[]int32) {
	track.ResetConflict()
	r := scanColsWith(w, c, track, track.DX, track.DY, src, buf)
	st.PairChecks += int(r.checks)
	if !(r.tmin < airspace.CriticalTime) {
		return
	}
	st.Conflicts++
	MarkConflict(w, track, r.with, r.tmin)

	base := geom.Vec2{X: track.DX, Y: track.DY}
	for _, deg := range rotationSchedule {
		st.Rotations++
		v := base.Rotate(deg)
		track.BatX, track.BatY = v.X, v.Y
		pr := scanColsWith(w, c, track, v.X, v.Y, src, buf)
		st.PairChecks += int(pr.checks)
		if !(pr.tmin < airspace.CriticalTime) {
			track.DX, track.DY = v.X, v.Y
			c.SetVel(int(track.ID), v.X, v.Y)
			track.ResetConflict()
			st.Resolved++
			return
		}
		MarkConflict(w, track, pr.with, pr.tmin)
	}
	st.Unresolved++
}
