package broadphase

import (
	"math/bits"
	"sort"
	"sync"

	"repro/internal/airspace"
)

// Sweep is sort-based sweep-and-prune on the per-axis reach intervals
// (Marzolla & D'Angelo's sort-based matching, specialized to per-track
// queries). Prepare sorts the aircraft by the low edge of their x-axis
// envelope; a query binary-searches the run of aircraft whose x
// interval can overlap the track's and filters that run by the actual
// x and y interval tests. The window [lo − maxWidth, hi] is sound
// because no stored interval is wider than maxWidth: anything starting
// earlier has necessarily ended before the query interval begins.
type Sweep struct {
	n int
	// order holds aircraft indices sorted by ascending envelope low-x;
	// sortedLo mirrors the low-x values in the same order for binary
	// search.
	order    []int32
	sortedLo []float64
	// Envelope edges indexed by aircraft index.
	lox, hix, loy, hiy []float64
	// maxW is the widest x envelope in the world.
	maxW float64

	// sorter is the reusable sort.Interface over order/lox: sort.Slice
	// allocates its closure pair on every call, which made Prepare the
	// only allocation left in a steady-state detection period.
	sorter sweepOrder

	scratch sync.Pool // *sweepScratch, for concurrent queries
}

// sweepOrder sorts aircraft indices by ascending envelope low-x.
type sweepOrder struct {
	order []int32
	lox   []float64
}

func (o *sweepOrder) Len() int           { return len(o.order) }
func (o *sweepOrder) Less(a, b int) bool { return o.lox[o.order[a]] < o.lox[o.order[b]] }
func (o *sweepOrder) Swap(a, b int)      { o.order[a], o.order[b] = o.order[b], o.order[a] }

// sweepScratch accumulates one query's candidates as a bitmap, exactly
// as gridScratch does: the sweep window yields hits in low-x order, and
// the trailing-zeros walk re-emits them in the ascending index order
// the scan's tie-break requires without a per-query comparison sort.
type sweepScratch struct {
	words []uint64
}

// NewSweep returns a sweep-and-prune source.
func NewSweep() *Sweep { return &Sweep{} }

// Name returns "sweep".
func (s *Sweep) Name() string { return SweepName }

// Prepare computes every aircraft's reach envelope and sorts the x
// intervals.
func (s *Sweep) Prepare(w *airspace.World) {
	n := w.N()
	s.n = n
	if cap(s.order) < n {
		s.order = make([]int32, n)
		s.sortedLo = make([]float64, n)
		s.lox = make([]float64, n)
		s.hix = make([]float64, n)
		s.loy = make([]float64, n)
		s.hiy = make([]float64, n)
	}
	s.order = s.order[:n]
	s.sortedLo = s.sortedLo[:n]
	s.lox, s.hix = s.lox[:n], s.hix[:n]
	s.loy, s.hiy = s.loy[:n], s.hiy[:n]

	s.maxW = 0
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		r := Reach(a)
		s.lox[i], s.hix[i] = a.X-r, a.X+r
		s.loy[i], s.hiy[i] = a.Y-r, a.Y+r
		if 2*r > s.maxW {
			s.maxW = 2 * r
		}
		s.order[i] = int32(i)
	}
	s.sorter.order, s.sorter.lox = s.order, s.lox
	sort.Sort(&s.sorter)
	for k, id := range s.order {
		s.sortedLo[k] = s.lox[id]
	}
}

// Candidates returns the aircraft whose envelopes overlap the track's
// on both axes, ascending. Safe for concurrent use after Prepare.
func (s *Sweep) Candidates(w *airspace.World, track *airspace.Aircraft) []int32 {
	return s.AppendCandidates(nil, w, track)
}

// getScratch returns a pooled bitmap sized for nw words; growth is the
// cold path kept outside AppendCandidates' noalloc contract.
func (s *Sweep) getScratch(nw int) *sweepScratch {
	sc, _ := s.scratch.Get().(*sweepScratch)
	if sc == nil {
		sc = &sweepScratch{}
	}
	if len(sc.words) < nw {
		sc.words = make([]uint64, nw)
	}
	return sc
}

// AppendCandidates is Candidates emitting into the caller's buffer: the
// bitmap walk appends straight to dst, so a reused buffer makes the
// query allocation-free. Safe for concurrent use after Prepare.
//
//atm:noalloc
func (s *Sweep) AppendCandidates(dst []int32, w *airspace.World, track *airspace.Aircraft) []int32 {
	if s.n == 0 {
		return dst
	}
	i := int(track.ID)
	qloX, qhiX := s.lox[i], s.hix[i]
	qloY, qhiY := s.loy[i], s.hiy[i]

	nw := (s.n + 63) / 64
	sc := s.getScratch(nw)
	words := sc.words
	start := sort.SearchFloat64s(s.sortedLo, qloX-s.maxW)
	for k := start; k < s.n && s.sortedLo[k] <= qhiX; k++ {
		j := s.order[k]
		if s.hix[j] < qloX {
			continue
		}
		if s.loy[j] > qhiY || s.hiy[j] < qloY {
			continue
		}
		words[j>>6] |= 1 << (uint(j) & 63)
	}
	for wi := 0; wi < nw; wi++ {
		word := words[wi]
		if word == 0 {
			continue
		}
		words[wi] = 0
		base := int32(wi) << 6
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	s.scratch.Put(sc)
	return dst
}
