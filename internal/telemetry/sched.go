package telemetry

import "time"

// Event names emitted by the SchedObserver (and reused by core for
// broad-phase counters). Task spans are emitted under the task's own
// schedule name (core.Task1 / core.Task23), so Recorder.Sum of a task
// name is its total modeled time — by construction equal to the
// sched.Stats total for that task.
const (
	// NameSchedMiss counts tasks that finished past the deadline.
	NameSchedMiss = "sched.miss"
	// NameSchedSkip counts tasks skipped because the period was
	// already exhausted when they were released.
	NameSchedSkip = "sched.skip"
	// NameSchedPeriodLoad gauges each period's used time (ns).
	NameSchedPeriodLoad = "sched.period.load"
	// NameSchedPeriodMiss counts periods with at least one miss.
	NameSchedPeriodMiss = "sched.period.miss"
)

// SchedObserver adapts a Recorder to the scheduler's Observer
// interface (structurally — neither package imports the other): it
// drives the recorder's modeled clock and period from the virtual
// schedule and records one completed span per task run, plus
// miss/skip counters and a per-period load gauge.
type SchedObserver struct {
	R *Recorder
}

// PeriodStarted stamps the period index and rebases the modeled clock
// at the period's virtual start time.
func (o *SchedObserver) PeriodStarted(index int, start time.Duration) {
	o.R.SetPeriod(int32(index))
	o.R.SetNow(start)
}

// TaskStarted advances the modeled clock to the task's virtual start,
// so platform-level sub-spans emitted during the task nest under it.
func (o *SchedObserver) TaskStarted(name string, start time.Duration) {
	o.R.SetNow(start)
}

// TaskRan records the task's span and advances the modeled clock past
// it; a deadline miss also bumps the miss counter.
func (o *SchedObserver) TaskRan(name string, start, dur time.Duration, missed bool) {
	o.R.Span(o.R.Intern(name), start, dur)
	o.R.SetNow(start + dur)
	if missed {
		o.R.Counter(o.R.Intern(NameSchedMiss), 1)
	}
}

// TaskSkipped counts a task that never ran because its period was
// already exhausted.
func (o *SchedObserver) TaskSkipped(name string, at time.Duration) {
	o.R.SetNow(at)
	o.R.Counter(o.R.Intern(NameSchedSkip), 1)
}

// PeriodEnded gauges the period's load and counts missed periods.
func (o *SchedObserver) PeriodEnded(index int, used time.Duration, missed bool) {
	o.R.Gauge(o.R.Intern(NameSchedPeriodLoad), int64(used))
	if missed {
		o.R.Counter(o.R.Intern(NameSchedPeriodMiss), 1)
	}
}
