// Fixture for the call-graph builder: one construct per edge kind the
// graph approximates. TestCallGraphDOT asserts the exact edge set via
// WriteDOT, so every declaration here maps to known golden lines.
package cg

// Ticker is dispatched through an interface: the call in Run must fan
// out to both method-set implementations.
type Ticker interface{ Tick() }

type A struct{ n int }

func (a *A) Tick() { a.n++ }

type B struct{}

func (B) Tick() {}

// Run dispatches through the interface: iface edges to (*A).Tick and
// (B).Tick.
func Run(t Ticker) { t.Tick() }

// Map is generic; calls edge to this origin declaration, covering all
// instantiations. The call through f is dynamic.
func Map[T any](xs []T, f func(T) T) {
	for i := range xs {
		xs[i] = f(xs[i])
	}
}

func double(x int) int { return 2 * x }

// UseGenerics instantiates Map: a call edge to the generic origin plus
// a funcval edge for double passed as a value.
func UseGenerics(xs []int) {
	Map(xs, double)
}

// Handler captures behaviour in a struct field; invoking it later is a
// dynamic call.
type Handler struct {
	fn func()
}

// makeHandler takes a method value: funcval edge to (*A).Tick.
func makeHandler(a *A) Handler {
	return Handler{fn: a.Tick}
}

// closureField stores a closure in a struct field: a closure edge to
// the literal, whose own body holds the call edge.
func closureField(a *A) Handler {
	h := Handler{fn: func() { a.Tick() }}
	return h
}

// invoke calls through the func-typed field: no edge, but the node is
// marked Dynamic so leaf proving refuses to vouch for it.
func invoke(h Handler) { h.fn() }
