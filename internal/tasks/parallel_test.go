package tasks

import (
	"testing"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/parexec"
	"repro/internal/radar"
	"repro/internal/rng"
)

// incrementalSweepName selects the coherent-mode sweep in test tables;
// it is not a registry name (the registry exposes the mode through
// NewWith options, not a separate source).
const incrementalSweepName = "incremental-sweep"

// shardedSweepName and shardedIncrementalSweepName select the
// worker-parallel table broad phase (rebuild and coherent flavors) in
// test tables; like incrementalSweepName they are not registry names.
const (
	shardedSweepName            = "sharded-sweep"
	shardedIncrementalSweepName = "sharded-incremental-sweep"
)

// newTestSource builds a fresh pair source for a registry name, or nil
// for the all-pairs scan.
func newTestSource(name string) broadphase.PairSource {
	switch name {
	case "":
		return nil
	case incrementalSweepName:
		return broadphase.NewIncrementalSweep()
	case shardedSweepName:
		return broadphase.NewShardedSweep(false)
	case shardedIncrementalSweepName:
		return broadphase.NewShardedSweep(true)
	}
	return broadphase.MustNew(name)
}

func worldsEqual(t *testing.T, label string, want, got *airspace.World) {
	t.Helper()
	if len(want.Aircraft) != len(got.Aircraft) {
		t.Fatalf("%s: world sizes differ: %d vs %d", label, len(want.Aircraft), len(got.Aircraft))
	}
	for i := range want.Aircraft {
		if want.Aircraft[i] != got.Aircraft[i] {
			t.Fatalf("%s: aircraft %d diverged:\nserial:   %+v\nparallel: %+v",
				label, i, want.Aircraft[i], got.Aircraft[i])
		}
	}
}

func framesEqual(t *testing.T, label string, want, got *radar.Frame) {
	t.Helper()
	for i := range want.Reports {
		if want.Reports[i] != got.Reports[i] {
			t.Fatalf("%s: report %d diverged:\nserial:   %+v\nparallel: %+v",
				label, i, want.Reports[i], got.Reports[i])
		}
	}
}

// TestParallelMatchesSerial is the determinism property test: across
// 100 randomized worlds, every pair source, and worker counts
// {1, 2, 3, 8}, the host-parallel Correlate/Detect/DetectResolve
// produce world state, frame state, and stats identical to the serial
// reference. Worker count 1 is the reference itself; the others
// exercise the phased parallel paths.
func TestParallelMatchesSerial(t *testing.T) {
	sources := []string{"", broadphase.BruteName, broadphase.GridName, broadphase.SweepName,
		incrementalSweepName, shardedSweepName, shardedIncrementalSweepName}
	serial := parexec.NewPool(1)
	pools := []*parexec.Pool{parexec.NewPool(2), parexec.NewPool(3), parexec.NewPool(8)}

	for trial := 0; trial < 100; trial++ {
		seed := uint64(1000 + 7*trial)
		n := 40 + (trial*37)%360
		passes := 1 + trial%BoxPasses
		srcName := sources[trial%len(sources)]

		base := airspace.NewWorld(n, rng.New(seed))
		frame := radar.Generate(base, radar.DefaultNoise, rng.New(seed+1))

		// Serial reference chain: Task 1, then Task 2 on a fork, then
		// Tasks 2+3 on the correlated world. corrW snapshots the
		// post-Task-1 state before DetectResolve mutates refW further.
		refW := base.Clone()
		refF := frame.Clone()
		corrRef := CorrelateNExec(refW, refF, passes, serial)
		corrW := refW.Clone()
		refDetW := refW.Clone()
		detRef := DetectExec(refDetW, newTestSource(srcName), serial)
		resRef := DetectResolveExec(refW, newTestSource(srcName), serial)

		for _, p := range pools {
			gotW := base.Clone()
			gotF := frame.Clone()
			corr := CorrelateNExec(gotW, gotF, passes, p)
			tag := func(task string) string {
				return task + " (trial " + itoa(trial) + ", n " + itoa(n) + ", src " + srcName +
					", passes " + itoa(passes) + ", workers " + itoa(p.Workers()) + ")"
			}
			if corr != corrRef {
				t.Fatalf("%s: stats diverged:\nserial:   %+v\nparallel: %+v", tag("Correlate"), corrRef, corr)
			}
			worldsEqual(t, tag("Correlate"), corrW, gotW)
			framesEqual(t, tag("Correlate"), refF, gotF)

			gotDetW := gotW.Clone()
			det := DetectExec(gotDetW, newTestSource(srcName), p)
			if det != detRef {
				t.Fatalf("%s: stats diverged:\nserial:   %+v\nparallel: %+v", tag("Detect"), detRef, det)
			}
			worldsEqual(t, tag("Detect"), refDetW, gotDetW)

			res := DetectResolveExec(gotW, newTestSource(srcName), p)
			if res != resRef {
				t.Fatalf("%s: stats diverged:\nserial:   %+v\nparallel: %+v", tag("DetectResolve"), resRef, res)
			}
			worldsEqual(t, tag("DetectResolve"), refW, gotW)
		}
	}
}

// TestParallelMatchesSerialDense drives the paths the randomized sweep
// cannot reach at small n: worlds big enough that rotation probes take
// the chunked inner scan (n >= 2*innerGrain), and radar noise heavy
// enough that aircraft withdrawals release mid-pass radars into the
// serial fallback.
func TestParallelMatchesSerialDense(t *testing.T) {
	serial := parexec.NewPool(1)
	pools := []*parexec.Pool{parexec.NewPool(2), parexec.NewPool(8)}

	// Big world: conflicted aircraft probe rotations over 4000 aircraft,
	// well past the chunking threshold.
	big := airspace.NewWorld(4000, rng.New(99))
	refBig := big.Clone()
	resRef := DetectResolveExec(refBig, nil, serial)
	if resRef.Conflicts == 0 {
		t.Fatal("dense world produced no conflicts; test exercises nothing")
	}
	for _, p := range pools {
		gotBig := big.Clone()
		res := DetectResolveExec(gotBig, nil, p)
		if res != resRef {
			t.Fatalf("workers=%d: stats diverged:\nserial:   %+v\nparallel: %+v", p.Workers(), resRef, res)
		}
		worldsEqual(t, "DetectResolve dense (workers "+itoa(p.Workers())+")", refBig, gotBig)
	}

	// Noisy correlation: fixes land in several aircraft's boxes, forcing
	// withdrawals, discards, and mid-pass radar releases.
	noisy := airspace.NewWorld(1500, rng.New(17))
	frame := radar.Generate(noisy, 2.5, rng.New(18))
	refW := noisy.Clone()
	refF := frame.Clone()
	corrRef := CorrelateExec(refW, refF, serial)
	if corrRef.WithdrawnAircraft == 0 || corrRef.DiscardedRadars == 0 {
		t.Fatalf("noisy frame produced no contention (stats %+v); test exercises nothing", corrRef)
	}
	for _, p := range pools {
		gotW := noisy.Clone()
		gotF := frame.Clone()
		corr := CorrelateExec(gotW, gotF, p)
		if corr != corrRef {
			t.Fatalf("workers=%d: stats diverged:\nserial:   %+v\nparallel: %+v", p.Workers(), corrRef, corr)
		}
		worldsEqual(t, "Correlate noisy (workers "+itoa(p.Workers())+")", refW, gotW)
		framesEqual(t, "Correlate noisy (workers "+itoa(p.Workers())+")", refF, gotF)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestExecZeroAllocSteadyState pins the zero-allocation property of
// the hot paths: after a warm-up call, a full Correlate+DetectResolve
// period allocates nothing on the serial path and at most a handful of
// fixed-size dispatch closures on the parallel path — never anything
// proportional to the aircraft count.
//
// The functions under this contract are exactly those listed in
// noallocContract (noalloc_manifest_test.go), which also carry
// //atm:noalloc directives enforced statically by make lint. Under
// -race the runtime counts are meaningless (detector instrumentation
// allocates) and this test skips; the manifest consistency test and
// the static analyzer keep the contract checked there.
func TestExecZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race; " +
			"the noalloc contract stays enforced by TestNoallocManifestMatchesDirectives and make lint")
	}
	base := airspace.NewWorld(600, rng.New(3))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(4))
	for _, workers := range []int{1, 4} {
		p := parexec.NewPool(workers)
		// The parallel path allocates one closure per Run dispatch
		// (phase bodies capture per-invocation state); that is a small
		// constant per period, independent of n.
		limit := 0.5
		if workers > 1 {
			limit = 12
		}
		for _, srcName := range []string{"", broadphase.GridName, broadphase.SweepName,
			incrementalSweepName, shardedSweepName, shardedIncrementalSweepName} {
			src := newTestSource(srcName)
			w := base.Clone()
			f := frame.Clone()
			run := func() {
				CorrelateExec(w, f, p)
				DetectResolveExec(w, src, p)
			}
			run() // warm scratch pools and the worker pool
			avg := testing.AllocsPerRun(10, run)
			if avg > limit {
				t.Errorf("workers=%d src=%q: %.1f allocs per period, want <= %.1f", workers, srcName, avg, limit)
			}
		}
	}
}
