// Package gcdiag is the compiler-diagnostics gate: it enforces the
// //atm:inline, //atm:noescape, and //atm:nobce directives against the
// gc compiler's own analysis output.
//
// The AST-level analyzers in internal/lint can prove a hot path free
// of *constructs* that allocate, but only the compiler knows whether a
// value actually escapes to the heap, whether a call was inlined, and
// whether a bounds check survived BCE. The gate closes that loop:
//
//	go build -gcflags='-m -m -d=ssa/check_bce/debug=1' ./... 2> diag.txt
//	atmlint gcdiag -diag diag.txt
//
// (scripts/gcdiag.sh wires the two together; cmd/go replays cached
// compiler diagnostics, so repeat runs are cheap.)
//
// Enforcement per directive, matched by source position:
//
//   - //atm:inline — the compiler must report "can inline F" at the
//     function's declaration line. A "cannot inline" verdict fails the
//     gate with the compiler's reason (cost over budget, unhandled
//     op); no verdict at all fails too, which catches a build that ran
//     without -m.
//   - //atm:noescape — no "escapes to heap" or "moved to heap"
//     diagnostic may fall inside the function's line range. Parameter
//     escapes land on the declaration line and are covered.
//   - //atm:nobce — no "Found IsInBounds" / "Found IsSliceInBounds"
//     may fall inside the function's line range.
//
// The output is toolchain-sensitive by design — that is the point of
// the gate — so CI pins the Go version for the gcdiag job; see
// DESIGN.md §12 for the version-bump procedure.
package gcdiag

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// A Directive is one gcdiag annotation bound to a function declaration.
type Directive struct {
	Kind string // lint.KindInline | KindNoescape | KindNobce
	Func string // function name for messages
	File string // slash-separated path as collected
	// DeclLine is the line of the func keyword; the compiler anchors
	// its "can inline" / "cannot inline" verdicts there.
	DeclLine int
	// StartLine..EndLine span the declaration through the closing
	// brace; escape and bounds-check diagnostics are matched inside it.
	StartLine, EndLine int
}

// Collect walks the given roots for non-test .go files (skipping
// testdata and hidden directories) and returns every gcdiag directive,
// sorted by (file, decl line). Directives attached to func literals
// are rejected: the compiler names literals positionally, so the gate
// anchors only to declarations.
func Collect(roots []string) ([]Directive, error) {
	fset := token.NewFileSet()
	var out []Directive
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			ds, err := collectFile(fset, path)
			if err != nil {
				return err
			}
			out = append(out, ds...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].DeclLine < out[j].DeclLine
	})
	return out, nil
}

var gateKinds = []string{lint.KindInline, lint.KindNoescape, lint.KindNobce}

func collectFile(fset *token.FileSet, path string) ([]Directive, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	dirs := lint.BuildDirectives(fset, []*ast.File{f})
	var out []Directive
	for _, kind := range gateKinds {
		for _, fn := range dirs.AnnotatedFuncs(kind) {
			fd, ok := fn.(*ast.FuncDecl)
			if !ok {
				return nil, fmt.Errorf("%s: atm:%s must be attached to a function declaration, not a literal (the compiler names literals positionally)", fset.Position(fn.Pos()), kind)
			}
			if fd.Body == nil {
				return nil, fmt.Errorf("%s: atm:%s on a bodyless declaration", fset.Position(fn.Pos()), kind)
			}
			out = append(out, Directive{
				Kind:      kind,
				Func:      fd.Name.Name,
				File:      filepath.ToSlash(path),
				DeclLine:  fset.Position(fd.Pos()).Line,
				StartLine: fset.Position(fd.Pos()).Line,
				EndLine:   fset.Position(fd.Body.Rbrace).Line,
			})
		}
	}
	return out, nil
}

// DiagKind classifies one compiler diagnostic line.
type DiagKind int

const (
	// CanInline is "can inline F ..." at a declaration.
	CanInline DiagKind = iota
	// CannotInline is "cannot inline F: reason".
	CannotInline
	// Escape is "... escapes to heap" or "moved to heap: x".
	Escape
	// BoundsCheck is "Found IsInBounds" / "Found IsSliceInBounds".
	BoundsCheck
)

// A Diag is one parsed compiler diagnostic.
type Diag struct {
	File string // slash-separated, as the compiler printed it
	Line int
	Col  int
	Kind DiagKind
	Text string
}

// ParseDiagnostics scans `go build -gcflags='-m -m
// -d=ssa/check_bce/debug=1'` stderr and keeps the four diagnostic
// shapes the gate enforces; everything else (inlining call sites,
// leaking params, "does not escape", flow explanations) is dropped.
func ParseDiagnostics(r io.Reader) ([]Diag, error) {
	var out []Diag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		file, ln, col, msg, ok := splitPosLine(line)
		if !ok {
			continue
		}
		var kind DiagKind
		switch {
		case strings.HasPrefix(msg, "can inline "):
			kind = CanInline
		case strings.HasPrefix(msg, "cannot inline "):
			kind = CannotInline
		case strings.HasPrefix(msg, "moved to heap:") || strings.Contains(msg, "escapes to heap"):
			kind = Escape
		case strings.HasPrefix(msg, "Found IsInBounds") || strings.HasPrefix(msg, "Found IsSliceInBounds"):
			kind = BoundsCheck
		default:
			continue
		}
		out = append(out, Diag{File: filepath.ToSlash(file), Line: ln, Col: col, Kind: kind, Text: msg})
	}
	return out, sc.Err()
}

// splitPosLine splits "file.go:12:34: message". Indented flow
// explanations and bare notes have no position prefix and are skipped.
func splitPosLine(line string) (file string, ln, col int, msg string, ok bool) {
	if line == "" || line[0] == ' ' || line[0] == '\t' || line[0] == '#' {
		return "", 0, 0, "", false
	}
	rest := line
	i := strings.Index(rest, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = rest[:i+3]
	rest = rest[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 3 {
		return "", 0, 0, "", false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return file, ln, col, strings.TrimSpace(parts[2]), true
}

// A Violation is one directive the compiler output contradicts.
type Violation struct {
	Directive Directive
	// Message explains the failure, quoting the compiler where it has
	// an opinion.
	Message string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s:%d: atm:%s %s: %s", v.Directive.File, v.Directive.DeclLine, v.Directive.Kind, v.Directive.Func, v.Message)
}

// Check matches directives against compiler diagnostics and returns
// the violations sorted by (file, decl line, kind).
func Check(directives []Directive, diags []Diag) []Violation {
	// Index diagnostics by compiler-printed file path; directive files
	// are matched by path-suffix so the collection root and the build's
	// working directory need not agree.
	byFile := make(map[string][]Diag)
	var files []string
	for _, d := range diags {
		if _, ok := byFile[d.File]; !ok {
			files = append(files, d.File)
		}
		byFile[d.File] = append(byFile[d.File], d)
	}

	fileDiags := func(file string) []Diag {
		if ds, ok := byFile[file]; ok {
			return ds
		}
		for _, f := range files {
			if sameFile(f, file) {
				return byFile[f]
			}
		}
		return nil
	}

	var out []Violation
	for _, dir := range directives {
		ds := fileDiags(dir.File)
		switch dir.Kind {
		case lint.KindInline:
			out = append(out, checkInline(dir, ds)...)
		case lint.KindNoescape:
			out = append(out, checkRange(dir, ds, Escape, "value escapes to the heap")...)
		case lint.KindNobce:
			out = append(out, checkRange(dir, ds, BoundsCheck, "bounds check not eliminated")...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Directive, out[j].Directive
		if a.File != b.File {
			return a.File < b.File
		}
		if a.DeclLine != b.DeclLine {
			return a.DeclLine < b.DeclLine
		}
		return a.Kind < b.Kind
	})
	return out
}

func checkInline(dir Directive, ds []Diag) []Violation {
	for _, d := range ds {
		if d.Line != dir.DeclLine {
			continue
		}
		switch d.Kind {
		case CanInline:
			return nil
		case CannotInline:
			return []Violation{{dir, fmt.Sprintf("compiler says %q", d.Text)}}
		}
	}
	return []Violation{{dir, "no inlining verdict in the compiler output (was the build run with -gcflags='-m -m -d=ssa/check_bce/debug=1' from the module root?)"}}
}

func checkRange(dir Directive, ds []Diag, kind DiagKind, what string) []Violation {
	var out []Violation
	seen := make(map[string]bool)
	for _, d := range ds {
		if d.Kind != kind || d.Line < dir.StartLine || d.Line > dir.EndLine {
			continue
		}
		// -m -m prints some escape diagnostics twice (once with a flow
		// explanation); dedupe on position.
		key := fmt.Sprintf("%d:%d:%s", d.Line, d.Col, strings.TrimSuffix(d.Text, ":"))
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Violation{dir, fmt.Sprintf("%s at %s:%d:%d (%s)", what, d.File, d.Line, d.Col, strings.TrimSuffix(d.Text, ":"))})
	}
	return out
}

// sameFile reports whether two printed paths plausibly name the same
// file: equal, or one is a path-suffix of the other at a separator
// boundary.
func sameFile(a, b string) bool {
	if a == b {
		return true
	}
	return strings.HasSuffix(a, "/"+b) || strings.HasSuffix(b, "/"+a)
}
