// Package geom provides the small amount of 2-D geometry the ATM tasks
// need: vectors, velocity rotation (collision resolution turns an
// aircraft ±5°..±30°), linear projection (collision detection projects
// positions 20 minutes ahead), and interval intersection (the heart of
// Batcher's time-band conflict test).
package geom

import "math"

// Vec2 is a 2-D vector in nautical miles (positions) or nautical miles
// per period (velocities).
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec2) Scale(k float64) Vec2 { return Vec2{v.X * k, v.Y * k} }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Rotate returns v rotated by deg degrees counter-clockwise. Rotation
// preserves speed, which is exactly why the paper's collision resolution
// uses it: the aircraft changes heading, not velocity magnitude.
func (v Vec2) Rotate(deg float64) Vec2 {
	rad := deg * math.Pi / 180
	s, c := math.Sin(rad), math.Cos(rad)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Project returns the position reached from p with velocity vel after t
// time units (t in periods when vel is nm/period).
func Project(p, vel Vec2, t float64) Vec2 {
	return p.Add(vel.Scale(t))
}

// Interval is a closed time interval [Lo, Hi]. An empty intersection is
// reported by Lo > Hi.
type Interval struct {
	Lo, Hi float64
}

// Intersect returns the intersection of a and b.
func (a Interval) Intersect(b Interval) Interval {
	return Interval{math.Max(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)}
}

// Empty reports whether the interval contains no points.
func (a Interval) Empty() bool { return a.Lo > a.Hi }

// AxisConflictWindow implements Equations 1-4 of the paper for one axis.
// Given the positions and velocities of the trial and track aircraft
// along a single axis, it returns the time interval during which their
// separation along that axis is below sep nautical miles (the paper uses
// sep = 3: a 1.5 nm error band around each aircraft).
//
// The relative position is d = trial - track and the relative velocity is
// dv. |d + dv*t| < sep defines an interval in t. The paper's Equations
// 1-4 write this as (|d| ∓ sep) / |dv|, which assumes the aircraft are
// closing; this function solves the inequality exactly so that the
// already-overlapping and the diverging cases are handled too:
//
//	dv > 0 or dv < 0: t ∈ ((-sep-d)/dv, (sep-d)/dv) (swapped if dv < 0)
//	dv == 0:          all t if |d| < sep, otherwise no t.
//
// AxisConflictWindow returns (window, unbounded). unbounded is true in
// the dv == 0, |d| < sep case, where the axis never separates the pair;
// the caller clamps to its look-ahead horizon.
func AxisConflictWindow(trackPos, trackVel, trialPos, trialVel, sep float64) (Interval, bool) {
	d := trialPos - trackPos
	dv := trialVel - trackVel
	if dv == 0 {
		if math.Abs(d) < sep {
			return Interval{math.Inf(-1), math.Inf(1)}, true
		}
		return Interval{1, 0}, false // empty
	}
	t1 := (-sep - d) / dv
	t2 := (sep - d) / dv
	if t1 > t2 {
		t1, t2 = t2, t1
	}
	return Interval{t1, t2}, false
}
