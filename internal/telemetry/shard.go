package telemetry

// Shards let hot parallel loops emit events without sharing the
// Recorder: each parexec worker writes to its own Shard (no locks, no
// atomics), and MergeShards folds the shards back into the recorder
// after the barrier, ordered by chunk index.
//
// Why that order is deterministic: parexec's self-scheduling cursor is
// monotonic, so the chunks any one worker claims form an increasing
// sequence — each shard is already sorted by chunk — and a chunk is
// claimed by exactly one worker. A k-way merge on the per-shard heads
// therefore reproduces ascending chunk order regardless of how many
// workers ran or how chunks were distributed among them. The merged
// stream, and hence the exported event log, is byte-identical at any
// worker count.

// ShardSet is a reusable set of per-worker event buffers. The zero
// value is ready to use; Begin grows it to the worker count once and
// the buffers keep their capacity across launches (machine-owned
// scratch).
type ShardSet struct {
	shards []Shard
	cursor []int // per-shard merge cursors, reused by MergeShards
}

// Shard is one worker's private event buffer. Events carry only
// (kind, name, value, chunk); MergeShards stamps the recorder's
// modeled time and period on merge, since shard events are emitted
// inside a single modeled operation.
type Shard struct {
	events []Event
}

// Begin prepares the set for a launch over the given worker count,
// truncating every shard. Growth happens only when workers exceeds
// any previous launch (cold path).
func (s *ShardSet) Begin(workers int) {
	if workers > len(s.shards) {
		s.shards = append(s.shards, make([]Shard, workers-len(s.shards))...)
		s.cursor = append(s.cursor, make([]int, workers-len(s.cursor))...)
	}
	for i := range s.shards {
		s.shards[i].events = s.shards[i].events[:0]
	}
}

// Shard returns worker w's buffer. Each worker must use only its own
// shard; distinct shards may be written concurrently.
func (s *ShardSet) Shard(w int) *Shard { return &s.shards[w] }

// Counter records a delta contribution for the given chunk.
//
//atm:inline
//atm:noalloc
//atm:noescape
//atm:nobce
func (sh *Shard) Counter(id NameID, chunk int32, v int64) {
	sh.events = append(sh.events, Event{Value: v, Name: id, Arg: chunk, Kind: KindCounter})
}

// Gauge records an instantaneous reading for the given chunk.
//
//atm:inline
//atm:noalloc
//atm:noescape
//atm:nobce
func (sh *Shard) Gauge(id NameID, chunk int32, v int64) {
	sh.events = append(sh.events, Event{Value: v, Name: id, Arg: chunk, Kind: KindGauge})
}

// Len returns the number of buffered shard events.
func (sh *Shard) Len() int { return len(sh.events) }

// MergeShards drains every shard into the recorder in ascending chunk
// order (ties broken by shard index, which cannot occur under parexec
// where each chunk is claimed by exactly one worker). Events are
// stamped with the recorder's current modeled time and period. The
// shards are left truncated and ready for the next Begin.
//
//atm:ordered-merge
//atm:noalloc
//atm:noescape
func (r *Recorder) MergeShards(s *ShardSet) {
	if r == nil {
		return
	}
	cur := s.cursor
	for i := range cur {
		cur[i] = 0
	}
	for {
		best := -1
		var bestChunk int32
		for w := range s.shards {
			if cur[w] >= len(s.shards[w].events) {
				continue
			}
			c := s.shards[w].events[cur[w]].Arg
			if best < 0 || c < bestChunk {
				best, bestChunk = w, c
			}
		}
		if best < 0 {
			break
		}
		ev := s.shards[best].events[cur[best]]
		cur[best]++
		r.record(ev.Kind, ev.Name, r.now, ev.Value, ev.Arg)
	}
	for i := range s.shards {
		s.shards[i].events = s.shards[i].events[:0]
	}
}
