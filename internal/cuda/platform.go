package cuda

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
	"repro/internal/telemetry"
)

// Platform adapts an Engine to the platform.Platform interface used by
// the scheduler and the experiment harness.
type Platform struct {
	eng *Engine
	rec *telemetry.Recorder
}

// NewPlatform returns a scheduler-facing platform on the given device
// profile.
func NewPlatform(p Profile) *Platform {
	return &Platform{eng: NewEngine(p)}
}

// Engine exposes the underlying kernel engine.
func (p *Platform) Engine() *Engine { return p.eng }

// SetPairSource installs a broadphase pair source on the engine (nil
// restores the paper's all-pairs kernels).
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.eng.SetPairSource(src) }

// SetWorkers pins the host worker count used to execute kernel blocks
// (n <= 0 restores the process-default pool).
func (p *Platform) SetWorkers(n int) { p.eng.SetWorkers(n) }

// SetTelemetry attaches a recorder (nil detaches): each task then
// records one span per kernel launch plus the transfer span — the
// launch sequence is sequential, so consecutive spans tile the task's
// modeled time exactly — and the task's work counters.
func (p *Platform) SetTelemetry(rec *telemetry.Recorder) {
	p.rec = rec
	p.eng.dev.SetTelemetry(rec)
}

// emitKernels records the launch sequence as back-to-back spans
// starting at the recorder's modeled now (the task's virtual start),
// with the host<->device transfer span at the tail. Arg is the launch
// ordinal, which distinguishes repeated kernels across box passes.
func (p *Platform) emitKernels(kernels []KernelStats, transfer time.Duration) {
	off := p.rec.Now()
	for i := range kernels {
		st := &kernels[i]
		p.rec.SpanArg(p.rec.Intern(st.Name), off, st.Time, int32(i))
		off += st.Time
	}
	p.rec.Span(p.rec.Intern(telemetry.NameTransfer), off, transfer)
}

// Name returns the device name.
func (p *Platform) Name() string { return p.eng.Name() }

// Deterministic reports that the modeled timing is a pure function of
// the workload — the property the paper demonstrates for CUDA devices.
func (p *Platform) Deterministic() bool { return true }

// Track runs Task 1 and returns the modeled device time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	res := p.eng.TrackDrone(w, f)
	if p.rec != nil {
		p.emitKernels(res.Kernels, res.TransferTime)
		p.rec.Counter(p.rec.Intern(telemetry.NameTrackMatched), int64(res.Matched))
	}
	return res.Time
}

// DetectResolve runs the fused Tasks 2-3 kernel and returns the modeled
// device time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	res := p.eng.CheckCollisionPath(w)
	if p.rec != nil {
		p.emitKernels(res.Kernels, res.TransferTime)
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectConflicts), int64(res.Stats.Conflicts))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectRotations), int64(res.Stats.Rotations))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectResolved), int64(res.Stats.Resolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectUnresolved), int64(res.Stats.Unresolved))
		p.rec.Counter(p.rec.Intern(telemetry.NameDetectPairChecks), int64(res.Stats.PairChecks))
	}
	return res.Time
}
