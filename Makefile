GO ?= go
ATMLINT := bin/atmlint

.PHONY: all build test vet lint lint-fixtures bench-smoke bench-diff fuzz serve serve-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The vettool binary; rebuilt whenever the analyzer suite or driver
# changes. go vet caches per-package results keyed on the binary hash
# (-V=full), so a rebuilt tool automatically invalidates stale results.
$(ATMLINT): $(wildcard cmd/atmlint/*.go internal/lint/*.go) go.mod
	$(GO) build -o $(ATMLINT) ./cmd/atmlint

# lint runs the atmlint analyzer suite (determinism, modeledtime,
# noalloc, orderedmerge, atmdirective) over every package.
lint: $(ATMLINT)
	$(GO) vet -vettool=$(abspath $(ATMLINT)) ./...

# lint-fixtures runs the analyzers' own unit tests: each analyzer is
# exercised against testdata fixtures with // want expectations.
lint-fixtures:
	$(GO) test ./internal/lint/...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-diff compares the hot-path benchmarks on HEAD against BASE_REF
# (default: merge base with origin/main) and fails on a >5% time or any
# allocs/op regression; `scripts/benchdiff.sh snapshot` refreshes the
# checked-in BENCH_7.json. See scripts/benchdiff.sh for tunables.
BASE_REF ?=
bench-diff:
	./scripts/benchdiff.sh $(BASE_REF)

# fuzz runs the CSV round-trip fuzzer for a bounded interval on top of
# the checked-in seed corpus (internal/trace/testdata/fuzz).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/trace

# serve starts the simulation service on SERVE_ADDR (see cmd/atmserve;
# curl 'localhost:8080/v1/simulate?platform=titanx&n=8000').
SERVE_ADDR ?= localhost:8080
serve:
	$(GO) run ./cmd/atmserve -addr $(SERVE_ADDR)

# serve-smoke builds atmserve, runs one request end to end, checks the
# golden measurement row and a clean SIGTERM drain — the same script CI
# runs.
serve-smoke:
	$(GO) build -o bin/atmserve ./cmd/atmserve
	./scripts/serve-smoke.sh bin/atmserve

clean:
	rm -rf bin
