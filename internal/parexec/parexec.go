// Package parexec is the shared host-execution engine: a fixed pool of
// persistent workers that fans index ranges out across GOMAXPROCS
// goroutines with a self-scheduling chunked work queue (an atomic
// cursor over small index ranges, after Weinert et al.'s self-
// scheduling mode), so skewed per-item costs — broad-phase candidate
// counts vary wildly between tracks — don't leave workers idle the way
// a static partition would.
//
// The engine parallelizes *host wall-clock* execution only. Every
// modeled-time figure in this repository is computed from operation
// tallies whose reductions are order-independent (sums, maxima), and
// every consumer of Run in this repository merges per-worker or
// per-chunk partial results in a fixed index order, so results are
// bit-for-bit identical at any worker count, including 1.
//
// Run is safe for concurrent and reentrant use: a Run that cannot take
// the pool (because another Run on the same pool is in flight, possibly
// higher up the same call stack) executes its body inline on the
// calling goroutine as worker 0. Bodies therefore must treat the worker
// index purely as an index into per-call scratch, never as a global
// identity.
package parexec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a reusable worker pool. The zero value is not usable; create
// pools with NewPool. Worker goroutines are spawned lazily on the first
// parallel Run and live for the life of the pool.
type Pool struct {
	workers int

	mu      sync.Mutex // held for the duration of one dispatched Run
	started bool       // workers spawned; guarded by mu
	wake    chan struct{}
	done    chan struct{}

	// Current job; valid only while mu is held and workers are awake.
	cursor atomic.Int64
	limit  int64
	grain  int64
	body   Body
}

// Body is the chunk executor RunBody dispatches: Chunk is called once
// per claimed chunk, under exactly the contract Run documents for its
// closure form. Implementing Body on a persistent job struct (typically
// held in pooled scratch) lets hot paths dispatch parallel work with
// zero allocations: a pointer-to-struct converts to the interface
// without boxing, whereas a closure that captures state allocates at
// every call site.
type Body interface {
	Chunk(worker, lo, hi int)
}

// funcBody adapts Run's closure form to Body. A func value is already
// pointer-shaped, so the interface conversion does not allocate.
type funcBody func(worker, lo, hi int)

//atm:noalloc
func (f funcBody) Chunk(worker, lo, hi int) { f(worker, lo, hi) }

// NewPool returns a pool with the given number of workers; workers <= 0
// means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count. Per-worker scratch passed to
// Run bodies must have at least this many slots.
func (p *Pool) Workers() int { return p.workers }

// Run executes body over the index range [0, n), handing out
// self-scheduled chunks of exactly grain indices (the last chunk may be
// shorter). Every body call — on the parallel path and the inline
// fallbacks alike — covers exactly one chunk: lo is a multiple of grain
// and hi-lo <= grain, so a body may recover its chunk number as
// lo/grain to store per-chunk partial results for an
// order-deterministic merge.
//
// The calling goroutine participates as worker 0; helpers use worker
// indices 1..Workers()-1. Run returns after every chunk has completed,
// and all memory written by the body is visible to the caller
// (happens-before is established through the pool's channels).
//
// When the pool has one worker, n fits a single chunk, or the pool is
// already busy with another Run, the body runs inline on the caller as
// worker 0, chunk by chunk in ascending order — same results, no
// goroutines.
//
//atm:noalloc
func (p *Pool) Run(n, grain int, body func(worker, lo, hi int)) {
	p.RunBody(n, grain, funcBody(body))
}

// RunBody is Run with the body passed as a Body value instead of a
// closure. Semantics, chunking and the deterministic-merge contract are
// identical; the interface form exists so steady-state hot paths can
// reuse a persistent job struct and keep parallel dispatch free of the
// per-call closure allocation.
//
//atm:noalloc
//atm:ordered-merge
func (p *Pool) RunBody(n, grain int, body Body) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	if p.workers == 1 || n <= grain || !p.mu.TryLock() {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body.Chunk(0, lo, hi)
		}
		return
	}
	defer p.mu.Unlock()
	if !p.started {
		p.start() //atm:allow noallocflow -- one-time lazy startup: spawns the worker goroutines on the first parallel Run only
		p.started = true
	}

	p.limit = int64(n)
	p.grain = int64(grain)
	p.body = body
	p.cursor.Store(0)

	// Wake only as many helpers as there are chunks beyond the caller's
	// first; the rest would spin on an exhausted cursor.
	helpers := p.workers - 1
	if chunks := (n + grain - 1) / grain; helpers > chunks-1 {
		helpers = chunks - 1
	}
	for i := 0; i < helpers; i++ {
		p.wake <- struct{}{}
	}
	p.drain(0)
	for i := 0; i < helpers; i++ {
		<-p.done
	}
	p.body = nil
}

// start spawns the persistent helper goroutines.
func (p *Pool) start() {
	p.wake = make(chan struct{}, p.workers)
	p.done = make(chan struct{}, p.workers)
	for w := 1; w < p.workers; w++ {
		go func(worker int) {
			for range p.wake {
				p.drain(worker)
				p.done <- struct{}{}
			}
		}(w)
	}
}

// drain claims chunks off the shared cursor until the range is
// exhausted.
//
//atm:noalloc
//atm:noescape
func (p *Pool) drain(worker int) {
	limit, grain := p.limit, p.grain
	for {
		lo := p.cursor.Add(grain) - grain
		if lo >= limit {
			return
		}
		hi := lo + grain
		if hi > limit {
			hi = limit
		}
		p.body.Chunk(worker, int(lo), int(hi))
	}
}

// defaultPool holds the process-wide pool used when callers pass a nil
// pool. It starts at GOMAXPROCS workers; SetDefaultWorkers (the
// -workers flag) replaces it.
var defaultPool atomic.Pointer[Pool]

func init() {
	defaultPool.Store(NewPool(0))
}

// Default returns the process-wide pool.
func Default() *Pool { return defaultPool.Load() }

// SetDefaultWorkers replaces the process-wide pool with one of the
// given size (<= 0 means GOMAXPROCS). Existing references to the old
// pool remain valid.
func SetDefaultWorkers(workers int) {
	defaultPool.Store(NewPool(workers))
}

// Resolve returns p, or the process-wide default pool when p is nil —
// the idiom every engine consumer uses to accept an optional pool.
func Resolve(p *Pool) *Pool {
	if p == nil {
		return Default()
	}
	return p
}
