package platform

import (
	"testing"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// The CUDA, wide-vector and multicore machines all implement Tasks 2-3
// with the same snapshot discipline (scan a frozen copy of committed
// courses, write only your own aircraft, commit at a barrier), so on
// identical traffic they must produce bitwise-identical worlds — three
// independent implementations cross-checking each other.
func TestSnapshotPlatformsAgreeOnDetectResolve(t *testing.T) {
	base := airspace.NewWorld(700, rng.New(101))
	names := []string{TitanXPascal, XeonPhi, Xeon16}
	worlds := make([]*airspace.World, len(names))
	for i, name := range names {
		w := base.Clone()
		MustNew(name, 1).DetectResolve(w)
		worlds[i] = w
	}
	for i := 1; i < len(worlds); i++ {
		for j := range worlds[0].Aircraft {
			if worlds[0].Aircraft[j] != worlds[i].Aircraft[j] {
				t.Fatalf("aircraft %d differs between %s and %s:\n%+v\n%+v",
					j, names[0], names[i], worlds[0].Aircraft[j], worlds[i].Aircraft[j])
			}
		}
	}
}

// The AP program implements the sequential reference exactly; the
// snapshot platforms may differ from it only in how mutually
// conflicting pairs maneuver. On traffic with no critical conflicts,
// every platform must agree bitwise with the reference.
func TestAllPlatformsAgreeOnCalmTraffic(t *testing.T) {
	// Spread-out grid, common heading: no conflicts anywhere.
	base := &airspace.World{Aircraft: make([]airspace.Aircraft, 300)}
	for i := range base.Aircraft {
		a := &base.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%20)*12 - 114
		a.Y = float64(i/20)*12 - 90
		a.DX, a.DY = 0.03, 0.01
		a.Alt = 5000 + float64(i%7)*4000
		a.ResetConflict()
	}
	ref := base.Clone()
	tasks.DetectResolve(ref)

	for _, name := range append(Names(), ExtensionNames()...) {
		w := base.Clone()
		MustNew(name, 1).DetectResolve(w)
		for j := range ref.Aircraft {
			if ref.Aircraft[j] != w.Aircraft[j] {
				t.Fatalf("%s: aircraft %d differs from reference on calm traffic", name, j)
			}
		}
	}
}

// On clean, unambiguous radar geometry every platform's Task 1 must
// land every aircraft on its radar fix — identical final positions
// across all eight machines and the reference.
func TestAllPlatformsAgreeOnCleanTrack(t *testing.T) {
	base := &airspace.World{Aircraft: make([]airspace.Aircraft, 256)}
	for i := range base.Aircraft {
		a := &base.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%16)*8 - 60
		a.Y = float64(i/16)*8 - 60
		a.DX, a.DY = 0.02, -0.01
		a.Alt = 10000
		a.ResetConflict()
	}
	frame := radar.Generate(base, 0.2, rng.New(55))

	ref := base.Clone()
	refFrame := frame.Clone()
	tasks.Correlate(ref, refFrame)

	for _, name := range append(Names(), ExtensionNames()...) {
		w := base.Clone()
		f := frame.Clone()
		MustNew(name, 1).Track(w, f)
		for j := range ref.Aircraft {
			if ref.Aircraft[j].X != w.Aircraft[j].X || ref.Aircraft[j].Y != w.Aircraft[j].Y {
				t.Fatalf("%s: aircraft %d position differs from reference on clean radar", name, j)
			}
		}
	}
}
