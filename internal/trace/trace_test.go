package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Dataset {
	d := &Dataset{ID: "fig4", Title: "Task 1 timings", XLabel: "aircraft", YLabel: "seconds"}
	d.Add("Titan X", 1000, 0.001)
	d.Add("Titan X", 2000, 0.002)
	d.Add("Xeon", 1000, 0.05)
	d.Add("Xeon", 2000, 0.21)
	return d
}

func TestAddCreatesAndAppends(t *testing.T) {
	d := sample()
	if len(d.Series) != 2 {
		t.Fatalf("series count = %d", len(d.Series))
	}
	s := d.Get("Titan X")
	if s == nil || len(s.Points) != 2 {
		t.Fatalf("Titan X series = %+v", s)
	}
	if d.Get("nope") != nil {
		t.Fatal("Get of unknown label not nil")
	}
}

func TestXSYS(t *testing.T) {
	s := sample().Get("Xeon")
	xs, ys := s.XS(), s.YS()
	if xs[0] != 1000 || xs[1] != 2000 || ys[0] != 0.05 || ys[1] != 0.21 {
		t.Fatalf("XS=%v YS=%v", xs, ys)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != d.ID || got.Title != d.Title || got.XLabel != d.XLabel || got.YLabel != d.YLabel {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Series) != len(d.Series) {
		t.Fatalf("series count %d != %d", len(got.Series), len(d.Series))
	}
	for i, s := range d.Series {
		g := got.Series[i]
		if g.Label != s.Label || len(g.Points) != len(s.Points) {
			t.Fatalf("series %d mismatch: %+v vs %+v", i, g, s)
		}
		for j := range s.Points {
			if g.Points[j] != s.Points[j] {
				t.Fatalf("point %d/%d: %+v vs %+v", i, j, g.Points[j], s.Points[j])
			}
		}
	}
}

func TestReadCSVWithoutComment(t *testing.T) {
	in := "series,x,y\nA,1,2\nA,3,4\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 1 || len(d.Series[0].Points) != 2 {
		t.Fatalf("parsed = %+v", d)
	}
}

func TestReadCSVBadNumbers(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("series,x,y\nA,zzz,1\n")); err == nil {
		t.Fatal("bad x accepted")
	}
	if _, err := ReadCSV(strings.NewReader("series,x,y\nA,1,zzz\n")); err == nil {
		t.Fatal("bad y accepted")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 0 {
		t.Fatalf("empty input produced series: %+v", d)
	}
}

func TestCSVLabelsWithCommas(t *testing.T) {
	d := &Dataset{ID: "x", Title: "t", XLabel: "x", YLabel: "y"}
	d.Add("Titan X (Pascal), fused", 1, 2)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Series[0].Label != "Titan X (Pascal), fused" {
		t.Fatalf("label mangled: %q", got.Series[0].Label)
	}
}
