// Command atmbench regenerates every figure and table of the paper's
// evaluation (Section 6) plus the ablations documented in DESIGN.md,
// rendering each as an ASCII table + chart and writing a CSV per
// artifact.
//
// Usage:
//
//	atmbench                      # everything, full sweeps (minutes)
//	atmbench -quick               # trimmed sweeps (seconds)
//	atmbench -fig 4               # one figure
//	atmbench -table deadlines     # one table
//	atmbench -out results/        # CSV output directory
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/parexec"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	var (
		figNum  = flag.Int("fig", 0, "regenerate one figure (4-9); 0 = all")
		table   = flag.String("table", "", "regenerate one table (deadlines, determinism, kernelsplit, boxpasses, normalized, vector, radarnet, broadphase, hostperf, capacity, coherence, parshard, telemetry, scenario)")
		quick   = flag.Bool("quick", false, "trimmed sweeps for a fast smoke run")
		outDir  = flag.String("out", "results", "directory for CSV output")
		cycles  = flag.Int("cycles", 0, "major cycles per measurement (0 = default)")
		seed    = flag.Uint64("seed", 2018, "random seed")
		noChart = flag.Bool("nochart", false, "suppress ASCII charts")
		workers = flag.Int("workers", 0,
			"host worker goroutines for sweeps and task execution (0 = GOMAXPROCS); results are identical at any count")
		scenarioSpec = flag.String("scenario", "",
			"workload spec for the platform sweeps, e.g. circle:radius=50 (families: "+scenario.FamilyNames()+"; empty = the paper's uniform traffic; ablation tables always run uniform)")
	)
	flag.Parse()
	// Pre-flight validation shared with atmsim and atmserve. atmbench
	// exposes only -cycles and -workers; the sweeps fix platform, N and
	// pair source themselves, so those knobs are pinned to known-good
	// values and only the real flags are checked (-cycles 0 selects the
	// experiment default, negatives are usage errors).
	cyc := *cycles
	if cyc == 0 {
		cyc = experiments.DefaultConfig.Cycles
	}
	params := core.RunParams{
		Platform: platform.TitanXPascal,
		N:        1,
		Periods:  cyc * sched.PeriodsPerMajorCycle,
		Workers:  *workers,
		Scenario: *scenarioSpec,
	}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "atmbench:", err)
		os.Exit(2)
	}
	parexec.SetDefaultWorkers(*workers)
	cfg := experiments.Config{Cycles: *cycles, Seed: *seed, Quick: *quick, Scenario: *scenarioSpec}
	if err := run(cfg, *figNum, *table, *outDir, !*noChart); err != nil {
		fmt.Fprintln(os.Stderr, "atmbench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, figNum int, table, outDir string, chart bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	emitDataset := func(d *trace.Dataset) error {
		fmt.Println()
		if err := report.DatasetTable(os.Stdout, d); err != nil {
			return err
		}
		if chart {
			fmt.Println()
			if err := report.Chart(os.Stdout, d, 64, 16); err != nil {
				return err
			}
		}
		path := filepath.Join(outDir, d.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", path)
		return nil
	}

	emitFit := func(r *experiments.FitReport) error {
		if err := emitDataset(r.Dataset); err != nil {
			return err
		}
		fmt.Printf("\nlinear fit    : %s\n", r.Linear)
		fmt.Printf("quadratic fit : %s\n", r.Quadratic)
		fmt.Printf("effective growth exponent (log-log): %.3f\n", r.Exponent)
		if r.SmallQuadCoeff {
			fmt.Println("quadratic coefficient is very small compared to the linear coefficient (Fig. 9's observation)")
		}
		if r.NearLinear {
			fmt.Println("verdict: linear or near-linear — SIMD-like (the paper's conclusion)")
		} else {
			fmt.Println("verdict: quadratic over this domain (low coefficient; deadlines still met)")
		}
		return nil
	}

	type job struct {
		name string
		run  func() error
	}
	figJobs := map[int]job{
		4: {"fig4", func() error { d, err := experiments.Fig4(cfg); return emit(d, err, emitDataset) }},
		5: {"fig5", func() error { d, err := experiments.Fig5(cfg); return emit(d, err, emitDataset) }},
		6: {"fig6", func() error { d, err := experiments.Fig6(cfg); return emit(d, err, emitDataset) }},
		7: {"fig7", func() error { d, err := experiments.Fig7(cfg); return emit(d, err, emitDataset) }},
		8: {"fig8", func() error { r, err := experiments.Fig8(cfg); return emitF(r, err, emitFit) }},
		9: {"fig9", func() error { r, err := experiments.Fig9(cfg); return emitF(r, err, emitFit) }},
	}
	tableJobs := map[string]job{
		"deadlines":   {"deadlines", func() error { d, err := experiments.DeadlineTable(cfg); return emit(d, err, emitDataset) }},
		"determinism": {"determinism", func() error { d, err := experiments.DeterminismTable(cfg, 5); return emit(d, err, emitDataset) }},
		"kernelsplit": {"kernelsplit", func() error { d, err := experiments.KernelSplitTable(cfg); return emit(d, err, emitDataset) }},
		"boxpasses":   {"boxpasses", func() error { d, err := experiments.BoxPassTable(cfg); return emit(d, err, emitDataset) }},
		"normalized":  {"normalized", func() error { d, err := experiments.NormalizedTable(cfg); return emit(d, err, emitDataset) }},
		"vector":      {"vector", func() error { d, err := experiments.VectorTable(cfg); return emit(d, err, emitDataset) }},
		"radarnet":    {"radarnet", func() error { d, err := experiments.RadarNetTable(cfg); return emit(d, err, emitDataset) }},
		"broadphase":  {"broadphase", func() error { d, err := experiments.BroadphaseTable(cfg); return emit(d, err, emitDataset) }},
		"hostperf":    {"hostperf", func() error { d, err := experiments.HostPerfTable(cfg); return emit(d, err, emitDataset) }},
		"capacity":    {"capacity", func() error { d, err := experiments.CapacityTable(cfg); return emit(d, err, emitDataset) }},
		"coherence":   {"coherence", func() error { d, err := experiments.CoherenceTable(cfg); return emit(d, err, emitDataset) }},
		"parshard":    {"parshard", func() error { d, err := experiments.ParShardTable(cfg); return emit(d, err, emitDataset) }},
		"telemetry":   {"telemetry", func() error { d, err := experiments.TelemetryTable(cfg); return emit(d, err, emitDataset) }},
		"scenario":    {"scenario", func() error { d, err := experiments.ScenarioTable(cfg); return emit(d, err, emitDataset) }},
	}

	switch {
	case figNum != 0:
		j, ok := figJobs[figNum]
		if !ok {
			return fmt.Errorf("no figure %d (have 4-9)", figNum)
		}
		return j.run()
	case table != "":
		j, ok := tableJobs[table]
		if !ok {
			return fmt.Errorf("no table %q (have deadlines, determinism, kernelsplit, boxpasses, normalized, vector, radarnet, broadphase, hostperf, capacity, coherence, parshard, telemetry, scenario)", table)
		}
		return j.run()
	}

	// Everything: the two sweeps are measured once and every artifact
	// derived from them (the per-figure jobs above re-measure and are
	// only used for single-artifact invocations).
	all, err := experiments.RunAll(cfg)
	if err != nil {
		return err
	}
	for _, art := range []struct {
		name string
		run  func() error
	}{
		{"Figure 4", func() error { return emitDataset(all.Fig4) }},
		{"Figure 5", func() error { return emitDataset(all.Fig5) }},
		{"Figure 6", func() error { return emitDataset(all.Fig6) }},
		{"Figure 7", func() error { return emitDataset(all.Fig7) }},
		{"Figure 8", func() error { return emitFit(all.Fig8) }},
		{"Figure 9", func() error { return emitFit(all.Fig9) }},
		{"Table deadlines", func() error { return emitDataset(all.Deadlines) }},
		{"Table normalized", func() error { return emitDataset(all.Normalized) }},
		{"Table determinism", tableJobs["determinism"].run},
		{"Table kernelsplit", tableJobs["kernelsplit"].run},
		{"Table boxpasses", tableJobs["boxpasses"].run},
		{"Table vector", tableJobs["vector"].run},
		{"Table radarnet", tableJobs["radarnet"].run},
		{"Table broadphase", tableJobs["broadphase"].run},
		{"Table telemetry", tableJobs["telemetry"].run},
		{"Table scenario", tableJobs["scenario"].run},
	} {
		fmt.Printf("\n=== %s ===\n", art.name)
		if err := art.run(); err != nil {
			return err
		}
	}
	return nil
}

func emit(d *trace.Dataset, err error, f func(*trace.Dataset) error) error {
	if err != nil {
		return err
	}
	return f(d)
}

func emitF(r *experiments.FitReport, err error, f func(*experiments.FitReport) error) error {
	if err != nil {
		return err
	}
	return f(r)
}
