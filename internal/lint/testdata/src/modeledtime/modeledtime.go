// Fixture for the modeledtime analyzer, analyzed as the platform
// package repro/internal/cuda. Track/DetectResolve methods are
// modeled-time roots automatically; kernelTime is reachable from both
// and from the annotated Launch.
package fixture

import "time"

type machine struct {
	ops uint64
}

// Launch is an explicit modeled-time root.
//
//atm:modeled-time
func (m *machine) Launch(n int) time.Duration {
	m.ops += uint64(n)
	return m.kernelTime()
}

// Track is a root by name (platform contract method).
func (m *machine) Track(n int) time.Duration {
	return m.kernelTime()
}

// DetectResolve is a root by name (platform contract method).
func (m *machine) DetectResolve(n int) time.Duration {
	d := m.kernelTime()
	stamp() // reachable helper that reads the clock
	return d
}

// kernelTime is reachable from all three roots; the wall-clock read
// inside it must be flagged.
func (m *machine) kernelTime() time.Duration {
	t0 := time.Now() // want "reachable from modeled-time root"
	_ = t0
	return time.Duration(m.ops) * time.Microsecond // clean: Duration arithmetic
}

func stamp() {
	_ = time.Since(time.Time{}) // want "reachable from modeled-time root"
}

// hostSide is NOT reachable from any root: wall-clock reads are fine
// (host benchmarking code measures real elapsed time).
func hostSide() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// waived is reachable but carries a line-scoped allow.
//
//atm:modeled-time
func waived() {
	//atm:allow wallclock -- fixture: progress logging only, never charged to modeled time
	_ = time.Now()
}
