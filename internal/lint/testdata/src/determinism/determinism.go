// Fixture for the determinism analyzer, analyzed as the designated
// package repro/internal/tasks.
package fixture

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

func rangesOverMap(m map[string]int) int {
	sum := 0
	for _, v := range m { // want "range over a map iterates in nondeterministic order"
		sum += v
	}
	for i := 0; i < 4; i++ { // clean: index iteration
		sum += i
	}
	keys := []string{"a", "b"}
	for _, k := range keys { // clean: slice iteration
		sum += m[k]
	}
	return sum
}

//atm:allow maprange -- fixture: order folded through a commutative sum
func allowedMapRange(m map[string]int) int {
	sum := 0
	for _, v := range m { // no diagnostic: function-scoped allow
		sum += v
	}
	return sum
}

func usesGlobalRand() int {
	return rand.Intn(3) // want "math/rand is globally seeded"
}

func readsWallClock() time.Time {
	d := 2 * time.Second // clean: Duration arithmetic is not a clock read
	_ = d
	return time.Now() // want "reads the host wall clock"
}

func spawnsGoroutine(ch chan int) {
	go func() { // want "raw go statement outside internal/parexec"
		ch <- 1
	}()
}

func locksMutex(mu *sync.Mutex) { // want "sync.Mutex outside internal/parexec"
	mu.Lock() // clean: the type reference is flagged, not each method call
	mu.Unlock()
}

type holder struct {
	mu sync.Mutex // want "sync.Mutex outside internal/parexec"
}

var pool sync.Pool // clean: sync.Pool is exempt (content-agnostic scratch)

func atomicAdd(p *int64) {
	atomic.AddInt64(p, 1) // want "sync/atomic.AddInt64 outside internal/parexec"
}

//atm:allow atomic -- fixture: order-independent sum
func allowedAtomic(p *int64) {
	atomic.AddInt64(p, 1) // no diagnostic: function-scoped allow
}

func multiSelect(a, b chan int) int {
	select { // want "select with 2 comm cases picks pseudo-randomly"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleSelect(a chan int) int {
	select { // clean: one comm case plus default
	case v := <-a:
		return v
	default:
		return 0
	}
}

func lineScopedAllow(m map[string]int) int {
	sum := 0
	//atm:allow maprange -- fixture: commutative fold on the next line
	for _, v := range m { // no diagnostic: line-scoped allow
		sum += v
	}
	return sum
}
