// Benchmarks regenerating the paper's evaluation artifacts, one per
// figure/table (see DESIGN.md's per-experiment index). Figures 4-7 are
// benchmarked per platform at a representative sweep point; Figures 8-9
// benchmark the measure-and-fit pipeline; the remaining benchmarks
// cover the deadline schedule and the two ablations.
//
// Benchmark time here is host wall time for executing the simulators;
// the modeled device durations the figures report are deterministic
// outputs, not measurements, so -benchtime does not change the figures.
package repro

import (
	"testing"

	"repro/internal/airspace"
	"repro/internal/ap"
	"repro/internal/broadphase"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/radar"
	"repro/internal/radarnet"
	"repro/internal/rng"
	"repro/internal/tasks"
	"repro/internal/terrain"
	"repro/internal/vector"
)

// benchN is the sweep point used for the per-platform benchmarks:
// mid-sweep in Figures 4/6.
const benchN = 4000

func benchWorld(n int) (*airspace.World, *radar.Frame) {
	root := rng.New(2018)
	w := airspace.NewWorld(n, root.Split())
	f := radar.Generate(w, radar.DefaultNoise, root.Split())
	return w, f
}

// benchTrack benchmarks one Task 1 invocation on the named platform.
func benchTrack(b *testing.B, name string, n int) {
	b.Helper()
	p := platform.MustNew(name, 1)
	w, f := benchWorld(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc, fc := w.Clone(), f.Clone()
		b.StartTimer()
		p.Track(wc, fc)
	}
}

// benchDetect benchmarks one Tasks 2+3 invocation on the named platform.
func benchDetect(b *testing.B, name string, n int) {
	b.Helper()
	p := platform.MustNew(name, 1)
	w, _ := benchWorld(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		p.DetectResolve(wc)
	}
}

// Figure 4 — Task 1, all platforms.
func BenchmarkFig4_Task1_GeForce9800GT(b *testing.B) { benchTrack(b, platform.GeForce9800GT, benchN) }
func BenchmarkFig4_Task1_GTX880M(b *testing.B)       { benchTrack(b, platform.GTX880M, benchN) }
func BenchmarkFig4_Task1_TitanXPascal(b *testing.B)  { benchTrack(b, platform.TitanXPascal, benchN) }
func BenchmarkFig4_Task1_STARAN(b *testing.B)        { benchTrack(b, platform.STARAN, benchN) }
func BenchmarkFig4_Task1_ClearSpeed(b *testing.B)    { benchTrack(b, platform.ClearSpeed, benchN) }
func BenchmarkFig4_Task1_Xeon16(b *testing.B)        { benchTrack(b, platform.Xeon16, benchN) }

// Figure 5 — Task 1, NVIDIA cards at the deeper sweep point.
func BenchmarkFig5_Task1_GeForce9800GT_8000(b *testing.B) {
	benchTrack(b, platform.GeForce9800GT, 8000)
}
func BenchmarkFig5_Task1_GTX880M_8000(b *testing.B)      { benchTrack(b, platform.GTX880M, 8000) }
func BenchmarkFig5_Task1_TitanXPascal_8000(b *testing.B) { benchTrack(b, platform.TitanXPascal, 8000) }

// Figure 6 — Tasks 2+3, all platforms.
func BenchmarkFig6_Task23_GeForce9800GT(b *testing.B) {
	benchDetect(b, platform.GeForce9800GT, benchN)
}
func BenchmarkFig6_Task23_GTX880M(b *testing.B)      { benchDetect(b, platform.GTX880M, benchN) }
func BenchmarkFig6_Task23_TitanXPascal(b *testing.B) { benchDetect(b, platform.TitanXPascal, benchN) }
func BenchmarkFig6_Task23_STARAN(b *testing.B)       { benchDetect(b, platform.STARAN, benchN) }
func BenchmarkFig6_Task23_ClearSpeed(b *testing.B)   { benchDetect(b, platform.ClearSpeed, benchN) }
func BenchmarkFig6_Task23_Xeon16(b *testing.B)       { benchDetect(b, platform.Xeon16, benchN) }

// Figure 7 — Tasks 2+3, NVIDIA cards at the deeper sweep point.
func BenchmarkFig7_Task23_GeForce9800GT_8000(b *testing.B) {
	benchDetect(b, platform.GeForce9800GT, 8000)
}
func BenchmarkFig7_Task23_GTX880M_8000(b *testing.B) { benchDetect(b, platform.GTX880M, 8000) }
func BenchmarkFig7_Task23_TitanXPascal_8000(b *testing.B) {
	benchDetect(b, platform.TitanXPascal, 8000)
}

// Figures 8 and 9 — the measure-and-curve-fit pipelines.
func BenchmarkFig8_FitPipeline(b *testing.B) {
	cfg := experiments.Config{Seed: 2018, Quick: true}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_FitPipeline(b *testing.B) {
	cfg := experiments.Config{Seed: 2018, Quick: true}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Table T-DL — a full deadline-accounted major cycle (16 periods of
// Task 1 plus the fused Tasks 2+3) on the two extreme platforms.
func BenchmarkDeadlines_MajorCycle_TitanX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := platform.MustNew(platform.TitanXPascal, 1)
		sys := core.NewSystem(p, core.Config{N: 2000, Seed: 2018})
		sys.RunMajorCycles(1)
	}
}

func BenchmarkDeadlines_MajorCycle_Xeon16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := platform.MustNew(platform.Xeon16, 1)
		sys := core.NewSystem(p, core.Config{N: 2000, Seed: 2018})
		sys.RunMajorCycles(1)
	}
}

// Table T-DET — repeated identical runs (the determinism check).
func BenchmarkDeterminism_RepeatRun(b *testing.B) {
	p := platform.MustNew(platform.TitanXPascal, 1)
	w, f := benchWorld(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc, fc := w.Clone(), f.Clone()
		b.StartTimer()
		p.Track(wc, fc)
	}
}

// Table A-KRN — fused versus split Tasks 2+3 kernels.
func BenchmarkKernelSplit_Fused(b *testing.B) {
	eng := cuda.NewEngine(cuda.GeForce9800GT)
	w, _ := benchWorld(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		eng.CheckCollisionPath(wc)
	}
}

func BenchmarkKernelSplit_Split(b *testing.B) {
	eng := cuda.NewEngine(cuda.GeForce9800GT)
	w, _ := benchWorld(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		eng.DetectOnly(wc)
		eng.ResolveOnly(wc)
	}
}

// Table A-BOX — correlation pass-count ablation.
func benchBoxPasses(b *testing.B, passes int) {
	b.Helper()
	root := rng.New(2018)
	w := airspace.NewWorld(2000, root.Split())
	f := radar.Generate(w, 0.8, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc, fc := w.Clone(), f.Clone()
		b.StartTimer()
		tasks.CorrelateN(wc, fc, passes)
	}
}

func BenchmarkBoxPasses_1(b *testing.B) { benchBoxPasses(b, 1) }
func BenchmarkBoxPasses_2(b *testing.B) { benchBoxPasses(b, 2) }
func BenchmarkBoxPasses_3(b *testing.B) { benchBoxPasses(b, 3) }

// Reference implementations, for calibrating the simulators' host cost.
func BenchmarkReference_Task1(b *testing.B) {
	w, f := benchWorld(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc, fc := w.Clone(), f.Clone()
		b.StartTimer()
		tasks.Correlate(wc, fc)
	}
}

func BenchmarkReference_Task23(b *testing.B) {
	w, _ := benchWorld(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		tasks.DetectResolve(wc)
	}
}

// Extension — the terrain-avoidance task (related work [11], Section
// 7.2 future work) on the reference path and the CUDA engine.
func BenchmarkTerrain_Reference(b *testing.B) {
	root := rng.New(2018)
	g := terrain.Generate(4, 40, 14000, root.Split())
	w := airspace.NewWorld(benchN, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		terrain.Avoid(wc, g, terrain.DefaultHorizonPeriods, terrain.DefaultClearanceFt)
	}
}

func BenchmarkTerrain_CUDA(b *testing.B) {
	root := rng.New(2018)
	g := terrain.Generate(4, 40, 14000, root.Split())
	w := airspace.NewWorld(benchN, root.Split())
	eng := cuda.NewEngine(cuda.TitanXPascal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		terrain.AvoidCUDA(eng, wc, g, terrain.DefaultHorizonPeriods, terrain.DefaultClearanceFt)
	}
}

// Extension — the conflict-priority display list: Batcher's bitonic
// network on the CUDA engine vs the AP's min-reduce/step idiom.
func BenchmarkPriority_CUDABitonic(b *testing.B) {
	w, _ := benchWorld(benchN)
	tasks.Detect(w)
	eng := cuda.NewEngine(cuda.TitanXPascal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		eng.ConflictPriority(wc)
	}
}

func BenchmarkPriority_APMinReduce(b *testing.B) {
	w, _ := benchWorld(benchN)
	tasks.Detect(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		m := ap.NewMachine(ap.STARAN, wc.N())
		b.StartTimer()
		ap.PriorityProgram(m, wc)
	}
}

// Extension — the wide-vector machines of Section 7.2.
func BenchmarkVector_Task1_XeonPhi(b *testing.B) {
	m := vector.New(vector.XeonPhi7210)
	w, f := benchWorld(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc, fc := w.Clone(), f.Clone()
		b.StartTimer()
		m.Track(wc, fc)
	}
}

func BenchmarkVector_Task23_XeonPhi(b *testing.B) {
	m := vector.New(vector.XeonPhi7210)
	w, _ := benchWorld(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		m.DetectResolve(wc)
	}
}

// Broad-phase pruning — one reference Task 2 detection pass per pair
// source (T-BP / results/broadphase.csv). pairChecks/op reports the
// exact pair-evaluation count alongside the wall time, so a single run
// shows both wins. Brute is quadratic and therefore only benchmarked to
// 10k aircraft; at 100k one all-pairs pass costs ~10^10 pair visits,
// minutes of wall time that would measure nothing the 10k point does
// not already show.
func benchDetectWith(b *testing.B, source string, n int) {
	b.Helper()
	w, _ := benchWorld(n)
	src := broadphase.MustNew(source)
	var checks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wc := w.Clone()
		b.StartTimer()
		st := tasks.DetectWith(wc, src)
		checks = st.PairChecks
	}
	b.ReportMetric(float64(checks), "pairChecks/op")
}

func BenchmarkBroadphase_Brute_1000(b *testing.B)   { benchDetectWith(b, broadphase.BruteName, 1000) }
func BenchmarkBroadphase_Brute_10000(b *testing.B)  { benchDetectWith(b, broadphase.BruteName, 10000) }
func BenchmarkBroadphase_Grid_1000(b *testing.B)    { benchDetectWith(b, broadphase.GridName, 1000) }
func BenchmarkBroadphase_Grid_10000(b *testing.B)   { benchDetectWith(b, broadphase.GridName, 10000) }
func BenchmarkBroadphase_Grid_100000(b *testing.B)  { benchDetectWith(b, broadphase.GridName, 100000) }
func BenchmarkBroadphase_Sweep_1000(b *testing.B)   { benchDetectWith(b, broadphase.SweepName, 1000) }
func BenchmarkBroadphase_Sweep_10000(b *testing.B)  { benchDetectWith(b, broadphase.SweepName, 10000) }
func BenchmarkBroadphase_Sweep_100000(b *testing.B) { benchDetectWith(b, broadphase.SweepName, 100000) }

// Extension — radar-network report generation (multi-site coverage,
// cones of silence, dropouts).
func BenchmarkRadarNet_Generate(b *testing.B) {
	net := radarnet.NewGrid(4, 4, 80, 2, 0.1, radar.DefaultNoise)
	w, _ := benchWorld(benchN)
	r := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Generate(w, r)
	}
}
