package serve

import (
	"sync"
	"sync/atomic"
)

// job is one admitted simulation run: the unit the queue schedules,
// the flight registry dedupes on, and every waiting request blocks on.
type job struct {
	cfg         RunConfig
	key         string
	interactive bool

	// waiters counts requests currently blocked on done. When it drops
	// to zero before execution starts, the executor skips the run —
	// every caller has already timed out or disconnected.
	waiters atomic.Int32

	// done is closed by the executor after res/err are set.
	done chan struct{}
	res  *Result
	err  error
	// fromCache marks a pre-completed job manufactured from a cache
	// entry found during flight registration (see flights.join).
	fromCache bool
}

func newJob(cfg RunConfig, key string, interactive bool) *job {
	return &job{cfg: cfg, key: key, interactive: interactive, done: make(chan struct{})}
}

// completedJob wraps an already-known result as a finished job.
func completedJob(res *Result) *job {
	j := &job{res: res, done: make(chan struct{}), fromCache: true}
	close(j.done)
	return j
}

// flights is the single-flight registry: at most one live job exists
// per canonical key, so K concurrent identical requests share exactly
// one underlying execution.
type flights struct {
	mu sync.Mutex
	m  map[string]*job
}

func newFlights() *flights {
	return &flights{m: make(map[string]*job)}
}

// join returns the in-flight job for key, or registers the one built
// by create. created reports whether this caller became the flight
// leader. create returns track=false for jobs that must not be
// registered (already complete); when it errors (queue full, draining)
// nothing is registered and the error is returned.
func (f *flights) join(key string, create func() (j *job, track bool, err error)) (*job, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if j, ok := f.m[key]; ok {
		return j, false, nil
	}
	j, track, err := create()
	if err != nil {
		return nil, false, err
	}
	if track {
		f.m[key] = j
	}
	return j, true, nil
}

// remove drops key from the registry. The executor calls it after the
// result is cached, so lookups always find the run in the cache or in
// flight — never neither.
func (f *flights) remove(key string) {
	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
}

// inflight returns the number of registered flights.
func (f *flights) inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}
