// Fixture for the noalloc analyzer: annotated functions (declarations,
// methods, generic functions, and inline closures) must not contain
// heap-allocating constructs; unannotated functions may do anything.
package fixture

import "fmt"

type sink struct {
	buf   []int32
	total int
}

// Annotated method: appending through a field is the steady-state
// scratch idiom and stays legal; everything else below is flagged.
//
//atm:noalloc
func (s *sink) add(vals []int32) {
	s.buf = append(s.buf, vals...) // clean: machine-owned scratch
	for _, v := range vals {
		s.total += int(v)
	}
}

//atm:noalloc
func allocates(n int) []int {
	out := make([]int, n) // want "make allocates"
	p := new(int)         // want "new may allocate"
	_ = p
	m := map[int]int{} // want "map literal allocates"
	_ = m
	return out
}

//atm:noalloc
func growsFreshSlice(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v) // want "append grows \"out\", a slice born empty in this function"
	}
	return out
}

//atm:noalloc
func appendsToParam(dst []int, vals []int) []int {
	for _, v := range vals {
		dst = append(dst, v) // clean: caller-provided scratch
	}
	return dst
}

//atm:noalloc
func capturesClosure(n int) int {
	f := func() int { return n } // want "closure literal may allocate"
	return f()
}

//atm:noalloc
func spawns(ch chan int) {
	go send(ch) // want "go statement allocates a goroutine"
}

func send(ch chan int) { ch <- 1 }

//atm:noalloc
func formats(x int) {
	fmt.Println(x) // want "fmt.Println formats and allocates"
}

//atm:noalloc
func concatenates(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//atm:noalloc
func converts(b []byte) string {
	return string(b) // want "conversion between string and byte/rune slice"
}

//atm:noalloc
func boxes(x int, p *int) (any, any) {
	var i any = x // want "boxes a non-pointer int into an interface"
	_ = i
	return x, p // want "boxes a non-pointer int into an interface"
}

// Generic function: the directive attaches to the declaration the same
// way; instantiation-independent constructs are checked syntactically.
//
//atm:noalloc
func maxOf[T int32 | int64 | float64](vals []T, def T) T {
	best := def
	for _, v := range vals { // clean: pure fold, no allocation
		if v > best {
			best = v
		}
	}
	return best
}

//atm:noalloc
func genericAllocates[T any](n int) []T {
	return make([]T, n) // want "make allocates"
}

// Inline closure annotation: the directive binds to the literal on the
// next line, not to the enclosing function (which allocates freely).
func dispatch(n int, run func(func(int))) []int {
	out := make([]int, n) // clean: enclosing function is unannotated
	//atm:noalloc
	run(func(i int) {
		out[i] = i * i // clean body
	})
	//atm:noalloc
	run(func(i int) {
		out = append(out[:0], make([]int, i)...) // want "make allocates"
	})
	return out
}

// unannotated may allocate at will.
func unannotated(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
