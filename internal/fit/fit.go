// Package fit implements the polynomial least-squares curve fitting and
// "goodness of fit" statistics the paper obtains from MATLAB's Curve
// Fitting Toolbox (Section 6.2): given timing series over aircraft
// counts, it fits linear and quadratic models and reports the four
// MATLAB goodness values — SSE, R-square, adjusted R-square and RMSE —
// that the paper uses to argue the NVIDIA curves are linear or
// "quadratic with a very small quadratic coefficient".
package fit

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Result is one fitted polynomial with its goodness-of-fit report.
type Result struct {
	// Coeffs holds the polynomial coefficients, constant term first:
	// y = Coeffs[0] + Coeffs[1] x + Coeffs[2] x^2 + ...
	Coeffs []float64
	// SSE is the sum of squared errors of the fit.
	SSE float64
	// R2 is the coefficient of determination.
	R2 float64
	// AdjR2 is R2 adjusted for the residual degrees of freedom.
	AdjR2 float64
	// RMSE is the root mean squared error (residual standard error).
	RMSE float64
	// N is the number of points fitted.
	N int
}

// Degree returns the polynomial degree.
func (r *Result) Degree() int { return len(r.Coeffs) - 1 }

// Eval evaluates the fitted polynomial at x (Horner's method).
func (r *Result) Eval(x float64) float64 {
	y := 0.0
	for i := len(r.Coeffs) - 1; i >= 0; i-- {
		y = y*x + r.Coeffs[i]
	}
	return y
}

// String formats the polynomial and its goodness values the way the
// paper's MATLAB reports read.
func (r *Result) String() string {
	var b strings.Builder
	for i := len(r.Coeffs) - 1; i >= 0; i-- {
		c := r.Coeffs[i]
		switch {
		case i == len(r.Coeffs)-1:
			fmt.Fprintf(&b, "%.6g", c)
		case c < 0:
			fmt.Fprintf(&b, " - %.6g", -c)
		default:
			fmt.Fprintf(&b, " + %.6g", c)
		}
		switch i {
		case 0:
		case 1:
			b.WriteString("*x")
		default:
			fmt.Fprintf(&b, "*x^%d", i)
		}
	}
	fmt.Fprintf(&b, "  (SSE=%.4g, R2=%.6f, adjR2=%.6f, RMSE=%.4g)", r.SSE, r.R2, r.AdjR2, r.RMSE)
	return b.String()
}

// ErrBadInput reports unusable fitting input.
var ErrBadInput = errors.New("fit: need len(x) == len(y) and more points than coefficients")

// Poly fits a polynomial of the given degree to (x, y) by least
// squares, solving the normal equations with partially pivoted Gaussian
// elimination. It requires len(x) == len(y) > degree+1 distinct points.
func Poly(x, y []float64, degree int) (*Result, error) {
	n := len(x)
	if degree < 0 || n != len(y) || n <= degree+1 {
		return nil, ErrBadInput
	}
	m := degree + 1

	// Scale x to [0, 1]-ish to keep the Vandermonde system conditioned
	// for N in the tens of thousands, then unscale the coefficients.
	xmax := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > xmax {
			xmax = a
		}
	}
	if xmax == 0 {
		xmax = 1
	}

	// Normal equations: (V^T V) c = V^T y with V[i][j] = (x[i]/xmax)^j.
	ata := make([][]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m+1)
	}
	for k := 0; k < n; k++ {
		xs := x[k] / xmax
		pow := make([]float64, m)
		p := 1.0
		for j := 0; j < m; j++ {
			pow[j] = p
			p *= xs
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				ata[i][j] += pow[i] * pow[j]
			}
			ata[i][m] += pow[i] * y[k]
		}
	}

	coeffs, err := solve(ata)
	if err != nil {
		return nil, err
	}
	// Unscale: c_j corresponds to (x/xmax)^j.
	scale := 1.0
	for j := range coeffs {
		coeffs[j] /= scale
		scale *= xmax
	}

	r := &Result{Coeffs: coeffs, N: n}
	r.goodness(x, y)
	return r, nil
}

// solve performs Gaussian elimination with partial pivoting on the
// augmented matrix a (m rows, m+1 columns), returning the solution.
func solve(a [][]float64) ([]float64, error) {
	m := len(a)
	for col := 0; col < m; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, errors.New("fit: singular normal equations (degenerate x values)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate.
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	sol := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		v := a[r][m]
		for c := r + 1; c < m; c++ {
			v -= a[r][c] * sol[c]
		}
		sol[r] = v / a[r][r]
	}
	return sol, nil
}

// goodness fills in MATLAB's four goodness-of-fit statistics.
func (r *Result) goodness(x, y []float64) {
	n := len(x)
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)

	sse, sst := 0.0, 0.0
	for i := range x {
		res := y[i] - r.Eval(x[i])
		sse += res * res
		dev := y[i] - mean
		sst += dev * dev
	}
	r.SSE = sse
	if sst > 0 {
		r.R2 = 1 - sse/sst
	} else {
		r.R2 = 1 // constant data perfectly fitted
	}
	dof := n - len(r.Coeffs)
	if dof > 0 && sst > 0 {
		r.AdjR2 = 1 - (sse/float64(dof))/(sst/float64(n-1))
	} else {
		r.AdjR2 = r.R2
	}
	if dof > 0 {
		r.RMSE = math.Sqrt(sse / float64(dof))
	}
}

// Linear fits y = c0 + c1 x.
func Linear(x, y []float64) (*Result, error) { return Poly(x, y, 1) }

// Quadratic fits y = c0 + c1 x + c2 x^2.
func Quadratic(x, y []float64) (*Result, error) { return Poly(x, y, 2) }

// NearLinear classifies a quadratic fit by term contribution: the
// curve is "close to linear" when the quadratic term contributes little
// compared to the linear term over the measured domain, i.e.
// |c2| * xmax <= tol * |c1|. It returns the contribution ratio. Note
// that for curves dominated by a constant overhead floor this ratio is
// misleading; EffectiveExponent is the robust shape classifier.
func NearLinear(q *Result, xmax, tol float64) (ratio float64, nearLinear bool) {
	if q.Degree() < 2 {
		return 0, true
	}
	c1, c2 := q.Coeffs[1], q.Coeffs[2]
	if c1 == 0 {
		return math.Inf(1), false
	}
	ratio = math.Abs(c2) * xmax / math.Abs(c1)
	return ratio, ratio <= tol
}

// EffectiveExponent fits log y = a log x + b and returns the slope a —
// the effective growth exponent of the curve over the measured domain.
// A curve that "looks linear" on the paper's figures has an exponent
// near 1 even when a strict quadratic term is present under a constant
// overhead floor, and a genuinely quadratic curve approaches 2. All
// points must be strictly positive.
func EffectiveExponent(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 3 {
		return 0, ErrBadInput
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return 0, errors.New("fit: EffectiveExponent needs positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	r, err := Poly(lx, ly, 1)
	if err != nil {
		return 0, err
	}
	return r.Coeffs[1], nil
}
