// Package radarnet models the radar environment the paper's Section
// 4.1 describes but simplifies away: "most aircraft in the US are
// within the range of 2 to 6 radars, [but] a radar report may not be
// obtained for some aircraft during some periods."
//
// A Network is a set of radar sites with finite range and a cone of
// silence directly overhead (a radar cannot see targets near its
// zenith). Each period, an aircraft is reported by its nearest covering
// site — unless every covering site has it inside the cone, it is out
// of range of all sites, or the report is lost to a dropout draw. The
// resulting frame has at most one report per aircraft (the paper's
// simplification) but, unlike radar.Generate, can have fewer reports
// than aircraft, which exercises Task 1's dead-reckoning path: aircraft
// without a report keep their expected position until the next period.
package radarnet

import (
	"fmt"
	"math"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
)

// Site is one radar installation.
type Site struct {
	// ID indexes the site in its network.
	ID int32
	// X, Y is the site position in field coordinates (nm).
	X, Y float64
	// RangeNM is the detection radius.
	RangeNM float64
	// ConeNM is the cone-of-silence radius: targets within this
	// horizontal distance of the site are invisible to it (the zenith
	// blind spot, projected to the ground for the 2-D field).
	ConeNM float64
}

// Covers reports whether the site can see a target at (x, y).
func (s *Site) Covers(x, y float64) bool {
	d := math.Hypot(x-s.X, y-s.Y)
	return d <= s.RangeNM && d > s.ConeNM
}

// InCone reports whether (x, y) is inside the site's cone of silence.
func (s *Site) InCone(x, y float64) bool {
	return math.Hypot(x-s.X, y-s.Y) <= s.ConeNM
}

// Network is a set of sites plus the channel model.
type Network struct {
	Sites []Site
	// DropoutProb is the per-aircraft per-period probability that the
	// selected site's return is lost.
	DropoutProb float64
	// Noise is the measurement error amplitude in nm.
	Noise float64
}

// NewGrid places rows x cols sites on a regular grid over the field.
// With range >= the grid diagonal pitch, every field point is covered
// by several sites, matching the paper's "2 to 6 radars" remark.
func NewGrid(rows, cols int, rangeNM, coneNM, dropout, noise float64) *Network {
	if rows <= 0 || cols <= 0 || rangeNM <= 0 || coneNM < 0 || dropout < 0 || dropout > 1 {
		panic(fmt.Sprintf("radarnet: bad grid parameters %dx%d range=%v cone=%v dropout=%v",
			rows, cols, rangeNM, coneNM, dropout))
	}
	net := &Network{DropoutProb: dropout, Noise: noise}
	pitchX := 2 * airspace.FieldHalf / float64(cols)
	pitchY := 2 * airspace.FieldHalf / float64(rows)
	id := int32(0)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			net.Sites = append(net.Sites, Site{
				ID:      id,
				X:       -airspace.FieldHalf + (float64(c)+0.5)*pitchX,
				Y:       -airspace.FieldHalf + (float64(r)+0.5)*pitchY,
				RangeNM: rangeNM,
				ConeNM:  coneNM,
			})
			id++
		}
	}
	return net
}

// CoverageAt returns how many sites cover the point and whether at
// least one site holds it inside a cone of silence while no site covers
// it (the true blind case).
func (n *Network) CoverageAt(x, y float64) (covering int, blindInCone bool) {
	inCone := false
	for i := range n.Sites {
		s := &n.Sites[i]
		if s.Covers(x, y) {
			covering++
		} else if s.InCone(x, y) {
			inCone = true
		}
	}
	return covering, covering == 0 && inCone
}

// Stats describes one generated frame.
type Stats struct {
	// Reported is the number of aircraft with a report this period.
	Reported int
	// OutOfRange is the number of aircraft no site could see.
	OutOfRange int
	// ConeBlind is the number of aircraft invisible only because every
	// site that is close enough holds them in its cone of silence.
	ConeBlind int
	// Dropouts is the number of reports lost to the channel.
	Dropouts int
	// MeanCoverage is the average number of covering sites per aircraft.
	MeanCoverage float64
}

// Generate produces the period's radar frame: at most one report per
// aircraft, from its nearest covering site, with noise; aircraft that
// are out of range, cone-blind or dropped get no report. The report
// list is shuffled with the paper's fourth-reversal.
func (n *Network) Generate(w *airspace.World, r *rng.Rand) (*radar.Frame, Stats) {
	var st Stats
	f := &radar.Frame{}
	totalCoverage := 0
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		ex := a.X + a.DX
		ey := a.Y + a.DY

		best := -1
		bestDist := math.Inf(1)
		covering := 0
		inCone := false
		for sIdx := range n.Sites {
			s := &n.Sites[sIdx]
			d := math.Hypot(ex-s.X, ey-s.Y)
			switch {
			case d <= s.ConeNM:
				inCone = true
			case d <= s.RangeNM:
				covering++
				if d < bestDist {
					bestDist = d
					best = sIdx
				}
			}
		}
		totalCoverage += covering
		if best < 0 {
			if inCone {
				st.ConeBlind++
			} else {
				st.OutOfRange++
			}
			continue
		}
		if r.Float64() < n.DropoutProb {
			st.Dropouts++
			continue
		}
		f.Reports = append(f.Reports, radar.Report{
			RX:        ex + r.Noise(n.Noise),
			RY:        ey + r.Noise(n.Noise),
			MatchWith: radar.Unmatched,
		})
		st.Reported++
	}
	if w.N() > 0 {
		st.MeanCoverage = float64(totalCoverage) / float64(w.N())
	}
	radar.ShuffleFourths(f.Reports)
	return f, st
}
