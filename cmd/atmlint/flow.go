package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/gcdiag"
)

// runFlowCmd implements `atmlint flow [-fix] [patterns...]`: load the
// module, build the whole-program call graph, and run the complete
// suite — per-package analyzers plus the interprocedural ones
// (noallocflow, modeledtimeflow, stalewaiver). Diagnostics print in
// (file, offset, analyzer) order; exit status mirrors go vet (0 clean,
// 1 tool failure, 2 findings).
func runFlowCmd(args []string) int {
	fs := flag.NewFlagSet("flow", flag.ExitOnError)
	fix := fs.Bool("fix", false, "print a deletion listing for stale //atm:allow waivers")
	fs.Parse(args)

	fset, pkgs, err := lint.LoadPackages(fs.Args()...)
	if err != nil {
		log.Print(err)
		return 1
	}
	g := lint.BuildGraph(fset, pkgs)
	results := lint.RunFlowSuite(g)

	exit := 0
	for _, res := range results {
		if res.Err != nil {
			log.Printf("analyzer %s failed: %v", res.Analyzer, res.Err)
			exit = 1
		}
	}
	ordered := lint.OrderDiagnostics(fset, results)
	for _, d := range ordered {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer)
		if exit == 0 {
			exit = 2
		}
	}
	if *fix {
		printed := false
		for _, d := range ordered {
			if d.Analyzer != "stalewaiver" {
				continue
			}
			if !printed {
				fmt.Println("# stale waivers — delete the //atm:allow comment (or the trailing clause) at:")
				printed = true
			}
			fmt.Printf("%s:%d\n", d.Position.Filename, d.Position.Line)
		}
	}
	return exit
}

// runGraphCmd implements `atmlint graph -pkg <import path> [patterns...]`:
// dump the computed call graph for one package as Graphviz DOT.
func runGraphCmd(args []string) int {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	pkg := fs.String("pkg", "", "import path of the package whose call graph to dump (required)")
	fs.Parse(args)
	if *pkg == "" {
		log.Print("graph: -pkg is required (e.g. -pkg repro/internal/tasks)")
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := lint.LoadPackages(patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	g := lint.BuildGraph(fset, pkgs)
	found := false
	for _, p := range pkgs {
		if p.Path == *pkg {
			found = true
			break
		}
	}
	if !found {
		log.Printf("graph: package %s not in the loaded set", *pkg)
		return 1
	}
	if err := g.WriteDOT(os.Stdout, *pkg); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// runGcdiagCmd implements `atmlint gcdiag [-diag file] [roots...]`:
// enforce //atm:inline, //atm:noescape, and //atm:nobce against the
// compiler output produced by scripts/gcdiag.sh.
func runGcdiagCmd(args []string) int {
	fs := flag.NewFlagSet("gcdiag", flag.ExitOnError)
	diagPath := fs.String("diag", "", "file holding `go build -gcflags='-m -m -d=ssa/check_bce/debug=1'` stderr (default: stdin)")
	fs.Parse(args)
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	directives, err := gcdiag.Collect(roots)
	if err != nil {
		log.Print(err)
		return 1
	}
	in := os.Stdin
	if *diagPath != "" {
		f, err := os.Open(*diagPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer f.Close()
		in = f
	}
	diags, err := gcdiag.ParseDiagnostics(in)
	if err != nil {
		log.Print(err)
		return 1
	}
	if len(directives) > 0 && len(diags) == 0 {
		log.Print("gcdiag: no compiler diagnostics parsed; run via scripts/gcdiag.sh (the build must use -gcflags='-m -m -d=ssa/check_bce/debug=1')")
		return 1
	}
	violations := gcdiag.Check(directives, diags)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, v)
	}
	if len(violations) > 0 {
		return 2
	}
	fmt.Printf("gcdiag: %d directives verified against %d compiler diagnostics\n", len(directives), len(diags))
	return 0
}
