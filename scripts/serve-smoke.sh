#!/usr/bin/env sh
# serve-smoke.sh: end-to-end smoke test for cmd/atmserve.
#
# Starts the server, waits for /healthz, issues one simulation request,
# asserts the golden measurement row is present, then sends SIGTERM and
# verifies the server drains and exits cleanly. Used by `make
# serve-smoke` and the CI serve-smoke job.
#
# Usage: serve-smoke.sh <path-to-atmserve-binary>
set -eu

BIN=${1:?usage: serve-smoke.sh <atmserve-binary>}
ADDR=${SERVE_ADDR:-localhost:18080}
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

"$BIN" -addr "$ADDR" &
PID=$!
# Make sure a failed assertion never leaves the server running.
trap 'kill "$PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

# Wait for readiness (the server binds before serving, so this is fast).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "serve-smoke: server did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

STATUS=$(curl -s -o "$OUT" -w '%{http_code}' \
    "http://$ADDR/v1/simulate?platform=titanx&n=4000&periods=16&seed=2018")
if [ "$STATUS" != 200 ]; then
    echo "serve-smoke: expected HTTP 200, got $STATUS" >&2
    cat "$OUT" >&2
    exit 1
fi
# Golden row: the response must carry the task1 measurement row and a
# met-deadlines verdict for the canonical titanx/4000 configuration.
grep -q '"task":"task1:track+correlate"' "$OUT"
grep -q '"deadlines_met":true' "$OUT"

# A repeated request must be byte-identical (served from cache).
OUT2=$(mktemp)
curl -s -o "$OUT2" \
    "http://$ADDR/v1/simulate?platform=titanx&n=4000&periods=16&seed=2018"
if ! cmp -s "$OUT" "$OUT2"; then
    echo "serve-smoke: cached response differs from fresh response" >&2
    rm -f "$OUT2"
    exit 1
fi
rm -f "$OUT2"

# Graceful drain: SIGTERM must lead to a clean exit (status 0).
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "serve-smoke: server did not exit cleanly on SIGTERM" >&2
    exit 1
fi
trap 'rm -f "$OUT"' EXIT
echo "serve-smoke: OK"
