package ap

import (
	"testing"
	"time"
)

func TestTiles(t *testing.T) {
	cases := []struct {
		pes, n, tiles int
	}{
		{0, 100000, 1}, // ideal AP: one PE per record
		{192, 0, 1},
		{192, 1, 1},
		{192, 192, 1},
		{192, 193, 2},
		{192, 32000, 167},
	}
	for _, c := range cases {
		m := NewMachine(Profile{PEs: c.pes, ClockHz: 1e6, ArithCycles: 1}, c.n)
		if got := m.Tiles(); got != c.tiles {
			t.Errorf("PEs=%d n=%d: Tiles=%d, want %d", c.pes, c.n, got, c.tiles)
		}
	}
}

func TestNegativeNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine(-1) did not panic")
		}
	}()
	NewMachine(STARAN, -1)
}

func TestCycleChargingWide(t *testing.T) {
	m := NewMachine(Profile{PEs: 10, ClockHz: 1e6, ArithCycles: 3}, 25) // 3 tiles
	m.ParallelOp(4, func(i int) {})
	if m.Cycles() != 4*3*3 {
		t.Fatalf("cycles = %d, want %d", m.Cycles(), 4*3*3)
	}
}

func TestIdealAPConstantTimePass(t *testing.T) {
	// On the ideal AP one wide operation costs the same no matter how
	// many records there are — the property behind the linear curves.
	small := NewMachine(STARAN, 100)
	big := NewMachine(STARAN, 100000)
	small.ParallelOp(5, func(i int) {})
	big.ParallelOp(5, func(i int) {})
	if small.Cycles() != big.Cycles() {
		t.Fatalf("ideal AP pass cost depends on N: %d vs %d", small.Cycles(), big.Cycles())
	}
}

func TestClearSpeedTiledPassScales(t *testing.T) {
	small := NewMachine(ClearSpeedCSX600, 192)
	big := NewMachine(ClearSpeedCSX600, 1920)
	small.ParallelOp(5, func(i int) {})
	big.ParallelOp(5, func(i int) {})
	if big.Cycles() != 10*small.Cycles() {
		t.Fatalf("tiled pass: %d vs %d (want 10x)", big.Cycles(), small.Cycles())
	}
}

func TestSearchAndReductions(t *testing.T) {
	m := NewMachine(STARAN, 10)
	m.Search(1, func(i int) bool { return i%2 == 0 })
	if got := m.CountResponders(); got != 5 {
		t.Fatalf("CountResponders = %d, want 5", got)
	}
	if !m.AnyResponder() {
		t.Fatal("AnyResponder = false")
	}
	if got := m.FirstResponder(); got != 0 {
		t.Fatalf("FirstResponder = %d, want 0", got)
	}
	m.ClearResponder(0)
	if got := m.FirstResponder(); got != 2 {
		t.Fatalf("FirstResponder after clear = %d, want 2", got)
	}
	m.MaskAnd(func(i int) bool { return i > 5 })
	if got := m.CountResponders(); got != 2 { // 6, 8
		t.Fatalf("after MaskAnd: %d responders, want 2", got)
	}
}

func TestMinMaxReduce(t *testing.T) {
	m := NewMachine(STARAN, 6)
	vals := []float64{5, 3, 9, 3, 7, 1}
	m.Search(1, func(i int) bool { return i != 5 }) // exclude the 1
	min, argMin := m.MinReduce(100, func(i int) float64 { return vals[i] })
	if min != 3 || argMin != 1 {
		t.Fatalf("MinReduce = (%v,%d), want (3,1) — lowest index wins ties", min, argMin)
	}
	max, argMax := m.MaxReduce(-100, func(i int) float64 { return vals[i] })
	if max != 9 || argMax != 2 {
		t.Fatalf("MaxReduce = (%v,%d), want (9,2)", max, argMax)
	}
}

func TestReduceNoResponders(t *testing.T) {
	m := NewMachine(STARAN, 4)
	m.Search(1, func(i int) bool { return false })
	min, arg := m.MinReduce(42, func(i int) float64 { return 0 })
	if min != 42 || arg != -1 {
		t.Fatalf("MinReduce with no responders = (%v,%d)", min, arg)
	}
	if m.AnyResponder() {
		t.Fatal("AnyResponder with empty mask")
	}
	if m.FirstResponder() != -1 {
		t.Fatal("FirstResponder with empty mask")
	}
}

func TestTimeConversion(t *testing.T) {
	m := NewMachine(Profile{PEs: 0, ClockHz: 1e6, ArithCycles: 1}, 1)
	m.ParallelOp(1000, func(i int) {}) // 1000 cycles at 1 MHz = 1 ms
	if got := m.Time(); got != time.Millisecond {
		t.Fatalf("Time = %v, want 1ms", got)
	}
	m.ResetCycles()
	if m.Time() != 0 {
		t.Fatal("ResetCycles did not zero the clock")
	}
}

func TestZeroRecordMachine(t *testing.T) {
	m := NewMachine(STARAN, 0)
	m.Search(1, func(i int) bool { return true })
	if m.CountResponders() != 0 || m.AnyResponder() {
		t.Fatal("empty machine has responders")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range Profiles() {
		if p.ClockHz <= 0 || p.ArithCycles <= 0 || p.ReduceCycles <= 0 {
			t.Errorf("profile %q has non-positive costs: %+v", p.Name, p)
		}
	}
	if ClearSpeedCSX600.PEs != 192 {
		t.Errorf("ClearSpeed must model 2 chips x 96 PEs, got %d", ClearSpeedCSX600.PEs)
	}
	if STARAN.PEs != 0 {
		t.Error("STARAN profile must model one PE per record")
	}
}
