package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/broadphase"
	"repro/internal/platform"
	"repro/internal/scenario"
)

// ValidationError reports a front-end configuration rejected before any
// simulation work ran. Command-line front ends map it to exit code 2
// (usage error, distinct from runtime failures), the HTTP front end to
// 400 Bad Request.
type ValidationError struct {
	Msg string
}

func (e *ValidationError) Error() string { return e.Msg }

func validationErrorf(format string, args ...any) *ValidationError {
	return &ValidationError{Msg: fmt.Sprintf(format, args...)}
}

// RunParams carries the front-end knobs shared by atmsim, atmbench and
// atmserve, so the three binaries reject bad configurations through one
// helper with one set of messages. A front end that does not expose a
// knob pins it to a known-good value at the call site (atmbench fixes
// its own platforms and aircraft counts, for example) so Validate
// checks exactly the flags that are real.
type RunParams struct {
	// Platform is the machine registry key. Empty is skipped: it means
	// the front end selects platforms itself rather than "no platform".
	Platform string
	// N is the aircraft count; it must be positive.
	N int
	// Periods is the number of half-second scheduling periods to run;
	// it must be positive. Front ends whose knob is major cycles pass
	// cycles * sched.PeriodsPerMajorCycle, which rejects non-positive
	// cycle counts too.
	Periods int
	// Workers is the host worker-pool size. 0 selects the host default
	// (GOMAXPROCS) and is valid; negative counts are not.
	Workers int
	// Scenario is empty (the paper's uniform random setup) or a
	// scenario spec string ("family" or "family:key=val,...").
	Scenario string
	// PairSource is empty (the paper's all-pairs kernels) or a
	// registered broad-phase source name.
	PairSource string
	// Coherent asks for the temporal-coherence incremental broad phase
	// (-coherent). It is only meaningful with a pair source configured.
	Coherent bool
	// ParShard asks for the worker-parallel sharded broad phase with the
	// batched pair kernel (-parshard). It is only meaningful with a pair
	// source configured.
	ParShard bool
}

// Validate checks every knob and returns a *ValidationError describing
// the first problem, or nil.
func (p RunParams) Validate() error {
	if p.N <= 0 {
		return validationErrorf("need a positive aircraft count (-n), got %d", p.N)
	}
	if p.Periods <= 0 {
		return validationErrorf("need a positive number of scheduling periods (non-positive -periods/-cycles), got %d", p.Periods)
	}
	if p.Workers < 0 {
		return validationErrorf("need a non-negative worker count (-workers; 0 = host default), got %d", p.Workers)
	}
	if p.Platform != "" && !KnownPlatform(p.Platform) {
		known := append(platform.Names(), platform.ExtensionNames()...)
		sort.Strings(known)
		return validationErrorf("unknown platform %q (known: %s)", p.Platform, strings.Join(known, ", "))
	}
	if p.PairSource != "" {
		if _, err := broadphase.New(p.PairSource); err != nil {
			return validationErrorf("unknown pair source %q (known: %s; empty = all-pairs)",
				p.PairSource, strings.Join(broadphase.Names(), ", "))
		}
	}
	if p.Scenario != "" {
		spec, err := scenario.ParseSpec(p.Scenario)
		if err != nil {
			return validationErrorf("bad scenario (-scenario): %v", err)
		}
		if err := spec.Validate(p.N); err != nil {
			return validationErrorf("bad scenario (-scenario): %v", err)
		}
	}
	if p.Coherent && p.PairSource == "" {
		return validationErrorf("-coherent needs a pair source (-pairsource; \"sweep\" runs incrementally, others ignore the flag)")
	}
	if p.ParShard && p.PairSource == "" {
		return validationErrorf("-parshard needs a pair source (-pairsource; \"sweep\" runs sharded, others ignore the flag)")
	}
	return nil
}

// KnownPlatform reports whether name is a registered machine key
// (paper set or extension set).
func KnownPlatform(name string) bool {
	for _, n := range platform.Names() {
		if n == name {
			return true
		}
	}
	for _, n := range platform.ExtensionNames() {
		if n == name {
			return true
		}
	}
	return false
}
