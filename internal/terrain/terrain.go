// Package terrain implements the terrain-avoidance ATM task — the
// airspace-deconfliction problem of Thompson et al. [11] that the paper
// contrasts with its aircraft-to-aircraft work, and part of the "all
// basic ATM tasks" future work of Section 7.2 (it is Task "terrain
// avoidance" in the Yuan/Baker task set [12, 13]).
//
// Since no terrain database ships with the repository, Generate
// synthesizes a deterministic elevation grid from Gaussian hills; the
// avoidance task projects each aircraft's track ahead, samples the
// terrain under it, and commands a climb when the required clearance
// is violated.
package terrain

import (
	"fmt"
	"math"

	"repro/internal/airspace"
	"repro/internal/cuda"
	"repro/internal/rng"
)

// DefaultClearanceFt is the required height over terrain, following the
// standard minimum obstacle clearance of ~1000 ft.
const DefaultClearanceFt = 1000.0

// DefaultHorizonPeriods is how far ahead the track is checked: 3
// minutes of flight in half-second periods.
const DefaultHorizonPeriods = 360.0

// SampleStridePeriods is the along-track sampling interval. At the
// maximum speed of 600 knots an aircraft covers 1/12 nm per period, so
// a 12-period stride samples the terrain about once per nautical mile.
const SampleStridePeriods = 12.0

// Grid is an elevation model over the airfield.
type Grid struct {
	// CellNM is the grid pitch in nautical miles.
	CellNM float64
	// Cols, Rows span the whole field.
	Cols, Rows int
	// Elev holds elevations in feet, row-major.
	Elev []float64
}

// Generate builds a synthetic terrain of smooth Gaussian hills over the
// 256 x 256 nm field: hills random hills with peak elevations up to
// maxElevFt. The result is deterministic in r.
func Generate(cellNM float64, hills int, maxElevFt float64, r *rng.Rand) *Grid {
	if cellNM <= 0 || hills < 0 || maxElevFt < 0 {
		panic(fmt.Sprintf("terrain: bad parameters cell=%v hills=%d max=%v", cellNM, hills, maxElevFt))
	}
	side := int(math.Ceil(2 * airspace.FieldHalf / cellNM))
	g := &Grid{CellNM: cellNM, Cols: side, Rows: side, Elev: make([]float64, side*side)}

	type hill struct{ cx, cy, h, sigma float64 }
	hs := make([]hill, hills)
	for i := range hs {
		hs[i] = hill{
			cx:    r.Range(-airspace.FieldHalf, airspace.FieldHalf),
			cy:    r.Range(-airspace.FieldHalf, airspace.FieldHalf),
			h:     r.Range(0.2, 1) * maxElevFt,
			sigma: r.Range(4, 20), // nm
		}
	}
	for row := 0; row < side; row++ {
		for col := 0; col < side; col++ {
			x := -airspace.FieldHalf + (float64(col)+0.5)*cellNM
			y := -airspace.FieldHalf + (float64(row)+0.5)*cellNM
			e := 0.0
			for _, h := range hs {
				dx, dy := x-h.cx, y-h.cy
				e += h.h * math.Exp(-(dx*dx+dy*dy)/(2*h.sigma*h.sigma))
			}
			g.Elev[row*side+col] = e
		}
	}
	return g
}

// ElevationAt returns the bilinearly interpolated elevation at (x, y)
// in nautical-mile field coordinates; points outside the grid are at
// sea level.
func (g *Grid) ElevationAt(x, y float64) float64 {
	fx := (x+airspace.FieldHalf)/g.CellNM - 0.5
	fy := (y+airspace.FieldHalf)/g.CellNM - 0.5
	col := int(math.Floor(fx))
	row := int(math.Floor(fy))
	tx := fx - float64(col)
	ty := fy - float64(row)
	e00 := g.at(col, row)
	e10 := g.at(col+1, row)
	e01 := g.at(col, row+1)
	e11 := g.at(col+1, row+1)
	return e00*(1-tx)*(1-ty) + e10*tx*(1-ty) + e01*(1-tx)*ty + e11*tx*ty
}

func (g *Grid) at(col, row int) float64 {
	if col < 0 || row < 0 || col >= g.Cols || row >= g.Rows {
		return 0
	}
	return g.Elev[row*g.Cols+col]
}

// MaxElevation returns the highest cell in the grid.
func (g *Grid) MaxElevation() float64 {
	max := 0.0
	for _, e := range g.Elev {
		if e > max {
			max = e
		}
	}
	return max
}

// AvoidStats reports one terrain-avoidance pass.
type AvoidStats struct {
	// Violations is the number of aircraft whose projected track dips
	// below the required clearance within the horizon.
	Violations int
	// Climbs is the number of aircraft whose altitude was raised.
	Climbs int
	// Samples counts terrain lookups (the task's dominant cost).
	Samples int
}

// requiredAltitude returns the minimum safe altitude for aircraft a
// over its projected track, and whether its current altitude violates
// it.
func requiredAltitude(a *airspace.Aircraft, g *Grid, horizon, clearance float64) (float64, bool, int) {
	need := 0.0
	samples := 0
	for t := 0.0; t <= horizon; t += SampleStridePeriods {
		x := a.X + a.DX*t
		y := a.Y + a.DY*t
		if !airspace.InField(x, y) {
			break // tracks leaving the field re-enter over the far edge at sea level
		}
		samples++
		if e := g.ElevationAt(x, y) + clearance; e > need {
			need = e
		}
	}
	return need, a.Alt < need, samples
}

// Avoid runs terrain avoidance sequentially (the reference
// implementation): any aircraft whose track violates clearance within
// the horizon is climbed to the required altitude.
func Avoid(w *airspace.World, g *Grid, horizon, clearance float64) AvoidStats {
	var st AvoidStats
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		need, violated, samples := requiredAltitude(a, g, horizon, clearance)
		st.Samples += samples
		if violated {
			st.Violations++
			a.Alt = need
			st.Climbs++
		}
	}
	return st
}

// opsPerSample approximates the instruction cost of one bilinear
// terrain lookup plus the projection arithmetic.
const opsPerSample = 24

// AvoidCUDA runs terrain avoidance as a CUDA kernel on the given
// engine: one thread per aircraft, each sampling the (device-resident)
// terrain grid along its own track. Results are identical to Avoid;
// the modeled time additionally accounts the one-time grid upload.
func AvoidCUDA(eng *cuda.Engine, w *airspace.World, g *Grid, horizon, clearance float64) (AvoidStats, cuda.KernelStats) {
	var st AvoidStats
	dev := eng.Device()
	// Grid upload (8 bytes per cell).
	transfer := dev.TransferTime(len(g.Elev) * 8)
	violations := make([]int32, w.N())
	needAlt := make([]float64, w.N())
	samples := make([]int32, w.N())
	ac := w.Aircraft
	ks := dev.Launch("terrainAvoid", w.N(), func(t *cuda.Thread) {
		a := &ac[t.ID]
		need, violated, n := requiredAltitude(a, g, horizon, clearance)
		samples[t.ID] = int32(n)
		t.Ops(n * opsPerSample)
		t.Mem(64)
		if violated {
			violations[t.ID] = 1
			needAlt[t.ID] = need
		}
	})
	// Commit on the host side of the launch (ID-indexed, race-free).
	for i := range ac {
		st.Samples += int(samples[i])
		if violations[i] == 1 {
			st.Violations++
			ac[i].Alt = needAlt[i]
			st.Climbs++
		}
	}
	ks.Time += transfer
	return st, ks
}
