// Package core ties the reproduction together: it owns the simulated
// airfield, generates radar every period, drives the platform under
// test through the paper's 16-period major cycle, and accounts
// deadlines. This is the programmatic entry point used by the command
// line tools, the examples and the benchmark harness.
package core

import (
	"fmt"
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/platform"
	"repro/internal/radar"
	"repro/internal/replay"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Task names used in scheduler statistics.
const (
	// Task1 is tracking and correlation (every period).
	Task1 = "task1:track+correlate"
	// Task23 is the fused collision detection + resolution (every major
	// cycle, in the 16th period).
	Task23 = "task2+3:detect+resolve"
)

// Config parameterizes one simulation run.
type Config struct {
	// N is the number of aircraft.
	N int
	// Seed fixes flight setup, radar noise and MIMD jitter.
	Seed uint64
	// Noise is the radar measurement error amplitude in nautical miles;
	// 0 means radar.DefaultNoise.
	Noise float64
	// PeriodDur overrides the half-second period (tests only); 0 means
	// the paper's 500 ms.
	PeriodDur time.Duration
	// Scenario selects the traffic workload as a scenario spec string
	// ("circle:radius=80", "streams", ...); the empty string keeps the
	// paper's uniform random setup, bit-exactly. Invalid specs panic;
	// front ends reject them first through RunParams.Validate.
	Scenario string
	// PairSource selects a broadphase pair source ("brute", "grid",
	// "sweep") for platforms that support pruned Tasks 2-3 scans; the
	// empty string keeps the paper's all-pairs kernels. Unknown names
	// panic.
	PairSource string
	// Incremental turns on the temporal-coherence mode: the sweep pair
	// source keeps its sorted order across periods and repairs it
	// incrementally, and the platforms feed it (and their own inner
	// loops) from a structure-of-arrays snapshot. Results are
	// bit-identical to the rebuild mode; only host time changes.
	// Sources other than "sweep" accept and ignore the flag.
	Incremental bool
	// ParShard turns on the worker-parallel sharded broad phase: the
	// sweep source materializes every track's candidate set in one
	// parallel walk of its sorted order per Tasks 2-3 invocation, and
	// the executors feed the fused pair kernel from that table in
	// branch-free batches of 8. Results are bit-identical to every other
	// mode at every worker count; only host time changes. Sources other
	// than "sweep" accept and ignore the flag. Composes freely with
	// Incremental.
	ParShard bool
}

func (c Config) noise() float64 {
	if c.Noise == 0 {
		return radar.DefaultNoise
	}
	return c.Noise
}

// System is one running ATM simulation bound to a platform.
type System struct {
	Platform platform.Platform
	World    *airspace.World

	cfg                         Config
	radarRng                    *rng.Rand
	tracker                     *sched.Tracker
	period                      int // global period counter
	recorder                    *replay.Recorder
	rec                         *telemetry.Recorder
	pairSrc                     broadphase.PairSource  // as installed on the platform
	counted                     *broadphase.Counted    // non-nil while telemetry is attached
	maintainer                  broadphase.Maintainer  // non-nil when the source runs incrementally
	tableSrc                    broadphase.TableSource // non-nil when the source runs sharded
	schedObs                    telemetry.SchedObserver
	idBPQueries, idBPCandidates telemetry.NameID
	idBPUpdates, idBPRebuilds   telemetry.NameID
	idBPMoved, idBPResorted     telemetry.NameID
	idBPSegments, idKBatches    telemetry.NameID
}

// SetRecorder attaches a replay recorder; every subsequent period is
// logged (nil detaches). The caller owns flushing.
func (s *System) SetRecorder(r *replay.Recorder) { s.recorder = r }

// SetTelemetry attaches a telemetry recorder to the whole system (nil
// detaches): the scheduler reports period/task spans and deadline
// counters, the platform reports per-phase kernel spans and task
// statistics, and any configured broadphase source is wrapped so
// candidate-pair volumes appear as counters. Telemetry never perturbs
// the simulation — worlds and modeled durations are bit-identical with
// and without a recorder attached.
func (s *System) SetTelemetry(rec *telemetry.Recorder) {
	s.rec = rec
	if rec == nil {
		s.tracker.Observer = nil
		if inst, ok := s.Platform.(platform.Instrumented); ok {
			inst.SetTelemetry(nil)
		}
		if s.counted != nil {
			if ps, ok := s.Platform.(platform.PairSourced); ok {
				ps.SetPairSource(s.pairSrc)
			}
			s.counted = nil
		}
		return
	}
	s.schedObs = telemetry.SchedObserver{R: rec}
	s.tracker.Observer = &s.schedObs
	if inst, ok := s.Platform.(platform.Instrumented); ok {
		inst.SetTelemetry(rec)
	}
	if s.pairSrc != nil {
		if ps, ok := s.Platform.(platform.PairSourced); ok {
			s.counted = broadphase.NewCounted(s.pairSrc)
			ps.SetPairSource(s.counted)
			s.idBPQueries = rec.Intern(telemetry.NameBroadphaseQueries)
			s.idBPCandidates = rec.Intern(telemetry.NameBroadphaseCandidates)
			if s.maintainer != nil {
				s.idBPUpdates = rec.Intern(telemetry.NameBroadphaseUpdates)
				s.idBPRebuilds = rec.Intern(telemetry.NameBroadphaseRebuilds)
				s.idBPMoved = rec.Intern(telemetry.NameBroadphaseMoved)
				s.idBPResorted = rec.Intern(telemetry.NameBroadphaseResorted)
			}
			if s.tableSrc != nil {
				s.idBPSegments = rec.Intern(telemetry.NameBroadphaseSegments)
				s.idKBatches = rec.Intern(telemetry.NameKernelBatches)
			}
		}
	}
	rec.Meta("platform", s.Platform.Name())
	if s.cfg.Scenario != "" {
		rec.Meta("scenario", s.cfg.Scenario)
	}
	if s.cfg.PairSource != "" {
		rec.Meta("pairsource", s.cfg.PairSource)
	}
	if s.cfg.Incremental {
		rec.Meta("coherent", "true")
	}
	if s.cfg.ParShard {
		rec.Meta("parshard", "true")
	}
	rec.Meta("n", fmt.Sprintf("%d", s.World.N()))
	rec.Meta("seed", fmt.Sprintf("%d", s.cfg.Seed))
}

// Telemetry returns the attached recorder (nil if none).
func (s *System) Telemetry() *telemetry.Recorder { return s.rec }

// NewSystem creates the airfield (the configured scenario; SetupFlight
// for every aircraft by default) and binds it to the platform.
func NewSystem(p platform.Platform, cfg Config) *System {
	if cfg.N < 0 {
		panic(fmt.Sprintf("core: negative aircraft count %d", cfg.N))
	}
	spec, err := scenario.ParseSpec(cfg.Scenario)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	if err := spec.Validate(cfg.N); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	src := applyPairSource(p, cfg)
	root := rng.New(cfg.Seed)
	setupRng := root.Split()
	radarRng := root.Split()
	return &System{
		Platform:   p,
		World:      spec.Generate(cfg.N, setupRng),
		cfg:        cfg,
		radarRng:   radarRng,
		tracker:    sched.NewTracker(cfg.PeriodDur),
		pairSrc:    src,
		maintainer: broadphase.MaintainerOf(src),
		tableSrc:   broadphase.TableOf(src),
	}
}

// NewSystemWithWorld binds the platform to an externally constructed
// traffic scenario instead of random flight setup. cfg.N is ignored.
func NewSystemWithWorld(p platform.Platform, w *airspace.World, cfg Config) *System {
	src := applyPairSource(p, cfg)
	root := rng.New(cfg.Seed)
	root.Split() // keep the stream layout of NewSystem
	radarRng := root.Split()
	return &System{
		Platform:   p,
		World:      w,
		cfg:        cfg,
		radarRng:   radarRng,
		tracker:    sched.NewTracker(cfg.PeriodDur),
		pairSrc:    src,
		maintainer: broadphase.MaintainerOf(src),
		tableSrc:   broadphase.TableOf(src),
	}
}

// applyPairSource wires the configured broadphase source into the
// platform and returns it so telemetry can later wrap it. Requesting a
// source on a platform that cannot use one is a configuration error and
// panics, as silently ignoring it would skew measured op counts.
func applyPairSource(p platform.Platform, cfg Config) broadphase.PairSource {
	if cfg.PairSource == "" {
		return nil
	}
	src, err := broadphase.NewWith(cfg.PairSource, broadphase.Options{Incremental: cfg.Incremental, Sharded: cfg.ParShard})
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	ps, ok := p.(platform.PairSourced)
	if !ok {
		panic(fmt.Sprintf("core: platform %s does not support pair sources", p.Name()))
	}
	ps.SetPairSource(src)
	return src
}

// RunPeriod executes one half-second period: radar generation (host
// work, outside the deadline, per Section 4.2), Task 1, and — in the
// 16th period of each major cycle — Tasks 2-3.
func (s *System) RunPeriod() {
	frame := radar.Generate(s.World, s.cfg.noise(), s.radarRng)
	missesBefore := s.tracker.Stats().PeriodMisses
	var t1, t23 time.Duration
	s.tracker.BeginPeriod()
	s.tracker.Run(Task1, func() time.Duration {
		t1 = s.Platform.Track(s.World, frame)
		return t1
	})
	if s.period%airspace.PeriodsPerMajorCycle == airspace.PeriodsPerMajorCycle-1 {
		s.tracker.Run(Task23, func() time.Duration {
			t23 = s.Platform.DetectResolve(s.World)
			return t23
		})
		if s.counted != nil {
			// Drained sequentially between tasks, after the platform's
			// internal barriers — the counts are stable here.
			q, c := s.counted.Take()
			if q != 0 || c != 0 {
				s.rec.Counter(s.idBPQueries, q)
				s.rec.Counter(s.idBPCandidates, c)
			}
			if s.maintainer != nil {
				u := s.maintainer.TakeUpdateStats()
				if u.Updates != 0 || u.Rebuilds != 0 {
					s.rec.Counter(s.idBPUpdates, u.Updates)
					s.rec.Counter(s.idBPRebuilds, u.Rebuilds)
					s.rec.Counter(s.idBPMoved, u.Moved)
					s.rec.Counter(s.idBPResorted, u.Resorted)
				}
			}
			if s.tableSrc != nil {
				segments, batches := s.tableSrc.TakeShardStats()
				if segments != 0 || batches != 0 {
					s.rec.Counter(s.idBPSegments, segments)
					s.rec.Counter(s.idKBatches, batches)
				}
			}
		}
	}
	s.tracker.EndPeriod()
	if s.recorder != nil {
		missed := s.tracker.Stats().PeriodMisses > missesBefore
		// Recording is diagnostics; a write failure must not corrupt
		// the simulation, so it is surfaced via panic only in tests.
		if err := s.recorder.WritePeriod(s.World, t1, t23, missed); err != nil {
			panic(fmt.Sprintf("core: replay recording failed: %v", err))
		}
	}
	s.period++
}

// RunMajorCycles runs k full 16-period major cycles.
func (s *System) RunMajorCycles(k int) {
	for c := 0; c < k; c++ {
		for p := 0; p < airspace.PeriodsPerMajorCycle; p++ {
			s.RunPeriod()
		}
	}
}

// Stats returns the deadline accounting collected so far.
func (s *System) Stats() *sched.Stats { return s.tracker.Stats() }

// Periods returns the number of periods executed.
func (s *System) Periods() int { return s.period }

// Measurement is the per-platform summary the experiment figures are
// built from.
type Measurement struct {
	PlatformName string
	N            int
	// Task1Mean / Task23Mean are the average virtual durations per task
	// invocation ("their timings are taken as an average of all
	// iterations of the task", Section 6.1).
	Task1Mean, Task23Mean time.Duration
	// Task1Max / Task23Max are the worst observed invocations.
	Task1Max, Task23Max time.Duration
	// PeriodMisses and Periods give the deadline record.
	PeriodMisses, Periods int
	// Skips counts task executions abandoned for lack of budget.
	Skips int
}

// Measure runs cycles major cycles of the named platform at N aircraft
// on the paper's uniform workload and summarizes.
func Measure(platformName string, n, cycles int, seed uint64) (Measurement, error) {
	return MeasureWith(platformName, cycles, Config{N: n, Seed: seed})
}

// MeasureWith is Measure under a full Config: scenario, pair source
// and coherence mode all apply. cfg.N is the aircraft count. Unlike
// NewSystem, a scenario that cannot hold cfg.N aircraft is an error,
// not a panic — sweeps reach counts front-end validation cannot see.
func MeasureWith(platformName string, cycles int, cfg Config) (Measurement, error) {
	p, err := platform.New(platformName, cfg.Seed)
	if err != nil {
		return Measurement{}, err
	}
	spec, err := scenario.ParseSpec(cfg.Scenario)
	if err != nil {
		return Measurement{}, err
	}
	if err := spec.Validate(cfg.N); err != nil {
		return Measurement{}, err
	}
	sys := NewSystem(p, cfg)
	sys.RunMajorCycles(cycles)
	st := sys.Stats()
	t1 := st.Task(Task1)
	t23 := st.Task(Task23)
	return Measurement{
		PlatformName: p.Name(),
		N:            cfg.N,
		Task1Mean:    t1.Mean(),
		Task23Mean:   t23.Mean(),
		Task1Max:     t1.Max,
		Task23Max:    t23.Max,
		PeriodMisses: st.PeriodMisses,
		Periods:      st.Periods,
		Skips:        st.TotalSkips,
	}, nil
}
