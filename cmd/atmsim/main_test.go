package main

import (
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the atmsim executable:
// with ATMSIM_RUN_MAIN set the process runs main() instead of the
// tests, so exit-code tests below need no separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("ATMSIM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ATMSIM_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestBadFlagsAreUsageErrors: configurations rejected by
// core.RunParams.Validate exit with status 2 before any simulation
// work, with the validation message on stderr.
func TestBadFlagsAreUsageErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"unknown scenario family", []string{"-scenario", "warp"}, "unknown family"},
		{"bad scenario value", []string{"-scenario", "circle:radius=-4"}, "radius must be"},
		{"scenario over capacity", []string{"-scenario", "streams", "-n", "30000"}, "lanes"},
		{"zero aircraft", []string{"-n", "0"}, "positive aircraft count"},
		{"unknown platform", []string{"-platform", "cray1"}, "unknown platform"},
	}
	for _, tc := range cases {
		out, code := runSelf(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2\n%s", tc.name, code, out)
		}
		if !strings.Contains(out, tc.wantSub) {
			t.Errorf("%s: output %q does not mention %q", tc.name, out, tc.wantSub)
		}
	}
}

// TestScenarioRunSucceeds: a tiny structured-traffic run completes with
// exit 0 and reports the canonical scenario spec.
func TestScenarioRunSucceeds(t *testing.T) {
	out, code := runSelf(t, "-platform", "titanx", "-n", "40", "-cycles", "1", "-scenario", "circle:radius=20")
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "scenario : circle:") {
		t.Errorf("output missing the canonical scenario line:\n%s", out)
	}
}
