// Command atmfit fits polynomials to a timing series CSV (as written
// by atmbench) and prints MATLAB-style goodness-of-fit reports — the
// curve-shape analysis of the paper's Section 6.2.
//
// Usage:
//
//	atmfit -in results/fig8.csv
//	atmfit -in results/fig9.csv -series "GeForce 9800 GT" -degree 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/fit"
	"repro/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV file (from atmbench); required")
		series = flag.String("series", "", "series label to fit (default: first series)")
		degree = flag.Int("degree", 0, "fit only this degree (0 = both linear and quadratic)")
	)
	flag.Parse()
	if err := run(*in, *series, *degree); err != nil {
		fmt.Fprintln(os.Stderr, "atmfit:", err)
		os.Exit(1)
	}
}

func run(in, series string, degree int) error {
	if in == "" {
		return fmt.Errorf("need -in <csv file>")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	if len(d.Series) == 0 {
		return fmt.Errorf("%s contains no series", in)
	}
	s := &d.Series[0]
	if series != "" {
		s = d.Get(series)
		if s == nil {
			return fmt.Errorf("series %q not found in %s", series, in)
		}
	}
	fmt.Printf("dataset %s — %s\nseries  %q (%d points)\n\n", d.ID, d.Title, s.Label, len(s.Points))

	xs, ys := s.XS(), s.YS()
	xmax := 0.0
	for _, x := range xs {
		if x > xmax {
			xmax = x
		}
	}
	fitOne := func(deg int) (*fit.Result, error) {
		r, err := fit.Poly(xs, ys, deg)
		if err != nil {
			return nil, fmt.Errorf("degree %d: %w", deg, err)
		}
		fmt.Printf("degree %d: %s\n", deg, r)
		return r, nil
	}
	if degree > 0 {
		_, err := fitOne(degree)
		return err
	}
	if _, err := fitOne(1); err != nil {
		return err
	}
	quad, err := fitOne(2)
	if err != nil {
		return err
	}
	ratio, _ := fit.NearLinear(quad, xmax, 1)
	fmt.Printf("\nquadratic-term contribution over domain: %.4f of the linear term\n", ratio)
	exp, err := fit.EffectiveExponent(xs, ys)
	if err != nil {
		return err
	}
	fmt.Printf("effective growth exponent (log-log): %.3f\n", exp)
	if exp <= experiments.NearLinearExp {
		fmt.Println("verdict: linear or near-linear — SIMD-like")
	} else if exp < 2.2 {
		fmt.Println("verdict: quadratic over this domain")
	} else {
		fmt.Println("verdict: clearly superlinear")
	}
	return nil
}
