// Package cuda is a CUDA-style data-parallel execution engine written
// against Go's goroutine runtime. It stands in for the three NVIDIA
// devices of the paper (GeForce 9800 GT, GTX 880M, Titan X Pascal),
// which are not available in this environment.
//
// The engine reproduces the paper's execution structure rather than its
// absolute milliseconds:
//
//   - kernels are launched over a grid of blocks of 96 threads (the
//     paper's block/thread setup: "the limit on threads per block
//     remains 96 but the blocks increase as the number of aircrafts
//     increases");
//   - every thread body is really executed (by a pool of goroutines,
//     one block at a time per worker), so the kernels' concurrency
//     semantics — ID-indexed writes, commutative atomic claims, the
//     "two threads must not manipulate the same aircraft" hazard — are
//     real, not simulated;
//   - each thread counts the abstract arithmetic operations and cold
//     memory traffic it performs, and a per-device analytic cost model
//     (CUDA cores, SMs, clock, memory bandwidth, kernel-launch
//     overhead, PCIe transfer rate) converts those counts into a
//     deterministic virtual duration.
//
// Determinism matters: the paper observes that repeated runs of the
// CUDA program produce "the exact same timings again and again". All
// cost inputs here are commutative reductions (sum and max) over
// per-thread counts, so the modeled time of a kernel is a pure function
// of its inputs regardless of goroutine interleaving.
package cuda

import (
	"fmt"
	"time"

	"repro/internal/parexec"
	"repro/internal/telemetry"
)

// ThreadsPerBlock is fixed at 96 threads per block, the configuration
// the paper uses on all three devices.
const ThreadsPerBlock = 96

// Profile describes one NVIDIA device for the cost model. The numbers
// are the published specifications of the three cards; IPC folds the
// differences between architectures (scalar throughput per core per
// clock for the mix of fused multiply-adds, compares and branches these
// kernels execute) into a single factor.
type Profile struct {
	// Name is the marketing name of the device.
	Name string
	// ComputeCapability as reported by the paper (1.0, 3.0, 6.1).
	ComputeCapability string
	// Cores is the number of CUDA cores.
	Cores int
	// SMs is the number of streaming multiprocessors.
	SMs int
	// ClockHz is the shader clock in Hz.
	ClockHz float64
	// IPC is the sustained abstract operations per core per clock.
	IPC float64
	// MemBandwidth is the global-memory bandwidth in bytes/second.
	MemBandwidth float64
	// LaunchOverhead is the fixed cost of one kernel launch.
	LaunchOverhead time.Duration
	// TransferBandwidth is the host<->device (PCIe) bandwidth in
	// bytes/second.
	TransferBandwidth float64
	// TransferLatency is the fixed cost of one host<->device copy.
	TransferLatency time.Duration
}

// The three devices of the paper's evaluation (Section 6.1).
var (
	// GeForce9800GT: the paper's "old card with Compute Capacity of 1",
	// a G92 part: 112 CUDA cores across 14 SMs at 1.5 GHz, 57.6 GB/s.
	GeForce9800GT = Profile{
		Name:              "GeForce 9800 GT",
		ComputeCapability: "1.0",
		Cores:             112,
		SMs:               14,
		ClockHz:           1.5e9,
		IPC:               0.7, // no cache hierarchy, in-order scalar SPs
		MemBandwidth:      57.6e9,
		LaunchOverhead:    20 * time.Microsecond,
		TransferBandwidth: 3.0e9, // PCIe 2.0 x16, old chipset
		TransferLatency:   15 * time.Microsecond,
	}

	// GTX880M: the laptop Kepler card, compute capability 3.0:
	// 1536 cores across 8 SMXs at 993 MHz, 160 GB/s.
	GTX880M = Profile{
		Name:              "GTX 880M",
		ComputeCapability: "3.0",
		Cores:             1536,
		SMs:               8,
		ClockHz:           0.993e9,
		IPC:               0.85,
		MemBandwidth:      160e9,
		LaunchOverhead:    10 * time.Microsecond,
		TransferBandwidth: 6.0e9,
		TransferLatency:   10 * time.Microsecond,
	}

	// TitanXPascal: the research card donated by NVIDIA, compute
	// capability 6.1: 3584 cores across 28 SMs at 1.417 GHz, 480 GB/s.
	TitanXPascal = Profile{
		Name:              "Titan X (Pascal)",
		ComputeCapability: "6.1",
		Cores:             3584,
		SMs:               28,
		ClockHz:           1.417e9,
		IPC:               1.0,
		MemBandwidth:      480e9,
		LaunchOverhead:    5 * time.Microsecond,
		TransferBandwidth: 12.0e9,
		TransferLatency:   8 * time.Microsecond,
	}
)

// Profiles lists the built-in device profiles.
func Profiles() []Profile {
	return []Profile{GeForce9800GT, GTX880M, TitanXPascal}
}

// Thread is the per-thread execution context handed to a kernel body.
// Kernels report their work through Ops and Mem; the engine never
// inspects what the kernel actually computes.
type Thread struct {
	// ID is the global thread index (blockIdx*ThreadsPerBlock +
	// threadIdx, flattened).
	ID int
	// Block is the block index.
	Block int
	// Lane is the thread index within the block.
	Lane int
	// Worker is the index of the host worker executing this thread's
	// block, in [0, host worker count). It has no device meaning;
	// kernels use it to index per-worker scratch (candidate buffers)
	// without allocating or locking.
	Worker int

	ops uint64
	mem uint64
}

// Ops records n abstract arithmetic/logic operations.
func (t *Thread) Ops(n int) { t.ops += uint64(n) }

// Mem records n bytes of cold global-memory traffic (bytes that cannot
// be served from cache because this thread is their first reader or
// writer).
func (t *Thread) Mem(n int) { t.mem += uint64(n) }

// WarpSize is the SIMT width used for the divergence diagnostic.
const WarpSize = 32

// KernelStats is the engine's account of one kernel launch.
type KernelStats struct {
	// Name of the kernel, for reports.
	Name string
	// Threads launched and Blocks used.
	Threads, Blocks int
	// TotalOps is the sum of per-thread op counts.
	TotalOps uint64
	// MaxThreadOps is the largest single-thread op count: a kernel can
	// never finish faster than its longest thread chain.
	MaxThreadOps uint64
	// MemBytes is the total cold memory traffic.
	MemBytes uint64
	// WarpSlots and WarpWaste feed the divergence diagnostic: a warp
	// issues activeLanes x warpMaxOps slots, of which slots not covered
	// by per-thread work are wasted to divergent branches. These do not
	// enter the time model (the IPC factor absorbs average divergence);
	// they are reported so the paper's "optimized and re-written many
	// times" tuning loop can be followed.
	WarpSlots, WarpWaste uint64
	// Time is the modeled device time, excluding transfers.
	Time time.Duration
}

// Divergence returns the fraction of issue slots lost to intra-warp
// divergence (0 = perfectly converged warps).
func (st *KernelStats) Divergence() float64 {
	if st.WarpSlots == 0 {
		return 0
	}
	return float64(st.WarpWaste) / float64(st.WarpSlots)
}

// Occupancy describes how a launch fills the device.
type Occupancy struct {
	// Blocks and Waves: blocks are scheduled onto SMs in waves of (at
	// most) one block per SM.
	Blocks, Waves int
	// TailBlocks is the number of blocks in the final, partially filled
	// wave (0 means the last wave is full).
	TailBlocks int
	// ThreadFill is threads / (blocks x ThreadsPerBlock): the fraction
	// of launched lanes that carry a real thread.
	ThreadFill float64
	// SMFill is the average fraction of SMs busy across waves.
	SMFill float64
}

// OccupancyFor computes the launch shape for the given thread count
// under d's SM count.
func (d *Device) OccupancyFor(threads int) Occupancy {
	o := Occupancy{Blocks: Blocks(threads)}
	if o.Blocks == 0 {
		return o
	}
	sms := d.Profile.SMs
	o.Waves = (o.Blocks + sms - 1) / sms
	o.TailBlocks = o.Blocks % sms
	o.ThreadFill = float64(threads) / float64(o.Blocks*ThreadsPerBlock)
	o.SMFill = float64(o.Blocks) / float64(o.Waves*sms)
	return o
}

// Device executes kernels under one profile. A Device is safe for
// sequential reuse; Launch itself runs blocks on the shared parexec
// worker pool.
type Device struct {
	Profile Profile
	// pool executes blocks; nil means the process-wide default pool.
	pool *parexec.Pool
	// accs are the per-worker launch accumulators, reused across
	// launches so a launch allocates nothing in steady state.
	accs []launchAcc
	// rec, when non-nil and at block detail, receives per-block work
	// gauges through per-worker shards merged in block order.
	rec        *telemetry.Recorder
	shards     telemetry.ShardSet
	idBlockOps telemetry.NameID
}

// launchAcc collects one host worker's share of a launch's work
// account, padded so workers don't share a cache line.
type launchAcc struct {
	ops, mem, maxOps, slots, waste uint64
	_                              [24]byte
}

// NewDevice returns an execution engine for the given profile.
func NewDevice(p Profile) *Device {
	return &Device{Profile: p}
}

// SetWorkers overrides the number of host goroutines used to execute
// blocks (useful in tests); n <= 0 restores the default (the shared
// process-wide pool). Host workers never affect the modeled time: every
// launch reduction is a sum or a max.
func (d *Device) SetWorkers(n int) {
	if n <= 0 {
		d.pool = nil
	} else {
		d.pool = parexec.NewPool(n)
	}
}

// Workers returns the host worker count Launch will use.
func (d *Device) Workers() int { return parexec.Resolve(d.pool).Workers() }

// SetTelemetry attaches a recorder (nil detaches). At
// telemetry.DetailBlock, every launch additionally records one
// "cuda.block.ops" gauge per block, emitted from the parallel block
// loop via per-worker shards and merged back in ascending block
// order, so the event stream is identical at any worker count.
func (d *Device) SetTelemetry(rec *telemetry.Recorder) {
	d.rec = rec
	if rec != nil {
		d.idBlockOps = rec.Intern(telemetry.NameCUDABlockOps)
	}
}

// Blocks returns the grid size for the given number of threads.
func Blocks(threads int) int {
	return (threads + ThreadsPerBlock - 1) / ThreadsPerBlock
}

// Launch executes kernel once per thread and returns the work account
// with the modeled execution time under d's profile.
//
// Threads within one block run sequentially on one host goroutine, in
// lane order; distinct blocks run concurrently. Kernels that write
// shared state must therefore use ID-indexed writes or atomics, exactly
// as a real CUDA kernel must.
//
//atm:modeled-time
//atm:ordered-merge
func (d *Device) Launch(name string, threads int, kernel func(t *Thread)) KernelStats {
	if threads < 0 {
		panic(fmt.Sprintf("cuda: Launch %q with negative thread count %d", name, threads))
	}
	st := KernelStats{Name: name, Threads: threads, Blocks: Blocks(threads)}
	if threads > 0 {
		p := parexec.Resolve(d.pool)
		nw := p.Workers()
		if cap(d.accs) < nw {
			d.accs = make([]launchAcc, nw)
		}
		accs := d.accs[:nw]
		for i := range accs {
			accs[i] = launchAcc{}
		}
		blockDetail := d.rec != nil && d.rec.Detail() >= telemetry.DetailBlock
		if blockDetail {
			d.shards.Begin(nw)
		}

		// Blocks self-schedule over the pool one at a time (the block is
		// the engine's unit of host concurrency, as on the device). Each
		// worker folds its blocks into its own accumulator; the merge
		// below is all sums and maxima, so the account — and with it the
		// modeled time — is identical at any worker count.
		p.Run(st.Blocks, 1, func(worker, lo, hi int) {
			a := &accs[worker]
			for b := lo; b < hi; b++ {
				// Per-warp divergence accounting: threads within a
				// block run in lane order, so warps are contiguous
				// 32-lane groups.
				var warpMax, warpSum, blockOps uint64
				warpLanes := 0
				flushWarp := func() {
					if warpLanes > 0 {
						s := uint64(warpLanes) * warpMax
						a.slots += s
						a.waste += s - warpSum
						warpMax, warpSum, warpLanes = 0, 0, 0
					}
				}
				for lane := 0; lane < ThreadsPerBlock; lane++ {
					id := b*ThreadsPerBlock + lane
					if id >= threads {
						break
					}
					if lane%WarpSize == 0 {
						flushWarp()
					}
					th := Thread{ID: id, Block: b, Lane: lane, Worker: worker}
					kernel(&th)
					a.ops += th.ops
					blockOps += th.ops
					a.mem += th.mem
					if th.ops > a.maxOps {
						a.maxOps = th.ops
					}
					warpSum += th.ops
					if th.ops > warpMax {
						warpMax = th.ops
					}
					warpLanes++
				}
				flushWarp()
				if blockDetail {
					d.shards.Shard(worker).Gauge(d.idBlockOps, int32(b), int64(blockOps))
				}
			}
		})
		if blockDetail {
			d.rec.MergeShards(&d.shards)
		}
		for i := range accs {
			a := &accs[i]
			st.TotalOps += a.ops
			st.MemBytes += a.mem
			st.WarpSlots += a.slots
			st.WarpWaste += a.waste
			if a.maxOps > st.MaxThreadOps {
				st.MaxThreadOps = a.maxOps
			}
		}
	}

	st.Time = d.kernelTime(&st)
	return st
}

// kernelTime converts a work account into modeled device time:
//
//	t = launch + max(throughput-bound, serial-bound, memory-bound)
//
// where throughput-bound spreads TotalOps over every core, serial-bound
// is the longest single thread chain, and memory-bound is the cold
// traffic over the memory bus. Compute and memory are assumed to
// overlap (the usual steady-state assumption for bandwidth-saturating
// kernels).
func (d *Device) kernelTime(st *KernelStats) time.Duration {
	p := &d.Profile
	throughput := float64(st.TotalOps) / (float64(p.Cores) * p.IPC * p.ClockHz)
	serial := float64(st.MaxThreadOps) / (p.IPC * p.ClockHz)
	memory := float64(st.MemBytes) / p.MemBandwidth
	bound := throughput
	if serial > bound {
		bound = serial
	}
	if memory > bound {
		bound = memory
	}
	return p.LaunchOverhead + secondsToDuration(bound)
}

// TransferTime models one host<->device copy of n bytes.
func (d *Device) TransferTime(n int) time.Duration {
	p := &d.Profile
	return p.TransferLatency + secondsToDuration(float64(n)/p.TransferBandwidth)
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
