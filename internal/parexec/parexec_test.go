package parexec

import (
	"sync/atomic"
	"testing"
)

// TestRunCoversRangeExactlyOnce checks every index is visited exactly
// once for a spread of sizes, grains, and worker counts.
func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
			for _, grain := range []int{0, 1, 3, 64, 5000} {
				hits := make([]int32, n)
				p.Run(n, grain, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times",
							workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

// TestRunChunkAlignment checks that chunk lower bounds are multiples of
// the grain, which consumers rely on (chunk = lo/grain) to store
// per-chunk partials for order-deterministic merges.
func TestRunChunkAlignment(t *testing.T) {
	p := NewPool(4)
	const n, grain = 1003, 17
	var bad atomic.Int32
	p.Run(n, grain, func(_, lo, hi int) {
		if lo%grain != 0 || hi-lo > grain || (hi != n && hi-lo != grain) {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d misaligned chunks", bad.Load())
	}
}

// TestRunChunkAlignmentInline checks the inline fallbacks (one-worker
// pool and reentrant Run) deliver the same grain-aligned chunks as the
// parallel path: per-chunk partial stores indexed by lo/grain rely on
// it no matter which path a Run takes.
func TestRunChunkAlignmentInline(t *testing.T) {
	const n, grain = 1003, 17
	check := func(t *testing.T, p *Pool, run func(body func(worker, lo, hi int))) {
		t.Helper()
		seen := make([]bool, (n+grain-1)/grain)
		run(func(_, lo, hi int) {
			if lo%grain != 0 || hi-lo > grain || (hi != n && hi-lo != grain) {
				t.Errorf("misaligned chunk [%d, %d)", lo, hi)
				return
			}
			seen[lo/grain] = true
		})
		for c, ok := range seen {
			if !ok {
				t.Errorf("chunk %d never delivered", c)
			}
		}
	}
	t.Run("serial", func(t *testing.T) {
		p := NewPool(1)
		check(t, p, func(body func(worker, lo, hi int)) { p.Run(n, grain, body) })
	})
	t.Run("reentrant", func(t *testing.T) {
		p := NewPool(4)
		check(t, p, func(body func(worker, lo, hi int)) {
			p.Run(1, 1, func(_, _, _ int) { p.Run(n, grain, body) })
		})
	})
}

// TestRunWorkerIndexInRange checks worker indices stay within
// [0, Workers()), the bound on per-worker scratch arrays.
func TestRunWorkerIndexInRange(t *testing.T) {
	p := NewPool(5)
	var bad atomic.Int32
	p.Run(10000, 7, func(worker, lo, hi int) {
		if worker < 0 || worker >= p.Workers() {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("worker index escaped [0, %d)", p.Workers())
	}
}

// TestRunReentrant checks a body may call Run on the same pool: the
// inner call falls back to inline execution instead of deadlocking.
func TestRunReentrant(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	p.Run(8, 1, func(_, lo, hi int) {
		p.Run(16, 4, func(_, ilo, ihi int) {
			total.Add(int64(ihi - ilo))
		})
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested Run covered %d indices, want %d", got, 8*16)
	}
}

// TestRunConcurrent checks two goroutines may Run on the same pool at
// once; the loser of the TryLock race executes inline.
func TestRunConcurrent(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			p.Run(1000, 8, func(_, lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := total.Load(); got != 4*1000 {
		t.Fatalf("concurrent Runs covered %d indices, want %d", got, 4*1000)
	}
}

// TestRunMemoryVisibility checks plain (non-atomic) writes made by the
// body are visible to the caller after Run returns.
func TestRunMemoryVisibility(t *testing.T) {
	p := NewPool(8)
	const n = 100000
	vals := make([]int, n)
	p.Run(n, 64, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = i * 3
		}
	})
	for i, v := range vals {
		if v != i*3 {
			t.Fatalf("vals[%d] = %d, want %d", i, v, i*3)
		}
	}
}

// TestRunReusableZeroAlloc checks steady-state dispatch does not
// allocate: the job state lives in the pool, not per call.
func TestRunReusableZeroAlloc(t *testing.T) {
	p := NewPool(2)
	var sink atomic.Int64
	body := func(_, lo, hi int) { sink.Add(int64(hi - lo)) }
	p.Run(1000, 8, body) // warm up: spawn workers
	avg := testing.AllocsPerRun(50, func() {
		p.Run(1000, 8, body)
	})
	if avg > 0.5 {
		t.Fatalf("Run allocates %.1f objects per dispatch, want 0", avg)
	}
}

// TestResolve checks nil maps to the default pool and non-nil is
// returned unchanged.
func TestResolve(t *testing.T) {
	if Resolve(nil) != Default() {
		t.Fatal("Resolve(nil) is not the default pool")
	}
	p := NewPool(3)
	if Resolve(p) != p {
		t.Fatal("Resolve(p) is not p")
	}
}

// TestSetDefaultWorkers checks the -workers flag path resizes the
// default pool.
func TestSetDefaultWorkers(t *testing.T) {
	old := Default()
	defer defaultPool.Store(old)
	SetDefaultWorkers(7)
	if got := Default().Workers(); got != 7 {
		t.Fatalf("default pool has %d workers after SetDefaultWorkers(7)", got)
	}
}
