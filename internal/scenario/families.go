package scenario

import (
	"math"

	"repro/internal/airspace"
	"repro/internal/rng"
)

// Generate builds a world of n aircraft following the spec, drawing
// every random quantity from r. It panics on a spec that fails
// Validate(n) — front ends validate through core.RunParams before any
// world is built, so reaching generation with a bad spec is a
// programming error, mirroring core's pair-source handling.
//
// For the uniform family the draws are exactly airspace.NewWorld's:
// the same (seed, call sequence) pair, hence bit-identical worlds.
func (s *Spec) Generate(n int, r *rng.Rand) *airspace.World {
	if err := s.Validate(n); err != nil {
		panic(err.Error())
	}
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	switch s.Family {
	case Uniform:
		fillUniform(w.Aircraft, r)
	case Circle:
		fillCircle(w.Aircraft, s, r)
	case Streams:
		fillStreams(w.Aircraft, s)
	case Dense:
		centers := clusterCenters(s, r)
		fillDense(w.Aircraft, s, centers, r)
	case Layers:
		fillLayers(w.Aircraft, s, r)
	case Burst:
		fillBurst(w.Aircraft, s)
	}
	return w
}

// place initializes one aircraft record with the standard bookkeeping
// defaults: expected position at the current position, no correlation
// match, no pending conflict.
//
//atm:noalloc
func place(a *airspace.Aircraft, id int32, x, y, alt, dx, dy float64) {
	a.ID = id
	a.X, a.Y = x, y
	a.Alt = alt
	a.DX, a.DY = dx, dy
	a.ExpX, a.ExpY = x, y
	a.RMatch = airspace.MatchNone
	a.ResetConflict()
}

// fillUniform is the paper's Section 4.1 setup, draw for draw.
//
//atm:noalloc
func fillUniform(air []airspace.Aircraft, r *rng.Rand) {
	for i := range air {
		airspace.SetupFlight(&air[i], int32(i), r)
	}
}

// fillCircle spaces the fleet evenly on a circle of radius Radius with
// every velocity pointing at the center at the common speed: all
// aircraft meet there, so every aircraft has a guaranteed conflict
// partner well inside the detection horizon at the defaults (radius
// 100 nm at 400 kt arrives in 1800 periods against a 2400-period
// horizon). AltSpread breaks the guarantee vertically when nonzero.
//
//atm:noalloc
func fillCircle(air []airspace.Aircraft, s *Spec, r *rng.Rand) {
	n := len(air)
	v := s.Speed / airspace.PeriodsPerHour
	phase := s.PhaseDeg * math.Pi / 180
	for i := range air {
		th := phase + 2*math.Pi*float64(i)/float64(n)
		cos, sin := math.Cos(th), math.Sin(th)
		alt := s.Alt
		if s.AltSpread > 0 {
			alt += r.Range(-s.AltSpread, s.AltSpread)
		}
		place(&air[i], int32(i), s.Radius*cos, s.Radius*sin, alt, -v*cos, -v*sin)
	}
}

// fillStreams builds K flows through the field center, stream k heading
// k*AngleDeg. Aircraft are dealt round-robin to streams; within a
// stream they queue in-trail at Spacing along the centerline lane,
// overflowing to parallel lanes LaneGap apart (center, then
// alternately left and right). Every member of a stream shares one
// velocity, so intra-stream separation is constant — never below
// min(Spacing, LaneGap) >= the separation minimum — while distinct
// streams cross at the center at the same altitude and conflict there.
// Stream k's queue is staggered by k/K of one spacing so crossings
// interleave instead of colliding in lockstep.
//
//atm:noalloc
func fillStreams(air []airspace.Aircraft, s *Spec) {
	v := s.Speed / airspace.PeriodsPerHour
	for k := 0; k < s.Streams; k++ {
		th := float64(k) * s.AngleDeg * math.Pi / 180
		ux, uy := math.Cos(th), math.Sin(th)
		px, py := -uy, ux
		// Conservative in-field bound for any heading: |t|+|off| <= 125
		// keeps both position components inside the setup square.
		lane, slot := 0, 0
		stagger := s.Spacing * float64(k) / float64(s.Streams)
		for i := k; i < len(air); i += s.Streams {
			off := laneOffset(lane, s.LaneGap)
			tLim := airspace.SetupHalf - math.Abs(off)
			t := -tLim + stagger + float64(slot)*s.Spacing
			if t > tLim {
				lane++
				slot = 0
				off = laneOffset(lane, s.LaneGap)
				tLim = airspace.SetupHalf - math.Abs(off)
				t = -tLim + stagger
			}
			place(&air[i], int32(i), t*ux+off*px, t*uy+off*py, s.Alt, v*ux, v*uy)
			slot++
		}
	}
}

// laneOffset maps lane index 0, 1, 2, 3, 4... to lateral offsets
// 0, +g, -g, +2g, -2g...: lanes fill outward from the centerline.
//
//atm:noalloc
func laneOffset(lane int, gap float64) float64 {
	k := float64((lane + 1) / 2)
	if lane%2 == 0 {
		return -k * gap
	}
	return k * gap
}

// clusterCenters draws the dense-sector centers. It runs outside the
// noalloc fill so the center slice is allocated per generation, not on
// a hot path.
func clusterCenters(s *Spec, r *rng.Rand) []float64 {
	centers := make([]float64, 2*s.Clusters)
	for c := 0; c < s.Clusters; c++ {
		centers[2*c] = r.Range(-0.7*airspace.SetupHalf, 0.7*airspace.SetupHalf)
		centers[2*c+1] = r.Range(-0.7*airspace.SetupHalf, 0.7*airspace.SetupHalf)
	}
	return centers
}

// fillDense deals aircraft round-robin to Clusters tight sectors:
// positions uniform within Radius of the sector center (clamped to the
// setup square), headings and speeds drawn like the paper's setup, and
// altitudes packed into one 2*AltSpread band so nearly every
// intra-cluster pair survives the vertical filter — the worst case for
// broad-phase candidate volume.
//
//atm:noalloc
func fillDense(air []airspace.Aircraft, s *Spec, centers []float64, r *rng.Rand) {
	for i := range air {
		c := i % s.Clusters
		x := clamp(centers[2*c]+r.Range(-s.Radius, s.Radius), -airspace.SetupHalf, airspace.SetupHalf)
		y := clamp(centers[2*c+1]+r.Range(-s.Radius, s.Radius), -airspace.SetupHalf, airspace.SetupHalf)
		alt := s.Alt
		if s.AltSpread > 0 {
			alt += r.Range(-s.AltSpread, s.AltSpread)
		}
		sp := r.Range(airspace.SpeedMin, airspace.SpeedMax)
		dx := r.Range(airspace.SpeedMin, sp)
		dy := math.Sqrt(sp*sp - dx*dx)
		place(&air[i], int32(i), x, y, alt,
			dx*r.Sign()/airspace.PeriodsPerHour, dy*r.Sign()/airspace.PeriodsPerHour)
	}
}

//atm:noalloc
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// fillLayers deals aircraft round-robin to Bands altitude bands BandGap
// feet apart. Band b flies a common heading b*180/Bands degrees with
// per-aircraft random speeds and positions, so same-band traffic only
// conflicts through overtakes while cross-band geometry crosses at
// every angle: with BandGap below airspace.AltBandFeet those crossings
// are live conflicts, above it the AltOverlapAt filter must prune every
// one of them.
//
//atm:noalloc
func fillLayers(air []airspace.Aircraft, s *Spec, r *rng.Rand) {
	for i := range air {
		b := i % s.Bands
		th := float64(b) * math.Pi / float64(s.Bands)
		x := r.Range(0, airspace.SetupHalf) * r.Sign()
		y := r.Range(0, airspace.SetupHalf) * r.Sign()
		sp := r.Range(airspace.SpeedMin, airspace.SpeedMax)
		v := sp / airspace.PeriodsPerHour
		place(&air[i], int32(i), x, y, s.Alt+float64(b)*s.BandGap,
			v*math.Cos(th), v*math.Sin(th))
	}
}

// fillBurst opposes eastbound and westbound walls of traffic: wave w
// holds its own altitude band (burstAltStep feet above wave w-1) and
// starts (w+1)*Interval flight-periods out from the meridian, so the
// two walls of wave w meet head-on — every row pair on a collision
// course at once — around period (w+1)*Interval, one conflict spike
// per wave. Within a wall all velocities are equal and rows/ranks sit
// Spacing apart, so no conflicts exist outside the spikes.
//
//atm:noalloc
func fillBurst(air []airspace.Aircraft, s *Spec) {
	v := s.Speed / airspace.PeriodsPerHour
	rows := burstRows(s)
	yBase := -(airspace.SetupHalf - s.Spacing)
	for i := range air {
		w := i % s.Waves
		j := i / s.Waves
		side := j % 2 // 0 = eastbound (from -x), 1 = westbound (from +x)
		m := j / 2
		row := m % rows
		rank := m / rows
		d := v*float64(s.Interval)*float64(w+1) + float64(rank)*s.Spacing
		x, dx := -d, v
		if side == 1 {
			x, dx = d, -v
		}
		place(&air[i], int32(i), x, yBase+float64(row)*s.Spacing,
			s.Alt+float64(w)*burstAltStep, dx, 0)
	}
}
