package broadphase

import (
	"sync/atomic"

	"repro/internal/parexec"

	"repro/internal/airspace"
)

// Counted wraps a PairSource and counts queries and returned
// candidates, so telemetry can report broad-phase pruning
// effectiveness per source. It is a pure pass-through: the wrapped
// source's candidate sets, their order, and its Name are returned
// unchanged, so installing a Counted never alters detection results.
//
// Candidates and AppendCandidates are called concurrently by the
// platform executors, so the tallies are atomic adds. The sums are
// order-independent (integer addition commutes), and Take is only
// called from sequential orchestration code after the scan barrier —
// the counts themselves are therefore deterministic even though the
// increment interleaving is not.
type Counted struct {
	src        PairSource
	queries    atomic.Int64 //atm:allow atomic -- order-independent sum, drained sequentially after the scan barrier
	candidates atomic.Int64 //atm:allow atomic -- order-independent sum, drained sequentially after the scan barrier
}

// NewCounted wraps src.
func NewCounted(src PairSource) *Counted { return &Counted{src: src} }

// Unwrap returns the wrapped source.
func (c *Counted) Unwrap() PairSource { return c.src }

// Name returns the wrapped source's registry name, so labels and
// registry round-trips are unaffected by counting.
func (c *Counted) Name() string { return c.src.Name() }

// Prepare forwards to the wrapped source.
func (c *Counted) Prepare(w *airspace.World) { c.src.Prepare(w) }

// Candidates forwards to the wrapped source, tallying the query and
// its candidate count.
//
//atm:noalloc
//atm:allow atomic -- order-independent sums, read only after the scan barrier
func (c *Counted) Candidates(w *airspace.World, track *airspace.Aircraft) []int32 {
	out := c.src.Candidates(w, track)
	c.queries.Add(1)
	c.candidates.Add(int64(len(out)))
	return out
}

// AppendCandidates forwards to the wrapped source, tallying the query
// and the number of candidates appended.
//
//atm:noalloc
//atm:allow atomic -- order-independent sums, read only after the scan barrier
func (c *Counted) AppendCandidates(dst []int32, w *airspace.World, track *airspace.Aircraft) []int32 {
	before := len(dst)
	dst = c.src.AppendCandidates(dst, w, track)
	c.queries.Add(1)
	c.candidates.Add(int64(len(dst) - before))
	return dst
}

// Take returns the tallies accumulated since the last Take and resets
// them. Call it only from sequential code (between tasks).
//
//atm:allow atomic -- drained sequentially between tasks
func (c *Counted) Take() (queries, candidates int64) {
	return c.queries.Swap(0), c.candidates.Swap(0)
}

// Sharded forwards to the wrapped source; false when it has no
// worker-parallel table mode. Counted thereby satisfies TableSource
// whenever the wrapped source does, so TableOf resolves through it and
// table builds are tallied like any other query traffic.
func (c *Counted) Sharded() bool {
	ts, ok := c.src.(TableSource)
	return ok && ts.Sharded()
}

// SetPool forwards to the wrapped source.
func (c *Counted) SetPool(p *parexec.Pool) { c.src.(TableSource).SetPool(p) }

// PrepareTable forwards to the wrapped source, tallying the build as
// one query per track and its candidate total — the same traffic the
// equivalent per-track AppendCandidates calls would have counted.
//
//atm:allow atomic -- order-independent sums, drained sequentially between tasks
func (c *Counted) PrepareTable() *PairTable {
	t := c.src.(TableSource).PrepareTable()
	c.queries.Add(int64(len(t.Start) - 1))
	c.candidates.Add(int64(len(t.Cand)))
	return t
}

// AddKernelBatches forwards to the wrapped source.
func (c *Counted) AddKernelBatches(n int64) { c.src.(TableSource).AddKernelBatches(n) }

// TakeShardStats forwards to the wrapped source.
func (c *Counted) TakeShardStats() (segments, batches int64) {
	return c.src.(TableSource).TakeShardStats()
}
