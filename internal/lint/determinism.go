package lint

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages lists the packages whose results must be a
// pure function of (workload, seed): the reference tasks, the host
// execution engine, broad-phase pruning, all four platform executors,
// and the seeded generator itself. The determinism analyzer is a
// no-op elsewhere.
var DeterministicPackages = map[string]bool{
	"repro/internal/tasks":      true,
	"repro/internal/parexec":    true,
	"repro/internal/broadphase": true,
	"repro/internal/cuda":       true,
	"repro/internal/ap":         true,
	"repro/internal/mimd":       true,
	"repro/internal/vector":     true,
	"repro/internal/rng":        true,
	// Scenario generation is a pure function of (spec, n, rng state);
	// any time/map/goroutine dependence would break the conformance
	// harness's cross-platform world fixtures.
	"repro/internal/scenario": true,
	// The telemetry recorder feeds from deterministic packages and its
	// stream must be worker-invariant; the live subpackage (HTTP
	// snapshots, outside the contract) is deliberately not listed.
	"repro/internal/telemetry": true,
}

// parexecPath is the one package allowed to own goroutines and
// synchronization: every other deterministic package must route host
// parallelism through it.
const parexecPath = "repro/internal/parexec"

// wallClockFuncs are the time-package functions that read or schedule
// against the host's wall clock. time.Duration arithmetic is fine —
// modeled time is represented as time.Duration throughout.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Determinism flags constructs whose behaviour depends on runtime
// scheduling, global process state, or Go-release-specific algorithms
// inside the designated deterministic packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag nondeterministic constructs (map iteration, global math/rand, wall-clock reads, " +
		"raw goroutines and sync primitives outside internal/parexec, multi-case selects) in deterministic packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !DeterministicPackages[pass.PkgPath] {
		return nil
	}
	inParexec := pass.PkgPath == parexecPath
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		WalkFuncStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						if !pass.Dirs.Allowed(RuleMapRange, n.Pos(), stack) {
							pass.Reportf(n.Pos(), "range over a map iterates in nondeterministic order; iterate indices or a sorted key slice instead (waive with //atm:allow maprange -- why)")
						}
					}
				}
			case *ast.GoStmt:
				if !inParexec && !pass.Dirs.Allowed(RuleGoStmt, n.Pos(), stack) {
					pass.Reportf(n.Pos(), "raw go statement outside internal/parexec; route host parallelism through the parexec engine so chunking and merge order stay deterministic (waive with //atm:allow gostmt -- why)")
				}
			case *ast.SelectStmt:
				comm := 0
				for _, cl := range n.Body.List {
					if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
						comm++
					}
				}
				if comm >= 2 && !pass.Dirs.Allowed(RuleMultiSelect, n.Pos(), stack) {
					pass.Reportf(n.Pos(), "select with %d comm cases picks pseudo-randomly among ready cases; restructure so at most one case can be ready (waive with //atm:allow multiselect -- why)", comm)
				}
			case *ast.SelectorExpr:
				// Methods on sync/atomic value types (atomic.Int64.Add,
				// ...) are the same scheduler-dependent primitive as the
				// package-level funcs; the qualifier switch below cannot
				// see them because the receiver is a field or local, so
				// they are matched through the selection's method object.
				if !inParexec {
					if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
						if m, ok := sel.Obj().(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "sync/atomic" {
							if !pass.Dirs.Allowed(RuleAtomic, n.Pos(), stack) {
								pass.Reportf(n.Pos(), "sync/atomic method %s.%s outside internal/parexec: atomic update order is scheduler-dependent; only order-independent reductions (sums, maxima) are safe, and those belong in per-chunk partials (waive with //atm:allow atomic -- why)", sel.Recv().String(), n.Sel.Name)
							}
						}
					}
				}
				switch pkg := pkgNameOf(pass.TypesInfo, n.X); pkg {
				case "math/rand", "math/rand/v2":
					if !pass.Dirs.Allowed(RuleGlobalRand, n.Pos(), stack) {
						pass.Reportf(n.Pos(), "%s.%s: math/rand is globally seeded and its algorithms change across Go releases; use the pinned internal/rng generator (waive with //atm:allow globalrand -- why)", pkg, n.Sel.Name)
					}
				case "time":
					if wallClockFuncs[n.Sel.Name] && !pass.Dirs.Allowed(RuleWallClock, n.Pos(), stack) {
						pass.Reportf(n.Pos(), "time.%s reads the host wall clock inside a deterministic package; modeled time must derive from operation tallies only (waive with //atm:allow wallclock -- why)", n.Sel.Name)
					}
				case "sync":
					// sync.Pool is exempt: pooled scratch is
					// content-agnostic, so reuse order cannot leak into
					// results.
					if !inParexec && n.Sel.Name != "Pool" && !pass.Dirs.Allowed(RuleSync, n.Pos(), stack) {
						pass.Reportf(n.Pos(), "sync.%s outside internal/parexec: lock acquisition order is scheduler-dependent; use parexec chunking with per-chunk partials (waive with //atm:allow sync -- why)", n.Sel.Name)
					}
				case "sync/atomic":
					if !inParexec && !pass.Dirs.Allowed(RuleAtomic, n.Pos(), stack) {
						pass.Reportf(n.Pos(), "sync/atomic.%s outside internal/parexec: atomic update order is scheduler-dependent; only order-independent reductions (sums, maxima) are safe, and those belong in per-chunk partials (waive with //atm:allow atomic -- why)", n.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}
