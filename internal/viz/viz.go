// Package viz renders a plan view of the simulated airfield as ASCII —
// a tiny stand-in for the controller display the real system drives.
// Aircraft density maps to glyph shade; aircraft with a pending
// conflict render as '!' so a conflict storm is visible at a glance.
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/airspace"
)

// Options controls the rendering.
type Options struct {
	// Width and Height of the character grid (default 64 x 32).
	Width, Height int
	// ShowGrid draws a coarse range grid.
	ShowGrid bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 32
	}
	return o
}

// densityGlyphs shade increasing aircraft counts per cell.
var densityGlyphs = []byte{' ', '.', ':', '+', '*', '#', '@'}

// Render writes the plan view of the world to w.
func Render(out io.Writer, w *airspace.World, opts Options) error {
	opts = opts.withDefaults()
	counts := make([]int, opts.Width*opts.Height)
	conflict := make([]bool, opts.Width*opts.Height)

	cell := func(x, y float64) (int, bool) {
		cx := int((x + airspace.FieldHalf) / (2 * airspace.FieldHalf) * float64(opts.Width))
		cy := int((y + airspace.FieldHalf) / (2 * airspace.FieldHalf) * float64(opts.Height))
		if cx < 0 || cy < 0 || cx >= opts.Width || cy >= opts.Height {
			return 0, false
		}
		// Row 0 is the top of the screen = +Y edge of the field.
		return (opts.Height-1-cy)*opts.Width + cx, true
	}

	conflicts := 0
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		idx, ok := cell(a.X, a.Y)
		if !ok {
			continue
		}
		counts[idx]++
		if a.Col {
			conflict[idx] = true
			conflicts++
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", opts.Width))
	for row := 0; row < opts.Height; row++ {
		b.WriteByte('|')
		for col := 0; col < opts.Width; col++ {
			idx := row*opts.Width + col
			switch {
			case conflict[idx]:
				b.WriteByte('!')
			case counts[idx] > 0:
				g := counts[idx]
				if g >= len(densityGlyphs) {
					g = len(densityGlyphs) - 1
				}
				b.WriteByte(densityGlyphs[g])
			case opts.ShowGrid && (row%8 == 0 || col%16 == 0):
				b.WriteByte('\'')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%d aircraft over %.0fx%.0f nm; %d in conflict ('!'), density . : + * # @\n",
		w.N(), 2*airspace.FieldHalf, 2*airspace.FieldHalf, conflicts)
	_, err := io.WriteString(out, b.String())
	return err
}
