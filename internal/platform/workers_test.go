package platform

import (
	"testing"
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
	"repro/internal/rng"
)

// TestWorkersInvariance pins the host-parallelism contract for every
// registered machine: pinning the worker pool to any size changes
// wall-clock speed only — the produced world, radar frame, and modeled
// task time are bit-identical to the workers=1 run.
//
// The MIMD machine's Track arbitration is interleaving-dependent by
// design on contended traffic (the paper's point), so its Track runs
// on clean, unambiguous geometry where arbitration never fires; its
// jitter streams line up because each run constructs the platform from
// the same seed and issues the same task sequence. Every other machine
// is compared on fully random traffic.
func TestWorkersInvariance(t *testing.T) {
	randomW := airspace.NewWorld(900, rng.New(201))
	randomF := radar.Generate(randomW, radar.DefaultNoise, rng.New(202))

	clean := &airspace.World{Aircraft: make([]airspace.Aircraft, 256)}
	for i := range clean.Aircraft {
		a := &clean.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%16)*8 - 60
		a.Y = float64(i/16)*8 - 60
		a.DX, a.DY = 0.02, -0.01
		a.Alt = 10000
		a.ResetConflict()
	}
	cleanF := radar.Generate(clean, 0.2, rng.New(203))

	type outcome struct {
		trackW, detW *airspace.World
		trackF       *radar.Frame
		trackD, detD time.Duration
	}

	for _, name := range append(Names(), ExtensionNames()...) {
		trackW, trackF := randomW, randomF
		if name == Xeon16 {
			trackW, trackF = clean, cleanF
		}
		// "incremental-sweep" is the sweep source in temporal-coherence
		// mode (not a registry name); each run constructs its own source,
		// so the incremental lane exercises the first-Prepare rebuild.
		for _, srcName := range []string{"", broadphase.GridName, broadphase.SweepName, "incremental-sweep"} {
			run := func(workers int) outcome {
				p := MustNew(name, 77)
				p.(Workered).SetWorkers(workers)
				switch srcName {
				case "":
				case "incremental-sweep":
					p.(PairSourced).SetPairSource(broadphase.NewIncrementalSweep())
				default:
					p.(PairSourced).SetPairSource(broadphase.MustNew(srcName))
				}
				var o outcome
				o.trackW, o.trackF = trackW.Clone(), trackF.Clone()
				o.trackD = p.Track(o.trackW, o.trackF)
				o.detW = randomW.Clone()
				o.detD = p.DetectResolve(o.detW)
				return o
			}
			ref := run(1)
			for _, workers := range []int{3, 8} {
				got := run(workers)
				tag := name + " src=" + srcName
				if got.trackD != ref.trackD || got.detD != ref.detD {
					t.Fatalf("%s workers=%d: modeled time diverged: Track %v vs %v, DetectResolve %v vs %v",
						tag, workers, got.trackD, ref.trackD, got.detD, ref.detD)
				}
				for j := range ref.trackW.Aircraft {
					if ref.trackW.Aircraft[j] != got.trackW.Aircraft[j] {
						t.Fatalf("%s workers=%d: Track aircraft %d diverged:\nworkers=1: %+v\nworkers=%d: %+v",
							tag, workers, j, ref.trackW.Aircraft[j], workers, got.trackW.Aircraft[j])
					}
				}
				for j := range ref.trackF.Reports {
					if ref.trackF.Reports[j] != got.trackF.Reports[j] {
						t.Fatalf("%s workers=%d: Track report %d diverged", tag, workers, j)
					}
				}
				for j := range ref.detW.Aircraft {
					if ref.detW.Aircraft[j] != got.detW.Aircraft[j] {
						t.Fatalf("%s workers=%d: DetectResolve aircraft %d diverged:\nworkers=1: %+v\nworkers=%d: %+v",
							tag, workers, j, ref.detW.Aircraft[j], workers, got.detW.Aircraft[j])
					}
				}
			}
		}
	}
}
