package broadphase

import (
	"reflect"
	"sync"
	"testing"
)

// TestNoByValueSyncFields is the regression test for the sync.Pool copy
// hazard: Sweep and Grid used to embed their scratch pool by value, so
// any copy of the struct silently duplicated pool state (and vet's
// copylocks only fires on an actual copy expression, which reuse
// patterns like CloneInto-style helpers can introduce later without
// touching this package). Sync primitives in long-lived index structs
// must be held by pointer; the atmlint syncfield analyzer enforces the
// same rule statically across the repo.
func TestNoByValueSyncFields(t *testing.T) {
	syncTypes := map[reflect.Type]bool{
		reflect.TypeOf(sync.Pool{}):      true,
		reflect.TypeOf(sync.Mutex{}):     true,
		reflect.TypeOf(sync.RWMutex{}):   true,
		reflect.TypeOf(sync.Once{}):      true,
		reflect.TypeOf(sync.WaitGroup{}): true,
		reflect.TypeOf(sync.Map{}):       true,
		reflect.TypeOf(sync.Cond{}):      true,
	}
	var check func(t *testing.T, typ reflect.Type, path string)
	check = func(t *testing.T, typ reflect.Type, path string) {
		if typ.Kind() != reflect.Struct {
			return
		}
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			fp := path + "." + f.Name
			if syncTypes[f.Type] {
				t.Errorf("%s holds %s by value; copies of the struct would duplicate its state — hold it by pointer", fp, f.Type)
				continue
			}
			if f.Type.Kind() == reflect.Struct {
				check(t, f.Type, fp)
			}
		}
	}
	for _, src := range []PairSource{
		NewBrute(), NewGrid(), NewGridCell(16), NewSweep(), NewIncrementalSweep(), NewCounted(NewSweep()),
	} {
		typ := reflect.TypeOf(src).Elem()
		check(t, typ, typ.Name())
	}
}

// TestScratchPoolSharedAcrossCopies pins the fix's behaviour: because
// the pool is now held by pointer, a shallow copy of the index struct
// shares scratch state with the original instead of forking it.
func TestScratchPoolSharedAcrossCopies(t *testing.T) {
	s := NewSweep()
	dup := *s
	if s.scratch != dup.scratch {
		t.Fatal("copied Sweep does not share the scratch pool")
	}
	g := NewGrid()
	gdup := *g
	if g.scratch != gdup.scratch {
		t.Fatal("copied Grid does not share the scratch pool")
	}
}
