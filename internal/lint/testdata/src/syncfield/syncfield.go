// Fixture for the syncfield analyzer, analyzed as the designated
// package repro/internal/broadphase.
package fixture

import "sync"

type poolByValue struct {
	scratch sync.Pool // want "struct field holds sync.Pool by value"
}

type poolByPointer struct {
	scratch *sync.Pool // clean: copies share the pointee
}

type mutexByValue struct {
	mu sync.Mutex // want "struct field holds sync.Mutex by value"
}

type mutexArray struct {
	locks [4]sync.Mutex // want "struct field holds sync.Mutex by value"
}

type mutexSlice struct {
	locks []sync.Mutex // clean: copies share the backing array
}

type onceAndFriends struct {
	once sync.Once      // want "struct field holds sync.Once by value"
	wg   sync.WaitGroup // want "struct field holds sync.WaitGroup by value"
	m    sync.Map       // want "struct field holds sync.Map by value"
}

type allowed struct {
	//atm:allow syncfield -- fixture: the struct is never copied
	mu sync.Mutex // no diagnostic: line-scoped allow
}

// Package-level variables are not struct fields: a by-value pool var is
// never copied, so it is fine.
var pkgPool sync.Pool

func localStruct() {
	type inner struct {
		mu sync.RWMutex // want "struct field holds sync.RWMutex by value"
	}
	var v inner
	_ = v
	_ = pkgPool
}
