package radarnet

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// defaultNet covers the whole field with a 4x4 grid of 80 nm radars
// (every point within range of several sites).
func defaultNet() *Network {
	return NewGrid(4, 4, 80, 2, 0, radar.DefaultNoise)
}

func TestNewGridPlacement(t *testing.T) {
	n := NewGrid(2, 3, 100, 1, 0, 0.25)
	if len(n.Sites) != 6 {
		t.Fatalf("sites = %d", len(n.Sites))
	}
	for _, s := range n.Sites {
		if !airspace.InField(s.X, s.Y) {
			t.Fatalf("site %d at (%v,%v) outside field", s.ID, s.X, s.Y)
		}
	}
	// Distinct positions.
	seen := map[[2]float64]bool{}
	for _, s := range n.Sites {
		key := [2]float64{s.X, s.Y}
		if seen[key] {
			t.Fatalf("duplicate site position %v", key)
		}
		seen[key] = true
	}
}

func TestNewGridPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params did not panic")
		}
	}()
	NewGrid(0, 1, 10, 1, 0, 0)
}

func TestSiteCoverage(t *testing.T) {
	s := Site{X: 0, Y: 0, RangeNM: 50, ConeNM: 3}
	if !s.Covers(10, 10) {
		t.Fatal("in-range point not covered")
	}
	if s.Covers(100, 0) {
		t.Fatal("out-of-range point covered")
	}
	if s.Covers(1, 1) {
		t.Fatal("cone-of-silence point covered")
	}
	if !s.InCone(1, 1) || s.InCone(10, 10) {
		t.Fatal("InCone wrong")
	}
}

// TestSiteBoundarySemantics pins the open/closed choices at the two
// radii: the cone of silence is closed (a target exactly ConeNM away is
// blind to the site) and the detection range is closed (a target
// exactly RangeNM away is covered). Targets sit on the x-axis so the
// distances are floating-point exact.
func TestSiteBoundarySemantics(t *testing.T) {
	s := Site{X: 0, Y: 0, RangeNM: 50, ConeNM: 3}

	// Exactly at the cone radius: inside the cone, not covered.
	if s.Covers(s.ConeNM, 0) {
		t.Fatal("target exactly at ConeNM covered — cone must be closed")
	}
	if !s.InCone(s.ConeNM, 0) {
		t.Fatal("target exactly at ConeNM not InCone — cone must be closed")
	}
	// Just beyond the cone radius: covered, out of the cone.
	past := math.Nextafter(s.ConeNM, s.RangeNM)
	if !s.Covers(past, 0) || s.InCone(past, 0) {
		t.Fatal("target just past ConeNM must be covered and out of the cone")
	}
	// Exactly at the range radius: still covered.
	if !s.Covers(s.RangeNM, 0) {
		t.Fatal("target exactly at RangeNM not covered — range must be closed")
	}
	// Just beyond the range radius: not covered, not in the cone.
	beyond := math.Nextafter(s.RangeNM, 2*s.RangeNM)
	if s.Covers(beyond, 0) || s.InCone(beyond, 0) {
		t.Fatal("target just past RangeNM must be invisible")
	}
}

// TestGenerateBoundaryClassification drives Generate with stationary
// aircraft placed exactly on a lone site's radii: the ConeNM aircraft
// must be counted cone-blind, the RangeNM aircraft must be reported,
// and one step past the range must be out of range.
func TestGenerateBoundaryClassification(t *testing.T) {
	n := &Network{Sites: []Site{{ID: 0, X: 0, Y: 0, RangeNM: 50, ConeNM: 3}}}
	w := &airspace.World{Aircraft: []airspace.Aircraft{
		{ID: 0, X: 3, Y: 0, Alt: 10000},                       // exactly at ConeNM
		{ID: 1, X: 50, Y: 0, Alt: 10000},                      // exactly at RangeNM
		{ID: 2, X: math.Nextafter(50, 100), Y: 0, Alt: 10000}, // one ulp past range
		{ID: 3, X: math.Nextafter(3, 50), Y: 0, Alt: 10000},   // one ulp past cone
	}}
	_, st := n.Generate(w, rng.New(11))
	want := Stats{Reported: 2, OutOfRange: 1, ConeBlind: 1, MeanCoverage: 0.5}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

// TestCoverageAtBoundary: a point exactly at a lone site's cone radius
// is the true blind case — zero covering sites, in a cone.
func TestCoverageAtBoundary(t *testing.T) {
	n := &Network{Sites: []Site{{ID: 0, X: 0, Y: 0, RangeNM: 50, ConeNM: 3}}}
	covering, blind := n.CoverageAt(3, 0)
	if covering != 0 || !blind {
		t.Fatalf("at cone radius: covering=%d blind=%v, want 0/true", covering, blind)
	}
	covering, blind = n.CoverageAt(50, 0)
	if covering != 1 || blind {
		t.Fatalf("at range radius: covering=%d blind=%v, want 1/false", covering, blind)
	}
}

func TestFullFieldCoverage(t *testing.T) {
	n := defaultNet()
	for x := -120.0; x <= 120; x += 20 {
		for y := -120.0; y <= 120; y += 20 {
			covering, blind := n.CoverageAt(x, y)
			if covering == 0 && !blind {
				t.Fatalf("point (%v,%v) covered by no site", x, y)
			}
		}
	}
}

func TestGenerateReportsMostAircraft(t *testing.T) {
	w := airspace.NewWorld(2000, rng.New(1))
	f, st := defaultNet().Generate(w, rng.New(2))
	if st.Reported != f.N() {
		t.Fatalf("stats reported %d but frame has %d", st.Reported, f.N())
	}
	if st.Reported < w.N()*95/100 {
		t.Fatalf("only %d of %d reported: %+v", st.Reported, w.N(), st)
	}
	if st.MeanCoverage < 2 {
		t.Fatalf("mean coverage %v — paper expects 2 to 6 radars per aircraft", st.MeanCoverage)
	}
	if st.MeanCoverage > 8 {
		t.Fatalf("mean coverage %v implausibly high", st.MeanCoverage)
	}
}

func TestDropoutsReduceReports(t *testing.T) {
	w := airspace.NewWorld(2000, rng.New(3))
	lossy := NewGrid(4, 4, 80, 2, 0.3, radar.DefaultNoise)
	_, st := lossy.Generate(w, rng.New(4))
	if st.Dropouts == 0 {
		t.Fatal("30% dropout produced no losses")
	}
	frac := float64(st.Reported) / float64(w.N())
	if frac > 0.8 || frac < 0.55 {
		t.Fatalf("report fraction %v under 30%% dropout", frac)
	}
}

func TestConeOfSilence(t *testing.T) {
	// One site with a big cone; an aircraft directly overhead is blind.
	n := &Network{Sites: []Site{{ID: 0, X: 0, Y: 0, RangeNM: 200, ConeNM: 10}}, Noise: 0.25}
	w := &airspace.World{Aircraft: []airspace.Aircraft{
		{ID: 0, X: 1, Y: 1, Alt: 10000},   // in the cone
		{ID: 1, X: 50, Y: 50, Alt: 10000}, // covered
	}}
	_, st := n.Generate(w, rng.New(5))
	if st.ConeBlind != 1 || st.Reported != 1 {
		t.Fatalf("stats = %+v, want 1 cone-blind / 1 reported", st)
	}
}

func TestOutOfRange(t *testing.T) {
	n := &Network{Sites: []Site{{ID: 0, X: -120, Y: -120, RangeNM: 10, ConeNM: 1}}, Noise: 0.25}
	w := &airspace.World{Aircraft: []airspace.Aircraft{{ID: 0, X: 120, Y: 120, Alt: 10000}}}
	_, st := n.Generate(w, rng.New(6))
	if st.OutOfRange != 1 || st.Reported != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// The integration property: Task 1 over a lossy radar network still
// correlates every reported aircraft and dead-reckons the rest, so the
// population position error stays bounded.
func TestCorrelateOverLossyNetwork(t *testing.T) {
	w := airspace.NewWorld(1500, rng.New(7))
	net := NewGrid(4, 4, 80, 2, 0.1, radar.DefaultNoise)
	r := rng.New(8)
	for period := 0; period < 5; period++ {
		f, st := net.Generate(w, r)
		cs := tasks.Correlate(w, f)
		if cs.Matched < st.Reported*90/100 {
			t.Fatalf("period %d: matched %d of %d reported (%+v)", period, cs.Matched, st.Reported, cs)
		}
		// Everyone still advances: either to a radar fix or by dead
		// reckoning; nobody is stuck outside the field.
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			if !airspace.InField(a.X, a.Y) {
				maxStep := airspace.SpeedMax / airspace.PeriodsPerHour
				if a.X < -airspace.FieldHalf-maxStep || a.X > airspace.FieldHalf+maxStep ||
					a.Y < -airspace.FieldHalf-maxStep || a.Y > airspace.FieldHalf+maxStep {
					t.Fatalf("aircraft %d lost at (%v,%v)", i, a.X, a.Y)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := airspace.NewWorld(300, rng.New(9))
	n := defaultNet()
	f1, st1 := n.Generate(w.Clone(), rng.New(10))
	f2, st2 := n.Generate(w.Clone(), rng.New(10))
	if st1 != st2 || f1.N() != f2.N() {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	for i := range f1.Reports {
		if f1.Reports[i] != f2.Reports[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}
