// Deadlines: the paper's central comparison, live. Runs the same
// traffic through a CUDA device model, the associative processor and
// the 16-core Xeon at growing aircraft counts, and shows who keeps the
// half-second deadlines and who starts missing them.
//
// Run with:
//
//	go run ./examples/deadlines
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/report"
)

func main() {
	platforms := []string{platform.TitanXPascal, platform.STARAN, platform.Xeon16}
	ns := []int{1000, 4000, 8000, 16000}
	const cycles = 1

	headers := []string{"aircraft"}
	for _, name := range platforms {
		headers = append(headers, platform.Label(name)+" misses", "t1 mean", "t2+3")
	}

	var rows [][]string
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for _, name := range platforms {
			m, err := core.Measure(name, n, cycles, 2018)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row,
				fmt.Sprintf("%d/%d", m.PeriodMisses, m.Periods),
				m.Task1Mean.String(),
				m.Task23Mean.String())
		}
		rows = append(rows, row)
		fmt.Printf("measured %d aircraft\n", n)
	}

	fmt.Println()
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe CUDA and AP rows never miss: synchronous, deterministic execution")
	fmt.Println("can be scheduled against hard deadlines. The Xeon's asynchronous cores")
	fmt.Println("plus lock contention and OS jitter push its 16th period past the")
	fmt.Println("half-second budget as the traffic grows — the paper's MIMD failure mode.")
}
