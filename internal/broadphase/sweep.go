package broadphase

import (
	"math/bits"
	"sort"
	"sync"

	"repro/internal/airspace"
	"repro/internal/parexec"
)

// Sweep is sort-based sweep-and-prune on the per-axis reach intervals
// (Marzolla & D'Angelo's sort-based matching, specialized to per-track
// queries). Prepare sorts the aircraft by the low edge of their x-axis
// envelope; a query binary-searches the run of aircraft whose x
// interval can overlap the track's and filters that run by the actual
// x and y interval tests. The window [lo − maxWidth, hi] is sound
// because no stored interval is wider than maxWidth: anything starting
// earlier has necessarily ended before the query interval begins.
//
// In incremental mode (NewWith with Options.Incremental) the sorted
// order persists across Prepare calls and is repaired with an
// insertion-sort pass instead of re-sorted from scratch. Aircraft move
// a tiny fraction of the airspace between consecutive detection
// invocations (0.5 s tracking period, ~600 kt speeds), so the previous
// order is nearly sorted and the repair is O(N) plus the few shifts
// the motion actually caused; a shift budget bounds the pathological
// case (mass teleports) by falling back to the full sort. Candidate
// sets are bit-identical in both modes: the per-query bitmap emits
// ascending aircraft indices regardless of how the sorted order
// permutes aircraft with equal low-x keys, and window membership
// depends only on the envelope values, which are computed identically.
type Sweep struct {
	n int
	// order holds aircraft indices sorted by ascending envelope low-x;
	// sortedLo mirrors the low-x values in the same order for binary
	// search.
	order    []int32
	sortedLo []float64
	// Envelope edges indexed by aircraft index.
	lox, hix, loy, hiy []float64
	// maxW is the widest x envelope in the world. The envelope fill
	// loop recomputes it as a running max every Prepare: the fill is
	// already O(N) (every position changes every period), so the exact
	// recompute costs nothing extra and can never go stale the way a
	// shrink-tracking scheme could.
	maxW float64

	// incremental enables the persistent-order repair path and the
	// sorted mirror arrays; prepared records that order holds a valid
	// permutation from a previous Prepare of the same world size.
	incremental bool
	prepared    bool
	// sortedBox, maintained only in incremental mode, interleaves the
	// remaining envelope edges permuted into sorted order — hi-x, lo-y,
	// hi-y at stride 3 — so the window walk reads one dense sequential
	// stream instead of gathering through order (a dependent indexed
	// load per visited element) or striding three parallel arrays.
	sortedBox []float64

	// lastIncremental records whether the most recent Prepare repaired
	// the order in place (true) or fell back to / started from a full
	// sort (false).
	lastIncremental bool
	// Update counters, drained by TakeUpdateStats. Prepare is
	// sequential by contract, so plain fields suffice.
	statUpdates, statRebuilds, statMoved, statResorted int64

	// sharded enables the worker-parallel table mode (see table.go):
	// PrepareTable walks the sorted order in parallel segments on pool,
	// and the incremental repair splits into independent runs. pool may
	// be nil (serial); consumers install it through SetPool.
	sharded bool
	pool    *parexec.Pool
	// table is the source-owned candidate table PrepareTable fills;
	// chunkBufs / cnt are its build scratch.
	table     PairTable
	chunkBufs []tableBuf
	cnt       []int32
	// Parallel-repair scratch: per-block key extrema, run boundaries
	// and per-run outcomes.
	chunkMin, chunkMax []float64
	runs               []int32
	runStats           []runStat
	// Shard counters, drained by TakeShardStats. statSegments counts
	// table-build segments; statBatches accumulates consumer-reported
	// batched-kernel iterations. Sequential, like the update counters.
	statSegments, statBatches int64
	// Persistent job bodies for the engine's RunBody dispatch, held as
	// fields so steady-state parallel phases allocate nothing.
	fill   fillJob
	copier copyJob
	minmax minmaxJob
	repair repairJob

	// sorter is the reusable sort.Interface over order/lox: sort.Slice
	// allocates its closure pair on every call, which made Prepare the
	// only allocation left in a steady-state detection period.
	sorter sweepOrder

	// scratch pools *sweepScratch for concurrent queries. Held by
	// pointer: sync.Pool contains a noCopy lock and per-P caches, so a
	// by-value field would make any copy of the Sweep struct (even an
	// accidental one) silently duplicate pool state. The constructor
	// initializes it; see the atmlint syncfield rule.
	scratch *sync.Pool
}

// sweepOrder sorts aircraft indices by ascending envelope low-x.
type sweepOrder struct {
	order []int32
	lox   []float64
}

func (o *sweepOrder) Len() int           { return len(o.order) }
func (o *sweepOrder) Less(a, b int) bool { return o.lox[o.order[a]] < o.lox[o.order[b]] }
func (o *sweepOrder) Swap(a, b int)      { o.order[a], o.order[b] = o.order[b], o.order[a] }

// sweepScratch accumulates one query's candidates as a bitmap, exactly
// as gridScratch does: the sweep window yields hits in low-x order, and
// the trailing-zeros walk re-emits them in the ascending index order
// the scan's tie-break requires without a per-query comparison sort.
type sweepScratch struct {
	words []uint64
}

// NewSweep returns a sweep-and-prune source that rebuilds its index on
// every Prepare.
func NewSweep() *Sweep { return &Sweep{scratch: &sync.Pool{}} }

// NewIncrementalSweep returns a sweep-and-prune source that keeps its
// sorted order across Prepare calls and repairs it in place, exploiting
// temporal coherence. Candidate sets are bit-identical to NewSweep's.
func NewIncrementalSweep() *Sweep {
	s := NewSweep()
	s.incremental = true
	return s
}

// NewShardedSweep returns a sweep source with the worker-parallel table
// mode enabled (see table.go); incremental additionally selects the
// temporal-coherence repair. Candidate sets are bit-identical to
// NewSweep's in every combination.
func NewShardedSweep(incremental bool) *Sweep {
	s := NewSweep()
	s.incremental = incremental
	s.sharded = true
	return s
}

// Name returns "sweep".
func (s *Sweep) Name() string { return SweepName }

// Incremental reports whether the persistent-order repair path is
// enabled.
func (s *Sweep) Incremental() bool { return s.incremental }

// LastPrepareIncremental reports whether the most recent Prepare
// repaired the previous order in place rather than running a full sort.
func (s *Sweep) LastPrepareIncremental() bool { return s.lastIncremental }

// TakeUpdateStats returns the update counters accumulated since the
// last call and resets them. Like Prepare, it is not safe for
// concurrent use.
func (s *Sweep) TakeUpdateStats() UpdateStats {
	st := UpdateStats{
		Updates:  s.statUpdates,
		Rebuilds: s.statRebuilds,
		Moved:    s.statMoved,
		Resorted: s.statResorted,
	}
	s.statUpdates, s.statRebuilds, s.statMoved, s.statResorted = 0, 0, 0, 0
	return st
}

// Prepare computes every aircraft's reach envelope and establishes the
// sorted x order — by full sort normally, by insertion repair of the
// previous order in incremental mode.
func (s *Sweep) Prepare(w *airspace.World) {
	n := w.N()
	reuse := s.growFor(n)
	s.maxW = 0
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		r := Reach(a)
		s.lox[i], s.hix[i] = a.X-r, a.X+r
		s.loy[i], s.hiy[i] = a.Y-r, a.Y+r
		if 2*r > s.maxW {
			s.maxW = 2 * r
		}
	}
	s.finishPrepare(reuse)
}

// PrepareColumns is Prepare reading positions and velocities from a
// column snapshot of the same world state instead of the aircraft
// records. The envelope expressions evaluate on the same float64
// values, so the index — and every candidate set — is bit-identical to
// Prepare's; what changes is that the build walks five dense arrays
// the caller has already made cache-hot for the scan that follows.
func (s *Sweep) PrepareColumns(c *airspace.Columns) {
	n := c.N()
	reuse := s.growFor(n)
	s.maxW = 0
	for i := 0; i < n; i++ {
		r := ReachAt(c.DX[i], c.DY[i])
		s.lox[i], s.hix[i] = c.X[i]-r, c.X[i]+r
		s.loy[i], s.hiy[i] = c.Y[i]-r, c.Y[i]+r
		if 2*r > s.maxW {
			s.maxW = 2 * r
		}
	}
	s.finishPrepare(reuse)
}

// growFor sizes the per-aircraft arrays for n and reports whether the
// previous sorted order may be repaired in place rather than rebuilt.
func (s *Sweep) growFor(n int) (reuse bool) {
	reuse = s.incremental && s.prepared && s.n == n && n > 1
	s.n = n
	if cap(s.order) < n {
		s.order = make([]int32, n)
		s.sortedLo = make([]float64, n)
		s.lox = make([]float64, n)
		s.hix = make([]float64, n)
		s.loy = make([]float64, n)
		s.hiy = make([]float64, n)
	}
	s.order = s.order[:n]
	s.sortedLo = s.sortedLo[:n]
	s.lox, s.hix = s.lox[:n], s.hix[:n]
	s.loy, s.hiy = s.loy[:n], s.hiy[:n]
	return reuse
}

// finishPrepare establishes the sorted order over the freshly written
// envelopes — repairing the previous order when reuse allows, sorting
// otherwise — and rebuilds the sorted-axis views.
func (s *Sweep) finishPrepare(reuse bool) {
	n := s.n
	repaired := false
	if reuse {
		if s.sharded {
			// The run-partitioned repair is used at every worker count
			// (including pool == nil) so its statistics — per-run budget
			// accounting differs from the serial cumulative budget only
			// on aborts — are invariant across workers.
			repaired = s.repairOrderRuns()
		} else {
			repaired = s.repairOrder()
		}
		if repaired {
			s.statUpdates++
		}
	}
	if !repaired {
		if !reuse {
			// Fresh build (first Prepare, or the world size changed):
			// start from the identity permutation like the rebuild
			// path always has.
			for i := range s.order {
				s.order[i] = int32(i)
			}
		}
		// On a budget-exceeded fallback the partially repaired order is
		// still a valid permutation; sorting it as-is is correct (the
		// candidate set does not depend on how equal keys permute).
		s.sorter.order, s.sorter.lox = s.order, s.lox
		sort.Sort(&s.sorter)
		if s.incremental {
			s.statRebuilds++
		}
	}
	s.lastIncremental = repaired

	if s.incremental {
		if cap(s.sortedBox) < 3*n {
			s.sortedBox = make([]float64, 3*n)
		}
		s.sortedBox = s.sortedBox[:3*n]
		for k, id := range s.order {
			s.sortedLo[k] = s.lox[id]
			s.sortedBox[3*k] = s.hix[id]
			s.sortedBox[3*k+1] = s.loy[id]
			s.sortedBox[3*k+2] = s.hiy[id]
		}
	} else {
		for k, id := range s.order {
			s.sortedLo[k] = s.lox[id]
		}
	}
	s.prepared = true
}

// repairBudget bounds the total insertion shifts Prepare may spend
// repairing the previous order before falling back to the full sort.
// ~4·N·log₂N shifts is the point where repair work rivals the
// comparison sort it replaces; normal per-period motion costs well
// under one shift per aircraft, so only mass disruption (a reseeded
// world, wholesale teleports) trips it.
func repairBudget(n int) int64 {
	return 4 * int64(n) * int64(bits.Len(uint(n)))
}

// repairOrder restores sortedness of order (keyed by lox) with a
// bounded insertion sort, counting how many elements were out of place
// (resorted) and how far they shifted (moved). It returns false if the
// shift budget was exceeded; order is then still a valid permutation
// and the caller falls back to the full sort.
//
//atm:noalloc
//atm:noescape
func (s *Sweep) repairOrder() bool {
	order, lox := s.order, s.lox
	budget := repairBudget(len(order))
	var shifts, resorted int64
	for k := 1; k < len(order); k++ {
		id := order[k]
		key := lox[id]
		j := k
		for j > 0 && lox[order[j-1]] > key {
			order[j] = order[j-1]
			j--
		}
		if j == k {
			continue
		}
		order[j] = id
		resorted++
		shifts += int64(k - j)
		// Checked only after the element is fully inserted so that an
		// abort always leaves order a valid permutation.
		if shifts > budget {
			s.statMoved += shifts
			s.statResorted += resorted
			return false
		}
	}
	s.statMoved += shifts
	s.statResorted += resorted
	return true
}

// Candidates returns the aircraft whose envelopes overlap the track's
// on both axes, ascending. Safe for concurrent use after Prepare.
func (s *Sweep) Candidates(w *airspace.World, track *airspace.Aircraft) []int32 {
	return s.AppendCandidates(nil, w, track)
}

// getScratch returns a pooled bitmap sized for nw words; growth is the
// cold path kept outside AppendCandidates' noalloc contract.
func (s *Sweep) getScratch(nw int) *sweepScratch {
	sc, _ := s.scratch.Get().(*sweepScratch)
	if sc == nil {
		sc = &sweepScratch{}
	}
	if len(sc.words) < nw {
		sc.words = make([]uint64, nw)
	}
	return sc
}

// AppendCandidates is Candidates emitting into the caller's buffer: the
// bitmap walk appends straight to dst, so a reused buffer makes the
// query allocation-free. Safe for concurrent use after Prepare.
//
//atm:noalloc
func (s *Sweep) AppendCandidates(dst []int32, w *airspace.World, track *airspace.Aircraft) []int32 {
	if s.n == 0 {
		return dst
	}
	nw := (s.n + 63) / 64
	sc := s.getScratch(nw) //atm:allow noallocflow -- scratch acquisition allocates only on pool miss or fleet growth; steady state reuses pooled words
	dst = s.appendCandidatesID(dst, int(track.ID), sc.words)
	s.scratch.Put(sc)
	return dst
}

// appendCandidatesID is the query core shared by AppendCandidates and
// the table build: emit aircraft i's candidates into dst using the
// caller's bitmap words (len >= ceil(n/64), all zero; left zero on
// return). Pure with respect to the prepared index, so repeated calls
// — and the table built from one walk — return identical sets.
//
//atm:noalloc
func (s *Sweep) appendCandidatesID(dst []int32, i int, words []uint64) []int32 {
	qloX, qhiX := s.lox[i], s.hix[i]
	qloY, qhiY := s.loy[i], s.hiy[i]

	nw := (s.n + 63) / 64
	start := sort.SearchFloat64s(s.sortedLo, qloX-s.maxW)
	if s.incremental {
		// Dense walk over the sorted mirror: identical comparisons on
		// identical values, so the bitmap — and therefore the emitted
		// candidate set — matches the gather path bit for bit. The
		// window end is resolved by binary search up front (first
		// sorted low-x above qhiX — exactly where the rebuild path's
		// walk stops) so the walk spends no comparison on it.
		lo, hi := start, s.n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.sortedLo[mid] <= qhiX {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		end := lo
		box := s.sortedBox
		for k := start; k < end; k++ {
			b := 3 * k
			if box[b] < qloX {
				continue
			}
			if box[b+1] > qhiY || box[b+2] < qloY {
				continue
			}
			j := s.order[k]
			words[j>>6] |= 1 << (uint(j) & 63)
		}
	} else {
		for k := start; k < s.n && s.sortedLo[k] <= qhiX; k++ {
			j := s.order[k]
			if s.hix[j] < qloX {
				continue
			}
			if s.loy[j] > qhiY || s.hiy[j] < qloY {
				continue
			}
			words[j>>6] |= 1 << (uint(j) & 63)
		}
	}
	for wi := 0; wi < nw; wi++ {
		word := words[wi]
		if word == 0 {
			continue
		}
		words[wi] = 0
		base := int32(wi) << 6
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}
