package mimd

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
)

// Platform adapts a Machine to the scheduler's platform interface.
type Platform struct {
	m *Machine
}

// NewPlatform returns a scheduler-facing multicore platform. seed fixes
// the jitter stream for whole-program reproducibility.
func NewPlatform(p Profile, seed uint64) *Platform {
	return &Platform{m: New(p, seed)}
}

// Machine exposes the underlying multicore machine.
func (p *Platform) Machine() *Machine { return p.m }

// SetPairSource installs a broadphase pair source on the machine (nil
// restores the all-pairs scan).
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.m.SetPairSource(src) }

// SetWorkers pins the host worker count used to execute the modeled
// cores (n <= 0 restores the process-default pool).
func (p *Platform) SetWorkers(n int) { p.m.SetWorkers(n) }

// Name returns the machine name.
func (p *Platform) Name() string { return p.m.Name() }

// Deterministic reports false — the MIMD property under test.
func (p *Platform) Deterministic() bool { return false }

// Track runs Task 1 and returns the modeled time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	_, d := p.m.Track(w, f)
	return d
}

// DetectResolve runs Tasks 2-3 and returns the modeled time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	_, d := p.m.DetectResolve(w)
	return d
}
