// Package experiments defines one reproducible experiment per artifact
// of the paper's evaluation (Section 6): Figures 4-9 plus the deadline
// and determinism claims of Section 6.2, and the ablations called out
// in DESIGN.md. Each experiment returns a trace.Dataset that the
// harness (cmd/atmbench, bench_test.go) renders and records.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/fit"
	"repro/internal/parexec"
	"repro/internal/platform"
	"repro/internal/radar"
	"repro/internal/radarnet"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config controls the sweeps.
type Config struct {
	// Cycles is the number of 8-second major cycles measured per point
	// (the paper averages task timings over all iterations).
	Cycles int
	// Seed fixes all randomness.
	Seed uint64
	// Quick trims the sweeps for tests: smaller Ns, one cycle.
	Quick bool
	// Scenario is a workload spec (see internal/scenario) applied to
	// the platform sweeps — Figures 4-9 and the sweep-derived tables.
	// Empty keeps the paper's uniform traffic. The ablation tables
	// always measure under uniform traffic: they study host-side
	// subsystems whose workload is part of the experiment's identity.
	Scenario string
}

// DefaultConfig is the full reproduction configuration. One major
// cycle per measurement gives 16 Task-1 samples and one Tasks-2+3
// sample per sweep point, which the paper's averaging treats as one
// measurement series; raise Cycles for tighter MIMD averages.
var DefaultConfig = Config{Cycles: 1, Seed: 2018}

func (c Config) cycles() int {
	if c.Quick {
		return 1
	}
	if c.Cycles <= 0 {
		return DefaultConfig.Cycles
	}
	return c.Cycles
}

// AllPlatformNs is the aircraft-count sweep for the all-platform
// figures (Figs. 4 and 6). It stops at 16000: the ClearSpeed emulation
// and the Xeon already miss deadlines past that scale, which is the
// regime [12, 13] reported.
func (c Config) AllPlatformNs() []int {
	if c.Quick {
		return []int{500, 1000, 2000}
	}
	return []int{1000, 2000, 4000, 8000, 16000}
}

// NVIDIANs is the aircraft-count sweep for the NVIDIA-only figures
// (Figs. 5, 7, 8, 9), which extend to 32000 aircraft.
func (c Config) NVIDIANs() []int {
	if c.Quick {
		return []int{500, 1000, 2000, 4000}
	}
	return []int{1000, 2000, 4000, 8000, 16000, 32000}
}

// Sweep holds the measurements shared by several figures.
type Sweep struct {
	Platforms []string
	Ns        []int
	// ByPlatform[name][n] is the measurement for that cell.
	ByPlatform map[string]map[int]core.Measurement
}

// RunSweep measures every (platform, N) cell. Cells are fanned across
// the process-default worker pool — each cell builds its own platform
// and world from the fixed seed, so cells are independent and every
// measurement is identical to a serial sweep (task-level Runs issued
// inside a busy pool simply execute inline). Results are collected
// per cell and folded into the maps serially in the original order.
func RunSweep(platforms []string, ns []int, cfg Config) (*Sweep, error) {
	s := &Sweep{Platforms: platforms, Ns: ns, ByPlatform: map[string]map[int]core.Measurement{}}
	type cell struct {
		m   core.Measurement
		err error
	}
	cells := make([]cell, len(platforms)*len(ns))
	parexec.Default().Run(len(cells), 1, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			m, err := core.MeasureWith(platforms[k/len(ns)], cfg.cycles(),
				core.Config{N: ns[k%len(ns)], Seed: cfg.Seed, Scenario: cfg.Scenario})
			cells[k] = cell{m, err}
		}
	})
	for k, c := range cells {
		name, n := platforms[k/len(ns)], ns[k%len(ns)]
		if c.err != nil {
			return nil, fmt.Errorf("experiments: sweep %s/%d: %w", name, n, c.err)
		}
		if s.ByPlatform[name] == nil {
			s.ByPlatform[name] = map[int]core.Measurement{}
		}
		s.ByPlatform[name][n] = c.m
	}
	return s, nil
}

// task selects which task mean a figure plots.
type task int

const (
	task1 task = iota
	task23
)

func (s *Sweep) dataset(id, title string, t task) *trace.Dataset {
	d := &trace.Dataset{ID: id, Title: title, XLabel: "aircraft", YLabel: "seconds"}
	for _, name := range s.Platforms {
		label := platform.Label(name)
		for _, n := range s.Ns {
			m := s.ByPlatform[name][n]
			y := m.Task1Mean
			if t == task23 {
				y = m.Task23Mean
			}
			d.Add(label, float64(n), y.Seconds())
		}
	}
	return d
}

// Fig4 — Task 1 timings on all six platforms.
func Fig4(cfg Config) (*trace.Dataset, error) {
	s, err := RunSweep(platform.Names(), cfg.AllPlatformNs(), cfg)
	if err != nil {
		return nil, err
	}
	return s.dataset("fig4", "Task 1 (tracking & correlation) — all platforms", task1), nil
}

// Fig5 — Task 1 timings on the three NVIDIA cards.
func Fig5(cfg Config) (*trace.Dataset, error) {
	s, err := RunSweep(platform.NVIDIANames(), cfg.NVIDIANs(), cfg)
	if err != nil {
		return nil, err
	}
	return s.dataset("fig5", "Task 1 (tracking & correlation) — NVIDIA cards", task1), nil
}

// Fig6 — Tasks 2+3 timings on all six platforms.
func Fig6(cfg Config) (*trace.Dataset, error) {
	s, err := RunSweep(platform.Names(), cfg.AllPlatformNs(), cfg)
	if err != nil {
		return nil, err
	}
	return s.dataset("fig6", "Tasks 2+3 (collision detection & resolution) — all platforms", task23), nil
}

// Fig7 — Tasks 2+3 timings on the three NVIDIA cards.
func Fig7(cfg Config) (*trace.Dataset, error) {
	s, err := RunSweep(platform.NVIDIANames(), cfg.NVIDIANs(), cfg)
	if err != nil {
		return nil, err
	}
	return s.dataset("fig7", "Tasks 2+3 (collision detection & resolution) — NVIDIA cards", task23), nil
}

// FitReport carries a figure's series together with its curve fits —
// the MATLAB analysis of Section 6.2.
type FitReport struct {
	Dataset   *trace.Dataset
	Linear    *fit.Result
	Quadratic *fit.Result
	// Exponent is the effective growth exponent from a log-log fit:
	// ~1 for a curve that reads as linear on the paper's figures, ~2
	// for a genuinely quadratic one.
	Exponent float64
	// SmallQuadCoeff reports the paper's own Fig. 9 comparison: "the
	// quadratic coefficient is very small compared to the linear
	// coefficient".
	SmallQuadCoeff bool
	// NearLinear is the overall verdict: the curve reads as linear or
	// near-linear over the measured domain (Exponent <= NearLinearExp).
	NearLinear bool
}

// NearLinearExp is the effective-exponent threshold under which a
// timing curve is declared "linear or near linear" — the paper's
// SIMD-like regime. Strictly quadratic growth has exponent 2.
const NearLinearExp = 1.5

func fitSeries(d *trace.Dataset) (*FitReport, error) {
	s := &d.Series[0]
	lin, err := fit.Linear(s.XS(), s.YS())
	if err != nil {
		return nil, err
	}
	quad, err := fit.Quadratic(s.XS(), s.YS())
	if err != nil {
		return nil, err
	}
	exp, err := fit.EffectiveExponent(s.XS(), s.YS())
	if err != nil {
		return nil, err
	}
	return &FitReport{
		Dataset:        d,
		Linear:         lin,
		Quadratic:      quad,
		Exponent:       exp,
		SmallQuadCoeff: abs(quad.Coeffs[2]) < abs(quad.Coeffs[1]),
		NearLinear:     exp <= NearLinearExp,
	}, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Fig8 — the near-linear curve fit for Task 1 on the GTX 880M.
func Fig8(cfg Config) (*FitReport, error) {
	s, err := RunSweep([]string{platform.GTX880M}, cfg.NVIDIANs(), cfg)
	if err != nil {
		return nil, err
	}
	d := s.dataset("fig8", "Task 1 on GTX 880M with curve fit", task1)
	return fitSeries(d)
}

// Fig9 — the quadratic (small-coefficient) fit for Tasks 2+3 on the
// GeForce 9800 GT.
func Fig9(cfg Config) (*FitReport, error) {
	s, err := RunSweep([]string{platform.GeForce9800GT}, cfg.NVIDIANs(), cfg)
	if err != nil {
		return nil, err
	}
	d := s.dataset("fig9", "Tasks 2+3 on GeForce 9800 GT with curve fit", task23)
	return fitSeries(d)
}

// DeadlineTable — Section 6.2's deadline record: periods missed per
// platform per N over the sweep. NVIDIA and AP rows must be all zero;
// the Xeon row grows with N.
func DeadlineTable(cfg Config) (*trace.Dataset, error) {
	s, err := RunSweep(platform.Names(), cfg.AllPlatformNs(), cfg)
	if err != nil {
		return nil, err
	}
	d := &trace.Dataset{ID: "deadlines", Title: "Deadline misses per run", XLabel: "aircraft", YLabel: "missed periods"}
	for _, name := range s.Platforms {
		label := platform.Label(name)
		for _, n := range s.Ns {
			m := s.ByPlatform[name][n]
			d.Add(label, float64(n), float64(m.PeriodMisses))
		}
	}
	return d, nil
}

// DeterminismTable — Section 6.2's repeatability observation: the same
// configuration run repeatedly, reporting the maximum deviation of the
// Task 1 mean across runs. Zero for the CUDA and AP models; positive
// for the Xeon.
func DeterminismTable(cfg Config, runs int) (*trace.Dataset, error) {
	if runs < 2 {
		runs = 2
	}
	n := 2000
	if cfg.Quick {
		n = 500
	}
	d := &trace.Dataset{ID: "determinism", Title: fmt.Sprintf("Max Task-1 timing deviation across %d identical runs", runs), XLabel: "aircraft", YLabel: "seconds"}
	for _, name := range platform.Names() {
		var samples []float64
		for r := 0; r < runs; r++ {
			// The workload seed is fixed — same traffic every run — but
			// the platform seed varies, modeling a fresh set of OS
			// conditions each time the program is re-run. Deterministic
			// machines ignore it; the multicore's jitter does not.
			p, err := platform.New(name, cfg.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			sys := core.NewSystem(p, core.Config{N: n, Seed: cfg.Seed})
			sys.RunMajorCycles(1)
			samples = append(samples, sys.Stats().Task(core.Task1).Mean().Seconds())
		}
		d.Add(platform.Label(name), float64(n), stats.MaxDeviation(samples))
	}
	return d, nil
}

// KernelSplitTable — the A-KRN ablation: the paper fuses Tasks 2 and 3
// into one kernel "because it cuts overhead for memory and data
// transfer". This experiment measures the fused kernel against a
// split detect-then-resolve pipeline on the oldest card, where transfer
// costs bite hardest.
func KernelSplitTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{ID: "kernelsplit", Title: "Fused vs split Tasks 2+3 kernel (GeForce 9800 GT)", XLabel: "aircraft", YLabel: "seconds"}
	for _, n := range cfg.NVIDIANs() {
		root := rng.New(cfg.Seed)
		w := airspace.NewWorld(n, root.Split())
		eng := cuda.NewEngine(cuda.GeForce9800GT)

		fused := eng.CheckCollisionPath(w.Clone())
		d.Add("fused (paper)", float64(n), fused.Time.Seconds())

		split := w.Clone()
		det := eng.DetectOnly(split)
		resv := eng.ResolveOnly(split)
		d.Add("split detect+resolve", float64(n), (det.Time + resv.Time).Seconds())
	}
	return d, nil
}

// BoxPassTable — the A-BOX ablation over Algorithm 1's bounding-box
// doubling: correlation success rate after 1, 2 and 3 passes at a
// noise level that exercises the larger boxes.
func BoxPassTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{ID: "boxpasses", Title: "Correlation success vs bounding-box passes (noise 0.8 nm)", XLabel: "aircraft", YLabel: "fraction matched"}
	// 0.8 nm noise exceeds the initial 0.5 nm half-box, so a large
	// share of radars can only correlate after the box doubles — the
	// situation Algorithm 1's extra passes exist for.
	const noise = 0.8
	for _, n := range cfg.AllPlatformNs() {
		for passes := 1; passes <= tasks.BoxPasses; passes++ {
			root := rng.New(cfg.Seed)
			w := airspace.NewWorld(n, root.Split())
			f := radar.Generate(w, noise, root.Split())
			st := tasks.CorrelateN(w, f, passes)
			d.Add(fmt.Sprintf("%d pass(es)", passes), float64(n), float64(st.Matched)/float64(n))
		}
	}
	return d, nil
}

// NormalizedTable — the Section 7.2 future-work idea: normalize each
// platform's Task 1 curve by its throughput capacity so efficiency can
// be compared across machines of very different size. Throughput
// capacity is estimated as the platform's own Task 1 rate at the
// smallest sweep point (aircraft per second), making every curve start
// at the same normalized height; divergence above 1.0 shows how
// super-linearly the platform degrades with scale.
func NormalizedTable(cfg Config) (*trace.Dataset, error) {
	s, err := RunSweep(platform.Names(), cfg.AllPlatformNs(), cfg)
	if err != nil {
		return nil, err
	}
	d := &trace.Dataset{ID: "normalized", Title: "Task 1 time normalized by small-N throughput", XLabel: "aircraft", YLabel: "normalized time"}
	n0 := s.Ns[0]
	for _, name := range s.Platforms {
		label := platform.Label(name)
		base := s.ByPlatform[name][n0].Task1Mean.Seconds() / float64(n0)
		if base <= 0 {
			continue
		}
		for _, n := range s.Ns {
			m := s.ByPlatform[name][n]
			ideal := base * float64(n) // perfectly linear extrapolation
			d.Add(label, float64(n), m.Task1Mean.Seconds()/ideal)
		}
	}
	return d, nil
}

// VectorTable — the Section 7.2 future-work comparison: the wide-vector
// commodity machines (Xeon Phi, an AVX2 workstation) against the
// fastest GPU and the plain multicore on Task 1. It answers the paper's
// closing question of whether SIMDization on commodity parts recovers
// GPU-like behaviour.
func VectorTable(cfg Config) (*trace.Dataset, error) {
	names := []string{platform.TitanXPascal, platform.XeonPhi, platform.AVX2, platform.Xeon16}
	s, err := RunSweep(names, cfg.AllPlatformNs(), cfg)
	if err != nil {
		return nil, err
	}
	return s.dataset("vector", "Task 1 — wide-vector machines vs GPU vs multicore (§7.2)", task1), nil
}

// RadarNetTable — the radar-environment robustness extension (the
// Section 4.1 discussion the paper simplifies away): tracking quality
// as the radar channel degrades. Traffic is tracked for several major
// cycles over a multi-site radar network at increasing dropout
// probability; the table reports the fraction of aircraft updated from
// a radar fix each period and the resulting mean position error
// against dead-reckoning-only truth.
func RadarNetTable(cfg Config) (*trace.Dataset, error) {
	n := 2000
	periods := 32
	if cfg.Quick {
		n = 500
		periods = 8
	}
	d := &trace.Dataset{ID: "radarnet", Title: "Tracking quality vs radar dropout (multi-site network)", XLabel: "dropout %", YLabel: "value"}
	for _, dropout := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		root := rng.New(cfg.Seed)
		w := airspace.NewWorld(n, root.Split())
		// truth flies the same courses with perfect knowledge.
		truth := w.Clone()
		net := radarnet.NewGrid(4, 4, 80, 2, dropout, radar.DefaultNoise)
		genRng := root.Split()

		matchedTotal := 0
		for p := 0; p < periods; p++ {
			f, _ := net.Generate(w, genRng)
			st := tasks.Correlate(w, f)
			matchedTotal += st.Matched
			for i := range truth.Aircraft {
				a := &truth.Aircraft[i]
				a.X += a.DX
				a.Y += a.DY
			}
			truth.WrapAll()
		}
		errSum := 0.0
		for i := range w.Aircraft {
			dx := w.Aircraft[i].X - truth.Aircraft[i].X
			dy := w.Aircraft[i].Y - truth.Aircraft[i].Y
			errSum += math.Hypot(dx, dy)
		}
		x := dropout * 100
		d.Add("fraction radar-tracked", x, float64(matchedTotal)/float64(n*periods))
		d.Add("mean position error (nm)", x, errSum/float64(n))
	}
	return d, nil
}

// BroadphaseTable — the broad-phase pruning sweep: for each pair
// source, the number of pair evaluations (DetectStats.PairChecks) and
// the host wall time of one Task 2 detection pass over a fresh world at
// each aircraft count. Brute is swept over the all-platform Ns only —
// its quadratic pair count is the curve the pruned sources are measured
// against; grid and sweep extend to 100k aircraft, the scale the
// ROADMAP's "as fast as the hardware allows" goal targets.
//
// Wall times are host measurements (this is a host-algorithm
// comparison, not a platform model) and so vary run to run; the pair
// counts are exact and reproducible.
func BroadphaseTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{
		ID:     "broadphase",
		Title:  "Broad-phase pruning: pair evaluations and detection wall time per source",
		XLabel: "aircraft",
		YLabel: "value",
	}
	extended := []int{32000, 100000}
	if cfg.Quick {
		extended = nil
	}
	for _, name := range broadphase.Names() {
		ns := cfg.AllPlatformNs()
		if name != broadphase.BruteName {
			ns = append(append([]int{}, ns...), extended...)
		}
		for _, n := range ns {
			w := airspace.NewWorld(n, rng.New(cfg.Seed))
			src := broadphase.MustNew(name)
			start := time.Now()
			st := tasks.DetectWith(w, src)
			wall := time.Since(start)
			d.Add("pairs:"+name, float64(n), float64(st.PairChecks))
			d.Add("ms:"+name, float64(n), wall.Seconds()*1000)
		}
	}
	return d, nil
}

// HostPerfTable — the host-execution engine benchmark behind
// results/hostperf.csv: for each task and aircraft count it reports
// host wall time (ms) and heap allocations per invocation at one
// worker and at NumCPU workers. Modeled device times are untouched by
// the engine (see TestWorkersInvariance); this table records what the
// engine buys the *simulator* — wall-clock speed on multicore hosts
// and allocation-free steady-state periods.
//
// Wall times are host measurements and vary run to run; the alloc
// counts are the reproducible part.
func HostPerfTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{
		ID:     "hostperf",
		Title:  "Host engine: wall ms and allocs per task invocation, 1 worker vs NumCPU",
		XLabel: "aircraft",
		YLabel: "value",
	}
	ns := []int{4000, 16000}
	iters := 5
	if cfg.Quick {
		ns = []int{500, 1000}
		iters = 2
	}
	workerCounts := []int{1}
	if nc := runtime.NumCPU(); nc > 1 {
		workerCounts = append(workerCounts, nc)
	}

	for _, n := range ns {
		root := rng.New(cfg.Seed)
		baseW := airspace.NewWorld(n, root.Split())
		baseF := radar.Generate(baseW, radar.DefaultNoise, root.Split())
		var w airspace.World
		var f radar.Frame

		for _, workers := range workerCounts {
			pool := parexec.NewPool(workers)
			for _, bench := range []struct {
				name string
				run  func()
			}{
				{"correlate", func() { baseW.CloneInto(&w); baseF.CloneInto(&f); tasks.CorrelateNExec(&w, &f, tasks.BoxPasses, pool) }},
				{"detect", func() { baseW.CloneInto(&w); tasks.DetectExec(&w, nil, pool) }},
				{"detectresolve", func() { baseW.CloneInto(&w); tasks.DetectResolveExec(&w, nil, pool) }},
			} {
				bench.run() // warm the scratch pools and clone buffers
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				mallocs := ms.Mallocs
				start := time.Now()
				for it := 0; it < iters; it++ {
					bench.run()
				}
				wall := time.Since(start)
				runtime.ReadMemStats(&ms)
				tag := fmt.Sprintf("%s:w%d", bench.name, workers)
				d.Add("ms:"+tag, float64(n), wall.Seconds()*1000/float64(iters))
				d.Add("allocs:"+tag, float64(n), float64(ms.Mallocs-mallocs)/float64(iters))
			}
		}
	}
	return d, nil
}

// CapacityTable — the paper's Section 7.2 proposal made concrete:
// "obtain or determine the maximum throughput capacity ... of as many
// of these systems as possible". For each platform the table reports
// the largest aircraft count in a doubling sweep (1000, 2000, ...,
// 32000) whose worst-case period — the 16th, carrying Task 1 plus the
// fused Tasks 2+3 — still fits the half-second budget. The
// nondeterministic multicore is probed three times and must pass all
// three.
//
// This experiment is not part of atmbench's default run: the largest
// probes are host-expensive. Invoke it with -table capacity.
func CapacityTable(cfg Config) (*trace.Dataset, error) {
	maxN := 32000
	if cfg.Quick {
		maxN = 4000
	}
	d := &trace.Dataset{ID: "capacity", Title: "Estimated throughput capacity (largest N meeting every deadline)", XLabel: "platform#", YLabel: "aircraft"}
	names := append(append([]string{}, platform.Names()...), platform.XeonPhi)
	for idx, name := range names {
		capacity := 0
		for n := 1000; n <= maxN; n *= 2 {
			if !sixteenthPeriodFits(name, n, cfg) {
				break
			}
			capacity = n
		}
		d.Add(platform.Label(name), float64(idx+1), float64(capacity))
	}
	return d, nil
}

// sixteenthPeriodFits probes the binding schedule constraint: one 16th
// period (Task 1 + Tasks 2+3) at n aircraft.
func sixteenthPeriodFits(name string, n int, cfg Config) bool {
	probes := 1
	if name == platform.Xeon16 {
		probes = 3 // jittery machine: require all probes to pass
	}
	for k := 0; k < probes; k++ {
		p, err := platform.New(name, cfg.Seed+uint64(k))
		if err != nil {
			return false
		}
		root := rng.New(cfg.Seed)
		w := airspace.NewWorld(n, root.Split())
		f := radar.Generate(w, radar.DefaultNoise, root.Split())
		load := p.Track(w, f) + p.DetectResolve(w)
		if load > sched.PeriodDur {
			return false
		}
	}
	return true
}

// CoherenceTable — the temporal-coherence ablation behind
// results/coherence.csv: host wall time of one fused Tasks 2+3 pass
// with the sweep broad phase rebuilding from scratch every pass
// ("rebuild") versus repairing the previous period's sorted order
// ("incremental", the -coherent mode). Both lanes run the same world
// through the same dead-reckoned motion, so the pair sets — and the
// modeled device times — are bit-identical; the table measures only
// what coherence buys the host.
//
// The motion axis matters: the m-series advance the world by m radar
// periods between detection passes (m=1 is back-to-back detection,
// m=16 is the real schedule's major cycle, m=64 is a stress case where
// displacements approach the sort window). The incremental lane also
// reports how many aircraft actually moved in the sorted order per
// repair ("moved:mN"), the quantity the insertion-sort budget is
// keyed to.
//
// Wall times are host measurements and vary run to run; the moved
// counts are exact and reproducible.
//
// This experiment is not part of atmbench's default run; invoke it
// with -table coherence.
func CoherenceTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{
		ID:     "coherence",
		Title:  "Temporal coherence: rebuild vs incremental sweep, wall ms per detection pass",
		XLabel: "aircraft",
		YLabel: "value",
	}
	ns := []int{1000, 4000}
	iters := 8
	if cfg.Quick {
		ns = []int{300, 600}
		iters = 2
	}
	motions := []int{1, 16, 64}
	pool := parexec.NewPool(1)
	for _, n := range ns {
		for _, periods := range motions {
			for _, mode := range []struct {
				name string
				src  broadphase.PairSource
			}{
				{"rebuild", broadphase.MustNew(broadphase.SweepName)},
				{"incremental", broadphase.NewIncrementalSweep()},
			} {
				w := airspace.NewWorld(n, rng.New(cfg.Seed))
				tasks.DetectResolveExec(w, mode.src, pool) // warm scratch + seed the sorted order
				if m := broadphase.MaintainerOf(mode.src); m != nil {
					m.TakeUpdateStats() // exclude the warm-up rebuild from the stats
				}
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				mallocs := ms.Mallocs
				var wall time.Duration
				for it := 0; it < iters; it++ {
					for p := 0; p < periods; p++ {
						for i := range w.Aircraft {
							a := &w.Aircraft[i]
							a.X += a.DX
							a.Y += a.DY
							airspace.Wrap(a)
						}
					}
					start := time.Now()
					tasks.DetectResolveExec(w, mode.src, pool)
					wall += time.Since(start)
				}
				runtime.ReadMemStats(&ms)
				tag := fmt.Sprintf("%s:m%d", mode.name, periods)
				d.Add("ms:"+tag, float64(n), wall.Seconds()*1000/float64(iters))
				d.Add("allocs:"+tag, float64(n), float64(ms.Mallocs-mallocs)/float64(iters))
				if m := broadphase.MaintainerOf(mode.src); m != nil && m.Incremental() {
					st := m.TakeUpdateStats()
					if reps := st.Updates + st.Rebuilds; reps > 0 {
						d.Add(fmt.Sprintf("moved:m%d", periods), float64(n), float64(st.Moved)/float64(reps))
					}
					d.Add(fmt.Sprintf("fallbacks:m%d", periods), float64(n), float64(st.Rebuilds))
				}
			}
		}
	}
	return d, nil
}

// ParShardTable — the worker-parallel broad-phase ablation behind
// results/parshard.csv: host wall time of one fused Tasks 2+3 pass with
// the sharded table mode (-parshard: worker-parallel table build plus
// the branch-free batched pair kernel) across aircraft counts, worker
// counts and coherence modes. Results are bit-identical to the scalar
// sweep in every cell (see the conformance matrix); the table measures
// only what the mode buys the host, alongside the shard telemetry —
// table-build segments and batched-kernel iterations per pass, both of
// which are exact, reproducible, and identical at every worker count.
//
// Wall times are host measurements and vary run to run (and worker
// counts above the host's core count buy nothing); the segment and
// batch counts are the reproducible part.
//
// This experiment is not part of atmbench's default run; invoke it
// with -table parshard.
func ParShardTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{
		ID:     "parshard",
		Title:  "Worker-parallel broad phase + batched kernel: wall ms and shard counters per detection pass",
		XLabel: "aircraft",
		YLabel: "value",
	}
	ns := []int{1000, 4000, 10000}
	iters := 8
	if cfg.Quick {
		ns = []int{300, 600}
		iters = 2
	}
	for _, n := range ns {
		for _, workers := range []int{1, 8} {
			pool := parexec.NewPool(workers)
			for _, coh := range []bool{false, true} {
				src := broadphase.NewShardedSweep(coh)
				w := airspace.NewWorld(n, rng.New(cfg.Seed))
				tasks.DetectResolveExec(w, src, pool) // warm scratch, table and sorted order
				src.TakeShardStats()                  // exclude the warm-up pass from the counters
				var wall time.Duration
				for it := 0; it < iters; it++ {
					for i := range w.Aircraft {
						a := &w.Aircraft[i]
						a.X += a.DX
						a.Y += a.DY
						airspace.Wrap(a)
					}
					start := time.Now()
					tasks.DetectResolveExec(w, src, pool)
					wall += time.Since(start)
				}
				segments, batches := src.TakeShardStats()
				mode := "rebuild"
				if coh {
					mode = "coherent"
				}
				tag := fmt.Sprintf("%s:w%d", mode, workers)
				d.Add("ms:"+tag, float64(n), wall.Seconds()*1000/float64(iters))
				d.Add("segments:"+tag, float64(n), float64(segments)/float64(iters))
				d.Add("batches:"+tag, float64(n), float64(batches)/float64(iters))
			}
		}
	}
	return d, nil
}

// MeasurementDuration is a tiny helper for callers formatting results.
func MeasurementDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// AllResults bundles every artifact of the evaluation, computed from
// two shared sweeps (the all-platform sweep and the NVIDIA-only sweep)
// so that each (platform, N) cell is measured exactly once.
type AllResults struct {
	Fig4, Fig5, Fig6, Fig7 *trace.Dataset
	Fig8, Fig9             *FitReport
	Deadlines              *trace.Dataset
	Normalized             *trace.Dataset
}

// RunAll measures the two sweeps once and derives Figures 4-9 plus the
// deadline and normalized tables from them. The determinism table and
// the ablations are cheaper and independently computed (see
// DeterminismTable, KernelSplitTable, BoxPassTable).
func RunAll(cfg Config) (*AllResults, error) {
	all, err := RunSweep(platform.Names(), cfg.AllPlatformNs(), cfg)
	if err != nil {
		return nil, err
	}
	nv, err := RunSweep(platform.NVIDIANames(), cfg.NVIDIANs(), cfg)
	if err != nil {
		return nil, err
	}

	res := &AllResults{
		Fig4: all.dataset("fig4", "Task 1 (tracking & correlation) — all platforms", task1),
		Fig5: nv.dataset("fig5", "Task 1 (tracking & correlation) — NVIDIA cards", task1),
		Fig6: all.dataset("fig6", "Tasks 2+3 (collision detection & resolution) — all platforms", task23),
		Fig7: nv.dataset("fig7", "Tasks 2+3 (collision detection & resolution) — NVIDIA cards", task23),
	}

	// Fig. 8: the 880M Task-1 series from the NVIDIA sweep.
	fig8 := &trace.Dataset{ID: "fig8", Title: "Task 1 on GTX 880M with curve fit", XLabel: "aircraft", YLabel: "seconds"}
	label880 := platform.Label(platform.GTX880M)
	for _, p := range res.Fig5.Get(label880).Points {
		fig8.Add(label880, p.X, p.Y)
	}
	if res.Fig8, err = fitSeries(fig8); err != nil {
		return nil, err
	}

	// Fig. 9: the 9800 GT Tasks-2+3 series from the NVIDIA sweep.
	fig9 := &trace.Dataset{ID: "fig9", Title: "Tasks 2+3 on GeForce 9800 GT with curve fit", XLabel: "aircraft", YLabel: "seconds"}
	labelOld := platform.Label(platform.GeForce9800GT)
	for _, p := range res.Fig7.Get(labelOld).Points {
		fig9.Add(labelOld, p.X, p.Y)
	}
	if res.Fig9, err = fitSeries(fig9); err != nil {
		return nil, err
	}

	// Deadline table from the all-platform sweep.
	dl := &trace.Dataset{ID: "deadlines", Title: "Deadline misses per run", XLabel: "aircraft", YLabel: "missed periods"}
	for _, name := range all.Platforms {
		label := platform.Label(name)
		for _, n := range all.Ns {
			dl.Add(label, float64(n), float64(all.ByPlatform[name][n].PeriodMisses))
		}
	}
	res.Deadlines = dl

	// Throughput-normalized table from the all-platform sweep.
	norm := &trace.Dataset{ID: "normalized", Title: "Task 1 time normalized by small-N throughput", XLabel: "aircraft", YLabel: "normalized time"}
	n0 := all.Ns[0]
	for _, name := range all.Platforms {
		label := platform.Label(name)
		base := all.ByPlatform[name][n0].Task1Mean.Seconds() / float64(n0)
		if base <= 0 {
			continue
		}
		for _, n := range all.Ns {
			norm.Add(label, float64(n), all.ByPlatform[name][n].Task1Mean.Seconds()/(base*float64(n)))
		}
	}
	res.Normalized = norm
	return res, nil
}

// TelemetryTable — the per-sweep-point telemetry dump behind
// results/telemetry.csv: every platform is run for one major cycle at
// each sweep size with a telemetry recorder attached, and the
// recorder's aggregates become the table — modeled task seconds as
// seen by the span tracer (which must equal the scheduler's account;
// see telemetry's integration tests) plus the task-statistics
// counters. This is both a figure-style artifact and a cheap
// end-to-end check that instrumentation covers every platform.
func TelemetryTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{
		ID:     "telemetry",
		Title:  "Telemetry aggregates per platform: modeled task seconds and task counters",
		XLabel: "aircraft",
		YLabel: "value",
	}
	for _, name := range platform.Names() {
		label := platform.Label(name)
		for _, n := range cfg.AllPlatformNs() {
			p, err := platform.New(name, cfg.Seed)
			if err != nil {
				return nil, err
			}
			sys := core.NewSystem(p, core.Config{N: n, Seed: cfg.Seed})
			rec := telemetry.NewRecorder(telemetry.DefaultCapacity)
			sys.SetTelemetry(rec)
			sys.RunMajorCycles(cfg.cycles())
			d.Add("task1.s:"+label, float64(n), time.Duration(rec.SumOf(core.Task1)).Seconds())
			d.Add("task23.s:"+label, float64(n), time.Duration(rec.SumOf(core.Task23)).Seconds())
			d.Add("matched:"+label, float64(n), float64(rec.SumOf(telemetry.NameTrackMatched)))
			d.Add("pairchecks:"+label, float64(n), float64(rec.SumOf(telemetry.NameDetectPairChecks)))
			d.Add("conflicts:"+label, float64(n), float64(rec.SumOf(telemetry.NameDetectConflicts)))
			d.Add("resolved:"+label, float64(n), float64(rec.SumOf(telemetry.NameDetectResolved)))
		}
	}
	return d, nil
}

// ScenarioNs is the aircraft-count sweep for the scenario table. It is
// deliberately modest: structured workloads (converging circles, dense
// sectors) hold far more simultaneous conflicts per aircraft than the
// paper's uniform traffic, so the interesting comparisons happen well
// below the uniform sweeps' top end.
func (c Config) ScenarioNs() []int {
	if c.Quick {
		return []int{250, 500}
	}
	return []int{500, 1000, 2000}
}

// ScenarioTable — modeled load per scenario family: every family at
// its default parameters, run on every platform (extensions included)
// across ScenarioNs. Per cell it reports the Task-1 and Tasks-2+3 mean
// in modeled milliseconds plus missed periods, showing how traffic
// structure, not just aircraft count, drives each architecture's
// conflict load. Family/N combinations the setup area cannot hold
// (e.g. streams beyond its lane capacity) are skipped; the families'
// Validate errors document the bound.
func ScenarioTable(cfg Config) (*trace.Dataset, error) {
	d := &trace.Dataset{
		ID:     "scenario",
		Title:  "Scenario families: modeled task means (ms) and deadline misses per platform",
		XLabel: "aircraft",
		YLabel: "value",
	}
	for _, f := range scenario.Families() {
		spec := scenario.DefaultSpec(f)
		for _, name := range append(platform.Names(), platform.ExtensionNames()...) {
			label := platform.Label(name)
			for _, n := range cfg.ScenarioNs() {
				if err := spec.Validate(n); err != nil {
					continue // family capacity bound; see doc comment
				}
				m, err := core.MeasureWith(name, cfg.cycles(), core.Config{
					N: n, Seed: cfg.Seed, Scenario: spec.String(),
				})
				if err != nil {
					return nil, err
				}
				key := string(f) + ":" + label
				d.Add("task1.ms:"+key, float64(n), float64(m.Task1Mean)/float64(time.Millisecond))
				d.Add("task23.ms:"+key, float64(n), float64(m.Task23Mean)/float64(time.Millisecond))
				d.Add("miss:"+key, float64(n), float64(m.PeriodMisses))
			}
		}
	}
	return d, nil
}
