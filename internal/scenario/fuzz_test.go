package scenario

import (
	"strings"
	"testing"
)

// FuzzParseSpec hardens the spec parser, the one component of this
// package that eats attacker-adjacent input (the atmserve query
// parameter). Invariants: never panic; accepted specs round-trip
// through their canonical String form to the identical Spec; the
// canonical form is a fixed point; Validate never panics on an
// accepted spec at any aircraft count.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"uniform",
		"circle",
		"circle:radius=50,speed=250",
		"streams:streams=6,angle=30,spacing=4,lanegap=5",
		"dense:clusters=3,radius=20",
		"layers:bands=2,gap=800",
		"burst:waves=2,interval=30",
		"bogus",
		":radius=1",                // empty family
		"circle:",                  // empty parameter list
		"circle:radius",            // missing =
		"circle:=5",                // missing key
		"circle:radius=5,radius=6", // duplicate key
		"circle:waves=3",           // wrong family's key
		"circle:radius=1e999",      // overflows float64
		"circle:radius=-1e308",     // huge negative
		"circle:radius=NaN",
		"circle:radius=Inf",
		"streams:streams=99999999999999999999", // overflows int
		"burst:waves=-7",
		"layers:bands=2,gap=0x10",
		"uniform:radius=1", // uniform takes no keys
		"circle:radius=50,,speed=250",
		"CIRCLE",
		"circle:RADIUS=50",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseSpec(text)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "scenario: ") {
				t.Fatalf("ParseSpec(%q) error %q lacks the package prefix", text, err)
			}
			return
		}
		canon := spec.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q rejected: %v", canon, text, err)
		}
		if again != spec {
			t.Fatalf("round trip of %q via %q changed the spec:\n  %+v\n  %+v", text, canon, spec, again)
		}
		if fp := again.String(); fp != canon {
			t.Fatalf("canonical form of %q not a fixed point: %q -> %q", text, canon, fp)
		}
		// Validate must never panic, whatever the count; errors are fine.
		for _, n := range []int{0, 1, 1000, 1 << 20} {
			_ = spec.Validate(n)
		}
	})
}
