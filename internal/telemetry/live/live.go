// Package live publishes a Recorder's per-name aggregates over HTTP
// for long atmsim runs: an expvar-style JSON endpoint that can be
// polled while the simulation loop is running.
//
// The Recorder itself is single-goroutine by contract, so this
// package never reads it concurrently: the simulation loop calls
// Publisher.Update between periods (or major cycles), which snapshots
// the aggregates under the publisher's lock; HTTP handlers serve the
// latest snapshot. This package is deliberately outside the
// determinism contract (it exists to observe wall-clock consumers),
// which is why it is a subpackage rather than part of telemetry
// proper.
package live

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/telemetry"
)

// Stat is one name's snapshot: how many events it recorded and its
// running aggregate (spans: total modeled nanoseconds; counters:
// total; gauges: last reading).
type Stat struct {
	Name  string
	Count int64
	Sum   int64
}

// Publisher holds the latest snapshot of a recorder's aggregates and
// serves it as JSON. The zero value is ready to use.
type Publisher struct {
	mu      sync.Mutex
	stats   []Stat
	total   uint64
	dropped uint64
	period  int32
}

// Update snapshots the recorder's aggregates. Call it from the
// goroutine that owns the recorder (the simulation loop), between
// periods.
func (p *Publisher) Update(r *telemetry.Recorder) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = p.stats[:0]
	for id := 0; id < r.Names(); id++ {
		nid := telemetry.NameID(id)
		if r.Count(nid) == 0 {
			continue
		}
		p.stats = append(p.stats, Stat{Name: r.Name(nid), Count: r.Count(nid), Sum: r.Sum(nid)})
	}
	sort.Slice(p.stats, func(i, j int) bool { return p.stats[i].Name < p.stats[j].Name })
	p.total = r.Total()
	p.dropped = r.Dropped()
	p.period = r.Period()
}

// Snapshot returns a copy of the latest stats.
func (p *Publisher) Snapshot() []Stat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Stat, len(p.stats))
	copy(out, p.stats)
	return out
}

// ServeHTTP writes the latest snapshot as a JSON object in expvar
// style: {"telemetry": {"total": ..., "dropped": ..., "period": ...,
// "stats": {name: {"count": c, "sum": s}, ...}}}.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, `{"telemetry":{"total":%d,"dropped":%d,"period":%d,"stats":{`,
		p.total, p.dropped, p.period)
	for i, st := range p.stats {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, `%s:{"count":%d,"sum":%d}`, strconv.Quote(st.Name), st.Count, st.Sum)
	}
	fmt.Fprint(w, "}}}\n")
}

// String renders the snapshot as JSON, which also lets a Publisher be
// registered directly as an expvar.Var.
func (p *Publisher) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := fmt.Sprintf(`{"total":%d,"dropped":%d,"period":%d}`, p.total, p.dropped, p.period)
	return s
}

var _ expvar.Var = (*Publisher)(nil)

// Handler returns an http.Handler serving the publisher's snapshot at
// its root and the standard expvar page under /debug/vars.
func Handler(p *Publisher) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", p)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
