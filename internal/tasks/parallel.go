// Host-parallel execution of the reference tasks on the parexec
// engine.
//
// Parallelism here is about the simulator's wall clock only: every
// modeled-time figure is derived from operation tallies elsewhere, and
// every function in this file is bit-for-bit identical to the serial
// reference at any worker count. The construction is phased: a
// parallel phase computes per-item results that depend only on state
// the task never mutates, and a serial phase replays the reference
// control flow in aircraft-index (or radar-index) order, consuming the
// precomputed results instead of recomputing them.
//
// Why that is exact, per task:
//
//   - Detect: the scan reads only X, Y, DX, DY, Alt and ID, while
//     Detect mutates only the conflict fields (Col, ColWith, TimeTill,
//     BatX, BatY). Every per-track scan is therefore independent of
//     the others and can run concurrently; the serial replay applies
//     ResetConflict/MarkConflict in index order, reproducing the
//     reference's final state and stats exactly.
//
//   - DetectResolve: the only cross-track dependency is a committed
//     heading change (DX, DY) by an earlier-index aircraft. The
//     parallel phase scans every track against the pre-resolution
//     velocity snapshot; the serial replay keeps a list of aircraft
//     whose heading was committed ("dirty") and recomputes a
//     precomputed scan only when a dirty aircraft could influence it —
//     decided by the broadphase reach-envelope test, which is exact
//     for any heading at a given speed (see package broadphase), and
//     rotation preserves speed. A pair outside each other's envelopes
//     contributes no conflict with tmin below CriticalTime under the
//     old or the new heading, and the scan's strict-< fold ignores
//     such pairs entirely, so the precomputed result is already the
//     one the reference would compute.
//
//   - Correlate: expected positions are fixed for the whole
//     invocation, so each (radar, pass) bounding-box candidate set is
//     a pure function of geometry. The parallel phase computes those
//     candidate lists per pass; the serial replay runs the reference
//     matching state machine over the candidates only, in radar-index
//     then aircraft-index order, and reconstructs the Comparisons
//     tally (which the reference counts per eligible aircraft, hit or
//     miss) from the candidate walk plus the set of aircraft withdrawn
//     before the scan started. A radar released mid-pass has no
//     precomputed list and falls back to the reference inner loop.
package tasks

import (
	"sync"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/parexec"
	"repro/internal/radar"
)

// Work-queue grains: outer loops hand out small index ranges so skewed
// per-item costs (broad-phase candidate counts vary wildly) keep every
// worker busy; the inner pair scan uses a larger grain because its
// per-item cost is uniform.
const (
	scanGrain  = 32
	radarGrain = 16
	elemGrain  = 1024
	innerGrain = 1024
)

// rotationSchedule is RotationSchedule computed once: the schedule is
// probed for every conflicted aircraft and must not allocate per use.
var rotationSchedule = RotationSchedule()

// scanResult is one track's scan outcome: the earliest conflict start,
// the partner that achieved it (first-wins on ties), the number of pair
// checks performed, and — on the batched-kernel path — the number of
// 8-wide batch iterations executed (tail included).
type scanResult struct {
	tmin    float64
	with    int32
	checks  int32
	batches int32
}

// workerBuf is one worker's candidate buffer, padded so neighbouring
// workers' slice headers don't share a cache line.
type workerBuf struct {
	cand []int32
	_    [40]byte
}

// detectScratch holds the reusable state of one Detect/DetectResolve
// invocation; a sync.Pool keeps the hot path allocation-free.
type detectScratch struct {
	res   []scanResult
	reach []float64
	parts []scanResult
	dirty []int32
	bufs  []workerBuf
	// cols is the column snapshot used by the coherent (SoA) scan path
	// in soa.go; the record path never touches it.
	cols airspace.Columns
	// tjob is the sharded path's persistent scan body (batch.go), held
	// here so its RunBody dispatch allocates nothing.
	tjob tableScanJob
}

var detectScratchPool sync.Pool

func getDetectScratch(n, workers int) *detectScratch {
	sc, _ := detectScratchPool.Get().(*detectScratch)
	if sc == nil {
		sc = &detectScratch{}
	}
	if cap(sc.res) < n {
		sc.res = make([]scanResult, n)
	}
	sc.res = sc.res[:n]
	if cap(sc.reach) < n {
		sc.reach = make([]float64, n)
	}
	sc.reach = sc.reach[:n]
	if len(sc.bufs) < workers {
		sc.bufs = append(sc.bufs[:cap(sc.bufs)], make([]workerBuf, workers-cap(sc.bufs))...)
	}
	return sc
}

func putDetectScratch(sc *detectScratch) { detectScratchPool.Put(sc) }

// scanWith evaluates one candidate heading (vx, vy) for the track
// aircraft against every other aircraft — or the broadphase candidate
// set — exactly as the reference scan does, accumulating into a
// scanResult. buf is the caller's reusable candidate buffer.
//
//atm:noalloc
//atm:noescape
func scanWith(w *airspace.World, track *airspace.Aircraft, vx, vy float64, src broadphase.PairSource, buf *[]int32) scanResult {
	r := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
	if src == nil {
		for p := range w.Aircraft {
			scanPairInto(track, &w.Aircraft[p], vx, vy, &r)
		}
		return r
	}
	cand := src.AppendCandidates((*buf)[:0], w, track)
	*buf = cand
	for _, p := range cand {
		scanPairInto(track, &w.Aircraft[p], vx, vy, &r)
	}
	return r
}

// scanPairInto folds one trial aircraft into the running scan minimum
// (the reference scanPair). This is the innermost fused Task 2+3 pair
// kernel: the gate holds it escape-free and bounds-check-free.
//
//atm:noalloc
//atm:noescape
//atm:nobce
func scanPairInto(track, trial *airspace.Aircraft, vx, vy float64, r *scanResult) {
	if trial.ID == track.ID || !AltOverlap(track, trial) {
		return
	}
	r.checks++
	tmin, tmax, ok := PairConflict(track.X, track.Y, vx, vy, trial)
	if !ok || tmin >= tmax {
		return
	}
	if tmin < r.tmin {
		r.tmin = tmin
		r.with = trial.ID
	}
}

// scanPar is scanWith with the pair loop itself fanned out when the
// scan is large enough to pay for dispatch: fixed-size chunks fold
// partial minima that are merged in ascending chunk order, so the
// strict-< first-wins tie-break of the serial fold is preserved
// exactly. Used by the serial replay of DetectResolve, where one
// conflicted track's rotation probes would otherwise idle the pool.
//
//atm:ordered-merge
func scanPar(w *airspace.World, track *airspace.Aircraft, vx, vy float64, src broadphase.PairSource, p *parexec.Pool, sc *detectScratch) scanResult {
	var cand []int32
	m := w.N()
	if src != nil {
		cand = src.AppendCandidates(sc.bufs[0].cand[:0], w, track)
		sc.bufs[0].cand = cand
		m = len(cand)
	}
	if p.Workers() == 1 || m < 2*innerGrain {
		r := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
		if src == nil {
			for q := range w.Aircraft {
				scanPairInto(track, &w.Aircraft[q], vx, vy, &r)
			}
		} else {
			for _, q := range cand {
				scanPairInto(track, &w.Aircraft[q], vx, vy, &r)
			}
		}
		return r
	}
	chunks := (m + innerGrain - 1) / innerGrain
	if cap(sc.parts) < chunks {
		sc.parts = make([]scanResult, chunks)
	}
	parts := sc.parts[:chunks]
	//atm:noalloc
	p.Run(m, innerGrain, func(_, lo, hi int) {
		pr := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
		if src == nil {
			for q := lo; q < hi; q++ {
				scanPairInto(track, &w.Aircraft[q], vx, vy, &pr)
			}
		} else {
			for _, q := range cand[lo:hi] {
				scanPairInto(track, &w.Aircraft[q], vx, vy, &pr)
			}
		}
		parts[lo/innerGrain] = pr
	})
	out := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
	for _, pr := range parts {
		out.checks += pr.checks
		if pr.tmin < out.tmin {
			out.tmin = pr.tmin
			out.with = pr.with
		}
	}
	return out
}

// DetectExec is DetectWith on an explicit engine pool; nil means the
// process default. Results are identical at any worker count.
//
//atm:ordered-merge
func DetectExec(w *airspace.World, src broadphase.PairSource, pool *parexec.Pool) DetectStats {
	p := parexec.Resolve(pool)
	if ts := broadphase.TableOf(src); ts != nil {
		return detectTable(w, src, ts, p)
	}
	if m := colsMaintainer(src); m != nil {
		return detectCols(w, src, m, p)
	}
	if src != nil {
		src.Prepare(w)
	}
	var st DetectStats
	n := w.N()
	sc := getDetectScratch(n, p.Workers())
	defer putDetectScratch(sc)

	if p.Workers() == 1 {
		buf := &sc.bufs[0].cand
		for i := range w.Aircraft {
			track := &w.Aircraft[i]
			track.ResetConflict()
			r := scanWith(w, track, track.DX, track.DY, src, buf)
			st.PairChecks += int(r.checks)
			if r.tmin < airspace.CriticalTime {
				st.Conflicts++
				MarkConflict(w, track, r.with, r.tmin)
			}
		}
		return st
	}

	// Parallel phase: every track's scan, against state Detect never
	// mutates.
	//atm:noalloc
	p.Run(n, scanGrain, func(worker, lo, hi int) {
		buf := &sc.bufs[worker].cand
		for i := lo; i < hi; i++ {
			track := &w.Aircraft[i]
			sc.res[i] = scanWith(w, track, track.DX, track.DY, src, buf)
		}
	})
	// Serial replay in index order.
	for i := range w.Aircraft {
		track := &w.Aircraft[i]
		track.ResetConflict()
		r := sc.res[i]
		st.PairChecks += int(r.checks)
		if r.tmin < airspace.CriticalTime {
			st.Conflicts++
			MarkConflict(w, track, r.with, r.tmin)
		}
	}
	return st
}

// DetectResolveExec is DetectResolveWith on an explicit engine pool;
// nil means the process default. Results are identical at any worker
// count.
//
//atm:ordered-merge
func DetectResolveExec(w *airspace.World, src broadphase.PairSource, pool *parexec.Pool) DetectStats {
	p := parexec.Resolve(pool)
	if ts := broadphase.TableOf(src); ts != nil {
		return detectResolveTable(w, src, ts, p)
	}
	if m := colsMaintainer(src); m != nil {
		return detectResolveCols(w, src, m, p)
	}
	if src != nil {
		src.Prepare(w)
	}
	var st DetectStats
	n := w.N()
	sc := getDetectScratch(n, p.Workers())
	defer putDetectScratch(sc)

	if p.Workers() == 1 {
		buf := &sc.bufs[0].cand
		for i := range w.Aircraft {
			resolveOneSerial(w, &w.Aircraft[i], &st, src, buf)
		}
		return st
	}

	// Parallel phase: scan every track against the pre-resolution
	// velocity snapshot, and record its reach envelope (a function of
	// position and speed only, both invariant across heading commits).
	//atm:noalloc
	p.Run(n, scanGrain, func(worker, lo, hi int) {
		buf := &sc.bufs[worker].cand
		for i := lo; i < hi; i++ {
			track := &w.Aircraft[i]
			sc.reach[i] = broadphase.Reach(track)
			sc.res[i] = scanWith(w, track, track.DX, track.DY, src, buf)
		}
	})

	// Serial replay in index order. dirty lists the aircraft whose
	// heading has been committed; a precomputed scan is stale only if
	// a dirty aircraft passes the envelope-interaction test.
	dirty := sc.dirty[:0]
	for i := range w.Aircraft {
		track := &w.Aircraft[i]
		r := sc.res[i]
		if dirtyInteracts(w, sc, track, dirty) {
			r = scanPar(w, track, track.DX, track.DY, src, p, sc)
		}
		track.ResetConflict()
		st.PairChecks += int(r.checks)
		if !(r.tmin < airspace.CriticalTime) {
			continue
		}
		st.Conflicts++
		MarkConflict(w, track, r.with, r.tmin)

		base := geom.Vec2{X: track.DX, Y: track.DY}
		resolved := false
		for _, deg := range rotationSchedule {
			st.Rotations++
			v := base.Rotate(deg)
			track.BatX, track.BatY = v.X, v.Y
			pr := scanPar(w, track, v.X, v.Y, src, p, sc)
			st.PairChecks += int(pr.checks)
			if !(pr.tmin < airspace.CriticalTime) {
				track.DX, track.DY = v.X, v.Y
				track.ResetConflict()
				st.Resolved++
				resolved = true
				dirty = append(dirty, int32(i))
				break
			}
			MarkConflict(w, track, pr.with, pr.tmin)
		}
		if !resolved {
			st.Unresolved++
		}
	}
	sc.dirty = dirty[:0]
	return st
}

// resolveOneSerial is the reference Algorithm 2 for a single track
// aircraft, with a reusable candidate buffer.
//
//atm:noalloc
//atm:noescape
func resolveOneSerial(w *airspace.World, track *airspace.Aircraft, st *DetectStats, src broadphase.PairSource, buf *[]int32) {
	track.ResetConflict()
	r := scanWith(w, track, track.DX, track.DY, src, buf)
	st.PairChecks += int(r.checks)
	if !(r.tmin < airspace.CriticalTime) {
		return
	}
	st.Conflicts++
	MarkConflict(w, track, r.with, r.tmin)

	base := geom.Vec2{X: track.DX, Y: track.DY}
	for _, deg := range rotationSchedule {
		st.Rotations++
		v := base.Rotate(deg)
		track.BatX, track.BatY = v.X, v.Y
		pr := scanWith(w, track, v.X, v.Y, src, buf)
		st.PairChecks += int(pr.checks)
		if !(pr.tmin < airspace.CriticalTime) {
			track.DX, track.DY = v.X, v.Y
			track.ResetConflict()
			st.Resolved++
			return
		}
		MarkConflict(w, track, pr.with, pr.tmin)
	}
	st.Unresolved++
}

// dirtyInteracts reports whether any committed heading change could
// alter track's precomputed scan: a dirty aircraft matters only if it
// is within the vertical band and the two reach envelopes overlap on
// both axes — outside that, no heading at its speed can produce a
// conflict starting before CriticalTime (the broadphase exactness
// argument), and such pairs never touch the scan's strict-< fold.
//
//atm:noalloc
//atm:noescape
func dirtyInteracts(w *airspace.World, sc *detectScratch, track *airspace.Aircraft, dirty []int32) bool {
	for _, j := range dirty {
		o := &w.Aircraft[j]
		if !AltOverlap(track, o) {
			continue
		}
		reach := sc.reach[track.ID] + sc.reach[j]
		dx := track.X - o.X
		if dx < 0 {
			dx = -dx
		}
		if dx > reach {
			continue
		}
		dy := track.Y - o.Y
		if dy < 0 {
			dy = -dy
		}
		if dy <= reach {
			return true
		}
	}
	return false
}

// corrScratch holds the reusable state of one Correlate invocation.
type corrScratch struct {
	start     []int32 // per radar: offset into its worker's buffer, -1 = no list
	length    []int32
	owner     []int32
	withdrawn []int32
	bufs      []workerBuf
}

var corrScratchPool sync.Pool

func getCorrScratch(nr, workers int) *corrScratch {
	sc, _ := corrScratchPool.Get().(*corrScratch)
	if sc == nil {
		sc = &corrScratch{}
	}
	if cap(sc.start) < nr {
		sc.start = make([]int32, nr)
		sc.length = make([]int32, nr)
		sc.owner = make([]int32, nr)
	}
	sc.start = sc.start[:nr]
	sc.length = sc.length[:nr]
	sc.owner = sc.owner[:nr]
	if len(sc.bufs) < workers {
		sc.bufs = append(sc.bufs[:cap(sc.bufs)], make([]workerBuf, workers-cap(sc.bufs))...)
	}
	return sc
}

func putCorrScratch(sc *corrScratch) { corrScratchPool.Put(sc) }

// CorrelateExec is Correlate on an explicit engine pool; nil means the
// process default.
func CorrelateExec(w *airspace.World, f *radar.Frame, pool *parexec.Pool) CorrelateStats {
	return CorrelateNExec(w, f, BoxPasses, pool)
}

// CorrelateNExec is CorrelateN on an explicit engine pool; nil means
// the process default. Results are identical at any worker count.
func CorrelateNExec(w *airspace.World, f *radar.Frame, passes int, pool *parexec.Pool) CorrelateStats {
	if passes < 1 {
		panic("tasks: CorrelateN needs at least one pass")
	}
	p := parexec.Resolve(pool)
	var st CorrelateStats
	if p.Workers() == 1 {
		correlateSerial(w, f, passes, &st)
		return st
	}
	correlateParallel(w, f, passes, p, &st)
	return st
}

// correlateParallel is Task 1 with the per-pass bounding-box search
// fanned out per radar and a serial replay of the matching state
// machine (see the file comment for the exactness argument).
//
//atm:ordered-merge
func correlateParallel(w *airspace.World, f *radar.Frame, passes int, p *parexec.Pool, st *CorrelateStats) {
	n := w.N()
	nr := len(f.Reports)
	sc := getCorrScratch(nr, p.Workers())
	defer putCorrScratch(sc)

	//atm:noalloc
	p.Run(n, elemGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			a := &w.Aircraft[i]
			a.ExpX = a.X + a.DX
			a.ExpY = a.Y + a.DY
			a.RMatch = airspace.MatchNone
		}
	})
	f.Reset()

	withdrawn := sc.withdrawn[:0]
	boxHalf := InitialBoxHalf
	for pass := 0; pass < passes; pass++ {
		pending := 0
		for i := range f.Reports {
			if f.Reports[i].MatchWith == radar.Unmatched {
				pending++
			}
		}
		if pass < BoxPasses {
			st.PassRadars[pass] = pending
		}
		if pending == 0 {
			break
		}

		// Parallel phase: geometric box-hit candidates for every radar
		// still unmatched at pass start. Expected positions and the box
		// size are fixed for the whole pass, so the lists cannot go
		// stale; eligibility (withdrawals, earlier matches) is dynamic
		// and left to the replay.
		for wk := range sc.bufs {
			sc.bufs[wk].cand = sc.bufs[wk].cand[:0]
		}
		//atm:noalloc
		p.Run(nr, radarGrain, func(worker, lo, hi int) {
			buf := sc.bufs[worker].cand
			for j := lo; j < hi; j++ {
				rep := &f.Reports[j]
				if rep.MatchWith != radar.Unmatched {
					sc.start[j] = -1
					continue
				}
				s := int32(len(buf))
				for q := range w.Aircraft {
					if inBox(rep, &w.Aircraft[q], boxHalf) {
						buf = append(buf, int32(q))
					}
				}
				sc.start[j] = s
				sc.length[j] = int32(len(buf)) - s
				sc.owner[j] = int32(worker)
			}
			sc.bufs[worker].cand = buf
		})

		// Serial replay in radar-index order.
		for j := range f.Reports {
			rep := &f.Reports[j]
			if rep.MatchWith != radar.Unmatched {
				continue
			}
			if sc.start[j] < 0 {
				// Released mid-pass by a withdrawal: no precomputed
				// list, run the reference inner loop.
				correlateRadarFallback(w, f, rep, boxHalf, st, &withdrawn)
				continue
			}
			priorWithdrawn := len(withdrawn)
			cand := sc.bufs[sc.owner[j]].cand[sc.start[j] : sc.start[j]+sc.length[j]]
			broke := int32(-1)
			for _, q := range cand {
				a := &w.Aircraft[q]
				if a.RMatch != airspace.MatchNone && a.RMatch != airspace.MatchOne {
					continue // withdrawn aircraft are out of the search
				}
				switch a.RMatch {
				case airspace.MatchNone:
					if rep.MatchWith == radar.Unmatched {
						a.RMatch = airspace.MatchOne
						rep.MatchWith = a.ID
					} else {
						prev := &w.Aircraft[rep.MatchWith]
						prev.RMatch = airspace.MatchNone
						rep.MatchWith = radar.Discarded
						st.DiscardedRadars++
					}
				case airspace.MatchOne:
					a.RMatch = airspace.MatchDiscarded
					st.WithdrawnAircraft++
					releaseRadarOf(f, a.ID)
					withdrawn = append(withdrawn, q)
				}
				if rep.MatchWith == radar.Discarded {
					broke = q
					break
				}
			}
			// Reconstruct the reference's Comparisons tally: it counts
			// every aircraft not yet withdrawn when the scan started
			// (withdrawals made during a scan happen at the withdrawn
			// aircraft's own, already-counted visit), up to the break
			// point if the radar was discarded.
			if broke >= 0 {
				eligible := int(broke) + 1
				for _, q := range withdrawn[:priorWithdrawn] {
					if q <= broke {
						eligible--
					}
				}
				st.Comparisons += eligible
			} else {
				st.Comparisons += n - priorWithdrawn
			}
		}
		boxHalf *= 2
	}
	sc.withdrawn = withdrawn[:0]

	// Commit (line 12) and field re-entry, with the element-wise
	// aircraft loops fanned out and the radar loop serial.
	//atm:noalloc
	p.Run(n, elemGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			a := &w.Aircraft[i]
			a.X, a.Y = a.ExpX, a.ExpY
		}
	})
	for i := range f.Reports {
		rep := &f.Reports[i]
		switch rep.MatchWith {
		case radar.Unmatched:
			st.UnmatchedRadars++
		case radar.Discarded:
			// already counted
		default:
			a := &w.Aircraft[rep.MatchWith]
			if a.RMatch == airspace.MatchOne {
				a.X, a.Y = rep.RX, rep.RY
				st.Matched++
			}
		}
	}
	//atm:noalloc
	p.Run(n, elemGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			airspace.Wrap(&w.Aircraft[i])
		}
	})
}

// correlateRadarFallback scans one radar against every aircraft with
// the reference inner loop, recording withdrawals for the replay's
// Comparisons bookkeeping.
//
//atm:noalloc
func correlateRadarFallback(w *airspace.World, f *radar.Frame, rep *radar.Report, boxHalf float64, st *CorrelateStats, withdrawn *[]int32) {
	for q := range w.Aircraft {
		a := &w.Aircraft[q]
		if a.RMatch != airspace.MatchNone && a.RMatch != airspace.MatchOne {
			continue
		}
		st.Comparisons++
		if !inBox(rep, a, boxHalf) {
			continue
		}
		switch a.RMatch {
		case airspace.MatchNone:
			if rep.MatchWith == radar.Unmatched {
				a.RMatch = airspace.MatchOne
				rep.MatchWith = a.ID
			} else {
				prev := &w.Aircraft[rep.MatchWith]
				prev.RMatch = airspace.MatchNone
				rep.MatchWith = radar.Discarded
				st.DiscardedRadars++
			}
		case airspace.MatchOne:
			a.RMatch = airspace.MatchDiscarded
			st.WithdrawnAircraft++
			releaseRadarOf(f, a.ID)
			*withdrawn = append(*withdrawn, int32(q))
		}
		if rep.MatchWith == radar.Discarded {
			break
		}
	}
}
