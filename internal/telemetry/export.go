package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/trace"
)

// Exporters. All three formats are deterministic functions of the
// buffered event stream: fixed field order, integer nanosecond
// timestamps (Chrome: microseconds with fixed three-decimal
// formatting), names quoted with strconv.Quote. Two recorders holding
// identical events export byte-identical output — the property the
// worker-invariance telemetry tests pin.

// WriteJSONL writes one JSON object per buffered event, oldest first.
// Fields, in order: t (modeled time, ns), kind, name, period, arg
// (omitted when zero), and value — "dur" for spans, "value" otherwise
// ("meta" events carry the resolved string).
func WriteJSONL(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	var err error
	r.Visit(func(ev Event) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, `{"t":%d,"kind":%q,"name":%s,"period":%d`,
			int64(ev.Time), ev.Kind.String(), strconv.Quote(r.Name(ev.Name)), ev.Period)
		if err != nil {
			return
		}
		if ev.Arg != 0 {
			if _, err = fmt.Fprintf(bw, `,"arg":%d`, ev.Arg); err != nil {
				return
			}
		}
		switch ev.Kind {
		case KindSpan:
			_, err = fmt.Fprintf(bw, `,"dur":%d}`, ev.Value)
		case KindMeta:
			_, err = fmt.Fprintf(bw, `,"value":%s}`, strconv.Quote(r.MetaValue(ev)))
		default:
			_, err = fmt.Fprintf(bw, `,"value":%d}`, ev.Value)
		}
		if err != nil {
			return
		}
		err = bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// usec renders nanoseconds as microseconds with exactly three
// decimals, the resolution Chrome's trace viewer expects.
func usec(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}

// WriteChromeTrace writes the buffered events in Chrome trace_event
// JSON (load via chrome://tracing or https://ui.perfetto.dev). Spans
// become complete ("X") events on one modeled-time track, counters
// and gauges become counter ("C") series, and meta events become
// instant ("i") markers carrying their value.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	var err error
	r.Visit(func(ev Event) {
		if err != nil {
			return
		}
		if !first {
			if err = bw.WriteByte(','); err != nil {
				return
			}
		}
		first = false
		name := strconv.Quote(r.Name(ev.Name))
		switch ev.Kind {
		case KindSpan:
			_, err = fmt.Fprintf(bw,
				`{"name":%s,"cat":"modeled","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":1,"args":{"period":%d,"arg":%d}}`,
				name, usec(int64(ev.Time)), usec(ev.Value), ev.Period, ev.Arg)
		case KindCounter, KindGauge:
			_, err = fmt.Fprintf(bw,
				`{"name":%s,"ph":"C","ts":%s,"pid":1,"args":{"value":%d}}`,
				name, usec(int64(ev.Time)), ev.Value)
		case KindMeta:
			_, err = fmt.Fprintf(bw,
				`{"name":%s,"ph":"i","s":"g","ts":%s,"pid":1,"tid":1,"args":{"value":%s}}`,
				name, usec(int64(ev.Time)), strconv.Quote(r.MetaValue(ev)))
		}
	})
	if err != nil {
		return err
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// PeriodDataset aggregates the buffered events into a per-period
// dataset: one series per event name, x = period index, y = the
// period's aggregate (spans: total modeled seconds; counters: sum;
// gauges: last reading). Meta events are skipped. Series appear in
// interning order, periods ascending — deterministic output for the
// CSV exporter.
func PeriodDataset(r *Recorder, id string) *trace.Dataset {
	d := &trace.Dataset{
		ID:     id,
		Title:  "Per-period telemetry aggregates",
		XLabel: "period",
		YLabel: "seconds (spans) / count (counters) / level (gauges)",
	}
	if r == nil || r.Len() == 0 {
		return d
	}
	maxPeriod := int32(0)
	r.Visit(func(ev Event) {
		if ev.Period > maxPeriod {
			maxPeriod = ev.Period
		}
	})
	periods := int(maxPeriod) + 1
	names := r.Names()
	// Dense (name, period) aggregation; ~names*periods cells, fine at
	// export scale.
	sums := make([]float64, names*periods)
	seen := make([]bool, names*periods)
	r.Visit(func(ev Event) {
		if ev.Kind == KindMeta {
			return
		}
		cell := int(ev.Name)*periods + int(ev.Period)
		switch ev.Kind {
		case KindSpan:
			sums[cell] += float64(ev.Value) / 1e9
		case KindCounter:
			sums[cell] += float64(ev.Value)
		case KindGauge:
			sums[cell] = float64(ev.Value)
		}
		seen[cell] = true
	})
	for nameID := 0; nameID < names; nameID++ {
		label := r.Name(NameID(nameID))
		for p := 0; p < periods; p++ {
			if !seen[nameID*periods+p] {
				continue
			}
			d.Add(label, float64(p), sums[nameID*periods+p])
		}
	}
	return d
}
