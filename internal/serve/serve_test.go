package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testConfig is the small real-run config the determinism tests use:
// one major cycle at 200 aircraft finishes in well under a second.
const testQuery = "/v1/simulate?platform=titanx&n=200&periods=16&seed=2018"

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, body
}

// TestCachedAndFreshResponsesByteIdentical is acceptance criterion 1:
// a cache hit serves the exact bytes the fresh run produced, and an
// entirely separate server (fresh process state) produces those same
// bytes again.
func TestCachedAndFreshResponsesByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp1, body1 := get(t, ts.URL+testQuery)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("fresh run: status %d, body %s", resp1.StatusCode, body1)
	}
	if how := resp1.Header.Get("X-Atmserve-Cache"); how != "miss" {
		t.Errorf("fresh run: X-Atmserve-Cache = %q, want miss", how)
	}
	resp2, body2 := get(t, ts.URL+testQuery)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached run: status %d", resp2.StatusCode)
	}
	if how := resp2.Header.Get("X-Atmserve-Cache"); how != "hit" {
		t.Errorf("cached run: X-Atmserve-Cache = %q, want hit", how)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cache hit body differs from fresh body:\nfresh:  %s\ncached: %s", body1, body2)
	}
	if e1, e2 := resp1.Header.Get("Etag"), resp2.Header.Get("Etag"); e1 == "" || e1 != e2 {
		t.Errorf("ETags differ or empty: %q vs %q", e1, e2)
	}

	// A brand-new server must reproduce the same bytes from scratch.
	_, ts2 := newTestServer(t, Options{})
	resp3, body3 := get(t, ts2.URL+testQuery)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("second server: status %d", resp3.StatusCode)
	}
	if !bytes.Equal(body1, body3) {
		t.Error("two independent servers produced different bytes for the same config")
	}
}

// TestByteIdenticalAcrossWorkers is the -workers half of the
// acceptance criterion: responses are byte-identical at any host
// worker count, including with a telemetry export embedded.
func TestByteIdenticalAcrossWorkers(t *testing.T) {
	query := testQuery + "&pairsource=grid&telemetry=jsonl"
	var bodies [][]byte
	for _, workers := range []int{1, 3} {
		_, ts := newTestServer(t, Options{Workers: workers})
		resp, body := get(t, ts.URL+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d, body %s", workers, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("responses differ between -workers 1 and -workers 3")
	}
	if !strings.Contains(string(bodies[0]), "telemetry_jsonl") {
		t.Error("telemetry=jsonl response missing telemetry_jsonl field")
	}
}

// TestSingleFlight is acceptance criterion 2: K concurrent identical
// requests perform exactly one underlying run and all see its bytes.
func TestSingleFlight(t *testing.T) {
	var runs atomic.Int64
	base := newRunner(0, nil)
	counting := func(cfg RunConfig) (*Result, error) {
		runs.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open so everyone piles on
		return base(cfg)
	}
	s, ts := newTestServer(t, Options{Runners: 2, QueueDepth: 16, Runner: counting})

	const k = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, k)
	codes := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + testQuery)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d simulations, want exactly 1", k, got)
	}
	for i := 0; i < k; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs from request 0", i)
		}
	}
	if coalesced := s.Stats().Coalesced.Load(); coalesced != k-1 {
		t.Errorf("coalesced = %d, want %d", coalesced, k-1)
	}
}

// blockingRunner returns a stub runner that signals entry on started
// and blocks until release is closed.
func blockingRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(cfg RunConfig) (*Result, error) {
		started <- cfg.Key()
		<-release
		body := []byte(fmt.Sprintf(`{"stub":%q}`, cfg.Key()))
		return &Result{Body: body, ETag: `"stub"`}, nil
	}
}

// TestQueueOverflowSheds is acceptance criterion 3a: once the bounded
// queue is full, further requests get 429 with a Retry-After hint.
func TestQueueOverflowSheds(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Runners: 1, QueueDepth: 1, Timeout: 10 * time.Second,
		Runner: blockingRunner(started, release),
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	// Distinct configs so single-flight cannot coalesce them.
	urlFor := func(n int) string {
		return fmt.Sprintf("%s/v1/simulate?platform=titanx&n=%d&periods=16", ts.URL, n)
	}
	done1 := make(chan int, 1)
	go func() {
		resp, _ := http.Get(urlFor(100))
		resp.Body.Close()
		done1 <- resp.StatusCode
	}()
	<-started // run 1 occupies the single executor

	done2 := make(chan int, 1)
	go func() {
		resp, _ := http.Get(urlFor(101))
		resp.Body.Close()
		done2 <- resp.StatusCode
	}()
	// Wait until run 2 is actually queued (depth 1 = full).
	deadline := time.Now().Add(5 * time.Second)
	for s.q.depth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp3, body3 := get(t, urlFor(102))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, body %s, want 429", resp3.StatusCode, body3)
	}
	if ra := resp3.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}
	if shed := s.Stats().Shed.Load(); shed != 1 {
		t.Errorf("shed = %d, want 1", shed)
	}

	close(release)
	if code := <-done1; code != http.StatusOK {
		t.Errorf("run 1: status %d", code)
	}
	if code := <-done2; code != http.StatusOK {
		t.Errorf("run 2: status %d", code)
	}
}

// TestDrainFinishesInFlight is acceptance criterion 3b: a draining
// server refuses new work with 503 but answers everything already
// admitted.
func TestDrainFinishesInFlight(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Runners: 1, QueueDepth: 8, Timeout: 10 * time.Second,
		Runner: blockingRunner(started, release),
	})

	inflight := make(chan struct {
		code int
		body []byte
	}, 1)
	go func() {
		resp, _ := http.Get(ts.URL + testQuery)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- struct {
			code int
			body []byte
		}{resp.StatusCode, body}
	}()
	<-started // the run is executing

	s.BeginDrain()

	respReady, _ := get(t, ts.URL+"/readyz")
	if respReady.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status %d, want 503", respReady.StatusCode)
	}
	respHealth, _ := get(t, ts.URL+"/healthz")
	if respHealth.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200", respHealth.StatusCode)
	}
	respNew, _ := get(t, ts.URL+"/v1/simulate?platform=staran&n=300&periods=16")
	if respNew.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: status %d, want 503", respNew.StatusCode)
	}

	close(release)
	got := <-inflight
	if got.code != http.StatusOK {
		t.Errorf("in-flight request after drain: status %d, want 200", got.code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("drained server did not shut down: %v", err)
	}
	// Cache hits are still served after drain.
	respHit, _ := get(t, ts.URL+testQuery)
	if respHit.StatusCode != http.StatusOK || respHit.Header.Get("X-Atmserve-Cache") != "hit" {
		t.Errorf("cache hit on drained server: status %d cache %q",
			respHit.StatusCode, respHit.Header.Get("X-Atmserve-Cache"))
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxN: 50000})
	cases := []struct {
		name, query string
	}{
		{"missing platform", "/v1/simulate?n=100"},
		{"unknown platform", "/v1/simulate?platform=cray1&n=100"},
		{"zero n", "/v1/simulate?platform=titanx&n=0"},
		{"negative n", "/v1/simulate?platform=titanx&n=-5"},
		{"negative periods", "/v1/simulate?platform=titanx&n=100&periods=-1"},
		{"bad n syntax", "/v1/simulate?platform=titanx&n=lots"},
		{"unknown pair source", "/v1/simulate?platform=titanx&n=100&pairsource=octree"},
		{"unknown detail", "/v1/simulate?platform=titanx&n=100&detail=verbose"},
		{"unknown telemetry", "/v1/simulate?platform=titanx&n=100&telemetry=xml"},
		{"over max n", "/v1/simulate?platform=titanx&n=60000"},
		{"unknown scenario family", "/v1/simulate?platform=titanx&n=100&scenario=warp"},
		{"bad scenario value", "/v1/simulate?platform=titanx&n=100&scenario=circle:radius=-4"},
		{"malformed scenario", "/v1/simulate?platform=titanx&n=100&scenario=circle:radius"},
		{"scenario over capacity", "/v1/simulate?platform=titanx&n=30000&scenario=streams"},
	}
	for _, tc := range cases {
		resp, body := get(t, ts.URL+tc.query)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: body %q is not an {\"error\": ...} document", tc.name, body)
		}
	}
}

func TestPostJSONAndQueryAgree(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, qBody := get(t, ts.URL+testQuery)
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"platform":"titanx","n":200,"periods":16,"seed":2018}`))
	if err != nil {
		t.Fatal(err)
	}
	pBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: status %d, body %s", resp.StatusCode, pBody)
	}
	if !bytes.Equal(qBody, pBody) {
		t.Error("GET query and POST JSON for the same config returned different bytes")
	}
}

func TestConditionalRequest(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp1, _ := get(t, ts.URL+testQuery)
	etag := resp1.Header.Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on response")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+testQuery, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match with matching ETag: status %d, want 304", resp2.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	get(t, ts.URL+testQuery)
	get(t, ts.URL+testQuery)
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var doc map[string]metricsSnapshot
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics is not JSON: %v (%s)", err, body)
	}
	m := doc["atmserve"]
	if m.Requests != 2 || m.CacheHits != 1 || m.Runs != 1 || m.CacheEntries != 1 {
		t.Errorf("metrics after miss+hit: %+v", m)
	}

	// The live telemetry endpoint carries the completed run's aggregates.
	respLive, liveBody := get(t, ts.URL+"/telemetry/")
	if respLive.StatusCode != http.StatusOK {
		t.Fatalf("telemetry/: status %d", respLive.StatusCode)
	}
	if !strings.Contains(string(liveBody), "serve.run") {
		t.Errorf("live telemetry missing serve.run span: %s", liveBody)
	}
}

func TestResponseShape(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, body := get(t, ts.URL+testQuery)
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("response is not a Response document: %v", err)
	}
	if resp.Config.Platform != "titanx" || resp.Config.N != 200 || resp.Config.Seed != 2018 ||
		resp.Config.Periods != 16 || resp.Config.Detail != "task" {
		t.Errorf("canonical config wrong: %+v", resp.Config)
	}
	if len(resp.Rows) != 2 || resp.Rows[0].Task != "task1:track+correlate" || resp.Rows[1].Task != "task2+3:detect+resolve" {
		t.Errorf("rows wrong: %+v", resp.Rows)
	}
	if resp.Rows[0].Runs != 16 || resp.Rows[1].Runs != 1 {
		t.Errorf("run counts wrong for one major cycle: %+v", resp.Rows)
	}
	if resp.Rows[0].MeanNs <= 0 || resp.Periods != 16 || resp.Key == "" {
		t.Errorf("response incomplete: %+v", resp)
	}
	if !resp.DeadlinesMet {
		t.Error("titanx at 200 aircraft should meet every deadline")
	}
}

func TestCanonicalizeDefaultsAndKey(t *testing.T) {
	a, err := RunRequest{Platform: "titanx", N: 4000}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRequest{Platform: "titanx", N: 4000, Seed: 2018, Periods: 16, Detail: "task", Telemetry: "none"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("spelled-out defaults changed the key: %q vs %q", a.Key(), b.Key())
	}
	if a.Hash() != b.Hash() || a.Hash() == "" {
		t.Errorf("hashes differ: %q vs %q", a.Hash(), b.Hash())
	}
	c, err := RunRequest{Platform: "titanx", N: 4000, Seed: 7}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() == a.Key() {
		t.Error("different seed produced the same key")
	}
}

// TestScenarioCanonicalKey: differently spelled specs of the same
// workload share one cache identity; a different workload does not;
// and the scenario is part of the key at all (uniform vs structured).
func TestScenarioCanonicalKey(t *testing.T) {
	short, err := RunRequest{Platform: "titanx", N: 400, Scenario: "circle"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunRequest{Platform: "titanx", N: 400, Scenario: "circle:radius=100"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if short.Key() != long.Key() {
		t.Errorf("default-spelled and explicit specs split the cache: %q vs %q", short.Key(), long.Key())
	}
	other, err := RunRequest{Platform: "titanx", N: 400, Scenario: "circle:radius=50"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if other.Key() == short.Key() {
		t.Error("different radius produced the same key")
	}
	uniform, err := RunRequest{Platform: "titanx", N: 400}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Key() == short.Key() {
		t.Error("scenario absent from the cache key")
	}
}

// TestScenarioRunServed: a structured-traffic run completes over HTTP
// and echoes the canonical spec in the response config.
func TestScenarioRunServed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := get(t, ts.URL+"/v1/simulate?platform=titanx&n=200&scenario=circle:radius=40")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Config.Scenario, "circle:") || !strings.Contains(r.Config.Scenario, "radius=40") {
		t.Errorf("response config scenario %q, want the canonical circle spec", r.Config.Scenario)
	}
}
