// Package serve is the simulation-serving subsystem behind cmd/atmserve:
// it turns the deterministic core into a multi-tenant HTTP backend.
//
// A request names a canonical simulation config (platform, N, seed,
// periods, pair source, detail, telemetry export). The server
// normalizes and hashes the config, then routes it through three
// layers, cheapest first:
//
//  1. a bounded LRU result cache — sound because runs are
//     bit-deterministic, so a cached response is byte-identical to a
//     fresh one;
//  2. a single-flight registry — K concurrent identical requests share
//     exactly one underlying execution;
//  3. an admission-controlled run queue — bounded depth, two lanes
//     (interactive small-N runs pop before batch sweeps), load shed
//     with 429 + Retry-After, per-request deadlines while waiting.
//
// Admitted runs execute on a small pool of executor goroutines; the
// simulations themselves fan out over the shared parexec host pool.
// On drain the server stops admitting, finishes everything in flight,
// and lets in-flight handlers answer before executors exit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry/live"
)

// Options sizes the server. Zero values select the documented
// defaults.
type Options struct {
	// Runners is the number of executor goroutines pulling from the
	// run queue (default 2). Simulations additionally parallelize
	// internally over the shared parexec pool, so a handful of runners
	// saturates a host.
	Runners int
	// QueueDepth bounds the number of admitted-but-not-running jobs
	// (default 64); beyond it requests are shed with 429.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 256).
	CacheEntries int
	// Timeout is the per-request deadline covering queue wait plus run
	// time (default 60s); expired waiters get 504 while the shared run
	// continues for any remaining waiters.
	Timeout time.Duration
	// InteractiveN is the largest aircraft count that rides the
	// priority lane (default 4000).
	InteractiveN int
	// MaxN rejects absurd aircraft counts at admission (default
	// 200000) so one request cannot exhaust host memory.
	MaxN int
	// Workers pins the host worker-pool size used by each run's
	// platform (0 = process default). Responses are byte-identical at
	// any setting; it exists so tests can prove exactly that.
	Workers int
	// Runner overrides the execution function; nil selects the
	// production runner driving the deterministic core. Tests inject
	// counting and blocking stubs here, before the executors start.
	Runner Runner
}

func (o Options) withDefaults() Options {
	if o.Runners <= 0 {
		o.Runners = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.InteractiveN <= 0 {
		o.InteractiveN = 4000
	}
	if o.MaxN <= 0 {
		o.MaxN = 200000
	}
	return o
}

// Stats are the server's monotonic counters, served by /metrics.
type Stats struct {
	Requests    atomic.Int64 // simulate requests received
	BadRequests atomic.Int64 // rejected at validation (400)
	CacheHits   atomic.Int64 // served straight from the LRU
	Coalesced   atomic.Int64 // joined an existing flight
	Admitted    atomic.Int64 // new jobs accepted into the queue
	Shed        atomic.Int64 // rejected with 429 (queue full)
	Rejected    atomic.Int64 // rejected with 503 (draining)
	Timeouts    atomic.Int64 // waiters that hit their deadline (504)
	Runs        atomic.Int64 // simulations executed
	RunErrors   atomic.Int64 // executions that failed
	Abandoned   atomic.Int64 // jobs skipped because every waiter left
	NotModified atomic.Int64 // conditional requests answered 304
}

// errAbandoned marks a job whose waiters all departed before
// execution; it is never cached.
var errAbandoned = errors.New("serve: run abandoned, every waiter gone")

// Server is one serving instance. Create it with New, mount Handler,
// and stop it with BeginDrain + Shutdown.
type Server struct {
	opts    Options
	stats   Stats
	cache   *lruCache
	flights *flights
	q       *runQueue
	pub     *live.Publisher
	run     Runner

	draining atomic.Bool
	running  atomic.Int64 // jobs currently executing
	wg       sync.WaitGroup
	mux      *http.ServeMux
}

// New builds a server and starts its executor goroutines.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   newLRUCache(opts.CacheEntries),
		flights: newFlights(),
		q:       newRunQueue(opts.QueueDepth),
		pub:     &live.Publisher{},
	}
	s.run = opts.Runner
	if s.run == nil {
		s.run = newRunner(opts.Workers, s.pub)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/telemetry/", http.StripPrefix("/telemetry", live.Handler(s.pub)))
	s.mux.HandleFunc("/", s.handleIndex)
	for i := 0; i < opts.Runners; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats returns the server's counters for inspection.
func (s *Server) Stats() *Stats { return &s.stats }

// BeginDrain stops admission: readyz and new simulate runs answer 503,
// the queue refuses pushes, and executors exit once the backlog is
// drained. Cache hits keep being served. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.q.close()
}

// Shutdown drains and waits for every queued and running job to
// finish, bounded by ctx. It is the programmatic SIGTERM path: stop
// admitting, finish in-flight, then return.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// executor pulls admitted jobs until the queue is closed and empty.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// execute runs one job and resolves its flight. The result is cached
// before the flight is deregistered, so a concurrent request always
// finds the run either in flight or in cache — never neither, which is
// what keeps "exactly one execution per config" airtight.
func (s *Server) execute(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	if j.waiters.Load() == 0 {
		// Everyone who asked for this run has timed out or hung up;
		// skip the work and let the next identical request re-admit.
		s.stats.Abandoned.Add(1)
		j.err = errAbandoned
		s.flights.remove(j.key)
		close(j.done)
		return
	}
	res, err := s.run(j.cfg)
	s.stats.Runs.Add(1)
	if err != nil {
		s.stats.RunErrors.Add(1)
		j.err = err
		s.flights.remove(j.key)
		close(j.done)
		return
	}
	j.res = res
	s.cache.put(j.key, res)
	s.flights.remove(j.key)
	close(j.done)
}

// handleSimulate is the serving path described in the package comment.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.stats.Requests.Add(1)
	req, err := parseRequest(r)
	if err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := req.Canonicalize()
	if err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if cfg.N > s.opts.MaxN {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("n=%d exceeds this server's limit of %d aircraft", cfg.N, s.opts.MaxN))
		return
	}
	key := cfg.Key()

	// Fast path: the answer already exists.
	if res, ok := s.cache.get(key); ok {
		s.stats.CacheHits.Add(1)
		s.writeResult(w, r, res, "hit")
		return
	}

	// Slow path: join the in-flight run or admit a new one.
	j, created, err := s.flights.join(key, func() (*job, bool, error) {
		// Re-check under the registry lock: an executor may have cached
		// this key between our miss above and now (it caches before it
		// deregisters, so this order cannot lose a result).
		if res, ok := s.cache.get(key); ok {
			return completedJob(res), false, nil
		}
		if s.draining.Load() {
			return nil, false, ErrDraining
		}
		nj := newJob(cfg, key, cfg.N <= s.opts.InteractiveN)
		if err := s.q.push(nj); err != nil {
			return nil, false, err
		}
		return nj, true, nil
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		s.stats.Shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "run queue full, retry later")
		return
	case errors.Is(err, ErrDraining):
		s.stats.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if created {
		if j.fromCache {
			s.stats.CacheHits.Add(1)
			s.writeResult(w, r, j.res, "hit")
			return
		}
		s.stats.Admitted.Add(1)
	} else {
		s.stats.Coalesced.Add(1)
	}

	j.waiters.Add(1)
	defer j.waiters.Add(-1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	select {
	case <-j.done:
		if j.err != nil {
			if errors.Is(j.err, errAbandoned) {
				// Raced with the skip of an abandoned job: this waiter
				// arrived after the executor's check. Ask it to retry.
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "run was abandoned, retry")
				return
			}
			writeError(w, http.StatusInternalServerError, j.err.Error())
			return
		}
		how := "miss"
		if !created {
			how = "coalesced"
		}
		s.writeResult(w, r, j.res, how)
	case <-ctx.Done():
		s.stats.Timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for run")
	}
}

// retryAfterSeconds estimates when shedding will stop: roughly the
// backlog divided across the executors, clamped to [1, 30].
func (s *Server) retryAfterSeconds() int {
	sec := 1 + s.q.depth()/s.opts.Runners
	if sec > 30 {
		sec = 30
	}
	return sec
}

// writeResult serves an immutable result. The body bytes are shared
// verbatim across hit, miss and coalesced paths — byte identity is
// structural, not re-derived per response.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, res *Result, how string) {
	if match := r.Header.Get("If-None-Match"); match != "" && match == res.ETag {
		s.stats.NotModified.Add(1)
		w.Header().Set("Etag", res.ETag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Etag", res.ETag)
	h.Set("X-Atmserve-Cache", how)
	h.Set("Content-Length", strconv.Itoa(len(res.Body)))
	w.WriteHeader(http.StatusOK)
	w.Write(res.Body)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(body, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// metricsSnapshot is the /metrics document; fields marshal in
// declaration order, so scrapes are stable.
type metricsSnapshot struct {
	Requests     int64 `json:"requests"`
	BadRequests  int64 `json:"bad_requests"`
	CacheHits    int64 `json:"cache_hits"`
	Coalesced    int64 `json:"coalesced"`
	Admitted     int64 `json:"admitted"`
	Shed         int64 `json:"shed"`
	Rejected     int64 `json:"rejected"`
	Timeouts     int64 `json:"timeouts"`
	Runs         int64 `json:"runs"`
	RunErrors    int64 `json:"run_errors"`
	Abandoned    int64 `json:"abandoned"`
	NotModified  int64 `json:"not_modified"`
	QueueDepth   int   `json:"queue_depth"`
	Running      int64 `json:"running"`
	Inflight     int   `json:"inflight"`
	CacheEntries int   `json:"cache_entries"`
	Draining     bool  `json:"draining"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := metricsSnapshot{
		Requests:     s.stats.Requests.Load(),
		BadRequests:  s.stats.BadRequests.Load(),
		CacheHits:    s.stats.CacheHits.Load(),
		Coalesced:    s.stats.Coalesced.Load(),
		Admitted:     s.stats.Admitted.Load(),
		Shed:         s.stats.Shed.Load(),
		Rejected:     s.stats.Rejected.Load(),
		Timeouts:     s.stats.Timeouts.Load(),
		Runs:         s.stats.Runs.Load(),
		RunErrors:    s.stats.RunErrors.Load(),
		Abandoned:    s.stats.Abandoned.Load(),
		NotModified:  s.stats.NotModified.Load(),
		QueueDepth:   s.q.depth(),
		Running:      s.running.Load(),
		Inflight:     s.flights.inflight(),
		CacheEntries: s.cache.entries(),
		Draining:     s.draining.Load(),
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	body, _ := json.Marshal(map[string]metricsSnapshot{"atmserve": snap})
	w.Write(append(body, '\n'))
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `atmserve — deterministic ATM simulation service

  GET|POST /v1/simulate   run a simulation (cached, deduped, admission-controlled)
      params: platform (required), n (required), seed, periods,
              pairsource, detail (task|block), telemetry (none|jsonl|chrome)
  GET /healthz            liveness
  GET /readyz             readiness (503 while draining)
  GET /metrics            serving counters as JSON
  GET /telemetry/         last completed run's telemetry aggregates

Identical configs return byte-identical responses whether computed,
cached, or coalesced onto another request's run.
`)
}
