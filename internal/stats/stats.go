// Package stats provides the small set of summary statistics the
// experiment harness reports: mean, standard deviation, extrema and
// percentiles over timing samples.
package stats

import (
	"math"
	"sort"
)

// Summary describes one sample set.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary; an empty input yields the zero value.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)

	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range xs {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0-100) of sorted data using
// linear interpolation between closest ranks. It panics on empty input
// or p outside [0, 100].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty data")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// MaxDeviation returns the largest absolute difference between any
// sample and the first sample — the determinism check of the T-DET
// table (0 means every run took exactly the same time).
func MaxDeviation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ref := xs[0]
	max := 0.0
	for _, v := range xs {
		if d := math.Abs(v - ref); d > max {
			max = d
		}
	}
	return max
}
