// Sharded (table-mode) execution of Detect/DetectResolve: the
// worker-parallel broad phase feeding the branch-free batched pair
// kernel.
//
// The control flow mirrors soa.go statement for statement; two things
// change, both bit-identical to the column path:
//
//   - Candidates come from a broadphase.PairTable the source builds
//     once per invocation with a worker-parallel walk of its sorted
//     order, instead of a bitmap query per scan. Reuse is exact: a
//     track's candidate set depends only on positions and speeds,
//     heading commits preserve speed, and the index is never
//     re-prepared within an invocation, so every rotation probe and
//     every dirty-replay rescan reads exactly the slice a fresh
//     AppendCandidates call would emit.
//
//   - The pair loop is scanTableBatch: a compaction pass applies the
//     self-skip and altitude filters, then the survivors are evaluated
//     in unrolled blocks of 8 with branch-free min/max time-band
//     intersection. The equivalence argument is spelled out at the
//     kernel.
//
// Every scan — scan phase, probes, rescans — is one kernel call over
// the track's full candidate slice in every discipline and at every
// worker count, so the drained batch counter is as worker-invariant as
// the results themselves.
package tasks

import (
	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/parexec"
)

// kernelBatch is the batched kernel's block width: 8 candidate pairs
// per unrolled iteration, the natural SIMD shape for float64 lanes.
const kernelBatch = 8

// scanTableBatch is the branch-free batched form of the fused Task 2+3
// pair kernel. It folds the candidates cand of the track at index ti —
// at (tx, ty, talt), probing velocity (vx, vy) — into r, using keep as
// the compaction buffer (returned so the caller can retain its growth).
//
// Stage 1 compacts the candidates that survive the self-skip and the
// altitude band (the ~95% reject) into keep; the survivor count is the
// pair-check tally, exactly as the scalar kernel counts before its
// window test. Stage 2 consumes survivors in blocks of kernelBatch SoA
// lanes with hoisted track scalars and no branches in the window math,
// then a scalar tail finishes the remainder in the same arithmetic.
//
// Equivalence to PairConflictAt + the scalar fold, case by case: with
// d = trial - track and dv relative velocity per axis, the unconditional
// quotients t1 = (-sep-d)/dv, t2 = (sep-d)/dv reproduce
// geom.AxisConflictWindow exactly. For dv != 0 they are its finite
// window (min/max replaces the swap). For dv == 0 with |d| < sep the
// numerators straddle zero, so t1, t2 = ∓Inf — the unbounded window.
// For |d| > sep both numerators share a sign, the window collapses to
// [±Inf, ±Inf], and the [0, HorizonPeriods] clip empties it. For
// |d| == sep one numerator is zero, 0/0 = NaN poisons the builtin
// min/max chain (they propagate NaN like math.Min/math.Max), and the
// final tmin < tmax predicate is false — the scalar path's empty
// window. The fold order max(max(xLo, yLo), 0), min(min(xHi, yHi), H)
// is geom.Interval.Intersect's own composition on the same values, so
// every stored tmin is bit-identical to the scalar kernel's, and the
// in-order strict-< fold preserves its first-wins tie-break.
//
// Bounds checks: the length guard over the hoisted column locals
// teaches the prove pass that every column covers [0, n) (fillColumns'
// idiom), candidate IDs are range-checked with a single never-taken
// uint compare per lane (an out-of-range ID gets the empty window, the
// same verdict an impossible candidate would earn), and blocks are
// consumed by reslicing rest so the constant block length is visible
// to the prover. The gate holds the whole kernel bounds-check-free.
//
//atm:noalloc
//atm:noescape
//atm:nobce
func scanTableBatch(c *airspace.Columns, keep []int32, ti int, tx, ty, vx, vy, talt float64, cand []int32, r *scanResult) []int32 {
	keep = keep[:0]
	xs, ys, dxs, dys, alts := c.X, c.Y, c.DX, c.DY, c.Alt
	n := len(xs)
	if len(ys) < n || len(dxs) < n || len(dys) < n || len(alts) < n {
		return keep // columns are always filled to equal length
	}
	for _, p := range cand {
		q := int(p)
		if uint(q) < uint(n) && q != ti && AltOverlapAt(talt, alts[q]) {
			keep = append(keep, p)
		}
	}
	nk := len(keep)
	r.checks += int32(nk)
	if nk == 0 {
		return keep
	}
	r.batches += int32((nk + kernelBatch - 1) / kernelBatch)
	const sep = airspace.SepTotal
	var blo, bhi [kernelBatch]float64
	rest := keep
	for len(rest) >= kernelBatch {
		blk := rest[:kernelBatch]
		for l := 0; l < kernelBatch; l++ {
			q := int(blk[l])
			if uint(q) >= uint(n) {
				blo[l], bhi[l] = 0, 0 // empty window; unreachable for real candidates
				continue
			}
			dx := xs[q] - tx
			dvx := dxs[q] - vx
			x1 := (-sep - dx) / dvx
			x2 := (sep - dx) / dvx
			dy := ys[q] - ty
			dvy := dys[q] - vy
			y1 := (-sep - dy) / dvy
			y2 := (sep - dy) / dvy
			blo[l] = max(max(min(x1, x2), min(y1, y2)), 0)
			bhi[l] = min(min(max(x1, x2), max(y1, y2)), airspace.HorizonPeriods)
		}
		for l := 0; l < kernelBatch; l++ {
			if blo[l] < bhi[l] && blo[l] < r.tmin {
				r.tmin = blo[l]
				r.with = blk[l]
			}
		}
		rest = rest[kernelBatch:]
	}
	for _, p := range rest {
		q := int(p)
		if uint(q) >= uint(n) {
			continue
		}
		dx := xs[q] - tx
		dvx := dxs[q] - vx
		x1 := (-sep - dx) / dvx
		x2 := (sep - dx) / dvx
		dy := ys[q] - ty
		dvy := dys[q] - vy
		y1 := (-sep - dy) / dvy
		y2 := (sep - dy) / dvy
		tlo := max(max(min(x1, x2), min(y1, y2)), 0)
		thi := min(min(max(x1, x2), max(y1, y2)), airspace.HorizonPeriods)
		if tlo < thi && tlo < r.tmin {
			r.tmin = tlo
			r.with = p
		}
	}
	return keep
}

// scanTableOne runs one full scan of the track at index ti with probe
// velocity (vx, vy), serving candidates from the table. Probe scans are
// deliberately never fanned out: table candidate sets are short (the
// broad phase has already pruned), so one kernel call is both the fast
// path and the reason the batch tally cannot depend on worker count.
//
//atm:noalloc
//atm:noescape
func scanTableOne(c *airspace.Columns, tab *broadphase.PairTable, ti int, vx, vy float64, sc *detectScratch) scanResult {
	r := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
	sc.bufs[0].cand = scanTableBatch(c, sc.bufs[0].cand, ti, c.X[ti], c.Y[ti], vx, vy, c.Alt[ti], tab.Candidates(ti), &r)
	return r
}

// tableScanJob is the parallel scan phase's persistent body: one chunk
// of tracks, each scanned once against the pre-resolution snapshot via
// the batched kernel. Held in detectScratch so RunBody dispatch
// allocates nothing.
type tableScanJob struct {
	sc        *detectScratch
	w         *airspace.World
	tab       *broadphase.PairTable
	wantReach bool
}

//atm:noalloc
func (j *tableScanJob) Chunk(worker, lo, hi int) {
	sc := j.sc
	c := &sc.cols
	for i := lo; i < hi; i++ {
		track := &j.w.Aircraft[i]
		if j.wantReach {
			sc.reach[i] = broadphase.ReachAt(c.DX[i], c.DY[i])
		}
		r := scanResult{tmin: airspace.SafeTime, with: airspace.NoConflict}
		sc.bufs[worker].cand = scanTableBatch(c, sc.bufs[worker].cand, i, c.X[i], c.Y[i], track.DX, track.DY, c.Alt[i], j.tab.Candidates(i), &r)
		sc.res[i] = r
	}
}

// prepareTableCols refreshes the scratch columns, builds the pair-source
// index (from the columns when the source supports it), hands the
// engine pool to the source, and materializes the candidate table.
func prepareTableCols(w *airspace.World, src broadphase.PairSource, ts broadphase.TableSource, p *parexec.Pool, sc *detectScratch) *broadphase.PairTable {
	sc.cols.FillFrom(w)
	ts.SetPool(p)
	if m := broadphase.MaintainerOf(src); m != nil {
		if cp, ok := m.(broadphase.ColumnsPreparer); ok {
			cp.PrepareColumns(&sc.cols)
			return ts.PrepareTable()
		}
	}
	src.Prepare(w)
	return ts.PrepareTable()
}

// detectTable is DetectExec's sharded path.
//
//atm:ordered-merge
func detectTable(w *airspace.World, src broadphase.PairSource, ts broadphase.TableSource, p *parexec.Pool) DetectStats {
	var st DetectStats
	n := w.N()
	sc := getDetectScratch(n, p.Workers())
	defer putDetectScratch(sc)
	tab := prepareTableCols(w, src, ts, p, sc)
	c := &sc.cols
	var batches int64

	if p.Workers() > 1 {
		sc.tjob = tableScanJob{sc: sc, w: w, tab: tab}
		p.RunBody(n, scanGrain, &sc.tjob)
	} else {
		for i := range w.Aircraft {
			track := &w.Aircraft[i]
			sc.res[i] = scanTableOne(c, tab, i, track.DX, track.DY, sc)
		}
	}
	for i := range w.Aircraft {
		track := &w.Aircraft[i]
		track.ResetConflict()
		r := sc.res[i]
		st.PairChecks += int(r.checks)
		batches += int64(r.batches)
		if r.tmin < airspace.CriticalTime {
			st.Conflicts++
			MarkConflict(w, track, r.with, r.tmin)
		}
	}
	ts.AddKernelBatches(batches)
	return st
}

// detectResolveTable is DetectResolveExec's sharded path. Control flow
// is detectResolveCols' — snapshot scan phase, serial replay with the
// dirty-envelope rescan rule, write-through heading commits — with
// every scan served from the table through the batched kernel.
//
//atm:ordered-merge
func detectResolveTable(w *airspace.World, src broadphase.PairSource, ts broadphase.TableSource, p *parexec.Pool) DetectStats {
	var st DetectStats
	n := w.N()
	sc := getDetectScratch(n, p.Workers())
	defer putDetectScratch(sc)
	tab := prepareTableCols(w, src, ts, p, sc)
	c := &sc.cols
	var batches int64

	if p.Workers() == 1 {
		for i := range w.Aircraft {
			resolveOneSerialTable(w, c, tab, &w.Aircraft[i], &st, &batches, sc)
		}
		ts.AddKernelBatches(batches)
		return st
	}

	sc.tjob = tableScanJob{sc: sc, w: w, tab: tab, wantReach: true}
	p.RunBody(n, scanGrain, &sc.tjob)

	dirty := sc.dirty[:0]
	for i := range w.Aircraft {
		track := &w.Aircraft[i]
		r := sc.res[i]
		if dirtyInteracts(w, sc, track, dirty) {
			r = scanTableOne(c, tab, i, track.DX, track.DY, sc)
		}
		track.ResetConflict()
		st.PairChecks += int(r.checks)
		batches += int64(r.batches)
		if !(r.tmin < airspace.CriticalTime) {
			continue
		}
		st.Conflicts++
		MarkConflict(w, track, r.with, r.tmin)

		base := geom.Vec2{X: track.DX, Y: track.DY}
		resolved := false
		for _, deg := range rotationSchedule {
			st.Rotations++
			v := base.Rotate(deg)
			track.BatX, track.BatY = v.X, v.Y
			pr := scanTableOne(c, tab, i, v.X, v.Y, sc)
			st.PairChecks += int(pr.checks)
			batches += int64(pr.batches)
			if !(pr.tmin < airspace.CriticalTime) {
				track.DX, track.DY = v.X, v.Y
				c.SetVel(i, v.X, v.Y)
				track.ResetConflict()
				st.Resolved++
				resolved = true
				dirty = append(dirty, int32(i))
				break
			}
			MarkConflict(w, track, pr.with, pr.tmin)
		}
		if !resolved {
			st.Unresolved++
		}
	}
	sc.dirty = dirty[:0]
	ts.AddKernelBatches(batches)
	return st
}

// resolveOneSerialTable is resolveOneSerialCols serving candidates from
// the table.
//
//atm:noalloc
func resolveOneSerialTable(w *airspace.World, c *airspace.Columns, tab *broadphase.PairTable, track *airspace.Aircraft, st *DetectStats, batches *int64, sc *detectScratch) {
	ti := int(track.ID)
	track.ResetConflict()
	r := scanTableOne(c, tab, ti, track.DX, track.DY, sc)
	st.PairChecks += int(r.checks)
	*batches += int64(r.batches)
	if !(r.tmin < airspace.CriticalTime) {
		return
	}
	st.Conflicts++
	MarkConflict(w, track, r.with, r.tmin)

	base := geom.Vec2{X: track.DX, Y: track.DY}
	for _, deg := range rotationSchedule {
		st.Rotations++
		v := base.Rotate(deg)
		track.BatX, track.BatY = v.X, v.Y
		pr := scanTableOne(c, tab, ti, v.X, v.Y, sc)
		st.PairChecks += int(pr.checks)
		*batches += int64(pr.batches)
		if !(pr.tmin < airspace.CriticalTime) {
			track.DX, track.DY = v.X, v.Y
			c.SetVel(ti, v.X, v.Y)
			track.ResetConflict()
			st.Resolved++
			return
		}
		MarkConflict(w, track, pr.with, pr.tmin)
	}
	st.Unresolved++
}
