package telemetry

// Shared event names emitted by the platform adapters and core, kept
// in one place so exporters, tests and dashboards agree on spelling.
// Kernel-phase spans use the platform's own kernel/phase names (e.g.
// "census", "ap.boxpass").
const (
	// NameTransfer spans host<->device transfer time (CUDA devices).
	NameTransfer = "transfer"
	// NameCUDABlockOps gauges per-block thread ops (DetailBlock only);
	// Arg is the block index.
	NameCUDABlockOps = "cuda.block.ops"

	// NameTrackMatched counts aircraft updated from a radar return in
	// one Task 1 run.
	NameTrackMatched = "track.matched"

	// Detect/resolve work counters, one per Tasks 2-3 invocation.
	NameDetectConflicts  = "detect.conflicts"
	NameDetectRotations  = "detect.rotations"
	NameDetectResolved   = "detect.resolved"
	NameDetectUnresolved = "detect.unresolved"
	NameDetectPairChecks = "detect.pairchecks"

	// Broad-phase pruning counters, drained by core after each Tasks
	// 2-3 run when a pair source is installed.
	NameBroadphaseQueries    = "broadphase.queries"
	NameBroadphaseCandidates = "broadphase.candidates"

	// Incremental broad-phase maintenance counters, drained by core
	// after each Tasks 2-3 run when the coherent mode is on. Updates
	// and Rebuilds partition the Prepare calls (an update repaired the
	// previous order in place; a rebuild fell back to a full sort);
	// Moved and Resorted describe repair effort. The matching span
	// names are the engines' per-phase kernel names suffixed with
	// ".update" / ".rebuild" (e.g. "broadphase.update", "index.rebuild",
	// "ap.index.update").
	NameBroadphaseUpdates  = "broadphase.updates"
	NameBroadphaseRebuilds = "broadphase.rebuilds"
	NameBroadphaseMoved    = "broadphase.moved"
	NameBroadphaseResorted = "broadphase.resorted"

	// Sharded broad-phase counters, drained by core after each Tasks 2-3
	// run when the worker-parallel table mode (-parshard) is on:
	// NameBroadphaseSegments counts table-build segments walked,
	// NameKernelBatches the 8-wide batched-kernel iterations consumers
	// executed against the table. Both are invariant across worker
	// counts, like every result the mode produces.
	NameBroadphaseSegments = "broadphase.segments"
	NameKernelBatches      = "kernel.batches"

	// NameServeRun spans one whole served simulation (internal/serve):
	// it starts at the schedule origin and covers the run's virtual
	// elapsed time, so service-side exports carry the request envelope
	// alongside the scheduler's per-period and per-task spans.
	NameServeRun = "serve.run"
)
