// Package conformance is the differential-testing oracle of the
// reproduction: it runs the same scenario through every platform
// executor, pair source and worker count, fingerprints the full world
// trajectory plus the deadline record, and exposes the invariance
// relations the repository promises:
//
//   - Worker counts never change anything: for a fixed platform and
//     pair source, the full fingerprint (worlds, modeled times,
//     deadline misses, skips) is byte-identical at any worker count.
//   - Pair sources are exact supersets: for a fixed platform, every
//     pair source (including none) produces the identical world
//     trajectory — conflicts, resolutions, headings. Modeled times may
//     differ (pruning changes op counts), so only the world hash is
//     compared across sources.
//   - The coherent sweep is bit-identical to the rebuild sweep,
//     including modeled times.
//   - Within a resolution discipline, platforms agree on the world
//     trajectory: the snapshot group (CUDA devices, the multicore
//     Xeon, the wide-vector machines) resolves against a frozen copy
//     of the period's world, the sequential group (STARAN, ClearSpeed)
//     implements the paper's in-place reference scan. The two
//     disciplines legitimately differ on mutually conflicting pairs
//     (see internal/platform's cross-platform tests), so fingerprints
//     are compared within each group, never across.
//
// Every future optimization PR inherits this oracle: a change that
// breaks any equality above fails conformance before it lands.
package conformance

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/airspace"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Lane is one execution configuration orthogonal to the workload:
// broad-phase pair source, coherence mode and host worker count.
type Lane struct {
	// PairSource is a broadphase source name, or "" for the paper's
	// all-pairs kernels.
	PairSource string
	// Coherent selects the temporal-coherence incremental broad phase
	// (meaningful with PairSource "sweep").
	Coherent bool
	// Sharded selects the worker-parallel table broad phase with the
	// batched pair kernel (meaningful with PairSource "sweep").
	Sharded bool
	// Workers pins the host worker pool (0 = process default).
	Workers int
}

func (l Lane) String() string {
	src := l.PairSource
	if src == "" {
		src = "allpairs"
	}
	if l.Coherent {
		src += "+coherent"
	}
	if l.Sharded {
		src += "+parshard"
	}
	return fmt.Sprintf("%s/w%d", src, l.Workers)
}

// RunSpec names one conformance run.
type RunSpec struct {
	// Platform is the machine registry key.
	Platform string
	// Scenario is the workload spec string ("" = uniform).
	Scenario string
	// N is the aircraft count.
	N int
	// Periods is how many half-second periods to run; multiples of
	// sched.PeriodsPerMajorCycle exercise whole major cycles.
	Periods int
	// Seed fixes flight setup, radar noise and MIMD jitter.
	Seed uint64
	// Lane is the execution configuration.
	Lane Lane
}

// Fingerprint condenses one run into comparable identities.
type Fingerprint struct {
	// World hashes the complete per-period world trajectory: positions,
	// velocities, altitudes, correlation state, conflict flags, partner
	// IDs and trial paths after every period. Two runs with equal World
	// produced identical conflict sets and identical resolutions at
	// every step.
	World string
	// Full extends World with the modeled task durations and the
	// deadline record; equal Full means the runs were indistinguishable
	// end to end, timing included.
	Full string
	// Conflicts is the number of aircraft holding a conflict flag after
	// the final period, Misses/Skips the deadline record — pulled out
	// of the hashes for readable failure reports.
	Conflicts int
	Misses    int
	Skips     int
}

// Run executes the spec and fingerprints the trajectory.
func Run(rs RunSpec) Fingerprint {
	p := platform.MustNew(rs.Platform, rs.Seed)
	if w, ok := p.(platform.Workered); ok && rs.Lane.Workers > 0 {
		w.SetWorkers(rs.Lane.Workers)
	}
	sys := core.NewSystem(p, core.Config{
		N:           rs.N,
		Seed:        rs.Seed,
		Scenario:    rs.Scenario,
		PairSource:  rs.Lane.PairSource,
		Incremental: rs.Lane.Coherent,
		ParShard:    rs.Lane.Sharded,
	})
	worldH := sha256.New()
	buf := make([]byte, 0, rs.N*aircraftBytes)
	for i := 0; i < rs.Periods; i++ {
		sys.RunPeriod()
		buf = appendWorld(buf[:0], sys.World)
		worldH.Write(buf)
	}
	worldSum := worldH.Sum(nil)

	st := sys.Stats()
	fullH := sha256.New()
	fullH.Write(worldSum)
	var tail [8 * 8]byte
	stats := []uint64{
		uint64(st.Task(core.Task1).Total), uint64(st.Task(core.Task1).Max),
		uint64(st.Task(core.Task23).Total), uint64(st.Task(core.Task23).Max),
		uint64(st.PeriodMisses), uint64(st.TotalMisses),
		uint64(st.TotalSkips), uint64(st.Periods),
	}
	for i, v := range stats {
		binary.LittleEndian.PutUint64(tail[8*i:], v)
	}
	fullH.Write(tail[:])

	conflicts := 0
	for i := range sys.World.Aircraft {
		if sys.World.Aircraft[i].Col {
			conflicts++
		}
	}
	return Fingerprint{
		World:     hex.EncodeToString(worldSum),
		Full:      hex.EncodeToString(fullH.Sum(nil)),
		Conflicts: conflicts,
		Misses:    st.PeriodMisses,
		Skips:     st.TotalSkips,
	}
}

// aircraftBytes is the encoded size of one aircraft record: 12 fields,
// 8 bytes each.
const aircraftBytes = 12 * 8

// appendWorld encodes every semantically committed aircraft field, in
// declaration order, little endian, floats by IEEE bits.
//
// ExpX/ExpY are deliberately excluded: the dead-reckoned expectation
// is per-period scratch that every Track implementation recomputes
// from (X, Y, DX, DY) at period start, and platforms working from
// structure-of-arrays snapshots legitimately leave different residues
// in the array-of-structs record without any semantic divergence.
func appendWorld(buf []byte, w *airspace.World) []byte {
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		var rec [aircraftBytes]byte
		vals := [...]uint64{
			uint64(uint32(a.ID)),
			math.Float64bits(a.X), math.Float64bits(a.Y),
			math.Float64bits(a.DX), math.Float64bits(a.DY),
			math.Float64bits(a.Alt),
			math.Float64bits(a.BatX), math.Float64bits(a.BatY),
			boolBits(a.Col),
			math.Float64bits(a.TimeTill),
			uint64(uint32(a.ColWith)),
			uint64(uint8(a.RMatch)),
		}
		for j, v := range vals {
			binary.LittleEndian.PutUint64(rec[8*j:], v)
		}
		buf = append(buf, rec[:]...)
	}
	return buf
}

func boolBits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// SnapshotPlatforms lists the registry keys of the snapshot resolution
// discipline: Tasks 2-3 detect and resolve against a frozen copy of
// the period's world (data-parallel semantics).
func SnapshotPlatforms() []string {
	return []string{
		platform.GeForce9800GT, platform.GTX880M, platform.TitanXPascal,
		platform.Xeon16, platform.XeonPhi, platform.AVX2,
	}
}

// SequentialPlatforms lists the registry keys of the sequential
// resolution discipline: the associative processors implement the
// paper's in-place reference scan.
func SequentialPlatforms() []string {
	return []string{platform.STARAN, platform.ClearSpeed}
}

// AllPlatforms is every registry key, snapshot group first.
func AllPlatforms() []string {
	return append(SnapshotPlatforms(), SequentialPlatforms()...)
}

// WorkerLanes is the acceptance worker matrix over one pair source.
func WorkerLanes(pairSource string, coherent bool) []Lane {
	return ShardedWorkerLanes(pairSource, coherent, false)
}

// ShardedWorkerLanes is WorkerLanes with the sharded table mode
// selectable, so the acceptance matrix folds the worker-parallel broad
// phase into the same worker-invariance relations.
func ShardedWorkerLanes(pairSource string, coherent, sharded bool) []Lane {
	return []Lane{
		{PairSource: pairSource, Coherent: coherent, Sharded: sharded, Workers: 1},
		{PairSource: pairSource, Coherent: coherent, Sharded: sharded, Workers: 3},
		{PairSource: pairSource, Coherent: coherent, Sharded: sharded, Workers: 8},
	}
}

// MajorCycles converts major cycles to periods for RunSpec.Periods.
func MajorCycles(k int) int { return k * sched.PeriodsPerMajorCycle }
