// Fixture for the modeledtimeflow analyzer analyzed OUTSIDE the
// platform packages: Track and DetectResolve are ordinary method names
// there, not modeled-time roots, and there is no //atm:modeled-time
// directive — so nothing is reachable from a root and nothing may be
// flagged.
package report

import "time"

type bench struct {
	elapsed time.Duration
}

func (b *bench) Track(n int) time.Duration {
	t0 := time.Now() // clean: not a root outside the platform packages
	b.elapsed = time.Since(t0)
	return b.elapsed
}

func (b *bench) DetectResolve(n int) time.Duration {
	return b.measure()
}

func (b *bench) measure() time.Duration {
	return time.Since(time.Now()) // clean: unreachable from any root
}
