package tasks

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// noallocSpec records one function's place in the zero-alloc contract:
// whether the declaration itself carries //atm:noalloc, and how many
// of its inline closures do.
type noallocSpec struct {
	decl     bool
	closures int
}

// noallocContract is the single source of truth for which hot paths of
// this package are under the zero-allocation contract. Three things
// are tied to it:
//
//   - the //atm:noalloc directives in the source, enforced statically
//     by the noalloc analyzer (make lint) — the consistency test below
//     fails if the directives and this table drift apart;
//   - TestExecZeroAllocSteadyState, which asserts the runtime
//     allocation counts these directives promise (and must skip under
//     -race, where detector instrumentation allocates — the static
//     contract and this consistency test keep running there);
//   - reviewers deciding whether a new hot-path function needs the
//     directive: if it is called per period, it belongs here.
var noallocContract = map[string]noallocSpec{
	"scanWith":               {decl: true},
	"scanPairInto":           {decl: true},
	"resolveOneSerial":       {decl: true},
	"dirtyInteracts":         {decl: true},
	"correlateRadarFallback": {decl: true},
	"scanPar":                {closures: 1}, // the fanned-out pair scan body
	"DetectExec":             {closures: 1}, // the parallel scan phase
	"DetectResolveExec":      {closures: 1}, // the parallel scan phase
	"correlateParallel":      {closures: 4}, // expected-pos, box-search, commit, wrap phases
	// Coherent (SoA) path, soa.go: mirrors of the record-path entries.
	"scanColsInto":         {decl: true},
	"scanColsWith":         {decl: true},
	"resolveOneSerialCols": {decl: true},
	"scanColsPar":          {closures: 1}, // the fanned-out pair scan body
	"detectCols":           {closures: 1}, // the parallel scan phase
	"detectResolveCols":    {closures: 1}, // the parallel scan phase
	// Sharded (table-mode) path, batch.go: the batched kernel and its
	// consumers. Chunk is tableScanJob's parallel scan body.
	"scanTableBatch":        {decl: true},
	"scanTableOne":          {decl: true},
	"resolveOneSerialTable": {decl: true},
	"Chunk":                 {decl: true},
}

// TestNoallocManifestMatchesDirectives parses this package's sources
// (no type checking, so it runs under -race) and checks that the
// //atm:noalloc directives match noallocContract exactly, in both
// directions.
func TestNoallocManifestMatchesDirectives(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]noallocSpec)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, e.Name(), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		// Index every //atm:noalloc comment by position.
		var marks []token.Pos
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "atm:noalloc" {
					marks = append(marks, c.Pos())
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			spec := noallocSpec{}
			for _, pos := range marks {
				switch {
				case fd.Doc != nil && pos >= fd.Doc.Pos() && pos < fd.Doc.End():
					spec.decl = true
				case fd.Body != nil && pos > fd.Body.Pos() && pos < fd.Body.End():
					spec.closures++
				}
			}
			if spec.decl || spec.closures > 0 {
				got[fd.Name.Name] = spec
			}
		}
	}
	for name, want := range noallocContract {
		g, ok := got[name]
		if !ok {
			t.Errorf("noallocContract lists %s but the source carries no //atm:noalloc for it", name)
			continue
		}
		if g != want {
			t.Errorf("%s: source has %+v, noallocContract says %+v", name, g, want)
		}
	}
	for name := range got {
		if _, ok := noallocContract[name]; !ok {
			t.Errorf("source annotates %s with //atm:noalloc but noallocContract does not list it; add it so the runtime assertion covers it", name)
		}
	}
}
