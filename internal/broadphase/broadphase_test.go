package broadphase_test

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// randomWorld builds a world whose traffic density is controlled by
// spread: positions are compressed toward the origin by the spread
// factor and altitudes are squeezed into a few bands so that a
// meaningful fraction of pairs is in real conflict.
func randomWorld(r *rng.Rand, n int, spread float64) *airspace.World {
	w := airspace.NewWorld(n, r)
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.X *= spread
		a.Y *= spread
		// Three altitude bands 800 ft apart: within-band pairs overlap
		// (|dAlt| < AltBandFeet), cross-band pairs mostly do not.
		band := float64(r.IntN(3)) * 800
		a.Alt = 20000 + band + r.Range(0, 150)
	}
	return w
}

// sources returns fresh instances of every registered pair source.
func sources(t *testing.T) []broadphase.PairSource {
	t.Helper()
	var out []broadphase.PairSource
	for _, name := range broadphase.Names() {
		src, err := broadphase.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out = append(out, src)
	}
	return out
}

// checkStatsEqual compares every DetectStats field except PairChecks,
// which legitimately differs between pruned and unpruned scans.
func checkStatsEqual(t *testing.T, label string, want, got tasks.DetectStats) {
	t.Helper()
	if want.Conflicts != got.Conflicts || want.Rotations != got.Rotations ||
		want.Resolved != got.Resolved || want.Unresolved != got.Unresolved {
		t.Errorf("%s: stats diverge: want %+v, got %+v", label, want, got)
	}
}

// checkWorldsEqual requires bit-identical aircraft state: detection and
// resolution under a pruned source must be indistinguishable from the
// all-pairs reference.
func checkWorldsEqual(t *testing.T, label string, want, got *airspace.World) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("%s: world sizes differ: %d vs %d", label, want.N(), got.N())
	}
	for i := range want.Aircraft {
		a, b := &want.Aircraft[i], &got.Aircraft[i]
		if a.Col != b.Col || a.ColWith != b.ColWith || a.TimeTill != b.TimeTill {
			t.Errorf("%s: aircraft %d conflict state diverges: want Col=%v ColWith=%d TimeTill=%v, got Col=%v ColWith=%d TimeTill=%v",
				label, i, a.Col, a.ColWith, a.TimeTill, b.Col, b.ColWith, b.TimeTill)
		}
		if a.DX != b.DX || a.DY != b.DY || a.BatX != b.BatX || a.BatY != b.BatY {
			t.Errorf("%s: aircraft %d course diverges: want (%v,%v) bat (%v,%v), got (%v,%v) bat (%v,%v)",
				label, i, a.DX, a.DY, a.BatX, a.BatY, b.DX, b.DY, b.BatX, b.BatY)
		}
	}
}

// TestSourcesAgree is the core exactness property: on randomized worlds
// of varying size and density, Detect and DetectResolve under Brute,
// Grid, and Sweep must produce bit-identical results to the all-pairs
// reference — same conflict count, same earliest-critical pairs, same
// committed resolution courses.
func TestSourcesAgree(t *testing.T) {
	r := rng.New(0xb20adfa5e)
	worlds := 0
	for _, spread := range []float64{1, 0.3, 0.1} {
		for trial := 0; trial < 36; trial++ {
			n := 40 + r.IntN(260)
			base := randomWorld(r.Split(), n, spread)
			worlds++

			// Reference: all-pairs scan, no source.
			refDet := base.Clone()
			refDetSt := tasks.DetectWith(refDet, nil)
			refRes := base.Clone()
			refResSt := tasks.DetectResolveWith(refRes, nil)

			for _, src := range sources(t) {
				label := src.Name()
				wd := base.Clone()
				st := tasks.DetectWith(wd, src)
				checkStatsEqual(t, label+"/detect", refDetSt, st)
				checkWorldsEqual(t, label+"/detect", refDet, wd)

				wr := base.Clone()
				st = tasks.DetectResolveWith(wr, src)
				checkStatsEqual(t, label+"/resolve", refResSt, st)
				checkWorldsEqual(t, label+"/resolve", refRes, wr)
			}
		}
	}
	if worlds < 100 {
		t.Fatalf("property exercised only %d worlds, want >= 100", worlds)
	}
}

// TestGridSeamWraparound pins the torus-folding behaviour of the grid:
// traffic clustered right at the (x, y) -> (-x, -y) field exit seam —
// aircraft sitting just inside opposite edges and corners, with
// envelopes spilling past them — must detect and resolve exactly like
// Brute, and the grid's candidate sets must remain supersets of every
// critically conflicting pair.
func TestGridSeamWraparound(t *testing.T) {
	r := rng.New(0x5ea3)
	for trial := 0; trial < 40; trial++ {
		n := 60 + r.IntN(120)
		w := airspace.NewWorld(n, r.Split())
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			// Park each aircraft within a couple of nm of a field edge
			// (or corner), on either side of the seam.
			edge := airspace.FieldHalf - r.Range(0, 2)
			sx, sy := r.Sign(), r.Sign()
			switch r.IntN(3) {
			case 0: // x seam
				a.X = edge * sx
				a.Y = r.Range(-airspace.FieldHalf, airspace.FieldHalf)
			case 1: // y seam
				a.X = r.Range(-airspace.FieldHalf, airspace.FieldHalf)
				a.Y = edge * sy
			default: // corner
				a.X = edge * sx
				a.Y = (airspace.FieldHalf - r.Range(0, 2)) * sy
			}
			a.Alt = 25000 + r.Range(0, 400)
		}

		grid := broadphase.NewGrid()
		refDet := w.Clone()
		refSt := tasks.DetectWith(refDet, broadphase.NewBrute())
		gw := w.Clone()
		gst := tasks.DetectWith(gw, grid)
		checkStatsEqual(t, "seam/detect", refSt, gst)
		checkWorldsEqual(t, "seam/detect", refDet, gw)

		refRes := w.Clone()
		refResSt := tasks.DetectResolveWith(refRes, nil)
		gr := w.Clone()
		grSt := tasks.DetectResolveWith(gr, broadphase.NewGrid())
		checkStatsEqual(t, "seam/resolve", refResSt, grSt)
		checkWorldsEqual(t, "seam/resolve", refRes, gr)

		// Explicit superset check on the original snapshot: every pair
		// whose conflict window opens before the prune horizon must be
		// in the grid's candidate set.
		grid.Prepare(w)
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			cand := grid.Candidates(w, a)
			for j := range w.Aircraft {
				if i == j {
					continue
				}
				b := &w.Aircraft[j]
				if !tasks.AltOverlap(a, b) {
					continue
				}
				tmin, tmax, ok := tasks.PairConflict(a.X, a.Y, a.DX, a.DY, b)
				if !ok || tmin >= tmax || tmin >= broadphase.PruneHorizon {
					continue
				}
				if !containsID(cand, int32(j)) {
					t.Fatalf("trial %d: grid dropped critical pair (%d, %d) with tmin %v: candidates %v",
						trial, i, j, tmin, cand)
				}
			}
		}
	}
}

// TestCandidatesSortedAndSuperset checks the two structural halves of
// the PairSource contract on random dense worlds: ascending order and
// the critical-pair superset property, for every source.
func TestCandidatesSortedAndSuperset(t *testing.T) {
	r := rng.New(0xca9d)
	for trial := 0; trial < 25; trial++ {
		w := randomWorld(r.Split(), 50+r.IntN(150), 0.25)
		for _, src := range sources(t) {
			src.Prepare(w)
			for i := range w.Aircraft {
				a := &w.Aircraft[i]
				cand := src.Candidates(w, a)
				for k := 1; k < len(cand); k++ {
					if cand[k-1] >= cand[k] {
						t.Fatalf("%s: candidates for %d not strictly ascending: %v", src.Name(), i, cand)
					}
				}
				for j := range w.Aircraft {
					if i == j {
						continue
					}
					b := &w.Aircraft[j]
					tmin, tmax, ok := tasks.PairConflict(a.X, a.Y, a.DX, a.DY, b)
					if !ok || tmin >= tmax || tmin >= broadphase.PruneHorizon {
						continue
					}
					if !containsID(cand, int32(j)) {
						t.Fatalf("%s: dropped critical pair (%d, %d), tmin %v", src.Name(), i, j, tmin)
					}
				}
			}
		}
	}
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// TestReachBoundsTravel sanity-checks the envelope half-width: within
// PruneHorizon periods an aircraft cannot leave its reach box on either
// axis, under any heading of the same speed.
func TestReachBoundsTravel(t *testing.T) {
	r := rng.New(7)
	w := airspace.NewWorld(64, r)
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		reach := broadphase.Reach(a)
		speed := math.Hypot(a.DX, a.DY)
		travel := speed*broadphase.PruneHorizon + airspace.SepTotal/2
		if reach < travel {
			t.Fatalf("aircraft %d: reach %v below worst-case travel %v", i, reach, travel)
		}
	}
}

func TestEmptyAndTinyWorlds(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		w := airspace.NewWorld(n, rng.New(uint64(n)+1))
		for _, src := range sources(t) {
			st := tasks.DetectWith(w.Clone(), src)
			ref := tasks.DetectWith(w.Clone(), nil)
			checkStatsEqual(t, src.Name(), ref, st)
		}
	}
}

func TestFixedCellGridAgrees(t *testing.T) {
	r := rng.New(0xce11)
	base := randomWorld(r, 120, 0.2)
	ref := base.Clone()
	refSt := tasks.DetectResolveWith(ref, nil)
	for _, cell := range []float64{4, 16, 100, 500} {
		w := base.Clone()
		st := tasks.DetectResolveWith(w, broadphase.NewGridCell(cell))
		checkStatsEqual(t, "fixed-cell", refSt, st)
		checkWorldsEqual(t, "fixed-cell", ref, w)
	}
}

func TestNewGridCellPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGridCell(0) did not panic")
		}
	}()
	broadphase.NewGridCell(0)
}

func TestRegistry(t *testing.T) {
	for _, name := range broadphase.Names() {
		src := broadphase.MustNew(name)
		if src.Name() != name {
			t.Errorf("MustNew(%q).Name() = %q", name, src.Name())
		}
	}
	if _, err := broadphase.New("quadtree"); err == nil {
		t.Error("New with unknown name did not error")
	}
}

// TestPruningPrunes guards against the trivial "return everything"
// implementation: on a sparse full-field world the pruned sources must
// evaluate strictly fewer pairs than brute force.
func TestPruningPrunes(t *testing.T) {
	w := airspace.NewWorld(2000, rng.New(42))
	brute := tasks.DetectWith(w.Clone(), broadphase.NewBrute())
	for _, name := range []string{broadphase.GridName, broadphase.SweepName} {
		st := tasks.DetectWith(w.Clone(), broadphase.MustNew(name))
		if st.PairChecks >= brute.PairChecks {
			t.Errorf("%s: %d pair checks, brute %d — no pruning", name, st.PairChecks, brute.PairChecks)
		}
	}
}
