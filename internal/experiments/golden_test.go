package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files with current measurements")

// goldenMeasurements runs every registered platform — paper set and
// extensions — at N=1000 for one major cycle, seed 2018, single
// worker, and tabulates the Figure 4 / Figure 6 measurements plus the
// deadline record.
func goldenMeasurements(t *testing.T) *trace.Dataset {
	t.Helper()
	d := &trace.Dataset{
		ID:     "golden",
		Title:  "Pinned measurements: N=1000, 1 major cycle, seed 2018, workers=1",
		XLabel: "metric",
		YLabel: "value",
	}
	for _, name := range append(platform.Names(), platform.ExtensionNames()...) {
		p := platform.MustNew(name, 2018)
		p.(platform.Workered).SetWorkers(1)
		sys := core.NewSystem(p, core.Config{N: 1000, Seed: 2018})
		sys.RunMajorCycles(1)
		st := sys.Stats()
		t1 := st.Task(core.Task1)
		t23 := st.Task(core.Task23)
		label := platform.Label(name)
		d.Add(label, 0, t1.Mean().Seconds())  // fig4: Task 1 mean seconds
		d.Add(label, 1, t23.Mean().Seconds()) // fig6: Tasks 2+3 mean seconds
		d.Add(label, 2, t1.Max.Seconds())
		d.Add(label, 3, t23.Max.Seconds())
		d.Add(label, 4, float64(st.PeriodMisses))
		d.Add(label, 5, float64(st.TotalSkips))
	}
	return d
}

// TestGoldenMeasurements pins the end-to-end simulation output — the
// numbers Figures 4 and 6 are built from — against a checked-in golden
// file. Any change to task modeling, scheduling, RNG streams or
// platform profiles shows up here as a diff; regenerate deliberately
// with:
//
//	go test ./internal/experiments -run TestGoldenMeasurements -update
//
// Everything measured is deterministic at workers=1 (the MIMD machine
// included: its jitter is seeded and its arbitration sequential), so
// the comparison is byte-exact.
func TestGoldenMeasurements(t *testing.T) {
	d := goldenMeasurements(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_measurements.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("measurements diverged from %s (intentional? re-run with -update):\n-- got --\n%s\n-- want --\n%s",
			path, buf.Bytes(), want)
	}
}
