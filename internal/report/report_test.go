package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func sample() *trace.Dataset {
	d := &trace.Dataset{ID: "fig4", Title: "Task 1", XLabel: "aircraft", YLabel: "seconds"}
	d.Add("Titan X", 1000, 0.0012)
	d.Add("Titan X", 2000, 0.0025)
	d.Add("Xeon", 1000, 0.05)
	d.Add("Xeon", 2000, 0.21)
	return d
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"a", "long-header"}, [][]string{{"xxxx", "1"}, {"y", "22"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[0], "a    ") {
		t.Fatalf("header not padded: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("no separator: %q", lines[1])
	}
}

func TestDatasetTable(t *testing.T) {
	var buf bytes.Buffer
	if err := DatasetTable(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig4", "aircraft", "Titan X", "Xeon", "1000", "2000", "1.200ms", "210.000ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.0000005, "0.5µs"},
		{0.0025, "2.500ms"},
		{1.5, "1.500s"},
	}
	for _, c := range cases {
		if got := formatSeconds(c.in); got != c.want {
			t.Errorf("formatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestChartRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, sample(), 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "* = Titan X") || !strings.Contains(out, "o = Xeon") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, &trace.Dataset{Title: "empty"}, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatalf("empty chart output: %q", buf.String())
	}
}

func TestChartSinglePoint(t *testing.T) {
	d := &trace.Dataset{Title: "one"}
	d.Add("A", 5, 5)
	var buf bytes.Buffer
	if err := Chart(&buf, d, 20, 6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("single point not plotted")
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, sample(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output with clamped dimensions")
	}
}
