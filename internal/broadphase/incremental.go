package broadphase

import "repro/internal/airspace"

// UpdateStats counts the index-maintenance work an incremental pair
// source performed since the last drain. The counters make temporal
// coherence observable: a healthy steady state shows Updates climbing
// with Rebuilds stuck at the initial build, and Moved staying well
// under the repair budget.
type UpdateStats struct {
	// Updates counts Prepare calls that repaired the previous order in
	// place; Rebuilds counts Prepare calls that ran a full sort (the
	// initial build, a world-size change, or a budget-exceeded
	// fallback).
	Updates, Rebuilds int64
	// Moved is the total insertion shifts spent by repairs; Resorted is
	// the number of elements found out of place.
	Moved, Resorted int64
}

// Maintainer is implemented by pair sources that can maintain their
// index incrementally across Prepare calls. Sources that always rebuild
// simply do not implement it.
type Maintainer interface {
	PairSource
	// Incremental reports whether incremental maintenance is enabled on
	// this instance.
	Incremental() bool
	// LastPrepareIncremental reports whether the most recent Prepare
	// updated the index in place rather than rebuilding it.
	LastPrepareIncremental() bool
	// TakeUpdateStats drains the maintenance counters. Sequential, like
	// Prepare.
	TakeUpdateStats() UpdateStats
}

// ColumnsPreparer is implemented by pair sources whose index can be
// built from a column (SoA) snapshot of the world. PrepareColumns is
// Prepare on the same world state: bit-identical candidates, but the
// build shares the dense arrays the caller's scan loops already use.
type ColumnsPreparer interface {
	PrepareColumns(c *airspace.Columns)
}

// Options selects pair-source variants in NewWith.
type Options struct {
	// Incremental requests temporal-coherence index maintenance:
	// Prepare reuses the previous invocation's index and repairs it in
	// place. Sources without an incremental mode (brute, grid) ignore
	// the option — they already rebuild in O(N) — so the flag is safe
	// to apply uniformly from a config switch.
	Incremental bool
	// Sharded requests the worker-parallel table mode: the sweep
	// materializes every track's candidate set in one parallel walk of
	// its sorted order (PrepareTable), and the incremental repair
	// splits into independent runs. Candidate sets — and therefore
	// results — are bit-identical with the flag on or off, at every
	// worker count; only host time changes. Sources without the mode
	// (brute, grid) ignore the flag.
	Sharded bool
}

// NewWith constructs the named pair source with the given options. The
// candidate sets produced are bit-identical to New's for every option
// combination; options only change how the index is maintained.
func NewWith(name string, opts Options) (PairSource, error) {
	if (opts.Incremental || opts.Sharded) && name == SweepName {
		s := NewSweep()
		s.incremental = opts.Incremental
		s.sharded = opts.Sharded
		return s, nil
	}
	return New(name)
}

// MaintainerOf returns the Maintainer behind src, unwrapping decorators
// such as Counted, or nil if the underlying source has none. Callers
// use it both to branch telemetry (update vs rebuild spans) and to
// drain UpdateStats.
func MaintainerOf(src PairSource) Maintainer {
	for src != nil {
		if m, ok := src.(Maintainer); ok {
			return m
		}
		u, ok := src.(interface{ Unwrap() PairSource })
		if !ok {
			return nil
		}
		src = u.Unwrap()
	}
	return nil
}
