package lint

import (
	"go/ast"
	"go/types"
)

// syncValueTypes are the sync primitives that are corrupted (or
// silently forked, for Pool) when a containing struct is copied by
// value: each embeds state tied to the original's identity.
var syncValueTypes = map[string]bool{
	"Pool":      true,
	"Mutex":     true,
	"RWMutex":   true,
	"Once":      true,
	"WaitGroup": true,
	"Map":       true,
	"Cond":      true,
}

// SyncField is the copylocks-style structural check: inside the
// deterministic packages, struct fields must not hold a sync primitive
// by value. go vet's copylocks only fires at a copy site; this rule
// forbids the field shape itself, because the packages it covers hand
// struct values to the parexec engine and to scratch-reuse paths where
// an accidental copy is easy and a forked sync.Pool (the bug this rule
// was born from: broadphase.Sweep embedded its pool by value) is
// silent. Hold the primitive by pointer, or keep a slice whose backing
// array is shared across copies. internal/parexec, which owns
// synchronization, is exempt, as are test files.
var SyncField = &Analyzer{
	Name: "syncfield",
	Doc: "flag struct fields holding sync primitives (Pool, Mutex, RWMutex, Once, WaitGroup, Map, Cond) " +
		"by value in deterministic packages; copies fork their state silently (waive with //atm:allow syncfield -- why)",
	Run: runSyncField,
}

func runSyncField(pass *Pass) error {
	if !DeterministicPackages[pass.PkgPath] || pass.PkgPath == parexecPath {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		WalkFuncStack(f, func(n ast.Node, stack []ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				tv, ok := pass.TypesInfo.Types[fld.Type]
				if !ok || tv.Type == nil {
					continue
				}
				if name := syncValueField(tv.Type); name != "" && !pass.Dirs.Allowed(RuleSyncField, fld.Pos(), stack) {
					pass.Reportf(fld.Pos(), "struct field holds %s by value; a struct copy forks its state silently — hold it by pointer (waive with //atm:allow syncfield -- why)", name)
				}
			}
			return true
		})
	}
	return nil
}

// syncValueField reports the sync primitive t embeds by value: t itself,
// or the element type of a (possibly nested) array. Pointers and slices
// are fine — copies of the containing struct share the pointee/backing
// array — so they terminate the unwrap.
func syncValueField(t types.Type) string {
	for {
		arr, ok := t.Underlying().(*types.Array)
		if !ok {
			break
		}
		t = arr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncValueTypes[obj.Name()] {
		return "sync." + obj.Name()
	}
	return ""
}
