package lint

import "strings"

// StaleWaiver reports //atm:allow directives that waived nothing. A
// waiver is load-bearing documentation — "this rule fires here, and
// here is why that is acceptable" — so one that suppresses zero
// diagnostics is actively misleading: either the offending code was
// refactored away and the waiver is dead weight, or the rule name is
// wrong and the author believes something is waived that is not.
//
// The analyzer must run after every waiver-consuming analyzer
// (determinism, noalloc-family, modeledtimeflow, syncfield) over the
// same directive indexes, which is why it is part of the flow suite
// only: under per-package go vet the flow analyzers have not run, and
// their waivers would be falsely reported stale.
var StaleWaiver = &FlowAnalyzer{
	Name: "stalewaiver",
	Doc:  "report //atm:allow waivers that suppress zero diagnostics",
	Run:  runStaleWaiver,
}

func runStaleWaiver(pass *FlowPass) error {
	for _, pkg := range pass.Graph.Packages {
		if pkg.Dirs == nil {
			continue
		}
		for _, dir := range pkg.Dirs.UnusedAllows() {
			if pass.Graph.Fset.Position(dir.Pos).Filename == "" {
				continue
			}
			pass.Reportf(dir.Pos, "atm:allow %s waives zero diagnostics; remove the stale waiver (was: %q)", strings.Join(dir.Rules, ","), dir.Justification)
		}
	}
	return nil
}
