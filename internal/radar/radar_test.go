package radar

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/rng"
)

func TestGenerateOneReportPerAircraft(t *testing.T) {
	w := airspace.NewWorld(100, rng.New(1))
	f := Generate(w, DefaultNoise, rng.New(2))
	if f.N() != w.N() {
		t.Fatalf("frame has %d reports for %d aircraft", f.N(), w.N())
	}
}

func TestGenerateNoiseBounded(t *testing.T) {
	w := airspace.NewWorld(500, rng.New(3))
	f := Generate(w, DefaultNoise, rng.New(4))
	// Each report must lie within noise of some aircraft's expected
	// position; verify by matching each report to its nearest expected
	// position.
	for _, rep := range f.Reports {
		best := math.Inf(1)
		for _, a := range w.Aircraft {
			ex, ey := a.X+a.DX, a.Y+a.DY
			d := math.Max(math.Abs(rep.RX-ex), math.Abs(rep.RY-ey))
			if d < best {
				best = d
			}
		}
		if best > DefaultNoise {
			t.Fatalf("report (%v,%v) is %v nm from every expected position", rep.RX, rep.RY, best)
		}
	}
}

func TestGenerateStartsUnmatched(t *testing.T) {
	w := airspace.NewWorld(50, rng.New(5))
	f := Generate(w, DefaultNoise, rng.New(6))
	for i, rep := range f.Reports {
		if rep.MatchWith != Unmatched {
			t.Fatalf("report %d starts with MatchWith=%d", i, rep.MatchWith)
		}
	}
}

func TestGenerateDoesNotMoveAircraft(t *testing.T) {
	w := airspace.NewWorld(50, rng.New(5))
	before := w.Clone()
	Generate(w, DefaultNoise, rng.New(6))
	for i := range w.Aircraft {
		if w.Aircraft[i] != before.Aircraft[i] {
			t.Fatalf("Generate modified aircraft %d", i)
		}
	}
}

// The shuffle must disorder the list: with fourth-reversal, report i
// corresponds to aircraft i only at the centers of the fourths.
func TestShuffleDisorders(t *testing.T) {
	w := airspace.NewWorld(1000, rng.New(7))
	f := Generate(w, 0, rng.New(8)) // no noise: report == expected position
	inPlace := 0
	for i, rep := range f.Reports {
		a := &w.Aircraft[i]
		if rep.RX == a.X+a.DX && rep.RY == a.Y+a.DY {
			inPlace++
		}
	}
	if inPlace > 8 {
		t.Fatalf("%d of 1000 reports still aligned with their aircraft index", inPlace)
	}
}

func TestShuffleFourthsIsInvolution(t *testing.T) {
	reports := make([]Report, 101) // deliberately not divisible by 4
	for i := range reports {
		reports[i] = Report{RX: float64(i)}
	}
	ShuffleFourths(reports)
	ShuffleFourths(reports)
	for i := range reports {
		if reports[i].RX != float64(i) {
			t.Fatalf("double shuffle is not identity at %d", i)
		}
	}
}

func TestShuffleFourthsPreservesMultiset(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 100, 101, 102, 103} {
		reports := make([]Report, n)
		for i := range reports {
			reports[i] = Report{RX: float64(i)}
		}
		ShuffleFourths(reports)
		seen := make([]bool, n)
		for _, rep := range reports {
			idx := int(rep.RX)
			if seen[idx] {
				t.Fatalf("n=%d: report %d duplicated by shuffle", n, idx)
			}
			seen[idx] = true
		}
	}
}

func TestResetClearsMatches(t *testing.T) {
	f := &Frame{Reports: []Report{{MatchWith: 5}, {MatchWith: Discarded}}}
	f.Reset()
	for i, rep := range f.Reports {
		if rep.MatchWith != Unmatched {
			t.Fatalf("report %d not reset: %d", i, rep.MatchWith)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := &Frame{Reports: []Report{{RX: 1}, {RX: 2}}}
	c := f.Clone()
	c.Reports[0].RX = 99
	if f.Reports[0].RX == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := airspace.NewWorld(64, rng.New(9))
	a := Generate(w, DefaultNoise, rng.New(10))
	b := Generate(w, DefaultNoise, rng.New(10))
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			t.Fatalf("same seed produced different report %d", i)
		}
	}
}
