// Fixture helper package: wall-clock reads here are fine on their own
// — only reachability from a modeled-time root makes them findings.
package timeutil

import "time"

// Stamp reads the wall clock; the platform fixture reaches it from a
// modeled-time root across the package boundary.
func Stamp() {
	_ = time.Since(time.Time{}) // want "via repro/fixture/timeutil.Stamp"
}

// HostElapsed is never reached from a root: host benchmarking code may
// read the clock freely.
func HostElapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}
