// Package ap simulates an associative processor (AP) — the enhanced
// SIMD architecture of the STARAN computer that the paper (and its
// predecessors [12, 13]) uses as the gold standard for deterministic,
// linear-time ATM. It also models the ClearSpeed CSX600 accelerator
// that [12, 13] used to emulate an AP.
//
// The machine executes real AP programs: a sequential control unit
// (ordinary Go code) issues wide operations over the aircraft database
// — masked element-wise arithmetic, associative searches, constant-time
// count/min reductions, responder selection — and every issued
// operation charges its cycle cost. The modeled task time is
// cycles/clock, a pure function of the instruction trace, which makes
// the AP timing exactly as deterministic as the paper requires.
//
// Two profiles are provided:
//
//   - STARAN: the idealized associative processor of [12, 13], with one
//     PE per aircraft record (the AP scales its PE array with the
//     problem) and the constant-time broadcast/search/reduce hardware
//     of the STARAN flip network. Following [13]'s argument that a
//     present-day AP would run at memory speeds, the profile uses a
//     modernized 40 MHz word-serial clock rather than the 1972 part's.
//   - ClearSpeed CSX600: 2 chips x 96 PEs = 192 PEs at 210 MHz. With
//     more records than PEs, every wide operation is tiled over
//     ceil(N/192) virtual-PE planes, which is what bends the emulation's
//     curve away from the ideal AP's perfectly linear one.
package ap

import (
	"fmt"
	"time"

	"repro/internal/airspace"
	"repro/internal/parexec"
)

// peGrain is the chunk size the host worker pool hands out when a wide
// operation's element loop is fanned across workers. Reductions store
// one partial per chunk and merge them in ascending chunk order, so
// results are bit-for-bit identical at any worker count.
const peGrain = 1024

// Profile describes one associative machine for the cost model.
type Profile struct {
	// Name of the machine.
	Name string
	// PEs is the physical processing-element count; 0 means one PE per
	// record (the idealized AP whose array grows with the database).
	PEs int
	// ClockHz is the instruction clock.
	ClockHz float64

	// Per-instruction cycle costs.
	// BroadcastCycles: control unit broadcasts one scalar word to all PEs.
	BroadcastCycles int
	// ArithCycles: one masked element-wise arithmetic/compare step, per
	// tile of PEs.
	ArithCycles int
	// ReduceCycles: one constant-time associative reduction (count,
	// min/max, any-responder) over a tile.
	ReduceCycles int
	// SelectCycles: selecting (stepping to) one responder.
	SelectCycles int
	// ScalarCycles: one control-unit scalar operation.
	ScalarCycles int
}

// STARAN is the idealized associative processor profile (see package
// comment for the modernization caveat). The 160 MHz word-serial clock
// follows [13]'s argument that a present-day AP would run at memory
// speeds; it is calibrated so the AP stays inside its feasible envelope
// (no deadline misses) through the 16000-aircraft sweep, as the paper
// reports.
var STARAN = Profile{
	Name:            "STARAN AP",
	PEs:             0, // one PE per aircraft
	ClockHz:         160e6,
	BroadcastCycles: 4,
	ArithCycles:     16, // bit-serial word arithmetic
	ReduceCycles:    24, // flip-network reduction
	SelectCycles:    8,
	ScalarCycles:    2,
}

// ClearSpeedCSX600 is the SIMD accelerator used in [12, 13] to emulate
// an AP: 2 chips x 96 PEs with 32-bit ALUs at 210 MHz. Per-PE word
// operations are single-cycle (the CSX600 ALU datapath); the dominant
// cost is the virtual-PE tiling over ceil(N/192) planes. Under this
// calibration the emulation stays deadline-feasible through 8000
// aircraft and exits its envelope at 16000 — see DESIGN.md.
var ClearSpeedCSX600 = Profile{
	Name:            "ClearSpeed CSX600",
	PEs:             192,
	ClockHz:         210e6,
	BroadcastCycles: 2,
	ArithCycles:     1, // single-cycle 32-bit ALU per PE
	ReduceCycles:    4,
	SelectCycles:    4,
	ScalarCycles:    1,
}

// Profiles lists the built-in associative machine profiles.
func Profiles() []Profile { return []Profile{STARAN, ClearSpeedCSX600} }

// Machine is one associative processor executing over a database of n
// records. It is not safe for concurrent use: an AP has exactly one
// control unit. The control unit stays strictly sequential; only the
// element loops of the wide operations (which on the modeled hardware
// execute on every PE at once) are fanned across the host worker pool,
// with per-chunk partials merged in fixed chunk order so the outcome —
// and the cycle tally, which is charged before the loop runs — is
// identical at any worker count.
type Machine struct {
	prof   Profile
	n      int
	cycles uint64
	pool   *parexec.Pool

	// mask is the current responder mask over the PE array.
	mask []bool
	// scratch is a reusable per-PE temporary register (one wide word).
	scratch []float64
	// candMask is a per-PE candidate flag used by the opt-in broadphase
	// variant of the detection program.
	candMask []bool
	// candBuf is the reusable candidate buffer for the broadphase
	// control-unit scatter.
	candBuf []int32
	// matchedRadar is TrackProgram's per-aircraft paired-radar table.
	matchedRadar []int32
	// cols is the machine's SoA mirror of the flight database, refreshed
	// once per coherent detection program and kept in sync at heading
	// commits; the wide scans read it instead of striding []Aircraft.
	cols airspace.Columns

	// Per-chunk reduction partials.
	partBest []float64
	partArg  []int32
	partCnt  []int32

	// Telemetry phase marks: cycle-counter checkpoints noted by the
	// programs when a recorder is attached (marksOn), converted to
	// spans by the platform adapter after the task. Machine-owned
	// scratch, reused across tasks.
	marks   []phaseMark
	marksOn bool
}

// phaseMark notes the cycle count at which a named program phase
// began; the phase ends where the next mark (or the task) ends.
type phaseMark struct {
	name   string
	arg    int32
	cycles uint64
}

// beginMarks clears the mark log and enables mark collection for the
// next program run.
func (m *Machine) beginMarks() {
	m.marks = m.marks[:0]
	m.marksOn = true
}

// mark notes a phase boundary; a no-op unless beginMarks was called.
// name must be a static string so steady-state marking stays
// allocation-free.
//
//atm:noalloc
func (m *Machine) mark(name string, arg int32) {
	if m.marksOn {
		m.marks = append(m.marks, phaseMark{name: name, arg: arg, cycles: m.cycles})
	}
}

// timeAt converts a cycle checkpoint to modeled time, with the same
// rounding as Time.
func (m *Machine) timeAt(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / m.prof.ClockHz * float64(time.Second))
}

// NewMachine returns a machine sized for n records.
func NewMachine(p Profile, n int) *Machine {
	if n < 0 {
		panic(fmt.Sprintf("ap: NewMachine with negative n %d", n))
	}
	return &Machine{prof: p, n: n, mask: make([]bool, n)}
}

// Profile returns the machine's profile.
func (m *Machine) Profile() Profile { return m.prof }

// SetWorkers pins the host worker count used to execute the wide
// element loops (n <= 0 restores the process-default pool). Cycle
// charges are issued by the sequential control unit before each loop,
// so modeled time is unaffected.
func (m *Machine) SetWorkers(n int) {
	if n <= 0 {
		m.pool = nil
	} else {
		m.pool = parexec.NewPool(n)
	}
}

// chunks returns the number of grain-sized chunks covering the PE
// array, growing the per-chunk partial arrays to match.
func (m *Machine) chunks() int {
	c := (m.n + peGrain - 1) / peGrain
	if cap(m.partBest) < c {
		m.partBest = make([]float64, c)
		m.partArg = make([]int32, c)
		m.partCnt = make([]int32, c)
	}
	m.partBest = m.partBest[:c]
	m.partArg = m.partArg[:c]
	m.partCnt = m.partCnt[:c]
	return c
}

// N returns the database size the machine is configured for.
func (m *Machine) N() int { return m.n }

// Cycles returns the cycles charged so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// ResetCycles zeroes the cycle counter (between tasks).
func (m *Machine) ResetCycles() { m.cycles = 0 }

// Time converts the charged cycles to modeled wall time.
func (m *Machine) Time() time.Duration {
	return time.Duration(float64(m.cycles) / m.prof.ClockHz * float64(time.Second))
}

// Tiles returns how many PE planes one wide operation must be repeated
// over: 1 for the idealized AP, ceil(n/PEs) for a fixed-width machine.
func (m *Machine) Tiles() int {
	if m.prof.PEs <= 0 || m.n == 0 {
		return 1
	}
	return (m.n + m.prof.PEs - 1) / m.prof.PEs
}

// chargeWide charges units wide-arithmetic steps across all planes.
func (m *Machine) chargeWide(units int) {
	m.cycles += uint64(units*m.prof.ArithCycles) * uint64(m.Tiles())
}

// Broadcast charges the cost of broadcasting words scalar words from
// the control unit to every PE.
func (m *Machine) Broadcast(words int) {
	m.cycles += uint64(words * m.prof.BroadcastCycles)
}

// Scalar charges n control-unit scalar operations.
func (m *Machine) Scalar(n int) {
	m.cycles += uint64(n * m.prof.ScalarCycles)
}

// ParallelOp executes f on every record index (a masked wide operation
// touching every PE) and charges units arithmetic steps. The mask
// discipline is left to f so that programs read like their AP assembly:
// the hardware executes all PEs, masked ones simply don't store. Like
// the PE array it models, f must be element-wise independent: it may
// only read shared state and write state owned by record i.
func (m *Machine) ParallelOp(units int, f func(i int)) {
	m.chargeWide(units)
	parexec.Resolve(m.pool).Run(m.n, peGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// Search performs an associative search: it sets the responder mask to
// pred over all records and charges units comparison steps. pred must
// be element-wise independent (see ParallelOp).
func (m *Machine) Search(units int, pred func(i int) bool) {
	m.chargeWide(units)
	mask := m.mask
	parexec.Resolve(m.pool).Run(m.n, peGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			mask[i] = pred(i)
		}
	})
}

// MaskAnd narrows the responder mask with pred (one wide step). pred
// must be element-wise independent (see ParallelOp).
func (m *Machine) MaskAnd(pred func(i int) bool) {
	m.chargeWide(1)
	mask := m.mask
	parexec.Resolve(m.pool).Run(m.n, peGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i] {
				mask[i] = pred(i)
			}
		}
	})
}

// Mask exposes the current responder mask (read-only use by programs).
func (m *Machine) Mask() []bool { return m.mask }

// AnyResponder reports whether any PE responds (constant-time in AP
// hardware).
func (m *Machine) AnyResponder() bool {
	m.cycles += uint64(m.prof.ReduceCycles) * uint64(m.Tiles())
	for i := 0; i < m.n; i++ {
		if m.mask[i] {
			return true
		}
	}
	return false
}

// CountResponders returns the number of responders (constant-time
// reduction in AP hardware).
//
//atm:ordered-merge
func (m *Machine) CountResponders() int {
	m.cycles += uint64(m.prof.ReduceCycles) * uint64(m.Tiles())
	nc := m.chunks()
	mask, cnt := m.mask, m.partCnt
	parexec.Resolve(m.pool).Run(m.n, peGrain, func(_, lo, hi int) {
		c := int32(0)
		for i := lo; i < hi; i++ {
			if mask[i] {
				c++
			}
		}
		cnt[lo/peGrain] = c
	})
	c := 0
	for k := 0; k < nc; k++ {
		c += int(cnt[k])
	}
	return c
}

// FirstResponder returns the lowest responding index, or -1. This is
// the AP "step" (pick-one) operation.
func (m *Machine) FirstResponder() int {
	m.cycles += uint64(m.prof.SelectCycles) * uint64(m.Tiles())
	for i := 0; i < m.n; i++ {
		if m.mask[i] {
			return i
		}
	}
	return -1
}

// ClearResponder removes index i from the mask (used when stepping
// through responders one by one).
func (m *Machine) ClearResponder(i int) {
	m.Scalar(1)
	m.mask[i] = false
}

// MinReduce returns the minimum of value(i) over responders and the
// lowest index attaining it (constant-time min-reduction plus select).
// It returns (def, -1) when there are no responders. Per-chunk partial
// minima are merged in ascending chunk order with a strict compare, so
// the lowest-index tie-break of the serial loop is reproduced exactly.
//
//atm:ordered-merge
func (m *Machine) MinReduce(def float64, value func(i int) float64) (float64, int) {
	m.cycles += uint64(m.prof.ReduceCycles+m.prof.SelectCycles) * uint64(m.Tiles())
	nc := m.chunks()
	mask, pb, pa := m.mask, m.partBest, m.partArg
	parexec.Resolve(m.pool).Run(m.n, peGrain, func(_, lo, hi int) {
		best, arg := def, int32(-1)
		for i := lo; i < hi; i++ {
			if mask[i] {
				if v := value(i); v < best {
					best, arg = v, int32(i)
				}
			}
		}
		pb[lo/peGrain], pa[lo/peGrain] = best, arg
	})
	best, arg := def, -1
	for k := 0; k < nc; k++ {
		if pa[k] >= 0 && pb[k] < best {
			best, arg = pb[k], int(pa[k])
		}
	}
	return best, arg
}

// MaxReduce returns the maximum of value(i) over responders and the
// lowest index attaining it. It returns (def, -1) with no responders.
//
//atm:ordered-merge
func (m *Machine) MaxReduce(def float64, value func(i int) float64) (float64, int) {
	m.cycles += uint64(m.prof.ReduceCycles+m.prof.SelectCycles) * uint64(m.Tiles())
	nc := m.chunks()
	mask, pb, pa := m.mask, m.partBest, m.partArg
	parexec.Resolve(m.pool).Run(m.n, peGrain, func(_, lo, hi int) {
		best, arg := def, int32(-1)
		for i := lo; i < hi; i++ {
			if mask[i] {
				if v := value(i); v > best {
					best, arg = v, int32(i)
				}
			}
		}
		pb[lo/peGrain], pa[lo/peGrain] = best, arg
	})
	best, arg := def, -1
	for k := 0; k < nc; k++ {
		if pa[k] >= 0 && pb[k] > best {
			best, arg = pb[k], int(pa[k])
		}
	}
	return best, arg
}

// LoadDatabase charges the cost of loading the aircraft records into PE
// memories (fields wide words per record).
func (m *Machine) LoadDatabase(fields int) {
	m.chargeWide(fields)
}
