GO ?= go
ATMLINT := bin/atmlint

.PHONY: all build test vet lint lint-flow lint-graph lint-fixtures gcdiag bench-smoke bench-diff fuzz conformance serve serve-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The vettool binary; rebuilt whenever the analyzer suite or driver
# changes. go vet caches per-package results keyed on the binary hash
# (-V=full), so a rebuilt tool automatically invalidates stale results.
$(ATMLINT): $(wildcard cmd/atmlint/*.go internal/lint/*.go internal/lint/gcdiag/*.go) go.mod
	$(GO) build -o $(ATMLINT) ./cmd/atmlint

# lint runs the per-package atmlint analyzer suite (determinism,
# noalloc, orderedmerge, atmdirective, syncfield) over every package.
lint: $(ATMLINT)
	$(GO) vet -vettool=$(abspath $(ATMLINT)) ./...

# lint-flow runs the interprocedural flow suite (noallocflow,
# modeledtimeflow, stalewaiver) over the whole module at once: it loads
# every package, builds the static call graph, and propagates the
# //atm:noalloc and //atm:modeled-time contracts across package
# boundaries. `make lint-flow FLOWFLAGS=-fix` lists stale waivers with
# removal instructions.
FLOWFLAGS ?=
lint-flow: $(ATMLINT)
	$(ATMLINT) flow $(FLOWFLAGS) ./...

# lint-graph dumps the static call graph of one package as DOT for
# debugging the flow analyses; pipe to dot -Tsvg to render. Example:
#   make lint-graph PKG=repro/internal/tasks
PKG ?= repro/internal/tasks
lint-graph: $(ATMLINT)
	$(ATMLINT) graph -pkg $(PKG)

# lint-fixtures runs the analyzers' own unit tests: each analyzer is
# exercised against testdata fixtures with // want expectations.
lint-fixtures:
	$(GO) test ./internal/lint/...

# gcdiag verifies the //atm:inline, //atm:noescape and //atm:nobce
# directives against the gc compiler's own diagnostics (-m -m and the
# BCE debug pass): every annotated hot function must actually inline,
# keep its locals on the stack, and compile without bounds checks.
gcdiag: $(ATMLINT)
	./scripts/gcdiag.sh

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-diff compares the hot-path benchmarks on HEAD against BASE_REF
# (default: merge base with origin/main) and fails on a >5% time or any
# allocs/op regression; `scripts/benchdiff.sh snapshot` refreshes the
# checked-in BENCH_10.json. See scripts/benchdiff.sh for tunables
# (BENCH_CPU=1,8 is the CI cell that gates both worker-pool shapes).
BASE_REF ?=
bench-diff:
	./scripts/benchdiff.sh $(BASE_REF)

# fuzz runs the fuzzers for a bounded interval each on top of their
# checked-in seed corpora (internal/trace and internal/scenario
# testdata/fuzz). go test allows one -fuzz target per invocation.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run=NONE -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/scenario

# conformance runs the full differential matrix: every scenario family
# x platform x pair source x worker count, asserting the invariance
# relations documented in internal/conformance. The trimmed matrix
# already runs as part of `make test`; this is the exhaustive pass.
conformance:
	$(GO) test ./internal/conformance -run TestConformance -conformance.full -timeout 30m

# serve starts the simulation service on SERVE_ADDR (see cmd/atmserve;
# curl 'localhost:8080/v1/simulate?platform=titanx&n=8000').
SERVE_ADDR ?= localhost:8080
serve:
	$(GO) run ./cmd/atmserve -addr $(SERVE_ADDR)

# serve-smoke builds atmserve, runs one request end to end, checks the
# golden measurement row and a clean SIGTERM drain — the same script CI
# runs.
serve-smoke:
	$(GO) build -o bin/atmserve ./cmd/atmserve
	./scripts/serve-smoke.sh bin/atmserve

clean:
	rm -rf bin
