package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// LoadPackages loads, parses, and type-checks every module package
// matched by patterns (plus, transitively, every in-module dependency)
// for whole-module flow analysis. Out-of-module dependencies — the
// standard library; this module has no others — are imported from
// compiler export data, so only module source is parsed.
//
// It shells out to `go list -export -deps` for package discovery and
// export-data paths: that keeps the loader on the standard library
// while inheriting cmd/go's build cache, so repeat runs cost one
// metadata query.
func LoadPackages(patterns ...string) (*token.FileSet, []*GraphPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string) // import path -> export data file
	inModule := make(map[string]*listPackage)
	for _, m := range metas {
		if m.Standard || m.Module == nil {
			exports[m.ImportPath] = m.Export
			continue
		}
		inModule[m.ImportPath] = m
	}

	order, err := topoOrder(inModule)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	gcImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return gcImporter.Import(path)
	})

	var out []*GraphPackage
	for _, path := range order {
		m := inModule[path]
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		var typeErrs []error
		cfg := &types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := NewInfo()
		pkg, _ := cfg.Check(path, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
		}
		checked[path] = pkg
		out = append(out, &GraphPackage{
			Path:  path,
			Files: files,
			Pkg:   pkg,
			Info:  info,
			Dirs:  BuildDirectives(fset, files),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return fset, out, nil
}

type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Module     *struct{ Path string }
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Imports,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	dec := json.NewDecoder(outPipe)
	var metas []*listPackage
	for {
		var m listPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, &m)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	return metas, nil
}

// topoOrder orders the in-module packages dependencies-first.
func topoOrder(pkgs map[string]*listPackage) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		m, ok := pkgs[p]
		if !ok {
			return nil // external
		}
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", p)
		}
		state[p] = visiting
		for _, dep := range m.Imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
