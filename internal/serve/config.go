package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/core"
	"repro/internal/scenario"
)

// Defaults filled into requests during canonicalization: the paper's
// seed, one 16-period major cycle, task-level telemetry.
const (
	DefaultSeed    = 2018
	DefaultPeriods = 16
	DefaultDetail  = "task"
)

// RunRequest is the wire form of one simulation request, accepted as a
// JSON POST body or as URL query parameters on /v1/simulate. Optional
// fields left at their zero value are filled with canonical defaults
// before hashing, so two requests that only differ in how they spell a
// default are the same run.
type RunRequest struct {
	// Platform is the machine registry key (required).
	Platform string `json:"platform"`
	// N is the aircraft count (required, positive).
	N int `json:"n"`
	// Seed fixes flights, radar noise and MIMD jitter; 0 selects the
	// paper's 2018.
	Seed uint64 `json:"seed,omitempty"`
	// Periods is the number of half-second scheduling periods to run;
	// 0 selects one 16-period major cycle.
	Periods int `json:"periods,omitempty"`
	// PairSource optionally routes Tasks 2-3 through a broad-phase
	// source ("brute", "grid", "sweep"); empty keeps the paper's
	// all-pairs kernels.
	PairSource string `json:"pair_source,omitempty"`
	// Coherent turns on the temporal-coherence incremental broad phase
	// (needs a pair source). Results are bit-identical to the rebuild
	// mode — the flag is still part of the run identity because it
	// changes the telemetry export (span names, maintenance counters).
	Coherent bool `json:"coherent,omitempty"`
	// ParShard turns on the worker-parallel sharded broad phase with the
	// batched pair kernel (needs a pair source). Results are
	// bit-identical; the flag is part of the run identity because it
	// changes the telemetry export (shard counters, parshard meta).
	ParShard bool `json:"parshard,omitempty"`
	// Scenario selects the traffic workload as a scenario spec string
	// ("circle:radius=50", see internal/scenario); empty keeps the
	// paper's uniform setup.
	Scenario string `json:"scenario,omitempty"`
	// Detail is the telemetry detail level: "task" (default) or
	// "block".
	Detail string `json:"detail,omitempty"`
	// Telemetry selects an optional export embedded in the response:
	// "none" (default), "jsonl", or "chrome".
	Telemetry string `json:"telemetry,omitempty"`
}

// RunConfig is a canonical, validated simulation config: every default
// filled in, every name checked. Its canonical key is the cache and
// single-flight identity, which is sound because runs are
// bit-deterministic — one config has exactly one byte-exact answer.
type RunConfig struct {
	Platform   string `json:"platform"`
	N          int    `json:"n"`
	Seed       uint64 `json:"seed"`
	Periods    int    `json:"periods"`
	PairSource string `json:"pair_source,omitempty"`
	Coherent   bool   `json:"coherent,omitempty"`
	ParShard   bool   `json:"parshard,omitempty"`
	Scenario   string `json:"scenario,omitempty"`
	Detail     string `json:"detail"`
	Telemetry  string `json:"telemetry,omitempty"`
}

// Canonicalize fills defaults and validates, returning the canonical
// config. Validation reuses the front-end helper shared with atmsim
// and atmbench (core.RunParams), plus the serve-only knobs.
func (r RunRequest) Canonicalize() (RunConfig, error) {
	cfg := RunConfig{
		Platform:   r.Platform,
		N:          r.N,
		Seed:       r.Seed,
		Periods:    r.Periods,
		PairSource: r.PairSource,
		Coherent:   r.Coherent,
		ParShard:   r.ParShard,
		Scenario:   r.Scenario,
		Detail:     r.Detail,
		Telemetry:  r.Telemetry,
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	if cfg.Periods == 0 {
		cfg.Periods = DefaultPeriods
	}
	if cfg.Detail == "" {
		cfg.Detail = DefaultDetail
	}
	if cfg.Telemetry == "none" {
		cfg.Telemetry = ""
	}
	if cfg.Platform == "" {
		return RunConfig{}, &core.ValidationError{Msg: "missing platform (e.g. titanx, staran, xeon16)"}
	}
	params := core.RunParams{
		Platform:   cfg.Platform,
		N:          cfg.N,
		Periods:    cfg.Periods,
		Workers:    0, // host workers are a server setting, not part of the run identity
		PairSource: cfg.PairSource,
		Coherent:   cfg.Coherent,
		ParShard:   cfg.ParShard,
		Scenario:   cfg.Scenario,
	}
	if err := params.Validate(); err != nil {
		return RunConfig{}, err
	}
	if cfg.Scenario != "" {
		// Differently spelled specs of the same workload collapse to one
		// canonical form, so they share a cache entry and a single-flight
		// slot ("circle" and "circle:radius=100" are the same run).
		spec, _ := scenario.ParseSpec(cfg.Scenario) // params.Validate already vetted it
		cfg.Scenario = spec.String()
	}
	switch cfg.Detail {
	case "task", "block":
	default:
		return RunConfig{}, &core.ValidationError{Msg: fmt.Sprintf("unknown detail %q (have task, block)", cfg.Detail)}
	}
	switch cfg.Telemetry {
	case "", "jsonl", "chrome":
	default:
		return RunConfig{}, &core.ValidationError{Msg: fmt.Sprintf("unknown telemetry export %q (have none, jsonl, chrome)", cfg.Telemetry)}
	}
	return cfg, nil
}

// Key returns the canonical identity string. Host-side settings
// (worker count, queue position, cache state) are deliberately absent:
// they change wall-clock speed only, never the answer.
func (c RunConfig) Key() string {
	return fmt.Sprintf("platform=%s&n=%d&seed=%d&periods=%d&pairsource=%s&coherent=%t&parshard=%t&scenario=%s&detail=%s&telemetry=%s",
		c.Platform, c.N, c.Seed, c.Periods, c.PairSource, c.Coherent, c.ParShard, c.Scenario, c.Detail, c.Telemetry)
}

// Hash returns the short content hash of the canonical key, used as
// the response key field and the ETag body.
func (c RunConfig) Hash() string {
	sum := sha256.Sum256([]byte(c.Key()))
	return hex.EncodeToString(sum[:8])
}

// maxRequestBody bounds /v1/simulate POST bodies; a config is tiny.
const maxRequestBody = 1 << 16

// parseRequest decodes a simulate request from either a JSON body
// (POST) or query parameters (GET).
func parseRequest(r *http.Request) (RunRequest, error) {
	switch r.Method {
	case http.MethodGet:
		return requestFromQuery(r.URL.Query())
	case http.MethodPost:
		var req RunRequest
		dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return RunRequest{}, &core.ValidationError{Msg: fmt.Sprintf("bad JSON body: %v", err)}
		}
		return req, nil
	default:
		return RunRequest{}, &core.ValidationError{Msg: fmt.Sprintf("method %s not allowed (use GET or POST)", r.Method)}
	}
}

// requestFromQuery builds a RunRequest from URL query parameters; both
// pair_source and pairsource are accepted for curl convenience.
func requestFromQuery(q url.Values) (RunRequest, error) {
	req := RunRequest{
		Platform:   q.Get("platform"),
		PairSource: q.Get("pair_source"),
		Scenario:   q.Get("scenario"),
		Detail:     q.Get("detail"),
		Telemetry:  q.Get("telemetry"),
	}
	if req.PairSource == "" {
		req.PairSource = q.Get("pairsource")
	}
	if s := q.Get("coherent"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return RunRequest{}, &core.ValidationError{Msg: fmt.Sprintf("bad coherent %q: %v", s, err)}
		}
		req.Coherent = v
	}
	if s := q.Get("parshard"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return RunRequest{}, &core.ValidationError{Msg: fmt.Sprintf("bad parshard %q: %v", s, err)}
		}
		req.ParShard = v
	}
	var err error
	if req.N, err = intParam(q, "n"); err != nil {
		return RunRequest{}, err
	}
	if req.Periods, err = intParam(q, "periods"); err != nil {
		return RunRequest{}, err
	}
	if s := q.Get("seed"); s != "" {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return RunRequest{}, &core.ValidationError{Msg: fmt.Sprintf("bad seed %q: %v", s, err)}
		}
		req.Seed = seed
	}
	return req, nil
}

func intParam(q url.Values, name string) (int, error) {
	s := q.Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, &core.ValidationError{Msg: fmt.Sprintf("bad %s %q: %v", name, s, err)}
	}
	return v, nil
}
