package tasks

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
)

// Property: conflict detection is symmetric — if track sees a conflict
// window against trial, trial sees the identical window against track
// (the relative position and velocity both negate, leaving |d + dv t|
// unchanged). This is what lets every thread mark only its own aircraft
// in the parallel kernels.
func TestPairConflictSymmetry(t *testing.T) {
	r := rng.New(123)
	for i := 0; i < 5000; i++ {
		ax, ay := r.Range(-100, 100), r.Range(-100, 100)
		avx, avy := r.Range(-0.08, 0.08), r.Range(-0.08, 0.08)
		b := &airspace.Aircraft{ID: 1, X: r.Range(-100, 100), Y: r.Range(-100, 100),
			DX: r.Range(-0.08, 0.08), DY: r.Range(-0.08, 0.08), Alt: 10000}
		a := &airspace.Aircraft{ID: 0, X: ax, Y: ay, DX: avx, DY: avy, Alt: 10000}

		tmin1, tmax1, ok1 := PairConflict(ax, ay, avx, avy, b)
		tmin2, tmax2, ok2 := PairConflict(b.X, b.Y, b.DX, b.DY, a)
		if ok1 != ok2 {
			t.Fatalf("case %d: asymmetric detection: %v vs %v", i, ok1, ok2)
		}
		if ok1 && (math.Abs(tmin1-tmin2) > 1e-9 || math.Abs(tmax1-tmax2) > 1e-9) {
			t.Fatalf("case %d: windows differ: (%v,%v) vs (%v,%v)", i, tmin1, tmax1, tmin2, tmax2)
		}
	}
}

// Property: the conflict window shrinks (or vanishes) as the separation
// requirement tightens — monotonicity in the error band.
func TestConflictWindowMonotoneInSeparation(t *testing.T) {
	r := rng.New(321)
	for i := 0; i < 2000; i++ {
		tx, ty := r.Range(-50, 50), r.Range(-50, 50)
		tvx, tvy := r.Range(-0.08, 0.08), r.Range(-0.08, 0.08)
		trial := &airspace.Aircraft{X: r.Range(-50, 50), Y: r.Range(-50, 50),
			DX: r.Range(-0.08, 0.08), DY: r.Range(-0.08, 0.08), Alt: 10000}
		tmin, tmax, ok := PairConflict(tx, ty, tvx, tvy, trial)
		if !ok {
			continue
		}
		// A conflict under the real 3 nm band must also be one under a
		// hypothetical wider band; we verify via the brute-force oracle
		// at the window midpoint.
		mid := (tmin + tmax) / 2
		sepX := math.Abs((trial.X + trial.DX*mid) - (tx + tvx*mid))
		sepY := math.Abs((trial.Y + trial.DY*mid) - (ty + tvy*mid))
		if sepX >= airspace.SepTotal+1e-9 || sepY >= airspace.SepTotal+1e-9 {
			t.Fatalf("case %d: window midpoint %v not actually in conflict (sep %v, %v)",
				i, mid, sepX, sepY)
		}
	}
}

// Property: Correlate is a pure function of its inputs — cloned inputs
// give bitwise-identical worlds and stats.
func TestCorrelateDeterministic(t *testing.T) {
	base := airspace.NewWorld(800, rng.New(11))
	frame := radar.Generate(base, radar.DefaultNoise, rng.New(12))
	w1, f1 := base.Clone(), frame.Clone()
	w2, f2 := base.Clone(), frame.Clone()
	st1 := Correlate(w1, f1)
	st2 := Correlate(w2, f2)
	if st1 != st2 {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	for i := range w1.Aircraft {
		if w1.Aircraft[i] != w2.Aircraft[i] {
			t.Fatalf("aircraft %d differs", i)
		}
	}
}

// Property: after Correlate, the frame and world are consistent — a
// radar claiming aircraft k implies aircraft k is in the MatchOne
// state, and no two radars claim the same aircraft.
func TestCorrelateMatchConsistency(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		w := airspace.NewWorld(300, rng.New(seed))
		f := radar.Generate(w, radar.DefaultNoise, rng.New(seed+1))
		Correlate(w, f)
		claimed := map[int32]bool{}
		for _, rep := range f.Reports {
			if rep.MatchWith < 0 {
				continue
			}
			if claimed[rep.MatchWith] {
				t.Logf("aircraft %d claimed twice", rep.MatchWith)
				return false
			}
			claimed[rep.MatchWith] = true
			if w.Aircraft[rep.MatchWith].RMatch != airspace.MatchOne {
				t.Logf("aircraft %d claimed but RMatch=%d", rep.MatchWith, w.Aircraft[rep.MatchWith].RMatch)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of committed radar positions equals the number
// of aircraft in the MatchOne state.
func TestCorrelateMatchedCountAgrees(t *testing.T) {
	w := airspace.NewWorld(1000, rng.New(77))
	f := radar.Generate(w, radar.DefaultNoise, rng.New(78))
	st := Correlate(w, f)
	matchOne := 0
	for _, a := range w.Aircraft {
		if a.RMatch == airspace.MatchOne {
			matchOne++
		}
	}
	if matchOne != st.Matched {
		t.Fatalf("MatchOne aircraft %d != stats.Matched %d", matchOne, st.Matched)
	}
}

// Property: resolution only ever changes DX/DY (headings) and the
// conflict bookkeeping — never positions, altitudes, or IDs.
func TestDetectResolveTouchesOnlyCourses(t *testing.T) {
	w := airspace.NewWorld(400, rng.New(99))
	before := w.Clone()
	DetectResolve(w)
	for i := range w.Aircraft {
		a, b := &w.Aircraft[i], &before.Aircraft[i]
		if a.X != b.X || a.Y != b.Y || a.Alt != b.Alt || a.ID != b.ID {
			t.Fatalf("aircraft %d identity/position/altitude changed", i)
		}
	}
}

// Property: a world where every aircraft flies the identical velocity
// can never produce a conflict window narrower than forever — either
// pairs are within the band now (conflict at t=0) or never.
func TestParallelTrafficConflictsOnlyAtZero(t *testing.T) {
	r := rng.New(55)
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, 100)}
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X = r.Range(-100, 100)
		a.Y = r.Range(-100, 100)
		a.DX, a.DY = 0.03, 0.01
		a.Alt = 10000
		a.ResetConflict()
	}
	for i := range w.Aircraft {
		track := &w.Aircraft[i]
		for p := range w.Aircraft {
			if p == i {
				continue
			}
			tmin, _, ok := PairConflict(track.X, track.Y, track.DX, track.DY, &w.Aircraft[p])
			if ok && tmin != 0 {
				t.Fatalf("parallel pair (%d,%d) conflicts at t=%v, want 0", i, p, tmin)
			}
		}
	}
}
