// Command atmlint is the repository's custom vet tool: it runs the
// internal/lint analyzer suite (determinism, modeledtime, noalloc,
// orderedmerge) over type-checked packages.
//
// It speaks the cmd/go vet-tool protocol — the same contract
// golang.org/x/tools/go/analysis/unitchecker implements, rebuilt here
// on the standard library because this module is dependency-free:
//
//   - `atmlint -V=full` prints "atmlint version ... buildID=..."
//     (cmd/go hashes the binary into its action cache key),
//   - `atmlint -flags` prints a JSON description of the analyzer
//     selection flags,
//   - `atmlint [flags] <dir>/vet.cfg` analyzes one package described
//     by the JSON config cmd/go writes: it type-checks the package
//     against the compiler export data listed in PackageFile, runs
//     the analyzers, writes the (empty) facts file cmd/go expects at
//     VetxOutput, prints diagnostics to stderr as "file:line:col:
//     message [analyzer]", and exits 2 when there are findings.
//
// Run it as:
//
//	go build -o bin/atmlint ./cmd/atmlint
//	go vet -vettool=$(pwd)/bin/atmlint ./...
//
// or simply `make lint`.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors cmd/go/internal/work.vetConfig (unknown fields in
// newer Go releases are ignored by encoding/json).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("atmlint: ")

	// Subcommands run outside the vet-tool protocol: `flow` loads the
	// whole module and runs the interprocedural suite, `graph` dumps a
	// package's call graph as DOT, `gcdiag` enforces the compiler
	// diagnostics gate. cmd/go never passes a bare word first, so the
	// dispatch cannot collide with the vet protocol.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "flow":
			os.Exit(runFlowCmd(os.Args[2:]))
		case "graph":
			os.Exit(runGraphCmd(os.Args[2:]))
		case "gcdiag":
			os.Exit(runGcdiagCmd(os.Args[2:]))
		}
	}

	enabled := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = true
	}

	var cfgPath string
	jsonOut := false
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			printFlags()
			return
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		case strings.HasPrefix(arg, "-"):
			// Analyzer selection: -name, -name=true, -name=false.
			name, val, hasVal := strings.Cut(strings.TrimLeft(arg, "-"), "=")
			if _, known := enabled[name]; known {
				enabled[name] = !hasVal || val == "true" || val == "1"
			}
			// Unknown flags (e.g. future cmd/go additions) are ignored.
		default:
			log.Fatalf("unexpected argument %q; invoke via go vet -vettool=atmlint", arg)
		}
	}
	if cfgPath == "" {
		log.Fatalf(`invoking atmlint directly is unsupported; use "go vet -vettool=$(which atmlint) ./..." or "make lint"`)
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	os.Exit(run(cfgPath, analyzers, jsonOut))
}

// printVersion implements -V=full: name, version, and a content hash
// of the executable so cmd/go's cache invalidates when the analyzers
// change.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
}

// printFlags implements -flags: cmd/go queries the tool for the flags
// it may forward from the go vet command line.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range lint.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func run(cfgPath string, analyzers []*lint.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("cannot decode vet config %s: %v", cfgPath, err)
		return 1
	}

	// Dependencies are vetted facts-only. The atmlint analyzers use no
	// cross-package facts, so the facts file is written empty and the
	// package is not even type-checked — this keeps the stdlib sweep
	// cmd/go performs for any vettool cheap.
	if cfg.VetxOnly {
		return writeVetx(&cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var parseErrs []error
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			parseErrs = append(parseErrs, err)
			continue
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	var typeErrs []error
	tcfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", goarch()),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := lint.NewInfo()
	pkg, _ := tcfg.Check(cfg.ImportPath, fset, files, info)

	if len(parseErrs) > 0 || len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg)
		}
		for _, err := range parseErrs {
			log.Print(err)
		}
		for _, err := range typeErrs {
			log.Print(err)
		}
		return 1
	}

	results := lint.Run(fset, files, pkg, info, cfg.ImportPath, analyzers)
	if code := writeVetx(&cfg); code != 0 {
		return code
	}

	if jsonOut {
		return printJSON(&cfg, fset, results)
	}
	exit := 0
	flat := make([]lint.FlowResult, 0, len(results))
	for _, res := range results {
		if res.Err != nil {
			log.Printf("analyzer %s failed: %v", res.Analyzer.Name, res.Err)
			exit = 1
		}
		flat = append(flat, lint.FlowResult{Analyzer: res.Analyzer.Name, Diagnostics: res.Diagnostics})
	}
	// Diagnostics print in (file, offset, analyzer) order so output is
	// byte-stable across runs and analyzer interleavings.
	for _, d := range lint.OrderDiagnostics(fset, flat) {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer)
		if exit == 0 {
			exit = 2
		}
	}
	return exit
}

// printJSON emits the analysisflags JSON tree shape:
// {"pkg": {"analyzer": [{"posn": ..., "message": ...}]}}.
func printJSON(cfg *vetConfig, fset *token.FileSet, results []lint.Result) int {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	tree := map[string]map[string][]jsonDiag{}
	for _, res := range results {
		if len(res.Diagnostics) == 0 {
			continue
		}
		byAnalyzer := tree[cfg.ID]
		if byAnalyzer == nil {
			byAnalyzer = map[string][]jsonDiag{}
			tree[cfg.ID] = byAnalyzer
		}
		for _, d := range res.Diagnostics {
			byAnalyzer[res.Analyzer.Name] = append(byAnalyzer[res.Analyzer.Name], jsonDiag{
				Posn:    fset.Position(d.Pos).String(),
				Message: d.Message,
			})
		}
	}
	out, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Print(err)
		return 1
	}
	os.Stdout.Write(out)
	fmt.Println()
	return 0
}

// writeVetx writes the facts file cmd/go expects to find and cache.
// The atmlint analyzers export no facts, so the payload is a marker.
func writeVetx(cfg *vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte("atmlint.facts.v1\n"), 0666); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

func goarch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
