// Package platform defines the common interface the scheduler and the
// experiment harness use to drive the ATM tasks on any of the paper's
// architectures, plus a registry of the six evaluated machines:
// the three NVIDIA device models, the STARAN associative processor,
// the ClearSpeed CSX600 emulation, and the 16-core Xeon.
package platform

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/airspace"
	"repro/internal/ap"
	"repro/internal/broadphase"
	"repro/internal/cuda"
	"repro/internal/mimd"
	"repro/internal/radar"
	"repro/internal/telemetry"
	"repro/internal/vector"
)

// Platform executes the ATM tasks on one modeled architecture,
// mutating the world in place and returning the modeled task duration.
type Platform interface {
	// Name returns the human-readable machine name.
	Name() string
	// Deterministic reports whether the machine's modeled timing is a
	// pure function of the workload (true for CUDA and AP models, false
	// for the MIMD model).
	Deterministic() bool
	// Track runs Task 1 (tracking and correlation) for one period.
	Track(w *airspace.World, f *radar.Frame) time.Duration
	// DetectResolve runs Tasks 2-3 (collision detection + resolution)
	// for one major cycle.
	DetectResolve(w *airspace.World) time.Duration
}

// PairSourced is implemented by platforms whose Tasks 2-3 scan can be
// driven by a broadphase pair source instead of the paper's all-pairs
// kernel. Passing nil restores the all-pairs behaviour.
type PairSourced interface {
	SetPairSource(src broadphase.PairSource)
}

// Workered is implemented by platforms whose host execution can be
// pinned to a worker count (n <= 0 restores the process-default pool).
// Host workers change wall-clock speed only: every platform's modeled
// time is computed from per-core or per-chunk tallies that are merged
// deterministically, so results are identical at any worker count.
type Workered interface {
	SetWorkers(n int)
}

// Instrumented is implemented by platforms that can emit telemetry:
// per-kernel-phase spans and work counters recorded in modeled time
// into the given recorder. Passing nil detaches telemetry; attaching
// or detaching a recorder must never change modeled times or
// simulation results.
type Instrumented interface {
	SetTelemetry(rec *telemetry.Recorder)
}

// Compile-time interface checks for the four backends.
var (
	_ Platform = (*cuda.Platform)(nil)
	_ Platform = (*ap.Platform)(nil)
	_ Platform = (*mimd.Platform)(nil)
	_ Platform = (*vector.Platform)(nil)

	_ PairSourced = (*cuda.Platform)(nil)
	_ PairSourced = (*ap.Platform)(nil)
	_ PairSourced = (*mimd.Platform)(nil)
	_ PairSourced = (*vector.Platform)(nil)

	_ Workered = (*cuda.Platform)(nil)
	_ Workered = (*ap.Platform)(nil)
	_ Workered = (*mimd.Platform)(nil)
	_ Workered = (*vector.Platform)(nil)

	_ Instrumented = (*cuda.Platform)(nil)
	_ Instrumented = (*ap.Platform)(nil)
	_ Instrumented = (*mimd.Platform)(nil)
	_ Instrumented = (*vector.Platform)(nil)
)

// Registry keys for the six machines of the paper's evaluation.
const (
	GeForce9800GT = "9800gt"
	GTX880M       = "gtx880m"
	TitanXPascal  = "titanx"
	STARAN        = "staran"
	ClearSpeed    = "clearspeed"
	Xeon16        = "xeon16"
)

// Extension platform keys beyond the paper's six — the wide-vector
// commodity processors of the Section 7.2 future work.
const (
	XeonPhi = "xeonphi"
	AVX2    = "avx2"
)

// Names returns the registry keys of the paper's six machines in
// presentation order (NVIDIA cards oldest to newest, then AP, emulated
// AP, multicore). Extension machines are listed by ExtensionNames.
func Names() []string {
	return []string{GeForce9800GT, GTX880M, TitanXPascal, STARAN, ClearSpeed, Xeon16}
}

// ExtensionNames returns the registry keys of the future-work machines.
func ExtensionNames() []string {
	return []string{XeonPhi, AVX2}
}

// NVIDIANames returns just the three CUDA device keys.
func NVIDIANames() []string {
	return []string{GeForce9800GT, GTX880M, TitanXPascal}
}

// New constructs the named platform. seed only affects machines with
// internal stochastic behaviour (the MIMD jitter stream).
func New(name string, seed uint64) (Platform, error) {
	switch name {
	case GeForce9800GT:
		return cuda.NewPlatform(cuda.GeForce9800GT), nil
	case GTX880M:
		return cuda.NewPlatform(cuda.GTX880M), nil
	case TitanXPascal:
		return cuda.NewPlatform(cuda.TitanXPascal), nil
	case STARAN:
		return ap.NewPlatform(ap.STARAN), nil
	case ClearSpeed:
		return ap.NewPlatform(ap.ClearSpeedCSX600), nil
	case Xeon16:
		return mimd.NewPlatform(mimd.Xeon16, seed), nil
	case XeonPhi:
		return vector.NewPlatform(vector.XeonPhi7210), nil
	case AVX2:
		return vector.NewPlatform(vector.AVX2Workstation), nil
	}
	known := append(Names(), ExtensionNames()...)
	sort.Strings(known)
	return nil, fmt.Errorf("platform: unknown name %q (known: %v)", name, known)
}

// Label returns the display name for a registry key without
// constructing the platform, or the key itself if unknown.
func Label(name string) string {
	switch name {
	case GeForce9800GT:
		return cuda.GeForce9800GT.Name
	case GTX880M:
		return cuda.GTX880M.Name
	case TitanXPascal:
		return cuda.TitanXPascal.Name
	case STARAN:
		return ap.STARAN.Name
	case ClearSpeed:
		return ap.ClearSpeedCSX600.Name
	case Xeon16:
		return mimd.Xeon16.Name
	case XeonPhi:
		return vector.XeonPhi7210.Name
	case AVX2:
		return vector.AVX2Workstation.Name
	}
	return name
}

// MustNew is New that panics on error, for tables of known-good names.
func MustNew(name string, seed uint64) Platform {
	p, err := New(name, seed)
	if err != nil {
		panic(err)
	}
	return p
}
