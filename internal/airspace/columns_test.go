package airspace

import (
	"testing"

	"repro/internal/rng"
)

func TestColumnsFillFrom(t *testing.T) {
	w := NewWorld(137, rng.New(9))
	var c Columns
	c.FillFrom(w)
	if c.N() != w.N() {
		t.Fatalf("N: got %d, want %d", c.N(), w.N())
	}
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		if c.X[i] != a.X || c.Y[i] != a.Y || c.DX[i] != a.DX || c.DY[i] != a.DY || c.Alt[i] != a.Alt {
			t.Fatalf("aircraft %d: columns diverge from record", i)
		}
	}

	// Refresh after mutation, including shrink and regrow: the snapshot
	// must track the world exactly and reuse capacity.
	for i := range w.Aircraft {
		w.Aircraft[i].X += 1.5
		w.Aircraft[i].DY *= -1
	}
	c.FillFrom(w)
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		if c.X[i] != a.X || c.DY[i] != a.DY {
			t.Fatalf("aircraft %d: columns stale after refresh", i)
		}
	}

	small := NewWorld(5, rng.New(10))
	c.FillFrom(small)
	if c.N() != 5 {
		t.Fatalf("shrink: got %d, want 5", c.N())
	}

	c.SetVel(2, 0.25, -0.125)
	if c.DX[2] != 0.25 || c.DY[2] != -0.125 {
		t.Fatal("SetVel did not write through")
	}
}

func TestColumnsFillFromNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	w := NewWorld(800, rng.New(11))
	var c Columns
	c.FillFrom(w) // growth is the cold path
	if avg := testing.AllocsPerRun(20, func() { c.FillFrom(w) }); avg > 0 {
		t.Errorf("steady-state FillFrom allocates %.1f per call, want 0", avg)
	}
}
