package platform

import (
	"testing"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
)

func TestRegistryCoversAllNames(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("platform %q has empty name", name)
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := New("cray-1", 1); err == nil {
		t.Fatal("unknown platform did not error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad name did not panic")
		}
	}()
	MustNew("nope", 1)
}

func TestNVIDIANamesSubset(t *testing.T) {
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	nv := NVIDIANames()
	if len(nv) != 3 {
		t.Fatalf("NVIDIANames = %v", nv)
	}
	for _, n := range nv {
		if !all[n] {
			t.Fatalf("NVIDIA name %q not in registry", n)
		}
	}
}

func TestDeterminismFlags(t *testing.T) {
	// The paper's taxonomy: CUDA and AP timing is deterministic, the
	// multicore's is not.
	want := map[string]bool{
		GeForce9800GT: true, GTX880M: true, TitanXPascal: true,
		STARAN: true, ClearSpeed: true,
		Xeon16: false,
	}
	for name, det := range want {
		if got := MustNew(name, 1).Deterministic(); got != det {
			t.Errorf("%s: Deterministic = %v, want %v", name, got, det)
		}
	}
}

// Every platform must be able to run both tasks end to end on the same
// traffic without corrupting it.
func TestAllPlatformsRunBothTasks(t *testing.T) {
	base := airspace.NewWorld(300, rng.New(3))
	baseFrame := radar.Generate(base, radar.DefaultNoise, rng.New(4))
	for _, name := range Names() {
		p := MustNew(name, 7)
		w := base.Clone()
		f := baseFrame.Clone()
		if d := p.Track(w, f); d <= 0 {
			t.Errorf("%s: Track returned %v", name, d)
		}
		if d := p.DetectResolve(w); d <= 0 {
			t.Errorf("%s: DetectResolve returned %v", name, d)
		}
		if w.N() != base.N() {
			t.Errorf("%s: world size changed", name)
		}
		for i := range w.Aircraft {
			if !airspace.InField(w.Aircraft[i].X, w.Aircraft[i].Y) {
				// One period of travel beyond the edge is legal before
				// the next wrap; anything further is corruption.
				maxStep := airspace.SpeedMax / airspace.PeriodsPerHour
				if w.Aircraft[i].X < -airspace.FieldHalf-maxStep ||
					w.Aircraft[i].X > airspace.FieldHalf+maxStep ||
					w.Aircraft[i].Y < -airspace.FieldHalf-maxStep ||
					w.Aircraft[i].Y > airspace.FieldHalf+maxStep {
					t.Errorf("%s: aircraft %d at (%v,%v)", name, i, w.Aircraft[i].X, w.Aircraft[i].Y)
				}
			}
		}
	}
}

// Fig. 4/6 ordering at a mid-sweep point: every NVIDIA device model
// must beat the AP, the ClearSpeed emulation and the Xeon on both
// tasks.
func TestNVIDIAFasterThanOthers(t *testing.T) {
	base := airspace.NewWorld(4000, rng.New(9))
	baseFrame := radar.Generate(base, radar.DefaultNoise, rng.New(10))
	times := map[string]float64{}
	for _, name := range Names() {
		p := MustNew(name, 11)
		w := base.Clone()
		f := baseFrame.Clone()
		times[name] = p.Track(w, f).Seconds()
	}
	for _, nv := range NVIDIANames() {
		for _, other := range []string{STARAN, ClearSpeed, Xeon16} {
			if times[nv] >= times[other] {
				t.Errorf("Task 1 at 4000 aircraft: %s (%vs) not faster than %s (%vs)",
					nv, times[nv], other, times[other])
			}
		}
	}
}
