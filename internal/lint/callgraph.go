package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file builds the static call graph the interprocedural (flow)
// analyzers run on. The graph spans every loaded package of the module
// at once — unlike the per-package passes, an edge may cross a package
// boundary — and approximates dynamic dispatch conservatively:
//
//   - direct calls and concrete method calls are static edges;
//   - interface method calls fan out to every method of every named
//     type in the loaded packages whose method set satisfies the
//     interface (method-set membership, not points-to analysis);
//   - closures and method values are edged at their *creation* site:
//     referencing a FuncLit or taking x.M as a value adds an edge from
//     the enclosing function to the defining FuncLit/FuncDecl, so a
//     callback is charged to the function that built it, not to the
//     engine that later invokes it through a func-typed parameter;
//   - calls to generic functions and methods edge to the generic
//     origin declaration (one node covers all instantiations);
//   - calls through func-typed variables, parameters, and fields have
//     no nameable target; they mark the caller Dynamic, which is
//     enough for leaf proving to refuse to vouch for it.
//
// The approximation is sound for reachability in the direction the
// analyzers need (it may add edges that never execute, never misses a
// statically visible one) with two documented caveats: an interface
// implementation outside the loaded package set is invisible, and a
// func value received from outside the module is untracked. See
// DESIGN.md §12.

// A GraphPackage is one loaded, type-checked package presented to the
// graph builder. The loader (LoadPackages) and the linttest fixture
// harness both produce these.
type GraphPackage struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Dirs  *Directives
}

// EdgeKind classifies how a call-graph edge arises.
type EdgeKind string

const (
	// EdgeCall is a direct call of a named function or concrete method.
	EdgeCall EdgeKind = "call"
	// EdgeInterface is a dispatch approximation: the callee is one of
	// the method-set implementations of an interface method.
	EdgeInterface EdgeKind = "iface"
	// EdgeClosure links a function to a func literal it creates.
	EdgeClosure EdgeKind = "closure"
	// EdgeFuncValue links a function to a named function or method it
	// references as a value (method value, func passed as argument).
	EdgeFuncValue EdgeKind = "funcval"
)

// An Edge is one caller→callee relation, anchored at the source
// position that induced it.
type Edge struct {
	From *Node
	To   *Node
	Pos  token.Pos
	Kind EdgeKind
}

// A Node is one function in the graph: a declared function or method,
// a func literal, or an external (out-of-module) function referenced
// by loaded code.
type Node struct {
	// Pkg is the owning loaded package; nil for external nodes.
	Pkg *GraphPackage
	// Decl is the *ast.FuncDecl or *ast.FuncLit; nil for external nodes.
	Decl ast.Node
	// Obj is the type-checker object; nil for func literals.
	Obj *types.Func
	// Parent is the enclosing function node for func literals.
	Parent *Node
	// Out lists the outgoing edges in source order.
	Out []Edge
	// Dynamic records that the function calls through a func-typed
	// value the graph cannot resolve to a declaration.
	Dynamic bool

	name string
}

// External reports whether the node is outside the loaded package set.
func (n *Node) External() bool { return n.Pkg == nil }

// Name returns the stable, package-qualified display name:
// "repro/internal/tasks.scanPairInto", "(*repro/internal/broadphase.Sweep).Detect",
// "repro/internal/tasks.scanPar.func1" for literals.
func (n *Node) Name() string { return n.name }

// A Graph is the whole-module static call graph.
type Graph struct {
	Fset     *token.FileSet
	Packages []*GraphPackage
	// Nodes lists every node: loaded ones first in (package, position)
	// order, then externals sorted by name.
	Nodes []*Node

	byDecl map[ast.Node]*Node
	byObj  map[*types.Func]*Node
	ext    map[*types.Func]*Node
	impls  map[*types.Func][]*Node // interface method -> implementations
	named  []types.Type            // all named non-interface types, for dispatch
}

// NodeFor returns the node for a FuncDecl or FuncLit, or nil.
func (g *Graph) NodeFor(decl ast.Node) *Node { return g.byDecl[decl] }

// NodeForObj returns the node for a declared function object, or nil.
func (g *Graph) NodeForObj(obj *types.Func) *Node { return g.byObj[origin(obj)] }

// BuildGraph constructs the call graph over the loaded packages.
func BuildGraph(fset *token.FileSet, pkgs []*GraphPackage) *Graph {
	g := &Graph{
		Fset:     fset,
		Packages: pkgs,
		byDecl:   make(map[ast.Node]*Node),
		byObj:    make(map[*types.Func]*Node),
		ext:      make(map[*types.Func]*Node),
		impls:    make(map[*types.Func][]*Node),
	}
	g.collectNamedTypes()
	g.indexDecls()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			g.walkFile(pkg, f)
		}
	}
	g.finalize()
	return g
}

// collectNamedTypes gathers every named, non-interface type declared in
// the loaded packages; these are the dispatch candidates for interface
// method calls.
func (g *Graph) collectNamedTypes() {
	for _, pkg := range g.Packages {
		if pkg.Pkg == nil {
			continue
		}
		scope := pkg.Pkg.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				continue
			}
			g.named = append(g.named, t)
		}
	}
}

// indexDecls creates a node per function declaration.
func (g *Graph) indexDecls() {
	for _, pkg := range g.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				n := &Node{Pkg: pkg, Decl: fd, Obj: obj, name: declName(pkg, obj, fd)}
				g.byDecl[fd] = n
				if obj != nil {
					g.byObj[obj] = n
				}
				g.Nodes = append(g.Nodes, n)
			}
		}
	}
}

func declName(pkg *GraphPackage, obj *types.Func, fd *ast.FuncDecl) string {
	if obj != nil {
		return qualifiedName(obj)
	}
	return pkg.Path + "." + fd.Name.Name
}

// qualifiedName renders a *types.Func with its full package path:
// "path.Func" or "(path.T).M" / "(*path.T).M".
func qualifiedName(obj *types.Func) string {
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if obj.Pkg() == nil {
			return obj.Name()
		}
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return "(" + types.TypeString(sig.Recv().Type(), nil) + ")." + obj.Name()
}

// walkFile resolves every call, func-literal, and function-value
// reference in one file into edges.
func (g *Graph) walkFile(pkg *GraphPackage, file *ast.File) {
	// callFun marks expressions consumed as the Fun of a CallExpr so
	// the identifier walk below does not double-report them as values.
	callFun := make(map[ast.Expr]bool)
	// selSel marks the Sel identifier of every SelectorExpr; selector
	// references are handled at the SelectorExpr level.
	selSel := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callFun[unwrapFun(n.Fun)] = true
		case *ast.SelectorExpr:
			selSel[n.Sel] = true
		}
		return true
	})

	// litCount numbers func literals compiler-style within each
	// top-level declaration: Decl.func1, Decl.func2, ...
	var enclosing []*Node
	var litCount int

	push := func(n *Node) { enclosing = append(enclosing, n) }
	cur := func() *Node {
		if len(enclosing) == 0 {
			return nil
		}
		return enclosing[len(enclosing)-1]
	}

	var nodes []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			last := nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
			switch last.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				enclosing = enclosing[:len(enclosing)-1]
			}
			return true
		}
		nodes = append(nodes, n)
		switch n := n.(type) {
		case *ast.FuncDecl:
			litCount = 0
			push(g.byDecl[n])

		case *ast.FuncLit:
			parent := cur()
			litCount++
			name := pkg.Path + ".glob"
			if parent != nil {
				name = parent.Name()
			}
			lit := &Node{
				Pkg:    pkg,
				Decl:   n,
				Parent: parent,
				name:   fmt.Sprintf("%s.func%d", name, litCount),
			}
			g.byDecl[n] = lit
			g.Nodes = append(g.Nodes, lit)
			if parent != nil {
				parent.Out = append(parent.Out, Edge{From: parent, To: lit, Pos: n.Pos(), Kind: EdgeClosure})
			}
			push(lit)

		case *ast.CallExpr:
			g.resolveCall(pkg, cur(), n)

		case *ast.SelectorExpr:
			if callFun[n] {
				return true // handled by resolveCall
			}
			if from := cur(); from != nil {
				if sel, ok := pkg.Info.Selections[n]; ok &&
					(sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr) {
					if m, ok := sel.Obj().(*types.Func); ok {
						g.addCallee(pkg, from, m, sel.Recv(), n.Pos(), EdgeFuncValue)
					}
				} else if m, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok {
					// qualified reference to another package's function
					g.addEdge(pkg, from, m, n.Pos(), EdgeFuncValue)
				}
			}

		case *ast.Ident:
			if callFun[n] || selSel[n] {
				return true
			}
			from := cur()
			if from == nil {
				return true
			}
			if fn, ok := pkg.Info.Uses[n].(*types.Func); ok {
				// A bare identifier naming a function, used as a value.
				g.addEdge(pkg, from, fn, n.Pos(), EdgeFuncValue)
			}
		}
		return true
	})
}

// unwrapFun strips parens and generic instantiation indices from a
// call's Fun expression: (f[int]) -> f.
func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return ast.Unparen(e)
		}
	}
}

// resolveCall turns one call expression into edges from the enclosing
// function node.
func (g *Graph) resolveCall(pkg *GraphPackage, from *Node, call *ast.CallExpr) {
	if from == nil {
		return
	}
	fun := unwrapFun(call.Fun)

	// Type conversion, not a call.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	switch fn := fun.(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: the closure edge is added when
		// the literal itself is visited; nothing more to record.
		return
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fn].(type) {
		case *types.Func:
			g.addEdge(pkg, from, obj, call.Pos(), EdgeCall)
			return
		case *types.Builtin:
			return
		case *types.Var:
			// Call through a func-typed variable or parameter. If it is
			// a closure the creation-site edge already covers it;
			// otherwise the target is unknowable statically.
			from.Dynamic = true
			return
		case nil:
			// Defs (rare: recursive reference inside its own decl).
			if o, ok := pkg.Info.Defs[fn].(*types.Func); ok {
				g.addEdge(pkg, from, o, call.Pos(), EdgeCall)
				return
			}
		}
		from.Dynamic = true
		return
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fn]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				if m, ok := sel.Obj().(*types.Func); ok {
					g.addCallee(pkg, from, m, sel.Recv(), call.Pos(), EdgeCall)
					return
				}
			case types.FieldVal:
				from.Dynamic = true // func-typed struct field
				return
			}
		}
		// Package-qualified call: pkg.F().
		if m, ok := pkg.Info.Uses[fn.Sel].(*types.Func); ok {
			g.addEdge(pkg, from, m, call.Pos(), EdgeCall)
			return
		}
		from.Dynamic = true
		return
	}
	from.Dynamic = true
}

// addCallee adds the edge(s) for a method reference: a static edge for
// a concrete receiver, dispatch-approximation edges for an interface
// receiver.
func (g *Graph) addCallee(pkg *GraphPackage, from *Node, m *types.Func, recv types.Type, pos token.Pos, kind EdgeKind) {
	if recv != nil {
		if _, isIface := recv.Underlying().(*types.Interface); isIface {
			for _, impl := range g.implementations(m) {
				from.Out = append(from.Out, Edge{From: from, To: impl, Pos: pos, Kind: EdgeInterface})
			}
			return
		}
	}
	g.addEdge(pkg, from, m, pos, kind)
}

// addEdge records a static edge to a declared function, resolving
// generic instantiations to their origin declaration and creating an
// external node when the callee is outside the loaded set.
func (g *Graph) addEdge(pkg *GraphPackage, from *Node, callee *types.Func, pos token.Pos, kind EdgeKind) {
	to := g.nodeForFunc(callee)
	from.Out = append(from.Out, Edge{From: from, To: to, Pos: pos, Kind: kind})
}

func origin(obj *types.Func) *types.Func {
	if o := obj.Origin(); o != nil {
		return o
	}
	return obj
}

// nodeForFunc resolves a function object to its node, minting an
// external node on first reference to an out-of-module function.
func (g *Graph) nodeForFunc(callee *types.Func) *Node {
	callee = origin(callee)
	if n, ok := g.byObj[callee]; ok {
		return n
	}
	if n, ok := g.ext[callee]; ok {
		return n
	}
	n := &Node{Obj: callee, name: qualifiedName(callee)}
	g.ext[callee] = n
	return n
}

// implementations returns, memoized, the loaded-package methods that
// satisfy the given interface method, sorted by name.
func (g *Graph) implementations(m *types.Func) []*Node {
	m = origin(m)
	if impls, ok := g.impls[m]; ok {
		return impls
	}
	var out []*Node
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		g.impls[m] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		g.impls[m] = nil
		return nil
	}
	seen := make(map[*Node]bool)
	for _, t := range g.named {
		for _, recv := range []types.Type{t, types.NewPointer(t)} {
			if !types.Implements(recv, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			n := g.nodeForFunc(fn)
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	g.impls[m] = out
	return out
}

// finalize orders Nodes deterministically: loaded nodes by (package
// path, file, offset), then external nodes by name.
func (g *Graph) finalize() {
	var ext []*Node
	for _, n := range g.ext {
		ext = append(ext, n)
	}
	sort.Slice(ext, func(i, j int) bool { return ext[i].name < ext[j].name })
	sort.SliceStable(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i], g.Nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		pa, pb := g.Fset.Position(a.Decl.Pos()), g.Fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	g.Nodes = append(g.Nodes, ext...)
}

// FuncStack returns the enclosing function AST nodes of n (outermost
// first, ending at n itself), for directive scope lookups.
func (n *Node) FuncStack() []ast.Node {
	var rev []ast.Node
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Decl != nil {
			rev = append(rev, cur.Decl)
		}
	}
	out := make([]ast.Node, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// InTestFile reports whether the node is declared in a _test.go file.
func (g *Graph) InTestFile(n *Node) bool {
	if n.Decl == nil {
		return false
	}
	f := g.Fset.File(n.Decl.Pos())
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// WriteDOT dumps the subgraph rooted at one package in Graphviz DOT
// form: every node declared in pkgPath plus every callee they reach,
// one edge per (caller, callee, kind). `make lint-graph PKG=...`
// renders it; the fixture tests assert on its lines.
func (g *Graph) WriteDOT(w io.Writer, pkgPath string) error {
	type line struct{ from, to, kind string }
	var lines []line
	seen := make(map[line]bool)
	for _, n := range g.Nodes {
		if n.Pkg == nil || n.Pkg.Path != pkgPath {
			continue
		}
		for _, e := range n.Out {
			l := line{n.Name(), e.To.Name(), string(e.Kind)}
			if !seen[l] {
				seen[l] = true
				lines = append(lines, l)
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		a, b := lines[i], lines[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.kind < b.kind
	})
	if _, err := fmt.Fprintf(w, "digraph %q {\n", pkgPath); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n", l.from, l.to, l.kind); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
