package cuda

import (
	"math"
	"time"

	"repro/internal/airspace"
)

// This file implements Batcher's bitonic sorting network on the CUDA
// engine and uses it for the conflict-priority display task: producing
// the controller's list of conflicting aircraft ordered by time to
// conflict. K. E. Batcher designed both the STARAN (the paper's AP)
// and the bitonic network, so the two platforms sort the same list in
// characteristically different ways — the AP by repeated constant-time
// min-reductions (see ap.PriorityProgram), the GPU by O(log^2 n)
// data-parallel compare-exchange stages.

// opsCompareExchange is the abstract cost of one bitonic
// compare-exchange (two loads, a lexicographic compare, a conditional
// swap).
const opsCompareExchange = 8

// BitonicSortPairs sorts the (key, id) pairs ascending by key, with id
// breaking ties, using Batcher's bitonic network: one kernel launch per
// (k, j) stage with one thread per element. len(keys) must equal
// len(ids); the slices are sorted in place. Returns the accumulated
// kernel stats (ops are dominated by the n log^2 n compare-exchanges).
func (e *Engine) BitonicSortPairs(keys []float64, ids []int32) []KernelStats {
	if len(keys) != len(ids) {
		panic("cuda: BitonicSortPairs length mismatch")
	}
	n := len(keys)
	if n < 2 {
		return nil
	}
	// Pad to a power of two with +Inf sentinels, as the network needs.
	size := 1
	for size < n {
		size *= 2
	}
	k := keys
	d := ids
	if size != n {
		k = make([]float64, size)
		d = make([]int32, size)
		copy(k, keys)
		copy(d, ids)
		for i := n; i < size; i++ {
			k[i] = math.Inf(1)
			d[i] = math.MaxInt32
		}
	}

	var stats []KernelStats
	for span := 2; span <= size; span *= 2 {
		for j := span / 2; j >= 1; j /= 2 {
			st := e.dev.Launch("bitonicStage", size, func(t *Thread) {
				i := t.ID
				partner := i ^ j
				if partner <= i {
					return
				}
				t.Ops(opsCompareExchange)
				ascending := i&span == 0
				swap := k[i] > k[partner] || (k[i] == k[partner] && d[i] > d[partner])
				if swap == ascending {
					k[i], k[partner] = k[partner], k[i]
					d[i], d[partner] = d[partner], d[i]
				}
			})
			stats = append(stats, st)
		}
	}
	if size != len(keys) {
		copy(keys, k[:len(keys)])
		copy(ids, d[:len(ids)])
	}
	return stats
}

// PriorityResult is the conflict-priority display list.
type PriorityResult struct {
	// IDs are the conflicting aircraft ordered by TimeTill ascending
	// (most urgent first), ties broken by aircraft ID.
	IDs []int32
	// Kernels holds the launch accounts; Time is their modeled total
	// plus the transfer of the list to the host display.
	Kernels []KernelStats
	Time    time.Duration
}

// ConflictPriority produces the display list on the device: a
// key-build kernel (TimeTill for conflicting aircraft, +Inf otherwise),
// the bitonic sort, and a transfer of the list back to the host.
func (e *Engine) ConflictPriority(w *airspace.World) PriorityResult {
	n := w.N()
	keys := make([]float64, n)
	ids := make([]int32, n)
	ac := w.Aircraft
	var res PriorityResult

	st := e.dev.Launch("priorityKeys", n, func(t *Thread) {
		a := &ac[t.ID]
		t.Ops(4)
		ids[t.ID] = a.ID
		if a.Col {
			keys[t.ID] = a.TimeTill
		} else {
			keys[t.ID] = math.Inf(1)
		}
	})
	res.Kernels = append(res.Kernels, st)
	res.Time += st.Time

	for _, s := range e.BitonicSortPairs(keys, ids) {
		res.Kernels = append(res.Kernels, s)
		res.Time += s.Time
	}

	for i := 0; i < n; i++ {
		if math.IsInf(keys[i], 1) {
			break
		}
		res.IDs = append(res.IDs, ids[i])
	}
	res.Time += e.dev.TransferTime(len(res.IDs) * 4)
	return res
}
