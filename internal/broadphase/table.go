// Worker-parallel candidate tables: the sharded sweep mode.
//
// A PairTable materializes every track's broad-phase candidate set for
// one detection invocation in CSR form. Building it walks the sweep's
// sorted order once, partitioned into grain-aligned contiguous segments
// that self-schedule across the shared parexec pool: each segment emits
// its candidate runs into the segment's own padded buffer, and a second
// pass copies the runs into their final CSR slots, whose offsets depend
// only on the per-track candidate counts — so the finished table is
// byte-identical at every worker count, whatever order the segments
// were claimed in. Buffers are per segment rather than per worker so
// their steady-state sizes are stable too: a segment's candidate count
// drifts slowly with traffic, while a worker's share of dynamically
// claimed segments varies run to run and would regrow its buffer
// toward the full table size.
//
// What the table buys is reuse. The candidate set of a track depends
// only on positions and speeds, and collision resolution probes rotated
// headings, which preserve speed; the sweep index is never re-prepared
// within an invocation. Every rotation probe and every dirty-replay
// rescan can therefore serve from the table instead of re-running the
// bitmap walk — bit-identically, because AppendCandidates is a pure
// function of the prepared index.
package broadphase

import (
	"math"

	"repro/internal/parexec"
)

// tableGrain is the segment size of the table build: one self-scheduled
// chunk covers this many consecutive sorted positions. Small enough to
// load-balance skewed candidate counts, large enough that the per-chunk
// bookkeeping (owner, offset, scratch acquisition) is noise.
const tableGrain = 256

// repairChunk is the block size of the parallel insertion-repair run
// detection: per-block key minima/maxima are computed in parallel, and
// a serial prefix pass marks block boundaries no element can cross.
const repairChunk = 512

// PairTable holds every track's candidate set in CSR form: track i's
// candidates are Cand[Start[i]:Start[i+1]], ascending, exactly the
// slice AppendCandidates would have emitted. It is valid until the next
// Prepare of the source that built it.
type PairTable struct {
	Start []int32
	Cand  []int32
}

// Candidates returns track i's candidate set, ascending.
//
//atm:noalloc
//atm:inline
func (t *PairTable) Candidates(i int) []int32 {
	return t.Cand[t.Start[i]:t.Start[i+1]]
}

// TableSource is implemented by pair sources that can materialize a
// candidate table with a worker-parallel index walk (the sharded mode).
// Sources without the mode — or instances constructed without it — are
// discovered via TableOf, which returns nil for them.
type TableSource interface {
	PairSource
	// Sharded reports whether the worker-parallel table mode is enabled
	// on this instance.
	Sharded() bool
	// SetPool hands the source the engine pool its parallel phases
	// (table build, index repair) run on. nil keeps them serial.
	// Sequential, like Prepare.
	SetPool(p *parexec.Pool)
	// PrepareTable builds the candidate table for every track against
	// the index established by the most recent Prepare. Sequential
	// orchestration, like Prepare; the returned table is read-only and
	// valid until the next Prepare.
	PrepareTable() *PairTable
	// AddKernelBatches accumulates consumer-side batched-kernel
	// iteration counts so telemetry can drain them alongside the
	// source's own segment counts. Sequential, like Prepare.
	AddKernelBatches(n int64)
	// TakeShardStats drains the segment and batch counters. Sequential.
	TakeShardStats() (segments, batches int64)
}

// TableOf returns the TableSource behind src when the sharded mode is
// enabled on it, unwrapping decorators such as Counted, and nil
// otherwise.
func TableOf(src PairSource) TableSource {
	for src != nil {
		if ts, ok := src.(TableSource); ok {
			if ts.Sharded() {
				return ts
			}
			return nil
		}
		u, ok := src.(interface{ Unwrap() PairSource })
		if !ok {
			return nil
		}
		src = u.Unwrap()
	}
	return nil
}

// tableBuf is one segment's candidate-run buffer, padded so slice
// headers written by different workers don't share a cache line.
type tableBuf struct {
	cand []int32
	_    [40]byte
}

// runStat is one repair run's outcome: the shifts it spent, the
// elements it found out of place, and whether it stayed within budget.
type runStat struct {
	shifts   int64
	resorted int64
	ok       bool
}

// Sharded reports whether the worker-parallel table mode is enabled.
func (s *Sweep) Sharded() bool { return s.sharded }

// SetPool hands the sweep the engine pool PrepareTable's segment walk
// and Prepare's parallel repair run on; nil keeps both serial.
func (s *Sweep) SetPool(p *parexec.Pool) { s.pool = p }

// AddKernelBatches accumulates a consumer's batched-kernel iteration
// count. Sequential, like Prepare.
func (s *Sweep) AddKernelBatches(n int64) { s.statBatches += n }

// TakeShardStats drains the segment and batch counters accumulated
// since the last call. Sequential, like Prepare.
func (s *Sweep) TakeShardStats() (segments, batches int64) {
	segments, batches = s.statSegments, s.statBatches
	s.statSegments, s.statBatches = 0, 0
	return segments, batches
}

// fillJob walks one grain-aligned segment of sorted positions, emitting
// each position's candidate run into the segment's buffer and recording
// the run length per track. The buffer belongs to the segment, not the
// claiming worker, so the copy pass finds each run at a fixed place and
// steady-state buffer sizes are independent of the claim order.
type fillJob struct{ s *Sweep }

//atm:noalloc
func (j *fillJob) Chunk(_, lo, hi int) {
	s := j.s
	chunk := lo / tableGrain
	buf := s.chunkBufs[chunk].cand[:0]
	nw := (s.n + 63) / 64
	sc := s.getScratch(nw) //atm:allow noallocflow -- scratch acquisition allocates only on pool miss or fleet growth; steady state reuses pooled words
	for k := lo; k < hi; k++ {
		id := s.order[k]
		before := len(buf)
		buf = s.appendCandidatesID(buf, int(id), sc.words)
		s.cnt[id] = int32(len(buf) - before)
	}
	s.scratch.Put(sc)
	s.chunkBufs[chunk].cand = withHeadroom(buf) //atm:allow noallocflow -- headroom regrow only, amortized to nothing in steady state
}

// withHeadroom returns buf, reallocated with an eighth of spare
// capacity when it has nearly run out. Segment candidate counts drift
// a little every period, and a buffer ending exactly at capacity would
// regrow on the very next build; the headroom absorbs the drift so the
// steady state stays allocation-free. Same policy as the CSR Cand
// array in PrepareTable.
func withHeadroom(buf []int32) []int32 {
	if cap(buf)-len(buf) >= len(buf)/16 {
		return buf
	}
	nb := make([]int32, len(buf), len(buf)+len(buf)/8+64)
	copy(nb, buf)
	return nb
}

// copyJob moves one segment's candidate runs from the segment buffer
// into their final CSR slots. Offsets are fully determined by the
// per-track counts, so the result is independent of the fill pass's
// chunk-claim order.
type copyJob struct{ s *Sweep }

//atm:noalloc
//atm:noescape
func (j *copyJob) Chunk(_, lo, hi int) {
	s := j.s
	chunk := lo / tableGrain
	src := s.chunkBufs[chunk].cand
	off := 0
	for k := lo; k < hi; k++ {
		id := s.order[k]
		c := int(s.cnt[id])
		st := int(s.table.Start[id])
		copy(s.table.Cand[st:st+c], src[off:off+c])
		off += c
	}
}

// PrepareTable builds the candidate table for every track by walking
// the sorted order in parallel segments. Must follow Prepare (or
// PrepareColumns) of the same world state.
func (s *Sweep) PrepareTable() *PairTable {
	n := s.n
	t := &s.table
	if cap(t.Start) < n+1 {
		t.Start = make([]int32, n+1)
	}
	t.Start = t.Start[:n+1]
	if cap(s.cnt) < n {
		s.cnt = make([]int32, n)
	}
	s.cnt = s.cnt[:n]
	chunks := (n + tableGrain - 1) / tableGrain
	if len(s.chunkBufs) < chunks {
		s.chunkBufs = append(s.chunkBufs[:cap(s.chunkBufs)], make([]tableBuf, chunks-cap(s.chunkBufs))...)
	}

	s.fill.s = s
	if s.pool == nil {
		for lo := 0; lo < n; lo += tableGrain {
			hi := lo + tableGrain
			if hi > n {
				hi = n
			}
			s.fill.Chunk(0, lo, hi)
		}
	} else {
		s.pool.RunBody(n, tableGrain, &s.fill)
	}

	sum := int32(0)
	for i := 0; i < n; i++ {
		t.Start[i] = sum
		sum += s.cnt[i]
	}
	t.Start[n] = sum
	if cap(t.Cand) < int(sum) {
		// An eighth of headroom: the candidate total drifts by a few
		// hundred entries per period as traffic moves, and exact sizing
		// would reallocate the whole table on every new high-water mark.
		t.Cand = make([]int32, sum, int(sum)+int(sum)/8)
	}
	t.Cand = t.Cand[:sum]

	s.copier.s = s
	if s.pool == nil {
		for lo := 0; lo < n; lo += tableGrain {
			hi := lo + tableGrain
			if hi > n {
				hi = n
			}
			s.copier.Chunk(0, lo, hi)
		}
	} else {
		s.pool.RunBody(n, tableGrain, &s.copier)
	}
	s.statSegments += int64(chunks)
	return t
}

// minmaxJob computes one repair block's key minimum and maximum (the
// low-x of the current order) for the run-boundary scan.
type minmaxJob struct{ s *Sweep }

//atm:noalloc
//atm:noescape
func (j *minmaxJob) Chunk(_, lo, hi int) {
	s := j.s
	mn, mx := math.Inf(1), math.Inf(-1)
	for k := lo; k < hi; k++ {
		v := s.lox[s.order[k]]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	c := lo / repairChunk
	s.chunkMin[c], s.chunkMax[c] = mn, mx
}

// repairJob insertion-repairs one independent run of the sorted order.
type repairJob struct{ s *Sweep }

//atm:noalloc
//atm:noescape
func (j *repairJob) Chunk(_, lo, hi int) {
	s := j.s
	for ri := lo; ri < hi; ri++ {
		runLo := int(s.runs[ri])
		runHi := s.n
		if ri+1 < len(s.runs) {
			runHi = int(s.runs[ri+1])
		}
		s.runStats[ri] = s.repairRun(runLo, runHi)
	}
}

// repairRun is repairOrder restricted to order[lo:hi) with a local
// shift budget. An abort leaves the run a valid permutation, exactly
// like the serial repair.
//
//atm:noalloc
//atm:noescape
func (s *Sweep) repairRun(lo, hi int) runStat {
	order, lox := s.order, s.lox
	budget := repairBudget(s.n)
	var shifts, resorted int64
	for k := lo + 1; k < hi; k++ {
		id := order[k]
		key := lox[id]
		j := k
		for j > lo && lox[order[j-1]] > key {
			order[j] = order[j-1]
			j--
		}
		if j == k {
			continue
		}
		order[j] = id
		resorted++
		shifts += int64(k - j)
		if shifts > budget {
			return runStat{shifts: shifts, resorted: resorted, ok: false}
		}
	}
	return runStat{shifts: shifts, resorted: resorted, ok: true}
}

// repairOrderRuns is the sharded mode's repairOrder: it splits the
// nearly sorted order into independent runs at "clean" block boundaries
// — positions where every key to the left is <= every key to the right,
// which the strict-> insertion comparison can never move an element
// across — and repairs the runs in parallel. The run partition depends
// only on the data, and each run's repair (and its abort point, bounded
// by a per-run budget) is deterministic, so the resulting order and the
// drained statistics are identical at every worker count. Any aborted
// run, or a total spend over the global budget, falls back to the full
// sort exactly as the serial repair does.
//
//atm:ordered-merge
func (s *Sweep) repairOrderRuns() bool {
	n := len(s.order)
	chunks := (n + repairChunk - 1) / repairChunk
	if cap(s.chunkMin) < chunks {
		s.chunkMin = make([]float64, chunks)
		s.chunkMax = make([]float64, chunks)
	}
	s.chunkMin = s.chunkMin[:chunks]
	s.chunkMax = s.chunkMax[:chunks]
	s.minmax.s = s
	if s.pool == nil {
		for lo := 0; lo < n; lo += repairChunk {
			hi := lo + repairChunk
			if hi > n {
				hi = n
			}
			s.minmax.Chunk(0, lo, hi)
		}
	} else {
		s.pool.RunBody(n, repairChunk, &s.minmax)
	}

	s.runs = s.runs[:0]
	s.runs = append(s.runs, 0)
	prefix := s.chunkMax[0]
	for c := 1; c < chunks; c++ {
		if prefix <= s.chunkMin[c] {
			s.runs = append(s.runs, int32(c*repairChunk))
		}
		if s.chunkMax[c] > prefix {
			prefix = s.chunkMax[c]
		}
	}
	nr := len(s.runs)
	if cap(s.runStats) < nr {
		s.runStats = make([]runStat, nr)
	}
	s.runStats = s.runStats[:nr]

	s.repair.s = s
	if s.pool == nil || nr == 1 {
		for ri := 0; ri < nr; ri++ {
			s.repair.Chunk(0, ri, ri+1)
		}
	} else {
		s.pool.RunBody(nr, 1, &s.repair)
	}

	var shifts, resorted int64
	ok := true
	for ri := range s.runStats {
		shifts += s.runStats[ri].shifts
		resorted += s.runStats[ri].resorted
		ok = ok && s.runStats[ri].ok
	}
	s.statMoved += shifts
	s.statResorted += resorted
	return ok && shifts <= repairBudget(n)
}
