// Fixture analyzed as a package outside DeterministicPackages: the
// determinism analyzer must report nothing here, whatever the code
// does.
package fixture

import (
	"math/rand"
	"sync"
	"time"
)

type reporter struct {
	mu sync.Mutex
}

func (r *reporter) sample(m map[string]int) (int, time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sum := 0
	for _, v := range m {
		sum += v
	}
	go func() { _ = rand.Intn(sum + 1) }()
	return sum, time.Now()
}
