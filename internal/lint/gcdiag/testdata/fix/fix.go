// Fixture for gcdiag.Collect and gcdiag.Check: one function per gate
// directive, small enough that every supported Go toolchain inlines
// add and keeps fill's parameters on the stack.
package fix

//atm:inline
func add(a, b int) int { return a + b }

//atm:noescape
func fill(dst []int, v int) {
	for i := range dst {
		dst[i] = v
	}
}

//atm:nobce
func sum3(xs []int) int {
	return xs[0] + xs[1] + xs[2]
}
