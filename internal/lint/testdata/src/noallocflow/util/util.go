// Fixture callee package for the noallocflow analyzer: the hot
// fixture package reaches these functions across the package boundary.
package util

import "math"

// Grow allocates a fresh buffer; hot-path callers must be flagged.
func Grow(n int) []float64 {
	return make([]float64, n)
}

// Scale is a provable alloc-free leaf: no allocating construct, no
// dynamic calls, only safe external callees.
func Scale(xs []float64, k float64) {
	for i := range xs {
		xs[i] *= k
	}
}

// Sum is annotated, so the flow analyzer keeps traversing through it —
// and catches the allocating helper it calls in its own package.
//
//atm:noalloc
func Sum(xs []float64) float64 {
	if len(xs) == 0 {
		xs = pad() // want "call to repro/fixture/util.pad"
	}
	s := 0.0
	for _, x := range xs {
		s += math.Sqrt(x)
	}
	return s
}

func pad() []float64 {
	return make([]float64, 1)
}

// Source is dispatched through an interface by the hot fixture; the
// graph fans the call out to every method-set implementation.
type Source interface {
	Next() float64
}

// Pooled allocates on every Next — the interface-dispatched callee the
// flow analyzer must catch.
type Pooled struct{ buf []float64 }

func (p *Pooled) Next() float64 {
	p.buf = make([]float64, 1)
	return p.buf[0]
}

// Counter is a provable alloc-free implementation; dispatch to it is
// clean.
type Counter struct{ v float64 }

func (c *Counter) Next() float64 {
	c.v++
	return c.v
}
