package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// ModeledTimePackages are the packages that charge modeled device
// time. Methods named Track or DetectResolve in these packages are
// modeled-time roots automatically (they implement the
// platform.Platform contract); additional roots — kernel-launch and
// program entry points — carry //atm:modeled-time.
var ModeledTimePackages = map[string]bool{
	"repro/internal/cuda":     true,
	"repro/internal/ap":       true,
	"repro/internal/mimd":     true,
	"repro/internal/vector":   true,
	"repro/internal/platform": true,
}

// ModeledTime proves the separation of host timing from modeled
// timing: no function reachable from a modeled-time root may read the
// wall clock. Reachability is computed over the package-local static
// call graph (function literals nested in a reachable function are
// walked as part of it), which matches how the executors are built:
// every modeled-time figure is produced inside one platform package
// from operation tallies.
var ModeledTime = &Analyzer{
	Name: "modeledtime",
	Doc:  "flag wall-clock calls reachable from functions that charge modeled device time",
	Run:  runModeledTime,
}

func runModeledTime(pass *Pass) error {
	type fn struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var fns []fn
	byObj := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn{fd, obj})
			byObj[obj] = fd
		}
	}

	// Roots: //atm:modeled-time directives, plus Track/DetectResolve
	// methods in the platform packages.
	rootOf := make(map[*types.Func]*types.Func) // reached fn -> root that reached it
	var queue []*types.Func
	for _, f := range fns {
		isRoot := pass.Dirs.HasDirective(f.decl, KindModeledTime)
		if !isRoot && ModeledTimePackages[pass.PkgPath] && f.decl.Recv != nil &&
			(f.decl.Name.Name == "Track" || f.decl.Name.Name == "DetectResolve") {
			isRoot = true
		}
		if isRoot {
			rootOf[f.obj] = f.obj
			queue = append(queue, f.obj)
		}
	}
	if len(queue) == 0 {
		return nil
	}

	// Package-local static call graph. Any reference to a same-package
	// function — direct call, method call, or function value — is an
	// edge; that is conservative in exactly the right direction.
	edges := make(map[*types.Func][]*types.Func)
	for _, f := range fns {
		if f.decl.Body == nil {
			continue
		}
		ast.Inspect(f.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, local := byObj[callee]; local {
				edges[f.obj] = append(edges[f.obj], callee)
			}
			return true
		})
	}
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range edges[cur] {
			if _, seen := rootOf[next]; !seen {
				rootOf[next] = rootOf[cur]
				queue = append(queue, next)
			}
		}
	}

	// Flag wall-clock selector uses in every reachable function.
	for _, f := range fns {
		root, reached := rootOf[f.obj]
		if !reached || f.decl.Body == nil {
			continue
		}
		WalkFuncStack(f.decl, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgNameOf(pass.TypesInfo, sel.X) == "time" && wallClockFuncs[sel.Sel.Name] {
				if !pass.Dirs.Allowed(RuleWallClock, sel.Pos(), stack) {
					via := ""
					if root != f.obj {
						via = " via " + f.obj.Name()
					}
					pass.Reportf(sel.Pos(), "time.%s is reachable from modeled-time root %s%s; modeled device time must be a pure function of operation tallies, never the host clock (waive with //atm:allow wallclock -- why)", sel.Sel.Name, root.Name(), via)
				}
			}
			return true
		})
	}
	return nil
}
