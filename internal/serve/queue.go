package serve

import (
	"errors"
	"sync"
)

// Admission errors mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull is returned when the bounded run queue is at depth;
	// the handler sheds the request with 429 + Retry-After.
	ErrQueueFull = errors.New("serve: run queue full")
	// ErrDraining is returned once the server has stopped admitting
	// work; the handler answers 503.
	ErrDraining = errors.New("serve: draining, not admitting new runs")
)

// runQueue is the admission-controlled run queue: bounded total depth,
// two lanes. Interactive runs (small N) always pop before batch runs
// (large sweeps), so a pile of 32k-aircraft jobs cannot starve a
// dashboard's 1k-aircraft probe; within a lane order is FIFO.
type runQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	high     []*job // interactive lane
	low      []*job // batch lane
	max      int
	closed   bool
}

func newRunQueue(max int) *runQueue {
	q := &runQueue{max: max}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// push admits j, or reports why it cannot: ErrDraining once closed,
// ErrQueueFull at depth. push never blocks — backpressure is the
// caller's 429, not a hidden wait.
func (q *runQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.high)+len(q.low) >= q.max {
		return ErrQueueFull
	}
	if j.interactive {
		q.high = append(q.high, j)
	} else {
		q.low = append(q.low, j)
	}
	q.notEmpty.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and
// empty; ok=false tells the executor to exit. A closed queue still
// drains: everything admitted before close is handed out.
func (q *runQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.high) > 0 {
			return q.popLane(&q.high), true
		}
		if len(q.low) > 0 {
			return q.popLane(&q.low), true
		}
		if q.closed {
			return nil, false
		}
		q.notEmpty.Wait()
	}
}

// popLane removes and returns the front of one lane. Callers hold mu.
func (q *runQueue) popLane(lane *[]*job) *job {
	j := (*lane)[0]
	(*lane)[0] = nil
	*lane = (*lane)[1:]
	if len(*lane) == 0 {
		*lane = nil // release the drained backing array
	}
	return j
}

// close stops admission and wakes every blocked pop so executors can
// drain the remainder and exit. Idempotent.
func (q *runQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

// depth returns the number of queued (not yet executing) jobs.
func (q *runQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.high) + len(q.low)
}
