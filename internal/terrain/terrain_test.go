package terrain

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/cuda"
	"repro/internal/rng"
)

func testGrid() *Grid {
	return Generate(4, 30, 12000, rng.New(1))
}

func TestGenerateDimensions(t *testing.T) {
	g := testGrid()
	if g.Cols != 64 || g.Rows != 64 {
		t.Fatalf("grid %dx%d, want 64x64 for 4 nm cells over 256 nm", g.Cols, g.Rows)
	}
	if len(g.Elev) != 64*64 {
		t.Fatalf("elev len %d", len(g.Elev))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(4, 30, 12000, rng.New(7))
	b := Generate(4, 30, 12000, rng.New(7))
	for i := range a.Elev {
		if a.Elev[i] != b.Elev[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestGenerateElevationBounds(t *testing.T) {
	g := testGrid()
	max := g.MaxElevation()
	if max <= 0 {
		t.Fatal("flat terrain generated")
	}
	// Hills can stack, but not absurdly: bound at a few times maxElev.
	if max > 5*12000 {
		t.Fatalf("max elevation %v implausible", max)
	}
	for i, e := range g.Elev {
		if e < 0 {
			t.Fatalf("cell %d below sea level: %v", i, e)
		}
	}
}

func TestGeneratePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad parameters did not panic")
		}
	}()
	Generate(0, 1, 1, rng.New(1))
}

func TestElevationInterpolation(t *testing.T) {
	g := &Grid{CellNM: 4, Cols: 64, Rows: 64, Elev: make([]float64, 64*64)}
	// One raised cell; its center must read back exactly, and points
	// farther away must read lower.
	g.Elev[32*64+32] = 1000
	cx := -airspace.FieldHalf + (32+0.5)*4
	cy := -airspace.FieldHalf + (32+0.5)*4
	if got := g.ElevationAt(cx, cy); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("center reads %v", got)
	}
	if got := g.ElevationAt(cx+2, cy); got >= 1000 || got <= 0 {
		t.Fatalf("half-cell offset reads %v, want between 0 and 1000", got)
	}
	if got := g.ElevationAt(cx+8, cy+8); got != 0 {
		t.Fatalf("two cells away reads %v, want 0", got)
	}
}

func TestElevationOutsideFieldIsSeaLevel(t *testing.T) {
	g := testGrid()
	if got := g.ElevationAt(10*airspace.FieldHalf, 0); got != 0 {
		t.Fatalf("far outside reads %v", got)
	}
}

func TestAvoidClimbsIntoClearance(t *testing.T) {
	g := testGrid()
	// An aircraft flying straight at low altitude over the whole field:
	// certain to cross a hill.
	w := &airspace.World{Aircraft: []airspace.Aircraft{{
		ID: 0, X: -100, Y: 0, DX: 600 / airspace.PeriodsPerHour, DY: 0, Alt: 200,
	}}}
	st := Avoid(w, g, 10*DefaultHorizonPeriods, DefaultClearanceFt)
	if st.Violations != 1 || st.Climbs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	a := &w.Aircraft[0]
	// The commanded altitude must clear every sampled point.
	_, violated, _ := requiredAltitude(a, g, 10*DefaultHorizonPeriods, DefaultClearanceFt)
	if violated {
		t.Fatalf("still violating after climb to %v", a.Alt)
	}
}

func TestAvoidLeavesHighTrafficAlone(t *testing.T) {
	g := testGrid()
	w := &airspace.World{Aircraft: []airspace.Aircraft{{
		ID: 0, X: 0, Y: 0, DX: 0.05, DY: 0, Alt: 39000,
	}}}
	before := w.Aircraft[0].Alt
	st := Avoid(w, g, DefaultHorizonPeriods, DefaultClearanceFt)
	if st.Violations != 0 || w.Aircraft[0].Alt != before {
		t.Fatalf("high-altitude aircraft disturbed: %+v alt=%v", st, w.Aircraft[0].Alt)
	}
}

func TestAvoidCUDAMatchesReference(t *testing.T) {
	g := testGrid()
	base := airspace.NewWorld(500, rng.New(3))
	// Push everyone low so the task has work.
	for i := range base.Aircraft {
		base.Aircraft[i].Alt = 500 + float64(i%10)*200
	}
	refW := base.Clone()
	refStats := Avoid(refW, g, DefaultHorizonPeriods, DefaultClearanceFt)

	devW := base.Clone()
	eng := cuda.NewEngine(cuda.TitanXPascal)
	devStats, ks := AvoidCUDA(eng, devW, g, DefaultHorizonPeriods, DefaultClearanceFt)

	if refStats != devStats {
		t.Fatalf("stats differ: ref %+v dev %+v", refStats, devStats)
	}
	for i := range refW.Aircraft {
		if refW.Aircraft[i].Alt != devW.Aircraft[i].Alt {
			t.Fatalf("aircraft %d altitude differs", i)
		}
	}
	if ks.Time <= 0 || ks.TotalOps == 0 {
		t.Fatalf("kernel stats empty: %+v", ks)
	}
}

func TestAvoidCUDADeterministicTime(t *testing.T) {
	g := testGrid()
	base := airspace.NewWorld(300, rng.New(5))
	eng := cuda.NewEngine(cuda.GTX880M)
	_, first := AvoidCUDA(eng, base.Clone(), g, DefaultHorizonPeriods, DefaultClearanceFt)
	for i := 0; i < 3; i++ {
		_, again := AvoidCUDA(eng, base.Clone(), g, DefaultHorizonPeriods, DefaultClearanceFt)
		if again.Time != first.Time {
			t.Fatalf("run %d time %v != %v", i, again.Time, first.Time)
		}
	}
}

func TestAvoidHorizonLimitsWork(t *testing.T) {
	g := testGrid()
	w := airspace.NewWorld(200, rng.New(9))
	short := Avoid(w.Clone(), g, 60, DefaultClearanceFt)
	long := Avoid(w.Clone(), g, 600, DefaultClearanceFt)
	if long.Samples <= short.Samples {
		t.Fatalf("longer horizon did not sample more: %d vs %d", long.Samples, short.Samples)
	}
}
