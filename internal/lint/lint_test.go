package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src/determinism", "repro/internal/tasks", lint.Determinism)
}

// TestDeterminismParexec checks the carve-out: internal/parexec owns
// goroutines and sync primitives, but map iteration stays banned.
func TestDeterminismParexec(t *testing.T) {
	linttest.Run(t, "testdata/src/determinism_parexec", "repro/internal/parexec", lint.Determinism)
}

// TestDeterminismNonDesignated checks the gate: outside the designated
// packages the analyzer reports nothing at all.
func TestDeterminismNonDesignated(t *testing.T) {
	linttest.Run(t, "testdata/src/determinism_clean", "repro/internal/viz", lint.Determinism)
}

func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata/src/noalloc", "repro/internal/tasks", lint.Noalloc)
}

func TestOrderedMerge(t *testing.T) {
	linttest.Run(t, "testdata/src/orderedmerge", "repro/internal/tasks", lint.OrderedMerge)
}

func TestSyncField(t *testing.T) {
	linttest.Run(t, "testdata/src/syncfield", "repro/internal/broadphase", lint.SyncField)
}

// TestSyncFieldNonDesignated checks the gate: by-value sync fields are
// idiomatic for pointer-only structs, so outside the deterministic
// packages (and inside parexec, which owns synchronization) the
// analyzer reports nothing.
func TestSyncFieldNonDesignated(t *testing.T) {
	linttest.Run(t, "testdata/src/syncfield_clean", "repro/internal/serve", lint.SyncField)
	linttest.Run(t, "testdata/src/syncfield_clean", "repro/internal/parexec", lint.SyncField)
}

// TestDirectiveErrors checks that malformed and dangling directives
// are surfaced: a typoed directive must never silently stop enforcing
// its contract. The diagnostics land on the directive comments
// themselves, so this asserts on BuildDirectives directly rather than
// through // want comments.
func TestDirectiveErrors(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "testdata/src/directives/directives.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs := lint.BuildDirectives(fset, []*ast.File{f})
	wantSubstrings := []string{
		`unknown atm: directive kind "nosuchkind"`,
		`atm:noalloc takes no arguments`,
		`atm:allow requires a justification`,
		`atm:allow: unknown rule "nosuchrule"`,
		`atm:noalloc does not attach to any function`,
	}
	if len(dirs.Errors) != len(wantSubstrings) {
		for _, e := range dirs.Errors {
			t.Logf("got: %s: %s", fset.Position(e.Pos), e.Message)
		}
		t.Fatalf("got %d directive errors, want %d", len(dirs.Errors), len(wantSubstrings))
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(dirs.Errors[i].Message, want) {
			t.Errorf("error %d = %q, want substring %q", i, dirs.Errors[i].Message, want)
		}
	}
}

// TestSuiteComplete pins the per-package analyzer roster: the
// vettool's flag protocol and CI both key off these names. The
// interprocedural analyzers (noallocflow, modeledtimeflow,
// stalewaiver) are pinned by TestFlowSuiteComplete.
func TestSuiteComplete(t *testing.T) {
	want := []string{"atmdirective", "determinism", "noalloc", "orderedmerge", "syncfield"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
