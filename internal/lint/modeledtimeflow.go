package lint

import (
	"go/ast"
	"strings"
)

// ModeledTimePackages are the packages that charge modeled device
// time. Methods named Track or DetectResolve in these packages are
// modeled-time roots automatically (they implement the
// platform.Platform contract); additional roots — kernel-launch and
// program entry points — carry //atm:modeled-time.
var ModeledTimePackages = map[string]bool{
	"repro/internal/cuda":     true,
	"repro/internal/ap":       true,
	"repro/internal/mimd":     true,
	"repro/internal/vector":   true,
	"repro/internal/platform": true,
}

// ModeledTimeFlow proves the separation of host timing from modeled
// timing: no function reachable from a modeled-time root may read the
// wall clock. It replaces the original single-package modeledtime
// analyzer — reachability now runs over the whole-module call graph,
// so a platform executor that charges modeled time cannot launder a
// time.Now through a helper in broadphase, telemetry, or any other
// package. Dispatch follows the graph's approximations: interface
// calls fan out to method-set implementations, closures and method
// values are charged at their creation site.
var ModeledTimeFlow = &FlowAnalyzer{
	Name: "modeledtimeflow",
	Doc:  "flag wall-clock calls reachable (across packages) from functions that charge modeled device time",
	Run:  runModeledTimeFlow,
}

func runModeledTimeFlow(pass *FlowPass) error {
	g := pass.Graph

	rootOf := make(map[*Node]*Node)
	parent := make(map[*Node]*Node)
	var queue []*Node
	for _, n := range g.Nodes {
		if n.Pkg == nil || g.InTestFile(n) {
			continue
		}
		isRoot := hasDirective(n, KindModeledTime)
		if !isRoot && ModeledTimePackages[n.Pkg.Path] {
			if fd, ok := n.Decl.(*ast.FuncDecl); ok && fd.Recv != nil &&
				(fd.Name.Name == "Track" || fd.Name.Name == "DetectResolve") {
				isRoot = true
			}
		}
		if isRoot {
			rootOf[n] = n
			queue = append(queue, n)
		}
	}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.To
			if c.Pkg == nil || g.InTestFile(c) {
				continue
			}
			if _, seen := rootOf[c]; !seen {
				rootOf[c] = rootOf[n]
				parent[c] = n
				queue = append(queue, c)
			}
		}
	}

	// Flag wall-clock selector uses in every reachable function. The
	// scan covers only statements owned by the node itself: nested
	// literals are their own nodes, reached (or not) via closure edges.
	for _, n := range g.Nodes {
		root, reached := rootOf[n]
		if !reached || n.Decl == nil {
			continue
		}
		body := funcBody(n.Decl)
		if body == nil {
			continue
		}
		info := n.Pkg.Info
		node := n
		WalkFuncStack(n.Decl, func(x ast.Node, stack []ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Decl {
				return false // separate node
			}
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgNameOf(info, sel.X) == "time" && wallClockFuncs[sel.Sel.Name] {
				if !node.Pkg.Dirs.Allowed(RuleWallClock, sel.Pos(), node.FuncStack()) {
					via := viaChain(node, root, parent)
					pass.Reportf(sel.Pos(), "time.%s is reachable from modeled-time root %s%s; modeled device time must be a pure function of operation tallies, never the host clock (waive with //atm:allow wallclock -- why)", sel.Sel.Name, root.Name(), via)
				}
			}
			return true
		})
	}
	return nil
}

// viaChain renders the call path from root to n (exclusive of both)
// for diagnostics, e.g. " via repro/internal/telemetry.(*Recorder).emit".
func viaChain(n, root *Node, parent map[*Node]*Node) string {
	if n == root {
		return ""
	}
	var hops []string
	for cur := n; cur != nil && cur != root; cur = parent[cur] {
		hops = append(hops, cur.Name())
	}
	// reverse into root→n order
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return " via " + strings.Join(hops, " -> ")
}
