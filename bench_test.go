// Benchmarks regenerating the paper's evaluation artifacts, one per
// figure/table (see DESIGN.md's per-experiment index). Figures 4-7 are
// benchmarked per platform at a representative sweep point; Figures 8-9
// benchmark the measure-and-fit pipeline; the remaining benchmarks
// cover the deadline schedule and the two ablations.
//
// Benchmark time here is host wall time for executing the simulators;
// the modeled device durations the figures report are deterministic
// outputs, not measurements, so -benchtime does not change the figures.
//
// Every benchmark reports allocations: the simulators are expected to
// run allocation-free in steady state, so allocs/op regressions are
// treated as performance bugs. Per-iteration world/frame restores use
// CloneInto on pooled buffers so the harness itself does not allocate
// either.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/airspace"
	"repro/internal/ap"
	"repro/internal/broadphase"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/experiments"
	"repro/internal/parexec"
	"repro/internal/platform"
	"repro/internal/radar"
	"repro/internal/radarnet"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/tasks"
	"repro/internal/terrain"
	"repro/internal/vector"
)

// benchN is the sweep point used for the per-platform benchmarks:
// mid-sweep in Figures 4/6.
const benchN = 4000

func benchWorld(n int) (*airspace.World, *radar.Frame) {
	root := rng.New(2018)
	w := airspace.NewWorld(n, root.Split())
	f := radar.Generate(w, radar.DefaultNoise, root.Split())
	return w, f
}

// benchTrack benchmarks one Task 1 invocation on the named platform.
func benchTrack(b *testing.B, name string, n int) {
	b.Helper()
	b.ReportAllocs()
	p := platform.MustNew(name, 1)
	w, f := benchWorld(n)
	wc, fc := &airspace.World{}, &radar.Frame{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		f.CloneInto(fc)
		b.StartTimer()
		p.Track(wc, fc)
	}
}

// benchDetect benchmarks one Tasks 2+3 invocation on the named platform.
func benchDetect(b *testing.B, name string, n int) {
	b.Helper()
	b.ReportAllocs()
	p := platform.MustNew(name, 1)
	w, _ := benchWorld(n)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		p.DetectResolve(wc)
	}
}

// Figure 4 — Task 1, all platforms.
func BenchmarkFig4_Task1_GeForce9800GT(b *testing.B) { benchTrack(b, platform.GeForce9800GT, benchN) }
func BenchmarkFig4_Task1_GTX880M(b *testing.B)       { benchTrack(b, platform.GTX880M, benchN) }
func BenchmarkFig4_Task1_TitanXPascal(b *testing.B)  { benchTrack(b, platform.TitanXPascal, benchN) }
func BenchmarkFig4_Task1_STARAN(b *testing.B)        { benchTrack(b, platform.STARAN, benchN) }
func BenchmarkFig4_Task1_ClearSpeed(b *testing.B)    { benchTrack(b, platform.ClearSpeed, benchN) }
func BenchmarkFig4_Task1_Xeon16(b *testing.B)        { benchTrack(b, platform.Xeon16, benchN) }

// Figure 5 — Task 1, NVIDIA cards at the deeper sweep point.
func BenchmarkFig5_Task1_GeForce9800GT_8000(b *testing.B) {
	benchTrack(b, platform.GeForce9800GT, 8000)
}
func BenchmarkFig5_Task1_GTX880M_8000(b *testing.B)      { benchTrack(b, platform.GTX880M, 8000) }
func BenchmarkFig5_Task1_TitanXPascal_8000(b *testing.B) { benchTrack(b, platform.TitanXPascal, 8000) }

// Figure 6 — Tasks 2+3, all platforms.
func BenchmarkFig6_Task23_GeForce9800GT(b *testing.B) {
	benchDetect(b, platform.GeForce9800GT, benchN)
}
func BenchmarkFig6_Task23_GTX880M(b *testing.B)      { benchDetect(b, platform.GTX880M, benchN) }
func BenchmarkFig6_Task23_TitanXPascal(b *testing.B) { benchDetect(b, platform.TitanXPascal, benchN) }
func BenchmarkFig6_Task23_STARAN(b *testing.B)       { benchDetect(b, platform.STARAN, benchN) }
func BenchmarkFig6_Task23_ClearSpeed(b *testing.B)   { benchDetect(b, platform.ClearSpeed, benchN) }
func BenchmarkFig6_Task23_Xeon16(b *testing.B)       { benchDetect(b, platform.Xeon16, benchN) }

// Figure 7 — Tasks 2+3, NVIDIA cards at the deeper sweep point.
func BenchmarkFig7_Task23_GeForce9800GT_8000(b *testing.B) {
	benchDetect(b, platform.GeForce9800GT, 8000)
}
func BenchmarkFig7_Task23_GTX880M_8000(b *testing.B) { benchDetect(b, platform.GTX880M, 8000) }
func BenchmarkFig7_Task23_TitanXPascal_8000(b *testing.B) {
	benchDetect(b, platform.TitanXPascal, 8000)
}

// Figures 8 and 9 — the measure-and-curve-fit pipelines.
func BenchmarkFig8_FitPipeline(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.Config{Seed: 2018, Quick: true}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_FitPipeline(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.Config{Seed: 2018, Quick: true}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Table T-DL — a full deadline-accounted major cycle (16 periods of
// Task 1 plus the fused Tasks 2+3) on the two extreme platforms.
func BenchmarkDeadlines_MajorCycle_TitanX(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := platform.MustNew(platform.TitanXPascal, 1)
		sys := core.NewSystem(p, core.Config{N: 2000, Seed: 2018})
		sys.RunMajorCycles(1)
	}
}

func BenchmarkDeadlines_MajorCycle_Xeon16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := platform.MustNew(platform.Xeon16, 1)
		sys := core.NewSystem(p, core.Config{N: 2000, Seed: 2018})
		sys.RunMajorCycles(1)
	}
}

// Table T-DET — repeated identical runs (the determinism check).
func BenchmarkDeterminism_RepeatRun(b *testing.B) {
	b.ReportAllocs()
	p := platform.MustNew(platform.TitanXPascal, 1)
	w, f := benchWorld(2000)
	wc, fc := &airspace.World{}, &radar.Frame{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		f.CloneInto(fc)
		b.StartTimer()
		p.Track(wc, fc)
	}
}

// Table A-KRN — fused versus split Tasks 2+3 kernels.
func BenchmarkKernelSplit_Fused(b *testing.B) {
	b.ReportAllocs()
	eng := cuda.NewEngine(cuda.GeForce9800GT)
	w, _ := benchWorld(2000)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		eng.CheckCollisionPath(wc)
	}
}

func BenchmarkKernelSplit_Split(b *testing.B) {
	b.ReportAllocs()
	eng := cuda.NewEngine(cuda.GeForce9800GT)
	w, _ := benchWorld(2000)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		eng.DetectOnly(wc)
		eng.ResolveOnly(wc)
	}
}

// Table A-BOX — correlation pass-count ablation.
func benchBoxPasses(b *testing.B, passes int) {
	b.Helper()
	b.ReportAllocs()
	root := rng.New(2018)
	w := airspace.NewWorld(2000, root.Split())
	f := radar.Generate(w, 0.8, root.Split())
	wc, fc := &airspace.World{}, &radar.Frame{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		f.CloneInto(fc)
		b.StartTimer()
		tasks.CorrelateN(wc, fc, passes)
	}
}

func BenchmarkBoxPasses_1(b *testing.B) { benchBoxPasses(b, 1) }
func BenchmarkBoxPasses_2(b *testing.B) { benchBoxPasses(b, 2) }
func BenchmarkBoxPasses_3(b *testing.B) { benchBoxPasses(b, 3) }

// Reference implementations, for calibrating the simulators' host cost.
func BenchmarkReference_Task1(b *testing.B) {
	b.ReportAllocs()
	w, f := benchWorld(benchN)
	wc, fc := &airspace.World{}, &radar.Frame{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		f.CloneInto(fc)
		b.StartTimer()
		tasks.Correlate(wc, fc)
	}
}

func BenchmarkReference_Task23(b *testing.B) {
	b.ReportAllocs()
	w, _ := benchWorld(benchN)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		tasks.DetectResolve(wc)
	}
}

// Host-parallel execution (internal/parexec) — the same reference tasks
// driven through the explicit-pool entry points at one worker versus
// every host core, at the mid-sweep and full-capacity points. Results
// are bit-identical at any worker count (see
// internal/platform/workers_test.go); only host wall time and the
// fixed per-dispatch bookkeeping differ.
func benchParExecTask1(b *testing.B, n, workers int) {
	b.Helper()
	b.ReportAllocs()
	pool := parexec.NewPool(workers)
	w, f := benchWorld(n)
	wc, fc := &airspace.World{}, &radar.Frame{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		f.CloneInto(fc)
		b.StartTimer()
		tasks.CorrelateExec(wc, fc, pool)
	}
}

func benchParExecTask23(b *testing.B, n, workers int) {
	b.Helper()
	b.ReportAllocs()
	pool := parexec.NewPool(workers)
	w, _ := benchWorld(n)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		tasks.DetectResolveExec(wc, nil, pool)
	}
}

func BenchmarkParExec_Task1_4000_Serial(b *testing.B) { benchParExecTask1(b, 4000, 1) }
func BenchmarkParExec_Task1_4000_AllCores(b *testing.B) {
	benchParExecTask1(b, 4000, runtime.NumCPU())
}
func BenchmarkParExec_Task1_16000_Serial(b *testing.B) { benchParExecTask1(b, 16000, 1) }
func BenchmarkParExec_Task1_16000_AllCores(b *testing.B) {
	benchParExecTask1(b, 16000, runtime.NumCPU())
}
func BenchmarkParExec_Task23_4000_Serial(b *testing.B) { benchParExecTask23(b, 4000, 1) }
func BenchmarkParExec_Task23_4000_AllCores(b *testing.B) {
	benchParExecTask23(b, 4000, runtime.NumCPU())
}
func BenchmarkParExec_Task23_16000_Serial(b *testing.B) { benchParExecTask23(b, 16000, 1) }
func BenchmarkParExec_Task23_16000_AllCores(b *testing.B) {
	benchParExecTask23(b, 16000, runtime.NumCPU())
}

// Extension — the terrain-avoidance task (related work [11], Section
// 7.2 future work) on the reference path and the CUDA engine.
func BenchmarkTerrain_Reference(b *testing.B) {
	b.ReportAllocs()
	root := rng.New(2018)
	g := terrain.Generate(4, 40, 14000, root.Split())
	w := airspace.NewWorld(benchN, root.Split())
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		terrain.Avoid(wc, g, terrain.DefaultHorizonPeriods, terrain.DefaultClearanceFt)
	}
}

func BenchmarkTerrain_CUDA(b *testing.B) {
	b.ReportAllocs()
	root := rng.New(2018)
	g := terrain.Generate(4, 40, 14000, root.Split())
	w := airspace.NewWorld(benchN, root.Split())
	eng := cuda.NewEngine(cuda.TitanXPascal)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		terrain.AvoidCUDA(eng, wc, g, terrain.DefaultHorizonPeriods, terrain.DefaultClearanceFt)
	}
}

// Extension — the conflict-priority display list: Batcher's bitonic
// network on the CUDA engine vs the AP's min-reduce/step idiom.
func BenchmarkPriority_CUDABitonic(b *testing.B) {
	b.ReportAllocs()
	w, _ := benchWorld(benchN)
	tasks.Detect(w)
	eng := cuda.NewEngine(cuda.TitanXPascal)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		eng.ConflictPriority(wc)
	}
}

func BenchmarkPriority_APMinReduce(b *testing.B) {
	b.ReportAllocs()
	w, _ := benchWorld(benchN)
	tasks.Detect(w)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		m := ap.NewMachine(ap.STARAN, wc.N())
		b.StartTimer()
		ap.PriorityProgram(m, wc)
	}
}

// Extension — the wide-vector machines of Section 7.2.
func BenchmarkVector_Task1_XeonPhi(b *testing.B) {
	b.ReportAllocs()
	m := vector.New(vector.XeonPhi7210)
	w, f := benchWorld(benchN)
	wc, fc := &airspace.World{}, &radar.Frame{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		f.CloneInto(fc)
		b.StartTimer()
		m.Track(wc, fc)
	}
}

func BenchmarkVector_Task23_XeonPhi(b *testing.B) {
	b.ReportAllocs()
	m := vector.New(vector.XeonPhi7210)
	w, _ := benchWorld(benchN)
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		m.DetectResolve(wc)
	}
}

// Broad-phase pruning — one reference Task 2 detection pass per pair
// source (T-BP / results/broadphase.csv). pairChecks/op reports the
// exact pair-evaluation count alongside the wall time, so a single run
// shows both wins. Brute is quadratic and therefore only benchmarked to
// 10k aircraft; at 100k one all-pairs pass costs ~10^10 pair visits,
// minutes of wall time that would measure nothing the 10k point does
// not already show.
func benchDetectWith(b *testing.B, source string, n int) {
	b.Helper()
	b.ReportAllocs()
	w, _ := benchWorld(n)
	src := broadphase.MustNew(source)
	wc := &airspace.World{}
	var checks int
	// One untimed pass grows the source's index and the detect scratch
	// to n aircraft. Every function on the steady-state path is under
	// the //atm:noalloc contract (see internal/tasks's noalloc
	// manifest), so with the cold-path growth hoisted out here the
	// timed loop benches 0 allocs/op.
	w.CloneInto(wc)
	tasks.DetectWith(wc, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		st := tasks.DetectWith(wc, src)
		checks = st.PairChecks
	}
	b.ReportMetric(float64(checks), "pairChecks/op")
}

func BenchmarkBroadphase_Brute_1000(b *testing.B)   { benchDetectWith(b, broadphase.BruteName, 1000) }
func BenchmarkBroadphase_Brute_10000(b *testing.B)  { benchDetectWith(b, broadphase.BruteName, 10000) }
func BenchmarkBroadphase_Grid_1000(b *testing.B)    { benchDetectWith(b, broadphase.GridName, 1000) }
func BenchmarkBroadphase_Grid_10000(b *testing.B)   { benchDetectWith(b, broadphase.GridName, 10000) }
func BenchmarkBroadphase_Grid_100000(b *testing.B)  { benchDetectWith(b, broadphase.GridName, 100000) }
func BenchmarkBroadphase_Sweep_1000(b *testing.B)   { benchDetectWith(b, broadphase.SweepName, 1000) }
func BenchmarkBroadphase_Sweep_10000(b *testing.B)  { benchDetectWith(b, broadphase.SweepName, 10000) }
func BenchmarkBroadphase_Sweep_100000(b *testing.B) { benchDetectWith(b, broadphase.SweepName, 100000) }

// Temporal coherence — the steady-state detection period at the
// mid-sweep point (T-COH / results/coherence.csv). Unlike benchDetect,
// the world is not restored between iterations: it advances one period
// of dead reckoning per op, exactly the motion a persistent broad phase
// sees in a real run, so the incremental lane measures the repair path
// (the first iteration's full build is excluded by a warm-up pass).
// Both lanes use a persistent sweep source; the only difference is the
// coherent mode, so the pair is the rebuild-vs-incremental comparison
// scripts/benchdiff.sh and DESIGN.md §10 cite.
func benchCoherentDetect(b *testing.B, incremental bool) {
	b.Helper()
	b.ReportAllocs()
	w, _ := benchWorld(benchN)
	var src broadphase.PairSource
	if incremental {
		src = broadphase.NewIncrementalSweep()
	} else {
		src = broadphase.MustNew(broadphase.SweepName)
	}
	pool := parexec.NewPool(1)
	advance := func() {
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			a.X += a.DX
			a.Y += a.DY
			airspace.Wrap(a)
		}
	}
	// Warm-up: size every buffer and pay the initial full sort so the
	// timed loop is pure steady state.
	tasks.DetectResolveExec(w, src, pool)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		advance()
		b.StartTimer()
		tasks.DetectResolveExec(w, src, pool)
	}
}

func BenchmarkCoherent_Task23_4000_Rebuild(b *testing.B)     { benchCoherentDetect(b, false) }
func BenchmarkCoherent_Task23_4000_Incremental(b *testing.B) { benchCoherentDetect(b, true) }

// Worker-parallel broad phase + batched pair kernel (T-PS /
// results/parshard.csv) — the same steady-state fused Task 2+3 period
// as benchCoherentDetect, on the sharded table mode composed with the
// coherent sweep: the broad phase builds its pair table across the
// worker pool and the scan runs the branch-free 8-wide kernel. The W1
// lanes price the batched kernel alone (the table build and repair run
// serially); the W8 lanes add the worker-parallel build. Results are
// bit-identical to the scalar lanes at every worker count, so the
// delta against BenchmarkCoherent_Task23_4000_Incremental is pure
// host-time win (scripts/benchdiff.sh reports it as
// parshard_improvement_pct).
func benchParShardDetect(b *testing.B, n, workers int) {
	b.Helper()
	b.ReportAllocs()
	w, _ := benchWorld(n)
	src := broadphase.NewShardedSweep(true)
	pool := parexec.NewPool(workers)
	advance := func() {
		for i := range w.Aircraft {
			a := &w.Aircraft[i]
			a.X += a.DX
			a.Y += a.DY
			airspace.Wrap(a)
		}
	}
	// Warm-up: size the table, scratch and segment buffers and pay the
	// initial full sort so the timed loop is pure steady state. A few
	// moving passes let the table's headroom policy settle at the
	// workload's drift rate.
	for i := 0; i < 4; i++ {
		tasks.DetectResolveExec(w, src, pool)
		advance()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		advance()
		b.StartTimer()
		tasks.DetectResolveExec(w, src, pool)
	}
}

func BenchmarkParShard_Task23_4000_W1(b *testing.B)  { benchParShardDetect(b, 4000, 1) }
func BenchmarkParShard_Task23_4000_W8(b *testing.B)  { benchParShardDetect(b, 4000, 8) }
func BenchmarkParShard_Task23_10000_W1(b *testing.B) { benchParShardDetect(b, 10000, 1) }
func BenchmarkParShard_Task23_10000_W8(b *testing.B) { benchParShardDetect(b, 10000, 8) }

// Extension — radar-network report generation (multi-site coverage,
// cones of silence, dropouts).
func BenchmarkRadarNet_Generate(b *testing.B) {
	b.ReportAllocs()
	net := radarnet.NewGrid(4, 4, 80, 2, 0.1, radar.DefaultNoise)
	w, _ := benchWorld(benchN)
	r := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Generate(w, r)
	}
}

// benchScenarioGenerate benchmarks world generation for one scenario
// family — the //atm:noalloc fill loops plus the one World allocation.
// Generation is pure CPU over (spec, n, rng), so these numbers are
// stable enough for the bench-diff gate.
func benchScenarioGenerate(b *testing.B, text string, n int) {
	b.Helper()
	b.ReportAllocs()
	spec, err := scenario.ParseSpec(text)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Generate(n, rng.New(2018))
	}
}

func BenchmarkScenario_Generate_Uniform(b *testing.B) { benchScenarioGenerate(b, "uniform", 1000) }
func BenchmarkScenario_Generate_Circle(b *testing.B)  { benchScenarioGenerate(b, "circle", 1000) }
func BenchmarkScenario_Generate_Streams(b *testing.B) { benchScenarioGenerate(b, "streams", 1000) }
func BenchmarkScenario_Generate_Dense(b *testing.B)   { benchScenarioGenerate(b, "dense", 1000) }
func BenchmarkScenario_Generate_Layers(b *testing.B)  { benchScenarioGenerate(b, "layers", 1000) }
func BenchmarkScenario_Generate_Burst(b *testing.B)   { benchScenarioGenerate(b, "burst", 1000) }

// benchScenarioDetect benchmarks Tasks 2+3 under structured traffic:
// the conflict-dense families load the detect/resolve kernels very
// differently from the paper's uniform world at the same N.
func benchScenarioDetect(b *testing.B, text string, n int) {
	b.Helper()
	b.ReportAllocs()
	spec, err := scenario.ParseSpec(text)
	if err != nil {
		b.Fatal(err)
	}
	p := platform.MustNew(platform.TitanXPascal, 1)
	w := spec.Generate(n, rng.New(2018))
	wc := &airspace.World{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.CloneInto(wc)
		b.StartTimer()
		p.DetectResolve(wc)
	}
}

func BenchmarkScenario_Task23_Circle_1000(b *testing.B) { benchScenarioDetect(b, "circle", 1000) }
func BenchmarkScenario_Task23_Dense_1000(b *testing.B)  { benchScenarioDetect(b, "dense", 1000) }
