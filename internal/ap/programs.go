package ap

import (
	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/radar"
	"repro/internal/tasks"
)

// databaseFields is the number of wide words loaded per aircraft record
// when the flight database enters PE memory.
const databaseFields = 10

// TrackProgram is the AP implementation of Task 1. The control unit
// walks the radar list; for each still-unmatched radar it broadcasts
// the measured position and performs one associative search over the
// whole aircraft database per bounding-box pass — the constant-time
// "search, count responders, step" idiom that makes the AP linear in
// the number of radars regardless of database size.
//
// Ambiguity is arbitrated per radar over the full responder set (the
// hardware sees all responders at once), which agrees with the
// sequential reference everywhere except the rare scan-order-dependent
// tail cases of Algorithm 1; on unambiguous geometry the results are
// identical.
//
//atm:modeled-time
func TrackProgram(m *Machine, w *airspace.World, f *radar.Frame) tasks.CorrelateStats {
	var st tasks.CorrelateStats
	ac := w.Aircraft

	m.mark("ap.load+expected", 0)
	m.LoadDatabase(databaseFields)

	// Expected positions and match-state reset: one wide operation.
	m.ParallelOp(4, func(i int) {
		a := &ac[i]
		a.ExpX = a.X + a.DX
		a.ExpY = a.Y + a.DY
		a.RMatch = airspace.MatchNone
	})
	f.Reset()
	m.Scalar(f.N())

	// matchedRadar[k] remembers which radar aircraft k is paired with,
	// so a withdrawal can release that radar for a later pass. It lives
	// on the machine so steady-state invocations allocate nothing.
	if cap(m.matchedRadar) < len(ac) {
		m.matchedRadar = make([]int32, len(ac))
	}
	matchedRadar := m.matchedRadar[:len(ac)]
	for i := range matchedRadar {
		matchedRadar[i] = -1
	}

	boxHalf := tasks.InitialBoxHalf
	for pass := 0; pass < tasks.BoxPasses; pass++ {
		m.mark("ap.boxpass", int32(pass))
		pending := 0
		for j := range f.Reports {
			if f.Reports[j].MatchWith == radar.Unmatched {
				pending++
			}
		}
		if pass < tasks.BoxPasses {
			st.PassRadars[pass] = pending
		}
		if pending == 0 {
			break
		}

		for j := range f.Reports {
			rep := &f.Reports[j]
			m.Scalar(2)
			if rep.MatchWith != radar.Unmatched {
				continue
			}
			m.Broadcast(3) // rx, ry, boxHalf

			// Associative search: eligible aircraft whose expected
			// position box contains the radar.
			m.Search(6, func(i int) bool {
				a := &ac[i]
				if a.RMatch == airspace.MatchDiscarded {
					return false
				}
				return rep.RX > a.ExpX-boxHalf && rep.RX < a.ExpX+boxHalf &&
					rep.RY > a.ExpY-boxHalf && rep.RY < a.ExpY+boxHalf
			})
			st.Comparisons += len(ac)

			// Withdraw responders that are already paired with another
			// radar (Algorithm 1 line 8) and release those radars.
			m.MaskAnd(func(i int) bool { return ac[i].RMatch == airspace.MatchOne })
			for {
				k := m.FirstResponder()
				if k < 0 {
					break
				}
				ac[k].RMatch = airspace.MatchDiscarded
				st.WithdrawnAircraft++
				if r := matchedRadar[k]; r >= 0 {
					f.Reports[r].MatchWith = radar.Unmatched
					matchedRadar[k] = -1
					m.Scalar(2)
				}
				m.ClearResponder(k)
			}

			// Re-search for the free responders and resolve the radar.
			m.Search(6, func(i int) bool {
				a := &ac[i]
				if a.RMatch != airspace.MatchNone {
					return false
				}
				return rep.RX > a.ExpX-boxHalf && rep.RX < a.ExpX+boxHalf &&
					rep.RY > a.ExpY-boxHalf && rep.RY < a.ExpY+boxHalf
			})
			switch c := m.CountResponders(); {
			case c == 1:
				k := m.FirstResponder()
				ac[k].RMatch = airspace.MatchOne
				rep.MatchWith = int32(k)
				matchedRadar[k] = int32(j)
				m.Scalar(3)
			case c >= 2:
				// Two or more aircraft respond: the radar is ambiguous
				// and discarded (Algorithm 1 line 9).
				rep.MatchWith = radar.Discarded
				st.DiscardedRadars++
				m.Scalar(1)
			}
		}
		boxHalf *= 2
	}

	// Commit: everyone dead-reckons, matched aircraft take the measured
	// position, then field re-entry. The radar scatter is a sequential
	// control-unit loop (radar data lives with the control unit).
	m.mark("ap.commit", 0)
	m.ParallelOp(2, func(i int) {
		a := &ac[i]
		a.X, a.Y = a.ExpX, a.ExpY
	})
	for j := range f.Reports {
		rep := &f.Reports[j]
		m.Scalar(2)
		switch rep.MatchWith {
		case radar.Unmatched:
			st.UnmatchedRadars++
		case radar.Discarded:
		default:
			if ac[rep.MatchWith].RMatch == airspace.MatchOne {
				a := &ac[rep.MatchWith]
				a.X, a.Y = rep.RX, rep.RY
				st.Matched++
				m.Scalar(2)
			}
		}
	}
	m.ParallelOp(4, func(i int) { airspace.Wrap(&ac[i]) })
	return st
}

// apScan evaluates one candidate course for track aircraft idx against
// the whole database in one associative pass: a broadcast of the track
// record, a wide evaluation of Equations 1-6 on every PE, and a
// constant-time min-reduction over the critical responders. Semantics
// match tasks.scan exactly (min over strict improvements, lowest index
// wins ties).
//
// When a broadphase source is supplied, the control unit scatters the
// candidate flags into PE memory before the search and the responder
// mask is additionally narrowed to candidates. An associative search is
// constant-time over all PEs regardless of the mask, so pruning does
// not shorten the wide operations — it trims PairChecks (and the
// control-unit work those would imply on other machines), which is the
// honest statement of what a broad phase buys a true associative
// processor: nothing on the wide path. Exactness is unaffected: pairs
// outside a candidate set have tmin >= SafeTime and could never survive
// the criticality mask anyway.
// In coherent mode (cols non-nil) the PE-memory reads come from the
// machine's SoA mirror instead of the []Aircraft records: same values
// (the mirror is refreshed each program run and updated at heading
// commits), so the responder masks and reductions are bit-identical.
func apScan(m *Machine, w *airspace.World, idx int, vx, vy float64, st *tasks.DetectStats, src broadphase.PairSource, tab *broadphase.PairTable, cols *airspace.Columns) (earliest float64, with int32, critical bool) {
	ac := w.Aircraft
	track := &ac[idx]
	m.Broadcast(5) // x, y, vx, vy, alt

	// tmin per PE, computed by the wide Batcher evaluation.
	// The slice is scratch PE memory; allocate once per machine.
	if len(m.scratch) < len(ac) {
		m.scratch = make([]float64, len(ac))
	}
	tm := m.scratch

	var cand []int32
	if src != nil {
		if tab != nil {
			// Sharded source: the scatter reads the pre-built table slice
			// — the identical candidate set a fresh query would emit.
			cand = tab.Candidates(idx)
		} else {
			cand = src.AppendCandidates(m.candBuf[:0], w, track)
			m.candBuf = cand
		}
		if len(m.candMask) < len(ac) {
			m.candMask = make([]bool, len(ac))
		}
		for _, p := range cand {
			m.candMask[p] = true
		}
		// Control-unit scatter of the candidate flags into PE memory.
		m.Scalar(len(cand))
	}

	if cols != nil {
		talt := cols.Alt[idx]
		m.Search(2, func(p int) bool {
			if src != nil && !m.candMask[p] {
				return false
			}
			return p != idx && tasks.AltOverlapAt(talt, cols.Alt[p])
		})
	} else {
		m.Search(2, func(p int) bool {
			if src != nil && !m.candMask[p] {
				return false
			}
			return p != idx && tasks.AltOverlap(track, &ac[p])
		})
	}
	if src != nil {
		for _, p := range cand {
			m.candMask[p] = false
		}
	}
	checks := 0
	for _, r := range m.Mask() {
		if r {
			checks++
		}
	}
	st.PairChecks += checks

	// Wide evaluation of Equations 1-6 (the 4 divisions, the interval
	// intersection and the horizon clip): ~14 word operations.
	if cols != nil {
		tx, ty := cols.X[idx], cols.Y[idx]
		m.ParallelOp(14, func(p int) {
			if !m.mask[p] {
				return
			}
			tmin, tmax, ok := tasks.PairConflictAt(tx, ty, vx, vy, cols.X[p], cols.Y[p], cols.DX[p], cols.DY[p])
			if ok && tmin < tmax {
				tm[p] = tmin
			} else {
				tm[p] = airspace.SafeTime
			}
		})
	} else {
		m.ParallelOp(14, func(p int) {
			if !m.mask[p] {
				return
			}
			tmin, tmax, ok := tasks.PairConflict(track.X, track.Y, vx, vy, &ac[p])
			if ok && tmin < tmax {
				tm[p] = tmin
			} else {
				tm[p] = airspace.SafeTime
			}
		})
	}
	m.MaskAnd(func(p int) bool { return tm[p] < airspace.SafeTime })

	earliest, arg := m.MinReduce(airspace.SafeTime, func(p int) float64 { return tm[p] })
	with = airspace.NoConflict
	if arg >= 0 {
		with = int32(arg)
	}
	return earliest, with, earliest < airspace.CriticalTime
}

// DetectResolveProgram is the AP implementation of Tasks 2-3: the
// control unit visits each aircraft in turn; detection of that
// aircraft against the entire database is one constant-time associative
// pass, so the whole task is linear in N on the ideal AP. Resolution
// rotates the course on the control unit and re-runs the pass.
//
// Control flow is identical to the sequential reference, so results
// agree bit-for-bit on any traffic.
//
//atm:modeled-time
func DetectResolveProgram(m *Machine, w *airspace.World) tasks.DetectStats {
	return DetectResolveProgramWith(m, w, nil)
}

// DetectResolveProgramWith is DetectResolveProgram with an optional
// broadphase pair source (nil keeps the paper's full associative scan).
// The in-place course commits of the sequential control flow are safe
// under pruning because the broadphase envelopes depend only on speed,
// which rotation preserves (see package broadphase).
//
//atm:modeled-time
func DetectResolveProgramWith(m *Machine, w *airspace.World, src broadphase.PairSource) tasks.DetectStats {
	var st tasks.DetectStats
	m.mark("ap.load", 0)
	m.LoadDatabase(databaseFields)
	var cols *airspace.Columns
	if im := broadphase.MaintainerOf(src); im != nil && im.Incremental() {
		// Coherent mode: the wide scans read the machine's SoA mirror,
		// and an incremental source repairs its order from it. The
		// cycle charge is identical to the rebuild path; only the span
		// name reports which path ran.
		cols = &m.cols
		cols.FillFrom(w)
		name := "ap.index.rebuild"
		if cp, ok := im.(broadphase.ColumnsPreparer); ok {
			cp.PrepareColumns(cols)
		} else {
			src.Prepare(w)
		}
		if im.LastPrepareIncremental() {
			name = "ap.index.update"
		}
		m.mark(name, 0)
		// Control-unit index build over the database.
		m.Scalar(w.N())
	} else if src != nil {
		src.Prepare(w)
		// Control-unit index build over the database.
		m.Scalar(w.N())
	}
	// A sharded source materializes the candidate table once (serial on
	// the control unit: the AP models no host worker pool); the per-PE
	// scatter then reads table slices instead of re-querying, with
	// identical candidates and cycle charges.
	var tab *broadphase.PairTable
	if ts := broadphase.TableOf(src); ts != nil {
		ts.SetPool(nil)
		tab = ts.PrepareTable()
	}
	m.mark("ap.scanresolve", 0)
	ac := w.Aircraft
	for i := range ac {
		track := &ac[i]
		track.ResetConflict()
		m.Scalar(4)
		tmin, with, critical := apScan(m, w, i, track.DX, track.DY, &st, src, tab, cols)
		if !critical {
			continue
		}
		st.Conflicts++
		tasks.MarkConflict(w, track, with, tmin)

		base := geom.Vec2{X: track.DX, Y: track.DY}
		resolved := false
		for _, deg := range tasks.RotationSchedule() {
			st.Rotations++
			m.Scalar(8) // rotate on the control unit
			v := base.Rotate(deg)
			track.BatX, track.BatY = v.X, v.Y
			tmin, with, critical = apScan(m, w, i, v.X, v.Y, &st, src, tab, cols)
			if !critical {
				track.DX, track.DY = v.X, v.Y
				if cols != nil {
					cols.SetVel(i, v.X, v.Y)
				}
				track.ResetConflict()
				st.Resolved++
				resolved = true
				break
			}
			tasks.MarkConflict(w, track, with, tmin)
		}
		if !resolved {
			st.Unresolved++
		}
	}
	return st
}
