package cuda

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/parexec"
	"repro/internal/radar"
	"repro/internal/tasks"
)

// Abstract op counts charged per unit of kernel work. The values
// approximate the instruction mix of the corresponding CUDA code paths
// (loads, compares, the four divisions of Equations 1-4, ...); the
// figures only depend on their relative magnitudes.
const (
	opsExpected  = 6  // expected-position update per aircraft
	opsBoxCheck  = 10 // one bounding-box test (4 compares + indexing)
	opsClaim     = 8  // one atomic claim + bookkeeping
	opsResolveAC = 6  // per-aircraft claim arbitration
	opsFinalize  = 10 // per-radar match finalization
	opsCommit    = 8  // committing a radar position
	opsWrap      = 6  // field re-entry check
	opsPairCheck = 40 // Equations 1-6 for one pair (4 div, 8 mul/add, compares)
	opsRotate    = 14 // velocity rotation (sin/cos amortized, 4 mul/add)
	opsSnapshot  = 6  // building the velocity snapshot entry
	// opsIndexBuild is the per-aircraft charge of the opt-in broadphase
	// index build (envelope computation plus cell/interval insertion).
	opsIndexBuild = 12
)

// Record sizes used for the transfer model, matching the paper's
// global-memory structs: the drone record has 10 fields plus ids, the
// radar record a coordinate pair and a match word.
const (
	aircraftRecordBytes = 88
	radarRecordBytes    = 20
)

// deviceState mirrors the paper's global-memory arrays for one launch
// sequence. Mutable cross-thread state is held in atomics so kernels
// are race-free under the engine's real concurrency.
type deviceState struct {
	w *airspace.World
	f *radar.Frame

	// Correlation claims: acClaims[p] counts the radars whose unique
	// box candidate is aircraft p this pass; radarHits/radarCand hold
	// each radar's in-box census for the current pass.
	acClaims  []int32
	radarHits []int32
	radarCand []int32

	// Snapshot of committed courses for CheckCollisionPath, in column
	// (SoA) form: threads read these dense arrays while writing
	// proposed courses to newDX/newDY.
	snap         airspace.Columns
	newDX, newDY []float64
	resolved     []int32

	// src, when set, prunes the pair scan to its candidate sets; the
	// all-pairs kernel of the paper is the src == nil path. tab, set
	// when src has the sharded table mode, holds the candidate table
	// built once per launch sequence; every probe then serves from it
	// bit-identically (candidate sets depend only on positions and
	// speeds, and resolution only rotates courses).
	src broadphase.PairSource
	tab *broadphase.PairTable

	// candBufs are per-host-worker candidate buffers for the pruned
	// scan, indexed by Thread.Worker.
	candBufs []candBuf

	// Aggregate task counters (atomic).
	conflicts, rotations, resolvedCount, unresolvedCount, pairChecks int64
}

// candBuf is one worker's candidate buffer, padded so neighbouring
// workers' slice headers don't share a cache line.
type candBuf struct {
	cand []int32
	_    [40]byte
}

// grow returns s resized for len(int32 slices) n, reusing capacity.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// TrackResult reports one TrackDrone invocation.
type TrackResult struct {
	Kernels []KernelStats
	// Matched is the number of aircraft updated from a radar position.
	Matched int
	// Time is the total modeled device time including transfers.
	Time, TransferTime time.Duration
}

// Engine binds a Device to the ATM kernels and owns the persistent
// device-resident aircraft array, as the paper's program keeps the
// drone struct in global memory across the whole run. The device-state
// arrays are engine-owned scratch reused across invocations (an Engine
// is, like the paper's program, a sequential launch pipeline), so a
// steady-state period performs no per-launch allocations.
type Engine struct {
	dev   *Device
	src   broadphase.PairSource
	state deviceState
}

// resetState prepares the engine's reusable device state for a new
// launch sequence against w (and f, for Task 1).
func (e *Engine) resetState(w *airspace.World, f *radar.Frame) *deviceState {
	s := &e.state
	s.w, s.f = w, f
	s.acClaims = growInt32(s.acClaims, w.N())
	if f != nil {
		s.radarHits = growInt32(s.radarHits, f.N())
		s.radarCand = growInt32(s.radarCand, f.N())
	}
	s.src = nil
	s.tab = nil
	s.conflicts, s.rotations, s.resolvedCount, s.unresolvedCount, s.pairChecks = 0, 0, 0, 0, 0
	return s
}

// NewEngine returns an ATM kernel engine on the given device profile.
func NewEngine(p Profile) *Engine { return &Engine{dev: NewDevice(p)} }

// Device exposes the underlying execution engine.
func (e *Engine) Device() *Device { return e.dev }

// Name returns the device name.
func (e *Engine) Name() string { return e.dev.Profile.Name }

// SetPairSource installs an opt-in broadphase pair source for the
// collision kernels (nil restores the paper's all-pairs scan). The
// modeled op counts then reflect the pruned pair enumeration plus an
// index-build kernel per invocation.
func (e *Engine) SetPairSource(src broadphase.PairSource) { e.src = src }

// SetWorkers pins the host worker count that executes kernel blocks
// (n <= 0 restores the process-default pool). Modeled device time is a
// commutative fold over per-thread charges and is identical at any
// worker count.
func (e *Engine) SetWorkers(n int) { e.dev.SetWorkers(n) }

// TrackDrone performs Task 1: it uploads the period's radar frame,
// computes expected positions, runs the multi-pass bounding-box
// correlation with commutative atomic claims, commits matched radar
// positions and applies field re-entry. It mutates w and f and returns
// the kernel accounts and modeled time.
//
// The claim scheme differs from the sequential reference only in how
// ambiguous geometry is arbitrated: instead of order-dependent
// claim/release chains (which are unavoidably racy on real hardware —
// the paper leans on "variables to check if an aircraft has already
// been found"), each pass takes a census (radarHits, acClaims) and then
// applies the paper's discard rules to the census. The census is
// commutative, so the outcome is independent of thread interleaving:
// a radar with two in-box aircraft is discarded, an aircraft claimed by
// two radars is withdrawn — the same rules, arbitrated per pass instead
// of per scan step.
//
//atm:modeled-time
//atm:allow atomic -- claim counters and the matched tally are commutative sums read only after the launch barrier; the per-pass census arbitration makes the outcome interleaving-independent
func (e *Engine) TrackDrone(w *airspace.World, f *radar.Frame) TrackResult {
	s := e.resetState(w, f)
	res := TrackResult{}
	n := w.N()
	r := f.N()

	// Host -> device: the shuffled radar frame (the drone array is
	// device-resident; the paper copies radar every period).
	res.TransferTime += e.dev.TransferTime(r * radarRecordBytes)

	ac := w.Aircraft
	reps := f.Reports

	// Phase 0: expected positions and state reset, one thread per
	// aircraft.
	res.add(e.dev.Launch("expected", n, func(t *Thread) {
		a := &ac[t.ID]
		a.ExpX = a.X + a.DX
		a.ExpY = a.Y + a.DY
		a.RMatch = airspace.MatchNone
		s.acClaims[t.ID] = 0
		t.Ops(opsExpected)
		t.Mem(aircraftRecordBytes)
	}))

	boxHalf := tasks.InitialBoxHalf
	for pass := 0; pass < tasks.BoxPasses; pass++ {
		if pass > 0 {
			// Clear the previous pass's claim counters. Done as its own
			// aircraft-indexed kernel so that no two radar threads ever
			// write the same counter.
			res.add(e.dev.Launch("resetClaims", n, func(t *Thread) {
				s.acClaims[t.ID] = 0
				t.Ops(1)
			}))
		}
		// Census: each radar thread scans every still-eligible aircraft
		// (the O(N^2) heart of Task 1).
		res.add(e.dev.Launch("census", r, func(t *Thread) {
			rep := &reps[t.ID]
			s.radarHits[t.ID] = 0
			s.radarCand[t.ID] = -1
			if rep.MatchWith != radar.Unmatched {
				return
			}
			hits := int32(0)
			cand := int32(-1)
			for p := range ac {
				a := &ac[p]
				if a.RMatch == airspace.MatchDiscarded || a.RMatch == airspace.MatchOne {
					continue
				}
				t.Ops(opsBoxCheck)
				if rep.RX > a.ExpX-boxHalf && rep.RX < a.ExpX+boxHalf &&
					rep.RY > a.ExpY-boxHalf && rep.RY < a.ExpY+boxHalf {
					hits++
					cand = a.ID
					if hits > 1 {
						break
					}
				}
			}
			s.radarHits[t.ID] = hits
			s.radarCand[t.ID] = cand
			t.Mem(radarRecordBytes)
		}))

		// Claim: radars with exactly one candidate claim it atomically;
		// radars that saw two or more aircraft are discarded (-2).
		res.add(e.dev.Launch("claim", r, func(t *Thread) {
			rep := &reps[t.ID]
			if rep.MatchWith != radar.Unmatched {
				return
			}
			t.Ops(opsClaim)
			switch {
			case s.radarHits[t.ID] >= 2:
				rep.MatchWith = radar.Discarded
			case s.radarHits[t.ID] == 1:
				atomic.AddInt32(&s.acClaims[s.radarCand[t.ID]], 1)
			}
		}))

		// Arbitrate: aircraft claimed by two or more radars are
		// withdrawn from correlation (-1), per Algorithm 1 line 8.
		res.add(e.dev.Launch("arbitrate", n, func(t *Thread) {
			t.Ops(opsResolveAC)
			if s.acClaims[t.ID] >= 2 && ac[t.ID].RMatch == airspace.MatchNone {
				ac[t.ID].RMatch = airspace.MatchDiscarded
			}
		}))

		// Finalize: a radar whose unique candidate survived arbitration
		// becomes a match; contested radars return to the pool for the
		// next, doubled box.
		res.add(e.dev.Launch("finalize", r, func(t *Thread) {
			rep := &reps[t.ID]
			if rep.MatchWith != radar.Unmatched || s.radarHits[t.ID] != 1 {
				return
			}
			t.Ops(opsFinalize)
			cand := s.radarCand[t.ID]
			if s.acClaims[cand] == 1 && ac[cand].RMatch == airspace.MatchNone {
				// claims == 1 guarantees this thread is the only radar
				// whose unique candidate is cand, so the write is
				// race-free.
				ac[cand].RMatch = airspace.MatchOne
				rep.MatchWith = cand
			}
		}))

		boxHalf *= 2
	}

	// Commit: every aircraft takes its expected position; matched
	// radars overwrite it with the measured position; then re-entry.
	res.add(e.dev.Launch("commitExpected", n, func(t *Thread) {
		a := &ac[t.ID]
		a.X, a.Y = a.ExpX, a.ExpY
		t.Ops(opsCommit)
	}))
	var matched int64
	res.add(e.dev.Launch("commitRadar", r, func(t *Thread) {
		rep := &reps[t.ID]
		t.Ops(opsCommit)
		if rep.MatchWith >= 0 && ac[rep.MatchWith].RMatch == airspace.MatchOne {
			a := &ac[rep.MatchWith]
			a.X, a.Y = rep.RX, rep.RY
			atomic.AddInt64(&matched, 1)
		}
	}))
	res.add(e.dev.Launch("wrap", n, func(t *Thread) {
		t.Ops(opsWrap)
		airspace.Wrap(&ac[t.ID])
	}))

	// Device -> host: refreshed positions for the display/host side.
	res.TransferTime += e.dev.TransferTime(n * 16)
	res.Matched = int(matched)
	res.Time += res.TransferTime
	return res
}

func (r *TrackResult) add(st KernelStats) {
	r.Kernels = append(r.Kernels, st)
	r.Time += st.Time
}

// DetectResult reports one CheckCollisionPath invocation.
type DetectResult struct {
	Kernels []KernelStats
	Stats   tasks.DetectStats
	// Time is the modeled device time including transfers; for the
	// combined kernel the transfer happens once (the paper's stated
	// reason for fusing Tasks 2 and 3).
	Time, TransferTime time.Duration
}

func (r *DetectResult) add(st KernelStats) {
	r.Kernels = append(r.Kernels, st)
	r.Time += st.Time
}

// CheckCollisionPath performs Tasks 2 and 3 in one fused kernel, as the
// paper does: each thread owns one track aircraft, scans every other
// aircraft with Equations 1-6 against a snapshot of committed courses,
// and, when a critical conflict is found, probes rotated headings
// (±5°..±30°) until one is conflict-free. Proposed courses are written
// to a private array and committed by a final kernel, so threads never
// write another thread's aircraft — the race the paper guards against
// is excluded by construction.
//
// Because every thread reads the same pre-kernel snapshot, two mutually
// conflicting aircraft both maneuver relative to each other's old
// course. The sequential reference instead lets the second aircraft see
// the first one's fix. Both behaviours are valid instances of the
// paper's algorithm; residual conflicts are caught on the next major
// cycle (the paper: "sometimes the path could fix itself based on the
// movement of the plane to collide with").
//
//atm:modeled-time
func (e *Engine) CheckCollisionPath(w *airspace.World) DetectResult {
	res := DetectResult{}
	s := e.prepareDetect(w, &res)
	e.detectResolveKernel(w, s, &res, true)
	e.commitCourses(w, s, &res)
	res.TransferTime += e.dev.TransferTime(w.N() * 8) // conflict flags back to host
	res.Time += res.TransferTime
	res.Stats = s.stats()
	return res
}

// DetectOnly runs Task 2 as its own kernel (no resolution), returning
// conflicts marked on the aircraft. Used by the split-kernel ablation.
//
//atm:modeled-time
func (e *Engine) DetectOnly(w *airspace.World) DetectResult {
	res := DetectResult{}
	s := e.prepareDetect(w, &res)
	e.detectResolveKernel(w, s, &res, false)
	// Split pipeline: detection results must round-trip to the host
	// before the resolution kernel can be launched.
	res.TransferTime += e.dev.TransferTime(w.N() * aircraftRecordBytes)
	res.Time += res.TransferTime
	res.Stats = s.stats()
	return res
}

// ResolveOnly runs Task 3 as its own kernel over aircraft already
// flagged by DetectOnly. Used by the split-kernel ablation.
//
//atm:modeled-time
func (e *Engine) ResolveOnly(w *airspace.World) DetectResult {
	res := DetectResult{}
	// Host -> device: the flagged aircraft state comes back down.
	res.TransferTime += e.dev.TransferTime(w.N() * aircraftRecordBytes)
	s := e.prepareDetect(w, &res)
	e.resolveKernel(w, s, &res)
	e.commitCourses(w, s, &res)
	res.TransferTime += e.dev.TransferTime(w.N() * 8)
	res.Time += res.TransferTime
	res.Stats = s.stats()
	return res
}

// prepareDetect snapshots committed courses into device arrays.
func (e *Engine) prepareDetect(w *airspace.World, res *DetectResult) *deviceState {
	n := w.N()
	s := e.resetState(w, nil)
	s.snap.Resize(n)
	s.newDX = growFloat64(s.newDX, n)
	s.newDY = growFloat64(s.newDY, n)
	s.resolved = growInt32(s.resolved, n)
	if nw := e.dev.Workers(); len(s.candBufs) < nw {
		s.candBufs = append(s.candBufs[:cap(s.candBufs)], make([]candBuf, nw-cap(s.candBufs))...)
	}
	ac := w.Aircraft
	res.add(e.dev.Launch("snapshot", n, func(t *Thread) {
		a := &ac[t.ID]
		s.snap.X[t.ID] = a.X
		s.snap.Y[t.ID] = a.Y
		s.snap.DX[t.ID] = a.DX
		s.snap.DY[t.ID] = a.DY
		s.snap.Alt[t.ID] = a.Alt
		s.newDX[t.ID] = a.DX
		s.newDY[t.ID] = a.DY
		s.resolved[t.ID] = 0
		t.Ops(opsSnapshot)
		t.Mem(aircraftRecordBytes)
	}))
	if e.src != nil {
		// Host-side index build over the committed snapshot, modeled as
		// one launch of per-aircraft insertion work. An incremental
		// source builds straight from the snapshot columns and reports
		// whether it repaired in place; only the span name changes —
		// the modeled charge is identical in both modes, as the
		// bit-identity contract requires.
		name := "broadphase"
		if m := broadphase.MaintainerOf(e.src); m != nil && m.Incremental() {
			if cp, ok := m.(broadphase.ColumnsPreparer); ok {
				cp.PrepareColumns(&s.snap)
			} else {
				e.src.Prepare(w)
			}
			if m.LastPrepareIncremental() {
				name = "broadphase.update"
			} else {
				name = "broadphase.rebuild"
			}
		} else {
			e.src.Prepare(w)
		}
		s.src = e.src
		// A sharded source additionally materializes the candidate
		// table on the host workers; the modeled charge is unchanged
		// (the launch below), as bit-identity requires.
		if ts := broadphase.TableOf(e.src); ts != nil {
			ts.SetPool(parexec.Resolve(e.dev.pool))
			s.tab = ts.PrepareTable()
		}
		res.add(e.dev.Launch(name, n, func(t *Thread) {
			t.Ops(opsIndexBuild)
			t.Mem(16)
		}))
	}
	return s
}

// scanAcc accumulates one thread's candidate scan: the earliest
// critical conflict seen so far plus the op-charging tallies. It lives
// on the scanning thread's stack so the inner fold stays allocation-
// free at any candidate count.
type scanAcc struct {
	earliest float64
	with     int32
	checks   int
	visited  int
}

// scanOne folds candidate aircraft p into acc for track aircraft i
// flying course (vx, vy).
//
//atm:noalloc
func (s *deviceState) scanOne(acc *scanAcc, i, p int, vx, vy float64) {
	acc.visited++
	if p == i || math.Abs(s.snap.Alt[p]-s.snap.Alt[i]) >= airspace.AltBandFeet {
		return
	}
	acc.checks++
	tmin, tmax, ok := tasks.PairConflictAt(s.snap.X[i], s.snap.Y[i], vx, vy,
		s.snap.X[p], s.snap.Y[p], s.snap.DX[p], s.snap.DY[p])
	if ok && tmin < tmax && tmin < acc.earliest {
		acc.earliest = tmin
		acc.with = int32(p)
	}
}

// scanSnapshot evaluates one candidate course for track aircraft i
// against the snapshot and returns the earliest critical conflict.
//
//atm:noalloc
//atm:allow atomic -- pairChecks is an order-independent sum read only after the launch barrier
func (s *deviceState) scanSnapshot(t *Thread, i int, vx, vy float64) (earliest float64, with int32, critical bool) {
	acc := scanAcc{earliest: airspace.SafeTime, with: airspace.NoConflict}
	if s.src == nil {
		for p := 0; p < s.snap.N(); p++ {
			s.scanOne(&acc, i, p, vx, vy)
		}
	} else if s.tab != nil {
		for _, p := range s.tab.Candidates(i) {
			s.scanOne(&acc, i, int(p), vx, vy)
		}
	} else {
		buf := &s.candBufs[t.Worker]
		buf.cand = s.src.AppendCandidates(buf.cand[:0], s.w, &s.w.Aircraft[i])
		for _, p := range buf.cand {
			s.scanOne(&acc, i, int(p), vx, vy)
		}
	}
	t.Ops(acc.checks*opsPairCheck + (acc.visited - acc.checks)) // skipped pairs still cost the filter compare
	atomic.AddInt64(&s.pairChecks, int64(acc.checks))
	return acc.earliest, acc.with, acc.earliest < airspace.CriticalTime
}

// detectResolveKernel runs the fused (or detection-only) kernel body.
//
//atm:allow atomic -- the conflicts counter is an order-independent sum read only after the launch barrier
func (e *Engine) detectResolveKernel(w *airspace.World, s *deviceState, res *DetectResult, resolve bool) {
	n := w.N()
	ac := w.Aircraft
	name := "checkCollisionPath"
	if !resolve {
		name = "collisionDetect"
	}
	res.add(e.dev.Launch(name, n, func(t *Thread) {
		i := t.ID
		a := &ac[i]
		a.ResetConflict()
		tmin, with, critical := s.scanSnapshot(t, i, s.snap.DX[i], s.snap.DY[i])
		if !critical {
			return
		}
		atomic.AddInt64(&s.conflicts, 1)
		a.Col = true
		a.ColWith = with
		a.TimeTill = tmin
		if !resolve {
			return
		}
		s.resolveTrack(t, e, i, a)
	}))
}

// resolveKernel runs Task 3 alone over previously flagged aircraft.
func (e *Engine) resolveKernel(w *airspace.World, s *deviceState, res *DetectResult) {
	ac := w.Aircraft
	res.add(e.dev.Launch("collisionResolve", w.N(), func(t *Thread) {
		a := &ac[t.ID]
		if !a.Col {
			return
		}
		s.resolveTrack(t, e, t.ID, a)
	}))
}

// resolveTrack probes the rotation schedule for one aircraft.
//
//atm:noalloc
//atm:allow atomic -- rotation/resolution counters are order-independent sums read only after the launch barrier
func (s *deviceState) resolveTrack(t *Thread, e *Engine, i int, a *airspace.Aircraft) {
	base := geom.Vec2{X: s.snap.DX[i], Y: s.snap.DY[i]}
	for _, deg := range rotationSchedule {
		atomic.AddInt64(&s.rotations, 1)
		t.Ops(opsRotate)
		v := base.Rotate(deg)
		a.BatX, a.BatY = v.X, v.Y
		tmin, with, critical := s.scanSnapshot(t, i, v.X, v.Y)
		if !critical {
			s.newDX[i], s.newDY[i] = v.X, v.Y
			s.resolved[i] = 1
			atomic.AddInt64(&s.resolvedCount, 1)
			return
		}
		a.ColWith = with
		if tmin < a.TimeTill {
			a.TimeTill = tmin
		}
	}
	atomic.AddInt64(&s.unresolvedCount, 1)
}

var rotationSchedule = tasks.RotationSchedule()

// commitCourses applies the proposed courses and clears conflict flags
// for resolved aircraft.
func (e *Engine) commitCourses(w *airspace.World, s *deviceState, res *DetectResult) {
	ac := w.Aircraft
	res.add(e.dev.Launch("commitCourses", w.N(), func(t *Thread) {
		t.Ops(opsCommit)
		if s.resolved[t.ID] == 1 {
			a := &ac[t.ID]
			a.DX, a.DY = s.newDX[t.ID], s.newDY[t.ID]
			a.ResetConflict()
		}
	}))
}

func (s *deviceState) stats() tasks.DetectStats {
	return tasks.DetectStats{
		Conflicts:  int(s.conflicts),
		Rotations:  int(s.rotations),
		Resolved:   int(s.resolvedCount),
		Unresolved: int(s.unresolvedCount),
		PairChecks: int(s.pairChecks),
	}
}
