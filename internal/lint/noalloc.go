package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc turns the repository's "~0 allocs/op in steady state"
// benchmarks into a compile-time contract: a function marked
// //atm:noalloc must not contain constructs the escape analyzer
// cannot keep off the heap —
//
//   - make of any slice, map, or channel, and map/chan literals
//   - new(...)
//   - append that grows a slice born empty in the same function
//   - closure literals (each evaluation may allocate a closure object)
//   - go statements (each spawn allocates a goroutine)
//   - interface boxing of non-pointer values
//   - fmt/log calls and string concatenation / string<->[]byte
//     conversions
//
// Growing caller-owned or machine-owned scratch (appending through a
// parameter, a field, or a reslice of either) is allowed: that is the
// repository's steady-state-zero-alloc idiom, where capacity survives
// across invocations.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reject heap-allocating constructs in functions marked //atm:noalloc",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) error {
	for _, fn := range pass.Dirs.AnnotatedFuncs(KindNoalloc) {
		checkNoalloc(pass, fn)
	}
	return nil
}

// funcParts extracts the body and signature of a FuncDecl or FuncLit.
func funcParts(pass *Pass, fn ast.Node) (*ast.BlockStmt, *types.Signature) {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
			sig, _ := obj.Type().(*types.Signature)
			return fn.Body, sig
		}
		return fn.Body, nil
	case *ast.FuncLit:
		if tv, ok := pass.TypesInfo.Types[fn]; ok && tv.Type != nil {
			sig, _ := tv.Type.Underlying().(*types.Signature)
			return fn.Body, sig
		}
		return fn.Body, nil
	}
	return nil, nil
}

func checkNoalloc(pass *Pass, fn ast.Node) {
	body, sig := funcParts(pass, fn)
	if body == nil {
		return
	}
	fresh := collectFreshEmptySlices(pass, body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "atm:noalloc: closure literal may allocate per evaluation; hoist it out of the hot path or pass explicit state")
			return false // its body is a different function
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "atm:noalloc: go statement allocates a goroutine; hot paths must run on the caller or the parexec pool")
			return false
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "atm:noalloc: map literal allocates; use index-addressed scratch slices")
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok && isString(tv.Type) {
					pass.Reportf(n.Pos(), "atm:noalloc: string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			checkNoallocCall(pass, n, fresh)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break // multi-value assignment: types come from a call
				}
				if dst := lhsType(pass, n.Lhs[i]); dst != nil {
					reportBoxing(pass, dst, rhs, "assignment")
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if tv, ok := pass.TypesInfo.Types[n.Type]; ok {
					for _, val := range n.Values {
						reportBoxing(pass, tv.Type, val, "assignment")
					}
				}
			}
		case *ast.ReturnStmt:
			if sig == nil || sig.Results() == nil || len(n.Results) != sig.Results().Len() {
				break
			}
			for i, res := range n.Results {
				reportBoxing(pass, sig.Results().At(i).Type(), res, "return")
			}
		}
		return true
	})
}

// collectFreshEmptySlices finds local slice variables that start with
// no backing array — `var x []T`, `x := []T{}`, `x := []T(nil)` —
// so appends to them are guaranteed heap growth.
func collectFreshEmptySlices(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	mark := func(name *ast.Ident, init ast.Expr) {
		obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if init == nil {
			fresh[obj] = true // var x []T
			return
		}
		if lit, ok := ast.Unparen(init).(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
			fresh[obj] = true // x := []T{}
			return
		}
		if tv, ok := pass.TypesInfo.Types[ast.Unparen(init)]; ok && tv.IsNil() {
			fresh[obj] = true
		}
		if call, ok := ast.Unparen(init).(*ast.CallExpr); ok {
			// conversion []T(nil)
			if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
				if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && atv.IsNil() {
					fresh[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var init ast.Expr
				if i < len(n.Values) {
					init = n.Values[i]
				}
				mark(name, init)
			}
		}
		return true
	})
	return fresh
}

func checkNoallocCall(pass *Pass, call *ast.CallExpr, fresh map[*types.Var]bool) {
	// Type conversions: string <-> []byte/[]rune copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && atv.Type != nil {
			from := atv.Type
			if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
				pass.Reportf(call.Pos(), "atm:noalloc: conversion between string and byte/rune slice copies and allocates")
			}
			reportBoxing(pass, to, call.Args[0], "conversion")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "atm:noalloc: make allocates; grow machine-owned scratch outside the hot path")
			case "new":
				pass.Reportf(call.Pos(), "atm:noalloc: new may allocate; use machine-owned scratch")
			case "append":
				if len(call.Args) > 0 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && fresh[obj] {
							pass.Reportf(call.Pos(), "atm:noalloc: append grows %q, a slice born empty in this function; append into caller-provided or machine-owned scratch so capacity survives across invocations", id.Name)
						}
					}
				}
			}
			return
		}
	}

	// fmt / log calls.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch pkgNameOf(pass.TypesInfo, sel.X) {
		case "fmt", "log":
			pass.Reportf(call.Pos(), "atm:noalloc: %s.%s formats and allocates; hot paths must not format", pkgNameOf(pass.TypesInfo, sel.X), sel.Sel.Name)
			return
		}
	}

	// Interface boxing at call arguments.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && call.Ellipsis == token.NoPos:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			reportBoxing(pass, pt, arg, "argument")
		}
	}
}

// lhsType returns the static type of an assignment target, or nil.
func lhsType(pass *Pass, lhs ast.Expr) types.Type {
	if id, ok := lhs.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := pass.TypesInfo.Types[lhs]; ok {
		return tv.Type
	}
	return nil
}

// reportBoxing flags a non-pointer concrete value converted to an
// interface type: the value is copied to the heap to fit behind the
// interface's data word. Pointer-shaped values (pointers, channels,
// maps, funcs, unsafe.Pointer) fit the word directly and are exempt.
func reportBoxing(pass *Pass, dst types.Type, src ast.Expr, site string) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if t.Kind() == types.UnsafePointer {
			return
		}
	}
	pass.Reportf(src.Pos(), "atm:noalloc: %s boxes a non-pointer %s into an interface, which allocates; pass a pointer or keep the call monomorphic", site, tv.Type)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
