// Package trace holds the timing-series records the experiment harness
// produces — one labelled series per platform, points over aircraft
// counts — and their CSV round-trip, so every figure of the paper can
// be regenerated, saved, re-read and re-fit.
package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Point is one measurement: X is the sweep variable (aircraft count),
// Y the measured value (seconds, misses, ...).
type Point struct {
	X, Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// XS returns the X values of the series.
func (s *Series) XS() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}

// YS returns the Y values of the series.
func (s *Series) YS() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Dataset is one figure or table worth of series.
type Dataset struct {
	// ID is the machine-readable experiment id (e.g. "fig4").
	ID string
	// Title, XLabel, YLabel describe the plot.
	Title, XLabel, YLabel string
	Series                []Series
}

// Add appends a point to the named series, creating it as needed.
func (d *Dataset) Add(label string, x, y float64) {
	for i := range d.Series {
		if d.Series[i].Label == label {
			d.Series[i].Points = append(d.Series[i].Points, Point{x, y})
			return
		}
	}
	d.Series = append(d.Series, Series{Label: label, Points: []Point{{x, y}}})
}

// Get returns the series with the given label, or nil.
func (d *Dataset) Get(label string) *Series {
	for i := range d.Series {
		if d.Series[i].Label == label {
			return &d.Series[i]
		}
	}
	return nil
}

// WriteCSV writes the dataset in long form:
//
//	# id,title,xlabel,ylabel header comment row
//	series,x,y
//	<label>,<x>,<y>
func (d *Dataset) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s | %s | %s | %s\n", d.ID, d.Title, d.XLabel, d.YLabel); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range d.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Label,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. The leading comment
// row is optional.
func ReadCSV(r io.Reader) (*Dataset, error) {
	br := newCommentSkipper(r)
	d := &Dataset{}
	if br.comment != "" {
		// Full header: "# id | title | xlabel | ylabel"
		if parts := splitHeader(br.comment); len(parts) == 4 {
			d.ID, d.Title, d.XLabel, d.YLabel = parts[0], parts[1], parts[2], parts[3]
		}
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = 3
	first := true
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		if first {
			first = false
			if rec[0] == "series" {
				continue // header row
			}
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad x %q: %w", rec[1], err)
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad y %q: %w", rec[2], err)
		}
		d.Add(rec[0], x, y)
	}
	return d, nil
}

// splitHeader splits "# a | b | c | d" into its four fields.
func splitHeader(line string) []string {
	if len(line) < 2 {
		return nil
	}
	body := line[2:]
	var parts []string
	start := 0
	for i := 0; i+2 < len(body); i++ {
		if body[i] == ' ' && body[i+1] == '|' && body[i+2] == ' ' {
			parts = append(parts, body[start:i])
			start = i + 3
			i += 2
		}
	}
	parts = append(parts, body[start:])
	return parts
}

// commentSkipper captures one leading '#' line and serves the rest.
type commentSkipper struct {
	r       io.Reader
	comment string
	buf     []byte
	started bool
}

func newCommentSkipper(r io.Reader) *commentSkipper {
	cs := &commentSkipper{r: r}
	// Read ahead enough to capture the first line.
	head := make([]byte, 4096)
	n, _ := io.ReadFull(r, head)
	head = head[:n]
	if len(head) == 0 || head[0] != '#' {
		cs.buf = head
		return cs
	}
	// Keep reading until the comment line ends; header rows are
	// unbounded (a dataset title can exceed any fixed read-ahead) and
	// truncating one here would feed its tail to the CSV parser.
	for {
		if i := bytes.IndexByte(head, '\n'); i >= 0 {
			cs.comment = string(head[:i])
			cs.buf = head[i+1:]
			return cs
		}
		chunk := make([]byte, 4096)
		n, _ := cs.r.Read(chunk)
		head = append(head, chunk[:n]...)
		if n == 0 {
			// A comment with no newline: the whole input was the comment.
			cs.comment = string(head)
			cs.buf = nil
			return cs
		}
	}
}

func (cs *commentSkipper) Read(p []byte) (int, error) {
	if len(cs.buf) > 0 {
		n := copy(p, cs.buf)
		cs.buf = cs.buf[n:]
		return n, nil
	}
	return cs.r.Read(p)
}
