// Fixture for the stalewaiver analyzer, checked by TestStaleWaiver
// directly rather than through // want comments: a trailing line
// comment cannot host both a directive and a want pattern, because the
// directive comment runs to the end of the line.
package w

import "math/rand"

// seeded uses the global generator deliberately; the determinism
// analyzer fires here and the waiver is consumed.
func seeded() int {
	return rand.Intn(3) //atm:allow globalrand -- fixture: demonstrating a consumed waiver
}

// quiet carries a waiver for a rule that never fires in its body; the
// stalewaiver analyzer must report it.
func quiet() int {
	x := 3 //atm:allow maprange -- fixture: nothing to waive
	return x
}
