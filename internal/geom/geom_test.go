package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecArithmetic(t *testing.T) {
	v := Vec2{3, 4}
	w := Vec2{-1, 2}
	if got := v.Add(w); got != (Vec2{2, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec2{4, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
}

// Property: rotation preserves speed. This is the invariant collision
// resolution depends on — a turned aircraft keeps its velocity magnitude.
func TestRotatePreservesLength(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		v := Vec2{r.Range(-10, 10), r.Range(-10, 10)}
		deg := r.Range(-180, 180)
		got := v.Rotate(deg).Len()
		if !almostEq(got, v.Len(), 1e-9) {
			t.Fatalf("Rotate(%v, %v) changed length: %v -> %v", v, deg, v.Len(), got)
		}
	}
}

func TestRotateKnownAngles(t *testing.T) {
	v := Vec2{1, 0}
	if got := v.Rotate(90); !almostEq(got.X, 0, 1e-12) || !almostEq(got.Y, 1, 1e-12) {
		t.Errorf("Rotate 90 = %v", got)
	}
	if got := v.Rotate(180); !almostEq(got.X, -1, 1e-12) || !almostEq(got.Y, 0, 1e-12) {
		t.Errorf("Rotate 180 = %v", got)
	}
	if got := v.Rotate(-90); !almostEq(got.X, 0, 1e-12) || !almostEq(got.Y, -1, 1e-12) {
		t.Errorf("Rotate -90 = %v", got)
	}
}

// Property: rotating by d then -d is the identity (within float error).
func TestRotateInverse(t *testing.T) {
	if err := quick.Check(func(x, y, deg float64) bool {
		x = math.Mod(x, 1e3)
		y = math.Mod(y, 1e3)
		deg = math.Mod(deg, 360)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(deg) {
			return true
		}
		v := Vec2{x, y}
		got := v.Rotate(deg).Rotate(-deg)
		return almostEq(got.X, v.X, 1e-6) && almostEq(got.Y, v.Y, 1e-6)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProject(t *testing.T) {
	p := Project(Vec2{1, 2}, Vec2{0.5, -0.25}, 4)
	if p != (Vec2{3, 1}) {
		t.Errorf("Project = %v", p)
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 15}
	got := a.Intersect(b)
	if got != (Interval{5, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if got.Empty() {
		t.Error("non-empty intersection reported empty")
	}
	c := Interval{11, 20}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intervals reported non-empty")
	}
}

func TestAxisConflictWindowConverging(t *testing.T) {
	// Trial at x=10 moving at -1/period toward track at x=0, stationary.
	// Separation < 3 during t in (7, 13).
	w, open := AxisConflictWindow(0, 0, 10, -1, 3)
	if open {
		t.Fatal("converging pair reported unbounded")
	}
	if !almostEq(w.Lo, 7, 1e-12) || !almostEq(w.Hi, 13, 1e-12) {
		t.Fatalf("window = %+v, want [7,13]", w)
	}
}

func TestAxisConflictWindowDiverging(t *testing.T) {
	// Trial ahead and moving away: window lies entirely in the past.
	w, open := AxisConflictWindow(0, 0, 10, +1, 3)
	if open {
		t.Fatal("diverging pair reported unbounded")
	}
	if w.Hi >= 0 {
		t.Fatalf("diverging pair window = %+v, want entirely negative", w)
	}
}

func TestAxisConflictWindowParallel(t *testing.T) {
	// Same velocity, close together: conflict at all times.
	if _, open := AxisConflictWindow(0, 1, 2, 1, 3); !open {
		t.Error("close parallel pair should be unbounded")
	}
	// Same velocity, far apart: never in conflict.
	w, open := AxisConflictWindow(0, 1, 100, 1, 3)
	if open || !w.Empty() {
		t.Errorf("distant parallel pair: window=%+v open=%v, want empty", w, open)
	}
}

// Property: the analytic window agrees with direct evaluation of the
// separation |d + dv t| < sep at sampled times.
func TestAxisConflictWindowMatchesSampling(t *testing.T) {
	r := rng.New(99)
	for i := 0; i < 2000; i++ {
		trackP := r.Range(-100, 100)
		trackV := r.Range(-1, 1)
		trialP := r.Range(-100, 100)
		trialV := r.Range(-1, 1)
		const sep = 3.0
		w, open := AxisConflictWindow(trackP, trackV, trialP, trialV, sep)
		for _, tm := range []float64{0, 1, 5, 25, 125, 625} {
			sepAt := math.Abs((trialP + trialV*tm) - (trackP + trackV*tm))
			inWindow := open || (!w.Empty() && tm >= w.Lo && tm <= w.Hi)
			// Skip knife-edge cases where float rounding flips <.
			if math.Abs(sepAt-sep) < 1e-9 {
				continue
			}
			if (sepAt < sep) != inWindow {
				t.Fatalf("case %d t=%v: sepAt=%v inWindow=%v window=%+v open=%v",
					i, tm, sepAt, inWindow, w, open)
			}
		}
	}
}
