package broadphase_test

import (
	"testing"

	"repro/internal/airspace"
	"repro/internal/broadphase"
)

// mkWorld makes n aircraft at x = i*spacing, tiny speed.
func mkWorld(n int, spacing float64) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i) * spacing
		a.Y = 0
		a.Alt = 10000
		a.DX = 0.001
		a.DY = 0
	}
	return w
}

// Teleport one aircraft far left across >1 repair block and a clean
// boundary; compare sharded incremental candidates vs serial.
func TestRepairRunBoundaryCrossing(t *testing.T) {
	const n = 1536
	w := mkWorld(n, 50)
	serial := broadphase.NewIncrementalSweep()
	sharded := broadphase.NewShardedSweep(true)
	serial.Prepare(w)
	sharded.Prepare(w)
	// move aircraft 1100 (rank 1100, block 2) to x=5 (rank 0)
	w.Aircraft[1100].X = 5
	serial.Prepare(w)
	sharded.Prepare(w)
	var a, b []int32
	for i := range w.Aircraft {
		a = serial.AppendCandidates(a[:0], w, &w.Aircraft[i])
		b = sharded.AppendCandidates(b[:0], w, &w.Aircraft[i])
		if len(a) != len(b) {
			t.Fatalf("track %d: serial %d candidates, sharded %d (a=%v b=%v)", i, len(a), len(b), a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("track %d: cand[%d] serial %d sharded %d", i, k, a[k], b[k])
			}
		}
	}
}

// Grow the world so ceil(n/256) lands between len and cap of chunkBufs.
func TestPrepareTableGrowPanic(t *testing.T) {
	s := broadphase.NewShardedSweep(false)
	for _, n := range []int{1024, 1280, 1536} {
		w := mkWorld(n, 50)
		s.Prepare(w)
		s.PrepareTable()
	}
}
