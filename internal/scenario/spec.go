// Package scenario generates named traffic workloads for the simulated
// airfield. Every experiment before this package ran the paper's single
// workload — N uniform-random aircraft on the 256 x 256 nm torus — but
// conflict detection and resolution are stressed very differently by
// structured traffic: converging circle flows, crossing streams, dense
// sectors, altitude-banded layers and periodic arrival waves (the
// pattern families of conflict-resolution benchmark generators).
//
// A workload is selected by a compact spec string,
//
//	family:key=val,key=val
//
// parsed into a validated Spec. The empty spec and "uniform" reproduce
// the paper's random setup bit-exactly: generation draws from the same
// rng stream in the same order as airspace.NewWorld, so every golden
// measurement recorded before this package existed is unchanged.
//
// Generation is a pure function of (spec, n, rng state): the same spec
// and seed yield byte-identical worlds on every platform and Go
// version, which is what lets the conformance harness treat scenario
// worlds as cross-platform differential-test fixtures.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/airspace"
)

// Family names the built-in scenario generators.
type Family string

// The six scenario families.
const (
	// Uniform is the paper's Section 4.1 random setup (the default).
	Uniform Family = "uniform"
	// Circle places all aircraft on a circle converging on its center:
	// every aircraft is in conflict, the benchmark-generator classic.
	Circle Family = "circle"
	// Streams builds K crossing flows with fixed in-trail spacing.
	Streams Family = "streams"
	// Dense clusters traffic into tight sectors sharing one altitude
	// band, maximizing broad-phase candidate pairs.
	Dense Family = "dense"
	// Layers stacks altitude bands of parallel traffic with controlled
	// vertical gaps, exercising the AltOverlapAt filter on both sides.
	Layers Family = "layers"
	// Burst launches opposed arrival waves timed so conflict load
	// arrives in periodic spikes — deadline stress.
	Burst Family = "burst"
)

// Families lists every family name in presentation order.
func Families() []Family {
	return []Family{Uniform, Circle, Streams, Dense, Layers, Burst}
}

// FamilyNames renders the family list for flag help and error text.
func FamilyNames() string {
	names := make([]string, len(Families()))
	for i, f := range Families() {
		names[i] = string(f)
	}
	return strings.Join(names, ", ")
}

// burstAltStep is the vertical separation between consecutive burst
// waves: each wave flies its own altitude band, well clear of
// airspace.AltBandFeet, so wave w only ever conflicts with its own
// opposing wave and conflict load stays periodic.
const burstAltStep = 2000.0

// maxTrailNM bounds in-trail spacing and lane gaps: beyond this the
// layout degenerates (rows stop fitting the field and the capacity
// arithmetic below loses meaning).
const maxTrailNM = 30.0

// Spec is a parsed, validated scenario description. Fields are shared
// across families; each family reads only its own keys (see the
// per-family key tables in ParseSpec) and Validate checks only those.
type Spec struct {
	Family Family

	// Radius is the circle radius (circle) or the cluster half-extent
	// (dense), in nautical miles.
	Radius float64
	// Speed is the common ground speed in knots (circle, streams,
	// burst).
	Speed float64
	// Alt is the base altitude in feet (all structured families).
	Alt float64
	// AltSpread scatters altitudes uniformly in [Alt-AltSpread,
	// Alt+AltSpread] (circle, dense).
	AltSpread float64
	// PhaseDeg rotates the circle's starting positions (circle).
	PhaseDeg float64
	// Streams is the number of crossing flows (streams).
	Streams int
	// AngleDeg is the heading increment between consecutive streams in
	// degrees (streams).
	AngleDeg float64
	// Spacing is the in-trail distance between consecutive aircraft of
	// one lane (streams) or between ranks and rows of a wave (burst),
	// in nautical miles.
	Spacing float64
	// LaneGap is the lateral distance between parallel lanes of one
	// stream (streams), in nautical miles.
	LaneGap float64
	// Clusters is the number of dense sectors (dense).
	Clusters int
	// Bands is the number of altitude bands (layers).
	Bands int
	// BandGap is the vertical distance between consecutive bands in
	// feet (layers). Below airspace.AltBandFeet adjacent bands conflict;
	// above it the vertical filter prunes them.
	BandGap float64
	// Waves is the number of opposed arrival waves (burst).
	Waves int
	// Interval is the arrival spacing between consecutive waves in
	// half-second periods (burst).
	Interval int
}

// DefaultSpec returns the family's spec with every parameter at its
// documented default.
func DefaultSpec(f Family) Spec {
	s := Spec{Family: f}
	switch f {
	case Uniform:
	case Circle:
		s.Radius, s.Speed, s.Alt, s.AltSpread, s.PhaseDeg = 100, 400, 20000, 0, 0
	case Streams:
		s.Streams, s.AngleDeg, s.Spacing, s.LaneGap, s.Speed, s.Alt = 4, 45, 6, 8, 400, 20000
	case Dense:
		s.Clusters, s.Radius, s.Alt, s.AltSpread = 8, 8, 20000, 400
	case Layers:
		s.Bands, s.BandGap, s.Alt = 6, 2000, 5000
	case Burst:
		s.Waves, s.Interval, s.Spacing, s.Speed, s.Alt = 4, 360, 6, 400, 10000
	}
	return s
}

// field describes one spec key of one family: a pointer into the Spec
// it was built for, float or integer.
type field struct {
	key string
	fl  *float64
	num *int // non-nil for integer keys; fl is nil then
}

// familyFields lists the accepted keys per family in canonical
// (String) order, bound to s's fields.
func familyFields(s *Spec) []field {
	switch s.Family {
	case Circle:
		return []field{
			{key: "radius", fl: &s.Radius},
			{key: "speed", fl: &s.Speed},
			{key: "alt", fl: &s.Alt},
			{key: "altspread", fl: &s.AltSpread},
			{key: "phase", fl: &s.PhaseDeg},
		}
	case Streams:
		return []field{
			{key: "streams", num: &s.Streams},
			{key: "angle", fl: &s.AngleDeg},
			{key: "spacing", fl: &s.Spacing},
			{key: "lanegap", fl: &s.LaneGap},
			{key: "speed", fl: &s.Speed},
			{key: "alt", fl: &s.Alt},
		}
	case Dense:
		return []field{
			{key: "clusters", num: &s.Clusters},
			{key: "radius", fl: &s.Radius},
			{key: "alt", fl: &s.Alt},
			{key: "altspread", fl: &s.AltSpread},
		}
	case Layers:
		return []field{
			{key: "bands", num: &s.Bands},
			{key: "gap", fl: &s.BandGap},
			{key: "alt", fl: &s.Alt},
		}
	case Burst:
		return []field{
			{key: "waves", num: &s.Waves},
			{key: "interval", num: &s.Interval},
			{key: "spacing", fl: &s.Spacing},
			{key: "speed", fl: &s.Speed},
			{key: "alt", fl: &s.Alt},
		}
	}
	return nil // uniform takes no keys
}

// knownFamily reports whether name is a registered family.
func knownFamily(name string) bool {
	for _, f := range Families() {
		if string(f) == name {
			return true
		}
	}
	return false
}

// familyNames returns the registered family names, sorted, for error
// messages.
func familyNames() string {
	fs := Families()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = string(f)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ParseSpec parses "family" or "family:key=val,key=val" into a Spec
// with unspecified keys at their family defaults. The empty string
// selects the uniform family. ParseSpec checks syntax, key names and
// value ranges that do not depend on the aircraft count; callers that
// know n must also call Validate.
func ParseSpec(text string) (Spec, error) {
	if text == "" {
		return DefaultSpec(Uniform), nil
	}
	famName, params, hasParams := strings.Cut(text, ":")
	if famName == "" {
		return Spec{}, fmt.Errorf("scenario: empty family in spec %q (known: %s)", text, familyNames())
	}
	if !knownFamily(famName) {
		return Spec{}, fmt.Errorf("scenario: unknown family %q (known: %s)", famName, familyNames())
	}
	s := DefaultSpec(Family(famName))
	if !hasParams {
		return s, s.check()
	}
	fields := familyFields(&s)
	seen := make(map[string]bool, len(fields))
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return Spec{}, fmt.Errorf("scenario: %s: bad parameter %q (want key=value)", famName, kv)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("scenario: %s: duplicate key %q", famName, key)
		}
		seen[key] = true
		f, ok := lookupField(fields, key)
		if !ok {
			return Spec{}, fmt.Errorf("scenario: %s: unknown key %q (known: %s)", famName, key, fieldKeys(fields))
		}
		if f.num != nil {
			v, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: %s: key %q: bad integer %q", famName, key, val)
			}
			*f.num = v
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return Spec{}, fmt.Errorf("scenario: %s: key %q: bad number %q", famName, key, val)
		}
		*f.fl = v
	}
	return s, s.check()
}

func lookupField(fields []field, key string) (field, bool) {
	for _, f := range fields {
		if f.key == key {
			return f, true
		}
	}
	return field{}, false
}

func fieldKeys(fields []field) string {
	if len(fields) == 0 {
		return "none"
	}
	keys := make([]string, len(fields))
	for i, f := range fields {
		keys[i] = f.key
	}
	return strings.Join(keys, ", ")
}

// String renders the spec in canonical form: the family followed by
// every one of its keys in fixed order with shortest round-trip value
// formatting. Canonical strings are what atmserve caches key on, so
// "circle" and "circle:radius=100" collapse to the same entry.
// ParseSpec(s.String()) reproduces s exactly.
func (s Spec) String() string {
	fields := familyFields(&s)
	if len(fields) == 0 {
		return string(s.Family)
	}
	var b strings.Builder
	b.WriteString(string(s.Family))
	for i, f := range fields {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(f.key)
		b.WriteByte('=')
		if f.num != nil {
			b.WriteString(strconv.Itoa(*f.num))
		} else {
			b.WriteString(strconv.FormatFloat(*f.fl, 'g', -1, 64))
		}
	}
	return b.String()
}

// check verifies the n-independent parameter ranges. It is what
// ParseSpec enforces; Validate adds the capacity checks that need the
// aircraft count.
func (s *Spec) check() error {
	switch s.Family {
	case Uniform:
		return nil
	case Circle:
		if !(s.Radius > 0 && s.Radius <= airspace.SetupHalf) {
			return fmt.Errorf("scenario: circle: radius must be in (0, %g] nm, got %g", airspace.SetupHalf, s.Radius)
		}
		if math.Abs(s.PhaseDeg) > 360 {
			return fmt.Errorf("scenario: circle: phase must be in [-360, 360] degrees, got %g", s.PhaseDeg)
		}
		if err := s.checkSpeed(); err != nil {
			return err
		}
		return s.checkAltBand(s.AltSpread)
	case Streams:
		if s.Streams < 1 || s.Streams > 64 {
			return fmt.Errorf("scenario: streams: streams must be in [1, 64], got %d", s.Streams)
		}
		if !(s.AngleDeg > 0 && s.AngleDeg <= 180) {
			return fmt.Errorf("scenario: streams: angle must be in (0, 180] degrees, got %g", s.AngleDeg)
		}
		if s.Spacing < airspace.SepTotal || s.Spacing > maxTrailNM {
			return fmt.Errorf("scenario: streams: spacing must be in [%g, %g] nm, got %g", airspace.SepTotal, float64(maxTrailNM), s.Spacing)
		}
		if s.LaneGap < airspace.SepTotal || s.LaneGap > maxTrailNM {
			return fmt.Errorf("scenario: streams: lanegap must be in [%g, %g] nm, got %g", airspace.SepTotal, float64(maxTrailNM), s.LaneGap)
		}
		if err := s.checkSpeed(); err != nil {
			return err
		}
		return s.checkAltBand(0)
	case Dense:
		if s.Clusters < 1 || s.Clusters > 4096 {
			return fmt.Errorf("scenario: dense: clusters must be in [1, 4096], got %d", s.Clusters)
		}
		if !(s.Radius > 0 && s.Radius <= airspace.SetupHalf/2) {
			return fmt.Errorf("scenario: dense: radius must be in (0, %g] nm, got %g", airspace.SetupHalf/2, s.Radius)
		}
		return s.checkAltBand(s.AltSpread)
	case Layers:
		if s.Bands < 1 || s.Bands > 64 {
			return fmt.Errorf("scenario: layers: bands must be in [1, 64], got %d", s.Bands)
		}
		if s.BandGap <= 0 {
			return fmt.Errorf("scenario: layers: gap must be positive feet, got %g", s.BandGap)
		}
		if s.Alt < airspace.AltMin || s.Alt+float64(s.Bands-1)*s.BandGap > airspace.AltMax {
			return fmt.Errorf("scenario: layers: bands span [%g, %g] ft, outside [%g, %g]",
				s.Alt, s.Alt+float64(s.Bands-1)*s.BandGap, airspace.AltMin, airspace.AltMax)
		}
		return nil
	case Burst:
		if s.Waves < 1 || s.Waves > 16 {
			return fmt.Errorf("scenario: burst: waves must be in [1, 16], got %d", s.Waves)
		}
		if s.Interval < 1 {
			return fmt.Errorf("scenario: burst: interval must be at least 1 period, got %d", s.Interval)
		}
		if s.Spacing < airspace.SepTotal || s.Spacing > maxTrailNM {
			return fmt.Errorf("scenario: burst: spacing must be in [%g, %g] nm, got %g", airspace.SepTotal, float64(maxTrailNM), s.Spacing)
		}
		if err := s.checkSpeed(); err != nil {
			return err
		}
		if s.Alt < airspace.AltMin || s.Alt+float64(s.Waves-1)*burstAltStep > airspace.AltMax {
			return fmt.Errorf("scenario: burst: wave altitudes span [%g, %g] ft, outside [%g, %g]",
				s.Alt, s.Alt+float64(s.Waves-1)*burstAltStep, airspace.AltMin, airspace.AltMax)
		}
		return nil
	}
	return fmt.Errorf("scenario: unknown family %q (known: %s)", s.Family, familyNames())
}

func (s *Spec) checkSpeed() error {
	if s.Speed < airspace.SpeedMin || s.Speed > airspace.SpeedMax {
		return fmt.Errorf("scenario: %s: speed must be in [%g, %g] knots, got %g",
			s.Family, airspace.SpeedMin, airspace.SpeedMax, s.Speed)
	}
	return nil
}

func (s *Spec) checkAltBand(spread float64) error {
	if spread < 0 {
		return fmt.Errorf("scenario: %s: altspread must be non-negative feet, got %g", s.Family, spread)
	}
	if s.Alt-spread < airspace.AltMin || s.Alt+spread > airspace.AltMax {
		return fmt.Errorf("scenario: %s: altitudes span [%g, %g] ft, outside [%g, %g]",
			s.Family, s.Alt-spread, s.Alt+spread, airspace.AltMin, airspace.AltMax)
	}
	return nil
}

// Validate checks the spec's parameters and — where a family's layout
// depends on traffic volume — whether n aircraft fit the airfield. A
// nil error guarantees Generate(n, ...) succeeds and every generated
// position lies inside the field.
func (s *Spec) Validate(n int) error {
	if n < 0 {
		return fmt.Errorf("scenario: negative aircraft count %d", n)
	}
	if err := s.check(); err != nil {
		return err
	}
	switch s.Family {
	case Streams:
		perStream := (n + s.Streams - 1) / s.Streams
		if need, max := streamLanes(s, perStream), maxLaneIndex(s); need > max {
			return fmt.Errorf("scenario: streams: %d aircraft need %d lanes per stream but only %d fit the field; lower n or spacing/lanegap",
				n, need, max)
		}
	case Burst:
		if depth := burstDepth(s, n); depth > airspace.SetupHalf {
			return fmt.Errorf("scenario: burst: %d aircraft push the farthest wave to %.0f nm but the setup area ends at %g nm; lower n, waves or interval",
				n, depth, airspace.SetupHalf)
		}
	}
	return nil
}

// streamLanes returns how many parallel lanes one stream of m aircraft
// occupies. The centerline lane is longest; every lane at offset off
// holds floor((2*tLim(off)-stagger)/spacing)+1 aircraft, where tLim
// shrinks as lanes move outward (conservative bound keeping every
// position inside the setup square for any heading).
func streamLanes(s *Spec, m int) int {
	lanes := 0
	for m > 0 {
		tLim := airspace.SetupHalf - math.Abs(laneOffset(lanes, s.LaneGap))
		if tLim <= 0 {
			return lanes + 1 // beyond the field; caller compares with maxLaneIndex
		}
		fit := int((2*tLim-s.Spacing)/s.Spacing) + 1
		if fit < 1 {
			fit = 1
		}
		m -= fit
		lanes++
	}
	return lanes
}

// maxLaneIndex bounds lane fan-out: lateral offsets stay within half
// the setup area so streams remain recognizable flows rather than
// filling the field.
func maxLaneIndex(s *Spec) int {
	return 2*int((airspace.SetupHalf/2)/s.LaneGap) + 1
}

// burstDepth returns the field depth the farthest burst rank needs:
// wave placement distance plus in-trail ranks once the lateral rows
// are full.
func burstDepth(s *Spec, n int) float64 {
	perSide := (n + 2*s.Waves - 1) / (2 * s.Waves)
	rows := burstRows(s)
	ranks := (perSide + rows - 1) / rows
	v := s.Speed / airspace.PeriodsPerHour
	return v*float64(s.Interval)*float64(s.Waves) + float64(ranks-1)*s.Spacing
}

// burstRows is how many lateral rows fit between the top and bottom of
// the setup area at the configured spacing.
func burstRows(s *Spec) int {
	yMax := airspace.SetupHalf - s.Spacing
	return int(2*yMax/s.Spacing) + 1
}
