package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestInternStable(t *testing.T) {
	r := NewRecorder(8)
	a := r.Intern("alpha")
	b := r.Intern("beta")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if got := r.Intern("alpha"); got != a {
		t.Fatalf("re-intern moved id: %d != %d", got, a)
	}
	if got := r.Name(a); got != "alpha" {
		t.Fatalf("Name(%d) = %q", a, got)
	}
}

func TestRingOverwriteKeepsAggregates(t *testing.T) {
	r := NewRecorder(4)
	id := r.Intern("task")
	for i := 0; i < 10; i++ {
		r.Span(id, time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	// Aggregates survive the overwrite: all ten spans counted and summed.
	if got := r.Count(id); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if got := r.Sum(id); got != int64(10*time.Millisecond) {
		t.Fatalf("Sum = %d, want %d", got, int64(10*time.Millisecond))
	}
	// The ring holds the newest events, oldest first.
	var starts []time.Duration
	r.Visit(func(e Event) { starts = append(starts, e.Time) })
	want := []time.Duration{6 * time.Millisecond, 7 * time.Millisecond, 8 * time.Millisecond, 9 * time.Millisecond}
	if len(starts) != len(want) {
		t.Fatalf("visited %d events, want %d", len(starts), len(want))
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("event %d start %v, want %v", i, starts[i], want[i])
		}
	}
}

func TestGaugeKeepsLastValue(t *testing.T) {
	r := NewRecorder(8)
	id := r.Intern("load")
	r.Gauge(id, 3)
	r.Gauge(id, 7)
	if got := r.Sum(id); got != 7 {
		t.Fatalf("gauge Sum = %d, want last value 7", got)
	}
	if got := r.Count(id); got != 2 {
		t.Fatalf("gauge Count = %d, want 2", got)
	}
}

func TestUnknownNamesDoNotIntern(t *testing.T) {
	r := NewRecorder(8)
	if r.SumOf("nope") != 0 || r.CountOf("nope") != 0 {
		t.Fatal("unknown name reported nonzero aggregate")
	}
	if r.Names() != 0 {
		t.Fatal("aggregate query interned the name")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Span(0, 0, 0)
	r.Counter(0, 1)
	r.Gauge(0, 1)
	r.SetNow(time.Second)
	r.SetPeriod(3)
	if r.Now() != 0 || r.Period() != 0 || r.Detail() != DetailTask {
		t.Fatal("nil recorder getters not zero-valued")
	}
}

func TestMeta(t *testing.T) {
	r := NewRecorder(8)
	r.Meta("platform", "Titan X")
	var metas []string
	r.Visit(func(e Event) {
		if e.Kind == KindMeta {
			metas = append(metas, r.Name(e.Name)+"="+r.MetaValue(e))
		}
	})
	if len(metas) != 1 || metas[0] != "platform=Titan X" {
		t.Fatalf("meta events = %q", metas)
	}
	if got := r.MetaValue(Event{Kind: KindSpan}); got != "" {
		t.Fatalf("non-meta MetaValue = %q", got)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(8)
	id := r.Intern("x")
	r.Counter(id, 5)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Count(id) != 0 || r.Sum(id) != 0 {
		t.Fatal("Reset left state behind")
	}
	if got := r.Intern("x"); got != id {
		t.Fatal("Reset dropped the interning table")
	}
}

func TestMergeShardsDeterministicOrder(t *testing.T) {
	r := NewRecorder(64)
	id := r.Intern("blk")
	var s ShardSet
	// Simulate 3 workers finishing out of order: merged output must be
	// ordered by chunk regardless of which shard holds which chunk.
	s.Begin(3)
	s.Shard(2).Gauge(id, 5, 50)
	s.Shard(0).Gauge(id, 1, 10)
	s.Shard(1).Gauge(id, 3, 30)
	s.Shard(0).Gauge(id, 2, 20)
	s.Shard(2).Gauge(id, 6, 60)
	s.Shard(1).Gauge(id, 4, 40)
	r.SetNow(time.Second)
	r.MergeShards(&s)

	var args []int32
	r.Visit(func(e Event) {
		if e.Time != time.Second {
			t.Fatalf("merged event not stamped with recorder now: %v", e.Time)
		}
		args = append(args, e.Arg)
	})
	for i, a := range args {
		if int(a) != i+1 {
			t.Fatalf("merge order broken at %d: %v", i, args)
		}
	}
	if len(args) != 6 {
		t.Fatalf("merged %d events, want 6", len(args))
	}
	// Begin truncates for reuse.
	s.Begin(3)
	for w := 0; w < 3; w++ {
		if len(s.Shard(w).events) != 0 {
			t.Fatal("Begin did not reset shard")
		}
	}
}

func TestWriteJSONLValid(t *testing.T) {
	r := NewRecorder(64)
	r.Meta("platform", "test \"quoted\"")
	task := r.Intern("task1")
	r.SetPeriod(2)
	r.SetNow(time.Millisecond)
	r.Span(task, time.Millisecond, 3*time.Millisecond)
	r.SpanArg(r.Intern("boxpass"), time.Millisecond, time.Microsecond, 4)
	r.Counter(r.Intern("matched"), 17)
	r.Gauge(r.Intern("load"), 99)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		for _, k := range []string{"t", "kind", "name", "period"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %q missing %q", line, k)
			}
		}
	}
}

func TestWriteChromeTraceValid(t *testing.T) {
	r := NewRecorder(64)
	r.Meta("n", "100")
	r.Span(r.Intern("task1"), 0, time.Millisecond)
	r.Counter(r.Intern("matched"), 3)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
}

func TestPeriodDataset(t *testing.T) {
	r := NewRecorder(64)
	task := r.Intern("task1")
	cnt := r.Intern("matched")
	for p := int32(0); p < 3; p++ {
		r.SetPeriod(p)
		r.Span(task, 0, time.Duration(p+1)*time.Millisecond)
		r.Counter(cnt, int64(10*(p+1)))
	}
	d := PeriodDataset(r, "test")
	ts := d.Get("task1")
	if ts == nil || len(ts.Points) != 3 {
		t.Fatalf("task1 series missing or wrong length: %+v", ts)
	}
	if ts.Points[2].X != 2 || ts.Points[2].Y != (3*time.Millisecond).Seconds() {
		t.Fatalf("task1 point 2 = %+v", ts.Points[2])
	}
	cs := d.Get("matched")
	if cs == nil || cs.Points[1].Y != 20 {
		t.Fatalf("matched series wrong: %+v", cs)
	}
}
