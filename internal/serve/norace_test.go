//go:build !race

// Allocation-count assertions live behind the !race tag: the race
// detector's instrumentation allocates, which would fail them for the
// wrong reason.

package serve

import "testing"

// TestCacheHitPathZeroAlloc is the runtime counterpart of the
// //atm:noalloc annotation on lruCache.get: serving a cached result
// key must not allocate.
func TestCacheHitPathZeroAlloc(t *testing.T) {
	c := newLRUCache(4)
	key := RunConfig{Platform: "titanx", N: 4000, Seed: 2018, Periods: 16, Detail: "task"}.Key()
	c.put(key, &Result{Body: []byte("body"), ETag: `"tag"`})
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.get(key); !ok {
			t.Fatal("expected hit")
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit path allocates %.1f times per lookup, want 0", allocs)
	}
}
