// Package tasks contains the architecture-neutral reference
// implementations of the paper's three compute-intensive ATM tasks:
//
//	Task 1 — Tracking and Correlation (Algorithm 1),
//	Task 2 — Collision Detection (Algorithm 2, Equations 1-6), and
//	Task 3 — Collision Resolution (Algorithm 2, rotation search).
//
// Every platform simulator (CUDA, associative processor, multicore)
// implements the same algorithms with its own execution model; this
// package is the sequential ground truth they are tested against, and
// it supplies the shared pairwise conflict math so that all platforms
// agree bit-for-bit on what a conflict is.
package tasks

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/radar"
)

// BoxPasses is the number of correlation passes of Algorithm 1: the
// initial 1x1 nm bounding box plus two box doublings.
const BoxPasses = 3

// InitialBoxHalf is the half-width of the first-pass bounding box: the
// paper checks aircraft.x-0.5 < radar.x < aircraft.x+0.5 (a 1x1 nm box).
const InitialBoxHalf = 0.5

// MaxResolutionDeg is the largest heading change collision resolution
// will try ("incrementing the angle by 5 degrees each time, to a maximum
// of 30").
const MaxResolutionDeg = 30.0

// ResolutionStepDeg is the heading-change increment.
const ResolutionStepDeg = 5.0

// CorrelateStats reports what Task 1 did, for assertions and for the
// platform cost models.
type CorrelateStats struct {
	// Matched is the number of aircraft whose position was updated from
	// a radar report.
	Matched int
	// DiscardedRadars is the number of reports dropped because more than
	// one aircraft correlated with them (MatchWith = -2).
	DiscardedRadars int
	// WithdrawnAircraft is the number of aircraft withdrawn because more
	// than one radar correlated with them (RMatch = -1).
	WithdrawnAircraft int
	// UnmatchedRadars is the number of reports that never correlated.
	UnmatchedRadars int
	// Comparisons counts radar-vs-aircraft bounding-box tests across all
	// passes (the dominant cost of Task 1).
	Comparisons int
	// PassRadars[k] is the number of still-unmatched radars entering
	// pass k.
	PassRadars [BoxPasses]int
}

// Correlate runs Task 1 on the world against one radar frame: it
// computes expected positions, runs the multi-pass bounding-box
// correlation of Algorithm 1, commits matched radar positions (aircraft
// without a valid match keep their expected position), and applies the
// field re-entry rule. The frame's MatchWith fields are updated in
// place.
func Correlate(w *airspace.World, f *radar.Frame) CorrelateStats {
	return CorrelateNExec(w, f, BoxPasses, nil)
}

// CorrelateN is Correlate with a configurable number of bounding-box
// passes (1 to say "no doubling"), used by the A-BOX ablation. passes
// must be >= 1; each pass doubles the previous box.
func CorrelateN(w *airspace.World, f *radar.Frame, passes int) CorrelateStats {
	return CorrelateNExec(w, f, passes, nil)
}

// correlateSerial is the sequential reference body of CorrelateN; the
// host-parallel path (parallel.go) reproduces it bit for bit.
func correlateSerial(w *airspace.World, f *radar.Frame, passes int, st *CorrelateStats) {
	w.ComputeExpected()
	for i := range w.Aircraft {
		w.Aircraft[i].RMatch = airspace.MatchNone
	}
	f.Reset()

	boxHalf := InitialBoxHalf
	for pass := 0; pass < passes; pass++ {
		pending := 0
		for i := range f.Reports {
			if f.Reports[i].MatchWith == radar.Unmatched {
				pending++
			}
		}
		if pass < BoxPasses {
			st.PassRadars[pass] = pending
		}
		if pending == 0 {
			break
		}
		correlatePass(w, f, boxHalf, st)
		boxHalf *= 2
	}

	commit(w, f, st)
	w.WrapAll()
}

// correlatePass runs one bounding-box pass of Algorithm 1: every
// still-unmatched radar is tested against every still-eligible aircraft.
func correlatePass(w *airspace.World, f *radar.Frame, boxHalf float64, st *CorrelateStats) {
	for i := range f.Reports {
		rep := &f.Reports[i]
		if rep.MatchWith != radar.Unmatched {
			continue
		}
		for p := range w.Aircraft {
			a := &w.Aircraft[p]
			if a.RMatch != airspace.MatchNone && a.RMatch != airspace.MatchOne {
				continue // withdrawn aircraft are out of the search
			}
			st.Comparisons++
			if !inBox(rep, a, boxHalf) {
				continue
			}
			switch a.RMatch {
			case airspace.MatchNone:
				if rep.MatchWith == radar.Unmatched {
					// First correlation for both: pair them up.
					a.RMatch = airspace.MatchOne
					rep.MatchWith = a.ID
				} else {
					// A second aircraft matched this radar: unmatch the
					// earlier aircraft and discard the radar (line 9).
					prev := &w.Aircraft[rep.MatchWith]
					prev.RMatch = airspace.MatchNone
					rep.MatchWith = radar.Discarded
					st.DiscardedRadars++
				}
			case airspace.MatchOne:
				// A second radar correlated with this aircraft: withdraw
				// the aircraft and release its earlier radar (line 8).
				a.RMatch = airspace.MatchDiscarded
				st.WithdrawnAircraft++
				releaseRadarOf(f, a.ID)
			}
			if rep.MatchWith == radar.Discarded {
				break // this radar is done
			}
		}
	}
}

// releaseRadarOf returns the radar currently matched to aircraft id to
// the Unmatched state so a later pass may re-correlate it.
func releaseRadarOf(f *radar.Frame, id int32) {
	for j := range f.Reports {
		if f.Reports[j].MatchWith == id {
			f.Reports[j].MatchWith = radar.Unmatched
			return
		}
	}
}

// inBox reports whether the radar lies strictly inside the boxHalf-sized
// bounding box around the aircraft's expected position.
//
//atm:inline
func inBox(rep *radar.Report, a *airspace.Aircraft, boxHalf float64) bool {
	return rep.RX > a.ExpX-boxHalf && rep.RX < a.ExpX+boxHalf &&
		rep.RY > a.ExpY-boxHalf && rep.RY < a.ExpY+boxHalf
}

// commit applies line 12 of Algorithm 1: correctly correlated aircraft
// take their radar's measured position as their actual location; all
// other aircraft keep their expected position.
func commit(w *airspace.World, f *radar.Frame, st *CorrelateStats) {
	for p := range w.Aircraft {
		a := &w.Aircraft[p]
		a.X, a.Y = a.ExpX, a.ExpY
	}
	for i := range f.Reports {
		rep := &f.Reports[i]
		switch rep.MatchWith {
		case radar.Unmatched:
			st.UnmatchedRadars++
		case radar.Discarded:
			// already counted
		default:
			a := &w.Aircraft[rep.MatchWith]
			if a.RMatch == airspace.MatchOne {
				a.X, a.Y = rep.RX, rep.RY
				st.Matched++
			}
		}
	}
}

// PairConflict evaluates Equations 1-6 for one (track, trial) pair. The
// track aircraft flies from (tx, ty) with velocity (tvx, tvy) — passed
// explicitly because collision resolution probes rotated trial
// velocities — while the trial aircraft flies its recorded course. It
// returns the conflict window (timeMin, timeMax) in periods clipped to
// [0, HorizonPeriods], and whether the pair is on a collision course
// within the horizon (timeMin < timeMax).
func PairConflict(tx, ty, tvx, tvy float64, trial *airspace.Aircraft) (timeMin, timeMax float64, conflict bool) {
	return PairConflictAt(tx, ty, tvx, tvy, trial.X, trial.Y, trial.DX, trial.DY)
}

// PairConflictAt is PairConflict with the trial aircraft's state passed
// as scalars, for callers that hold the world in column (SoA) form and
// have no Aircraft record to take the address of. The arithmetic is the
// same expression on the same values, so the result is bit-identical to
// PairConflict on the corresponding record.
func PairConflictAt(tx, ty, tvx, tvy, px, py, pvx, pvy float64) (timeMin, timeMax float64, conflict bool) {
	wx, openX := geom.AxisConflictWindow(tx, tvx, px, pvx, airspace.SepTotal)
	if !openX && wx.Empty() {
		return 0, 0, false
	}
	wy, openY := geom.AxisConflictWindow(ty, tvy, py, pvy, airspace.SepTotal)
	if !openY && wy.Empty() {
		return 0, 0, false
	}
	win := wx.Intersect(wy)
	// Clip to the 20-minute look-ahead: the kernel "projects the
	// aircraft location 20 minutes ahead".
	win = win.Intersect(geom.Interval{Lo: 0, Hi: airspace.HorizonPeriods})
	if win.Empty() {
		return 0, 0, false
	}
	return win.Lo, win.Hi, true
}

// AltOverlap reports whether two aircraft are within the vertical
// separation band that makes a horizontal conflict meaningful.
//
//atm:inline
func AltOverlap(a, b *airspace.Aircraft) bool {
	return AltOverlapAt(a.Alt, b.Alt)
}

// AltOverlapAt is AltOverlap on scalar altitudes, for column-form
// callers. Same expression, bit-identical result.
//
//atm:inline
func AltOverlapAt(a, b float64) bool {
	return math.Abs(a-b) < airspace.AltBandFeet
}

// DetectStats reports what Tasks 2-3 did.
type DetectStats struct {
	// Conflicts is the number of aircraft that detected a critical
	// conflict (time_min < CriticalTime) on their committed course.
	Conflicts int
	// Rotations is the total number of trial headings evaluated by
	// collision resolution across all aircraft.
	Rotations int
	// Resolved is the number of aircraft that found a conflict-free
	// trial heading and committed it.
	Resolved int
	// Unresolved is the number of aircraft still in critical conflict
	// after exhausting ±30 degrees.
	Unresolved int
	// PairChecks counts track-vs-trial conflict evaluations (the
	// dominant cost of Tasks 2-3).
	PairChecks int
}

// DetectResolve runs Tasks 2 and 3 for every aircraft, mirroring the
// paper's combined CheckCollisionPath kernel: detect the earliest
// critical conflict on the committed course; if one exists, probe
// headings rotated by ±5°, ±10°, ... ±30° until a heading with no
// critical conflict is found, then commit it and clear the collision
// flags. Aircraft that exhaust every heading keep their course with the
// collision flags set (the paper resolves such leftovers by altitude
// changes, outside these tasks).
func DetectResolve(w *airspace.World) DetectStats {
	return DetectResolveExec(w, nil, nil)
}

// DetectResolveWith is DetectResolve with an optional broadphase pair
// source pruning the pair enumeration (nil means the all-pairs scan).
// Because every source's candidate sets are exact supersets, the result
// is identical for any source.
func DetectResolveWith(w *airspace.World, src broadphase.PairSource) DetectStats {
	return DetectResolveExec(w, src, nil)
}

// Detect runs Task 2 only (no resolution), used by the split-kernel
// ablation. It marks Col/TimeTill/ColWith on each aircraft with a
// critical conflict.
func Detect(w *airspace.World) DetectStats {
	return DetectExec(w, nil, nil)
}

// DetectWith is Detect with an optional broadphase pair source (nil
// means the all-pairs scan).
func DetectWith(w *airspace.World, src broadphase.PairSource) DetectStats {
	return DetectExec(w, src, nil)
}

// MarkConflict records a critical conflict on the track aircraft and
// mirrors it onto the trial aircraft, as Algorithm 2 line 9 sets col and
// colWith "for both trial and track aircrafts". It is shared by the
// platform implementations whose control flow is sequential (the
// associative and multicore machines).
func MarkConflict(w *airspace.World, track *airspace.Aircraft, with int32, tmin float64) {
	track.Col = true
	track.ColWith = with
	if tmin < track.TimeTill {
		track.TimeTill = tmin
	}
	if with != airspace.NoConflict {
		other := &w.Aircraft[with]
		other.Col = true
		other.ColWith = track.ID
		if tmin < other.TimeTill {
			other.TimeTill = tmin
		}
	}
}

// RotationSchedule returns the trial heading offsets of Task 3 in the
// order the paper probes them: alternating sign, growing magnitude
// (+5, -5, +10, -10, ... +30, -30 degrees).
func RotationSchedule() []float64 {
	var degs []float64
	for mag := ResolutionStepDeg; mag <= MaxResolutionDeg; mag += ResolutionStepDeg {
		degs = append(degs, mag, -mag)
	}
	return degs
}

// AltitudeResolve is the paper's fallback for conflicts that survive
// the ±30° rotation search: "any left unresolved ... that were urgent
// would be avoided by changing the altitude of the aircrafts". For each
// still-conflicting pair, the lower-ID aircraft climbs and its partner
// descends by just over the vertical separation band, clamped to the
// airspace altitude limits (with the direction flipped at a limit so
// separation is still achieved). It returns the number of aircraft
// whose altitude changed.
func AltitudeResolve(w *airspace.World) int {
	const step = airspace.AltBandFeet + 100
	changed := 0
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		if !a.Col || a.ColWith == airspace.NoConflict {
			continue
		}
		// Handle each pair once, from its lower-ID member.
		if a.ColWith >= 0 && a.ColWith < int32(len(w.Aircraft)) && a.ID > a.ColWith {
			continue
		}
		up, down := step, -step
		if a.Alt+up > airspace.AltMax {
			up = -step
			down = step
		}
		a.Alt = clampAlt(a.Alt + up)
		a.Col = false
		a.TimeTill = airspace.SafeTime
		changed++
		if a.ColWith >= 0 && a.ColWith < int32(len(w.Aircraft)) {
			b := &w.Aircraft[a.ColWith]
			b.Alt = clampAlt(b.Alt + down)
			b.Col = false
			b.TimeTill = airspace.SafeTime
			changed++
			b.ColWith = airspace.NoConflict
		}
		a.ColWith = airspace.NoConflict
	}
	return changed
}

func clampAlt(alt float64) float64 {
	if alt < airspace.AltMin {
		return airspace.AltMin
	}
	if alt > airspace.AltMax {
		return airspace.AltMax
	}
	return alt
}

// AlphaBetaSmooth updates velocity estimates from the period's radar
// residuals — the velocity half of the alpha-beta tracker the STARAN
// ATM software used [13]. The paper's simplified Task 1 takes the radar
// position as exact (the alpha = 1 case) but never corrects velocity,
// so an aircraft whose true course changed (wind, a real-world turn)
// drifts until correlation fails. Called after Correlate, this folds
// beta times the position residual (actual fix minus expected position,
// i.e. the dead-reckoning error) into the velocity estimate of every
// radar-matched aircraft. It returns the number of aircraft updated.
//
// beta must lie in [0, 1]: 0 disables smoothing, small values (0.1-0.3)
// give the classic critically-damped tracker.
func AlphaBetaSmooth(w *airspace.World, beta float64) int {
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("tasks: AlphaBetaSmooth beta %v outside [0,1]", beta))
	}
	updated := 0
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		if a.RMatch != airspace.MatchOne {
			continue
		}
		// After commit, X/Y is the radar fix and ExpX/ExpY the
		// dead-reckoned prediction; their difference is the residual per
		// period. A wrapped aircraft's residual is meaningless, skip it.
		rx := a.X - a.ExpX
		ry := a.Y - a.ExpY
		if rx > airspace.FieldHalf || rx < -airspace.FieldHalf ||
			ry > airspace.FieldHalf || ry < -airspace.FieldHalf {
			continue
		}
		a.DX += beta * rx
		a.DY += beta * ry
		updated++
	}
	return updated
}

// PriorityList is the sequential reference for the controller-display
// task: the IDs of all conflicting aircraft ordered by TimeTill
// ascending (most urgent first), ties broken by aircraft ID. The
// platform implementations (cuda.ConflictPriority via Batcher's bitonic
// network, ap.PriorityProgram via min-reduce/step) must agree with it
// exactly.
func PriorityList(w *airspace.World) []int32 {
	var ids []int32
	for i := range w.Aircraft {
		if w.Aircraft[i].Col {
			ids = append(ids, w.Aircraft[i].ID)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ta := w.Aircraft[ids[a]].TimeTill
		tb := w.Aircraft[ids[b]].TimeTill
		if ta != tb {
			return ta < tb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// BruteForceConflict is a trajectory-sampling oracle used by tests: it
// steps both aircraft along straight-line courses and reports whether
// their x and y separations are simultaneously below the safe bound at
// any sampled instant within the horizon, and the first such instant.
// dt is the sampling step in periods.
func BruteForceConflict(tx, ty, tvx, tvy float64, trial *airspace.Aircraft, dt float64) (first float64, conflict bool) {
	for t := 0.0; t <= airspace.HorizonPeriods; t += dt {
		ax := tx + tvx*t
		ay := ty + tvy*t
		bx := trial.X + trial.DX*t
		by := trial.Y + trial.DY*t
		if math.Abs(bx-ax) < airspace.SepTotal && math.Abs(by-ay) < airspace.SepTotal {
			return t, true
		}
	}
	return 0, false
}
