package cuda

import (
	"sync"
	"testing"
	"time"
)

func TestBlocks(t *testing.T) {
	cases := []struct{ threads, blocks int }{
		{0, 0}, {1, 1}, {95, 1}, {96, 1}, {97, 2}, {192, 2}, {193, 3}, {32000, 334},
	}
	for _, c := range cases {
		if got := Blocks(c.threads); got != c.blocks {
			t.Errorf("Blocks(%d) = %d, want %d", c.threads, got, c.blocks)
		}
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range Profiles() {
		if p.Cores <= 0 || p.SMs <= 0 || p.ClockHz <= 0 || p.MemBandwidth <= 0 {
			t.Errorf("profile %q has non-positive hardware numbers: %+v", p.Name, p)
		}
		if p.IPC <= 0 || p.IPC > 2 {
			t.Errorf("profile %q has implausible IPC %v", p.Name, p.IPC)
		}
	}
	if TitanXPascal.Cores <= GTX880M.Cores || GTX880M.Cores <= GeForce9800GT.Cores {
		t.Error("core counts must increase across device generations")
	}
}

func TestLaunchVisitsEveryThreadOnce(t *testing.T) {
	d := NewDevice(TitanXPascal)
	const threads = 1000
	var mu sync.Mutex
	seen := make([]int, threads)
	st := d.Launch("visit", threads, func(th *Thread) {
		mu.Lock()
		seen[th.ID]++
		mu.Unlock()
		if th.ID != th.Block*ThreadsPerBlock+th.Lane {
			t.Errorf("thread %d has inconsistent block %d / lane %d", th.ID, th.Block, th.Lane)
		}
	})
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("thread %d executed %d times", id, n)
		}
	}
	if st.Threads != threads || st.Blocks != Blocks(threads) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLaunchOpsAccounting(t *testing.T) {
	d := NewDevice(GTX880M)
	st := d.Launch("ops", 500, func(th *Thread) {
		th.Ops(7)
		th.Mem(16)
	})
	if st.TotalOps != 500*7 {
		t.Fatalf("TotalOps = %d, want %d", st.TotalOps, 500*7)
	}
	if st.MaxThreadOps != 7 {
		t.Fatalf("MaxThreadOps = %d, want 7", st.MaxThreadOps)
	}
	if st.MemBytes != 500*16 {
		t.Fatalf("MemBytes = %d, want %d", st.MemBytes, 500*16)
	}
	if st.Time < d.Profile.LaunchOverhead {
		t.Fatalf("Time %v below launch overhead", st.Time)
	}
}

func TestLaunchZeroThreads(t *testing.T) {
	d := NewDevice(GeForce9800GT)
	st := d.Launch("empty", 0, func(th *Thread) { t.Error("kernel ran with zero threads") })
	if st.TotalOps != 0 || st.Blocks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLaunchNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative thread count did not panic")
		}
	}()
	NewDevice(GeForce9800GT).Launch("bad", -1, func(th *Thread) {})
}

func TestLaunchDeterministicAccounting(t *testing.T) {
	d := NewDevice(TitanXPascal)
	kernel := func(th *Thread) { th.Ops(th.ID%13 + 1); th.Mem(th.ID % 7) }
	a := d.Launch("k", 5000, kernel)
	for i := 0; i < 5; i++ {
		b := d.Launch("k", 5000, kernel)
		if a.TotalOps != b.TotalOps || a.MaxThreadOps != b.MaxThreadOps ||
			a.MemBytes != b.MemBytes || a.Time != b.Time {
			t.Fatalf("run %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestSerialBound(t *testing.T) {
	// One enormous thread among tiny ones: the kernel cannot finish
	// faster than that thread's chain.
	d := NewDevice(TitanXPascal)
	st := d.Launch("serial", 96, func(th *Thread) {
		if th.ID == 0 {
			th.Ops(1_000_000)
		} else {
			th.Ops(1)
		}
	})
	serial := time.Duration(1_000_000 / (d.Profile.IPC * d.Profile.ClockHz) * 1e9)
	if st.Time < serial {
		t.Fatalf("Time %v below the serial bound %v", st.Time, serial)
	}
}

func TestMemoryBound(t *testing.T) {
	// Huge cold traffic, negligible compute: time must reflect the
	// bandwidth term.
	d := NewDevice(GeForce9800GT)
	st := d.Launch("mem", 96, func(th *Thread) {
		th.Ops(1)
		th.Mem(60_000_000) // 96 * 60 MB ~ 5.76 GB at 57.6 GB/s => ~100 ms
	})
	if st.Time < 90*time.Millisecond {
		t.Fatalf("memory-bound kernel finished in %v", st.Time)
	}
}

func TestFasterDeviceIsFaster(t *testing.T) {
	kernel := func(th *Thread) { th.Ops(10000) }
	old := NewDevice(GeForce9800GT).Launch("k", 9600, kernel)
	kep := NewDevice(GTX880M).Launch("k", 9600, kernel)
	pas := NewDevice(TitanXPascal).Launch("k", 9600, kernel)
	if !(pas.Time < kep.Time && kep.Time < old.Time) {
		t.Fatalf("device ordering violated: pascal=%v kepler=%v 9800gt=%v",
			pas.Time, kep.Time, old.Time)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	d := NewDevice(GTX880M)
	small := d.TransferTime(1 << 10)
	big := d.TransferTime(1 << 24)
	if small <= 0 || big <= small {
		t.Fatalf("transfer times: small=%v big=%v", small, big)
	}
}

func TestSetWorkersStillCorrect(t *testing.T) {
	d := NewDevice(TitanXPascal)
	d.SetWorkers(1)
	st1 := d.Launch("k", 1000, func(th *Thread) { th.Ops(3) })
	d.SetWorkers(8)
	st8 := d.Launch("k", 1000, func(th *Thread) { th.Ops(3) })
	if st1.TotalOps != st8.TotalOps || st1.Time != st8.Time {
		t.Fatalf("worker count changed the model: %+v vs %+v", st1, st8)
	}
}

func TestOccupancyFor(t *testing.T) {
	d := NewDevice(TitanXPascal) // 28 SMs
	o := d.OccupancyFor(0)
	if o.Blocks != 0 || o.Waves != 0 {
		t.Fatalf("empty occupancy = %+v", o)
	}
	// 96 threads = 1 block: one partial wave, 1/28 SM fill.
	o = d.OccupancyFor(96)
	if o.Blocks != 1 || o.Waves != 1 || o.TailBlocks != 1 {
		t.Fatalf("one-block occupancy = %+v", o)
	}
	if o.ThreadFill != 1 {
		t.Fatalf("ThreadFill = %v", o.ThreadFill)
	}
	if o.SMFill <= 0 || o.SMFill > 1.0/28+1e-9 {
		t.Fatalf("SMFill = %v", o.SMFill)
	}
	// 28 full blocks: one full wave.
	o = d.OccupancyFor(28 * ThreadsPerBlock)
	if o.Waves != 1 || o.SMFill != 1 || o.TailBlocks != 0 {
		t.Fatalf("full-wave occupancy = %+v", o)
	}
	// 29 blocks: two waves, second nearly empty.
	o = d.OccupancyFor(29 * ThreadsPerBlock)
	if o.Waves != 2 || o.TailBlocks != 1 {
		t.Fatalf("two-wave occupancy = %+v", o)
	}
	// Partial last block lowers thread fill.
	o = d.OccupancyFor(100)
	if o.Blocks != 2 || o.ThreadFill != 100.0/192 {
		t.Fatalf("partial-block occupancy = %+v", o)
	}
}

func TestDivergenceConvergedKernel(t *testing.T) {
	d := NewDevice(TitanXPascal)
	st := d.Launch("conv", 960, func(th *Thread) { th.Ops(10) })
	if got := st.Divergence(); got != 0 {
		t.Fatalf("uniform kernel divergence = %v, want 0", got)
	}
}

func TestDivergenceDivergentKernel(t *testing.T) {
	d := NewDevice(TitanXPascal)
	// Half of each warp does 10x the work: heavy divergence.
	st := d.Launch("div", 960, func(th *Thread) {
		if th.Lane%2 == 0 {
			th.Ops(100)
		} else {
			th.Ops(10)
		}
	})
	got := st.Divergence()
	// Waste per warp: slots = 32*100; used = 16*100+16*10 = 1760;
	// waste fraction = (3200-1760)/3200 = 0.45.
	if got < 0.44 || got > 0.46 {
		t.Fatalf("divergence = %v, want ~0.45", got)
	}
}

func TestDivergenceZeroOpsKernel(t *testing.T) {
	d := NewDevice(GeForce9800GT)
	st := d.Launch("zero", 96, func(th *Thread) {})
	if st.Divergence() != 0 {
		t.Fatalf("zero-op kernel divergence = %v", st.Divergence())
	}
}
