// Package replay records and replays simulation runs. A Recorder
// writes one JSON line per period — the schedule outcome plus (at a
// configurable stride) full aircraft snapshots — so a run can be
// archived, diffed against a later build as a regression check, or fed
// to external plotting. A Reader streams the records back and can
// reconstruct the world at any snapshot.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/airspace"
)

// AircraftState is the serialized form of one flight record.
type AircraftState struct {
	ID       int32   `json:"id"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	DX       float64 `json:"dx"`
	DY       float64 `json:"dy"`
	Alt      float64 `json:"alt"`
	Col      bool    `json:"col,omitempty"`
	ColWith  int32   `json:"colWith,omitempty"`
	TimeTill float64 `json:"timeTill,omitempty"`
}

// Record is one period's log line.
type Record struct {
	// Period is the global period index (0-based).
	Period int `json:"period"`
	// Task1 and Task23 are the modeled durations in nanoseconds
	// (Task23 is 0 in periods where it is not scheduled).
	Task1  time.Duration `json:"task1"`
	Task23 time.Duration `json:"task23,omitempty"`
	// Missed reports whether the period missed its deadline.
	Missed bool `json:"missed,omitempty"`
	// Aircraft is the full snapshot, present every SnapshotStride-th
	// period (and always in period 0).
	Aircraft []AircraftState `json:"aircraft,omitempty"`
}

// Recorder writes records as JSON lines.
type Recorder struct {
	w *bufio.Writer
	// SnapshotStride controls how often full world snapshots are
	// embedded: every k-th period (1 = every period; 0 = default 16).
	SnapshotStride int
	periods        int
}

// NewRecorder returns a Recorder writing to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriter(w), SnapshotStride: 16}
}

// Snapshot converts a world into its serialized form.
func Snapshot(w *airspace.World) []AircraftState {
	out := make([]AircraftState, w.N())
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		out[i] = AircraftState{
			ID: a.ID, X: a.X, Y: a.Y, DX: a.DX, DY: a.DY, Alt: a.Alt,
			Col: a.Col, ColWith: a.ColWith, TimeTill: a.TimeTill,
		}
	}
	return out
}

// Restore rebuilds a world from a snapshot.
func Restore(states []AircraftState) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, len(states))}
	for i, s := range states {
		a := &w.Aircraft[i]
		a.ID, a.X, a.Y, a.DX, a.DY, a.Alt = s.ID, s.X, s.Y, s.DX, s.DY, s.Alt
		a.Col, a.ColWith, a.TimeTill = s.Col, s.ColWith, s.TimeTill
		if !s.Col {
			a.ColWith = airspace.NoConflict
			a.TimeTill = airspace.SafeTime
		}
	}
	return w
}

// WritePeriod appends one period record, embedding a world snapshot on
// the configured stride.
func (r *Recorder) WritePeriod(w *airspace.World, task1, task23 time.Duration, missed bool) error {
	stride := r.SnapshotStride
	if stride <= 0 {
		stride = 16
	}
	rec := Record{Period: r.periods, Task1: task1, Task23: task23, Missed: missed}
	if r.periods%stride == 0 {
		rec.Aircraft = Snapshot(w)
	}
	r.periods++
	b, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	if _, err := r.w.Write(b); err != nil {
		return err
	}
	return r.w.WriteByte('\n')
}

// Flush flushes buffered records to the underlying writer.
func (r *Recorder) Flush() error { return r.w.Flush() }

// Reader streams records back.
type Reader struct {
	s *bufio.Scanner
}

// NewReader returns a Reader over a record stream.
func NewReader(rd io.Reader) *Reader {
	s := bufio.NewScanner(rd)
	s.Buffer(make([]byte, 1<<20), 64<<20) // snapshots of large worlds
	return &Reader{s: s}
}

// Next returns the next record, or io.EOF.
func (r *Reader) Next() (*Record, error) {
	if !r.s.Scan() {
		if err := r.s.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	var rec Record
	if err := json.Unmarshal(r.s.Bytes(), &rec); err != nil {
		return nil, fmt.Errorf("replay: bad record: %w", err)
	}
	return &rec, nil
}

// Summary aggregates a whole stream.
type Summary struct {
	Periods   int
	Misses    int
	Snapshots int
	Task1     time.Duration
	Task23    time.Duration
}

// Summarize consumes the stream and aggregates it.
func Summarize(rd io.Reader) (Summary, error) {
	var s Summary
	r := NewReader(rd)
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.Periods++
		if rec.Missed {
			s.Misses++
		}
		if len(rec.Aircraft) > 0 {
			s.Snapshots++
		}
		s.Task1 += rec.Task1
		s.Task23 += rec.Task23
	}
}
