package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OrderedMerge enforces the load-bearing correctness property of the
// parallel engine: per-chunk partial results must be folded in
// ascending chunk index order, so first-wins tie-breaks and
// non-associative floating-point folds reproduce the serial reference
// bit for bit. A function marked //atm:ordered-merge must
//
//   - contain at least one index-ascending loop (an incrementing for
//     loop or a range over a slice/array — Go ranges slices in
//     ascending index order by specification),
//   - contain no descending for loop, and
//   - use no map anywhere (map iteration order would reorder the
//     merge; map intermediaries are banned outright).
var OrderedMerge = &Analyzer{
	Name: "orderedmerge",
	Doc:  "functions marked //atm:ordered-merge must fold per-chunk partials with index-ascending loops and no map intermediaries",
	Run:  runOrderedMerge,
}

func runOrderedMerge(pass *Pass) error {
	for _, fn := range pass.Dirs.AnnotatedFuncs(KindOrderedMerge) {
		checkOrderedMerge(pass, fn)
	}
	return nil
}

func checkOrderedMerge(pass *Pass, fn ast.Node) {
	body, _ := funcParts(pass, fn)
	if body == nil {
		return
	}
	ascending := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			switch post := n.Post.(type) {
			case *ast.IncDecStmt:
				if post.Tok == token.INC {
					ascending = true
				} else {
					pass.Reportf(n.Pos(), "atm:ordered-merge: descending for loop; partials must be folded in ascending index order to preserve first-wins tie-breaks")
				}
			case *ast.AssignStmt:
				switch post.Tok {
				case token.ADD_ASSIGN:
					ascending = true
				case token.SUB_ASSIGN:
					pass.Reportf(n.Pos(), "atm:ordered-merge: descending for loop; partials must be folded in ascending index order to preserve first-wins tie-breaks")
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Basic:
				ascending = true // slices, arrays, strings, and range-over-int all ascend
			case *types.Pointer: // range over *[N]T
				ascending = true
			case *types.Map:
				pass.Reportf(n.Pos(), "atm:ordered-merge: range over a map merges partials in nondeterministic order; index the partials by chunk number and fold ascending")
			}
		}
		// Any other map use is a banned intermediary.
		if expr, ok := n.(ast.Expr); ok {
			if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					switch n.(type) {
					case *ast.CompositeLit:
						pass.Reportf(n.Pos(), "atm:ordered-merge: map intermediary; store partials in a chunk-indexed slice instead")
					case *ast.CallExpr:
						pass.Reportf(n.Pos(), "atm:ordered-merge: map intermediary; store partials in a chunk-indexed slice instead")
					}
				}
			}
		}
		if ix, ok := n.(*ast.IndexExpr); ok {
			if tv, ok := pass.TypesInfo.Types[ix.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "atm:ordered-merge: map access; partials must live in a chunk-indexed slice")
				}
			}
		}
		return true
	})
	if !ascending {
		pass.Reportf(fn.Pos(), "atm:ordered-merge: no index-ascending merge loop found in this function")
	}
}

// Analyzers returns the per-package atmlint suite in stable order.
// Wall-clock reachability from modeled-time roots lives in the
// interprocedural suite (FlowAnalyzers) since it crossed package
// boundaries; see modeledtimeflow.go.
func Analyzers() []*Analyzer {
	return []*Analyzer{DirectiveCheck, Determinism, Noalloc, OrderedMerge, SyncField}
}
