// Package vector models the commodity wide-vector processor of the
// paper's Section 7.2 future work: "implement the basic ATM tasks ...
// in these commodity processors (such as Intel's Xeon Phi) that provide
// efficient, vector-based parallel computation" [8, 9].
//
// The machine is a many-core CPU whose cores each execute W-lane SIMD
// instructions. The ATM tasks are written here in explicitly
// lane-blocked form — the aircraft database is scanned eight records at
// a time through mask registers, exactly as a vectorizing port of the
// CUDA kernels would be — and every vector instruction is counted. The
// cost model charges the per-core critical path of vector instructions
// at the profile's issue rate, plus a barrier per parallel phase. No
// OS-jitter term is modeled: the package answers the paper's question
// "could wide SIMD units give the deterministic, SIMD-like behaviour
// the GPUs showed?" for the idealized case where the vector units are
// driven without scheduling noise. In reality a Xeon Phi would sit
// between the GPU and the Xeon models.
package vector

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/geom"
	"repro/internal/parexec"
	"repro/internal/radar"
	"repro/internal/tasks"
)

// Lanes is the vector width in float64 lanes (AVX-512: 8 doubles).
const Lanes = 8

// Profile describes one wide-vector machine.
type Profile struct {
	// Name of the machine.
	Name string
	// Cores is the number of physical cores driving vector units.
	Cores int
	// ClockHz is the core clock.
	ClockHz float64
	// IssueRate is sustained vector instructions per cycle per core.
	IssueRate float64
	// BarrierCost is charged once per parallel phase.
	BarrierCost time.Duration
}

// XeonPhi7210 is a Knights Landing part: 64 cores at 1.3 GHz with dual
// AVX-512 units (modeled as one sustained vector instruction per cycle
// after memory stalls).
var XeonPhi7210 = Profile{
	Name:        "Xeon Phi 7210 (AVX-512)",
	Cores:       64,
	ClockHz:     1.3e9,
	IssueRate:   1.0,
	BarrierCost: 20 * time.Microsecond,
}

// AVX2Workstation is a conventional 8-core desktop with 4-lane doubles,
// for the "increasingly wide vector units on commodity processors"
// comparison at the small end.
var AVX2Workstation = Profile{
	Name:        "8-core AVX2 workstation",
	Cores:       8,
	ClockHz:     3.6e9,
	IssueRate:   1.0,
	BarrierCost: 5 * time.Microsecond,
}

// Machine executes the ATM tasks in lane-blocked SIMD form. A Machine
// is not safe for concurrent use: it owns reusable scratch arrays so
// steady-state task invocations allocate nothing.
type Machine struct {
	prof Profile
	src  broadphase.PairSource
	pool *parexec.Pool

	soa   soa
	tally tally
	// Per-pass claim scratch for Track.
	acClaims  []int32
	radarHits []int32
	radarCand []int32
	// Resolution scratch for DetectResolve.
	newDX, newDY []float64
	resolved     []bool
	// Per-core candidate buffers for the pruned gather scan.
	bufs []candBuf

	// Telemetry phase marks: per-core cumulative instruction
	// snapshots taken after each parallel phase when a recorder is
	// attached. Machine-owned scratch, reused across tasks.
	marks   []phaseMark
	markOps []uint64 // len(marks)*Cores snapshots
	marksOn bool
}

// candBuf is one modeled core's candidate buffer, padded against false
// sharing of the slice headers.
type candBuf struct {
	cand []int32
	_    [40]byte
}

// phaseMark names one parallel phase; its per-core cumulative
// instruction snapshot lives at the matching offset of markOps.
type phaseMark struct {
	name string
	arg  int32
}

// beginMarks clears the mark log and enables collection for the next
// task (telemetry; see the platform adapter).
func (m *Machine) beginMarks() {
	m.marks = m.marks[:0]
	m.markOps = m.markOps[:0]
	m.marksOn = true
}

// New returns a machine for the profile.
func New(p Profile) *Machine {
	if p.Cores <= 0 || p.ClockHz <= 0 || p.IssueRate <= 0 {
		panic(fmt.Sprintf("vector: bad profile %+v", p))
	}
	return &Machine{prof: p}
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.prof.Name }

// SetPairSource installs a broadphase pair source for the Tasks 2-3
// scan (nil restores the all-pairs lane sweep). Pruned scans walk the
// candidate list through gather loads instead of contiguous blocks.
func (m *Machine) SetPairSource(src broadphase.PairSource) { m.src = src }

// SetWorkers pins the host worker count that executes the modeled
// cores (n <= 0 restores the process-default pool). The per-core
// vector-instruction tallies come from the static core partition, so
// modeled time is identical at any worker count.
func (m *Machine) SetWorkers(n int) {
	if n <= 0 {
		m.pool = nil
	} else {
		m.pool = parexec.NewPool(n)
	}
}

// Deterministic reports true for the idealized vector model (see the
// package comment for the caveat).
func (m *Machine) Deterministic() bool { return true }

// block is one W-lane vector register of doubles.
type block [Lanes]float64

// mask is one W-lane predicate register.
type mask [Lanes]bool

// none reports whether no lane is set.
func (k *mask) none() bool {
	for _, b := range k {
		if b {
			return false
		}
	}
	return true
}

// count returns the number of set lanes.
func (k *mask) count() int {
	c := 0
	for _, b := range k {
		if b {
			c++
		}
	}
	return c
}

// lanes is a helper that loads a strided field into a vector register;
// tail lanes beyond n are disabled in the returned mask.
func loadField(dst *block, valid *mask, src []float64, base, n int) {
	for l := 0; l < Lanes; l++ {
		if base+l < n {
			dst[l] = src[base+l]
			valid[l] = true
		} else {
			dst[l] = 0
			valid[l] = false
		}
	}
}

// soa is the structure-of-arrays mirror of the aircraft database that
// vector code operates on (vector units need contiguous fields).
type soa struct {
	n                 int
	x, y, dx, dy, alt []float64
	expX, expY        []float64
	rmatch            []int32
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// loadSOA refreshes the machine's reusable structure-of-arrays mirror
// from the world.
func (m *Machine) loadSOA(w *airspace.World) *soa {
	n := w.N()
	s := &m.soa
	s.n = n
	s.x, s.y = growF(s.x, n), growF(s.y, n)
	s.dx, s.dy = growF(s.dx, n), growF(s.dy, n)
	s.alt = growF(s.alt, n)
	s.expX, s.expY = growF(s.expX, n), growF(s.expY, n)
	if cap(s.rmatch) < n {
		s.rmatch = make([]int32, n)
	}
	s.rmatch = s.rmatch[:n]
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		s.x[i], s.y[i] = a.X, a.Y
		s.dx[i], s.dy[i] = a.DX, a.DY
		s.alt[i] = a.Alt
	}
	return s
}

// tally accumulates per-core vector-instruction counts.
type tally struct {
	vecInstr []uint64
	phases   int
}

// max folds the per-core instruction tallies to the critical-path
// maximum.
//
//atm:ordered-merge
func (t *tally) max() uint64 {
	var m uint64
	for _, v := range t.vecInstr {
		if v > m {
			m = v
		}
	}
	return m
}

// parallel splits [0, n) across the modeled cores using the static
// contiguous partition, multiplexing the logical cores onto the host
// worker pool. Partitions — and so per-core instruction tallies and
// the modeled critical path — depend only on the core count; the host
// worker count affects wall-clock speed alone.
func (m *Machine) parallel(t *tally, name string, arg int32, n int, body func(core, lo, hi int)) {
	t.phases++
	cores := m.prof.Cores
	parexec.Resolve(m.pool).Run(cores, 1, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * n / cores
			hi := (c + 1) * n / cores
			if lo < hi {
				body(c, lo, hi)
			}
		}
	})
	if m.marksOn {
		m.marks = append(m.marks, phaseMark{name: name, arg: arg})
		m.markOps = append(m.markOps, t.vecInstr...)
	}
}

// newTally resets and returns the machine's reusable tally.
func (m *Machine) newTally() *tally {
	t := &m.tally
	if cap(t.vecInstr) < m.prof.Cores {
		t.vecInstr = make([]uint64, m.prof.Cores)
	}
	t.vecInstr = t.vecInstr[:m.prof.Cores]
	for i := range t.vecInstr {
		t.vecInstr[i] = 0
	}
	t.phases = 0
	return t
}

// taskTime converts the tally into modeled time.
func (m *Machine) taskTime(t *tally) time.Duration {
	secs := float64(t.max()) / (m.prof.IssueRate * m.prof.ClockHz)
	return time.Duration(secs*float64(time.Second)) +
		time.Duration(t.phases)*m.prof.BarrierCost
}

// Vector-instruction charges per lane-block of work. A bounding-box
// test on 8 records is ~6 vector instructions (2 subs, 4 compares +
// mask ands); the Batcher window evaluation ~20 (4 divisions dominate).
const (
	viExpected = 3
	viBoxCheck = 6
	viClaim    = 2
	viPair     = 20
	viCommit   = 3
	// viGather is the extra charge when a pair block is assembled with
	// gather loads from a candidate index list instead of contiguous
	// vector loads.
	viGather = 4
	// viIndex is the per-block charge of the broadphase index build.
	viIndex = 4
)

// Track runs Task 1 with radars partitioned across cores and the
// aircraft database scanned in 8-lane blocks. Matching uses the same
// barrier-separated census/claim/arbitrate/finalize scheme as the CUDA
// kernel: each phase reads only state frozen at the previous barrier,
// which makes both the outcome and the per-core instruction tally —
// and therefore the modeled time — a pure function of the workload.
//
//atm:allow atomic -- claim counters and match tallies are commutative sums read only after the phase barrier
func (m *Machine) Track(w *airspace.World, f *radar.Frame) (tasks.CorrelateStats, time.Duration) {
	var st tasks.CorrelateStats
	s := m.loadSOA(w)
	t := m.newTally()
	reps := f.Reports
	n := s.n

	// Expected positions: pure vector adds over the whole database.
	m.parallel(t, "expected", 0, n, func(core, lo, hi int) {
		var vi uint64
		for base := lo; base < hi; base += Lanes {
			end := base + Lanes
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				s.expX[i] = s.x[i] + s.dx[i]
				s.expY[i] = s.y[i] + s.dy[i]
				s.rmatch[i] = 0
			}
			vi += viExpected
		}
		t.vecInstr[core] += vi
	})
	f.Reset()

	if cap(m.acClaims) < n {
		m.acClaims = make([]int32, n)
	}
	if cap(m.radarHits) < len(reps) {
		m.radarHits = make([]int32, len(reps))
		m.radarCand = make([]int32, len(reps))
	}
	acClaims := m.acClaims[:n]
	radarHits := m.radarHits[:len(reps)]
	radarCand := m.radarCand[:len(reps)]
	for i := range acClaims {
		acClaims[i] = 0
	}

	boxHalf := tasks.InitialBoxHalf
	for pass := 0; pass < tasks.BoxPasses; pass++ {
		pending := 0
		for j := range reps {
			if reps[j].MatchWith == radar.Unmatched {
				pending++
			}
		}
		if pass < tasks.BoxPasses {
			st.PassRadars[pass] = pending
		}
		if pending == 0 {
			break
		}
		var comparisons, discarded, withdrawn uint64

		// Census: every still-unmatched radar scans the database in
		// lane blocks. Match state is frozen for the whole phase.
		m.parallel(t, "census", int32(pass), len(reps), func(core, lo, hi int) {
			var vi, comps uint64
			for j := lo; j < hi; j++ {
				rep := &reps[j]
				radarHits[j] = 0
				radarCand[j] = -1
				if rep.MatchWith != radar.Unmatched {
					continue
				}
				hits := int32(0)
				cand := int32(-1)
				for base := 0; base < n; base += Lanes {
					var ex, ey block
					var valid mask
					loadField(&ex, &valid, s.expX, base, n)
					loadField(&ey, &valid, s.expY, base, n)
					vi += viBoxCheck
					comps += uint64(valid.count())
					for l := 0; l < Lanes; l++ {
						if !valid[l] {
							continue
						}
						i := base + l
						if s.rmatch[i] != 0 {
							continue // matched or withdrawn
						}
						if rep.RX > ex[l]-boxHalf && rep.RX < ex[l]+boxHalf &&
							rep.RY > ey[l]-boxHalf && rep.RY < ey[l]+boxHalf {
							hits++
							cand = int32(i)
						}
					}
					if hits > 1 {
						break
					}
				}
				radarHits[j] = hits
				radarCand[j] = cand
			}
			t.vecInstr[core] += vi
			atomic.AddUint64(&comparisons, comps)
		})

		// Claim: ambiguous radars are discarded; unique candidates are
		// claimed with a commutative counter.
		m.parallel(t, "claim", int32(pass), len(reps), func(core, lo, hi int) {
			var vi uint64
			for j := lo; j < hi; j++ {
				rep := &reps[j]
				if rep.MatchWith != radar.Unmatched {
					continue
				}
				vi += viClaim
				switch {
				case radarHits[j] >= 2:
					rep.MatchWith = radar.Discarded
					atomic.AddUint64(&discarded, 1)
				case radarHits[j] == 1:
					atomic.AddInt32(&acClaims[radarCand[j]], 1)
				}
			}
			t.vecInstr[core] += vi
		})

		// Arbitrate: contested aircraft are withdrawn.
		m.parallel(t, "arbitrate", int32(pass), n, func(core, lo, hi int) {
			var vi uint64
			for i := lo; i < hi; i++ {
				if i%Lanes == 0 {
					vi += viClaim
				}
				if acClaims[i] >= 2 && s.rmatch[i] == 0 {
					s.rmatch[i] = -1
					atomic.AddUint64(&withdrawn, 1)
				}
			}
			t.vecInstr[core] += vi
		})

		// Finalize: surviving unique claims become matches; clear the
		// claim counters for the next pass.
		m.parallel(t, "finalize", int32(pass), len(reps), func(core, lo, hi int) {
			var vi uint64
			for j := lo; j < hi; j++ {
				rep := &reps[j]
				if rep.MatchWith != radar.Unmatched || radarHits[j] != 1 {
					continue
				}
				vi += viClaim
				cand := radarCand[j]
				if acClaims[cand] == 1 && s.rmatch[cand] == 0 {
					s.rmatch[cand] = 1
					rep.MatchWith = cand
				}
			}
			t.vecInstr[core] += vi
		})
		m.parallel(t, "clearClaims", int32(pass), n, func(core, lo, hi int) {
			for i := lo; i < hi; i++ {
				acClaims[i] = 0
			}
			t.vecInstr[core] += uint64((hi - lo + Lanes - 1) / Lanes)
		})

		st.Comparisons += int(comparisons)
		st.DiscardedRadars += int(discarded)
		st.WithdrawnAircraft += int(withdrawn)
		boxHalf *= 2
	}

	// Commit.
	m.parallel(t, "commit", 0, n, func(core, lo, hi int) {
		var vi uint64
		for i := lo; i < hi; i++ {
			a := &w.Aircraft[i]
			a.X, a.Y = s.expX[i], s.expY[i]
			a.RMatch = int8(s.rmatch[i])
			if i%Lanes == 0 {
				vi += viCommit
			}
		}
		t.vecInstr[core] += vi
	})
	var matched uint64
	m.parallel(t, "commitRadar", 0, len(reps), func(core, lo, hi int) {
		for j := lo; j < hi; j++ {
			rep := &reps[j]
			if rep.MatchWith >= 0 && s.rmatch[rep.MatchWith] == 1 {
				a := &w.Aircraft[rep.MatchWith]
				a.X, a.Y = rep.RX, rep.RY
				atomic.AddUint64(&matched, 1)
			}
		}
		t.vecInstr[core] += uint64((hi - lo + Lanes - 1) / Lanes * viCommit)
	})
	st.Matched = int(matched)
	for j := range reps {
		if reps[j].MatchWith == radar.Unmatched {
			st.UnmatchedRadars++
		}
	}
	m.parallel(t, "wrap", 0, n, func(core, lo, hi int) {
		for i := lo; i < hi; i++ {
			airspace.Wrap(&w.Aircraft[i])
		}
		t.vecInstr[core] += uint64((hi - lo + Lanes - 1) / Lanes * viCommit)
	})

	return st, m.taskTime(t)
}

// DetectResolve runs Tasks 2-3: each core owns a slice of track
// aircraft; the inner trial scan evaluates the Batcher window for eight
// trial aircraft at a time against a pre-kernel snapshot (the same
// snapshot discipline as the CUDA kernel).
//
//atm:allow atomic -- conflict and rotation tallies are order-independent sums read only after the join
func (m *Machine) DetectResolve(w *airspace.World) (tasks.DetectStats, time.Duration) {
	s := m.loadSOA(w)
	t := m.newTally()
	n := s.n
	m.newDX = growF(m.newDX, n)
	m.newDY = growF(m.newDY, n)
	if cap(m.resolved) < n {
		m.resolved = make([]bool, n)
	}
	if len(m.bufs) < m.prof.Cores {
		m.bufs = make([]candBuf, m.prof.Cores)
	}
	newDX, newDY := m.newDX, m.newDY
	resolved := m.resolved[:n]
	copy(newDX, s.dx)
	copy(newDY, s.dy)
	for i := range resolved {
		resolved[i] = false
	}

	// Broadphase index build, charged as one lane-blocked phase. An
	// incremental source builds from the machine's SoA mirror (viewed
	// as airspace.Columns — same backing arrays, no copy) and reports
	// update vs rebuild in the phase name; the charge is identical in
	// both modes, as bit-identity requires.
	if m.src != nil {
		name := "index"
		if im := broadphase.MaintainerOf(m.src); im != nil && im.Incremental() {
			if cp, ok := im.(broadphase.ColumnsPreparer); ok {
				cols := airspace.Columns{X: s.x, Y: s.y, DX: s.dx, DY: s.dy, Alt: s.alt}
				cp.PrepareColumns(&cols)
			} else {
				m.src.Prepare(w)
			}
			if im.LastPrepareIncremental() {
				name = "index.update"
			} else {
				name = "index.rebuild"
			}
		} else {
			m.src.Prepare(w)
		}
		m.parallel(t, name, 0, n, func(core, lo, hi int) {
			t.vecInstr[core] += uint64((hi-lo+Lanes-1)/Lanes) * viIndex
		})
	}

	// A sharded source additionally materializes the candidate table on
	// the host pool; the gather scans then serve from it bit-identically
	// (candidate sets depend only on positions and speeds, which
	// resolution's rotations preserve), with the same modeled charge.
	var tab *broadphase.PairTable
	if ts := broadphase.TableOf(m.src); ts != nil {
		ts.SetPool(parexec.Resolve(m.pool))
		tab = ts.PrepareTable()
	}

	var conflicts, rotations, resolvedCount, unresolvedCount, pairChecks int64

	// scanLane folds one trial record into the running minimum.
	scanLane := func(i, p int, tx, ty, tdx, tdy, talt float64, vx, vy float64,
		checks *uint64, earliest *float64, with *int32) {
		if p == i || math.Abs(talt-s.alt[i]) >= airspace.AltBandFeet {
			return
		}
		*checks++
		tmin, tmax, ok := tasks.PairConflictAt(s.x[i], s.y[i], vx, vy, tx, ty, tdx, tdy)
		if ok && tmin < tmax && tmin < *earliest {
			*earliest = tmin
			*with = int32(p)
		}
	}

	// scan evaluates one candidate course for track i in lane blocks:
	// contiguous loads over the whole database, or gather loads over the
	// broadphase candidate list.
	scan := func(core int, i int, vx, vy float64) (earliest float64, with int32, critical bool) {
		earliest = airspace.SafeTime
		with = airspace.NoConflict
		var vi, checks uint64
		if m.src == nil {
			for base := 0; base < n; base += Lanes {
				var tx, ty, tdx, tdy, talt block
				var valid mask
				loadField(&tx, &valid, s.x, base, n)
				loadField(&ty, &valid, s.y, base, n)
				loadField(&tdx, &valid, s.dx, base, n)
				loadField(&tdy, &valid, s.dy, base, n)
				loadField(&talt, &valid, s.alt, base, n)
				vi += viPair
				for l := 0; l < Lanes; l++ {
					if !valid[l] {
						continue
					}
					scanLane(i, base+l, tx[l], ty[l], tdx[l], tdy[l], talt[l], vx, vy,
						&checks, &earliest, &with)
				}
			}
		} else {
			var cand []int32
			if tab != nil {
				cand = tab.Candidates(i)
			} else {
				buf := &m.bufs[core]
				buf.cand = m.src.AppendCandidates(buf.cand[:0], w, &w.Aircraft[i])
				cand = buf.cand
			}
			for base := 0; base < len(cand); base += Lanes {
				end := base + Lanes
				if end > len(cand) {
					end = len(cand)
				}
				vi += viPair + viGather
				for _, p32 := range cand[base:end] {
					p := int(p32)
					scanLane(i, p, s.x[p], s.y[p], s.dx[p], s.dy[p], s.alt[p], vx, vy,
						&checks, &earliest, &with)
				}
			}
		}
		t.vecInstr[core] += vi
		atomic.AddInt64(&pairChecks, int64(checks))
		return earliest, with, earliest < airspace.CriticalTime
	}

	m.parallel(t, "scanresolve", 0, n, func(core, lo, hi int) {
		for i := lo; i < hi; i++ {
			a := &w.Aircraft[i]
			a.ResetConflict()
			tmin, with, critical := scan(core, i, s.dx[i], s.dy[i])
			if !critical {
				continue
			}
			atomic.AddInt64(&conflicts, 1)
			a.Col = true
			a.ColWith = with
			a.TimeTill = tmin
			base := geom.Vec2{X: s.dx[i], Y: s.dy[i]}
			done := false
			for _, deg := range tasks.RotationSchedule() {
				atomic.AddInt64(&rotations, 1)
				v := base.Rotate(deg)
				a.BatX, a.BatY = v.X, v.Y
				tmin, with, critical = scan(core, i, v.X, v.Y)
				if !critical {
					newDX[i], newDY[i] = v.X, v.Y
					resolved[i] = true
					atomic.AddInt64(&resolvedCount, 1)
					done = true
					break
				}
				a.ColWith = with
				if tmin < a.TimeTill {
					a.TimeTill = tmin
				}
			}
			if !done {
				atomic.AddInt64(&unresolvedCount, 1)
			}
		}
	})

	m.parallel(t, "commit", 0, n, func(core, lo, hi int) {
		for i := lo; i < hi; i++ {
			if resolved[i] {
				a := &w.Aircraft[i]
				a.DX, a.DY = newDX[i], newDY[i]
				a.ResetConflict()
			}
		}
		t.vecInstr[core] += uint64((hi - lo + Lanes - 1) / Lanes * viCommit)
	})

	st := tasks.DetectStats{
		Conflicts:  int(conflicts),
		Rotations:  int(rotations),
		Resolved:   int(resolvedCount),
		Unresolved: int(unresolvedCount),
		PairChecks: int(pairChecks),
	}
	return st, m.taskTime(t)
}
