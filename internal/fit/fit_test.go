package fit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearExactRecovery(t *testing.T) {
	// y = 3 + 2x fitted exactly.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 + 2*v
	}
	r, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.Coeffs[0], 3, 1e-9) || !almostEq(r.Coeffs[1], 2, 1e-9) {
		t.Fatalf("coeffs = %v, want [3 2]", r.Coeffs)
	}
	if !almostEq(r.R2, 1, 1e-12) || !almostEq(r.SSE, 0, 1e-9) {
		t.Fatalf("perfect fit has R2=%v SSE=%v", r.R2, r.SSE)
	}
}

func TestQuadraticExactRecovery(t *testing.T) {
	// y = 1 - 0.5x + 0.25x^2 over a realistic aircraft-count domain.
	x := []float64{1000, 2000, 4000, 8000, 16000, 32000}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 1 - 0.5*v + 0.25*v*v
	}
	r, err := Quadratic(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.Coeffs[0], 1, 1e-4) || !almostEq(r.Coeffs[1], -0.5, 1e-7) || !almostEq(r.Coeffs[2], 0.25, 1e-10) {
		t.Fatalf("coeffs = %v, want [1 -0.5 0.25]", r.Coeffs)
	}
}

func TestCubicRecovery(t *testing.T) {
	x := []float64{-3, -2, -1, 0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2 + v - 0.5*v*v + 0.125*v*v*v
	}
	r, err := Poly(x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, -0.5, 0.125}
	for i := range want {
		if !almostEq(r.Coeffs[i], want[i], 1e-8) {
			t.Fatalf("coeffs = %v, want %v", r.Coeffs, want)
		}
	}
}

func TestNoisyLinearGoodness(t *testing.T) {
	// Linear data with small noise: R2 near 1 but SSE > 0, RMSE close
	// to the noise scale.
	r := rng.New(5)
	var x, y []float64
	for i := 1; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, 10+3*float64(i)+r.Noise(0.5))
	}
	res, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.999 {
		t.Fatalf("R2 = %v for nearly-linear data", res.R2)
	}
	if res.SSE <= 0 {
		t.Fatal("noisy fit reported zero SSE")
	}
	if res.RMSE <= 0 || res.RMSE > 1 {
		t.Fatalf("RMSE = %v, expected around the 0.29 noise sigma", res.RMSE)
	}
	if res.AdjR2 > res.R2 {
		t.Fatalf("adjusted R2 (%v) must not exceed R2 (%v)", res.AdjR2, res.R2)
	}
}

func TestQuadraticBeatsLinearOnQuadraticData(t *testing.T) {
	// The paper's Fig. 9 methodology: choose the model by goodness of
	// fit.
	var x, y []float64
	for i := 1; i <= 20; i++ {
		v := float64(i)
		x = append(x, v)
		y = append(y, 5+v+0.3*v*v)
	}
	lin, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Quadratic(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if quad.SSE >= lin.SSE {
		t.Fatalf("quadratic SSE %v not below linear SSE %v", quad.SSE, lin.SSE)
	}
	if quad.AdjR2 <= lin.AdjR2 {
		t.Fatalf("quadratic adjR2 %v not above linear %v", quad.AdjR2, lin.AdjR2)
	}
}

func TestBadInput(t *testing.T) {
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("too few points accepted")
	}
	if _, err := Poly([]float64{1, 2, 3}, []float64{1, 2, 3}, -1); err == nil {
		t.Fatal("negative degree accepted")
	}
}

func TestSingularInput(t *testing.T) {
	// All x identical: the normal equations are singular.
	x := []float64{5, 5, 5, 5}
	y := []float64{1, 2, 3, 4}
	if _, err := Linear(x, y); err == nil {
		t.Fatal("degenerate x values accepted")
	}
}

func TestConstantData(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{7, 7, 7, 7}
	r, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.Coeffs[0], 7, 1e-9) || !almostEq(r.Coeffs[1], 0, 1e-9) {
		t.Fatalf("coeffs = %v", r.Coeffs)
	}
	if r.R2 != 1 {
		t.Fatalf("constant data R2 = %v", r.R2)
	}
}

func TestEvalHorner(t *testing.T) {
	r := &Result{Coeffs: []float64{1, 2, 3}} // 1 + 2x + 3x^2
	if got := r.Eval(2); got != 17 {
		t.Fatalf("Eval(2) = %v, want 17", got)
	}
	if r.Degree() != 2 {
		t.Fatalf("Degree = %d", r.Degree())
	}
}

func TestNearLinearClassification(t *testing.T) {
	// Tiny quadratic coefficient over the domain: near-linear (Fig. 9's
	// conclusion).
	q := &Result{Coeffs: []float64{0, 1e-3, 1e-9}}
	ratio, ok := NearLinear(q, 32000, 0.1)
	if !ok {
		t.Fatalf("ratio %v should classify as near-linear", ratio)
	}
	// Dominant quadratic term: not near-linear.
	q2 := &Result{Coeffs: []float64{0, 1e-3, 1e-3}}
	if _, ok := NearLinear(q2, 32000, 0.1); ok {
		t.Fatal("strongly quadratic curve classified as near-linear")
	}
	// Degenerate: no linear term at all.
	q3 := &Result{Coeffs: []float64{0, 0, 1}}
	if _, ok := NearLinear(q3, 10, 0.1); ok {
		t.Fatal("pure quadratic with zero linear term classified as near-linear")
	}
	// A linear fit is trivially near-linear.
	if _, ok := NearLinear(&Result{Coeffs: []float64{0, 1}}, 10, 0.1); !ok {
		t.Fatal("linear fit not near-linear")
	}
}

func TestStringFormat(t *testing.T) {
	r := &Result{Coeffs: []float64{1, -2, 3}}
	s := r.String()
	for _, want := range []string{"x^2", "SSE", "R2", "RMSE"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestLargeDomainConditioning(t *testing.T) {
	// Aircraft counts up to 32000 with second-scale times: the scaled
	// solver must stay stable.
	x := []float64{1000, 2000, 4000, 6000, 8000, 12000, 16000, 24000, 32000}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 1e-4*v + 1e-9*v*v
	}
	r, err := Quadratic(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.Coeffs[1], 1e-4, 1e-8) || !almostEq(r.Coeffs[2], 1e-9, 1e-12) {
		t.Fatalf("coeffs = %v", r.Coeffs)
	}
}

func TestEffectiveExponent(t *testing.T) {
	x := []float64{1000, 2000, 4000, 8000, 16000, 32000}
	mk := func(f func(float64) float64) []float64 {
		y := make([]float64, len(x))
		for i, v := range x {
			y[i] = f(v)
		}
		return y
	}
	// Pure linear: exponent 1.
	if e, err := EffectiveExponent(x, mk(func(v float64) float64 { return 3 * v })); err != nil || !almostEq(e, 1, 1e-9) {
		t.Fatalf("linear exponent = %v, %v", e, err)
	}
	// Pure quadratic: exponent 2.
	if e, err := EffectiveExponent(x, mk(func(v float64) float64 { return 1e-9 * v * v })); err != nil || !almostEq(e, 2, 1e-9) {
		t.Fatalf("quadratic exponent = %v, %v", e, err)
	}
	// Overhead floor + tiny quadratic: reads near-linear, as on the
	// paper's figures.
	e, err := EffectiveExponent(x, mk(func(v float64) float64 { return 2e-4 + 7.7e-12*v*v }))
	if err != nil {
		t.Fatal(err)
	}
	if e < 0.8 || e > 1.5 {
		t.Fatalf("floor+quadratic exponent = %v, want near 1", e)
	}
	// Errors.
	if _, err := EffectiveExponent([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("too few points accepted")
	}
	if _, err := EffectiveExponent([]float64{1, 2, 3}, []float64{1, -2, 3}); err == nil {
		t.Fatal("negative data accepted")
	}
}
