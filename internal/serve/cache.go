package serve

import "sync"

// lruCache is the bounded result cache: canonical key -> rendered
// response. Caching whole response bodies is sound because every run
// is bit-deterministic — a cached answer is byte-identical to a fresh
// one — so the cache can serve the exact bytes the first execution
// produced, forever.
//
// The implementation is a hand-rolled doubly linked list over a
// map so the hit path stays allocation-free: container/list would also
// work, but owning the nodes keeps every hot-path step (map lookup,
// unlink, push-front) pointer surgery on memory allocated at insert
// time.
type lruCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*cacheNode
	// head is the most recently used node, tail the next eviction
	// victim; both nil when empty.
	head, tail *cacheNode
	len        int
}

type cacheNode struct {
	key        string
	res        *Result
	prev, next *cacheNode
}

// newLRUCache returns a cache bounded to max entries; max <= 0 disables
// caching (every get misses, every put is dropped).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, m: make(map[string]*cacheNode)}
}

// get returns the cached result for key and refreshes its recency.
// This is the serving hot path: a hit performs one map lookup and a
// constant number of pointer writes, no allocation.
//
//atm:noalloc
func (c *lruCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	n, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.moveToFront(n)
	res := n.res
	c.mu.Unlock()
	return res, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) put(key string, res *Result) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.m[key]; ok {
		n.res = res
		c.moveToFront(n)
		return
	}
	if c.len >= c.max {
		victim := c.tail
		c.unlink(victim)
		delete(c.m, victim.key)
		c.len--
	}
	n := &cacheNode{key: key, res: res}
	c.m[key] = n
	c.pushFront(n)
	c.len++
}

// entries returns the current entry count.
func (c *lruCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.len
}

// moveToFront makes n the most recently used node. Callers hold mu.
//
//atm:noalloc
func (c *lruCache) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

//atm:noalloc
func (c *lruCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

//atm:noalloc
func (c *lruCache) pushFront(n *cacheNode) {
	n.next = c.head
	n.prev = nil
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}
