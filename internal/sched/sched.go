// Package sched implements the paper's real-time schedule: the
// 8-second major cycle of 16 half-second periods with hard deadlines.
// Tasks scheduled in a period must finish before the period ends; a
// task that overruns is a deadline miss, and remaining tasks in that
// period are skipped so the next period starts on time (Section 3).
// Leftover period time is waited out so no task ever starts early
// (Section 4.2).
//
// The Tracker runs on a virtual clock fed by the platforms' modeled
// task durations, so a full day of ATM traffic can be accounted in
// milliseconds of host time while preserving the deadline semantics
// exactly. An optional wall-clock pacing mode reproduces the paper's
// actual busy-wait loop for demonstrations.
package sched

import (
	"fmt"
	"time"
)

// PeriodDur is the paper's scheduling period: one half-second.
const PeriodDur = 500 * time.Millisecond

// PeriodsPerMajorCycle is the number of periods in the 8-second major
// cycle.
const PeriodsPerMajorCycle = 16

// TaskStats aggregates one task's behaviour over a run.
type TaskStats struct {
	// Runs is the number of completed executions (including ones that
	// missed their deadline — the work still happened).
	Runs int
	// Misses is the number of executions that finished after the end of
	// their period.
	Misses int
	// Skips is the number of scheduled executions abandoned because the
	// period budget was already exhausted by earlier tasks.
	Skips int
	// Total and Max accumulate the task's virtual durations.
	Total, Max time.Duration
}

// Mean returns the average duration per completed run.
func (t *TaskStats) Mean() time.Duration {
	if t.Runs == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Runs)
}

// Stats aggregates a whole run.
type Stats struct {
	// Periods executed.
	Periods int
	// PeriodMisses is the number of periods with at least one deadline
	// miss.
	PeriodMisses int
	// TotalMisses is the number of individual task deadline misses.
	TotalMisses int
	// TotalSkips is the number of skipped task executions.
	TotalSkips int
	// MaxLoad is the largest virtual time consumed inside one period.
	MaxLoad time.Duration
	// Tasks holds per-task aggregates keyed by task name.
	Tasks map[string]*TaskStats
	// VirtualElapsed is the total schedule time: Periods x PeriodDur
	// (periods never start early, so leftover time is waited out).
	VirtualElapsed time.Duration
}

// Task returns the aggregate for name, creating it if needed.
func (s *Stats) Task(name string) *TaskStats {
	if s.Tasks == nil {
		s.Tasks = make(map[string]*TaskStats)
	}
	ts := s.Tasks[name]
	if ts == nil {
		ts = &TaskStats{}
		s.Tasks[name] = ts
	}
	return ts
}

// MissRate returns the fraction of periods that missed a deadline.
func (s *Stats) MissRate() float64 {
	if s.Periods == 0 {
		return 0
	}
	return float64(s.PeriodMisses) / float64(s.Periods)
}

// Observer receives schedule events as they happen, on the scheduling
// goroutine, in schedule order. All times are virtual: start values
// are offsets from the beginning of the run (VirtualElapsed plus the
// period time already used). Implementations must be cheap and must
// not call back into the Tracker. The telemetry recorder adapts to
// this interface; the Tracker deliberately knows nothing about it.
type Observer interface {
	// PeriodStarted fires at BeginPeriod with the zero-based period
	// index and the period's virtual start time.
	PeriodStarted(index int, start time.Duration)
	// TaskStarted fires immediately before a task executes.
	TaskStarted(name string, start time.Duration)
	// TaskRan fires after a task completed, with its virtual start,
	// duration, and whether it pushed the period past its deadline.
	TaskRan(name string, start, dur time.Duration, missed bool)
	// TaskSkipped fires when a task is abandoned because the period
	// budget was already exhausted.
	TaskSkipped(name string, at time.Duration)
	// PeriodEnded fires at EndPeriod with the period's index, its
	// total used time, and whether any task in it missed.
	PeriodEnded(index int, used time.Duration, missed bool)
}

// Tracker enforces the period deadline over a virtual clock.
type Tracker struct {
	// Period is the deadline budget; PeriodDur unless overridden.
	Period time.Duration

	// Observer, when non-nil, receives schedule events. Setting it
	// must not change any scheduling decision or statistic.
	Observer Observer

	stats    Stats
	inPeriod bool
	used     time.Duration
	missed   bool
}

// NewTracker returns a Tracker with the given period length (0 means
// the paper's half-second).
func NewTracker(period time.Duration) *Tracker {
	if period < 0 {
		panic(fmt.Sprintf("sched: negative period %v", period))
	}
	if period == 0 {
		period = PeriodDur
	}
	return &Tracker{Period: period}
}

// BeginPeriod opens a new period. It panics if the previous period was
// not closed — the schedule is strictly sequential.
func (t *Tracker) BeginPeriod() {
	if t.inPeriod {
		panic("sched: BeginPeriod inside an open period")
	}
	t.inPeriod = true
	t.used = 0
	t.missed = false
	if t.Observer != nil {
		t.Observer.PeriodStarted(t.stats.Periods, t.stats.VirtualElapsed)
	}
}

// Run executes the named task inside the current period unless the
// budget is already exhausted (then the task is skipped, per Section
// 3). It returns whether the task ran. f must return the task's
// virtual duration.
func (t *Tracker) Run(name string, f func() time.Duration) bool {
	if !t.inPeriod {
		panic("sched: Run outside a period")
	}
	ts := t.stats.Task(name)
	start := t.stats.VirtualElapsed + t.used
	if t.used >= t.Period {
		ts.Skips++
		t.stats.TotalSkips++
		if t.Observer != nil {
			t.Observer.TaskSkipped(name, start)
		}
		return false
	}
	if t.Observer != nil {
		t.Observer.TaskStarted(name, start)
	}
	d := f()
	if d < 0 {
		panic(fmt.Sprintf("sched: task %q reported negative duration %v", name, d))
	}
	ts.Runs++
	ts.Total += d
	if d > ts.Max {
		ts.Max = d
	}
	t.used += d
	taskMissed := t.used > t.Period
	if taskMissed {
		ts.Misses++
		t.stats.TotalMisses++
		t.missed = true
	}
	if t.Observer != nil {
		t.Observer.TaskRan(name, start, d, taskMissed)
	}
	return true
}

// EndPeriod closes the period, accounting the deadline outcome and the
// implicit wait for the remainder of the period.
func (t *Tracker) EndPeriod() {
	if !t.inPeriod {
		panic("sched: EndPeriod without BeginPeriod")
	}
	if t.Observer != nil {
		t.Observer.PeriodEnded(t.stats.Periods, t.used, t.missed)
	}
	t.inPeriod = false
	t.stats.Periods++
	if t.missed {
		t.stats.PeriodMisses++
	}
	if t.used > t.stats.MaxLoad {
		t.stats.MaxLoad = t.used
	}
	t.stats.VirtualElapsed += t.Period
	if t.used > t.Period {
		// An overrun pushes the schedule late; the paper's system
		// re-synchronizes at the next period boundary, so the virtual
		// clock keeps counting whole periods but the overrun is already
		// recorded as a miss.
		t.stats.VirtualElapsed += t.used - t.Period
	}
}

// Stats returns the accumulated statistics.
func (t *Tracker) Stats() *Stats { return &t.stats }
