package ap

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
)

// Platform adapts an associative machine profile to the scheduler's
// platform interface. It keeps one machine per database size so
// steady-state periods reuse the machine's scratch instead of
// reallocating it.
type Platform struct {
	prof    Profile
	src     broadphase.PairSource
	workers int
	m       *Machine
}

// NewPlatform returns a scheduler-facing platform for the profile.
func NewPlatform(p Profile) *Platform { return &Platform{prof: p} }

// machine returns the reusable machine sized for n records with a
// zeroed cycle counter.
func (p *Platform) machine(n int) *Machine {
	if p.m == nil || p.m.N() != n {
		p.m = NewMachine(p.prof, n)
		p.m.SetWorkers(p.workers)
	}
	p.m.ResetCycles()
	return p.m
}

// SetWorkers pins the host worker count used to execute the wide
// element loops (n <= 0 restores the process-default pool).
func (p *Platform) SetWorkers(n int) {
	p.workers = n
	if p.m != nil {
		p.m.SetWorkers(n)
	}
}

// SetPairSource installs a broadphase pair source for the detection
// program (nil keeps the full associative scan). On a true AP this only
// trims the PairChecks account, not the wide-operation time — see
// apScan.
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.src = src }

// Name returns the machine name.
func (p *Platform) Name() string { return p.prof.Name }

// Deterministic reports that AP timing is a pure function of the
// instruction trace — the synchronous-SIMD property the paper builds
// on.
func (p *Platform) Deterministic() bool { return true }

// Track runs Task 1 as an AP program and returns the modeled time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	m := p.machine(w.N())
	TrackProgram(m, w, f)
	return m.Time()
}

// DetectResolve runs Tasks 2-3 as an AP program and returns the
// modeled time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	m := p.machine(w.N())
	DetectResolveProgramWith(m, w, p.src)
	return m.Time()
}
