package cuda

import (
	"math"
	"sort"
	"testing"

	"repro/internal/airspace"
	"repro/internal/rng"
	"repro/internal/tasks"
)

func TestBitonicSortPairsRandom(t *testing.T) {
	r := rng.New(1)
	eng := NewEngine(TitanXPascal)
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 100, 1000, 1023, 1024, 1025} {
		keys := make([]float64, n)
		ids := make([]int32, n)
		for i := range keys {
			keys[i] = r.Range(-100, 100)
			ids[i] = int32(i)
		}
		want := append([]float64(nil), keys...)
		sort.Float64s(want)

		eng.BitonicSortPairs(keys, ids)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("n=%d: keys[%d] = %v, want %v", n, i, keys[i], want[i])
			}
		}
	}
}

func TestBitonicSortTieBreakByID(t *testing.T) {
	eng := NewEngine(GeForce9800GT)
	keys := []float64{5, 5, 1, 5, 1}
	ids := []int32{4, 2, 3, 0, 1}
	eng.BitonicSortPairs(keys, ids)
	wantKeys := []float64{1, 1, 5, 5, 5}
	wantIDs := []int32{1, 3, 0, 2, 4}
	for i := range keys {
		if keys[i] != wantKeys[i] || ids[i] != wantIDs[i] {
			t.Fatalf("pos %d: (%v,%d), want (%v,%d)", i, keys[i], ids[i], wantKeys[i], wantIDs[i])
		}
	}
}

func TestBitonicSortPairsKeepsPairing(t *testing.T) {
	// IDs must travel with their keys.
	r := rng.New(2)
	eng := NewEngine(GTX880M)
	const n = 500
	keys := make([]float64, n)
	ids := make([]int32, n)
	orig := map[int32]float64{}
	for i := range keys {
		keys[i] = math.Floor(r.Range(0, 1e6)) // distinct with high probability
		ids[i] = int32(i)
		orig[ids[i]] = keys[i]
	}
	eng.BitonicSortPairs(keys, ids)
	for i := range keys {
		if orig[ids[i]] != keys[i] {
			t.Fatalf("pair broken at %d: id %d has key %v, want %v", i, ids[i], keys[i], orig[ids[i]])
		}
	}
}

func TestBitonicSortMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewEngine(TitanXPascal).BitonicSortPairs(make([]float64, 3), make([]int32, 2))
}

func TestConflictPriorityMatchesReference(t *testing.T) {
	w := airspace.NewWorld(1500, rng.New(7))
	tasks.Detect(w) // mark conflicts
	want := tasks.PriorityList(w)

	res := NewEngine(TitanXPascal).ConflictPriority(w)
	if len(res.IDs) != len(want) {
		t.Fatalf("list length %d, want %d", len(res.IDs), len(want))
	}
	for i := range want {
		if res.IDs[i] != want[i] {
			t.Fatalf("position %d: id %d, want %d", i, res.IDs[i], want[i])
		}
	}
	if len(want) > 0 && res.Time <= 0 {
		t.Fatal("no modeled time")
	}
}

func TestConflictPriorityEmptyAndCalm(t *testing.T) {
	eng := NewEngine(GTX880M)
	if res := eng.ConflictPriority(&airspace.World{}); len(res.IDs) != 0 {
		t.Fatal("empty world produced a list")
	}
	// Calm traffic: no conflicts marked, empty list.
	w := airspace.NewWorld(100, rng.New(9))
	for i := range w.Aircraft {
		w.Aircraft[i].ResetConflict()
	}
	if res := eng.ConflictPriority(w); len(res.IDs) != 0 {
		t.Fatalf("calm world produced %d entries", len(res.IDs))
	}
}
