// Swarm: the paper's Section 7.2 future-work scenario — a mobile ATM
// center managing a drone swarm in a remote area. Two waves of survey
// drones fly head-on passes 20 nm apart in the same altitude band; the
// opposing lanes are offset by 2 nm, inside the 3 nm separation band,
// so every head-on pair becomes a genuine critical conflict (the
// conflict window opens below the 300-period urgency threshold on the
// first major cycle) that Task 3 must steer around.
//
// Run with:
//
//	go run ./examples/swarm
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/airspace"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/tasks"
)

const (
	perWave     = 20
	laneSpacing = 12.0 // nm between lanes: wide enough that a ±10° escape from the partner does not enter the neighbouring lane's conflict window
	waveGap     = 20.0
	speedKnots  = 240.0
)

// buildSwarm creates the two opposing waves.
func buildSwarm() *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, 2*perWave)}
	speed := speedKnots / airspace.PeriodsPerHour
	for i := 0; i < perWave; i++ {
		lane := float64(i)*laneSpacing - float64(perWave-1)*laneSpacing/2
		// Eastbound wave.
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X, a.Y = -waveGap/2, lane
		a.DX, a.DY = speed, 0
		a.Alt = 1200
		a.ResetConflict()
		// Westbound wave, offset 2 nm into the eastbound lanes.
		b := &w.Aircraft[perWave+i]
		b.ID = int32(perWave + i)
		b.X, b.Y = waveGap/2, lane+2
		b.DX, b.DY = -speed, 0
		b.Alt = 1200
		b.ResetConflict()
	}
	return w
}

// headings returns each drone's course angle in degrees.
func headings(w *airspace.World) []float64 {
	h := make([]float64, w.N())
	for i, a := range w.Aircraft {
		h[i] = math.Atan2(a.DY, a.DX) * 180 / math.Pi
	}
	return h
}

func main() {
	world := buildSwarm()

	// A mobile ATM center would carry an embedded accelerator; the
	// laptop-class GTX 880M model is the natural stand-in.
	p, err := platform.New(platform.GTX880M, 7)
	if err != nil {
		log.Fatal(err)
	}
	sys := core.NewSystemWithWorld(p, world, core.Config{Seed: 7, Noise: 0.05})

	fmt.Printf("drone swarm : %d drones in two opposing waves on %s\n", world.N(), p.Name())
	fmt.Printf("lanes %.0f nm apart, opposing lanes offset 2 nm (inside the 3 nm band)\n\n", laneSpacing)
	fmt.Println("cycle  pending-conflicts  drones-turned  misses")

	for cycle := 1; cycle <= 6; cycle++ {
		before := headings(sys.World)
		for period := 0; period < airspace.PeriodsPerMajorCycle; period++ {
			sys.RunPeriod()
		}
		after := headings(sys.World)
		turned := 0
		for i := range before {
			if math.Abs(after[i]-before[i]) > 0.1 {
				turned++
			}
		}
		// Diagnostic: re-detect on a copy to see what is still pending.
		det := tasks.Detect(sys.World.Clone())
		st := sys.Stats()
		fmt.Printf("%5d  %17d  %13d  %6d\n", cycle, det.Conflicts, turned, st.PeriodMisses)
	}

	st := sys.Stats()
	t1 := st.Task(core.Task1)
	t23 := st.Task(core.Task23)
	fmt.Printf("\nTask 1 mean %v, Tasks 2+3 mean %v; %d of %d periods missed\n",
		t1.Mean(), t23.Mean(), st.PeriodMisses, st.Periods)
	fmt.Println("\nThe resolver turns drones ±5°..±30° as the waves close; once the")
	fmt.Println("waves pass through each other the airspace is conflict-free again.")
}
