package tasks

import (
	"math"
	"testing"

	"repro/internal/airspace"
	"repro/internal/radar"
	"repro/internal/rng"
)

// spreadWorld builds a world of n stationary-ish aircraft on a grid with
// pitch nm spacing so correlation cases are fully controlled.
func spreadWorld(n int, pitch float64) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		a.X = float64(i%side)*pitch - airspace.SetupHalf
		a.Y = float64(i/side)*pitch - airspace.SetupHalf
		a.Alt = 10000
		a.ResetConflict()
	}
	return w
}

func TestCorrelateAllMatchFirstPass(t *testing.T) {
	// Well-separated aircraft, noise well inside the 1x1 box: everyone
	// must match on pass 1 and take the radar position.
	w := spreadWorld(400, 5)
	f := radar.Generate(w, 0.2, rng.New(1))
	want := f.Clone() // radar positions before matching
	st := Correlate(w, f)

	if st.Matched != 400 {
		t.Fatalf("Matched = %d, want 400 (stats: %+v)", st.Matched, st)
	}
	if st.DiscardedRadars != 0 || st.WithdrawnAircraft != 0 || st.UnmatchedRadars != 0 {
		t.Fatalf("unexpected discards: %+v", st)
	}
	if st.PassRadars[1] != 0 {
		t.Fatalf("pass 2 still had %d radars pending", st.PassRadars[1])
	}
	// Every aircraft position must now be one of the radar positions.
	for i := range f.Reports {
		rep := &f.Reports[i]
		if rep.MatchWith < 0 {
			t.Fatalf("report %d unmatched: %d", i, rep.MatchWith)
		}
		a := &w.Aircraft[rep.MatchWith]
		if a.X != want.Reports[i].RX || a.Y != want.Reports[i].RY {
			t.Fatalf("aircraft %d not at its radar position", rep.MatchWith)
		}
	}
}

func TestCorrelateSecondPassPicksUpLargerNoise(t *testing.T) {
	// One aircraft, radar offset 0.7 nm: outside the 0.5 half-box but
	// inside the doubled 1.0 half-box.
	w := spreadWorld(1, 5)
	f := &radar.Frame{Reports: []radar.Report{{RX: w.Aircraft[0].X + 0.7, RY: w.Aircraft[0].Y, MatchWith: radar.Unmatched}}}
	st := Correlate(w, f)
	if st.Matched != 1 {
		t.Fatalf("Matched = %d, want 1", st.Matched)
	}
	if st.PassRadars[0] != 1 || st.PassRadars[1] != 1 || st.PassRadars[2] != 0 {
		t.Fatalf("pass pending counts = %v", st.PassRadars)
	}
	if w.Aircraft[0].X != f.Reports[0].RX {
		t.Fatal("aircraft did not take radar position after pass-2 match")
	}
}

func TestCorrelateThirdPassBox(t *testing.T) {
	// Offset 1.5 nm: needs the second doubling (half-box 2.0).
	w := spreadWorld(1, 5)
	f := &radar.Frame{Reports: []radar.Report{{RX: w.Aircraft[0].X + 1.5, RY: w.Aircraft[0].Y, MatchWith: radar.Unmatched}}}
	st := Correlate(w, f)
	if st.Matched != 1 {
		t.Fatalf("Matched = %d, want 1", st.Matched)
	}
}

func TestCorrelateFarRadarStaysUnmatched(t *testing.T) {
	// Offset 3 nm: outside even the largest (half-box 2.0) pass. The
	// aircraft must keep its expected position.
	w := spreadWorld(1, 5)
	a0 := w.Aircraft[0]
	f := &radar.Frame{Reports: []radar.Report{{RX: a0.X + 3, RY: a0.Y, MatchWith: radar.Unmatched}}}
	st := Correlate(w, f)
	if st.Matched != 0 || st.UnmatchedRadars != 1 {
		t.Fatalf("stats = %+v, want 0 matched / 1 unmatched", st)
	}
	if w.Aircraft[0].X != a0.X+a0.DX || w.Aircraft[0].Y != a0.Y+a0.DY {
		t.Fatal("unmatched aircraft must keep its expected position")
	}
}

func TestCorrelateDiscardsAmbiguousRadar(t *testing.T) {
	// Two aircraft 0.2 nm apart; a single radar between them correlates
	// with both, so Algorithm 1 discards the radar and both aircraft
	// keep their expected positions.
	w := spreadWorld(2, 100)
	w.Aircraft[1].X = w.Aircraft[0].X + 0.2
	w.Aircraft[1].Y = w.Aircraft[0].Y
	f := &radar.Frame{Reports: []radar.Report{
		{RX: w.Aircraft[0].X + 0.1, RY: w.Aircraft[0].Y, MatchWith: radar.Unmatched},
	}}
	st := Correlate(w, f)
	if st.DiscardedRadars != 1 {
		t.Fatalf("DiscardedRadars = %d, want 1 (stats %+v)", st.DiscardedRadars, st)
	}
	if f.Reports[0].MatchWith != radar.Discarded {
		t.Fatalf("radar MatchWith = %d, want Discarded", f.Reports[0].MatchWith)
	}
	if st.Matched != 0 {
		t.Fatalf("Matched = %d, want 0", st.Matched)
	}
}

func TestCorrelateWithdrawsAmbiguousAircraft(t *testing.T) {
	// One aircraft with two radars in its box: the aircraft is withdrawn
	// (RMatch = -1) and keeps its expected position. Use distinct boxes
	// so the radars don't also double-match.
	w := spreadWorld(1, 100)
	a := &w.Aircraft[0]
	f := &radar.Frame{Reports: []radar.Report{
		{RX: a.X + 0.1, RY: a.Y, MatchWith: radar.Unmatched},
		{RX: a.X - 0.1, RY: a.Y, MatchWith: radar.Unmatched},
	}}
	st := Correlate(w, f)
	if st.WithdrawnAircraft != 1 {
		t.Fatalf("WithdrawnAircraft = %d, want 1 (stats %+v)", st.WithdrawnAircraft, st)
	}
	if w.Aircraft[0].RMatch != airspace.MatchDiscarded {
		t.Fatalf("RMatch = %d, want MatchDiscarded", w.Aircraft[0].RMatch)
	}
	if st.Matched != 0 {
		t.Fatalf("Matched = %d, want 0", st.Matched)
	}
	if w.Aircraft[0].X != a.ExpX || w.Aircraft[0].Y != a.ExpY {
		t.Fatal("withdrawn aircraft must keep its expected position")
	}
}

func TestCorrelateAppliesWrap(t *testing.T) {
	// An aircraft crossing the field edge this period must re-enter at
	// the negated position after commit.
	w := spreadWorld(1, 5)
	a := &w.Aircraft[0]
	a.X = airspace.FieldHalf - 0.001
	a.Y = 40
	a.DX = 0.05
	f := &radar.Frame{Reports: []radar.Report{{RX: a.X + a.DX, RY: a.Y, MatchWith: radar.Unmatched}}}
	Correlate(w, f)
	if w.Aircraft[0].X > 0 {
		t.Fatalf("aircraft did not wrap: x = %v", w.Aircraft[0].X)
	}
}

func TestCorrelateNPanicsOnZeroPasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CorrelateN(0 passes) did not panic")
		}
	}()
	w := spreadWorld(1, 5)
	CorrelateN(w, &radar.Frame{}, 0)
}

func TestCorrelateFullPipelineRealisticTraffic(t *testing.T) {
	// End-to-end sanity on random traffic with the default noise: the
	// overwhelming majority of aircraft must correlate every period.
	w := airspace.NewWorld(2000, rng.New(42))
	r := rng.New(43)
	for period := 0; period < 8; period++ {
		f := radar.Generate(w, radar.DefaultNoise, r)
		st := Correlate(w, f)
		if st.Matched < w.N()*95/100 {
			t.Fatalf("period %d: only %d of %d matched (%+v)", period, st.Matched, w.N(), st)
		}
	}
}

func TestPairConflictHeadOn(t *testing.T) {
	trial := &airspace.Aircraft{ID: 1, X: 10, Y: 0, DX: -0.05, DY: 0, Alt: 10000}
	// Track at origin flying +x at 0.05 nm/period; closing speed 0.1.
	// |d|=10, sep=3 -> window (70, 130).
	tmin, tmax, ok := PairConflict(0, 0, 0.05, 0, trial)
	if !ok {
		t.Fatal("head-on pair not detected")
	}
	if math.Abs(tmin-70) > 1e-9 || math.Abs(tmax-130) > 1e-9 {
		t.Fatalf("window = (%v,%v), want (70,130)", tmin, tmax)
	}
}

func TestPairConflictParallelSafe(t *testing.T) {
	trial := &airspace.Aircraft{ID: 1, X: 50, Y: 0, DX: 0.05, DY: 0, Alt: 10000}
	if _, _, ok := PairConflict(0, 0, 0.05, 0, trial); ok {
		t.Fatal("parallel distant pair reported as conflict")
	}
}

func TestPairConflictBeyondHorizon(t *testing.T) {
	// Closing at 0.001 nm/period from 100 nm away: conflict at t=97000,
	// far beyond the 2400-period horizon.
	trial := &airspace.Aircraft{ID: 1, X: 100, Y: 0, DX: -0.001, DY: 0, Alt: 10000}
	if _, _, ok := PairConflict(0, 0, 0, 0, trial); ok {
		t.Fatal("conflict beyond the 20-minute horizon must be ignored")
	}
}

func TestPairConflictAlreadyOverlapping(t *testing.T) {
	// Aircraft currently within the bands: window must start at 0.
	trial := &airspace.Aircraft{ID: 1, X: 1, Y: 1, DX: 0.01, DY: 0, Alt: 10000}
	tmin, _, ok := PairConflict(0, 0, 0, 0, trial)
	if !ok || tmin != 0 {
		t.Fatalf("overlapping pair: tmin=%v ok=%v, want 0,true", tmin, ok)
	}
}

// Property: the analytic conflict test agrees with trajectory sampling.
func TestPairConflictMatchesBruteForce(t *testing.T) {
	r := rng.New(77)
	const dt = 0.5
	for i := 0; i < 3000; i++ {
		tx, ty := r.Range(-50, 50), r.Range(-50, 50)
		tvx, tvy := r.Range(-0.08, 0.08), r.Range(-0.08, 0.08)
		trial := &airspace.Aircraft{
			ID: 1, X: r.Range(-50, 50), Y: r.Range(-50, 50),
			DX: r.Range(-0.08, 0.08), DY: r.Range(-0.08, 0.08), Alt: 10000,
		}
		tmin, tmax, ok := PairConflict(tx, ty, tvx, tvy, trial)
		first, bf := BruteForceConflict(tx, ty, tvx, tvy, trial, dt)
		if bf {
			if !ok {
				t.Fatalf("case %d: sampling finds conflict at t=%v, analytic does not", i, first)
			}
			if first < tmin-dt || first > tmax+dt {
				t.Fatalf("case %d: sampled first conflict %v outside analytic window (%v,%v)", i, first, tmin, tmax)
			}
		} else if ok && tmax-tmin > 2*dt && tmax < airspace.HorizonPeriods {
			t.Fatalf("case %d: analytic window (%v,%v) wide but sampling found nothing", i, tmin, tmax)
		}
	}
}

// headOnWorld builds a world with one head-on pair separated by gap nm
// (conflict window starts at (gap-3)/0.1 periods) plus optional
// bystanders far away. A gap of 10 puts the conflict 70 periods out —
// critical but too close to resolve with a <=30° turn (the lateral
// displacement a 30° turn buys by t=70 is under the 3 nm band); a gap of
// 30 puts it 270 periods out, where a 15° turn resolves it.
func headOnWorld(gap float64, bystanders int) *airspace.World {
	w := spreadWorld(2+bystanders, 40)
	a := &w.Aircraft[0]
	b := &w.Aircraft[1]
	a.X, a.Y, a.DX, a.DY, a.Alt = 0, 0, 0.05, 0, 10000
	b.X, b.Y, b.DX, b.DY, b.Alt = gap, 0, -0.05, 0, 10000
	for i := 2; i < w.N(); i++ {
		c := &w.Aircraft[i]
		c.X = 1000 // outside the field, but fine for pure detection tests
		c.Y = 1000
		c.Alt = 30000
	}
	for i := range w.Aircraft {
		w.Aircraft[i].ResetConflict()
	}
	return w
}

func TestDetectMarksBothAircraft(t *testing.T) {
	w := headOnWorld(10, 0)
	st := Detect(w)
	if st.Conflicts == 0 {
		t.Fatal("head-on pair not detected")
	}
	a, b := &w.Aircraft[0], &w.Aircraft[1]
	if !a.Col || !b.Col {
		t.Fatalf("col flags: a=%v b=%v, want both true", a.Col, b.Col)
	}
	if a.ColWith != 1 || b.ColWith != 0 {
		t.Fatalf("colWith: a=%d b=%d", a.ColWith, b.ColWith)
	}
	if math.Abs(a.TimeTill-70) > 1e-9 {
		t.Fatalf("TimeTill = %v, want 70", a.TimeTill)
	}
}

func TestDetectAltitudeFilter(t *testing.T) {
	w := headOnWorld(10, 0)
	w.Aircraft[1].Alt = w.Aircraft[0].Alt + 5000 // vertically separated
	st := Detect(w)
	if st.Conflicts != 0 {
		t.Fatalf("vertically separated pair detected as conflict: %+v", st)
	}
}

func TestDetectNoFalsePositives(t *testing.T) {
	// Widely spread grid, everyone flying the same direction: no
	// conflicts possible.
	w := spreadWorld(100, 20)
	for i := range w.Aircraft {
		w.Aircraft[i].DX = 0.05
	}
	st := Detect(w)
	if st.Conflicts != 0 {
		t.Fatalf("conflicts on parallel traffic: %+v", st)
	}
}

func TestDetectResolveResolvesHeadOn(t *testing.T) {
	w := headOnWorld(30, 0)
	st := DetectResolve(w)
	if st.Conflicts == 0 {
		t.Fatal("no conflict detected before resolution")
	}
	if st.Resolved == 0 {
		t.Fatalf("head-on conflict not resolved: %+v", st)
	}
	// After resolution the world must be free of critical conflicts.
	check := Detect(w)
	if check.Conflicts != 0 {
		t.Fatalf("critical conflicts remain after resolution: %+v", check)
	}
}

func TestResolvePreservesSpeed(t *testing.T) {
	w := headOnWorld(30, 0)
	before := make([]float64, w.N())
	for i := range w.Aircraft {
		before[i] = w.Aircraft[i].SpeedKnots()
	}
	DetectResolve(w)
	for i := range w.Aircraft {
		if math.Abs(w.Aircraft[i].SpeedKnots()-before[i]) > 1e-6 {
			t.Fatalf("aircraft %d speed changed: %v -> %v", i, before[i], w.Aircraft[i].SpeedKnots())
		}
	}
}

func TestResolveLeavesPositionsAlone(t *testing.T) {
	w := headOnWorld(30, 3)
	type pos struct{ x, y float64 }
	before := make([]pos, w.N())
	for i, a := range w.Aircraft {
		before[i] = pos{a.X, a.Y}
	}
	DetectResolve(w)
	for i, a := range w.Aircraft {
		if before[i] != (pos{a.X, a.Y}) {
			t.Fatalf("aircraft %d moved during detect/resolve", i)
		}
	}
}

func TestDetectResolveIsDeterministic(t *testing.T) {
	w1 := airspace.NewWorld(300, rng.New(5))
	w2 := w1.Clone()
	st1 := DetectResolve(w1)
	st2 := DetectResolve(w2)
	if st1 != st2 {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	for i := range w1.Aircraft {
		if w1.Aircraft[i] != w2.Aircraft[i] {
			t.Fatalf("aircraft %d differs after identical runs", i)
		}
	}
}

func TestRotationSchedule(t *testing.T) {
	want := []float64{5, -5, 10, -10, 15, -15, 20, -20, 25, -25, 30, -30}
	got := RotationSchedule()
	if len(got) != len(want) {
		t.Fatalf("schedule = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDetectResolveRandomTrafficInvariant(t *testing.T) {
	// On dense random traffic: every aircraft the resolver leaves
	// unresolved must still carry its collision flags; every aircraft it
	// resolved must be conflict-free on a fresh detection of itself.
	w := airspace.NewWorld(500, rng.New(99))
	st := DetectResolve(w)
	if st.PairChecks == 0 {
		t.Fatal("no pair checks on 500 aircraft")
	}
	// Conflicts and resolutions must be consistent.
	if st.Resolved+st.Unresolved != st.Conflicts {
		t.Fatalf("resolved(%d) + unresolved(%d) != conflicts(%d)",
			st.Resolved, st.Unresolved, st.Conflicts)
	}
}

func TestAltitudeResolveSeparatesPair(t *testing.T) {
	// A head-on pair too close to resolve by turning (gap 10 -> conflict
	// at t=70, inside the band a 30° turn cannot clear).
	w := headOnWorld(10, 0)
	st := DetectResolve(w)
	if st.Unresolved == 0 {
		t.Fatalf("expected unresolved conflicts, got %+v", st)
	}
	changed := AltitudeResolve(w)
	if changed == 0 {
		t.Fatal("AltitudeResolve changed nothing")
	}
	if math.Abs(w.Aircraft[0].Alt-w.Aircraft[1].Alt) < airspace.AltBandFeet {
		t.Fatalf("pair still vertically overlapping: %v vs %v",
			w.Aircraft[0].Alt, w.Aircraft[1].Alt)
	}
	if check := Detect(w); check.Conflicts != 0 {
		t.Fatalf("conflicts remain after altitude resolution: %+v", check)
	}
}

func TestAltitudeResolveNoopsOnCleanWorld(t *testing.T) {
	w := spreadWorld(50, 20)
	if changed := AltitudeResolve(w); changed != 0 {
		t.Fatalf("AltitudeResolve changed %d aircraft in a conflict-free world", changed)
	}
}

func TestAltitudeResolveRespectsLimits(t *testing.T) {
	// A conflicting pair at the altitude ceiling: the climber must flip
	// direction rather than exceed AltMax.
	w := headOnWorld(10, 0)
	w.Aircraft[0].Alt = airspace.AltMax - 100
	w.Aircraft[1].Alt = airspace.AltMax - 200
	DetectResolve(w)
	AltitudeResolve(w)
	for i := range w.Aircraft {
		if w.Aircraft[i].Alt > airspace.AltMax || w.Aircraft[i].Alt < airspace.AltMin {
			t.Fatalf("aircraft %d altitude %v outside limits", i, w.Aircraft[i].Alt)
		}
	}
	if math.Abs(w.Aircraft[0].Alt-w.Aircraft[1].Alt) < airspace.AltBandFeet {
		t.Fatal("pair not vertically separated at the ceiling")
	}
}

func TestAltitudeResolveStorm(t *testing.T) {
	// Rings of aircraft all converging on the origin: unresolvable by
	// turning, fully resolvable by altitude layering.
	const n = 120
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	const speed = 300.0 / airspace.PeriodsPerHour
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		theta := float64(i%60) / 60 * 2 * math.Pi
		radius := 30 + float64(1+i/60)*12
		a.X = radius * math.Cos(theta)
		a.Y = radius * math.Sin(theta)
		a.DX = -speed * math.Cos(theta)
		a.DY = -speed * math.Sin(theta)
		a.Alt = 15000
		a.ResetConflict()
	}
	before := Detect(w.Clone())
	if before.Conflicts == 0 {
		t.Fatal("storm produced no conflicts")
	}
	DetectResolve(w)
	AltitudeResolve(w)
	after := Detect(w.Clone())
	if after.Conflicts >= before.Conflicts/4 {
		t.Fatalf("altitude layering barely helped: %d -> %d conflicts",
			before.Conflicts, after.Conflicts)
	}
}

func TestPriorityListOrdering(t *testing.T) {
	w := spreadWorld(6, 50)
	// Conflicts with distinct urgencies plus a tie.
	w.Aircraft[1].Col, w.Aircraft[1].TimeTill = true, 200
	w.Aircraft[3].Col, w.Aircraft[3].TimeTill = true, 50
	w.Aircraft[4].Col, w.Aircraft[4].TimeTill = true, 200
	got := PriorityList(w)
	want := []int32{3, 1, 4} // urgency first, ties by ID
	if len(got) != len(want) {
		t.Fatalf("list = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}
}

func TestPriorityListEmpty(t *testing.T) {
	w := spreadWorld(10, 50)
	if got := PriorityList(w); len(got) != 0 {
		t.Fatalf("calm world produced list %v", got)
	}
}

func TestAlphaBetaSmoothConvergesToTrueVelocity(t *testing.T) {
	// Truth flies at 0.04 nm/period; the tracker's initial velocity
	// estimate is zero. With beta-smoothing on the radar residuals the
	// estimate must converge; without it, correlation eventually fails
	// as dead reckoning drifts out of the bounding box.
	const trueVX = 0.04
	mkWorld := func() (*airspace.World, *airspace.Aircraft) {
		w := spreadWorld(1, 5)
		a := &w.Aircraft[0]
		a.X, a.Y = 0, 0
		a.DX, a.DY = 0, 0 // wrong estimate
		return w, a
	}

	runPeriods := func(beta float64, periods int) (*airspace.Aircraft, int) {
		w, a := mkWorld()
		matched := 0
		trueX := 0.0
		for p := 0; p < periods; p++ {
			trueX += trueVX
			f := &radar.Frame{Reports: []radar.Report{{RX: trueX, RY: 0, MatchWith: radar.Unmatched}}}
			st := Correlate(w, f)
			matched += st.Matched
			AlphaBetaSmooth(w, beta)
		}
		return a, matched
	}

	smoothed, matchedSmoothed := runPeriods(0.3, 30)
	if matchedSmoothed != 30 {
		t.Fatalf("smoothed tracker lost lock: %d of 30 matched", matchedSmoothed)
	}
	if math.Abs(smoothed.DX-trueVX) > 0.005 {
		t.Fatalf("velocity estimate %v did not converge to %v", smoothed.DX, trueVX)
	}

	// The position commit (alpha = 1) keeps the raw tracker locked, but
	// its velocity estimate stays wrong — so through a radar dropout it
	// dead-reckons badly while the smoothed tracker coasts on target.
	coast := func(beta float64) float64 {
		w, a := mkWorld()
		trueX := 0.0
		for p := 0; p < 20; p++ { // with radar
			trueX += trueVX
			f := &radar.Frame{Reports: []radar.Report{{RX: trueX, RY: 0, MatchWith: radar.Unmatched}}}
			Correlate(w, f)
			AlphaBetaSmooth(w, beta)
		}
		for p := 0; p < 20; p++ { // dropout: dead reckoning only
			trueX += trueVX
			Correlate(w, &radar.Frame{})
		}
		return math.Abs(a.X - trueX)
	}
	errSmoothed := coast(0.3)
	errRaw := coast(0)
	if errSmoothed > 0.1 {
		t.Fatalf("smoothed tracker coasted %.3f nm off target", errSmoothed)
	}
	if errRaw < 0.5 {
		t.Fatalf("unsmoothed tracker coasted only %.3f nm off; expected large drift", errRaw)
	}
}

func TestAlphaBetaSmoothOnlyTouchesMatched(t *testing.T) {
	w := spreadWorld(3, 50)
	// Nobody matched: RMatch all zero.
	before := w.Clone()
	if n := AlphaBetaSmooth(w, 0.5); n != 0 {
		t.Fatalf("updated %d aircraft with no matches", n)
	}
	for i := range w.Aircraft {
		if w.Aircraft[i] != before.Aircraft[i] {
			t.Fatalf("aircraft %d modified", i)
		}
	}
}

func TestAlphaBetaSmoothBadBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta > 1 did not panic")
		}
	}()
	AlphaBetaSmooth(spreadWorld(1, 5), 1.5)
}
