// Fixture for the modeledtimeflow analyzer, analyzed as
// repro/internal/platform: Track/DetectResolve methods are
// modeled-time roots automatically, kernelTime is reachable from every
// root, and DetectResolve launders a wall-clock read through
// repro/fixture/timeutil across the package boundary.
package platform

import (
	"time"

	"repro/fixture/timeutil"
)

type machine struct {
	ops uint64
}

// Launch is an explicit modeled-time root.
//
//atm:modeled-time
func (m *machine) Launch(n int) time.Duration {
	m.ops += uint64(n)
	return m.kernelTime()
}

// Track is a root by name (platform contract method).
func (m *machine) Track(n int) time.Duration {
	return m.kernelTime()
}

// DetectResolve is a root by name; it reaches the wall clock through
// another package.
func (m *machine) DetectResolve(n int) time.Duration {
	d := m.kernelTime()
	timeutil.Stamp()
	return d
}

// kernelTime is reachable from all three roots; the wall-clock read
// inside it must be flagged (once, not once per root).
func (m *machine) kernelTime() time.Duration {
	t0 := time.Now() // want "reachable from modeled-time root"
	_ = t0
	return time.Duration(m.ops) * time.Microsecond // clean: Duration arithmetic
}

// waived is reachable but carries a line-scoped allow; the waiver is
// consumed, so stalewaiver stays quiet about it.
//
//atm:modeled-time
func waived() {
	//atm:allow wallclock -- fixture: progress logging only, never charged to modeled time
	_ = time.Now()
}
