package conformance

import (
	"flag"
	"testing"
)

// -conformance.full widens the matrix to every family, every pair
// source and the full worker set at a larger aircraft count — the
// `make conformance` / CI configuration. The default trimmed matrix
// keeps `go test ./...` fast while still covering every platform and
// every invariance relation.
var full = flag.Bool("conformance.full", false,
	"run the full conformance matrix (all families x pair sources x workers {1,3,8})")

const seed = 2018

// conformanceFamilies are the workloads the oracle runs. The
// parameters are tuned so every family produces live conflicts and
// resolutions within the two measured major cycles (circle converging
// from 12 nm is critical immediately; burst waves arrive from period
// 30; layers at an 800 ft gap keeps adjacent bands inside the
// vertical filter), so the differential comparison covers detection
// AND resolution, not just tracking.
func conformanceFamilies(fullRun bool) []string {
	fams := []string{
		"uniform",
		"circle:radius=12,speed=500",
		"burst:interval=30",
	}
	if fullRun {
		fams = append(fams,
			"streams",
			"dense",
			"layers:gap=800",
		)
	}
	return fams
}

func TestConformance(t *testing.T) {
	n, periods := 200, MajorCycles(2)
	workers := []int{1, 8}
	sources := []string{"sweep"}
	if *full {
		n = 400
		workers = []int{1, 3, 8}
		sources = []string{"brute", "grid", "sweep"}
	}

	runLane := func(fam, plat string, lane Lane) Fingerprint {
		t.Helper()
		return Run(RunSpec{Platform: plat, Scenario: fam, N: n, Periods: periods, Seed: seed, Lane: lane})
	}

	for _, fam := range conformanceFamilies(*full) {
		t.Run(fam, func(t *testing.T) {
			// Reference world trajectory per platform (all-pairs, one
			// worker), for the cross-platform group comparison.
			refWorld := map[string]Fingerprint{}

			for _, plat := range AllPlatforms() {
				ref := runLane(fam, plat, Lane{Workers: 1})
				refWorld[plat] = ref

				// Worker counts must change nothing at all.
				for _, w := range workers[1:] {
					lane := Lane{Workers: w}
					if fp := runLane(fam, plat, lane); fp.Full != ref.Full {
						t.Errorf("%s %s: full fingerprint diverged from workers=1\n  ref  %s misses=%d skips=%d\n  got  %s misses=%d skips=%d",
							plat, lane, ref.Full[:16], ref.Misses, ref.Skips, fp.Full[:16], fp.Misses, fp.Skips)
					}
				}

				// Pair sources must reproduce the identical world
				// trajectory (conflicts, resolutions, headings); modeled
				// times may differ, so Full is compared only across
				// workers within one source.
				for _, src := range sources {
					var srcRef Fingerprint
					for i, w := range workers {
						lane := Lane{PairSource: src, Workers: w}
						fp := runLane(fam, plat, lane)
						if fp.World != ref.World {
							t.Errorf("%s %s: world trajectory diverged from the all-pairs kernels\n  ref  %s conflicts=%d\n  got  %s conflicts=%d",
								plat, lane, ref.World[:16], ref.Conflicts, fp.World[:16], fp.Conflicts)
						}
						if i == 0 {
							srcRef = fp
						} else if fp.Full != srcRef.Full {
							t.Errorf("%s %s: full fingerprint diverged from workers=%d on the same source",
								plat, lane, workers[0])
						}
					}
				}

				// The coherent sweep must be bit-identical to the rebuild
				// sweep, modeled times included — and the sharded table
				// mode bit-identical to both, with coherence on or off, at
				// every worker count.
				for _, w := range workers {
					rebuild := runLane(fam, plat, Lane{PairSource: "sweep", Workers: w})
					coherent := runLane(fam, plat, Lane{PairSource: "sweep", Coherent: true, Workers: w})
					if coherent.Full != rebuild.Full {
						t.Errorf("%s sweep+coherent/w%d: full fingerprint diverged from the rebuild sweep\n  rebuild  %s\n  coherent %s",
							plat, w, rebuild.Full[:16], coherent.Full[:16])
					}
					for _, coh := range []bool{false, true} {
						lane := Lane{PairSource: "sweep", Coherent: coh, Sharded: true, Workers: w}
						if fp := runLane(fam, plat, lane); fp.Full != rebuild.Full {
							t.Errorf("%s %s: full fingerprint diverged from the rebuild sweep\n  rebuild %s\n  sharded %s",
								plat, lane, rebuild.Full[:16], fp.Full[:16])
						}
					}
				}
			}

			// Within a resolution discipline every platform must walk the
			// world through the identical trajectory.
			for group, plats := range map[string][]string{
				"snapshot":   SnapshotPlatforms(),
				"sequential": SequentialPlatforms(),
			} {
				lead := refWorld[plats[0]]
				for _, plat := range plats[1:] {
					if fp := refWorld[plat]; fp.World != lead.World {
						t.Errorf("%s group: %s world trajectory diverged from %s\n  %s conflicts=%d\n  %s conflicts=%d",
							group, plat, plats[0], lead.World[:16], lead.Conflicts, fp.World[:16], fp.Conflicts)
					}
				}
			}
		})
	}
}

// TestFingerprintReproducible pins the harness itself: the same run
// must fingerprint identically twice (no hidden global state).
func TestFingerprintReproducible(t *testing.T) {
	rs := RunSpec{Platform: "titanx", Scenario: "circle:radius=12", N: 100,
		Periods: MajorCycles(1), Seed: seed, Lane: Lane{Workers: 2}}
	a, b := Run(rs), Run(rs)
	if a != b {
		t.Fatalf("fingerprint not reproducible:\n  %+v\n  %+v", a, b)
	}
}
