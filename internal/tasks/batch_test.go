package tasks

import (
	"testing"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/parexec"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// TestBatchedKernelMatchesScalar is the batched-vs-scalar differential:
// across randomized scenario families, the sharded table path — the
// worker-parallel broad phase feeding the branch-free 8-wide kernel —
// must produce worlds and stats identical to the scalar sweep kernel,
// with incremental repair on or off, at every worker count, through
// several consecutive detection rounds (so commits made by one round
// feed the next, exercising table reuse against a repaired index).
func TestBatchedKernelMatchesScalar(t *testing.T) {
	families := []string{
		"uniform",
		"circle:radius=12,speed=500",
		"burst:interval=30",
		"streams",
		"dense",
		"layers:gap=800",
	}
	serial := parexec.NewPool(1)
	pools := []*parexec.Pool{parexec.NewPool(1), parexec.NewPool(3), parexec.NewPool(8)}
	const rounds = 3

	for fi, fam := range families {
		spec, err := scenario.ParseSpec(fam)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		for trial := 0; trial < 3; trial++ {
			n := 160 + (fi*97+trial*53)%240
			if err := spec.Validate(n); err != nil {
				t.Fatalf("%s n=%d: %v", fam, n, err)
			}
			seed := uint64(9000 + 31*fi + trial)
			base := spec.Generate(n, rng.New(seed))

			// One scalar reference chain and one sharded chain per
			// configuration, advanced in lockstep round by round.
			type chain struct {
				label string
				w     *airspace.World
				src   broadphase.PairSource
				pool  *parexec.Pool
			}
			ref := chain{label: "scalar", w: base.Clone(), src: broadphase.NewSweep(), pool: serial}
			var got []chain
			for _, inc := range []bool{false, true} {
				for _, p := range pools {
					lbl := "sharded"
					if inc {
						lbl = "sharded+coherent"
					}
					got = append(got, chain{
						label: lbl + "/w" + itoa(p.Workers()),
						w:     base.Clone(),
						src:   broadphase.NewShardedSweep(inc),
						pool:  p,
					})
				}
			}

			for round := 0; round < rounds; round++ {
				tag := func(c chain, task string) string {
					return fam + " trial " + itoa(trial) + " round " + itoa(round) + " " + task + " " + c.label
				}
				// Detection alone on forks, so the fused task below sees
				// identical inputs on every chain.
				detW := ref.w.Clone()
				detRef := DetectExec(detW, ref.src, ref.pool)
				resRef := DetectResolveExec(ref.w, ref.src, ref.pool)
				for _, c := range got {
					dw := c.w.Clone()
					if det := DetectExec(dw, c.src, c.pool); det != detRef {
						t.Fatalf("%s: stats diverged:\nscalar:  %+v\nsharded: %+v", tag(c, "Detect"), detRef, det)
					}
					worldsEqual(t, tag(c, "Detect"), detW, dw)
					if res := DetectResolveExec(c.w, c.src, c.pool); res != resRef {
						t.Fatalf("%s: stats diverged:\nscalar:  %+v\nsharded: %+v", tag(c, "DetectResolve"), resRef, res)
					}
					worldsEqual(t, tag(c, "DetectResolve"), ref.w, c.w)
				}
				// Fly the committed courses so the next round's index — and
				// the incremental chains' repairs — see moved traffic.
				advance := func(w *airspace.World) {
					for i := range w.Aircraft {
						a := &w.Aircraft[i]
						a.X += a.DX
						a.Y += a.DY
						airspace.Wrap(a)
					}
				}
				advance(ref.w)
				for _, c := range got {
					advance(c.w)
				}
			}
		}
	}
}
