package lint_test

import (
	"go/token"
	"os"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestNoallocFlow(t *testing.T) {
	linttest.RunFlow(t, "testdata/src/noallocflow", []linttest.FlowPackage{
		{Dir: "util", Path: "repro/fixture/util"},
		{Dir: "hot", Path: "repro/fixture/hot"},
	})
}

func TestModeledTimeFlow(t *testing.T) {
	linttest.RunFlow(t, "testdata/src/modeledtimeflow", []linttest.FlowPackage{
		{Dir: "timeutil", Path: "repro/fixture/timeutil"},
		{Dir: "platform", Path: "repro/internal/platform"},
	})
}

// TestModeledTimeFlowNonPlatform checks that Track/DetectResolve
// methods root the analysis only inside the platform packages: outside
// them, with no //atm:modeled-time directive, nothing is reachable
// from a root and wall-clock reads are fine (host benchmarking code).
func TestModeledTimeFlowNonPlatform(t *testing.T) {
	linttest.RunFlow(t, "testdata/src/modeledtimeflow_nonplatform", []linttest.FlowPackage{
		{Dir: "report", Path: "repro/internal/report"},
	})
}

// TestStaleWaiver checks both halves of waiver accounting over one
// fixture: the consumed waiver (determinism's globalrand fires and is
// suppressed) stays quiet, the waiver that suppresses nothing is
// reported at its own line.
func TestStaleWaiver(t *testing.T) {
	fset, g := linttest.LoadFlow(t, "testdata/src/stalewaiver", []linttest.FlowPackage{
		{Dir: "w", Path: "repro/internal/tasks"},
	})
	src, err := os.ReadFile("testdata/src/stalewaiver/w/w.go")
	if err != nil {
		t.Fatal(err)
	}
	staleLine := 0
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "nothing to waive") {
			staleLine = i + 1
		}
	}
	if staleLine == 0 {
		t.Fatal("fixture marker line not found")
	}

	for _, res := range lint.RunFlowSuite(g) {
		if res.Err != nil {
			t.Fatalf("analyzer %s: %v", res.Analyzer, res.Err)
		}
		switch res.Analyzer {
		case "stalewaiver":
			if len(res.Diagnostics) != 1 {
				t.Fatalf("stalewaiver reported %d diagnostics, want 1", len(res.Diagnostics))
			}
			d := res.Diagnostics[0]
			if got := fset.Position(d.Pos).Line; got != staleLine {
				t.Errorf("stale waiver reported at line %d, want %d", got, staleLine)
			}
			if !strings.Contains(d.Message, "atm:allow maprange waives zero diagnostics") {
				t.Errorf("unexpected message: %s", d.Message)
			}
		default:
			for _, d := range res.Diagnostics {
				t.Errorf("%s: unexpected diagnostic [%s]: %s", fset.Position(d.Pos), res.Analyzer, d.Message)
			}
		}
	}
}

// TestCallGraphDOT pins the exact edge set the builder derives for one
// construct per edge kind: interface dispatch fan-out, generic origin
// resolution, method values, and closures stored in struct fields.
func TestCallGraphDOT(t *testing.T) {
	_, g := linttest.LoadFlow(t, "testdata/src/callgraph", []linttest.FlowPackage{
		{Dir: "cg", Path: "repro/fixture/cg"},
	})
	var buf strings.Builder
	if err := g.WriteDOT(&buf, "repro/fixture/cg"); err != nil {
		t.Fatal(err)
	}
	want := `digraph "repro/fixture/cg" {
  "repro/fixture/cg.Run" -> "(*repro/fixture/cg.A).Tick" [label="iface"];
  "repro/fixture/cg.Run" -> "(repro/fixture/cg.B).Tick" [label="iface"];
  "repro/fixture/cg.UseGenerics" -> "repro/fixture/cg.Map" [label="call"];
  "repro/fixture/cg.UseGenerics" -> "repro/fixture/cg.double" [label="funcval"];
  "repro/fixture/cg.closureField" -> "repro/fixture/cg.closureField.func1" [label="closure"];
  "repro/fixture/cg.closureField.func1" -> "(*repro/fixture/cg.A).Tick" [label="call"];
  "repro/fixture/cg.makeHandler" -> "(*repro/fixture/cg.A).Tick" [label="funcval"];
}
`
	if got := buf.String(); got != want {
		t.Errorf("WriteDOT mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Calls through func-typed values (Map's parameter, Handler's
	// field) have no resolvable target: the callers must be Dynamic.
	wantDynamic := map[string]bool{
		"repro/fixture/cg.Map":    true,
		"repro/fixture/cg.invoke": true,
	}
	for _, n := range g.Nodes {
		if n.External() {
			continue
		}
		if n.Dynamic != wantDynamic[n.Name()] {
			t.Errorf("node %s: Dynamic = %v, want %v", n.Name(), n.Dynamic, wantDynamic[n.Name()])
		}
	}
}

// TestFlowSuiteComplete pins the flow-analyzer roster and its order:
// stalewaiver must run last so every waiver-consuming analyzer has
// recorded its usage first.
func TestFlowSuiteComplete(t *testing.T) {
	want := []string{"noallocflow", "modeledtimeflow", "stalewaiver"}
	got := lint.FlowAnalyzers()
	if len(got) != len(want) {
		t.Fatalf("FlowAnalyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("FlowAnalyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestOrderDiagnostics pins the output contract: diagnostics print in
// (file, offset, analyzer) order regardless of how analyzers and
// packages interleaved during the run.
func TestOrderDiagnostics(t *testing.T) {
	fset := token.NewFileSet()
	fb := fset.AddFile("b.go", -1, 100)
	fa := fset.AddFile("a.go", -1, 100)

	results := []lint.FlowResult{
		{Analyzer: "zeta", Diagnostics: []lint.Diagnostic{
			{Pos: fa.Pos(10), Message: "za10"},
			{Pos: fb.Pos(5), Message: "zb5"},
		}},
		{Analyzer: "alpha", Diagnostics: []lint.Diagnostic{
			{Pos: fa.Pos(10), Message: "aa10"},
			{Pos: fa.Pos(2), Message: "aa2"},
		}},
	}
	got := lint.OrderDiagnostics(fset, results)
	want := []string{"aa2", "aa10", "za10", "zb5"}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d", len(got), len(want))
	}
	for i, d := range got {
		if d.Message != want[i] {
			t.Errorf("position %d: got %q, want %q", i, d.Message, want[i])
		}
	}
}
