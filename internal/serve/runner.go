package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/telemetry/live"
)

// Result is one served simulation: the rendered response body plus the
// validator headers derived from it. Bodies are immutable after
// construction and shared by the cache and every waiting request —
// which is exactly why cached and fresh answers are byte-identical.
type Result struct {
	Body []byte
	ETag string
}

// Row is one measurement row of the response: the per-task summary the
// experiment figures are built from, in modeled nanoseconds.
type Row struct {
	Task   string `json:"task"`
	Runs   int    `json:"runs"`
	MeanNs int64  `json:"mean_ns"`
	MaxNs  int64  `json:"max_ns"`
	Misses int    `json:"misses"`
	Skips  int    `json:"skips"`
}

// Response is the JSON document served for one run. Every field is a
// pure function of the canonical config: no wall-clock readings, no
// host identity, no worker counts — so the bytes are reproducible
// across processes, cache states and -workers settings.
type Response struct {
	Config           RunConfig `json:"config"`
	Key              string    `json:"key"`
	Rows             []Row     `json:"rows"`
	Periods          int       `json:"periods"`
	PeriodMisses     int       `json:"period_misses"`
	MaxLoadNs        int64     `json:"max_load_ns"`
	VirtualElapsedNs int64     `json:"virtual_elapsed_ns"`
	DeadlinesMet     bool      `json:"deadlines_met"`
	// TelemetryJSONL / ChromeTrace carry the optional modeled-time
	// telemetry exports (worker-invariant byte streams; see
	// internal/telemetry).
	TelemetryJSONL string `json:"telemetry_jsonl,omitempty"`
	ChromeTrace    string `json:"chrome_trace,omitempty"`
}

// Runner executes one canonical config. The default runner drives the
// deterministic core; tests substitute counting or blocking stubs.
type Runner func(cfg RunConfig) (*Result, error)

// newRunner builds the production runner. workers pins the host pool
// size of each run's platform (0 = process default); the setting is
// wall-clock-only and never changes response bytes. pub, when non-nil,
// receives each completed run's telemetry aggregates for the live
// stats endpoint (last run wins).
func newRunner(workers int, pub *live.Publisher) Runner {
	return func(cfg RunConfig) (*Result, error) {
		p, err := platform.New(cfg.Platform, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if workers > 0 {
			if wp, ok := p.(platform.Workered); ok {
				wp.SetWorkers(workers)
			}
		}
		sys := core.NewSystem(p, core.Config{N: cfg.N, Seed: cfg.Seed, Scenario: cfg.Scenario, PairSource: cfg.PairSource, Incremental: cfg.Coherent, ParShard: cfg.ParShard})
		rec := telemetry.NewRecorder(telemetry.DefaultCapacity)
		if cfg.Detail == "block" {
			rec.SetDetail(telemetry.DetailBlock)
		}
		sys.SetTelemetry(rec)
		for i := 0; i < cfg.Periods; i++ {
			sys.RunPeriod()
		}
		// The run envelope: one span covering the whole schedule, so
		// service-side exports carry the request boundary alongside the
		// scheduler's per-period spans.
		rec.Span(rec.Intern(telemetry.NameServeRun), 0, sys.Stats().VirtualElapsed)
		if pub != nil {
			pub.Update(rec)
		}
		return render(cfg, sys, rec)
	}
}

// render builds the immutable response bytes. Task rows are emitted in
// the fixed schedule order (never by ranging over the stats map), and
// json.Marshal writes struct fields in declaration order, so rendering
// is deterministic.
func render(cfg RunConfig, sys *core.System, rec *telemetry.Recorder) (*Result, error) {
	st := sys.Stats()
	resp := Response{
		Config:           cfg,
		Key:              cfg.Hash(),
		Rows:             []Row{rowFor(core.Task1, st.Task(core.Task1)), rowFor(core.Task23, st.Task(core.Task23))},
		Periods:          st.Periods,
		PeriodMisses:     st.PeriodMisses,
		MaxLoadNs:        int64(st.MaxLoad),
		VirtualElapsedNs: int64(st.VirtualElapsed),
		DeadlinesMet:     st.PeriodMisses == 0,
	}
	switch cfg.Telemetry {
	case "jsonl":
		var b strings.Builder
		if err := telemetry.WriteJSONL(&b, rec); err != nil {
			return nil, err
		}
		resp.TelemetryJSONL = b.String()
	case "chrome":
		var b strings.Builder
		if err := telemetry.WriteChromeTrace(&b, rec); err != nil {
			return nil, err
		}
		resp.ChromeTrace = b.String()
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	return &Result{Body: body, ETag: `"` + hex.EncodeToString(sum[:8]) + `"`}, nil
}

func rowFor(name string, ts *sched.TaskStats) Row {
	return Row{
		Task:   name,
		Runs:   ts.Runs,
		MeanNs: ts.Mean().Nanoseconds(),
		MaxNs:  ts.Max.Nanoseconds(),
		Misses: ts.Misses,
		Skips:  ts.Skips,
	}
}
