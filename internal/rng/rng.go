// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component of the reproduction
// (flight setup, radar noise, MIMD scheduling jitter).
//
// Reproducibility is a core claim of the paper ("we would get the exact
// same timings again and again"), so the simulation cannot depend on
// global seeding or on math/rand implementation changes across Go
// releases. This package implements xoshiro256** seeded through
// splitmix64, both public-domain algorithms by Blackman and Vigna, so a
// (seed, call-sequence) pair yields bit-identical streams on every
// platform and Go version.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. It is NOT safe for
// concurrent use; derive per-goroutine generators with Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, which
// guarantees the xoshiro state is well mixed even for small seeds.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent
// of r's. It advances r.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *Rand) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := -uint64(n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Sign returns +1 or -1 with equal probability. The paper determines
// coordinate and velocity signs with parity tests on small random
// integers; Sign abstracts that.
func (r *Rand) Sign() float64 {
	if r.Bool() {
		return 1
	}
	return -1
}

// Noise returns a uniform value in [-amp, +amp], used for radar
// measurement error ("a small random noise ... can be either positive or
// negative").
func (r *Rand) Noise(amp float64) float64 {
	return r.Range(-amp, amp)
}

// Exp returns an exponentially distributed value with the given mean,
// used by the MIMD model for OS-scheduling jitter tails.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm fills p with a uniform random permutation of [0, len(p)).
func (r *Rand) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
