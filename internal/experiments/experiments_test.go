package experiments

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/trace"
)

// quick is the test configuration: trimmed sweeps, one major cycle.
var quick = Config{Seed: 2018, Quick: true}

func labels(t *testing.T, names []string) map[string]bool {
	t.Helper()
	m := map[string]bool{}
	for _, n := range names {
		m[platform.Label(n)] = true
	}
	return m
}

func TestFig4ShapesAndOrdering(t *testing.T) {
	d, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "fig4" || len(d.Series) != len(platform.Names()) {
		t.Fatalf("dataset = %+v", d)
	}
	want := labels(t, platform.Names())
	for _, s := range d.Series {
		if !want[s.Label] {
			t.Fatalf("unexpected series %q", s.Label)
		}
		if len(s.Points) != len(quick.AllPlatformNs()) {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		// Timings must be positive and nondecreasing-ish in N (allow
		// the MIMD jitter a 2x tolerance).
		for i, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %q point %d not positive: %+v", s.Label, i, p)
			}
		}
	}
	// Ordering at the largest sweep point: every NVIDIA series below
	// AP, ClearSpeed and Xeon.
	nmax := float64(quick.AllPlatformNs()[len(quick.AllPlatformNs())-1])
	at := func(label string) float64 {
		s := d.Get(label)
		for _, p := range s.Points {
			if p.X == nmax {
				return p.Y
			}
		}
		t.Fatalf("series %q missing point at %v", label, nmax)
		return 0
	}
	for _, nv := range platform.NVIDIANames() {
		for _, other := range []string{platform.STARAN, platform.ClearSpeed, platform.Xeon16} {
			if at(platform.Label(nv)) >= at(platform.Label(other)) {
				t.Errorf("at N=%v: %s (%v) not faster than %s (%v)",
					nmax, platform.Label(nv), at(platform.Label(nv)),
					platform.Label(other), at(platform.Label(other)))
			}
		}
	}
}

func TestFig5NVIDIAOnly(t *testing.T) {
	d, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(d.Series))
	}
	// Device generation ordering at the top of the sweep.
	ns := quick.NVIDIANs()
	nmax := float64(ns[len(ns)-1])
	titan := d.Get(platform.Label(platform.TitanXPascal))
	old := d.Get(platform.Label(platform.GeForce9800GT))
	var tTitan, tOld float64
	for _, p := range titan.Points {
		if p.X == nmax {
			tTitan = p.Y
		}
	}
	for _, p := range old.Points {
		if p.X == nmax {
			tOld = p.Y
		}
	}
	if tTitan >= tOld {
		t.Fatalf("Titan X (%v) not faster than 9800 GT (%v) at N=%v", tTitan, tOld, nmax)
	}
}

func TestFig6And7Task23(t *testing.T) {
	d6, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	d7, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if d6.ID != "fig6" || d7.ID != "fig7" {
		t.Fatal("wrong ids")
	}
	if len(d7.Series) != 3 {
		t.Fatalf("fig7 series = %d", len(d7.Series))
	}
	// Tasks 2+3 cost more than Task 1 on the same platform and N (the
	// conflict equations cost ~4x a box check).
	d4, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	label := platform.Label(platform.STARAN)
	if d6.Get(label).Points[0].Y <= d4.Get(label).Points[0].Y {
		t.Errorf("Tasks 2+3 (%v) not more expensive than Task 1 (%v) on the AP",
			d6.Get(label).Points[0].Y, d4.Get(label).Points[0].Y)
	}
}

func TestFig8LinearFit(t *testing.T) {
	r, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "GTX 880M has a linear curve for its tracking and
	// correlation timings as shown by its goodness of fit values." Our
	// shape criterion is the log-log growth exponent: ~1 reads as
	// linear on the figures.
	if !r.NearLinear {
		t.Fatalf("Task 1 on 880M classified as not near-linear (exponent %v)", r.Exponent)
	}
	if r.Exponent > NearLinearExp {
		t.Fatalf("exponent %v above the near-linear threshold", r.Exponent)
	}
}

func TestFig9QuadraticSmallCoefficient(t *testing.T) {
	r, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: quadratic fits slightly better but "the quadratic
	// coefficient is very small compared to the linear coefficient",
	// and the curve never approaches the deadline.
	if r.Quadratic.SSE > r.Linear.SSE {
		t.Fatalf("quadratic fit worse than linear: %v > %v", r.Quadratic.SSE, r.Linear.SSE)
	}
	if !r.SmallQuadCoeff {
		t.Fatalf("quadratic coefficient not small vs linear: %s", r.Quadratic)
	}
	if r.Exponent >= 2.2 {
		t.Fatalf("Tasks 2+3 on 9800 GT growth exponent %v — worse than quadratic", r.Exponent)
	}
}

func TestDeadlineTableShapes(t *testing.T) {
	d, err := DeadlineTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic platforms: zero misses everywhere in the sweep.
	for _, name := range []string{platform.GeForce9800GT, platform.GTX880M, platform.TitanXPascal, platform.STARAN, platform.ClearSpeed} {
		s := d.Get(platform.Label(name))
		for _, p := range s.Points {
			if p.Y != 0 {
				t.Errorf("%s missed %v deadlines at N=%v", s.Label, p.Y, p.X)
			}
		}
	}
}

func TestDeterminismTable(t *testing.T) {
	d, err := DeterminismTable(quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{platform.TitanXPascal, platform.STARAN, platform.ClearSpeed} {
		s := d.Get(platform.Label(name))
		if s.Points[0].Y != 0 {
			t.Errorf("%s deviated %v across identical runs; must be exactly 0", s.Label, s.Points[0].Y)
		}
	}
	xeon := d.Get(platform.Label(platform.Xeon16))
	if xeon.Points[0].Y == 0 {
		t.Error("Xeon showed zero timing deviation across runs; the MIMD model must vary")
	}
}

func TestKernelSplitTable(t *testing.T) {
	d, err := KernelSplitTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	fused := d.Get("fused (paper)")
	split := d.Get("split detect+resolve")
	if fused == nil || split == nil {
		t.Fatalf("missing series: %+v", d.Series)
	}
	for i := range fused.Points {
		if split.Points[i].Y <= fused.Points[i].Y {
			t.Errorf("at N=%v: split (%v) not more expensive than fused (%v)",
				fused.Points[i].X, split.Points[i].Y, fused.Points[i].Y)
		}
	}
}

func TestBoxPassTable(t *testing.T) {
	d, err := BoxPassTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	one := d.Get("1 pass(es)")
	three := d.Get("3 pass(es)")
	if one == nil || three == nil {
		t.Fatalf("missing series: %+v", d.Series)
	}
	for i := range one.Points {
		if three.Points[i].Y < one.Points[i].Y {
			t.Errorf("at N=%v: 3 passes matched less (%v) than 1 pass (%v)",
				one.Points[i].X, three.Points[i].Y, one.Points[i].Y)
		}
	}
	// At 0.45 nm noise, the box doubling must visibly help.
	last := len(one.Points) - 1
	if three.Points[last].Y-one.Points[last].Y < 0.05 {
		t.Errorf("box doubling bought only %v extra matches — ablation not discriminating",
			three.Points[last].Y-one.Points[last].Y)
	}
}

func TestNormalizedTable(t *testing.T) {
	d, err := NormalizedTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Every series starts at 1.0 by construction.
	for _, s := range d.Series {
		if s.Points[0].Y < 0.99 || s.Points[0].Y > 1.01 {
			t.Errorf("series %q starts at %v, want 1.0", s.Label, s.Points[0].Y)
		}
	}
}

func TestConfigSweeps(t *testing.T) {
	full := Config{Seed: 1}
	if full.cycles() != DefaultConfig.Cycles {
		t.Fatalf("default cycles = %d", full.cycles())
	}
	if quick.cycles() != 1 {
		t.Fatalf("quick cycles = %d", quick.cycles())
	}
	if len(full.AllPlatformNs()) < 4 || len(full.NVIDIANs()) < 5 {
		t.Fatal("full sweeps too short")
	}
	nv := full.NVIDIANs()
	if nv[len(nv)-1] != 32000 {
		t.Fatal("NVIDIA sweep must extend to 32000 aircraft")
	}
}

func TestVectorTable(t *testing.T) {
	d, err := VectorTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(d.Series))
	}
	// The Xeon Phi must beat the plain Xeon at the top of the sweep —
	// the Section 7.2 hypothesis.
	ns := quick.AllPlatformNs()
	nmax := float64(ns[len(ns)-1])
	at := func(label string) float64 {
		for _, p := range d.Get(label).Points {
			if p.X == nmax {
				return p.Y
			}
		}
		t.Fatalf("missing point for %s", label)
		return 0
	}
	if at(platform.Label(platform.XeonPhi)) >= at(platform.Label(platform.Xeon16)) {
		t.Errorf("Xeon Phi (%v) not faster than the Xeon (%v) at N=%v",
			at(platform.Label(platform.XeonPhi)), at(platform.Label(platform.Xeon16)), nmax)
	}
}

func TestRadarNetTable(t *testing.T) {
	d, err := RadarNetTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	tracked := d.Get("fraction radar-tracked")
	if tracked == nil {
		t.Fatalf("missing series: %+v", d.Series)
	}
	// More dropout, less radar tracking: strictly decreasing fractions.
	for i := 1; i < len(tracked.Points); i++ {
		if tracked.Points[i].Y >= tracked.Points[i-1].Y {
			t.Fatalf("tracked fraction not decreasing with dropout: %+v", tracked.Points)
		}
	}
	// Near-zero dropout still tracks nearly everyone.
	if tracked.Points[0].Y < 0.95 {
		t.Fatalf("baseline tracking fraction %v", tracked.Points[0].Y)
	}
}

func TestCapacityTable(t *testing.T) {
	d, err := CapacityTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Every platform handles the quick-mode cap (4000 aircraft).
	for _, s := range d.Series {
		if s.Points[0].Y < 4000 {
			t.Errorf("%s capacity %v below the quick cap", s.Label, s.Points[0].Y)
		}
	}
	if len(d.Series) != len(platform.Names())+1 {
		t.Fatalf("series = %d", len(d.Series))
	}
}

func TestBroadphaseTable(t *testing.T) {
	d, err := BroadphaseTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "broadphase" {
		t.Fatalf("dataset id %q", d.ID)
	}
	brute := d.Get("pairs:brute")
	if brute == nil {
		t.Fatalf("missing brute series: %+v", d.Series)
	}
	ns := quick.AllPlatformNs()
	if len(brute.Points) != len(ns) {
		t.Fatalf("brute has %d points, want %d", len(brute.Points), len(ns))
	}
	// The pruned sources must evaluate strictly fewer pairs than brute
	// at every sweep point, and every source must report a wall time.
	for _, name := range []string{"grid", "sweep"} {
		pruned := d.Get("pairs:" + name)
		if pruned == nil {
			t.Fatalf("missing series pairs:%s", name)
		}
		for i := range brute.Points {
			if pruned.Points[i].X != brute.Points[i].X {
				t.Fatalf("%s: sweep mismatch at %d: %+v vs %+v", name, i, pruned.Points[i], brute.Points[i])
			}
			if pruned.Points[i].Y >= brute.Points[i].Y {
				t.Errorf("%s evaluates %v pairs at n=%v, brute %v — no pruning",
					name, pruned.Points[i].Y, pruned.Points[i].X, brute.Points[i].Y)
			}
		}
		if ms := d.Get("ms:" + name); ms == nil || len(ms.Points) != len(pruned.Points) {
			t.Fatalf("ms:%s series malformed", name)
		}
	}
}

func TestCoherenceTable(t *testing.T) {
	d, err := CoherenceTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "coherence" {
		t.Fatalf("dataset id %q", d.ID)
	}
	// Both lanes report wall times at every sweep point, and the
	// incremental lane's repair statistics come with them. Wall times
	// are host noise, so the test asserts shape, not speedups.
	for _, m := range []string{"m1", "m16", "m64"} {
		reb := d.Get("ms:rebuild:" + m)
		inc := d.Get("ms:incremental:" + m)
		if reb == nil || inc == nil {
			t.Fatalf("missing wall-time series for %s: %+v", m, d.Series)
		}
		if len(reb.Points) != len(inc.Points) || len(reb.Points) == 0 {
			t.Fatalf("%s: rebuild has %d points, incremental %d", m, len(reb.Points), len(inc.Points))
		}
		if fb := d.Get("fallbacks:" + m); fb == nil {
			t.Fatalf("missing fallbacks series for %s", m)
		}
		moved := d.Get("moved:" + m)
		if moved == nil {
			t.Fatalf("missing moved series for %s", m)
		}
		// More motion between passes moves more aircraft in the order.
		if prev := d.Get("moved:m1"); m != "m1" && prev != nil {
			for i := range moved.Points {
				if moved.Points[i].Y < prev.Points[i].Y {
					t.Errorf("moved:%s at n=%v is %v, below moved:m1 %v",
						m, moved.Points[i].X, moved.Points[i].Y, prev.Points[i].Y)
				}
			}
		}
	}
	// Steady-state passes allocate nothing in either lane.
	for _, s := range d.Series {
		if len(s.Label) > 6 && s.Label[:6] == "allocs" {
			for _, p := range s.Points {
				if p.Y > 0.5 {
					t.Errorf("%s at n=%v: %v allocs per pass", s.Label, p.X, p.Y)
				}
			}
		}
	}
}

func TestParShardTable(t *testing.T) {
	d, err := ParShardTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "parshard" {
		t.Fatalf("dataset id %q", d.ID)
	}
	// Every (mode, workers) cell reports wall times plus the shard
	// counters. Wall times are host noise, so the test asserts shape —
	// and the worker-invariance of the counters, which are exact.
	for _, mode := range []string{"rebuild", "coherent"} {
		var seg1, bat1 *trace.Series
		for _, w := range []string{"w1", "w8"} {
			tag := mode + ":" + w
			ms := d.Get("ms:" + tag)
			if ms == nil || len(ms.Points) == 0 {
				t.Fatalf("missing wall-time series for %s: %+v", tag, d.Series)
			}
			seg := d.Get("segments:" + tag)
			bat := d.Get("batches:" + tag)
			if seg == nil || bat == nil {
				t.Fatalf("missing shard-counter series for %s", tag)
			}
			for i := range seg.Points {
				if seg.Points[i].Y <= 0 || bat.Points[i].Y <= 0 {
					t.Errorf("%s at n=%v: segments %v batches %v, want positive",
						tag, seg.Points[i].X, seg.Points[i].Y, bat.Points[i].Y)
				}
			}
			if w == "w1" {
				seg1, bat1 = seg, bat
				continue
			}
			for i := range seg.Points {
				if seg.Points[i].Y != seg1.Points[i].Y || bat.Points[i].Y != bat1.Points[i].Y {
					t.Errorf("%s at n=%v: counters diverge from w1 (segments %v vs %v, batches %v vs %v)",
						tag, seg.Points[i].X, seg.Points[i].Y, seg1.Points[i].Y, bat.Points[i].Y, bat1.Points[i].Y)
				}
			}
		}
	}
}
