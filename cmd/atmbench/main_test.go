package main

import (
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the atmbench executable
// (see cmd/atmsim/main_test.go for the pattern).
func TestMain(m *testing.M) {
	if os.Getenv("ATMBENCH_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestBadFlagsAreUsageErrors: invalid configurations exit 2 from
// pre-flight validation, before any sweep starts.
func TestBadFlagsAreUsageErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"unknown scenario family", []string{"-scenario", "warp"}, "unknown family"},
		{"bad scenario value", []string{"-scenario", "burst:waves=0"}, "waves must be"},
		{"negative workers", []string{"-workers", "-2"}, "worker count"},
	}
	for _, tc := range cases {
		cmd := exec.Command(os.Args[0], tc.args...)
		cmd.Env = append(os.Environ(), "ATMBENCH_RUN_MAIN=1")
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Errorf("%s: err %v, want an exit error\n%s", tc.name, err, out)
			continue
		}
		if ee.ExitCode() != 2 {
			t.Errorf("%s: exit %d, want 2\n%s", tc.name, ee.ExitCode(), out)
		}
		if !strings.Contains(string(out), tc.wantSub) {
			t.Errorf("%s: output %q does not mention %q", tc.name, out, tc.wantSub)
		}
	}
}
