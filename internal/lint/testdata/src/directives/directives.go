// Fixture for the directive checker: malformed, unknown, and dangling
// //atm: directives are diagnostics in their own right.
package fixture

//atm:noalloc
func wellFormed() {} // clean: attaches to the declaration

//atm:nosuchkind
func unknownKind() {} // the directive above is flagged, not the func

//atm:noalloc extra-arg
func extraArgs() {}

//atm:allow maprange
func missingJustification(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

//atm:allow nosuchrule -- some reason
func unknownRule() {}

func body() {
	//atm:noalloc
	x := 1 // the directive above attaches to no function literal
	_ = x
}
