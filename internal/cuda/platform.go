package cuda

import (
	"time"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/radar"
)

// Platform adapts an Engine to the platform.Platform interface used by
// the scheduler and the experiment harness.
type Platform struct {
	eng *Engine
}

// NewPlatform returns a scheduler-facing platform on the given device
// profile.
func NewPlatform(p Profile) *Platform {
	return &Platform{eng: NewEngine(p)}
}

// Engine exposes the underlying kernel engine.
func (p *Platform) Engine() *Engine { return p.eng }

// SetPairSource installs a broadphase pair source on the engine (nil
// restores the paper's all-pairs kernels).
func (p *Platform) SetPairSource(src broadphase.PairSource) { p.eng.SetPairSource(src) }

// SetWorkers pins the host worker count used to execute kernel blocks
// (n <= 0 restores the process-default pool).
func (p *Platform) SetWorkers(n int) { p.eng.SetWorkers(n) }

// Name returns the device name.
func (p *Platform) Name() string { return p.eng.Name() }

// Deterministic reports that the modeled timing is a pure function of
// the workload — the property the paper demonstrates for CUDA devices.
func (p *Platform) Deterministic() bool { return true }

// Track runs Task 1 and returns the modeled device time.
func (p *Platform) Track(w *airspace.World, f *radar.Frame) time.Duration {
	return p.eng.TrackDrone(w, f).Time
}

// DetectResolve runs the fused Tasks 2-3 kernel and returns the modeled
// device time.
func (p *Platform) DetectResolve(w *airspace.World) time.Duration {
	return p.eng.CheckCollisionPath(w).Time
}
