package platform

import (
	"testing"

	"repro/internal/airspace"
	"repro/internal/broadphase"
	"repro/internal/rng"
)

// TestPairSourceExactOnEveryPlatform is the cross-platform half of the
// broadphase exactness property: for every registered machine, running
// Tasks 2-3 with each pruned pair source must leave the world in
// exactly the state the platform's own all-pairs scan produces. The
// modeled time may differ (that is the point); the traffic outcome may
// not.
func TestPairSourceExactOnEveryPlatform(t *testing.T) {
	r := rng.New(0xbf)
	names := append(Names(), ExtensionNames()...)
	for trial := 0; trial < 3; trial++ {
		base := airspace.NewWorld(200+trial*150, r.Split())
		// Compress into a denser block so conflicts and resolutions
		// actually occur.
		for i := range base.Aircraft {
			base.Aircraft[i].X *= 0.2
			base.Aircraft[i].Y *= 0.2
			base.Aircraft[i].Alt = 20000 + float64(i%3)*800
		}
		for _, name := range names {
			ref := base.Clone()
			MustNew(name, 5).DetectResolve(ref)

			for _, srcName := range broadphase.Names() {
				p := MustNew(name, 5)
				ps, ok := p.(PairSourced)
				if !ok {
					t.Fatalf("%s does not implement PairSourced", name)
				}
				ps.SetPairSource(broadphase.MustNew(srcName))
				w := base.Clone()
				p.DetectResolve(w)
				for i := range w.Aircraft {
					a, b := &ref.Aircraft[i], &w.Aircraft[i]
					if a.Col != b.Col || a.ColWith != b.ColWith || a.TimeTill != b.TimeTill ||
						a.DX != b.DX || a.DY != b.DY {
						t.Fatalf("%s with %s: aircraft %d diverges from all-pairs run: ref Col=%v ColWith=%d TimeTill=%v DX=%v DY=%v, got Col=%v ColWith=%d TimeTill=%v DX=%v DY=%v",
							name, srcName, i,
							a.Col, a.ColWith, a.TimeTill, a.DX, a.DY,
							b.Col, b.ColWith, b.TimeTill, b.DX, b.DY)
					}
				}
			}
		}
	}
}

// TestPairSourcePrunesModeledTime: at a scale where pruning matters,
// the pruned Tasks 2-3 invocation must be modeled (or measured, for the
// MIMD machine's op tally) as cheaper than the all-pairs one on every
// platform except the associative machines, whose wide operations are
// constant-time over all PEs regardless of the responder mask.
func TestPairSourcePrunesModeledTime(t *testing.T) {
	base := airspace.NewWorld(4000, rng.New(21))
	for _, name := range []string{TitanXPascal, Xeon16, XeonPhi, AVX2} {
		ref := base.Clone()
		dRef := MustNew(name, 5).DetectResolve(ref)

		p := MustNew(name, 5)
		p.(PairSourced).SetPairSource(broadphase.NewGrid())
		w := base.Clone()
		dPruned := p.DetectResolve(w)
		if dPruned >= dRef {
			t.Errorf("%s: pruned DetectResolve modeled at %v, all-pairs %v — no win", name, dPruned, dRef)
		}
	}
}
