// Dense: a conflict-storm stress scenario. Rings of aircraft all fly
// toward the center of the airfield at the same altitude, guaranteeing
// many simultaneous critical conflicts — the worst case for Task 3's
// rotation search. The example compares how much extra work the
// resolver does versus calm traffic, and verifies the paper's
// observation that special situations cost a bounded multiple of the
// usual time (Section 7.1 reports no more than ~5x).
//
// Run with:
//
//	go run ./examples/dense
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/airspace"
	"repro/internal/cuda"
	"repro/internal/rng"
	"repro/internal/tasks"
)

// buildConvergent places n aircraft on concentric rings, every one
// heading for the origin at 300 knots and the same altitude.
func buildConvergent(n int) *airspace.World {
	w := &airspace.World{Aircraft: make([]airspace.Aircraft, n)}
	const speed = 300.0 / airspace.PeriodsPerHour
	for i := range w.Aircraft {
		a := &w.Aircraft[i]
		a.ID = int32(i)
		ring := 1 + i/60
		theta := float64(i%60) / 60 * 2 * math.Pi
		radius := 25 + float64(ring)*12
		a.X = radius * math.Cos(theta)
		a.Y = radius * math.Sin(theta)
		a.DX = -speed * math.Cos(theta)
		a.DY = -speed * math.Sin(theta)
		a.Alt = 15000
		a.ResetConflict()
	}
	return w
}

func main() {
	const n = 600
	eng := cuda.NewEngine(cuda.TitanXPascal)

	// Baseline: calm random traffic of the same size.
	calmWorld := airspace.NewWorld(n, rng.New(3))
	calm := eng.CheckCollisionPath(calmWorld)

	// The storm.
	storm := buildConvergent(n)
	first := eng.CheckCollisionPath(storm)

	fmt.Printf("device: %s, %d aircraft\n\n", eng.Name(), n)
	fmt.Printf("calm traffic : %4d conflicts, %5d rotations tried, kernel time %v\n",
		calm.Stats.Conflicts, calm.Stats.Rotations, calm.Time)
	fmt.Printf("storm cycle 1: %4d conflicts, %5d rotations tried, kernel time %v\n",
		first.Stats.Conflicts, first.Stats.Rotations, first.Time)

	ratio := first.Time.Seconds() / calm.Time.Seconds()
	fmt.Printf("\nstorm/calm time ratio: %.1fx (the paper reports special situations\n", ratio)
	fmt.Println("costing up to ~5x the usual time — and that they seldom occur)")

	// Everyone aims at the same point, so no ±30° turn can clear the
	// center: this is the paper's "complete collision avoidance is not
	// possible in some situations" case, resolved by changing altitude.
	fmt.Println("\ncycle  critical-conflicts  resolved-by-turn  unresolved  alt-changes")
	for cycle := 1; cycle <= 6; cycle++ {
		res := eng.CheckCollisionPath(storm)
		altChanges := 0
		if res.Stats.Unresolved > 0 {
			altChanges = tasks.AltitudeResolve(storm)
		}
		fmt.Printf("%5d  %18d  %16d  %10d  %11d\n",
			cycle, res.Stats.Conflicts, res.Stats.Resolved, res.Stats.Unresolved, altChanges)
		if res.Stats.Conflicts == 0 {
			fmt.Println("\nstorm fully deconflicted")
			break
		}
		// Fly one major cycle (16 periods of dead reckoning) before the
		// next detection, as the real schedule would.
		for p := 0; p < airspace.PeriodsPerMajorCycle; p++ {
			for i := range storm.Aircraft {
				a := &storm.Aircraft[i]
				a.X += a.DX
				a.Y += a.DY
			}
			storm.WrapAll()
		}
	}

	// Invariant check: resolution never changes speeds.
	for i := range storm.Aircraft {
		s := storm.Aircraft[i].SpeedKnots()
		if s < 299 || s > 301 {
			log.Fatalf("aircraft %d speed drifted to %.2f knots", i, s)
		}
	}
	fmt.Println("all aircraft still at 300 knots — resolution only changes headings")
}
